// Tests for the performance model: every shape criterion of the paper's
// evaluation (DESIGN.md §4) plus the cluster-scaling behaviour and the
// calibration pipeline.
#include <gtest/gtest.h>

#include "perfmodel/calibrate.hpp"
#include "perfmodel/clustersim.hpp"
#include "perfmodel/model.hpp"

namespace pm = bookleaf::perfmodel;
using bookleaf::util::Kernel;

namespace {

pm::Breakdown model(pm::Config c) {
    return pm::model_noh(c, pm::reference_work());
}

} // namespace

// --- Table II / Fig 1 shape criteria ---------------------------------------

TEST(Table2, FlatMpiBeatsHybridOnBothCpus) {
    EXPECT_LT(model(pm::Config::skl_mpi).overall,
              model(pm::Config::skl_hybrid).overall);
    EXPECT_LT(model(pm::Config::bdw_mpi).overall,
              model(pm::Config::bdw_hybrid).overall);
}

TEST(Table2, ViscosityDominatesFlatMpi) {
    const auto b = model(pm::Config::skl_mpi);
    const double share = b.at(Kernel::getq) / b.overall;
    // Paper: 70% of the Skylake MPI runtime is the viscosity kernel.
    EXPECT_GT(share, 0.5);
    EXPECT_LT(share, 0.75);
    // And it dominates every other kernel outright.
    for (const auto k : pm::modelled_kernels) {
        if (k != Kernel::getq) {
            EXPECT_GT(b.at(Kernel::getq), b.at(k));
        }
    }
}

TEST(Table2, HybridViscosityWithinAFewPercentOfFlat) {
    // Paper §V-B: "the hybrid solution is within 5% of the performance of
    // the flat MPI solution" for the viscosity kernel. Allow 15% for the
    // model.
    const auto flat = model(pm::Config::skl_mpi).at(Kernel::getq);
    const auto hybrid = model(pm::Config::skl_hybrid).at(Kernel::getq);
    EXPECT_LT(hybrid / flat, 1.15);
}

TEST(Table2, HybridAccelerationAndGetdtBlowUp) {
    // The structural artefacts: acceleration ~2x, getdt >3x under hybrid.
    const auto flat = model(pm::Config::skl_mpi);
    const auto hybrid = model(pm::Config::skl_hybrid);
    EXPECT_GT(hybrid.at(Kernel::getacc) / flat.at(Kernel::getacc), 1.8);
    EXPECT_GT(hybrid.at(Kernel::getdt) / flat.at(Kernel::getdt), 3.0);
    // getgeom blows up through the NUMA bandwidth path.
    EXPECT_GT(hybrid.at(Kernel::getgeom) / flat.at(Kernel::getgeom), 4.0);
}

TEST(Table2, SkylakeFasterThanBroadwell) {
    EXPECT_LT(model(pm::Config::skl_mpi).overall,
              model(pm::Config::bdw_mpi).overall);
    EXPECT_LT(model(pm::Config::skl_mpi).at(Kernel::getq),
              model(pm::Config::bdw_mpi).at(Kernel::getq));
}

TEST(Table2, GpusSlowerThanCpusOverall) {
    // Paper §V-B: "the performance on GPUs is shown to be slightly worse
    // overall than that of the CPUs."
    const auto best_cpu = model(pm::Config::skl_mpi).overall;
    EXPECT_GT(model(pm::Config::p100_omp).overall, best_cpu);
    EXPECT_GT(model(pm::Config::p100_cuda).overall, best_cpu);
    EXPECT_GT(model(pm::Config::v100_cuda).overall, best_cpu);
}

TEST(Table2, OpenMpOffloadBeatsCudaOnP100) {
    // Paper §V-B: host-side getdt penalises CUDA; OpenMP offload reduces
    // on the device and wins overall.
    EXPECT_LT(model(pm::Config::p100_omp).overall,
              model(pm::Config::p100_cuda).overall);
    // And specifically for the viscosity kernel (register pressure).
    EXPECT_LT(model(pm::Config::p100_omp).at(Kernel::getq),
              model(pm::Config::p100_cuda).at(Kernel::getq));
}

TEST(Table2, V100BeatsP100Cuda) {
    EXPECT_LT(model(pm::Config::v100_cuda).overall,
              model(pm::Config::p100_cuda).overall);
    EXPECT_LT(model(pm::Config::v100_cuda).at(Kernel::getq),
              model(pm::Config::p100_cuda).at(Kernel::getq));
}

TEST(Table2, HostSideGetdtDoesNotSpeedUpWithGpuGeneration) {
    // The time differential runs on the host under CUDA, so upgrading the
    // GPU barely changes it (paper: 40.4 s vs 44.4 s).
    const auto p100 = model(pm::Config::p100_cuda).at(Kernel::getdt);
    const auto v100 = model(pm::Config::v100_cuda).at(Kernel::getdt);
    EXPECT_NEAR(v100 / p100, 1.0, 0.05);
}

TEST(Table2, CudaGetforceNearFreeOpenMpGetforceExpensive) {
    // Paper Table II: P100 CUDA getforce 0.5 s vs P100 OpenMP 40.9 s.
    EXPECT_LT(model(pm::Config::p100_cuda).at(Kernel::getforce), 5.0);
    EXPECT_GT(model(pm::Config::p100_omp).at(Kernel::getforce), 20.0);
}

TEST(Table2, AbsoluteValuesNearPaper) {
    // Anchoring sanity: Skylake MPI overall ~76 s, viscosity ~46 s; the
    // other configs within +-30% of the published values.
    EXPECT_NEAR(model(pm::Config::skl_mpi).overall, 76.0, 8.0);
    EXPECT_NEAR(model(pm::Config::skl_mpi).at(Kernel::getq), 46.4, 3.0);
    EXPECT_NEAR(model(pm::Config::bdw_mpi).overall, 109.0, 33.0);
    EXPECT_NEAR(model(pm::Config::skl_hybrid).overall, 168.6, 50.0);
    EXPECT_NEAR(model(pm::Config::p100_cuda).overall, 261.2, 78.0);
    EXPECT_NEAR(model(pm::Config::p100_omp).overall, 186.5, 56.0);
}

TEST(Table2, DopeVectorAblationSlowsKernels) {
    // §IV-D: dope-vector transfers per launch cost real time; removing
    // them "improves performance dramatically" (4.23 -> 2.2 s for one
    // problem set). Check the mechanism: dope vectors on > off.
    const auto work = pm::reference_work();
    pm::Breakdown with_fix = pm::model_noh(pm::Config::p100_cuda, work);
    // Build the un-fixed backend by hand.
    const auto backend = pm::p100_cuda(/*dope_vectors=*/true);
    EXPECT_GT(backend.launch.dope_vector_bytes, 0.0);
    // Model through the generic path with a custom device run: compare the
    // per-launch overhead directly.
    bookleaf::device::Device plain("p", backend.rate, backend.bandwidth,
                                   backend.pcie, {});
    bookleaf::device::Device doped("d", backend.rate, backend.bandwidth,
                                   backend.pcie, backend.launch);
    const double t_plain = plain.launch(650, 160, pm::table2_cells);
    const double t_doped = doped.launch(650, 160, pm::table2_cells);
    EXPECT_GT(t_doped, t_plain);
    (void)with_fix;
}

// --- Fig 3/4 scaling shape ---------------------------------------------------

namespace {

std::vector<pm::ScalingPoint> scaling(const pm::CpuPlatform& p) {
    return pm::strong_scaling(p, pm::reference_work(), {}, {}, {8, 16, 32, 64});
}

} // namespace

TEST(Scaling, SuperlinearBetweenEightAndSixteenNodes) {
    for (const auto& platform : {pm::skylake(), pm::broadwell()}) {
        const auto pts = scaling(platform);
        const double speedup = pts[0].overall / pts[1].overall;
        EXPECT_GT(speedup, 2.2) << platform.name; // superlinear
    }
}

TEST(Scaling, NearLinearBeyondSixteenNodes) {
    for (const auto& platform : {pm::skylake(), pm::broadwell()}) {
        const auto pts = scaling(platform);
        const double s32 = pts[1].overall / pts[2].overall;
        const double s64 = pts[2].overall / pts[3].overall;
        EXPECT_GT(s32, 1.7) << platform.name;
        EXPECT_LT(s32, 2.4) << platform.name;
        EXPECT_GT(s64, 1.7) << platform.name;
        EXPECT_LT(s64, 2.2) << platform.name;
    }
}

TEST(Scaling, MonotoneDecreaseAndSkylakeBelowBroadwell) {
    const auto skl = scaling(pm::skylake());
    const auto bdw = scaling(pm::broadwell());
    for (std::size_t i = 0; i + 1 < skl.size(); ++i) {
        EXPECT_GT(skl[i].overall, skl[i + 1].overall);
        EXPECT_GT(bdw[i].overall, bdw[i + 1].overall);
    }
    for (std::size_t i = 0; i < skl.size(); ++i)
        EXPECT_LT(skl[i].overall, bdw[i].overall);
}

TEST(Scaling, KernelCurvesFollowOverall) {
    // Fig 4: the viscosity and acceleration kernels show the same shape.
    const auto pts = scaling(pm::skylake());
    EXPECT_GT(pts[0].viscosity / pts[1].viscosity, 2.0);
    EXPECT_GT(pts[0].acceleration / pts[1].acceleration, 2.0);
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
        EXPECT_GT(pts[i].viscosity, pts[i + 1].viscosity);
        EXPECT_GT(pts[i].acceleration, pts[i + 1].acceleration);
    }
}

TEST(Scaling, CommunicationStaysNegligible) {
    // Paper §V-C: "the communication overhead for these kernels does not
    // cause a significant issue when increasing node counts."
    for (const auto& point : scaling(pm::skylake()))
        EXPECT_LT(point.comm / point.overall, 0.05);
}

TEST(CacheFactor, MonotoneInWorkingSet) {
    const double cache = 1.4e6;
    double prev = pm::cache_factor(0.1 * cache, cache, 1.0);
    for (double ws = 0.2 * cache; ws < 5 * cache; ws += 0.2 * cache) {
        const double f = pm::cache_factor(ws, cache, 1.0);
        EXPECT_GE(f, prev);
        prev = f;
    }
    EXPECT_NEAR(pm::cache_factor(0.01 * cache, cache, 1.0), 1.0, 0.05);
    EXPECT_NEAR(pm::cache_factor(100 * cache, cache, 1.0), 2.0, 0.05);
}

// --- calibration -------------------------------------------------------------

TEST(Calibrate, MeasuresAllModelledKernels) {
    const auto cal = pm::calibrate_noh(30, 5);
    EXPECT_EQ(cal.n_cells, 900);
    for (const auto kernel : pm::modelled_kernels)
        EXPECT_TRUE(cal.seconds_per_cell.contains(kernel))
            << bookleaf::util::kernel_name(kernel);
    // Sanity: per-cell per-invocation times are sub-microsecond.
    for (const auto& [k, t] : cal.seconds_per_cell) {
        EXPECT_GT(t, 0.0);
        EXPECT_LT(t, 1e-5);
    }
}

TEST(Calibrate, CalibratedWorkReflectsMeasurements) {
    const auto cal = pm::calibrate_noh(30, 5);
    const auto work = pm::calibrated_work(cal);
    // Our C++ getq is the most expensive cell kernel, as in the paper.
    const double f_q = work.at(Kernel::getq).flops;
    EXPECT_GT(f_q, work.at(Kernel::getrho).flops);
    EXPECT_GT(f_q, work.at(Kernel::getpc).flops);
    // Structural fields are inherited from the reference table.
    EXPECT_DOUBLE_EQ(work.at(Kernel::getdt).hybrid_serial, 0.15);
}
