// Unit and property tests for the unstructured mesh: generation,
// connectivity discovery, consistency checking, permutation invariance.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mesh/generator.hpp"
#include "mesh/mesh.hpp"
#include "util/random.hpp"

namespace bm = bookleaf::mesh;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

TEST(MeshGenerate, CountsAreCorrect) {
    const auto m = bm::generate_rect({.nx = 7, .ny = 5});
    EXPECT_EQ(m.n_cells(), 35);
    EXPECT_EQ(m.n_nodes(), 8 * 6);
    // Faces: nx*(ny+1) horizontal + (nx+1)*ny vertical.
    EXPECT_EQ(m.n_faces(), 7 * 6 + 8 * 5);
    EXPECT_EQ(check_consistency(m), "");
}

TEST(MeshGenerate, SingleCell) {
    const auto m = bm::generate_rect({.nx = 1, .ny = 1});
    EXPECT_EQ(m.n_cells(), 1);
    EXPECT_EQ(m.n_nodes(), 4);
    EXPECT_EQ(m.n_faces(), 4);
    for (int k = 0; k < 4; ++k) EXPECT_EQ(m.neighbor(0, k), bookleaf::no_index);
}

TEST(MeshGenerate, RejectsBadSpecs) {
    EXPECT_THROW(bm::generate_rect({.nx = 0, .ny = 3}), bu::Error);
    EXPECT_THROW(bm::generate_rect({.x0 = 1.0, .x1 = 0.0}), bu::Error);
}

TEST(MeshGenerate, InteriorCellHasFourNeighbors) {
    const auto m = bm::generate_rect({.nx = 5, .ny = 5});
    // Cell 12 (centre of a 5x5 block in generation order) is interior.
    int n_neighbors = 0;
    for (int k = 0; k < 4; ++k)
        if (m.neighbor(12, k) != bookleaf::no_index) ++n_neighbors;
    EXPECT_EQ(n_neighbors, 4);
}

TEST(MeshGenerate, BoundaryMasksAreReflectiveWalls) {
    const auto m = bm::generate_rect({.x0 = 0, .x1 = 2, .y0 = 0, .y1 = 1,
                                      .nx = 4, .ny = 2});
    int fix_u = 0, fix_v = 0, both = 0, interior = 0;
    for (Index n = 0; n < m.n_nodes(); ++n) {
        const auto mask = m.node_bc[static_cast<std::size_t>(n)];
        const bool u = mask & bm::bc::fix_u;
        const bool v = mask & bm::bc::fix_v;
        if (u && v) ++both;
        else if (u) ++fix_u;
        else if (v) ++fix_v;
        else ++interior;
    }
    EXPECT_EQ(both, 4);            // the four domain corners
    EXPECT_EQ(fix_u, 2 * (3 - 2)); // x-walls minus corners: 2*(ny+1-2)
    EXPECT_EQ(fix_v, 2 * (5 - 2)); // y-walls minus corners: 2*(nx+1-2)
    EXPECT_EQ(interior, (5 - 2) * (3 - 2));
}

TEST(MeshGenerate, RegionCallbackAssignsMaterials) {
    bm::RectSpec spec{.nx = 10, .ny = 2};
    spec.region_of = [](Real cx, Real) { return cx < 0.5 ? 0 : 1; };
    const auto m = bm::generate_rect(spec);
    int r0 = 0, r1 = 0;
    for (const Index r : m.cell_region) (r == 0 ? r0 : r1)++;
    EXPECT_EQ(r0, 10);
    EXPECT_EQ(r1, 10);
    EXPECT_EQ(m.n_regions(), 2);
}

TEST(MeshGenerate, SaltzmannMapSkewsInterior) {
    bm::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 0.1, .nx = 20, .ny = 10};
    spec.map = bm::saltzmann_map;
    const auto m = bm::generate_rect(spec);
    EXPECT_EQ(check_consistency(m), "");
    // The map moves interior columns in +x; find a node strictly inside.
    bool skewed = false;
    for (Index n = 0; n < m.n_nodes(); ++n) {
        const Real x = m.x[static_cast<std::size_t>(n)];
        if (x > 0.01 && x < 0.99 &&
            std::abs(x - std::round(x * 20) / 20) > 1e-6)
            skewed = true;
    }
    EXPECT_TRUE(skewed);
}

TEST(MeshConnectivity, NeighborsAreReciprocal) {
    const auto m = bm::generate_rect({.nx = 6, .ny = 4});
    for (Index c = 0; c < m.n_cells(); ++c)
        for (int k = 0; k < 4; ++k) {
            const Index nb = m.neighbor(c, k);
            if (nb == bookleaf::no_index) continue;
            bool back = false;
            for (int kk = 0; kk < 4; ++kk)
                if (m.neighbor(nb, kk) == c) back = true;
            EXPECT_TRUE(back) << "cell " << c << " face " << k;
        }
}

TEST(MeshConnectivity, NodeCellsValence) {
    const auto m = bm::generate_rect({.nx = 3, .ny = 3});
    // Corner nodes touch 1 cell, edge nodes 2, interior nodes 4.
    std::multiset<std::size_t> valences;
    for (Index n = 0; n < m.n_nodes(); ++n)
        valences.insert(m.node_cells.row(n).size());
    EXPECT_EQ(valences.count(1), 4u);
    EXPECT_EQ(valences.count(2), 8u);
    EXPECT_EQ(valences.count(4), 4u);
}

TEST(MeshConnectivity, NodeCornersCoverEveryCornerExactlyOnce) {
    // The gather-based nodal assembly depends on this invariant: every
    // (cell, corner) pair appears in node_corners exactly once, under the
    // node that corner references, and rows ascend in flat-id order (the
    // serial-scatter deposition order).
    const auto m = bm::generate_rect({.nx = 7, .ny = 5});
    std::vector<int> seen(static_cast<std::size_t>(m.n_cells()) * 4, 0);
    for (Index n = 0; n < m.n_nodes(); ++n) {
        Index prev = bookleaf::no_index;
        for (const Index ck : m.node_corners.row(n)) {
            EXPECT_GT(ck, prev) << "row of node " << n << " not ascending";
            prev = ck;
            seen[static_cast<std::size_t>(ck)]++;
            EXPECT_EQ(m.cn(ck / 4, ck % 4), n) << "flat corner " << ck;
        }
    }
    for (std::size_t ck = 0; ck < seen.size(); ++ck)
        EXPECT_EQ(seen[ck], 1) << "flat corner " << ck;
    // Rows agree with node_cells (same cells, same valence).
    for (Index n = 0; n < m.n_nodes(); ++n) {
        ASSERT_EQ(m.node_corners.row(n).size(), m.node_cells.row(n).size());
        for (std::size_t i = 0; i < m.node_corners.row(n).size(); ++i)
            EXPECT_EQ(m.node_corners.row(n)[i] / 4, m.node_cells.row(n)[i]);
    }
}

TEST(MeshConsistency, DetectsCorruptNodeCorners) {
    auto m = bm::generate_rect({.nx = 3, .ny = 2});
    ASSERT_EQ(check_consistency(m), "");
    std::swap(m.node_corners.items[0], m.node_corners.items[1]);
    EXPECT_NE(check_consistency(m), "");
}

TEST(MeshConnectivity, FacesHaveConsistentEndpoints) {
    const auto m = bm::generate_rect({.nx = 4, .ny = 3});
    for (const auto& f : m.faces) {
        ASSERT_NE(f.left, bookleaf::no_index);
        const Index la = m.cn(f.left, f.k_left);
        const Index lb = m.cn(f.left, (f.k_left + 1) % 4);
        EXPECT_TRUE((f.a == la && f.b == lb));
        if (f.right != bookleaf::no_index) {
            const Index ra = m.cn(f.right, f.k_right);
            const Index rb = m.cn(f.right, (f.k_right + 1) % 4);
            // Opposite orientation seen from the right cell.
            EXPECT_EQ(ra, lb);
            EXPECT_EQ(rb, la);
        }
    }
}

TEST(MeshConnectivity, RejectsNonManifoldInput) {
    // Three cells stacked on the same face.
    bm::Mesh m;
    m.x = {0, 1, 1, 0, 2, 2, 3};
    m.y = {0, 0, 1, 1, 0.5, 1.5, 0};
    m.cell_nodes = {0, 1, 2, 3,   // quad A, face 1-2 shared
                    1, 4, 5, 2,   // quad B uses face 1-2? no: uses 1-2 via corner order
                    1, 6, 4, 2};  // quad C also contains edge 2-1
    m.cell_region = {0, 0, 0};
    EXPECT_THROW(bm::build_connectivity(m), bu::Error);
}

TEST(MeshConsistency, DetectsCorruptNeighbor) {
    auto m = bm::generate_rect({.nx = 3, .ny = 2});
    m.cell_neigh[0] = 99; // out of range
    EXPECT_NE(check_consistency(m), "");
}

class MeshPermuteProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeshPermuteProperty, PermutationPreservesTopology) {
    bu::SplitMix64 rng(GetParam());
    const auto m = bm::generate_rect({.nx = 6, .ny = 5});
    const auto p = bm::permute(m, rng);
    EXPECT_EQ(p.n_cells(), m.n_cells());
    EXPECT_EQ(p.n_nodes(), m.n_nodes());
    EXPECT_EQ(p.n_faces(), m.n_faces());
    EXPECT_EQ(check_consistency(p), "");
    // Geometry multiset is preserved (total coordinate sums).
    Real sx = 0, sy = 0, px = 0, py = 0;
    for (const Real v : m.x) sx += v;
    for (const Real v : m.y) sy += v;
    for (const Real v : p.x) px += v;
    for (const Real v : p.y) py += v;
    EXPECT_NEAR(sx, px, 1e-12);
    EXPECT_NEAR(sy, py, 1e-12);
    // Boundary mask census preserved.
    std::multiset<int> mm, pm;
    for (const auto b : m.node_bc) mm.insert(b);
    for (const auto b : p.node_bc) pm.insert(b);
    EXPECT_EQ(mm, pm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshPermuteProperty,
                         ::testing::Values(3, 17, 29, 101, 997));
