// Tests for the analytic reference solutions: exact Riemann solver
// (validated against the canonical Sod numbers), Noh, piston relations,
// Sedov scaling, and the error-norm helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/exact.hpp"
#include "analytic/norms.hpp"
#include "analytic/riemann.hpp"
#include "mesh/generator.hpp"

namespace ba = bookleaf::analytic;
namespace bm = bookleaf::mesh;
using bookleaf::Index;
using bookleaf::Real;

TEST(Riemann, SodStarStateMatchesToro) {
    // Canonical Sod problem, gamma = 1.4: p* = 0.30313, u* = 0.92745
    // (Toro, Table 4.2).
    const ba::Riemann r({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
    EXPECT_NEAR(r.p_star(), 0.30313, 2e-5);
    EXPECT_NEAR(r.u_star(), 0.92745, 2e-5);
}

TEST(Riemann, SodSampledRegions) {
    const ba::Riemann r({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
    // Left data region.
    EXPECT_NEAR(r.sample(-2.0).rho, 1.0, 1e-12);
    // Contact-left star density ~ 0.42632; contact-right ~ 0.26557.
    EXPECT_NEAR(r.sample(r.u_star() - 1e-6).rho, 0.42632, 2e-4);
    EXPECT_NEAR(r.sample(r.u_star() + 1e-6).rho, 0.26557, 2e-4);
    // Right data region (beyond the shock, speed ~ 1.75216).
    EXPECT_NEAR(r.sample(1.8).rho, 0.125, 1e-12);
    EXPECT_NEAR(r.sample(1.70).rho, 0.26557, 2e-4);
}

TEST(Riemann, SymmetricCollisionHasZeroContactVelocity) {
    const ba::Riemann r({1.0, 1.0, 1.0}, {1.0, -1.0, 1.0}, 1.4);
    EXPECT_NEAR(r.u_star(), 0.0, 1e-12);
    EXPECT_GT(r.p_star(), 1.0); // compression raises pressure
}

TEST(Riemann, ExpansionLowersStarPressure) {
    const ba::Riemann r({1.0, -0.5, 1.0}, {1.0, 0.5, 1.0}, 1.4);
    EXPECT_LT(r.p_star(), 1.0);
    EXPECT_NEAR(r.u_star(), 0.0, 1e-12);
}

TEST(Riemann, SolutionIsSelfSimilarAndMonotoneAcrossFan) {
    const ba::Riemann r({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
    // Density is non-increasing through the left rarefaction fan.
    Real prev = r.sample(-1.2).rho;
    for (Real xi = -1.1; xi < 0.0; xi += 0.05) {
        const Real rho = r.sample(xi).rho;
        EXPECT_LE(rho, prev + 1e-12);
        prev = rho;
    }
}

TEST(NohExact, PlateauAndPreShock) {
    const auto inside = ba::noh_exact(0.05, 0.6);
    EXPECT_DOUBLE_EQ(inside.rho, 16.0);
    EXPECT_DOUBLE_EQ(inside.u_r, 0.0);
    EXPECT_NEAR(inside.p, 16.0 / 3.0, 1e-12);
    const auto outside = ba::noh_exact(0.5, 0.6);
    EXPECT_NEAR(outside.rho, 1.0 + 0.6 / 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(outside.u_r, -1.0);
    EXPECT_DOUBLE_EQ(outside.p, 0.0);
}

TEST(NohExact, ShockAtOneThirdT) {
    const Real t = 0.6;
    EXPECT_DOUBLE_EQ(ba::noh_exact(t / 3.0 - 1e-9, t).rho, 16.0);
    EXPECT_LT(ba::noh_exact(t / 3.0 + 1e-3, t).rho, 16.0);
}

TEST(PistonExact, StrongShockRelations) {
    const auto s = ba::piston_exact(5.0 / 3.0, 1.0, 1.0);
    EXPECT_NEAR(s.shock_speed, 4.0 / 3.0, 1e-12);
    EXPECT_NEAR(s.rho_shocked, 4.0, 1e-12);
    EXPECT_NEAR(s.p_shocked, 4.0 / 3.0, 1e-12);
}

TEST(SedovExact, ExponentFromSamples) {
    // R ~ t^{1/2}: two exact samples recover the exponent.
    const Real r1 = 0.7 * std::sqrt(0.3);
    const Real r2 = 0.7 * std::sqrt(0.9);
    EXPECT_NEAR(ba::sedov_exponent(0.3, r1, 0.9, r2), 0.5, 1e-12);
}

TEST(StrongShock, DensityRatios) {
    EXPECT_NEAR(ba::strong_shock_density_ratio(1.4), 6.0, 1e-12);
    EXPECT_NEAR(ba::strong_shock_density_ratio(5.0 / 3.0), 4.0, 1e-12);
}

TEST(Norms, ExactFieldHasZeroError) {
    const auto m = bm::generate_rect({.nx = 4, .ny = 4});
    std::vector<Real> vol(static_cast<std::size_t>(m.n_cells()), 1.0 / 16.0);
    std::vector<Real> field(static_cast<std::size_t>(m.n_cells()));
    for (Index c = 0; c < m.n_cells(); ++c) {
        Real cx = 0;
        for (int k = 0; k < 4; ++k)
            cx += m.x[static_cast<std::size_t>(m.cn(c, k))] / 4;
        field[static_cast<std::size_t>(c)] = 3.0 * cx;
    }
    const auto n = ba::cell_error_norms(m, m.x, m.y, vol, field,
                                        [](Real cx, Real) { return 3.0 * cx; });
    EXPECT_NEAR(n.l1, 0.0, 1e-14);
    EXPECT_NEAR(n.l2, 0.0, 1e-14);
    EXPECT_NEAR(n.linf, 0.0, 1e-14);
}

TEST(Norms, ConstantOffsetGivesThatOffset) {
    const auto m = bm::generate_rect({.nx = 3, .ny = 3});
    std::vector<Real> vol(9, 1.0 / 9.0);
    std::vector<Real> field(9, 2.5);
    const auto n = ba::cell_error_norms(m, m.x, m.y, vol, field,
                                        [](Real, Real) { return 2.0; });
    EXPECT_NEAR(n.l1, 0.5, 1e-13);
    EXPECT_NEAR(n.l2, 0.5, 1e-13);
    EXPECT_NEAR(n.linf, 0.5, 1e-13);
}

TEST(Norms, MaskRestrictsWindow) {
    const auto m = bm::generate_rect({.nx = 4, .ny = 1});
    std::vector<Real> vol(4, 0.25);
    std::vector<Real> field = {1.0, 1.0, 5.0, 5.0};
    const auto n = ba::cell_error_norms(
        m, m.x, m.y, vol, field, [](Real, Real) { return 1.0; },
        [](Real cx, Real) { return cx < 0.5; });
    EXPECT_NEAR(n.l1, 0.0, 1e-14); // only the matching left half counted
}
