// Telemetry subsystem tests: the ordered JSON value, the profiler's
// detail slots and trace sink, the report codecs, and — the load-bearing
// contract — telemetry being PASSIVE: off costs nothing and on never
// perturbs the trajectory, serial or distributed, at any rank count.
//
// Suite names all start with "Obs" deliberately: the CI TSan job's
// gtest filter targets the concurrency suites, and these run there via
// the plain jobs only.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "mesh/generator.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"
#include "util/profiler.hpp"

namespace bc = bookleaf::core;
namespace bd = bookleaf::dist;
namespace be = bookleaf::eos;
namespace bm = bookleaf::mesh;
namespace bo = bookleaf::obs;
namespace bs = bookleaf::setup;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;
using bu::Kernel;

namespace {

struct Problem {
    bm::Mesh mesh;
    be::MaterialTable materials;
    std::vector<Real> rho, ein, u, v;
};

/// The miniature Sod-like strip shared with the dist driver tests.
Problem sod_like(Index nx, Index ny) {
    Problem p;
    bm::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 0.1,
                      .nx = nx, .ny = ny};
    spec.region_of = [](Real cx, Real) { return cx < 0.5 ? 0 : 1; };
    p.mesh = bm::generate_rect(spec);
    p.materials.materials = {be::IdealGas{1.4}, be::IdealGas{1.4}};
    p.rho.resize(static_cast<std::size_t>(p.mesh.n_cells()));
    p.ein.resize(p.rho.size());
    for (Index c = 0; c < p.mesh.n_cells(); ++c) {
        const bool left = p.mesh.cell_region[static_cast<std::size_t>(c)] == 0;
        p.rho[static_cast<std::size_t>(c)] = left ? 1.0 : 0.125;
        p.ein[static_cast<std::size_t>(c)] = left ? 2.5 : 2.0;
    }
    p.u.assign(static_cast<std::size_t>(p.mesh.n_nodes()), 0.0);
    p.v.assign(p.u.size(), 0.0);
    return p;
}

bd::Options base_opts(int n_ranks, Real t_end) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro.dt_initial = 1e-4;
    return opts;
}

bd::Result run_dist(const Problem& p, const bd::Options& opts) {
    return bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
}

/// Copy of a report's JSON with every timing-dependent leaf removed:
/// keys ending `_s`/`_us`, the whole `imbalance` object (its ratio and
/// slowest rank are wall-clock artifacts), the blocking-wait detail
/// kernels (a wait is only *charged* when the poll actually blocks, so
/// even their call counts are timing), the attribution/anomaly blocks
/// (critical paths and flags are functions of measured durations), and
/// the per-kernel achieved-rate leaves (wall_s in denominator). What
/// remains must be byte-identical between two runs of the same problem.
bo::Json scrub_timings(const bo::Json& v) {
    if (v.is_object()) {
        auto out = bo::Json::object();
        for (const auto& [key, member] : v.members()) {
            if (key == "imbalance" || key == "halo_wait" ||
                key == "reduce_wait" || key == "attribution" ||
                key == "anomalies" || key == "gflops" || key == "gbs" ||
                key == "roofline_ratio")
                continue;
            if (key.size() >= 2 && key.rfind("_s") == key.size() - 2) continue;
            if (key.size() >= 3 && key.rfind("_us") == key.size() - 3)
                continue;
            out[key] = scrub_timings(member);
        }
        return out;
    }
    if (v.is_array()) {
        auto out = bo::Json::array();
        for (const auto& element : v.elements())
            out.push_back(scrub_timings(element));
        return out;
    }
    return v;
}

} // namespace

// ---------------------------------------------------------------------------
// The ordered JSON value
// ---------------------------------------------------------------------------

TEST(ObsJson, IntegersAndRealsStayDistinct) {
    auto v = bo::Json::object();
    v["steps"] = bo::Json(189);
    v["dt"] = bo::Json(0.25);
    v["three"] = bo::Json(3.0); // a real that happens to be integral
    const auto text = v.dump(2);
    EXPECT_NE(text.find("\"steps\": 189"), std::string::npos) << text;
    EXPECT_NE(text.find("\"dt\": 0.25"), std::string::npos) << text;
    // Integral reals keep a mantissa marker so parse() restores the kind.
    EXPECT_NE(text.find("\"three\": 3.0"), std::string::npos) << text;

    const auto back = bo::Json::parse(text);
    EXPECT_EQ(back.find("steps")->type(), bo::Json::Type::integer);
    EXPECT_EQ(back.find("dt")->type(), bo::Json::Type::real);
    EXPECT_EQ(back.find("three")->type(), bo::Json::Type::real);
}

TEST(ObsJson, ObjectsKeepInsertionOrderThroughRoundTrip) {
    auto v = bo::Json::object();
    v["zulu"] = bo::Json(1);
    v["alpha"] = bo::Json(2);
    v["mike"] = bo::Json("x");
    const auto text = v.dump(2);
    const auto back = bo::Json::parse(text);
    ASSERT_EQ(back.members().size(), 3u);
    EXPECT_EQ(back.members()[0].first, "zulu");
    EXPECT_EQ(back.members()[1].first, "alpha");
    EXPECT_EQ(back.members()[2].first, "mike");
    // Round-trip is a fixed point: parse(dump) dumps identically.
    EXPECT_EQ(bo::Json::parse(text).dump(2), text);
}

TEST(ObsJson, RealsRoundTripBitExactly) {
    const double values[] = {1.0 / 3.0, 6.64286e-7, 1e300, -0.0,
                             0.1 + 0.2, 189.00000000000003};
    for (const double d : values) {
        auto v = bo::Json::array();
        v.push_back(bo::Json(d));
        const auto back = bo::Json::parse(v.dump());
        ASSERT_EQ(back.size(), 1u);
        EXPECT_EQ(back.elements()[0].as_real(), d) << v.dump();
    }
}

TEST(ObsJson, StringsEscapeAndParse) {
    auto v = bo::Json::object();
    v["path"] = bo::Json(std::string("a\"b\\c\n\tz"));
    const auto back = bo::Json::parse(v.dump());
    EXPECT_EQ(back.find("path")->as_string(), "a\"b\\c\n\tz");
}

TEST(ObsJson, ParserRejectsMalformedInput) {
    EXPECT_THROW((void)bo::Json::parse("{\"a\": }"), bu::Error);
    EXPECT_THROW((void)bo::Json::parse("[1, 2"), bu::Error);
    EXPECT_THROW((void)bo::Json::parse("nul"), bu::Error);
    EXPECT_THROW((void)bo::Json::parse("{} trailing"), bu::Error);
}

// ---------------------------------------------------------------------------
// Profiler detail slots and the trace sink
// ---------------------------------------------------------------------------

TEST(ObsProfiler, DetailSlotsAreExcludedFromOverall) {
    bu::Profiler profiler;
    profiler.add_wall(Kernel::getq, 2.0);
    profiler.add_wall(Kernel::halo, 1.0);
    // The comm split refines `halo` over the same scopes; counting it in
    // overall would double-book the second.
    profiler.add_wall(Kernel::halo_wait, 0.75);
    profiler.add_wall(Kernel::halo_pack, 0.25);
    EXPECT_DOUBLE_EQ(profiler.overall_s(), 3.0);
    EXPECT_DOUBLE_EQ(profiler.stats(Kernel::halo_wait).wall_s, 0.75);

    EXPECT_FALSE(bu::kernel_is_detail(Kernel::getq));
    EXPECT_FALSE(bu::kernel_is_detail(Kernel::other));
    EXPECT_TRUE(bu::kernel_is_detail(Kernel::halo_pack));
    EXPECT_TRUE(bu::kernel_is_detail(Kernel::reduce_wait));
    EXPECT_TRUE(bu::kernel_is_detail(Kernel::ale_nodes));
}

TEST(ObsProfiler, TraceSinkRecordsScopesAndDetaches) {
    bu::Profiler profiler;
    std::vector<bu::TraceEvent> sink;
    profiler.set_trace(&sink, std::chrono::steady_clock::now());
    {
        const bu::ScopedTimer timer(profiler, Kernel::getacc);
    }
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink[0].kernel, Kernel::getacc);
    EXPECT_GE(sink[0].t0_us, 0.0);
    EXPECT_GE(sink[0].dur_us, 0.0);
    EXPECT_GT(profiler.stats(Kernel::getacc).calls, 0);

    profiler.set_trace(nullptr);
    {
        const bu::ScopedTimer timer(profiler, Kernel::getq);
    }
    EXPECT_EQ(sink.size(), 1u) << "detached sink must stop appends";
}

// ---------------------------------------------------------------------------
// Report codecs
// ---------------------------------------------------------------------------

TEST(ObsReport, DtReasonCodesRoundTrip) {
    for (const char* reason : {"initial", "CFL", "divergence", "growth",
                               "maximum", "t_end", "regrow", "health-retry"}) {
        const int code = bo::dt_reason_code(reason);
        EXPECT_GT(code, 0) << reason;
        EXPECT_EQ(bo::dt_reason_name(code), reason);
    }
    EXPECT_EQ(bo::dt_reason_code("no-such-constraint"), 0);
}

TEST(ObsReport, PackUnpackRoundTripsRankRecord) {
    bo::RankRecord rec;
    rec.rank = 3;
    bo::StepRecord s0{.step = 0, .t = 1e-4, .dt = 1e-4, .dt_local = 9e-5,
                      .dt_reason = bo::dt_reason_code("CFL"),
                      .start_us = 12.5, .wall_us = 101.25, .retries = 2,
                      .remapped = true};
    bo::StepRecord s1{.step = 1, .t = 2e-4, .dt = 1.08e-4,
                      .dt_local = 1.08e-4,
                      .dt_reason = bo::dt_reason_code("growth"),
                      .start_us = 140.0, .wall_us = 88.0};
    rec.steps = {s0, s1};
    rec.kernels[static_cast<std::size_t>(Kernel::getq)] = {0.5, 0.0, 40};
    rec.kernels[static_cast<std::size_t>(Kernel::halo_wait)] = {0.125, 0.0, 7};

    const auto back = bo::unpack_rank(bo::pack_rank(rec));
    EXPECT_EQ(back.rank, 3);
    ASSERT_EQ(back.steps.size(), 2u);
    EXPECT_EQ(back.steps[0].step, 0);
    EXPECT_EQ(back.steps[0].dt_local, 9e-5);
    EXPECT_EQ(back.steps[0].retries, 2);
    EXPECT_TRUE(back.steps[0].remapped);
    EXPECT_EQ(bo::dt_reason_name(back.steps[1].dt_reason), "growth");
    EXPECT_EQ(back.steps[1].wall_us, 88.0);
    EXPECT_FALSE(back.steps[1].remapped);
    EXPECT_EQ(back.kernels[static_cast<std::size_t>(Kernel::getq)].calls, 40);
    EXPECT_EQ(
        back.kernels[static_cast<std::size_t>(Kernel::halo_wait)].wall_s,
        0.125);

    EXPECT_THROW((void)bo::unpack_rank({1.0, 2.0}), bu::Error);
}

// ---------------------------------------------------------------------------
// Serial driver integration
// ---------------------------------------------------------------------------

TEST(ObsSerial, TelemetryOnDoesNotPerturbTheRun) {
    auto with = bs::sod(32, 2);
    with.telemetry.enabled = true;
    bc::Hydro h_with(std::move(with));
    bc::Hydro h_without(bs::sod(32, 2));
    h_with.run(std::nullopt, 30);
    h_without.run(std::nullopt, 30);
    EXPECT_EQ(h_with.steps(), h_without.steps());
    EXPECT_EQ(h_with.time(), h_without.time());
    EXPECT_EQ(h_with.state().rho, h_without.state().rho);
    EXPECT_EQ(h_with.state().ein, h_without.state().ein);
    EXPECT_EQ(h_with.state().u, h_without.state().u);
    EXPECT_EQ(h_with.state().v, h_without.state().v);
}

TEST(ObsSerial, ReportShapeMatchesTheRun) {
    auto problem = bs::sod(32, 2);
    problem.telemetry.enabled = true;
    bc::Hydro hydro(std::move(problem));
    hydro.run(std::nullopt, 25);
    const auto report = hydro.telemetry_report();

    EXPECT_EQ(report.schema, "bookleaf.telemetry/1");
    EXPECT_EQ(report.mode, "serial");
    EXPECT_EQ(report.n_ranks, 1);
    EXPECT_EQ(report.steps, 25);
    ASSERT_EQ(report.ranks.size(), 1u);
    const auto& rank = report.ranks[0];
    ASSERT_EQ(rank.steps.size(), 25u);
    double prev_start = -1.0;
    for (std::size_t i = 0; i < rank.steps.size(); ++i) {
        const auto& s = rank.steps[i];
        EXPECT_EQ(s.step, static_cast<long>(i));
        EXPECT_GT(s.dt, 0.0);
        EXPECT_GT(s.start_us, prev_start);
        prev_start = s.start_us;
    }
    EXPECT_GT(rank.kernels[static_cast<std::size_t>(Kernel::getq)].calls, 0);

    // The report serializes and round-trips through the parser.
    const auto doc = bo::to_json(report);
    EXPECT_EQ(bo::Json::parse(doc.dump(2)).dump(2), doc.dump(2));
    EXPECT_NE(bo::summary_table(report).find("Viscosity"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Distributed driver integration
// ---------------------------------------------------------------------------

TEST(ObsDist, TelemetryOnIsBitwisePassiveAcrossModesAndRanks) {
    const auto p = sod_like(40, 2);
    struct Mode {
        const char* name;
        bookleaf::ale::Mode mode;
    };
    for (const auto& [name, mode] :
         {Mode{"lagrange", bookleaf::ale::Mode::lagrange},
          Mode{"eulerian", bookleaf::ale::Mode::eulerian},
          Mode{"ale", bookleaf::ale::Mode::ale}}) {
        for (const int n_ranks : {2, 4}) {
            auto clean_opts = base_opts(n_ranks, 0.02);
            clean_opts.ale.mode = mode;
            const auto clean = run_dist(p, clean_opts);

            auto tel_opts = clean_opts;
            tel_opts.telemetry.enabled = true;
            const auto tel = run_dist(p, tel_opts);
            EXPECT_TRUE(bd::bitwise_equal(clean, tel))
                << name << " on " << n_ranks << " ranks";
            EXPECT_EQ(tel.telemetry.mode, "distributed");
            EXPECT_EQ(tel.telemetry.n_ranks, n_ranks);
            EXPECT_EQ(tel.telemetry.steps, tel.steps);
        }
    }
}

TEST(ObsDist, ReportIsDeterministicUpToTimings) {
    const auto p = sod_like(40, 2);
    auto opts = base_opts(4, 0.02);
    opts.ale.mode = bookleaf::ale::Mode::eulerian;
    opts.telemetry.enabled = true;
    opts.telemetry.label = "determinism";
    const auto a = run_dist(p, opts);
    const auto b = run_dist(p, opts);
    const auto scrubbed_a = scrub_timings(bo::to_json(a.telemetry)).dump(2);
    const auto scrubbed_b = scrub_timings(bo::to_json(b.telemetry)).dump(2);
    EXPECT_EQ(scrubbed_a, scrubbed_b);
}

TEST(ObsDist, PeerCountersSumToHubTraffic) {
    const auto p = sod_like(40, 2);
    auto opts = base_opts(4, 0.02);
    opts.telemetry.enabled = true;
    const auto r = run_dist(p, opts);

    long messages = 0;
    long long reals = 0;
    for (const auto& rank : r.telemetry.ranks)
        for (const auto& peer : rank.sent) {
            messages += peer.messages;
            reals += peer.reals;
        }
    EXPECT_EQ(messages, r.traffic.messages);
    EXPECT_EQ(reals, r.traffic.reals);

    // An undisturbed run passes the wire-format self-check.
    EXPECT_TRUE(r.telemetry.wire.checked);
    EXPECT_TRUE(r.telemetry.wire.match)
        << "expected " << r.telemetry.wire.expected << ", measured "
        << r.telemetry.wire.measured;
    EXPECT_EQ(r.telemetry.wire.measured, r.traffic.messages);
}

TEST(ObsDist, WireCheckCoversRemapAndPerFieldPacking) {
    const auto p = sod_like(40, 2);
    for (const auto packing : {bookleaf::typhon::Packing::coalesced,
                               bookleaf::typhon::Packing::per_field}) {
        auto opts = base_opts(3, 0.02);
        opts.ale.mode = bookleaf::ale::Mode::ale;
        opts.ale.frequency = 3;
        opts.packing = packing;
        opts.telemetry.enabled = true;
        const auto r = run_dist(p, opts);
        ASSERT_TRUE(r.telemetry.wire.checked);
        EXPECT_TRUE(r.telemetry.wire.match)
            << "packing " << static_cast<int>(packing) << ": expected "
            << r.telemetry.wire.expected << ", measured "
            << r.telemetry.wire.measured;
    }
}

TEST(ObsDist, ImbalanceFlagsTheSlowedRank) {
    const auto p = sod_like(40, 2);
    auto opts = base_opts(4, 0.02);
    opts.telemetry.enabled = true;
    opts.faults.slows.push_back({.rank = 1, .microseconds = 200});
    const auto r = run_dist(p, opts);

    const auto& imbalance = r.telemetry.imbalance;
    EXPECT_EQ(imbalance.slowest_rank, 1);
    EXPECT_GT(imbalance.max_over_mean, 1.001);
    EXPECT_GT(imbalance.max_rank_s, imbalance.mean_rank_s);
    // Scripted faults perturb the message schedule; the wire self-check
    // stands down rather than report a false mismatch.
    EXPECT_FALSE(r.telemetry.wire.checked);
}

TEST(ObsDist, TraceFileIsWellFormedChromeJson) {
    const auto path = ::testing::TempDir() + "obs_trace_test.json";
    const auto p = sod_like(32, 2);
    auto opts = base_opts(4, 0.01);
    opts.telemetry.trace = path;
    const auto r = run_dist(p, opts);
    ASSERT_GT(r.steps, 0);

    const auto doc = bo::read_json_file(path);
    const auto* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    std::set<long long> span_tids;
    std::size_t metadata = 0;
    for (const auto& event : events->elements()) {
        const auto& ph = event.find("ph")->as_string();
        if (ph == "M") {
            ++metadata;
            continue;
        }
        ASSERT_EQ(ph, "X");
        span_tids.insert(event.find("tid")->as_int());
        EXPECT_GE(event.find("ts")->as_real(), 0.0);
        EXPECT_GE(event.find("dur")->as_real(), 0.0);
        EXPECT_FALSE(event.find("name")->as_string().empty());
    }
    EXPECT_EQ(metadata, 4u) << "one thread_name record per rank";
    EXPECT_EQ(span_tids, (std::set<long long>{0, 1, 2, 3}));
    std::remove(path.c_str());
}
