// Tests for the VTK and CSV writers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/driver.hpp"
#include "io/csv.hpp"
#include "io/vtk.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"

namespace bi = bookleaf::io;
namespace bu = bookleaf::util;
using bookleaf::Real;

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(Vtk, WritesWellFormedLegacyFile) {
    bookleaf::core::Hydro h(bookleaf::setup::sod(8, 2));
    h.run(std::nullopt, 2);
    const std::string path = "/tmp/bookleaf_test_sod.vtk";
    bi::write_vtk(path, h.mesh(), h.state());
    const auto text = slurp(path);
    EXPECT_NE(text.find("# vtk DataFile Version 3.0"), std::string::npos);
    EXPECT_NE(text.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
    EXPECT_NE(text.find("POINTS 27 double"), std::string::npos); // 9*3 nodes
    EXPECT_NE(text.find("CELLS 16 80"), std::string::npos);
    EXPECT_NE(text.find("SCALARS density double 1"), std::string::npos);
    EXPECT_NE(text.find("SCALARS pressure double 1"), std::string::npos);
    EXPECT_NE(text.find("VECTORS velocity double"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Vtk, FailsLoudlyOnBadPath) {
    bookleaf::core::Hydro h(bookleaf::setup::sod(4, 2));
    EXPECT_THROW(bi::write_vtk("/nonexistent/dir/x.vtk", h.mesh(), h.state()),
                 bu::Error);
}

TEST(Csv, WritesHeaderAndRows) {
    const std::string path = "/tmp/bookleaf_test.csv";
    {
        bi::CsvWriter csv(path, {"t", "dt", "mass"});
        csv.row({0.0, 1e-4, 1.0});
        csv.row({1e-4, 2e-4, 1.0});
    }
    const auto text = slurp(path);
    EXPECT_NE(text.find("t,dt,mass"), std::string::npos);
    EXPECT_NE(text.find("0.0001"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Csv, RejectsWrongArity) {
    const std::string path = "/tmp/bookleaf_test2.csv";
    bi::CsvWriter csv(path, {"a", "b"});
    EXPECT_THROW(csv.row({1.0}), bu::Error);
    std::remove(path.c_str());
}
