// Tests for the VTK and CSV writers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/driver.hpp"
#include "io/csv.hpp"
#include "io/vtk.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"

namespace bi = bookleaf::io;
namespace bu = bookleaf::util;
using bookleaf::Real;

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(Vtk, WritesWellFormedLegacyFile) {
    bookleaf::core::Hydro h(bookleaf::setup::sod(8, 2));
    h.run(std::nullopt, 2);
    const std::string path = "/tmp/bookleaf_test_sod.vtk";
    bi::write_vtk(path, h.mesh(), h.state());
    const auto text = slurp(path);
    EXPECT_NE(text.find("# vtk DataFile Version 3.0"), std::string::npos);
    EXPECT_NE(text.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
    EXPECT_NE(text.find("POINTS 27 double"), std::string::npos); // 9*3 nodes
    EXPECT_NE(text.find("CELLS 16 80"), std::string::npos);
    EXPECT_NE(text.find("SCALARS density double 1"), std::string::npos);
    EXPECT_NE(text.find("SCALARS pressure double 1"), std::string::npos);
    EXPECT_NE(text.find("VECTORS velocity double"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Vtk, FieldHeaderCarriesStepAndTime) {
    bookleaf::core::Hydro h(bookleaf::setup::sod(8, 2));
    h.run(std::nullopt, 5);
    const std::string path = "/tmp/bookleaf_test_field.vtk";
    bi::write_vtk(path, h.mesh(), h.state(), h.steps(), h.time());
    const auto text = slurp(path);
    // The conventional CYCLE/TIME field arrays head the CELL_DATA block.
    const auto field = text.find("FIELD FieldData 2\nCYCLE 1 1 int\n5\n"
                                 "TIME 1 1 double\n");
    ASSERT_NE(field, std::string::npos);
    EXPECT_GT(field, text.find("CELL_DATA"));
    // The recorded time round-trips exactly (max_digits10).
    std::istringstream t_text(
        text.substr(text.find('\n', text.find("TIME 1 1 double")) + 1));
    Real t_back = -1.0;
    t_text >> t_back;
    EXPECT_EQ(t_back, h.time());
    std::remove(path.c_str());
}

TEST(Vtk, DumpsRoundTripAtFullPrecision) {
    // precision(12) used to truncate dumped fields; at max_digits10 every
    // value parses back to the identical double, so VTK dumps can be
    // diffed bitwise like the CSV dumps.
    bookleaf::core::Hydro h(bookleaf::setup::sod(4, 2));
    auto& rho = h.state().rho;
    rho[0] = 1.0 / 3.0;
    rho[1] = 0.1234567890123456789; // not representable at 12 digits
    const std::string path = "/tmp/bookleaf_test_precision.vtk";
    bi::write_vtk(path, h.mesh(), h.state());
    const auto text = slurp(path);
    auto pos = text.find("SCALARS density double 1");
    ASSERT_NE(pos, std::string::npos);
    pos = text.find('\n', text.find("LOOKUP_TABLE default", pos)) + 1;
    std::istringstream values(text.substr(pos));
    Real v0 = 0, v1 = 0;
    values >> v0 >> v1;
    EXPECT_EQ(v0, rho[0]);
    EXPECT_EQ(v1, rho[1]);
    std::remove(path.c_str());
}

TEST(Vtk, FailsLoudlyOnBadPath) {
    bookleaf::core::Hydro h(bookleaf::setup::sod(4, 2));
    EXPECT_THROW(bi::write_vtk("/nonexistent/dir/x.vtk", h.mesh(), h.state()),
                 bu::Error);
}

TEST(Csv, WritesHeaderAndRows) {
    const std::string path = "/tmp/bookleaf_test.csv";
    {
        bi::CsvWriter csv(path, {"t", "dt", "mass"});
        csv.row({0.0, 1e-4, 1.0});
        csv.row({1e-4, 2e-4, 1.0});
    }
    const auto text = slurp(path);
    EXPECT_NE(text.find("t,dt,mass"), std::string::npos);
    EXPECT_NE(text.find("0.0001"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Csv, RejectsWrongArity) {
    const std::string path = "/tmp/bookleaf_test2.csv";
    bi::CsvWriter csv(path, {"a", "b"});
    EXPECT_THROW(csv.row({1.0}), bu::Error);
    std::remove(path.c_str());
}

TEST(Csv, AppendModeContinuesWithoutASecondHeader) {
    const std::string path = "/tmp/bookleaf_test_append.csv";
    std::remove(path.c_str());
    {
        bi::CsvWriter csv(path, {"a", "b"});
        csv.row({1.0, 2.0});
    }
    {
        bi::CsvWriter csv(path, {"a", "b"}, bi::CsvWriter::Mode::append);
        csv.row({3.0, 4.0});
    }
    EXPECT_EQ(slurp(path), "a,b\n1,2\n3,4\n");
    std::remove(path.c_str());
}

TEST(Csv, AppendModeWritesTheHeaderForAFreshFile) {
    const std::string path = "/tmp/bookleaf_test_append_fresh.csv";
    std::remove(path.c_str());
    {
        bi::CsvWriter csv(path, {"a", "b"}, bi::CsvWriter::Mode::append);
        csv.row({1.0, 2.0});
    }
    EXPECT_EQ(slurp(path), "a,b\n1,2\n");
    std::remove(path.c_str());
}
