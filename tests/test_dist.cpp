// Integration tests for the distributed (flat-MPI analogue) driver:
// rank-count invariance of the physics, both partitioners, conservation,
// and the distributed ALE/Eulerian remap (bitwise == serial core::Hydro).
#include <gtest/gtest.h>

#include <cmath>

#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "mesh/generator.hpp"
#include "part/partition.hpp"
#include "part/subdomain.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace bd = bookleaf::dist;
namespace bh = bookleaf::hydro;
namespace bm = bookleaf::mesh;
namespace be = bookleaf::eos;
namespace bp = bookleaf::part;
using bookleaf::Index;
using bookleaf::Real;

namespace {

struct Problem {
    bm::Mesh mesh;
    be::MaterialTable materials;
    std::vector<Real> rho, ein, u, v;
};

/// A miniature Sod-like two-state problem on a strip.
Problem sod_like(Index nx, Index ny) {
    Problem p;
    bm::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 0.1,
                      .nx = nx, .ny = ny};
    spec.region_of = [](Real cx, Real) { return cx < 0.5 ? 0 : 1; };
    p.mesh = bm::generate_rect(spec);
    p.materials.materials = {be::IdealGas{1.4}, be::IdealGas{1.4}};
    p.rho.resize(static_cast<std::size_t>(p.mesh.n_cells()));
    p.ein.resize(p.rho.size());
    for (Index c = 0; c < p.mesh.n_cells(); ++c) {
        const bool left = p.mesh.cell_region[static_cast<std::size_t>(c)] == 0;
        p.rho[static_cast<std::size_t>(c)] = left ? 1.0 : 0.125;
        // e = P / ((gamma-1) rho): left P=1, right P=0.1.
        p.ein[static_cast<std::size_t>(c)] = left ? 2.5 : 2.0;
    }
    p.u.assign(static_cast<std::size_t>(p.mesh.n_nodes()), 0.0);
    p.v.assign(p.u.size(), 0.0);
    return p;
}

bd::Result run_ranks(const Problem& p, int n_ranks, Real t_end,
                     bool use_multilevel = false) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro.dt_initial = 1e-4;
    if (use_multilevel)
        opts.partitioner = [](const bm::Mesh& m, int n) {
            return bp::multilevel(m, n);
        };
    return bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
}

} // namespace

TEST(Distributed, SingleRankRuns) {
    const auto p = sod_like(32, 2);
    const auto r = run_ranks(p, 1, 0.02);
    EXPECT_GT(r.steps, 0);
    EXPECT_NEAR(r.t_final, 0.02, 1e-12);
    // The shock tube has begun to evolve: density between states appears.
    Real rho_min = 1e9, rho_max = 0;
    for (const Real rho : r.rho) {
        rho_min = std::min(rho_min, rho);
        rho_max = std::max(rho_max, rho);
    }
    EXPECT_LT(rho_min, 0.13);
    EXPECT_GT(rho_max, 0.9);
}

TEST(Distributed, FourRanksMatchOneRank) {
    const auto p = sod_like(48, 2);
    const auto r1 = run_ranks(p, 1, 0.05);
    const auto r4 = run_ranks(p, 4, 0.05);
    ASSERT_EQ(r1.steps, r4.steps);
    ASSERT_EQ(r1.rho.size(), r4.rho.size());
    for (std::size_t c = 0; c < r1.rho.size(); ++c) {
        EXPECT_NEAR(r4.rho[c], r1.rho[c], 1e-10) << "cell " << c;
        EXPECT_NEAR(r4.ein[c], r1.ein[c], 1e-10) << "cell " << c;
    }
    for (std::size_t n = 0; n < r1.u.size(); ++n)
        EXPECT_NEAR(r4.u[n], r1.u[n], 1e-10) << "node " << n;
}

TEST(Distributed, RankCountSweepIsInvariant) {
    const auto p = sod_like(40, 4);
    const auto ref = run_ranks(p, 1, 0.03);
    for (const int n_ranks : {2, 3, 5, 8}) {
        const auto r = run_ranks(p, n_ranks, 0.03);
        ASSERT_EQ(r.steps, ref.steps) << n_ranks << " ranks";
        Real max_err = 0;
        for (std::size_t c = 0; c < ref.rho.size(); ++c)
            max_err = std::max(max_err, std::abs(r.rho[c] - ref.rho[c]));
        EXPECT_LT(max_err, 1e-9) << n_ranks << " ranks";
    }
}

TEST(Distributed, MultilevelPartitionGivesSamePhysics) {
    const auto p = sod_like(40, 4);
    const auto r_rcb = run_ranks(p, 4, 0.03, false);
    const auto r_ml = run_ranks(p, 4, 0.03, true);
    ASSERT_EQ(r_rcb.steps, r_ml.steps);
    for (std::size_t c = 0; c < r_rcb.rho.size(); ++c)
        EXPECT_NEAR(r_ml.rho[c], r_rcb.rho[c], 1e-9);
}

TEST(Distributed, ConservationAcrossRanks) {
    // Total mass and energy from gathered fields must match the initial
    // totals (reflective box, no piston).
    const auto p = sod_like(32, 4);
    // Initial totals on the global mesh:
    bh::State s0 = bh::allocate(p.mesh);
    s0.rho.assign(p.rho.begin(), p.rho.end());
    s0.ein.assign(p.ein.begin(), p.ein.end());
    bh::initialise(p.mesh, p.materials, s0);
    const auto before = bh::totals(p.mesh, s0);

    const auto r = run_ranks(p, 4, 0.04);
    // Rebuild totals: mass = sum rho*V is unavailable without volumes, so
    // use the dist internal energy directly via mass-weighted e: masses are
    // Lagrangian-constant, equal to the initial cell masses.
    Real internal = 0.0;
    for (std::size_t c = 0; c < r.ein.size(); ++c)
        internal += s0.cell_mass[c] * r.ein[c];
    Real kinetic = 0.0;
    for (std::size_t n = 0; n < r.u.size(); ++n)
        kinetic += Real(0.5) * s0.node_mass[n] *
                   (r.u[n] * r.u[n] + r.v[n] * r.v[n]);
    EXPECT_NEAR(internal + kinetic, before.total_energy(),
                1e-9 * std::abs(before.total_energy()));
}

TEST(Distributed, ProfilerSeesHaloAndReduce) {
    const auto p = sod_like(24, 2);
    const auto r = run_ranks(p, 2, 0.01);
    for (const auto& prof : r.profiles) {
        EXPECT_GT(prof[static_cast<std::size_t>(bookleaf::util::Kernel::halo)]
                      .calls,
                  0);
        EXPECT_GT(prof[static_cast<std::size_t>(bookleaf::util::Kernel::getq)]
                      .calls,
                  0);
    }
}

// ---------------------------------------------------------------------------
// Halo/compute overlap (nonblocking typhon path)
// ---------------------------------------------------------------------------

namespace {

namespace bt = bookleaf::typhon;

bd::Result run_mode(const bm::Mesh& mesh, const be::MaterialTable& materials,
                    const std::vector<Real>& rho, const std::vector<Real>& ein,
                    const std::vector<Real>& u, const std::vector<Real>& v,
                    int n_ranks, Real t_end, bool overlap,
                    bt::Packing packing = bt::Packing::coalesced) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro.dt_initial = 1e-4;
    opts.overlap = overlap;
    opts.packing = packing;
    return bd::run(mesh, materials, rho, ein, u, v, opts);
}

/// Bitwise comparison of two gathered results (the overlap contract:
/// ghost inputs are identical bytes, only the kernel schedule changes).
void expect_bitwise_equal(const bd::Result& a, const bd::Result& b,
                          const std::string& label) {
    ASSERT_EQ(a.steps, b.steps) << label;
    ASSERT_EQ(a.rho.size(), b.rho.size());
    for (std::size_t c = 0; c < a.rho.size(); ++c) {
        EXPECT_EQ(a.rho[c], b.rho[c]) << label << ": cell " << c;
        EXPECT_EQ(a.ein[c], b.ein[c]) << label << ": cell " << c;
    }
    for (std::size_t n = 0; n < a.u.size(); ++n) {
        EXPECT_EQ(a.u[n], b.u[n]) << label << ": node " << n;
        EXPECT_EQ(a.v[n], b.v[n]) << label << ": node " << n;
        EXPECT_EQ(a.x[n], b.x[n]) << label << ": node " << n;
        EXPECT_EQ(a.y[n], b.y[n]) << label << ": node " << n;
    }
    // The shared contract predicate must agree with the element-wise
    // expectations above (it is what the bench and example use).
    EXPECT_TRUE(bd::bitwise_equal(a, b)) << label;
}

} // namespace

TEST(DistOverlap, BitwiseIdenticalToBlockingOnSod) {
    const auto p = sod_like(48, 4);
    for (const int n_ranks : {1, 2, 4}) {
        const auto blocking = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                       p.v, n_ranks, 0.04, false);
        const auto overlap = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                      p.v, n_ranks, 0.04, true);
        expect_bitwise_equal(blocking, overlap,
                             "sod " + std::to_string(n_ranks) + " ranks");
    }
}

TEST(DistOverlap, BitwiseIdenticalToBlockingOnNoh) {
    // Noh exercises the subzonal/hourglass force terms and a 2-D front
    // crossing the partition boundaries.
    auto p = bookleaf::setup::noh(20);
    for (const int n_ranks : {1, 2, 4}) {
        const auto blocking = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                       p.v, n_ranks, 0.05, false);
        const auto overlap = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                      p.v, n_ranks, 0.05, true);
        expect_bitwise_equal(blocking, overlap,
                             "noh " + std::to_string(n_ranks) + " ranks");
    }
}

TEST(DistOverlap, OverlapMatchesSingleRankToRoundoff) {
    // Rank-count invariance (round-off class, as for the blocking path):
    // the overlapped run at any rank count stays within summation-order
    // round-off of the 1-rank run.
    const auto p = sod_like(40, 4);
    const auto ref = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, 1,
                              0.03, true);
    for (const int n_ranks : {2, 4}) {
        const auto r = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v,
                                n_ranks, 0.03, true);
        ASSERT_EQ(r.steps, ref.steps);
        for (std::size_t c = 0; c < ref.rho.size(); ++c)
            EXPECT_NEAR(r.rho[c], ref.rho[c], 1e-9) << n_ranks << " ranks";
    }
}

TEST(DistOverlap, HaloProfileStillPopulated) {
    const auto p = sod_like(24, 2);
    const auto r = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, 2,
                            0.01, true);
    for (const auto& prof : r.profiles) {
        EXPECT_GT(prof[static_cast<std::size_t>(bookleaf::util::Kernel::halo)]
                      .calls,
                  0);
        EXPECT_GT(prof[static_cast<std::size_t>(bookleaf::util::Kernel::getacc)]
                      .calls,
                  0);
    }
}

// ---------------------------------------------------------------------------
// Coalesced per-peer halo packing (Packing ablation + message counts)
// ---------------------------------------------------------------------------

TEST(DistPacking, CoalescedEqualsPerFieldEqualsBlockingOnSod) {
    // The full matrix at every rank count: the wire format and the
    // schedule are orthogonal knobs, and all four combinations must land
    // bitwise-identical fields.
    const auto p = sod_like(48, 4);
    for (const int n_ranks : {1, 2, 4}) {
        const auto label = "sod " + std::to_string(n_ranks) + " ranks";
        const auto coalesced =
            run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, n_ranks,
                     0.04, true, bt::Packing::coalesced);
        const auto per_field =
            run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, n_ranks,
                     0.04, true, bt::Packing::per_field);
        const auto blocking_coalesced =
            run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, n_ranks,
                     0.04, false, bt::Packing::coalesced);
        const auto blocking_per_field =
            run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, n_ranks,
                     0.04, false, bt::Packing::per_field);
        expect_bitwise_equal(coalesced, per_field, label + " (per-field)");
        expect_bitwise_equal(coalesced, blocking_coalesced,
                             label + " (blocking)");
        expect_bitwise_equal(coalesced, blocking_per_field,
                             label + " (blocking per-field)");
    }
}

TEST(DistPacking, CoalescedEqualsPerFieldEqualsBlockingOnNoh) {
    auto p = bookleaf::setup::noh(20);
    for (const int n_ranks : {1, 2, 4}) {
        const auto label = "noh " + std::to_string(n_ranks) + " ranks";
        const auto coalesced = run_mode(p.mesh, p.materials, p.rho, p.ein,
                                        p.u, p.v, n_ranks, 0.05, true,
                                        bt::Packing::coalesced);
        const auto per_field = run_mode(p.mesh, p.materials, p.rho, p.ein,
                                        p.u, p.v, n_ranks, 0.05, true,
                                        bt::Packing::per_field);
        const auto blocking = run_mode(p.mesh, p.materials, p.rho, p.ein,
                                       p.u, p.v, n_ranks, 0.05, false,
                                       bt::Packing::coalesced);
        expect_bitwise_equal(coalesced, per_field, label + " (per-field)");
        expect_bitwise_equal(coalesced, blocking, label + " (blocking)");
    }
}

TEST(DistPacking, MessageCountIsPeersNotFieldsTimesPeers) {
    // The tentpole's accounting: with coalescing the per-step message
    // count collapses from fields x peers to peers on every exchange.
    // Subdomain::messages_per_step is the single written-down statement
    // of that wire format; the Hub's traffic counter must agree exactly.
    const auto p = sod_like(40, 4);
    const int n_ranks = 4;
    const auto part = bp::rcb(p.mesh, n_ranks);
    const auto subs = bp::decompose(p.mesh, part, n_ranks);
    for (const auto packing :
         {bt::Packing::coalesced, bt::Packing::per_field}) {
        long per_step = 0;
        for (const auto& sub : subs) per_step += sub.messages_per_step(packing);
        for (const bool overlap : {true, false}) {
            const auto r = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                    p.v, n_ranks, 0.02, overlap, packing);
            ASSERT_GT(r.steps, 0);
            EXPECT_EQ(r.traffic.messages,
                      static_cast<long>(r.steps) * per_step)
                << (packing == bt::Packing::coalesced ? "coalesced"
                                                      : "per_field")
                << (overlap ? " overlap" : " blocking");
        }
    }
    // And coalescing strictly reduces messages while moving the same
    // payload (ghost reals are identical bytes in both formats).
    const auto coalesced = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                    p.v, n_ranks, 0.02, true,
                                    bt::Packing::coalesced);
    const auto per_field = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                    p.v, n_ranks, 0.02, true,
                                    bt::Packing::per_field);
    EXPECT_LT(coalesced.traffic.messages, per_field.traffic.messages);
    EXPECT_EQ(coalesced.traffic.reals, per_field.traffic.reals);
}

// ---------------------------------------------------------------------------
// Distributed ALE/Eulerian remap (bitwise == serial core::Hydro contract)
// ---------------------------------------------------------------------------

namespace {

namespace ba = bookleaf::ale;

/// Run the serial reference driver on a problem and collect the fields
/// the distributed result gathers. The distributed remap's contract is
/// bitwise equality against exactly this.
struct SerialFields {
    int steps = 0;
    std::vector<Real> rho, ein, u, v, x, y;
};

SerialFields serial_reference(bookleaf::setup::Problem problem, Real t_end) {
    bookleaf::core::Hydro h(std::move(problem));
    const auto summary = h.run(t_end);
    SerialFields f;
    f.steps = summary.steps;
    f.rho.assign(h.state().rho.begin(), h.state().rho.end());
    f.ein.assign(h.state().ein.begin(), h.state().ein.end());
    f.u.assign(h.state().u.begin(), h.state().u.end());
    f.v.assign(h.state().v.begin(), h.state().v.end());
    f.x.assign(h.state().x.begin(), h.state().x.end());
    f.y.assign(h.state().y.begin(), h.state().y.end());
    return f;
}

/// Every gathered field must equal the serial driver's bit for bit (every
/// global entity is owned by exactly one rank).
void expect_bitwise_serial(const bd::Result& r, const SerialFields& ref,
                           const std::string& label) {
    ASSERT_EQ(r.steps, ref.steps) << label;
    ASSERT_EQ(r.rho.size(), ref.rho.size()) << label;
    for (std::size_t c = 0; c < ref.rho.size(); ++c) {
        EXPECT_EQ(r.rho[c], ref.rho[c]) << label << ": cell " << c;
        EXPECT_EQ(r.ein[c], ref.ein[c]) << label << ": cell " << c;
    }
    for (std::size_t n = 0; n < ref.u.size(); ++n) {
        EXPECT_EQ(r.u[n], ref.u[n]) << label << ": node " << n;
        EXPECT_EQ(r.v[n], ref.v[n]) << label << ": node " << n;
        EXPECT_EQ(r.x[n], ref.x[n]) << label << ": node " << n;
        EXPECT_EQ(r.y[n], ref.y[n]) << label << ": node " << n;
    }
}

bd::Result run_deck(const bookleaf::setup::Problem& p, int n_ranks, Real t_end,
                    bool overlap, bt::Packing packing) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro = p.hydro;
    opts.ale = p.ale;
    opts.overlap = overlap;
    opts.packing = packing;
    return bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
}

} // namespace

TEST(DistRemap, EulerianSodBitwiseMatchesSerialDriver) {
    // The sod_eulerian.in configuration at test scale: remap back to the
    // generation mesh every step. Gathered rho/ein/u/v/x/y must be
    // bitwise identical to the serial core::Hydro run on owned entities
    // at every rank count, for every (overlap x packing) combination.
    const Real t_end = 0.03;
    auto problem = bookleaf::setup::sod(48, 4);
    problem.ale.mode = ba::Mode::eulerian;
    const auto ref = serial_reference(bookleaf::setup::sod(48, 4), t_end);
    // (serial_reference consumed a fresh copy; re-apply the mode there)
    auto eul = bookleaf::setup::sod(48, 4);
    eul.ale.mode = ba::Mode::eulerian;
    const auto ref_eul = serial_reference(std::move(eul), t_end);
    ASSERT_GT(ref_eul.steps, 0);
    // Sanity: the remap changes the answer (otherwise the contract below
    // would be vacuous).
    EXPECT_NE(ref.rho, ref_eul.rho);

    for (const int n_ranks : {1, 2, 4})
        for (const bool overlap : {true, false})
            for (const auto packing :
                 {bt::Packing::coalesced, bt::Packing::per_field}) {
                const auto label =
                    "eulerian sod " + std::to_string(n_ranks) + " ranks " +
                    (overlap ? "overlap" : "blocking") +
                    (packing == bt::Packing::coalesced ? " coalesced"
                                                       : " per-field");
                const auto r =
                    run_deck(problem, n_ranks, t_end, overlap, packing);
                expect_bitwise_serial(r, ref_eul, label);
            }
}

TEST(DistRemap, AleNohBitwiseMatchesSerialDriver) {
    // An ALE Noh deck: Jacobi-smoothed target mesh every third step. The
    // smoothing adds the per-pass node-position halo; the contract is the
    // same bitwise identity.
    const Real t_end = 0.04;
    auto problem = bookleaf::setup::noh(16);
    problem.ale.mode = ba::Mode::ale;
    problem.ale.frequency = 3;
    problem.ale.smoothing_passes = 2;
    auto serial_problem = bookleaf::setup::noh(16);
    serial_problem.ale = problem.ale;
    const auto ref = serial_reference(std::move(serial_problem), t_end);
    ASSERT_GT(ref.steps, 0);

    for (const int n_ranks : {1, 2, 4})
        for (const bool overlap : {true, false}) {
            const auto label = "ale noh " + std::to_string(n_ranks) +
                               " ranks " + (overlap ? "overlap" : "blocking");
            const auto r = run_deck(problem, n_ranks, t_end, overlap,
                                    bt::Packing::coalesced);
            expect_bitwise_serial(r, ref, label);
        }
    // And the packing ablation at the largest rank count.
    const auto r = run_deck(problem, 4, t_end, true, bt::Packing::per_field);
    expect_bitwise_serial(r, ref, "ale noh 4 ranks per-field");
}

TEST(DistRemap, LagrangeIsNowBitwiseRankInvariantToo) {
    // The globally-ordered assembly gather makes even the pure-Lagrange
    // distributed driver bitwise identical to core::Hydro — the remap
    // contract rests on this, so pin it.
    const Real t_end = 0.03;
    const auto problem = bookleaf::setup::sod(40, 4);
    const auto ref = serial_reference(bookleaf::setup::sod(40, 4), t_end);
    for (const int n_ranks : {2, 4}) {
        const auto r = run_deck(problem, n_ranks, t_end, true,
                                bt::Packing::coalesced);
        expect_bitwise_serial(r, ref,
                              "lagrange sod " + std::to_string(n_ranks));
    }
}

namespace {

/// Harness for driving dist::remap directly: a consistent global state
/// with nonuniform fields, randomized velocities and a fake Lagrangian
/// interior displacement, plus the machinery to build the matching
/// per-rank subdomain states.
struct RemapRig {
    bm::Mesh mesh;
    be::MaterialTable materials;
    std::vector<Real> rho, ein, u, v;

    explicit RemapRig(Index nx, Index ny) {
        mesh = bm::generate_rect({.nx = nx, .ny = ny,
                                  .reflective_walls = false});
        materials.materials = {be::IdealGas{1.4}};
        rho.resize(static_cast<std::size_t>(mesh.n_cells()));
        ein.resize(rho.size());
        for (Index c = 0; c < mesh.n_cells(); ++c) {
            rho[static_cast<std::size_t>(c)] = 1.0 + 0.5 * std::sin(0.9 * c);
            ein[static_cast<std::size_t>(c)] = 2.0 + 0.7 * std::cos(1.7 * c);
        }
        bookleaf::util::SplitMix64 rng(7);
        u.resize(static_cast<std::size_t>(mesh.n_nodes()));
        v.resize(u.size());
        for (auto& w : u) w = rng.uniform(-0.3, 0.3);
        for (auto& w : v) w = rng.uniform(-0.3, 0.3);
    }

    /// Displace strictly-interior nodes (keyed on the generation-time
    /// coordinates so every rank applies the identical move), rebuild the
    /// dependent state, and re-derive node masses through the assembly
    /// gather (initialise's node-mass loop sums in mesh-local order; the
    /// gather is what both drivers use from the first step on).
    void prepare(const bh::Context& ctx, bh::State& s,
                 std::span<const Index> to_global) const {
        for (Index n = 0; n < ctx.mesh->n_nodes(); ++n) {
            const auto gi = static_cast<std::size_t>(
                to_global.empty() ? n : to_global[static_cast<std::size_t>(n)]);
            const auto ni = static_cast<std::size_t>(n);
            const Real px = mesh.x[gi], py = mesh.y[gi];
            if (px < 1e-9 || px > 1 - 1e-9 || py < 1e-9 || py > 1 - 1e-9)
                continue;
            s.x[ni] += 0.008;
            s.y[ni] += 0.006;
        }
        s.x0 = s.x;
        s.y0 = s.y;
        bh::getgeom(ctx, s, s.u, s.v, 0.0);
        bh::getrho(ctx, s);
        bh::getpc(ctx, s);
        std::vector<Index> all(static_cast<std::size_t>(ctx.mesh->n_nodes()));
        for (Index n = 0; n < ctx.mesh->n_nodes(); ++n)
            all[static_cast<std::size_t>(n)] = n;
        bh::getacc_assemble(ctx, s, all);
    }
};

struct RemapTotals {
    Real mass = 0, internal = 0, px = 0, py = 0;
};

RemapTotals remap_totals(std::span<const Real> cell_mass,
                         std::span<const Real> ein,
                         std::span<const Real> node_mass,
                         std::span<const Real> u,
                         std::span<const Real> v) {
    RemapTotals t;
    for (std::size_t c = 0; c < cell_mass.size(); ++c) {
        t.mass += cell_mass[c];
        t.internal += cell_mass[c] * ein[c];
    }
    for (std::size_t n = 0; n < u.size(); ++n) {
        t.px += node_mass[n] * u[n];
        t.py += node_mass[n] * v[n];
    }
    return t;
}

} // namespace

TEST(DistRemap, ConservationPerRemapExactAtEveryRankCount) {
    // One Eulerian remap of a displaced nonuniform state, limiter on and
    // off: mass, internal energy and momentum are conserved to
    // near-machine precision, and the distributed remap's gathered fields
    // (hence its conserved totals, summed in global order) are bitwise
    // identical to the serial ale::alestep.
    const RemapRig rig(8, 8);
    bookleaf::util::Profiler profiler;

    for (const bool limit : {true, false}) {
        ba::Options aopts;
        aopts.mode = ba::Mode::eulerian;
        aopts.limit = limit;

        // --- serial reference remap ----------------------------------------
        bh::State serial = bh::allocate(rig.mesh);
        serial.rho.assign(rig.rho.begin(), rig.rho.end());
        serial.ein.assign(rig.ein.begin(), rig.ein.end());
        serial.u.assign(rig.u.begin(), rig.u.end());
        serial.v.assign(rig.v.begin(), rig.v.end());
        bh::initialise(rig.mesh, rig.materials, serial);
        bh::Context ctx;
        ctx.mesh = &rig.mesh;
        ctx.materials = &rig.materials;
        ctx.profiler = &profiler;
        rig.prepare(ctx, serial, {});
        const auto before =
            remap_totals(serial.cell_mass, serial.ein, serial.node_mass,
                         serial.u, serial.v);
        ba::Workspace w;
        ba::alestep(ctx, serial, aopts, w);
        const auto after =
            remap_totals(serial.cell_mass, serial.ein, serial.node_mass,
                         serial.u, serial.v);

        EXPECT_NEAR(after.mass, before.mass, 1e-13 * before.mass) << limit;
        EXPECT_NEAR(after.internal, before.internal,
                    1e-12 * std::abs(before.internal))
            << limit;
        EXPECT_NEAR(after.px, before.px, 1e-12) << limit;
        EXPECT_NEAR(after.py, before.py, 1e-12) << limit;

        // --- distributed remap at 2 and 4 ranks -----------------------------
        for (const int n_ranks : {2, 4}) {
            const auto part = bp::rcb(rig.mesh, n_ranks);
            const auto subs = bp::decompose(rig.mesh, part, n_ranks);
            std::vector<Real> g_mass(rig.rho.size()), g_ein(rig.rho.size());
            std::vector<Real> g_nmass(rig.u.size()), g_u(rig.u.size()),
                g_v(rig.u.size()), g_x(rig.u.size()), g_y(rig.u.size());
            std::vector<bookleaf::util::Profiler> profs(
                static_cast<std::size_t>(n_ranks));

            bt::run(n_ranks, [&](bt::Comm& comm) {
                const auto& sub = subs[static_cast<std::size_t>(comm.rank())];
                bh::State s = bh::allocate(sub.local);
                for (std::size_t lc = 0; lc < sub.local_cells.size(); ++lc) {
                    const auto gc =
                        static_cast<std::size_t>(sub.local_cells[lc]);
                    s.rho[lc] = rig.rho[gc];
                    s.ein[lc] = rig.ein[gc];
                }
                for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
                    const auto gn =
                        static_cast<std::size_t>(sub.local_nodes[ln]);
                    s.u[ln] = rig.u[gn];
                    s.v[ln] = rig.v[gn];
                }
                bh::initialise(sub.local, rig.materials, s);
                bh::Context lctx;
                lctx.mesh = &sub.local;
                lctx.materials = &rig.materials;
                lctx.profiler =
                    &profs[static_cast<std::size_t>(comm.rank())];
                lctx.dt_cells = sub.n_owned_cells;
                lctx.assembly_corners = &sub.assembly_corners;
                rig.prepare(lctx, s, sub.local_nodes);

                ba::Workspace lw;
                bd::remap(lctx, s, aopts, lw, comm, sub,
                          bt::Packing::coalesced);

                for (Index lc = 0; lc < sub.n_owned_cells; ++lc) {
                    const auto gc = static_cast<std::size_t>(
                        sub.local_cells[static_cast<std::size_t>(lc)]);
                    g_mass[gc] = s.cell_mass[static_cast<std::size_t>(lc)];
                    g_ein[gc] = s.ein[static_cast<std::size_t>(lc)];
                }
                for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
                    if (!sub.node_owned[ln]) continue;
                    const auto gn =
                        static_cast<std::size_t>(sub.local_nodes[ln]);
                    g_nmass[gn] = s.node_mass[ln];
                    g_u[gn] = s.u[ln];
                    g_v[gn] = s.v[ln];
                    g_x[gn] = s.x[ln];
                    g_y[gn] = s.y[ln];
                }
            });

            const auto label = std::string(limit ? "limit" : "no-limit") +
                               " " + std::to_string(n_ranks) + " ranks";
            // Bitwise identity with the serial remap on every owned field
            // — which makes the distributed conserved totals (global
            // summation order) bit-identical to the serial ones checked
            // above.
            for (std::size_t c = 0; c < g_mass.size(); ++c) {
                EXPECT_EQ(g_mass[c], serial.cell_mass[c])
                    << label << " cell " << c;
                EXPECT_EQ(g_ein[c], serial.ein[c]) << label << " cell " << c;
            }
            for (std::size_t n = 0; n < g_u.size(); ++n) {
                EXPECT_EQ(g_nmass[n], serial.node_mass[n])
                    << label << " node " << n;
                EXPECT_EQ(g_u[n], serial.u[n]) << label << " node " << n;
                EXPECT_EQ(g_v[n], serial.v[n]) << label << " node " << n;
                EXPECT_EQ(g_x[n], serial.x[n]) << label << " node " << n;
                EXPECT_EQ(g_y[n], serial.y[n]) << label << " node " << n;
            }
            const auto dist_after =
                remap_totals(g_mass, g_ein, g_nmass, g_u, g_v);
            EXPECT_EQ(dist_after.mass, after.mass) << label;
            EXPECT_EQ(dist_after.internal, after.internal) << label;
            EXPECT_EQ(dist_after.px, after.px) << label;
            EXPECT_EQ(dist_after.py, after.py) << label;
        }
    }
}

TEST(DistRemap, GhostGradientExchangeMatchesSerial) {
    // Unit test of the ghost-gradient exchange on a hand-built 2-rank
    // split: after aleadvect_gradients(owned) + the remap_cell_schedule
    // exchange, every face-adjacent ghost cell holds bitwise the gradient
    // its owner computed — which is bitwise the serial gradient.
    const auto m = bm::generate_rect({.nx = 6, .ny = 3});
    be::MaterialTable mats;
    mats.materials = {be::IdealGas{1.4}};
    std::vector<Real> rho(static_cast<std::size_t>(m.n_cells()));
    std::vector<Real> ein(rho.size());
    for (Index c = 0; c < m.n_cells(); ++c) {
        rho[static_cast<std::size_t>(c)] = 1.0 + 0.3 * std::sin(1.3 * c);
        ein[static_cast<std::size_t>(c)] = 2.0 + 0.2 * std::cos(0.7 * c);
    }
    // Hand partition with a corner in the cut (rank 1 owns the upper-right
    // block): corners make some ghosts node-only-adjacent, which is what
    // distinguishes the gradient schedule from the full cell schedule.
    std::vector<Index> part(static_cast<std::size_t>(m.n_cells()));
    for (Index c = 0; c < m.n_cells(); ++c) {
        const Index col = c % 6, row = c / 6;
        part[static_cast<std::size_t>(c)] = (col >= 3 && row >= 1) ? 1 : 0;
    }
    const auto subs = bp::decompose(m, part, 2);

    // The gradient schedule must be a strict, non-empty subset of the
    // ghost-cell schedule: node-only-adjacent ghosts (e.g. the cell
    // diagonally below the cut's corner) receive no gradients.
    std::size_t grad_items = 0, cell_items = 0;
    for (const auto& sub : subs) {
        for (const auto& peer : sub.remap_cell_schedule.peers)
            grad_items += peer.recv_items.size();
        for (const auto& peer : sub.cell_schedule.peers)
            cell_items += peer.recv_items.size();
    }
    EXPECT_GT(grad_items, 0u);
    EXPECT_LT(grad_items, cell_items);

    // Serial gradients.
    bookleaf::util::Profiler prof;
    bh::State serial = bh::allocate(m);
    serial.rho.assign(rho.begin(), rho.end());
    serial.ein.assign(ein.begin(), ein.end());
    bh::initialise(m, mats, serial);
    bh::Context ctx;
    ctx.mesh = &m;
    ctx.materials = &mats;
    ctx.profiler = &prof;
    ba::Workspace sw;
    ba::Options aopts;
    ba::aleadvect_centroids(ctx, serial, sw);
    ba::aleadvect_gradients(ctx, serial, aopts, sw, m.n_cells());

    std::array<bookleaf::util::Profiler, 2> profs;
    bt::run(2, [&](bt::Comm& comm) {
        const auto& sub = subs[static_cast<std::size_t>(comm.rank())];
        bh::State s = bh::allocate(sub.local);
        for (std::size_t lc = 0; lc < sub.local_cells.size(); ++lc) {
            const auto gc = static_cast<std::size_t>(sub.local_cells[lc]);
            s.rho[lc] = rho[gc];
            s.ein[lc] = ein[gc];
        }
        bh::initialise(sub.local, mats, s);
        bh::Context lctx;
        lctx.mesh = &sub.local;
        lctx.materials = &mats;
        lctx.profiler = &profs[static_cast<std::size_t>(comm.rank())];
        ba::Workspace lw;
        ba::aleadvect_centroids(lctx, s, lw);
        ba::aleadvect_gradients(lctx, s, aopts, lw, sub.n_owned_cells);
        bt::exchange_all(comm, sub.remap_cell_schedule,
                         {lw.grad_rho_x, lw.grad_rho_y, lw.grad_e_x,
                          lw.grad_e_y},
                         320);

        // Every owned cell matches serial outright; every face-adjacent
        // ghost matches through the exchange.
        const auto n_local = static_cast<Index>(sub.local_cells.size());
        std::vector<std::uint8_t> got(static_cast<std::size_t>(n_local), 0);
        for (Index lc = 0; lc < sub.n_owned_cells; ++lc)
            got[static_cast<std::size_t>(lc)] = 1;
        for (const auto& peer : sub.remap_cell_schedule.peers)
            for (const Index lc : peer.recv_items)
                got[static_cast<std::size_t>(lc)] = 1;
        for (Index lc = 0; lc < n_local; ++lc) {
            if (!got[static_cast<std::size_t>(lc)]) continue;
            const auto gc = static_cast<std::size_t>(
                sub.local_cells[static_cast<std::size_t>(lc)]);
            const auto li = static_cast<std::size_t>(lc);
            EXPECT_EQ(lw.grad_rho_x[li], sw.grad_rho_x[gc])
                << "rank " << comm.rank() << " cell " << gc;
            EXPECT_EQ(lw.grad_rho_y[li], sw.grad_rho_y[gc])
                << "rank " << comm.rank() << " cell " << gc;
            EXPECT_EQ(lw.grad_e_x[li], sw.grad_e_x[gc])
                << "rank " << comm.rank() << " cell " << gc;
            EXPECT_EQ(lw.grad_e_y[li], sw.grad_e_y[gc])
                << "rank " << comm.rank() << " cell " << gc;
        }
    });
}

TEST(DistRemap, MessageCountMatchesMetadata) {
    // The remap wire format written down in Subdomain::messages_per_remap
    // must agree exactly with the Hub's measured traffic: per step the
    // fused state halo + corner halo, per remap the pre-remap refresh,
    // the smoothing syncs (ALE only), the gradient halo and the fused
    // result exchange.
    const auto p = sod_like(40, 4);
    const int n_ranks = 4;
    const auto part = bp::rcb(p.mesh, n_ranks);
    const auto subs = bp::decompose(p.mesh, part, n_ranks);

    struct Case {
        ba::Mode mode;
        int frequency;
        int smoothing_passes;
    };
    for (const auto& cs : {Case{ba::Mode::eulerian, 1, 0},
                           Case{ba::Mode::ale, 2, 3}}) {
        for (const auto packing :
             {bt::Packing::coalesced, bt::Packing::per_field}) {
            bd::Options opts;
            opts.n_ranks = n_ranks;
            opts.t_end = 0.01;
            opts.hydro.dt_initial = 1e-4;
            opts.packing = packing;
            opts.ale.mode = cs.mode;
            opts.ale.frequency = cs.frequency;
            opts.ale.smoothing_passes = cs.smoothing_passes;
            const auto r = bd::run(p.mesh, p.materials, p.rho, p.ein, p.u,
                                   p.v, opts);
            ASSERT_GT(r.steps, 0);
            const int n_mesh_exchanges =
                cs.mode == ba::Mode::ale ? cs.smoothing_passes + 1 : 0;
            const long remaps =
                cs.mode == ba::Mode::eulerian
                    ? r.steps
                    : r.steps / cs.frequency; // steps where (k+1) % f == 0
            long expected = 0;
            for (const auto& sub : subs)
                expected +=
                    static_cast<long>(r.steps) * sub.messages_per_step(packing) +
                    remaps * sub.messages_per_remap(packing, n_mesh_exchanges);
            EXPECT_EQ(r.traffic.messages, expected)
                << (cs.mode == ba::Mode::eulerian ? "eulerian" : "ale")
                << (packing == bt::Packing::coalesced ? " coalesced"
                                                      : " per_field");
        }
    }
}
