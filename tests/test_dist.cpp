// Integration tests for the distributed (flat-MPI analogue) driver:
// rank-count invariance of the physics, both partitioners, conservation.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/distributed.hpp"
#include "mesh/generator.hpp"
#include "part/partition.hpp"
#include "part/subdomain.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"

namespace bd = bookleaf::dist;
namespace bh = bookleaf::hydro;
namespace bm = bookleaf::mesh;
namespace be = bookleaf::eos;
namespace bp = bookleaf::part;
using bookleaf::Index;
using bookleaf::Real;

namespace {

struct Problem {
    bm::Mesh mesh;
    be::MaterialTable materials;
    std::vector<Real> rho, ein, u, v;
};

/// A miniature Sod-like two-state problem on a strip.
Problem sod_like(Index nx, Index ny) {
    Problem p;
    bm::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 0.1,
                      .nx = nx, .ny = ny};
    spec.region_of = [](Real cx, Real) { return cx < 0.5 ? 0 : 1; };
    p.mesh = bm::generate_rect(spec);
    p.materials.materials = {be::IdealGas{1.4}, be::IdealGas{1.4}};
    p.rho.resize(static_cast<std::size_t>(p.mesh.n_cells()));
    p.ein.resize(p.rho.size());
    for (Index c = 0; c < p.mesh.n_cells(); ++c) {
        const bool left = p.mesh.cell_region[static_cast<std::size_t>(c)] == 0;
        p.rho[static_cast<std::size_t>(c)] = left ? 1.0 : 0.125;
        // e = P / ((gamma-1) rho): left P=1, right P=0.1.
        p.ein[static_cast<std::size_t>(c)] = left ? 2.5 : 2.0;
    }
    p.u.assign(static_cast<std::size_t>(p.mesh.n_nodes()), 0.0);
    p.v.assign(p.u.size(), 0.0);
    return p;
}

bd::Result run_ranks(const Problem& p, int n_ranks, Real t_end,
                     bool use_multilevel = false) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro.dt_initial = 1e-4;
    if (use_multilevel)
        opts.partitioner = [](const bm::Mesh& m, int n) {
            return bp::multilevel(m, n);
        };
    return bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
}

} // namespace

TEST(Distributed, SingleRankRuns) {
    const auto p = sod_like(32, 2);
    const auto r = run_ranks(p, 1, 0.02);
    EXPECT_GT(r.steps, 0);
    EXPECT_NEAR(r.t_final, 0.02, 1e-12);
    // The shock tube has begun to evolve: density between states appears.
    Real rho_min = 1e9, rho_max = 0;
    for (const Real rho : r.rho) {
        rho_min = std::min(rho_min, rho);
        rho_max = std::max(rho_max, rho);
    }
    EXPECT_LT(rho_min, 0.13);
    EXPECT_GT(rho_max, 0.9);
}

TEST(Distributed, FourRanksMatchOneRank) {
    const auto p = sod_like(48, 2);
    const auto r1 = run_ranks(p, 1, 0.05);
    const auto r4 = run_ranks(p, 4, 0.05);
    ASSERT_EQ(r1.steps, r4.steps);
    ASSERT_EQ(r1.rho.size(), r4.rho.size());
    for (std::size_t c = 0; c < r1.rho.size(); ++c) {
        EXPECT_NEAR(r4.rho[c], r1.rho[c], 1e-10) << "cell " << c;
        EXPECT_NEAR(r4.ein[c], r1.ein[c], 1e-10) << "cell " << c;
    }
    for (std::size_t n = 0; n < r1.u.size(); ++n)
        EXPECT_NEAR(r4.u[n], r1.u[n], 1e-10) << "node " << n;
}

TEST(Distributed, RankCountSweepIsInvariant) {
    const auto p = sod_like(40, 4);
    const auto ref = run_ranks(p, 1, 0.03);
    for (const int n_ranks : {2, 3, 5, 8}) {
        const auto r = run_ranks(p, n_ranks, 0.03);
        ASSERT_EQ(r.steps, ref.steps) << n_ranks << " ranks";
        Real max_err = 0;
        for (std::size_t c = 0; c < ref.rho.size(); ++c)
            max_err = std::max(max_err, std::abs(r.rho[c] - ref.rho[c]));
        EXPECT_LT(max_err, 1e-9) << n_ranks << " ranks";
    }
}

TEST(Distributed, MultilevelPartitionGivesSamePhysics) {
    const auto p = sod_like(40, 4);
    const auto r_rcb = run_ranks(p, 4, 0.03, false);
    const auto r_ml = run_ranks(p, 4, 0.03, true);
    ASSERT_EQ(r_rcb.steps, r_ml.steps);
    for (std::size_t c = 0; c < r_rcb.rho.size(); ++c)
        EXPECT_NEAR(r_ml.rho[c], r_rcb.rho[c], 1e-9);
}

TEST(Distributed, ConservationAcrossRanks) {
    // Total mass and energy from gathered fields must match the initial
    // totals (reflective box, no piston).
    const auto p = sod_like(32, 4);
    // Initial totals on the global mesh:
    bh::State s0 = bh::allocate(p.mesh);
    s0.rho = p.rho;
    s0.ein = p.ein;
    bh::initialise(p.mesh, p.materials, s0);
    const auto before = bh::totals(p.mesh, s0);

    const auto r = run_ranks(p, 4, 0.04);
    // Rebuild totals: mass = sum rho*V is unavailable without volumes, so
    // use the dist internal energy directly via mass-weighted e: masses are
    // Lagrangian-constant, equal to the initial cell masses.
    Real internal = 0.0;
    for (std::size_t c = 0; c < r.ein.size(); ++c)
        internal += s0.cell_mass[c] * r.ein[c];
    Real kinetic = 0.0;
    for (std::size_t n = 0; n < r.u.size(); ++n)
        kinetic += Real(0.5) * s0.node_mass[n] *
                   (r.u[n] * r.u[n] + r.v[n] * r.v[n]);
    EXPECT_NEAR(internal + kinetic, before.total_energy(),
                1e-9 * std::abs(before.total_energy()));
}

TEST(Distributed, ProfilerSeesHaloAndReduce) {
    const auto p = sod_like(24, 2);
    const auto r = run_ranks(p, 2, 0.01);
    for (const auto& prof : r.profiles) {
        EXPECT_GT(prof[static_cast<std::size_t>(bookleaf::util::Kernel::halo)]
                      .calls,
                  0);
        EXPECT_GT(prof[static_cast<std::size_t>(bookleaf::util::Kernel::getq)]
                      .calls,
                  0);
    }
}

// ---------------------------------------------------------------------------
// Halo/compute overlap (nonblocking typhon path)
// ---------------------------------------------------------------------------

namespace {

namespace bt = bookleaf::typhon;

bd::Result run_mode(const bm::Mesh& mesh, const be::MaterialTable& materials,
                    const std::vector<Real>& rho, const std::vector<Real>& ein,
                    const std::vector<Real>& u, const std::vector<Real>& v,
                    int n_ranks, Real t_end, bool overlap,
                    bt::Packing packing = bt::Packing::coalesced) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro.dt_initial = 1e-4;
    opts.overlap = overlap;
    opts.packing = packing;
    return bd::run(mesh, materials, rho, ein, u, v, opts);
}

/// Bitwise comparison of two gathered results (the overlap contract:
/// ghost inputs are identical bytes, only the kernel schedule changes).
void expect_bitwise_equal(const bd::Result& a, const bd::Result& b,
                          const std::string& label) {
    ASSERT_EQ(a.steps, b.steps) << label;
    ASSERT_EQ(a.rho.size(), b.rho.size());
    for (std::size_t c = 0; c < a.rho.size(); ++c) {
        EXPECT_EQ(a.rho[c], b.rho[c]) << label << ": cell " << c;
        EXPECT_EQ(a.ein[c], b.ein[c]) << label << ": cell " << c;
    }
    for (std::size_t n = 0; n < a.u.size(); ++n) {
        EXPECT_EQ(a.u[n], b.u[n]) << label << ": node " << n;
        EXPECT_EQ(a.v[n], b.v[n]) << label << ": node " << n;
    }
    // The shared contract predicate must agree with the element-wise
    // expectations above (it is what the bench and example use).
    EXPECT_TRUE(bd::bitwise_equal(a, b)) << label;
}

} // namespace

TEST(DistOverlap, BitwiseIdenticalToBlockingOnSod) {
    const auto p = sod_like(48, 4);
    for (const int n_ranks : {1, 2, 4}) {
        const auto blocking = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                       p.v, n_ranks, 0.04, false);
        const auto overlap = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                      p.v, n_ranks, 0.04, true);
        expect_bitwise_equal(blocking, overlap,
                             "sod " + std::to_string(n_ranks) + " ranks");
    }
}

TEST(DistOverlap, BitwiseIdenticalToBlockingOnNoh) {
    // Noh exercises the subzonal/hourglass force terms and a 2-D front
    // crossing the partition boundaries.
    auto p = bookleaf::setup::noh(20);
    for (const int n_ranks : {1, 2, 4}) {
        const auto blocking = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                       p.v, n_ranks, 0.05, false);
        const auto overlap = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                      p.v, n_ranks, 0.05, true);
        expect_bitwise_equal(blocking, overlap,
                             "noh " + std::to_string(n_ranks) + " ranks");
    }
}

TEST(DistOverlap, OverlapMatchesSingleRankToRoundoff) {
    // Rank-count invariance (round-off class, as for the blocking path):
    // the overlapped run at any rank count stays within summation-order
    // round-off of the 1-rank run.
    const auto p = sod_like(40, 4);
    const auto ref = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, 1,
                              0.03, true);
    for (const int n_ranks : {2, 4}) {
        const auto r = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v,
                                n_ranks, 0.03, true);
        ASSERT_EQ(r.steps, ref.steps);
        for (std::size_t c = 0; c < ref.rho.size(); ++c)
            EXPECT_NEAR(r.rho[c], ref.rho[c], 1e-9) << n_ranks << " ranks";
    }
}

TEST(DistOverlap, HaloProfileStillPopulated) {
    const auto p = sod_like(24, 2);
    const auto r = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, 2,
                            0.01, true);
    for (const auto& prof : r.profiles) {
        EXPECT_GT(prof[static_cast<std::size_t>(bookleaf::util::Kernel::halo)]
                      .calls,
                  0);
        EXPECT_GT(prof[static_cast<std::size_t>(bookleaf::util::Kernel::getacc)]
                      .calls,
                  0);
    }
}

// ---------------------------------------------------------------------------
// Coalesced per-peer halo packing (Packing ablation + message counts)
// ---------------------------------------------------------------------------

TEST(DistPacking, CoalescedEqualsPerFieldEqualsBlockingOnSod) {
    // The full matrix at every rank count: the wire format and the
    // schedule are orthogonal knobs, and all four combinations must land
    // bitwise-identical fields.
    const auto p = sod_like(48, 4);
    for (const int n_ranks : {1, 2, 4}) {
        const auto label = "sod " + std::to_string(n_ranks) + " ranks";
        const auto coalesced =
            run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, n_ranks,
                     0.04, true, bt::Packing::coalesced);
        const auto per_field =
            run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, n_ranks,
                     0.04, true, bt::Packing::per_field);
        const auto blocking_coalesced =
            run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, n_ranks,
                     0.04, false, bt::Packing::coalesced);
        const auto blocking_per_field =
            run_mode(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, n_ranks,
                     0.04, false, bt::Packing::per_field);
        expect_bitwise_equal(coalesced, per_field, label + " (per-field)");
        expect_bitwise_equal(coalesced, blocking_coalesced,
                             label + " (blocking)");
        expect_bitwise_equal(coalesced, blocking_per_field,
                             label + " (blocking per-field)");
    }
}

TEST(DistPacking, CoalescedEqualsPerFieldEqualsBlockingOnNoh) {
    auto p = bookleaf::setup::noh(20);
    for (const int n_ranks : {1, 2, 4}) {
        const auto label = "noh " + std::to_string(n_ranks) + " ranks";
        const auto coalesced = run_mode(p.mesh, p.materials, p.rho, p.ein,
                                        p.u, p.v, n_ranks, 0.05, true,
                                        bt::Packing::coalesced);
        const auto per_field = run_mode(p.mesh, p.materials, p.rho, p.ein,
                                        p.u, p.v, n_ranks, 0.05, true,
                                        bt::Packing::per_field);
        const auto blocking = run_mode(p.mesh, p.materials, p.rho, p.ein,
                                       p.u, p.v, n_ranks, 0.05, false,
                                       bt::Packing::coalesced);
        expect_bitwise_equal(coalesced, per_field, label + " (per-field)");
        expect_bitwise_equal(coalesced, blocking, label + " (blocking)");
    }
}

TEST(DistPacking, MessageCountIsPeersNotFieldsTimesPeers) {
    // The tentpole's accounting: with coalescing the per-step message
    // count collapses from fields x peers to peers on every exchange.
    // Subdomain::messages_per_step is the single written-down statement
    // of that wire format; the Hub's traffic counter must agree exactly.
    const auto p = sod_like(40, 4);
    const int n_ranks = 4;
    const auto part = bp::rcb(p.mesh, n_ranks);
    const auto subs = bp::decompose(p.mesh, part, n_ranks);
    for (const auto packing :
         {bt::Packing::coalesced, bt::Packing::per_field}) {
        long per_step = 0;
        for (const auto& sub : subs) per_step += sub.messages_per_step(packing);
        for (const bool overlap : {true, false}) {
            const auto r = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                    p.v, n_ranks, 0.02, overlap, packing);
            ASSERT_GT(r.steps, 0);
            EXPECT_EQ(r.traffic.messages,
                      static_cast<long>(r.steps) * per_step)
                << (packing == bt::Packing::coalesced ? "coalesced"
                                                      : "per_field")
                << (overlap ? " overlap" : " blocking");
        }
    }
    // And coalescing strictly reduces messages while moving the same
    // payload (ghost reals are identical bytes in both formats).
    const auto coalesced = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                    p.v, n_ranks, 0.02, true,
                                    bt::Packing::coalesced);
    const auto per_field = run_mode(p.mesh, p.materials, p.rho, p.ein, p.u,
                                    p.v, n_ranks, 0.02, true,
                                    bt::Packing::per_field);
    EXPECT_LT(coalesced.traffic.messages, per_field.traffic.messages);
    EXPECT_EQ(coalesced.traffic.reals, per_field.traffic.reals);
}

// ---------------------------------------------------------------------------
// Distributed driver rejects what it cannot run
// ---------------------------------------------------------------------------

TEST(DistAle, NonLagrangianDeckIsRejectedLoudly) {
    // Regression: an ALE/Eulerian deck (e.g. data/sod_eulerian.in) run
    // distributed used to silently produce pure-Lagrangian results. The
    // driver has no distributed remap, so it must refuse instead.
    const auto p = sod_like(16, 2);
    for (const auto mode :
         {bookleaf::ale::Mode::eulerian, bookleaf::ale::Mode::ale}) {
        bd::Options opts;
        opts.n_ranks = 2;
        opts.t_end = 0.01;
        opts.hydro.dt_initial = 1e-4;
        opts.ale.mode = mode;
        EXPECT_THROW(
            (void)bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts),
            bookleaf::util::Error);
    }
    // Lagrangian decks (the default) still run.
    bd::Options opts;
    opts.n_ranks = 2;
    opts.t_end = 0.01;
    opts.hydro.dt_initial = 1e-4;
    opts.ale.mode = bookleaf::ale::Mode::lagrange;
    const auto r = bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
    EXPECT_GT(r.steps, 0);
}
