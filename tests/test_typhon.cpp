// Tests for the Typhon communication substrate: P2P ordering, collectives,
// ghost-exchange schedules, stress under many ranks and repeated rounds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "typhon/typhon.hpp"
#include "util/error.hpp"

namespace bt = bookleaf::typhon;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

TEST(Typhon, RunLaunchesAllRanks) {
    std::atomic<int> count{0};
    bt::run(5, [&](bt::Comm& comm) {
        EXPECT_EQ(comm.size(), 5);
        EXPECT_GE(comm.rank(), 0);
        EXPECT_LT(comm.rank(), 5);
        count++;
    });
    EXPECT_EQ(count.load(), 5);
}

TEST(Typhon, RankExceptionPropagates) {
    EXPECT_THROW(bt::run(3,
                         [](bt::Comm& comm) {
                             if (comm.rank() == 1)
                                 throw bu::Error("rank 1 failed");
                         }),
                 bu::Error);
}

TEST(Typhon, RankExceptionIsWrappedWithRankAndStep) {
    // The rethrown error must identify *which* rank failed and at which
    // driver step (as last reported through Comm::set_step) — a failed
    // run used to surface only the raw error text, masking the origin.
    try {
        bt::run(3, [](bt::Comm& comm) {
            comm.set_step(17);
            if (comm.rank() == 1) throw bu::Error("boom");
        });
        FAIL() << "expected typhon::RankFailure";
    } catch (const bt::RankFailure& f) {
        EXPECT_EQ(f.rank, 1);
        EXPECT_EQ(f.step, 17);
        const std::string what = f.what();
        EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
        EXPECT_NE(what.find("step 17"), std::string::npos) << what;
        EXPECT_NE(what.find("boom"), std::string::npos) << what;
    }
}

TEST(Typhon, RankFailureBeforeAnyStepOmitsStep) {
    try {
        bt::run(2, [](bt::Comm& comm) {
            if (comm.rank() == 0) throw bu::Error("early");
        });
        FAIL() << "expected typhon::RankFailure";
    } catch (const bt::RankFailure& f) {
        EXPECT_EQ(f.rank, 0);
        EXPECT_EQ(f.step, -1);
        EXPECT_EQ(std::string(f.what()).find("at step"), std::string::npos)
            << f.what();
    }
}

TEST(Typhon, RankFailureUnblocksPeersWaitingOnCollective) {
    // A dead rank never arrives at the rendezvous. The failure must
    // abort the collective so the peers wake and the join completes —
    // and the rethrown error must be the *original* rank failure, not
    // the secondary abort the peers unwound with.
    try {
        bt::run(3, [](bt::Comm& comm) {
            if (comm.rank() == 1) throw bu::Error("rank 1 failed");
            (void)comm.allreduce_min(static_cast<Real>(comm.rank()));
        });
        FAIL() << "expected the rank error to propagate";
    } catch (const bu::Error& e) {
        EXPECT_NE(std::string(e.what()).find("rank 1 failed"),
                  std::string::npos)
            << "got: " << e.what();
    }
}

TEST(Typhon, RankFailureUnblocksPeersWaitingOnRecv) {
    try {
        bt::run(2, [](bt::Comm& comm) {
            if (comm.rank() == 0) throw bu::Error("rank 0 failed");
            (void)comm.recv(0, 7); // message that will never be sent
        });
        FAIL() << "expected the rank error to propagate";
    } catch (const bu::Error& e) {
        EXPECT_NE(std::string(e.what()).find("rank 0 failed"),
                  std::string::npos)
            << "got: " << e.what();
    }
}

TEST(Typhon, RankFailureUnblocksPeersWaitingOnCollRequest) {
    // The dt-overlap pattern: a peer dies while this rank holds an
    // outstanding iallreduce. wait() must not hang.
    try {
        bt::run(3, [](bt::Comm& comm) {
            if (comm.rank() == 2) throw bu::Error("rank 2 failed");
            auto req = comm.iallreduce_min(1.0);
            (void)req.wait();
        });
        FAIL() << "expected the rank error to propagate";
    } catch (const bu::Error& e) {
        EXPECT_NE(std::string(e.what()).find("rank 2 failed"),
                  std::string::npos)
            << "got: " << e.what();
    }
}

TEST(Typhon, PointToPointRoundTrip) {
    bt::run(2, [](bt::Comm& comm) {
        if (comm.rank() == 0) {
            const std::vector<Real> msg = {1.5, 2.5, 3.5};
            comm.send(1, 7, msg);
            const auto back = comm.recv(1, 8);
            ASSERT_EQ(back.size(), 3u);
            EXPECT_DOUBLE_EQ(back[0], 3.0);
        } else {
            auto msg = comm.recv(0, 7);
            for (auto& v : msg) v *= 2;
            comm.send(0, 8, msg);
        }
    });
}

TEST(Typhon, MessagesWithSameTagPreserveFifoOrder) {
    bt::run(2, [](bt::Comm& comm) {
        if (comm.rank() == 0) {
            for (int i = 0; i < 50; ++i)
                comm.send(1, 3, std::vector<Real>{static_cast<Real>(i)});
        } else {
            for (int i = 0; i < 50; ++i) {
                const auto m = comm.recv(0, 3);
                ASSERT_EQ(m.size(), 1u);
                EXPECT_DOUBLE_EQ(m[0], static_cast<Real>(i));
            }
        }
    });
}

TEST(Typhon, TagsAreIndependentChannels) {
    bt::run(2, [](bt::Comm& comm) {
        if (comm.rank() == 0) {
            comm.send(1, 1, std::vector<Real>{1.0});
            comm.send(1, 2, std::vector<Real>{2.0});
        } else {
            // Receive in the opposite order of sending: must still match.
            EXPECT_DOUBLE_EQ(comm.recv(0, 2)[0], 2.0);
            EXPECT_DOUBLE_EQ(comm.recv(0, 1)[0], 1.0);
        }
    });
}

TEST(Typhon, AllreduceMinMaxSum) {
    bt::run(7, [](bt::Comm& comm) {
        const Real v = static_cast<Real>(comm.rank() + 1);
        EXPECT_DOUBLE_EQ(comm.allreduce_min(v), 1.0);
        EXPECT_DOUBLE_EQ(comm.allreduce_max(v), 7.0);
        EXPECT_DOUBLE_EQ(comm.allreduce_sum(v), 28.0);
    });
}

TEST(Typhon, RepeatedCollectivesDoNotInterfere) {
    bt::run(4, [](bt::Comm& comm) {
        for (int round = 0; round < 200; ++round) {
            const Real v = static_cast<Real>(comm.rank() + round);
            const Real mn = comm.allreduce_min(v);
            EXPECT_DOUBLE_EQ(mn, static_cast<Real>(round));
        }
    });
}

TEST(Typhon, AllgatherCollectsInRankOrder) {
    bt::run(4, [](bt::Comm& comm) {
        const auto all = comm.allgather(static_cast<Real>(comm.rank() * 10));
        ASSERT_EQ(all.size(), 4u);
        for (int r = 0; r < 4; ++r)
            EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], 10.0 * r);
    });
}

TEST(Typhon, BarrierSynchronises) {
    std::atomic<int> phase1{0};
    std::vector<int> seen_after(4, -1);
    bt::run(4, [&](bt::Comm& comm) {
        phase1++;
        comm.barrier();
        seen_after[static_cast<std::size_t>(comm.rank())] = phase1.load();
    });
    for (const int s : seen_after) EXPECT_EQ(s, 4);
}

TEST(TyphonExchange, RingGhostExchange) {
    // 4 ranks in a ring; each rank's field: [own_value, ghost_from_left,
    // ghost_from_right]. After exchange the ghosts hold the neighbours'
    // own values.
    bt::run(4, [](bt::Comm& comm) {
        const int r = comm.rank();
        const int left = (r + 3) % 4;
        const int right = (r + 1) % 4;
        std::vector<Real> field = {static_cast<Real>(r * 100), -1.0, -1.0};

        bt::ExchangeSchedule sched;
        // Entry order must be globally consistent: lower peer rank first.
        bt::ExchangeSchedule::Peer a, b;
        a.rank = left;
        a.send_items = {0};
        a.recv_items = {1};
        b.rank = right;
        b.send_items = {0};
        b.recv_items = {2};
        if (left <= right) {
            sched.peers = {a, b};
        } else {
            sched.peers = {b, a};
        }
        bt::exchange(comm, sched, field, 42);
        EXPECT_DOUBLE_EQ(field[1], 100.0 * left);
        EXPECT_DOUBLE_EQ(field[2], 100.0 * right);
        EXPECT_DOUBLE_EQ(field[0], 100.0 * r);
    });
}

TEST(TyphonExchange, ExchangeAllUsesDistinctTags) {
    bt::run(2, [](bt::Comm& comm) {
        const int r = comm.rank();
        std::vector<Real> f1 = {static_cast<Real>(r + 1), 0.0};
        std::vector<Real> f2 = {static_cast<Real>((r + 1) * 10), 0.0};
        bt::ExchangeSchedule sched;
        bt::ExchangeSchedule::Peer p;
        p.rank = 1 - r;
        p.send_items = {0};
        p.recv_items = {1};
        sched.peers = {p};
        bt::exchange_all(comm, sched, {std::span<Real>(f1), std::span<Real>(f2)},
                         10);
        EXPECT_DOUBLE_EQ(f1[1], static_cast<Real>(2 - r));
        EXPECT_DOUBLE_EQ(f2[1], static_cast<Real>((2 - r) * 10));
    });
}

TEST(TyphonExchange, MismatchedScheduleThrows) {
    EXPECT_THROW(
        bt::run(2,
                [](bt::Comm& comm) {
                    std::vector<Real> field = {1.0, 2.0, 3.0};
                    bt::ExchangeSchedule sched;
                    bt::ExchangeSchedule::Peer p;
                    p.rank = 1 - comm.rank();
                    // Rank 0 sends 1 item but expects 2; rank 1 sends 1 and
                    // expects 1 -> rank 0's recv length check fails.
                    p.send_items = {0};
                    p.recv_items = comm.rank() == 0
                                       ? std::vector<Index>{1, 2}
                                       : std::vector<Index>{1};
                    sched.peers = {p};
                    bt::exchange(comm, sched, field, 5);
                }),
        bu::Error);
}

TEST(TyphonStress, ManyRanksManyRounds) {
    // 16 ranks, 50 rounds of neighbour exchange + allreduce; checksum
    // must match the serial recurrence.
    const int n = 16;
    bt::run(n, [n](bt::Comm& comm) {
        const int r = comm.rank();
        Real value = static_cast<Real>(r);
        for (int round = 0; round < 50; ++round) {
            const int right = (r + 1) % n;
            const int left = (r + n - 1) % n;
            comm.send(right, 9, std::vector<Real>{value});
            const auto m = comm.recv(left, 9);
            value = Real(0.5) * (value + m[0]);
            const Real sum = comm.allreduce_sum(value);
            // Total is invariant under the averaging recurrence.
            EXPECT_NEAR(sum, n * (n - 1) / 2.0, 1e-9);
        }
    });
}

// ---------------------------------------------------------------------------
// Request layer: isend/irecv + test/wait/wait_all semantics
// ---------------------------------------------------------------------------

TEST(TyphonRequest, NullRequestIsComplete) {
    bt::Request r;
    EXPECT_TRUE(r.done());
    EXPECT_TRUE(r.test());
    r.wait(); // no-op
    EXPECT_TRUE(r.data().empty());
}

TEST(TyphonRequest, IsendCompletesImmediatelyIrecvOnWait) {
    bt::run(2, [](bt::Comm& comm) {
        if (comm.rank() == 0) {
            auto req = comm.isend(1, 3, std::vector<Real>{7.0, 8.0});
            // Buffered-eager transport: the send request is born complete.
            EXPECT_TRUE(req.done());
            EXPECT_TRUE(req.test());
            EXPECT_TRUE(req.data().empty());
        } else {
            auto req = comm.irecv(0, 3);
            req.wait();
            EXPECT_TRUE(req.done());
            ASSERT_EQ(req.data().size(), 2u);
            EXPECT_DOUBLE_EQ(req.data()[0], 7.0);
            EXPECT_DOUBLE_EQ(req.data()[1], 8.0);
        }
    });
}

TEST(TyphonRequest, TestPollsToCompletionWithoutBlocking) {
    bt::run(2, [](bt::Comm& comm) {
        if (comm.rank() == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            comm.send(1, 5, std::vector<Real>{1.0});
        } else {
            auto req = comm.irecv(0, 5);
            // Poll (never block). Must eventually harvest the message.
            while (!req.test()) std::this_thread::yield();
            ASSERT_EQ(req.data().size(), 1u);
            EXPECT_DOUBLE_EQ(req.data()[0], 1.0);
        }
    });
}

TEST(TyphonRequest, DataBeforeCompletionThrows) {
    bt::run(2, [](bt::Comm& comm) {
        if (comm.rank() == 0) {
            auto req = comm.irecv(1, 9);
            EXPECT_FALSE(req.done());
            EXPECT_THROW((void)req.data(), bu::Error);
            req.wait();
            EXPECT_DOUBLE_EQ(req.data()[0], 4.0);
        } else {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            comm.send(0, 9, std::vector<Real>{4.0});
        }
    });
}

TEST(TyphonRequest, WaitAllHandlesOutOfOrderCompletion) {
    // Rank 0 sends tags 12, 11, 10 in *reverse* posting order with delays;
    // rank 1 posts irecvs for 10, 11, 12 and wait_all must complete them
    // as the messages arrive, never deadlocking on posting order.
    bt::run(2, [](bt::Comm& comm) {
        if (comm.rank() == 0) {
            for (const int tag : {12, 11, 10}) {
                comm.send(1, tag, std::vector<Real>{static_cast<Real>(tag)});
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
            }
        } else {
            std::vector<bt::Request> reqs;
            for (const int tag : {10, 11, 12}) reqs.push_back(comm.irecv(0, tag));
            bt::wait_all(reqs);
            for (std::size_t i = 0; i < reqs.size(); ++i) {
                ASSERT_TRUE(reqs[i].done());
                EXPECT_DOUBLE_EQ(reqs[i].data()[0], static_cast<Real>(10 + i));
            }
        }
    });
}

TEST(TyphonRequest, ManyInFlightRequestsPerChannelKeepFifoOrder) {
    bt::run(2, [](bt::Comm& comm) {
        constexpr int n = 40;
        if (comm.rank() == 0) {
            for (int i = 0; i < n; ++i)
                (void)comm.isend(1, 2, std::vector<Real>{static_cast<Real>(i)});
        } else {
            std::vector<bt::Request> reqs;
            for (int i = 0; i < n; ++i) reqs.push_back(comm.irecv(0, 2));
            bt::wait_all(reqs);
            // Same-channel requests complete in posting order (FIFO queue).
            for (int i = 0; i < n; ++i)
                EXPECT_DOUBLE_EQ(reqs[static_cast<std::size_t>(i)].data()[0],
                                 static_cast<Real>(i));
        }
    });
}

TEST(TyphonRequest, HubChannelKeysDoNotCollideForLargeRankIds) {
    // Regression: the old bit-packed uint64 key shifted a 32-bit dst into
    // the src field, so (src=1, dst=0) collided with (src=0, dst=2^24).
    bt::detail::Hub hub(1 << 25);
    hub.send(1, 0, 0, {42.0});
    EXPECT_FALSE(hub.try_recv(0, 1 << 24, 0).has_value());
    const auto msg = hub.try_recv(1, 0, 0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_DOUBLE_EQ((*msg)[0], 42.0);
}

TEST(TyphonExchange, StartFinishSplitMatchesBlockingExchange) {
    // The overlapped form (post, compute, finish) must land exactly the
    // same bytes as the blocking exchange.
    bt::run(4, [](bt::Comm& comm) {
        const int r = comm.rank();
        const int left = (r + 3) % 4;
        const int right = (r + 1) % 4;
        std::vector<Real> blocking = {static_cast<Real>(r * 7 + 1), -1.0, -1.0};
        std::vector<Real> overlapped = blocking;

        bt::ExchangeSchedule sched;
        bt::ExchangeSchedule::Peer a, b;
        a.rank = left;
        a.send_items = {0};
        a.recv_items = {1};
        b.rank = right;
        b.send_items = {0};
        b.recv_items = {2};
        sched.peers = left <= right ? std::vector{a, b} : std::vector{b, a};

        bt::exchange(comm, sched, blocking, 60);

        auto pending = bt::exchange_start(comm, sched, {overlapped}, 70);
        EXPECT_FALSE(pending.finished());
        // "Interior work" while the halo is in flight.
        overlapped[0] += 0.0;
        pending.finish();
        EXPECT_TRUE(pending.finished());

        for (std::size_t i = 0; i < blocking.size(); ++i)
            EXPECT_EQ(blocking[i], overlapped[i]) << "slot " << i;
    });
}

TEST(TyphonExchange, StartFinishMultipleFieldsConsecutiveTags) {
    bt::run(2, [](bt::Comm& comm) {
        const int r = comm.rank();
        std::vector<Real> f1 = {static_cast<Real>(r + 1), 0.0};
        std::vector<Real> f2 = {static_cast<Real>((r + 1) * 10), 0.0};
        bt::ExchangeSchedule sched;
        bt::ExchangeSchedule::Peer p;
        p.rank = 1 - r;
        p.send_items = {0};
        p.recv_items = {1};
        sched.peers = {p};
        auto pending = bt::exchange_start(
            comm, sched, {std::span<Real>(f1), std::span<Real>(f2)}, 80);
        pending.finish();
        EXPECT_DOUBLE_EQ(f1[1], static_cast<Real>(2 - r));
        EXPECT_DOUBLE_EQ(f2[1], static_cast<Real>((2 - r) * 10));
    });
}

TEST(TyphonRequest, WaitAllBlocksOnEarliestSameChannelRequest) {
    // Regression: wait_all must block on the FIRST incomplete request.
    // Blocking on a later same-channel request would pop the channel
    // front for it and shift every subsequent payload by one. The sender
    // trickles messages so the receiver's wait_all actually blocks
    // mid-sequence instead of harvesting everything in one sweep.
    bt::run(2, [](bt::Comm& comm) {
        constexpr int n = 8;
        if (comm.rank() == 0) {
            for (int i = 0; i < n; ++i) {
                comm.send(1, 4, std::vector<Real>{static_cast<Real>(i)});
                std::this_thread::sleep_for(std::chrono::milliseconds(3));
            }
        } else {
            std::vector<bt::Request> reqs;
            for (int i = 0; i < n; ++i) reqs.push_back(comm.irecv(0, 4));
            bt::wait_all(reqs);
            for (int i = 0; i < n; ++i)
                EXPECT_DOUBLE_EQ(reqs[static_cast<std::size_t>(i)].data()[0],
                                 static_cast<Real>(i))
                    << "payload misdelivered to request " << i;
        }
    });
}

// ---------------------------------------------------------------------------
// Coalesced packing: one buffer per peer per exchange
// ---------------------------------------------------------------------------

namespace {

/// 4-rank ring schedule: send own slot 0 to both neighbours, receive
/// their slot 0 into ghosts 1 (left) and 2 (right).
bt::ExchangeSchedule ring_schedule(int rank) {
    const int left = (rank + 3) % 4;
    const int right = (rank + 1) % 4;
    bt::ExchangeSchedule::Peer a, b;
    a.rank = left;
    a.send_items = {0};
    a.recv_items = {1};
    b.rank = right;
    b.send_items = {0};
    b.recv_items = {2};
    bt::ExchangeSchedule sched;
    sched.peers = left <= right ? std::vector{a, b} : std::vector{b, a};
    return sched;
}

} // namespace

TEST(TyphonCoalesced, MatchesPerFieldBitwiseOnRingExchange) {
    bt::run(4, [](bt::Comm& comm) {
        const int r = comm.rank();
        const auto sched = ring_schedule(r);
        // Three fields with distinct per-rank values; exchange under both
        // wire formats and require bitwise-identical results.
        std::vector<std::vector<Real>> coalesced, per_field;
        for (int f = 0; f < 3; ++f) {
            coalesced.push_back({static_cast<Real>(r * 10 + f), -1.0, -1.0});
            per_field.push_back(coalesced.back());
        }
        bt::exchange_all(comm, sched,
                         {std::span<Real>(coalesced[0]),
                          std::span<Real>(coalesced[1]),
                          std::span<Real>(coalesced[2])},
                         300, bt::Packing::coalesced);
        bt::exchange_all(comm, sched,
                         {std::span<Real>(per_field[0]),
                          std::span<Real>(per_field[1]),
                          std::span<Real>(per_field[2])},
                         310, bt::Packing::per_field);
        for (int f = 0; f < 3; ++f)
            for (int i = 0; i < 3; ++i)
                EXPECT_EQ(coalesced[static_cast<std::size_t>(f)]
                                   [static_cast<std::size_t>(i)],
                          per_field[static_cast<std::size_t>(f)]
                                   [static_cast<std::size_t>(i)])
                    << "field " << f << " slot " << i;
        // Ghost values are the neighbours' slot-0 values in every field.
        const int left = (r + 3) % 4;
        const int right = (r + 1) % 4;
        for (int f = 0; f < 3; ++f) {
            EXPECT_DOUBLE_EQ(coalesced[static_cast<std::size_t>(f)][1],
                             static_cast<Real>(left * 10 + f));
            EXPECT_DOUBLE_EQ(coalesced[static_cast<std::size_t>(f)][2],
                             static_cast<Real>(right * 10 + f));
        }
    });
}

TEST(TyphonCoalesced, OneMessagePerPeerRegardlessOfFieldCount) {
    // 2 ranks, 3 fields each way. Per-field: 3 messages per rank;
    // coalesced: 1 per rank, 3x the payload.
    for (const auto packing :
         {bt::Packing::coalesced, bt::Packing::per_field}) {
        const auto traffic = bt::run(2, [packing](bt::Comm& comm) {
            const int r = comm.rank();
            std::vector<Real> f1 = {static_cast<Real>(r + 1), 0.0};
            std::vector<Real> f2 = {static_cast<Real>((r + 1) * 10), 0.0};
            std::vector<Real> f3 = {static_cast<Real>((r + 1) * 100), 0.0};
            bt::ExchangeSchedule sched;
            bt::ExchangeSchedule::Peer p;
            p.rank = 1 - r;
            p.send_items = {0};
            p.recv_items = {1};
            sched.peers = {p};
            bt::exchange_all(comm, sched,
                             {std::span<Real>(f1), std::span<Real>(f2),
                              std::span<Real>(f3)},
                             20, packing);
            EXPECT_DOUBLE_EQ(f1[1], static_cast<Real>(2 - r));
            EXPECT_DOUBLE_EQ(f2[1], static_cast<Real>((2 - r) * 10));
            EXPECT_DOUBLE_EQ(f3[1], static_cast<Real>((2 - r) * 100));
        });
        const long expected =
            packing == bt::Packing::coalesced ? 2 : 2 * 3;
        EXPECT_EQ(traffic.messages, expected);
        // Same total payload either way: 3 Reals per rank.
        EXPECT_EQ(traffic.reals, 6);
    }
}

TEST(TyphonCoalesced, SendOnlyAndRecvOnlyEntriesCoalesce) {
    // One-directional peering with asymmetric schedule entries (the shape
    // part::decompose builds): rank 0 holds a send-only entry, rank 1 the
    // matching recv-only entry. Two fields -> exactly one message of four
    // Reals.
    const auto traffic = bt::run(2, [](bt::Comm& comm) {
        std::vector<Real> f1 = {1.5, 2.5, -1.0, -1.0};
        std::vector<Real> f2 = {3.5, 4.5, -1.0, -1.0};
        if (comm.rank() == 0) {
            for (auto& v : f1) v += 10.0;
            for (auto& v : f2) v += 10.0;
        }
        bt::ExchangeSchedule sched;
        bt::ExchangeSchedule::Peer p;
        p.rank = 1 - comm.rank();
        if (comm.rank() == 0)
            p.send_items = {0, 1};
        else
            p.recv_items = {2, 3};
        sched.peers = {p};
        auto pending = bt::exchange_start(
            comm, sched, {std::span<Real>(f1), std::span<Real>(f2)}, 30,
            bt::Packing::coalesced);
        pending.finish();
        if (comm.rank() == 1) {
            EXPECT_DOUBLE_EQ(f1[2], 11.5);
            EXPECT_DOUBLE_EQ(f1[3], 12.5);
            EXPECT_DOUBLE_EQ(f2[2], 13.5);
            EXPECT_DOUBLE_EQ(f2[3], 14.5);
        }
    });
    EXPECT_EQ(traffic.messages, 1);
    EXPECT_EQ(traffic.reals, 4);
}

TEST(TyphonCoalesced, EmptySchedulesAndEmptyFieldListsPostNothing) {
    const auto traffic = bt::run(2, [](bt::Comm& comm) {
        std::vector<Real> f = {1.0, 2.0};
        const bt::ExchangeSchedule empty;
        bt::exchange_all(comm, empty, {std::span<Real>(f)}, 40,
                         bt::Packing::coalesced);
        bt::exchange_all(comm, empty, {std::span<Real>(f)}, 41,
                         bt::Packing::per_field);
        // Non-empty schedule, zero fields: nothing to move either.
        bt::ExchangeSchedule::Peer p;
        p.rank = 1 - comm.rank();
        p.send_items = {0};
        p.recv_items = {1};
        bt::ExchangeSchedule sched;
        sched.peers = {p};
        auto pending = bt::exchange_start(comm, sched, {}, 42);
        EXPECT_TRUE(pending.finished());
        pending.finish();
        EXPECT_DOUBLE_EQ(f[0], 1.0);
        EXPECT_DOUBLE_EQ(f[1], 2.0);
    });
    EXPECT_EQ(traffic.messages, 0);
}

TEST(TyphonCoalesced, SingleFieldIsSameWireFormatInBothPackings) {
    // With one field the two packings must both send exactly one message
    // per sending peer with the same payload.
    for (const auto packing :
         {bt::Packing::coalesced, bt::Packing::per_field}) {
        const auto traffic = bt::run(2, [packing](bt::Comm& comm) {
            const int r = comm.rank();
            std::vector<Real> f = {static_cast<Real>(r + 1), 0.0};
            bt::ExchangeSchedule sched;
            bt::ExchangeSchedule::Peer p;
            p.rank = 1 - r;
            p.send_items = {0};
            p.recv_items = {1};
            sched.peers = {p};
            bt::exchange_all(comm, sched, {std::span<Real>(f)}, 50, packing);
            EXPECT_DOUBLE_EQ(f[1], static_cast<Real>(2 - r));
        });
        EXPECT_EQ(traffic.messages, 2);
        EXPECT_EQ(traffic.reals, 2);
    }
}

TEST(TyphonCoalesced, MismatchedScheduleThrowsWithFieldCount) {
    // Coalesced length check is fields x recv_items: a peer disagreement
    // on the item count still fails loudly.
    EXPECT_THROW(
        bt::run(2,
                [](bt::Comm& comm) {
                    std::vector<Real> f1 = {1.0, 2.0, 3.0};
                    std::vector<Real> f2 = {4.0, 5.0, 6.0};
                    bt::ExchangeSchedule sched;
                    bt::ExchangeSchedule::Peer p;
                    p.rank = 1 - comm.rank();
                    p.send_items = {0};
                    p.recv_items = comm.rank() == 0
                                       ? std::vector<Index>{1, 2}
                                       : std::vector<Index>{1};
                    sched.peers = {p};
                    bt::exchange_all(comm, sched,
                                     {std::span<Real>(f1), std::span<Real>(f2)},
                                     55, bt::Packing::coalesced);
                }),
        bu::Error);
}

// ---------------------------------------------------------------------------
// Nonblocking collective: iallreduce_min
// ---------------------------------------------------------------------------

TEST(TyphonCollective, NullCollRequestIsComplete) {
    bt::CollRequest req;
    EXPECT_TRUE(req.test());
    EXPECT_DOUBLE_EQ(req.wait(), 0.0);
}

TEST(TyphonCollective, IallreduceMinMatchesBlockingAllreduce) {
    bt::run(5, [](bt::Comm& comm) {
        for (int round = 0; round < 50; ++round) {
            const Real v = static_cast<Real>((comm.rank() * 7 + round * 3) %
                                             11);
            auto req = comm.iallreduce_min(v);
            const Real got = req.wait();
            // Blocking reference on the same inputs the next generation.
            const Real ref = comm.allreduce_min(v);
            EXPECT_EQ(got, ref) << "round " << round;
            // wait() is idempotent.
            EXPECT_EQ(req.wait(), got);
            EXPECT_TRUE(req.test());
        }
    });
}

TEST(TyphonCollective, TestPollsToCompletionWithoutBlocking) {
    bt::run(3, [](bt::Comm& comm) {
        if (comm.rank() != 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        auto req = comm.iallreduce_min(static_cast<Real>(comm.rank() + 1));
        while (!req.test()) std::this_thread::yield();
        EXPECT_DOUBLE_EQ(req.wait(), 1.0);
    });
}

TEST(TyphonCollective, IallreduceMinCorrectUnderConcurrentHaloTraffic) {
    // The dt-reduce overlap pattern: post the reduce, run a ghost
    // exchange while the collective is in flight, then finish the reduce.
    // The reduce must see exactly the posted contributions, never the
    // halo payloads, for many consecutive rounds.
    bt::run(4, [](bt::Comm& comm) {
        const int r = comm.rank();
        const auto sched = ring_schedule(r);
        std::vector<Real> field = {0.0, -1.0, -1.0};
        for (int round = 0; round < 30; ++round) {
            const Real contribution = static_cast<Real>(r + round);
            field[0] = static_cast<Real>(r * 1000 + round);
            auto reduce = comm.iallreduce_min(contribution);
            auto halo = bt::exchange_start(comm, sched, {field}, 400,
                                           bt::Packing::coalesced);
            halo.finish();
            const Real got = reduce.wait();
            EXPECT_DOUBLE_EQ(got, static_cast<Real>(round)) << "round "
                                                            << round;
            const int left = (r + 3) % 4;
            const int right = (r + 1) % 4;
            EXPECT_DOUBLE_EQ(field[1],
                             static_cast<Real>(left * 1000 + round));
            EXPECT_DOUBLE_EQ(field[2],
                             static_cast<Real>(right * 1000 + round));
        }
    });
}

TEST(Typhon, StrandedMessagesAreDetectedAtShutdown) {
    // A send that no receive ever matches (asymmetric schedule, skipped
    // irecv) must fail loudly at the end of the run, not silently drop
    // ghost data.
    EXPECT_THROW(bt::run(2,
                         [](bt::Comm& comm) {
                             if (comm.rank() == 0)
                                 comm.send(1, 99, std::vector<Real>{1.0});
                             // Rank 1 never receives tag 99.
                             comm.barrier();
                         }),
                 bu::Error);
}
