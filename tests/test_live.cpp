// Live monitoring tests: window folding, the bounded step ring, the
// tag-502 stream + per-window imbalance assembly, the NDJSON event
// stream, the non-finite JSON encoding, and the hang-detection watchdog
// (deterministic decision core, no-false-positive under a slow rank,
// firing under a delay-held rank, and escalation into the supervised
// recovery loop).
//
// Suite names all start with "Live"/"Watchdog" deliberately: the CI TSan
// job's gtest filter includes them (the watchdog supervisor thread and
// the per-rank progress atomics are exactly what TSan should see).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "mesh/generator.hpp"
#include "obs/json.hpp"
#include "obs/live.hpp"
#include "obs/telemetry.hpp"
#include "setup/deck.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"

namespace bc = bookleaf::core;
namespace bd = bookleaf::dist;
namespace be = bookleaf::eos;
namespace bm = bookleaf::mesh;
namespace bo = bookleaf::obs;
namespace bs = bookleaf::setup;
namespace bt = bookleaf::typhon;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

namespace {

struct Problem {
    bm::Mesh mesh;
    be::MaterialTable materials;
    std::vector<Real> rho, ein, u, v;
};

/// The miniature Sod-like strip shared with the dist driver tests.
Problem sod_like(Index nx, Index ny) {
    Problem p;
    bm::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 0.1,
                      .nx = nx, .ny = ny};
    spec.region_of = [](Real cx, Real) { return cx < 0.5 ? 0 : 1; };
    p.mesh = bm::generate_rect(spec);
    p.materials.materials = {be::IdealGas{1.4}, be::IdealGas{1.4}};
    p.rho.resize(static_cast<std::size_t>(p.mesh.n_cells()));
    p.ein.resize(p.rho.size());
    for (Index c = 0; c < p.mesh.n_cells(); ++c) {
        const bool left = p.mesh.cell_region[static_cast<std::size_t>(c)] == 0;
        p.rho[static_cast<std::size_t>(c)] = left ? 1.0 : 0.125;
        p.ein[static_cast<std::size_t>(c)] = left ? 2.5 : 2.0;
    }
    p.u.assign(static_cast<std::size_t>(p.mesh.n_nodes()), 0.0);
    p.v.assign(p.u.size(), 0.0);
    return p;
}

bd::Options base_opts(int n_ranks, Real t_end) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro.dt_initial = 1e-4;
    return opts;
}

bd::Result run_dist(const Problem& p, const bd::Options& opts) {
    return bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
}

bo::StepRecord make_step(long step, double wall_us, int retries = 0,
                         bool remapped = false) {
    bo::StepRecord s;
    s.step = step;
    s.t = 1e-4 * static_cast<double>(step + 1);
    s.dt = 1e-4;
    s.wall_us = wall_us;
    s.retries = retries;
    s.remapped = remapped;
    return s;
}

bo::WindowRecord make_window(int rank, long index, double wall_us) {
    bo::WindowRecord w;
    w.rank = rank;
    w.index = index;
    w.first_step = index * 2;
    w.last_step = index * 2 + 1;
    w.steps = 2;
    w.wall_us = wall_us;
    return w;
}

/// Parse every line of an NDJSON file; asserts each line is a complete
/// JSON object and returns them in order.
std::vector<bo::Json> read_ndjson(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::vector<bo::Json> events;
    std::string line;
    while (std::getline(in, line)) {
        EXPECT_FALSE(line.empty());
        events.push_back(bo::Json::parse(line));
        EXPECT_TRUE(events.back().is_object());
    }
    return events;
}

std::string event_of(const bo::Json& e) {
    const auto* kind = e.find("event");
    EXPECT_NE(kind, nullptr);
    return kind != nullptr ? kind->as_string() : std::string{};
}

} // namespace

// ---------------------------------------------------------------------------
// Window folding
// ---------------------------------------------------------------------------

TEST(LiveFold, WindowFolderFoldsEveryN) {
    bo::WindowFolder folder(2, 3);
    std::vector<bo::WindowRecord> windows;
    for (long s = 0; s < 8; ++s) {
        auto w = folder.add(make_step(s, 100.0 + static_cast<double>(s),
                                      s == 4 ? 2 : 0, s % 2 == 1));
        if (w) windows.push_back(*w);
    }
    // 8 steps at window 3: two complete windows, a 2-step tail pending.
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(folder.produced(), 2);

    EXPECT_EQ(windows[0].rank, 2);
    EXPECT_EQ(windows[0].index, 0);
    EXPECT_EQ(windows[0].first_step, 0);
    EXPECT_EQ(windows[0].last_step, 2);
    EXPECT_EQ(windows[0].steps, 3);
    EXPECT_DOUBLE_EQ(windows[0].wall_us, 100.0 + 101.0 + 102.0);
    EXPECT_DOUBLE_EQ(windows[0].max_step_us, 102.0);
    EXPECT_DOUBLE_EQ(windows[0].mean_step_us(), windows[0].wall_us / 3.0);
    EXPECT_EQ(windows[0].retries, 0);
    EXPECT_EQ(windows[0].remaps, 1); // step 1

    EXPECT_EQ(windows[1].index, 1);
    EXPECT_EQ(windows[1].first_step, 3);
    EXPECT_EQ(windows[1].last_step, 5);
    EXPECT_EQ(windows[1].retries, 2); // step 4
    EXPECT_EQ(windows[1].remaps, 2);  // steps 3 and 5
    EXPECT_DOUBLE_EQ(windows[1].t, make_step(5, 0).t);
}

TEST(LiveFold, WindowFolderRejectsNonPositiveWindow) {
    EXPECT_THROW(bo::WindowFolder(0, 0), bu::Error);
    EXPECT_THROW(bo::WindowFolder(0, -3), bu::Error);
}

TEST(LiveFold, StepRingEvictsAndFoldsExactly) {
    bo::StepRing ring(4);
    for (long s = 0; s < 10; ++s)
        ring.push(make_step(s, 10.0, s == 2 ? 1 : 0, s == 1));
    EXPECT_EQ(ring.total(), 10);
    ASSERT_EQ(ring.steps().size(), 4u);
    EXPECT_EQ(ring.steps().front().step, 6);
    EXPECT_EQ(ring.steps().back().step, 9);

    // Steps 0..5 were evicted and folded: nothing lost.
    const auto& ev = ring.evicted();
    EXPECT_EQ(ev.steps, 6);
    EXPECT_EQ(ev.first_step, 0);
    EXPECT_EQ(ev.last_step, 5);
    EXPECT_DOUBLE_EQ(ev.wall_us, 60.0);
    EXPECT_EQ(ev.retries, 1);
    EXPECT_EQ(ev.remaps, 1);

    // Retained + evicted reconstruct the exact totals.
    double total_wall = ev.wall_us;
    for (const auto& s : ring.take()) total_wall += s.wall_us;
    EXPECT_DOUBLE_EQ(total_wall, 100.0);
}

TEST(LiveFold, StepRingUnboundedKeepsEverything) {
    bo::StepRing ring(0);
    for (long s = 0; s < 100; ++s) ring.push(make_step(s, 1.0));
    EXPECT_EQ(ring.steps().size(), 100u);
    EXPECT_EQ(ring.evicted().steps, 0);
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(LiveCodec, WindowRoundTripsThroughTheWire) {
    bo::WindowRecord w = make_window(3, 7, 1234.5);
    w.t = 0.125;
    w.max_step_us = 99.5;
    w.halo_wait_us = 10.25;
    w.reduce_wait_us = 4.75;
    w.retries = 2;
    w.remaps = 1;
    w.items = 123456789;

    const auto buf = bo::pack_window(w);
    ASSERT_EQ(buf.size(), bo::window_reals);
    const auto back = bo::unpack_window(buf);
    EXPECT_EQ(back.rank, w.rank);
    EXPECT_EQ(back.index, w.index);
    EXPECT_EQ(back.first_step, w.first_step);
    EXPECT_EQ(back.last_step, w.last_step);
    EXPECT_EQ(back.steps, w.steps);
    EXPECT_DOUBLE_EQ(back.t, w.t);
    EXPECT_DOUBLE_EQ(back.wall_us, w.wall_us);
    EXPECT_DOUBLE_EQ(back.max_step_us, w.max_step_us);
    EXPECT_DOUBLE_EQ(back.halo_wait_us, w.halo_wait_us);
    EXPECT_DOUBLE_EQ(back.reduce_wait_us, w.reduce_wait_us);
    EXPECT_EQ(back.retries, w.retries);
    EXPECT_EQ(back.remaps, w.remaps);
    EXPECT_EQ(back.items, w.items);
}

TEST(LiveCodec, MalformedWindowBufferThrows) {
    std::vector<Real> buf(bo::window_reals - 1, 0.0);
    EXPECT_THROW(static_cast<void>(bo::unpack_window(buf)), bu::Error);
    buf.assign(bo::window_reals + 1, 0.0);
    EXPECT_THROW(static_cast<void>(bo::unpack_window(buf)), bu::Error);
}

// ---------------------------------------------------------------------------
// Rank-0 assembly + per-window imbalance
// ---------------------------------------------------------------------------

TEST(LiveAssembly, WindowImbalanceMatchesTheDefinition) {
    const std::vector<bo::WindowRecord> ranks = {
        make_window(0, 0, 1.0e6), make_window(1, 0, 3.0e6),
        make_window(2, 0, 2.0e6)};
    const auto imb = bo::window_imbalance(ranks);
    EXPECT_DOUBLE_EQ(imb.mean_rank_s, 2.0);
    EXPECT_DOUBLE_EQ(imb.max_rank_s, 3.0);
    EXPECT_DOUBLE_EQ(imb.max_over_mean, 1.5);
    EXPECT_EQ(imb.slowest_rank, 1);
}

TEST(LiveAssembly, AssemblerCompletesWindowsInOrder) {
    bo::LiveAssembler asm3(3);
    // Interleaved arrivals: window 0 completes only once all three ranks
    // delivered; a rank running ahead queues without completing anything.
    EXPECT_TRUE(asm3.add(make_window(0, 0, 1.0)).empty());
    EXPECT_TRUE(asm3.add(make_window(0, 1, 1.0)).empty());
    EXPECT_TRUE(asm3.add(make_window(2, 0, 1.0)).empty());
    auto done = asm3.add(make_window(1, 0, 2.0));
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].index, 0);
    ASSERT_EQ(done[0].ranks.size(), 3u);
    EXPECT_EQ(done[0].ranks[0].rank, 0);
    EXPECT_EQ(done[0].ranks[1].rank, 1);
    EXPECT_EQ(done[0].ranks[2].rank, 2);
    EXPECT_EQ(done[0].imbalance.slowest_rank, 1);

    // The queued rank-0 window now completes window 1 in one arrival
    // burst from the stragglers.
    EXPECT_TRUE(asm3.add(make_window(1, 1, 1.0)).empty());
    done = asm3.add(make_window(2, 1, 1.0));
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].index, 1);
    EXPECT_EQ(asm3.completed(), 2);
}

TEST(LiveAssembly, AssemblerRejectsOutOfRangeRank) {
    bo::LiveAssembler asm2(2);
    EXPECT_THROW(static_cast<void>(asm2.add(make_window(2, 0, 1.0))),
                 bu::Error);
    EXPECT_THROW(static_cast<void>(asm2.add(make_window(-1, 0, 1.0))),
                 bu::Error);
}

// ---------------------------------------------------------------------------
// NDJSON stream + non-finite JSON encoding
// ---------------------------------------------------------------------------

TEST(LiveStreamTest, EmitsOneFlushedLinePerEventWithMonotoneSeq) {
    const std::string path = "live_stream_unit.ndjson";
    {
        bo::LiveStream stream(path);
        ASSERT_TRUE(stream.open());
        for (int i = 0; i < 5; ++i) {
            auto ev = bo::Json::object();
            ev["event"] = "window";
            ev["i"] = i;
            stream.emit(std::move(ev));
        }
        EXPECT_EQ(stream.events(), 5);
    }
    const auto events = read_ndjson(path);
    ASSERT_EQ(events.size(), 5u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(event_of(events[i]), "window");
        EXPECT_EQ(events[i].find("seq")->as_int(),
                  static_cast<long long>(i));
        EXPECT_EQ(events[i].find("i")->as_int(), static_cast<long long>(i));
    }
    std::remove(path.c_str());
}

TEST(LiveStreamTest, ClosedStreamIsANoOp) {
    bo::LiveStream stream; // default: closed
    EXPECT_FALSE(stream.open());
    auto ev = bo::Json::object();
    ev["event"] = "window";
    stream.emit(std::move(ev)); // must not throw
    EXPECT_EQ(stream.events(), 0);
}

TEST(LiveJson, NonFiniteRealsEncodeAsDeterministicMarkers) {
    auto v = bo::Json::object();
    v["nan"] = bo::Json(std::nan(""));
    v["inf"] = bo::Json(std::numeric_limits<double>::infinity());
    v["ninf"] = bo::Json(-std::numeric_limits<double>::infinity());
    v["ok"] = bo::Json(1.5);
    const auto text = v.dump(0);
    EXPECT_NE(text.find("{\"value\":null,\"nonfinite\":\"nan\"}"),
              std::string::npos);
    EXPECT_NE(text.find("{\"value\":null,\"nonfinite\":\"inf\"}"),
              std::string::npos);
    EXPECT_NE(text.find("{\"value\":null,\"nonfinite\":\"-inf\"}"),
              std::string::npos);

    // The encoding is valid JSON and stable under parse + re-dump.
    const auto back = bo::Json::parse(text);
    EXPECT_EQ(back.dump(0), text);
    const auto* marker = back.find("nan");
    ASSERT_NE(marker, nullptr);
    EXPECT_TRUE(marker->find("value")->is_null());
    EXPECT_EQ(marker->find("nonfinite")->as_string(), "nan");
}

TEST(LiveJson, ParserRejectsBareNonFiniteSpellings) {
    EXPECT_THROW(bo::Json::parse("nan"), bu::Error);
    EXPECT_THROW(bo::Json::parse("inf"), bu::Error);
    EXPECT_THROW(bo::Json::parse("-inf"), bu::Error);
    EXPECT_THROW(bo::Json::parse("{\"x\": nan}"), bu::Error);
    EXPECT_THROW(bo::Json::parse("[Infinity]"), bu::Error);
}

// ---------------------------------------------------------------------------
// Deck keys
// ---------------------------------------------------------------------------

TEST(LiveDeck, ParsesTelemetryLiveKeys) {
    const auto deck = bs::Deck::parse_string(
        "[telemetry]\n"
        "window_steps = 8\n"
        "live = run.ndjson\n"
        "watchdog_factor = 2.5\n"
        "watchdog_grace_ms = 100\n"
        "watchdog_escalate = true\n"
        "max_steps = 500\n");
    const auto p = bs::make_problem(deck);
    EXPECT_EQ(p.telemetry.window_steps, 8);
    EXPECT_EQ(p.telemetry.live, "run.ndjson");
    EXPECT_DOUBLE_EQ(p.telemetry.watchdog_factor, 2.5);
    EXPECT_EQ(p.telemetry.watchdog_grace_ms, 100);
    EXPECT_TRUE(p.telemetry.watchdog_escalate);
    EXPECT_EQ(p.telemetry.max_steps, 500);
    EXPECT_TRUE(p.telemetry.active());
    EXPECT_TRUE(p.telemetry.live_active());
}

TEST(LiveDeck, RejectsNegativeLiveKeys) {
    EXPECT_THROW(bs::make_problem(bs::Deck::parse_string(
                     "[telemetry]\nwindow_steps = -1\n")),
                 bu::Error);
    EXPECT_THROW(bs::make_problem(bs::Deck::parse_string(
                     "[telemetry]\nwatchdog_factor = -0.5\n")),
                 bu::Error);
    EXPECT_THROW(bs::make_problem(bs::Deck::parse_string(
                     "[telemetry]\nmax_steps = -2\n")),
                 bu::Error);
}

// ---------------------------------------------------------------------------
// Watchdog decision core (deterministic, synthetic clock)
// ---------------------------------------------------------------------------

TEST(Watchdog, CheckFlagsSilentRankDeterministically) {
    bo::Watchdog dog(3, 2.0, 10.0, false);
    // Every rank delivers windows at a steady 100 ms cadence...
    for (int arrival = 1; arrival <= 3; ++arrival)
        for (int r = 0; r < 3; ++r)
            dog.note_window_at(r, 100.0 * arrival);
    // ...then rank 1 goes silent. Threshold = 2 x EWMA(100) + 10 = 210 ms.
    dog.note_window_at(0, 400.0);
    dog.note_window_at(2, 400.0);
    EXPECT_TRUE(dog.check(450.0).empty()); // rank 1 silent 150 < 210
    const auto stalls = dog.check(550.0);  // silent 250 > 210
    ASSERT_EQ(stalls.size(), 1u);
    EXPECT_EQ(stalls[0].rank, 1);
    EXPECT_EQ(stalls[0].windows, 3);
    EXPECT_DOUBLE_EQ(stalls[0].silent_ms, 250.0);
    EXPECT_DOUBLE_EQ(stalls[0].threshold_ms, 210.0);
    EXPECT_FALSE(stalls[0].escalated);

    // Flag-once: still silent, but not re-reported...
    EXPECT_TRUE(dog.check(600.0).empty());
    // ...until a window resumes, after which a new stall can flag again
    // (refresh every rank so only the flag-reset is under test).
    for (int r = 0; r < 3; ++r) dog.note_window_at(r, 620.0);
    EXPECT_TRUE(dog.check(700.0).empty());
}

TEST(Watchdog, RankWithNoArrivalsBorrowsTheMeanCadence) {
    bo::Watchdog dog(2, 2.0, 50.0, false);
    // No rank has delivered anything: no basis, no flags.
    EXPECT_TRUE(dog.check(10000.0).empty());
    // Rank 0 establishes a 100 ms cadence; rank 1 never delivers. Rank 1's
    // threshold borrows rank 0's EWMA, measured from the run start.
    dog.note_window_at(0, 100.0);
    dog.note_window_at(0, 200.0);
    dog.note_window_at(0, 300.0);
    dog.note_window_at(0, 380.0);
    const auto stalls = dog.check(400.0);
    ASSERT_EQ(stalls.size(), 1u);
    EXPECT_EQ(stalls[0].rank, 1);
    EXPECT_EQ(stalls[0].windows, 0);
    EXPECT_EQ(stalls[0].last_step, -1);
}

TEST(Watchdog, EscalationPoisonsTheStalledRank) {
    bo::Watchdog dog(2, 2.0, 10.0, true);
    EXPECT_FALSE(dog.note_step(1, 0));
    dog.note_window_at(0, 100.0);
    dog.note_window_at(0, 200.0);
    // Keep rank 0 fresh so only the silent rank 1 can flag at 500 ms.
    dog.note_window_at(0, 480.0);
    const auto stalls = dog.check(500.0);
    ASSERT_EQ(stalls.size(), 1u);
    EXPECT_EQ(stalls[0].rank, 1);
    EXPECT_TRUE(stalls[0].escalated);
    // The poisoned rank's next progress tick tells it to throw.
    EXPECT_TRUE(dog.note_step(1, 1));
    EXPECT_FALSE(dog.note_step(0, 1));
    EXPECT_THROW(throw bo::StallEscalated(1), bu::Error);
}

TEST(Watchdog, SessionPollsAndReportsOnTheSupervisorThread) {
    bo::Watchdog dog(2, 2.0, 5.0, false);
    // Prime rank 0 with a 200 ms synthetic cadence: rank 1 (silent since
    // run start) crosses its borrowed threshold at ~405 ms on the real
    // clock, while rank 0 would not flag before ~805 ms — the session is
    // long gone by then, so exactly one stall can fire.
    dog.note_window_at(0, 200.0);
    dog.note_window_at(0, 400.0);
    std::atomic<int> fired{0};
    std::atomic<int> rank{-1};
    {
        bo::WatchdogSession session(dog, 5.0,
                                    [&](const bo::Watchdog::Stall& st) {
                                        ++fired;
                                        rank = st.rank;
                                    });
        const auto deadline = dog.now_ms() + 5000.0;
        while (fired.load() == 0 && dog.now_ms() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(fired.load(), 1); // flag-once
    EXPECT_EQ(rank.load(), 1);
}

// ---------------------------------------------------------------------------
// Distributed integration: the stream, passivity, the watchdog
// ---------------------------------------------------------------------------

TEST(LiveDist, StreamsWindowsAndAssemblesTheOnlineImbalance) {
    const auto p = sod_like(24, 4);
    const std::string path = "live_dist_stream.ndjson";
    auto opts = base_opts(3, 0.01);
    opts.telemetry.window_steps = 4;
    opts.telemetry.live = path;
    std::vector<long> seen;
    opts.on_window = [&](const bo::LiveWindow& w) {
        seen.push_back(w.index);
        EXPECT_EQ(w.ranks.size(), 3u);
        for (int r = 0; r < 3; ++r) {
            EXPECT_EQ(w.ranks[static_cast<std::size_t>(r)].rank, r);
            EXPECT_EQ(w.ranks[static_cast<std::size_t>(r)].index, w.index);
        }
        EXPECT_GE(w.imbalance.max_over_mean, 1.0);
    };
    const auto result = run_dist(p, opts);

    // Every rank stepped the same count: windows = steps / window_steps,
    // delivered to the callback in order and retained on the result.
    const long expect = result.steps / 4;
    ASSERT_GT(expect, 0);
    ASSERT_EQ(result.windows.size(), static_cast<std::size_t>(expect));
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(expect));
    for (long i = 0; i < expect; ++i) {
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
        EXPECT_EQ(result.windows[static_cast<std::size_t>(i)].index, i);
    }
    // The report retains the same windows per rank, and the wire
    // self-check still passes with the tag-502 sends accounted.
    ASSERT_EQ(result.telemetry.ranks.size(), 3u);
    for (const auto& rank : result.telemetry.ranks)
        EXPECT_EQ(rank.windows.size(), static_cast<std::size_t>(expect));
    EXPECT_TRUE(result.telemetry.wire.checked);
    EXPECT_TRUE(result.telemetry.wire.match);

    // NDJSON: every line parses, seq is exactly 0..n-1, run_start leads,
    // run_end closes, and the window/imbalance counts are consistent.
    const auto events = read_ndjson(path);
    ASSERT_GE(events.size(), 3u);
    EXPECT_EQ(event_of(events.front()), "run_start");
    EXPECT_EQ(events.front().find("schema")->as_string(), "bookleaf.live/1");
    EXPECT_EQ(event_of(events.back()), "run_end");
    long windows = 0, imbalances = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].find("seq")->as_int(),
                  static_cast<long long>(i));
        const auto kind = event_of(events[i]);
        if (kind == "window") ++windows;
        if (kind == "imbalance") ++imbalances;
    }
    EXPECT_EQ(windows, expect * 3);
    EXPECT_EQ(imbalances, expect);
    EXPECT_EQ(events.back().find("windows")->as_int(), expect);
    EXPECT_EQ(events.back().find("stalls")->as_int(), 0);
    std::remove(path.c_str());
}

TEST(LiveDist, LiveOnIsBitwisePassiveAcrossModesAndRanks) {
    const auto p = sod_like(24, 4);
    for (const auto mode : {bookleaf::ale::Mode::lagrange,
                            bookleaf::ale::Mode::eulerian,
                            bookleaf::ale::Mode::ale}) {
        for (const int ranks : {2, 4}) {
            for (const bool overlap : {true, false}) {
                auto off = base_opts(ranks, 0.008);
                off.ale.mode = mode;
                off.ale.frequency = 2;
                off.overlap = overlap;
                const auto baseline = run_dist(p, off);

                auto on = off;
                on.telemetry.window_steps = 3;
                on.telemetry.watchdog_factor = 8.0;
                const auto live = run_dist(p, on);
                EXPECT_TRUE(bd::bitwise_equal(baseline, live))
                    << "mode " << static_cast<int>(mode) << " ranks "
                    << ranks << " overlap " << overlap;
                EXPECT_FALSE(live.windows.empty());
            }
        }
    }
}

TEST(LiveDist, SingleRankRunStreamsWindowsToo) {
    const auto p = sod_like(16, 4);
    auto opts = base_opts(1, 0.008);
    opts.telemetry.window_steps = 5;
    const auto result = run_dist(p, opts);
    EXPECT_FALSE(result.windows.empty());
    for (const auto& w : result.windows) EXPECT_EQ(w.ranks.size(), 1u);
    EXPECT_TRUE(result.telemetry.wire.match);
}

TEST(LiveSerial, CoreDriverFoldsStreamsAndBoundsRetention) {
    const std::string path = "live_serial_stream.ndjson";
    auto live_problem = bs::sod(16, 4);
    live_problem.telemetry.window_steps = 4;
    live_problem.telemetry.live = path;
    live_problem.telemetry.max_steps = 6;
    bc::Hydro live(std::move(live_problem));
    live.run(std::nullopt, 40);

    bc::Hydro plain(bs::sod(16, 4));
    plain.run(std::nullopt, 40);

    // Bitwise passive in the serial driver too.
    EXPECT_EQ(live.steps(), plain.steps());
    EXPECT_EQ(live.time(), plain.time());
    EXPECT_EQ(live.state().rho, plain.state().rho);
    EXPECT_EQ(live.state().ein, plain.state().ein);
    EXPECT_EQ(live.state().u, plain.state().u);
    EXPECT_EQ(live.state().v, plain.state().v);

    // Windows folded; the max_steps ring bounded retention losslessly.
    EXPECT_EQ(static_cast<long>(live.windows().size()), live.steps() / 4);
    const auto report = live.telemetry_report();
    ASSERT_EQ(report.ranks.size(), 1u);
    EXPECT_LE(report.ranks[0].steps.size(), 6u);
    EXPECT_EQ(report.ranks[0].evicted.steps +
                  static_cast<long>(report.ranks[0].steps.size()),
              static_cast<long>(live.steps()));
    EXPECT_EQ(report.ranks[0].windows.size(), live.windows().size());

    const auto events = read_ndjson(path);
    EXPECT_EQ(event_of(events.front()), "run_start");
    EXPECT_EQ(event_of(events.back()), "run_end");
    long windows = 0;
    for (const auto& e : events)
        if (event_of(e) == "window") ++windows;
    EXPECT_EQ(windows, static_cast<long>(live.windows().size()));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Watchdog integration: slow ranks must not flag, held ranks must
// ---------------------------------------------------------------------------

TEST(Watchdog, DoesNotFireOnSlowButProgressingRank) {
    const auto p = sod_like(24, 4);
    const std::string path = "watchdog_slow.ndjson";
    auto opts = base_opts(4, 0.01);
    opts.telemetry.window_steps = 3;
    opts.telemetry.live = path;
    opts.telemetry.watchdog_factor = 4.0;
    opts.telemetry.watchdog_grace_ms = 250;
    bt::FaultPlan::Slow slow;
    slow.rank = 1;
    slow.microseconds = 200;
    opts.faults.slows.push_back(slow);
    const auto result = run_dist(p, opts);
    EXPECT_GT(result.steps, 0);
    for (const auto& e : read_ndjson(path))
        EXPECT_NE(event_of(e), "stall")
            << "false positive on a slow but progressing rank";
    std::remove(path.c_str());
}

TEST(Watchdog, FiresUnderDelayHeldRank) {
    const auto p = sod_like(24, 4);
    const std::string path = "watchdog_delay.ndjson";
    auto opts = base_opts(4, 0.015);
    opts.telemetry.window_steps = 2;
    opts.telemetry.live = path;
    opts.telemetry.watchdog_factor = 2.0;
    opts.telemetry.watchdog_grace_ms = 50;
    // Hold EVERY message rank 3 sends: its physics still progresses (the
    // step exchanges block and promote), but its tag-502 windows sit in
    // the held queue — the silent-hang signature. Slowing every rank
    // keeps the run's wall time far above the detection threshold, so
    // the stall must be caught whatever the machine's speed.
    bt::FaultPlan::Delay delay;
    delay.rank = 3;
    delay.every = 1;
    opts.faults.delays.push_back(delay);
    for (int r = 0; r < 4; ++r) {
        bt::FaultPlan::Slow slow;
        slow.rank = r;
        slow.microseconds = 800;
        opts.faults.slows.push_back(slow);
    }
    const auto result = run_dist(p, opts);
    EXPECT_GT(result.steps, 0);

    const auto events = read_ndjson(path);
    long stalls = 0;
    for (const auto& e : events) {
        if (event_of(e) != "stall") continue;
        ++stalls;
        EXPECT_EQ(e.find("rank")->as_int(), 3);
        EXPECT_FALSE(e.find("escalated")->as_bool());
        // The diagnostic names the held tag-502 channel.
        bool held_channel = false;
        for (const auto& c : e.find("backlog")->elements())
            if (c.find("src")->as_int() == 3 &&
                c.find("tag")->as_int() == 502 &&
                c.find("held")->as_int() > 0)
                held_channel = true;
        EXPECT_TRUE(held_channel);
    }
    EXPECT_GE(stalls, 1) << "delay-held rank was never flagged";
    // The run itself completes and the final drain recovers every held
    // window: the monitored result is still bitwise the clean run.
    auto clean = base_opts(4, 0.015);
    EXPECT_TRUE(bd::bitwise_equal(result, run_dist(p, clean)));
    std::remove(path.c_str());
}

TEST(Watchdog, EscalatedStallRecoversBitwise) {
    const auto p = sod_like(24, 4);
    const std::string path = "watchdog_escalate.ndjson";
    auto opts = base_opts(4, 0.015);
    opts.telemetry.window_steps = 2;
    opts.telemetry.live = path;
    opts.telemetry.watchdog_factor = 2.0;
    opts.telemetry.watchdog_grace_ms = 50;
    opts.telemetry.watchdog_escalate = true;
    opts.supervise.enabled = true;
    opts.supervise.snapshot_every = 5;
    // Delay the HIGHEST rank: after escalation the supervisor resumes on
    // ranks 0..2, where the delay plan names no live rank — the recovery
    // attempt runs undisturbed.
    bt::FaultPlan::Delay delay;
    delay.rank = 3;
    delay.every = 1;
    opts.faults.delays.push_back(delay);
    for (int r = 0; r < 4; ++r) {
        bt::FaultPlan::Slow slow;
        slow.rank = r;
        slow.microseconds = 800;
        opts.faults.slows.push_back(slow);
    }
    const auto result = run_dist(p, opts);
    ASSERT_GE(result.recoveries.size(), 1u);
    EXPECT_EQ(result.recoveries[0].failed_rank, 3);
    EXPECT_NE(result.recoveries[0].error.find("watchdog"),
              std::string::npos);

    const auto events = read_ndjson(path);
    bool escalated_stall = false, recovery = false;
    for (const auto& e : events) {
        if (event_of(e) == "stall" && e.find("escalated")->as_bool())
            escalated_stall = true;
        if (event_of(e) == "recovery") recovery = true;
    }
    EXPECT_TRUE(escalated_stall);
    EXPECT_TRUE(recovery);

    // The escalated-and-recovered run is bitwise the uninterrupted one.
    auto clean = base_opts(4, 0.015);
    EXPECT_TRUE(bd::bitwise_equal(result, run_dist(p, clean)));
    std::remove(path.c_str());
}
