/// \file test_attribution.cpp
/// Performance attribution: critical-path analysis of executed task
/// graphs (obs::critical_path), the attribution fields of the telemetry
/// report, the anomaly detectors, and — the load-bearing contract — that
/// attribution-on runs are bitwise identical to attribution-off at every
/// (ranks x threads x schedule) combination.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "mesh/generator.hpp"
#include "obs/critical_path.hpp"
#include "obs/telemetry.hpp"
#include "par/task_graph.hpp"
#include "par/thread_pool.hpp"
#include "setup/problems.hpp"

namespace bc = bookleaf::core;
namespace bd = bookleaf::dist;
namespace be = bookleaf::eos;
namespace bm = bookleaf::mesh;
namespace bo = bookleaf::obs;
namespace bp = bookleaf::par;
namespace bs = bookleaf::setup;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;
using bu::Kernel;

namespace {

/// A span on worker `w` starting at `t0` lasting `dur` with a label.
bp::TaskSpan span(double t0, double dur, int worker = 0,
                  Kernel kernel = Kernel::tasks) {
    return {.t0_us = t0, .dur_us = dur, .worker = worker, .kernel = kernel};
}

struct Problem {
    bm::Mesh mesh;
    be::MaterialTable materials;
    std::vector<Real> rho, ein, u, v;
};

/// The miniature Sod-like strip shared with the dist driver tests.
Problem sod_like(Index nx, Index ny) {
    Problem p;
    bm::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 0.1,
                      .nx = nx, .ny = ny};
    spec.region_of = [](Real cx, Real) { return cx < 0.5 ? 0 : 1; };
    p.mesh = bm::generate_rect(spec);
    p.materials.materials = {be::IdealGas{1.4}, be::IdealGas{1.4}};
    p.rho.resize(static_cast<std::size_t>(p.mesh.n_cells()));
    p.ein.resize(p.rho.size());
    for (Index c = 0; c < p.mesh.n_cells(); ++c) {
        const bool left = p.mesh.cell_region[static_cast<std::size_t>(c)] == 0;
        p.rho[static_cast<std::size_t>(c)] = left ? 1.0 : 0.125;
        p.ein[static_cast<std::size_t>(c)] = left ? 2.5 : 2.0;
    }
    p.u.assign(static_cast<std::size_t>(p.mesh.n_nodes()), 0.0);
    p.v.assign(p.u.size(), 0.0);
    return p;
}

} // namespace

// ---------------------------------------------------------------------------
// Longest-path DP on hand-built graphs
// ---------------------------------------------------------------------------

TEST(CritPath, ChainIsItsOwnCriticalPath) {
    // 0 -> 1 -> 2 executed back to back: cp = 5 + 7 + 9.
    bp::GraphRunRecord run;
    run.tasks = {span(0, 5, 0, Kernel::getq), span(5, 7, 0, Kernel::getforce),
                 span(12, 9, 0, Kernel::getacc)};
    run.edges = {{0, 1}, {1, 2}};
    run.n_workers = 1;

    const auto a = bo::analyze_graph(run);
    EXPECT_DOUBLE_EQ(a.cp_us, 21.0);
    EXPECT_DOUBLE_EQ(a.busy_us, 21.0);
    EXPECT_DOUBLE_EQ(a.makespan_us, 21.0);
    EXPECT_DOUBLE_EQ(a.efficiency, 1.0);
    ASSERT_EQ(a.path, (std::vector<bp::TaskId>{0, 1, 2}));
    EXPECT_DOUBLE_EQ(a.cp_kernel_us[static_cast<std::size_t>(Kernel::getq)],
                     5.0);
    EXPECT_DOUBLE_EQ(
        a.cp_kernel_us[static_cast<std::size_t>(Kernel::getforce)], 7.0);
    EXPECT_DOUBLE_EQ(a.cp_kernel_us[static_cast<std::size_t>(Kernel::getacc)],
                     9.0);
}

TEST(CritPath, DiamondPicksTheHeavierBranch) {
    // 0 -> {1 heavy, 2 light} -> 3: the path must route through 1.
    bp::GraphRunRecord run;
    run.tasks = {span(0, 2), span(2, 10, 0), span(2, 3, 1), span(12, 4)};
    run.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
    run.n_workers = 2;

    const auto a = bo::analyze_graph(run);
    EXPECT_DOUBLE_EQ(a.cp_us, 16.0);
    ASSERT_EQ(a.path, (std::vector<bp::TaskId>{0, 1, 3}));
    EXPECT_DOUBLE_EQ(a.busy_us, 19.0);
    EXPECT_DOUBLE_EQ(a.makespan_us, 16.0);
}

TEST(CritPath, FanOutReportsEfficiencyAndPerWorkerIdle) {
    // Independent tasks on 2 workers: worker 0 busy the whole makespan,
    // worker 1 busy 6 of 10 — efficiency 16/20, idle 0 and 4.
    bp::GraphRunRecord run;
    run.tasks = {span(0, 10, 0), span(0, 2, 1), span(2, 2, 1), span(4, 2, 1)};
    run.n_workers = 2;

    const auto a = bo::analyze_graph(run);
    EXPECT_DOUBLE_EQ(a.cp_us, 10.0);
    EXPECT_DOUBLE_EQ(a.makespan_us, 10.0);
    EXPECT_DOUBLE_EQ(a.busy_us, 16.0);
    EXPECT_DOUBLE_EQ(a.efficiency, 0.8);
    ASSERT_EQ(a.worker_busy_us.size(), 2u);
    EXPECT_DOUBLE_EQ(a.worker_busy_us[0], 10.0);
    EXPECT_DOUBLE_EQ(a.worker_busy_us[1], 6.0);
    ASSERT_EQ(a.path, (std::vector<bp::TaskId>{0}));
}

TEST(CritPath, CyclicRecordThrows) {
    bp::GraphRunRecord run;
    run.tasks = {span(0, 1), span(1, 1)};
    run.edges = {{0, 1}, {1, 0}};
    EXPECT_THROW((void)bo::analyze_graph(run), bu::Error);
}

TEST(CritPath, TaskGraphRunAppendsLabeledRecords) {
    // A real executor run must export spans, labels, edges and workers —
    // on both the serial and the threaded path.
    for (const int threads : {1, 3}) {
        bp::ThreadPool pool(threads);
        bp::Exec ex;
        if (threads > 1) ex.pool = &pool;

        bp::TaskGraph graph;
        std::atomic<int> order{0};
        int first = -1, last = -1;
        const auto a = graph.add([&] { first = order++; }, false,
                                 Kernel::getq);
        const auto b = graph.add([&] { (void)order++; }, false,
                                 Kernel::getforce);
        const auto c = graph.add([&] { last = order++; }, false,
                                 Kernel::getacc);
        graph.depend(b, a);
        graph.depend(c, b);

        bp::GraphRunLog log;
        log.epoch = std::chrono::steady_clock::now();
        graph.run(ex, nullptr, &log);

        EXPECT_EQ(first, 0);
        EXPECT_EQ(last, 2);
        ASSERT_EQ(log.runs.size(), 1u) << threads << " threads";
        const auto& run = log.runs.back();
        ASSERT_EQ(run.tasks.size(), 3u);
        EXPECT_EQ(run.n_workers, threads);
        EXPECT_EQ(run.tasks[0].kernel, Kernel::getq);
        EXPECT_EQ(run.tasks[2].kernel, Kernel::getacc);
        for (const auto& t : run.tasks) {
            EXPECT_GE(t.t0_us, 0.0);
            EXPECT_GE(t.dur_us, 0.0);
            EXPECT_LT(t.worker, threads);
        }
        ASSERT_EQ(run.edges.size(), 2u);

        // The whole chain is critical, whatever the schedule did.
        const auto analysis = bo::analyze_graph(run);
        ASSERT_EQ(analysis.path, (std::vector<bp::TaskId>{a, b, c}));

        // Without a log the same run records nothing (zero-cost path).
        graph.run(ex);
        EXPECT_EQ(log.runs.size(), 1u);
    }
}

// ---------------------------------------------------------------------------
// Step attribution and the report plumbing
// ---------------------------------------------------------------------------

TEST(Attrib, AttributeStepAccumulatesAndDrainsTheLog) {
    bp::GraphRunLog log;
    bp::GraphRunRecord r1;
    r1.tasks = {span(0, 5, 0, Kernel::getq), span(5, 7, 0, Kernel::getq)};
    r1.edges = {{0, 1}};
    r1.n_workers = 2;
    bp::GraphRunRecord r2;
    r2.tasks = {span(0, 4, 0, Kernel::ale_fluxes), span(0, 3, 1)};
    r2.n_workers = 2;
    log.runs = {r1, r2};

    bo::StepRecord step;
    bo::RankAttribution total;
    std::vector<bo::CritSpan> critical;
    bo::attribute_step(log, step, total, &critical);

    EXPECT_TRUE(log.runs.empty()) << "the step must drain the log";
    EXPECT_DOUBLE_EQ(step.cp_us, 12.0 + 4.0);
    EXPECT_DOUBLE_EQ(step.graph_busy_us, 12.0 + 7.0);
    EXPECT_DOUBLE_EQ(step.graph_makespan_us, 12.0 + 4.0);
    EXPECT_EQ(step.graph_workers, 2);

    EXPECT_EQ(total.graphs, 2);
    EXPECT_DOUBLE_EQ(total.cp_us, 16.0);
    EXPECT_DOUBLE_EQ(
        total.cp_kernel_us[static_cast<std::size_t>(Kernel::getq)], 12.0);
    EXPECT_DOUBLE_EQ(
        total.cp_kernel_us[static_cast<std::size_t>(Kernel::ale_fluxes)], 4.0);
    ASSERT_EQ(total.worker_busy_us.size(), 2u);
    EXPECT_DOUBLE_EQ(total.worker_busy_us[0], 12.0 + 4.0);
    EXPECT_DOUBLE_EQ(total.worker_busy_us[1], 3.0);
    EXPECT_GT(total.efficiency(), 0.0);

    // Critical spans: 2 tasks of chain 1, then 1 task of chain 2.
    ASSERT_EQ(critical.size(), 3u);
    EXPECT_EQ(critical[0].chain, critical[1].chain);
    EXPECT_NE(critical[1].chain, critical[2].chain);

    // A step with no graph runs is a no-op on everything.
    bo::StepRecord quiet;
    bo::attribute_step(log, quiet, total, &critical);
    EXPECT_EQ(quiet.graph_workers, 0);
    EXPECT_EQ(total.graphs, 2);
    EXPECT_EQ(critical.size(), 3u);
}

TEST(Attrib, CodecRoundTripsAttributionFields) {
    bo::RankRecord rec;
    rec.rank = 2;
    rec.epoch_us = 321.5;
    bo::StepRecord s{.step = 0, .t = 1e-4, .dt = 1e-4};
    s.cp_us = 120.0;
    s.graph_busy_us = 200.0;
    s.graph_makespan_us = 130.0;
    s.graph_workers = 4;
    rec.steps = {s};
    rec.kernels[static_cast<std::size_t>(Kernel::getq)] = {0.5, 0.0, 40, 900};
    rec.attrib.graphs = 7;
    rec.attrib.cp_us = 840.0;
    rec.attrib.busy_us = 1400.0;
    rec.attrib.makespan_us = 910.0;
    rec.attrib.cp_kernel_us[static_cast<std::size_t>(Kernel::ale_cells)] =
        333.0;
    rec.attrib.worker_busy_us = {700.0, 450.0, 250.0};

    const auto back = bo::unpack_rank(bo::pack_rank(rec));
    EXPECT_EQ(back.epoch_us, 321.5);
    ASSERT_EQ(back.steps.size(), 1u);
    EXPECT_EQ(back.steps[0].cp_us, 120.0);
    EXPECT_EQ(back.steps[0].graph_busy_us, 200.0);
    EXPECT_EQ(back.steps[0].graph_makespan_us, 130.0);
    EXPECT_EQ(back.steps[0].graph_workers, 4);
    EXPECT_EQ(back.kernels[static_cast<std::size_t>(Kernel::getq)].items,
              900);
    EXPECT_EQ(back.attrib.graphs, 7);
    EXPECT_EQ(back.attrib.cp_us, 840.0);
    EXPECT_EQ(
        back.attrib.cp_kernel_us[static_cast<std::size_t>(Kernel::ale_cells)],
        333.0);
    ASSERT_EQ(back.attrib.worker_busy_us, rec.attrib.worker_busy_us);
}

TEST(Attrib, SerialReportCarriesAttributionConfigAndWorkModel) {
    auto problem = bs::sod(32, 2);
    problem.telemetry.enabled = true;
    bc::Hydro hydro(std::move(problem));
    bp::ThreadPool pool(2);
    bp::Exec exec;
    exec.pool = &pool;
    exec.schedule = bp::Schedule::taskgraph;
    hydro.set_exec(exec);
    hydro.run(std::nullopt, 20);

    const auto report = hydro.telemetry_report();
    EXPECT_EQ(report.config.schedule, "taskgraph");
    EXPECT_EQ(report.config.n_threads, 2);
    EXPECT_EQ(report.config.n_ranks, 1);
    ASSERT_TRUE(report.work.present);
    EXPECT_GT(report.work.peak_flops, 0.0);
    EXPECT_GT(report.work.peak_bw, 0.0);
    EXPECT_GT(report.work
                  .kernels[static_cast<std::size_t>(Kernel::getq)]
                  .flops_per_item,
              0.0);

    ASSERT_EQ(report.ranks.size(), 1u);
    const auto& rank = report.ranks[0];
    EXPECT_GT(rank.attrib.graphs, 0) << "taskgraph steps must be analyzed";
    EXPECT_GT(rank.attrib.cp_us, 0.0);
    EXPECT_LE(rank.attrib.cp_us, rank.attrib.busy_us * (1.0 + 1e-12));
    ASSERT_EQ(rank.attrib.worker_busy_us.size(), 2u);
    const double eff = rank.attrib.efficiency();
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0 + 1e-12);

    // Kernels swept entities and the lagstep graphs attributed them.
    EXPECT_GT(rank.kernels[static_cast<std::size_t>(Kernel::getq)].items, 0);
    bool step_with_graph = false;
    for (const auto& s : rank.steps)
        if (s.graph_workers == 2 && s.cp_us > 0.0) step_with_graph = true;
    EXPECT_TRUE(step_with_graph);

    // The JSON shape: config/work_model/attribution present, per-kernel
    // achieved rates where work was counted.
    const auto text = bo::to_json(report).dump(2);
    EXPECT_NE(text.find("\"config\""), std::string::npos);
    EXPECT_NE(text.find("\"work_model\""), std::string::npos);
    EXPECT_NE(text.find("\"attribution\""), std::string::npos);
    EXPECT_NE(text.find("\"cp_us\""), std::string::npos);
    EXPECT_NE(text.find("\"gflops\""), std::string::npos);
    EXPECT_NE(text.find("\"roofline_ratio\""), std::string::npos);
    EXPECT_NE(bo::summary_table(report).find("critical path"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// The passivity matrix: attribution on == off, bitwise, everywhere
// ---------------------------------------------------------------------------

TEST(Attrib, AttributionOnIsBitwisePassiveAcrossRanksAndSchedules) {
    const auto p = sod_like(40, 2);
    struct Mode {
        const char* name;
        bookleaf::ale::Mode mode;
    };
    for (const auto& [name, mode] :
         {Mode{"lagrange", bookleaf::ale::Mode::lagrange},
          Mode{"eulerian", bookleaf::ale::Mode::eulerian},
          Mode{"ale", bookleaf::ale::Mode::ale}}) {
        for (const int n_ranks : {2, 4}) {
            bd::Options clean_opts;
            clean_opts.n_ranks = n_ranks;
            clean_opts.n_threads = 2;
            clean_opts.t_end = 0.02;
            clean_opts.hydro.dt_initial = 1e-4;
            clean_opts.ale.mode = mode;
            const auto clean = bd::run(p.mesh, p.materials, p.rho, p.ein,
                                       p.u, p.v, clean_opts);

            for (const auto schedule :
                 {bp::Schedule::taskgraph, bp::Schedule::forkjoin}) {
                auto tel_opts = clean_opts;
                tel_opts.schedule = schedule;
                tel_opts.telemetry.enabled = true;
                const auto tel = bd::run(p.mesh, p.materials, p.rho, p.ein,
                                         p.u, p.v, tel_opts);
                EXPECT_TRUE(bd::bitwise_equal(clean, tel))
                    << name << " on " << n_ranks << " ranks, "
                    << (schedule == bp::Schedule::taskgraph ? "taskgraph"
                                                            : "forkjoin");
                EXPECT_EQ(tel.telemetry.config.n_ranks, n_ranks);
                EXPECT_EQ(tel.telemetry.config.n_threads, 2);
                EXPECT_TRUE(tel.telemetry.work.present);

                // Remap-bearing taskgraph runs must carry graph analyses.
                if (schedule == bp::Schedule::taskgraph &&
                    mode != bookleaf::ale::Mode::lagrange) {
                    long graphs = 0;
                    for (const auto& r : tel.telemetry.ranks)
                        graphs += r.attrib.graphs;
                    EXPECT_GT(graphs, 0) << name;
                }
            }
        }
    }
}

TEST(Attrib, EpochOffsetsAlignOntoRankZero) {
    const auto p = sod_like(40, 2);
    bd::Options opts;
    opts.n_ranks = 4;
    opts.n_threads = 2;
    opts.t_end = 0.02;
    opts.hydro.dt_initial = 1e-4;
    opts.ale.mode = bookleaf::ale::Mode::eulerian;
    opts.telemetry.enabled = true;
    const auto r = bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);

    ASSERT_EQ(r.telemetry.ranks.size(), 4u);
    EXPECT_EQ(r.telemetry.ranks[0].epoch_us, 0.0)
        << "rank 0 is the reference timeline";
    // After alignment, the same-numbered step starts within the run's
    // wall-clock envelope on every rank (the ranks run concurrently).
    const double run_us = r.telemetry.wall_s * 1e6;
    for (const auto& rank : r.telemetry.ranks)
        for (const auto& s : rank.steps) {
            EXPECT_GT(s.start_us + rank.epoch_us + run_us, 0.0);
            EXPECT_LT(s.start_us, run_us * 2.0 + 1e6);
        }
}

TEST(Attrib, TraceCarriesCriticalPathFlowArrows) {
    const auto path = ::testing::TempDir() + "attrib_trace_test.json";
    const auto p = sod_like(32, 2);
    bd::Options opts;
    opts.n_ranks = 2;
    opts.n_threads = 2;
    opts.t_end = 0.01;
    opts.hydro.dt_initial = 1e-4;
    opts.ale.mode = bookleaf::ale::Mode::eulerian;
    opts.schedule = bp::Schedule::taskgraph;
    opts.telemetry.trace = path;
    const auto r = bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
    ASSERT_GT(r.steps, 0);

    const auto doc = bo::read_json_file(path);
    const auto* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t starts = 0, finishes = 0;
    for (const auto& event : events->elements()) {
        const auto& ph = event.find("ph")->as_string();
        if (ph == "s") {
            ++starts;
            EXPECT_EQ(event.find("cat")->as_string(), "critical");
        } else if (ph == "f") {
            ++finishes;
        }
    }
    EXPECT_GT(starts, 0u) << "critical-path flow arrows must be emitted";
    EXPECT_EQ(starts, finishes);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Anomaly detection
// ---------------------------------------------------------------------------

TEST(Attrib, AnomalyFlagsTheSlowedRank) {
    const auto p = sod_like(40, 2);
    bd::Options opts;
    opts.n_ranks = 4;
    opts.t_end = 0.02;
    opts.hydro.dt_initial = 1e-4;
    opts.telemetry.enabled = true;
    opts.faults.slows.push_back({.rank = 1, .microseconds = 200});
    const auto r = bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);

    bool flagged = false;
    for (const auto& a : r.telemetry.anomalies) {
        EXPECT_GT(a.factor, opts.telemetry.anomaly_factor);
        if (a.rank == 1 && a.metric == "cross_rank") flagged = true;
    }
    EXPECT_TRUE(flagged)
        << "the slow_rank injection must surface as a cross_rank anomaly ("
        << r.telemetry.anomalies.size() << " anomalies found)";
    EXPECT_NE(bo::summary_table(r.telemetry).find("anomaly"),
              std::string::npos);
}

TEST(Attrib, CleanRunRaisesNoCrossRankAnomaly) {
    // Deterministic hand-built report: four ranks with matching per-item
    // costs — no anomaly; then one rank 8x off — flagged.
    bo::RunReport report;
    for (int r = 0; r < 4; ++r) {
        bo::RankRecord rec;
        rec.rank = r;
        rec.kernels[static_cast<std::size_t>(Kernel::getq)] = {
            0.4, 0.0, 100, 100000};
        report.ranks.push_back(std::move(rec));
    }
    EXPECT_TRUE(bo::detect_anomalies(report, 4.0).empty());

    report.ranks[2].kernels[static_cast<std::size_t>(Kernel::getq)].wall_s =
        3.2;
    const auto anomalies = bo::detect_anomalies(report, 4.0);
    ASSERT_EQ(anomalies.size(), 1u);
    EXPECT_EQ(anomalies[0].rank, 2);
    EXPECT_EQ(anomalies[0].kernel, Kernel::getq);
    EXPECT_EQ(anomalies[0].metric, "cross_rank");
    EXPECT_NEAR(anomalies[0].factor, 8.0, 1e-9);
}
