// Unit and property tests for the parallel runtime: thread pool,
// parallel_for, reductions (incl. the serial-reduction artefact), and the
// scatter-conflict colouring.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "par/coloring.hpp"
#include "par/exec.hpp"
#include "par/thread_pool.hpp"
#include "util/random.hpp"

namespace bp = bookleaf::par;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

TEST(ThreadPool, RunsJobOnAllWorkers) {
    bp::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::atomic<int>> hits(4);
    pool.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
    bp::ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int rep = 0; rep < 50; ++rep)
        pool.run([&](int) { total++; });
    EXPECT_EQ(total.load(), 50 * 3);
}

TEST(ThreadPool, SingleThreadRunsInline) {
    bp::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    int x = 0;
    pool.run([&](int tid) {
        EXPECT_EQ(tid, 0);
        x = 7;
    });
    EXPECT_EQ(x, 7);
}

TEST(Exec, ForEachCoversRangeExactlyOnceSerial) {
    const bp::Exec ex; // serial
    std::vector<int> counts(1000, 0);
    bp::for_each(ex, 1000, [&](Index i) { counts[static_cast<std::size_t>(i)]++; });
    for (const int c : counts) EXPECT_EQ(c, 1);
}

TEST(Exec, ForEachCoversRangeExactlyOnceThreaded) {
    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    std::vector<std::atomic<int>> counts(10007);
    bp::for_each(ex, 10007, [&](Index i) { counts[static_cast<std::size_t>(i)]++; });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, RunAcceptsMoveOnlyCallable) {
    // The templated dispatch must not require copyable callables (no
    // std::function round trip).
    bp::ThreadPool pool(3);
    auto owned = std::make_unique<std::atomic<int>>(0);
    auto job = [p = std::move(owned)](int) { p->fetch_add(1); };
    pool.run(job);
    // `job` still owns the counter (run takes it by reference).
    pool.run(job);
}

TEST(Exec, ForEachChunkedCoversRangeExactlyOnce) {
    // Dynamic chunk scheduling with a tiny grain: every index still
    // executes exactly once, whatever the chunk interleaving.
    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    for (const bookleaf::Index grain : {1, 3, 64, 1000, 100000}) {
        ex.grain = grain;
        std::vector<std::atomic<int>> counts(9973);
        bp::for_each(ex, 9973,
                     [&](Index i) { counts[static_cast<std::size_t>(i)]++; });
        for (const auto& c : counts) ASSERT_EQ(c.load(), 1) << "grain " << grain;
    }
}

TEST(Exec, ForEachChunkedBalancesIrregularWork) {
    // Iterations with wildly uneven cost: dynamic chunking must still
    // complete and cover the range (a static decomposition would too, but
    // this exercises the chunk hand-off path under contention).
    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    ex.grain = 8;
    std::atomic<long> total{0};
    bp::for_each(ex, 2048, [&](Index i) {
        long local = 0;
        const int reps = (i % 97 == 0) ? 2000 : 1; // rare expensive iterations
        for (int r = 0; r < reps; ++r) local += r ^ i;
        total += local;
    });
    EXPECT_GT(total.load(), 0);
}

TEST(Exec, ResolveGrainHonorsAndClampsTheKnob) {
    // Regression: the old for_each compared the raw knob against n and
    // silently dropped an oversized grain (falling back to auto sizing on
    // the serial path). resolve_grain is the single source of truth now:
    // the knob is honored when it fits and clamps to [1, n] when it
    // doesn't.
    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    ex.grain = 5;
    EXPECT_EQ(bp::detail::resolve_grain(ex, 1000), 5);
    ex.grain = 100000; // oversized: one chunk, not a silent fallback
    EXPECT_EQ(bp::detail::resolve_grain(ex, 1000), 1000);
    ex.grain = 0; // automatic: ~4 chunks per worker, floor 64
    EXPECT_EQ(bp::detail::resolve_grain(ex, 10000),
              std::max<Index>(64, 10000 / (4 * 4)));
    EXPECT_EQ(bp::detail::resolve_grain(ex, 10), 10); // floor clamps to n
    EXPECT_EQ(bp::detail::resolve_grain(ex, 0), 1);   // empty range
}

TEST(Exec, ResolveTaskBlockHonorsAndClampsTheKnob) {
    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    ex.task_block = 7;
    EXPECT_EQ(bp::detail::resolve_task_block(ex, 1000), 7);
    ex.task_block = 100000;
    EXPECT_EQ(bp::detail::resolve_task_block(ex, 1000), 1000);
    ex.task_block = 0;
    EXPECT_EQ(bp::detail::resolve_task_block(ex, 10000),
              std::max<Index>(64, 10000 / (4 * 4)));
    EXPECT_EQ(bp::detail::resolve_task_block(ex, 3), 3);
}

TEST(Exec, ForEachOversizedGrainKnobStillCoversThreaded) {
    // The companion behavioral check: an oversized knob degrades to one
    // chunk (serial body) but still visits every index exactly once.
    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    ex.grain = 1 << 20;
    std::vector<int> counts(513, 0);
    bp::for_each(ex, 513, [&](Index i) { counts[static_cast<std::size_t>(i)]++; });
    for (const int c : counts) EXPECT_EQ(c, 1);
}

TEST(Exec, ForEachEmptyRange) {
    const bp::Exec ex;
    int calls = 0;
    bp::for_each(ex, 0, [&](Index) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(Exec, ReduceMinMatchesSerialReference) {
    bu::SplitMix64 rng(11);
    std::vector<Real> v(5000);
    for (auto& x : v) x = rng.uniform(-100.0, 100.0);

    const bp::Exec serial;
    const auto ref =
        bp::reduce_min(serial, static_cast<Index>(v.size()),
                       [&](Index i) { return v[static_cast<std::size_t>(i)]; });

    bp::ThreadPool pool(4);
    bp::Exec threaded;
    threaded.pool = &pool;
    const auto got =
        bp::reduce_min(threaded, static_cast<Index>(v.size()),
                       [&](Index i) { return v[static_cast<std::size_t>(i)]; });

    EXPECT_DOUBLE_EQ(got.value, ref.value);
    EXPECT_EQ(got.index, ref.index);
}

TEST(Exec, ReduceMinSerialReductionArtefact) {
    // With serial_reductions set the result must still be identical; only
    // the execution path differs (one thread does all the work).
    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    ex.serial_reductions = true;
    std::vector<Real> v = {5.0, 3.0, 9.0, 1.0, 4.0};
    const auto r = bp::reduce_min(ex, 5, [&](Index i) {
        return v[static_cast<std::size_t>(i)];
    });
    EXPECT_DOUBLE_EQ(r.value, 1.0);
    EXPECT_EQ(r.index, 3);
}

TEST(Exec, ReduceMinEmptyRange) {
    const bp::Exec ex;
    const auto r = bp::reduce_min(ex, 0, [](Index) { return 1.0; });
    EXPECT_EQ(r.index, bookleaf::no_index);
}

TEST(Exec, ReduceMinFirstOfTies) {
    const bp::Exec ex;
    std::vector<Real> v = {2.0, 1.0, 1.0};
    const auto r = bp::reduce_min(ex, 3, [&](Index i) {
        return v[static_cast<std::size_t>(i)];
    });
    EXPECT_EQ(r.index, 1);
}

TEST(Exec, ReduceSumDeterministicAcrossWidths) {
    bu::SplitMix64 rng(23);
    std::vector<Real> v(4096);
    for (auto& x : v) x = rng.uniform(0.0, 1.0);
    const bp::Exec serial;
    const Real ref = bp::reduce_sum(serial, static_cast<Index>(v.size()),
                                    [&](Index i) { return v[static_cast<std::size_t>(i)]; });
    bp::ThreadPool pool(4);
    bp::Exec threaded;
    threaded.pool = &pool;
    const Real a = bp::reduce_sum(threaded, static_cast<Index>(v.size()),
                                  [&](Index i) { return v[static_cast<std::size_t>(i)]; });
    const Real b = bp::reduce_sum(threaded, static_cast<Index>(v.size()),
                                  [&](Index i) { return v[static_cast<std::size_t>(i)]; });
    EXPECT_DOUBLE_EQ(a, b);          // repeatable under the same width
    EXPECT_NEAR(a, ref, 1e-12 * ref); // and consistent with serial
}

namespace {

/// Build the cell->nodes CSR of an nx x ny structured quad grid — the
/// realistic conflict structure for the acceleration scatter.
bu::Csr grid_cell_nodes(Index nx, Index ny) {
    std::vector<std::pair<Index, Index>> pairs;
    for (Index j = 0; j < ny; ++j)
        for (Index i = 0; i < nx; ++i) {
            const Index c = j * nx + i;
            const Index n0 = j * (nx + 1) + i;
            pairs.emplace_back(c, n0);
            pairs.emplace_back(c, n0 + 1);
            pairs.emplace_back(c, n0 + nx + 1);
            pairs.emplace_back(c, n0 + nx + 2);
        }
    return bu::Csr::from_pairs(nx * ny, pairs);
}

} // namespace

TEST(Coloring, GridColoringIsValidAndSmall) {
    const auto cells = grid_cell_nodes(16, 16);
    const Index n_nodes = 17 * 17;
    const auto col = bp::greedy_color(cells, n_nodes);
    EXPECT_TRUE(bp::coloring_is_valid(col, cells, n_nodes));
    // A structured quad grid colours with exactly 4 colours.
    EXPECT_LE(col.n_colors(), 8);
    EXPECT_GE(col.n_colors(), 4);
}

TEST(Coloring, ClassesPartitionItems) {
    const auto cells = grid_cell_nodes(8, 4);
    const auto col = bp::greedy_color(cells, 9 * 5);
    std::vector<int> seen(8 * 4, 0);
    for (const auto& cls : col.classes)
        for (const Index c : cls) seen[static_cast<std::size_t>(c)]++;
    for (const int s : seen) EXPECT_EQ(s, 1);
}

class ColoringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColoringProperty, RandomHypergraphsColorValidly) {
    bu::SplitMix64 rng(GetParam());
    const Index n_items = static_cast<Index>(20 + rng.uniform_index(200));
    const Index n_resources = static_cast<Index>(10 + rng.uniform_index(100));
    std::vector<std::pair<Index, Index>> pairs;
    for (Index i = 0; i < n_items; ++i) {
        const int deg = 1 + static_cast<int>(rng.uniform_index(4));
        for (int d = 0; d < deg; ++d)
            pairs.emplace_back(
                i, static_cast<Index>(rng.uniform_index(
                       static_cast<std::uint64_t>(n_resources))));
    }
    const auto csr = bu::Csr::from_pairs(n_items, pairs);
    const auto col = bp::greedy_color(csr, n_resources);
    EXPECT_TRUE(bp::coloring_is_valid(col, csr, n_resources));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(Coloring, InvalidColoringDetected) {
    const auto cells = grid_cell_nodes(4, 4);
    auto col = bp::greedy_color(cells, 5 * 5);
    // Corrupt: force two adjacent cells to the same colour.
    col.color[1] = col.color[0];
    EXPECT_FALSE(bp::coloring_is_valid(col, cells, 5 * 5));
}
