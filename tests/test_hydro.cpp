// Physics tests for the hydro kernels and the Lagrangian step:
// equilibrium preservation, force identities, viscosity switches,
// conservation, hourglass control, timestep control, threaded equivalence.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "hydro/kernels.hpp"
#include "mesh/generator.hpp"
#include "par/coloring.hpp"
#include "setup/problems.hpp"
#include "util/csr.hpp"
#include "util/random.hpp"

namespace bh = bookleaf::hydro;
namespace bm = bookleaf::mesh;
namespace be = bookleaf::eos;
namespace bp = bookleaf::par;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

namespace {

/// Owns mesh + materials + state + context with stable addresses.
struct Rig {
    bm::Mesh mesh;
    be::MaterialTable materials;
    bh::State state;
    bu::Profiler profiler;
    bh::Context ctx;

    Rig(const Rig&) = delete;
    Rig& operator=(const Rig&) = delete;

    Rig(bm::RectSpec spec, Real gamma, Real rho, Real ein) {
        mesh = bm::generate_rect(spec);
        materials.materials = {be::IdealGas{gamma}};
        state = bh::allocate(mesh);
        std::fill(state.rho.begin(), state.rho.end(), rho);
        std::fill(state.ein.begin(), state.ein.end(), ein);
        bh::initialise(mesh, materials, state);
        ctx.mesh = &mesh;
        ctx.materials = &materials;
        ctx.profiler = &profiler;
    }

    void reinit() { bh::initialise(mesh, materials, state); }
};

bu::Csr cell_nodes_csr(const bm::Mesh& mesh) {
    std::vector<std::pair<Index, Index>> pairs;
    for (Index c = 0; c < mesh.n_cells(); ++c)
        for (int k = 0; k < 4; ++k) pairs.emplace_back(c, mesh.cn(c, k));
    return bu::Csr::from_pairs(mesh.n_cells(), pairs);
}

} // namespace

// ---------------------------------------------------------------------------
// getforce identities
// ---------------------------------------------------------------------------

TEST(GetForce, UniformPressureForcesSumToZeroPerCell) {
    Rig rig({.nx = 4, .ny = 4}, 1.4, 1.0, 2.5);
    bh::getq(rig.ctx, rig.state);
    bh::getforce(rig.ctx, rig.state);
    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        Real sx = 0, sy = 0;
        for (int k = 0; k < 4; ++k) {
            sx += rig.state.fx[bh::State::cidx(c, k)];
            sy += rig.state.fy[bh::State::cidx(c, k)];
        }
        EXPECT_NEAR(sx, 0.0, 1e-12);
        EXPECT_NEAR(sy, 0.0, 1e-12);
    }
}

TEST(GetForce, UniformStateGivesZeroNetNodalForceInterior) {
    Rig rig({.nx = 6, .ny = 6}, 1.4, 1.0, 2.5);
    bh::getq(rig.ctx, rig.state);
    bh::getforce(rig.ctx, rig.state);
    bh::getacc(rig.ctx, rig.state, 1e-6);
    // Interior nodes must feel zero net force in a uniform-pressure gas.
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        if (rig.mesh.node_bc[static_cast<std::size_t>(n)] != bm::bc::none)
            continue;
        EXPECT_NEAR(rig.state.nfx[static_cast<std::size_t>(n)], 0.0, 1e-12);
        EXPECT_NEAR(rig.state.nfy[static_cast<std::size_t>(n)], 0.0, 1e-12);
    }
}

TEST(GetForce, PressureGradientPushesTowardLowPressure) {
    // Two-region gas: hot left half, cold right half; the interface nodes
    // must be pushed to the right (+x).
    bm::RectSpec spec{.nx = 8, .ny = 2};
    spec.region_of = [](Real cx, Real) { return cx < 0.5 ? 0 : 1; };
    bm::Mesh mesh = bm::generate_rect(spec);
    be::MaterialTable mats;
    mats.materials = {be::IdealGas{1.4}, be::IdealGas{1.4}};
    bh::State s = bh::allocate(mesh);
    for (Index c = 0; c < mesh.n_cells(); ++c) {
        const bool left = mesh.cell_region[static_cast<std::size_t>(c)] == 0;
        s.rho[static_cast<std::size_t>(c)] = 1.0;
        s.ein[static_cast<std::size_t>(c)] = left ? 2.5 : 0.25;
    }
    bh::initialise(mesh, mats, s);
    bu::Profiler prof;
    bh::Context ctx{.mesh = &mesh, .materials = &mats, .profiler = &prof};
    bh::getq(ctx, s);
    bh::getforce(ctx, s);
    bh::getacc(ctx, s, 1e-3);
    // Find an interface node (x == 0.5, interior in y impossible with ny=2:
    // pick the mid-row node at x=0.5).
    bool checked = false;
    for (Index n = 0; n < mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (std::abs(mesh.x[ni] - 0.5) < 1e-12 &&
            std::abs(mesh.y[ni] - 0.5) < 1e-12) {
            EXPECT_GT(s.u[ni], 0.0);
            checked = true;
        }
    }
    EXPECT_TRUE(checked);
}

TEST(GetForce, SubzonalForcesVanishOnUndistortedUniformCells) {
    Rig rig({.nx = 4, .ny = 4}, 1.4, 1.0, 2.5);
    rig.ctx.opts.hourglass.subzonal_pressures = true;
    bh::getq(rig.ctx, rig.state);
    bh::getforce(rig.ctx, rig.state);
    const auto with = rig.state.fx;
    rig.ctx.opts.hourglass.subzonal_pressures = false;
    bh::getforce(rig.ctx, rig.state);
    for (std::size_t i = 0; i < with.size(); ++i)
        EXPECT_NEAR(with[i], rig.state.fx[i], 1e-12);
}

// ---------------------------------------------------------------------------
// getq: viscosity switches
// ---------------------------------------------------------------------------

TEST(GetQ, ZeroForUniformTranslation) {
    Rig rig({.nx = 6, .ny = 6}, 1.4, 1.0, 2.5);
    std::fill(rig.state.u.begin(), rig.state.u.end(), 0.3);
    std::fill(rig.state.v.begin(), rig.state.v.end(), -0.2);
    bh::getq(rig.ctx, rig.state);
    for (const Real q : rig.state.q) EXPECT_DOUBLE_EQ(q, 0.0);
    for (const Real f : rig.state.qfx) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(GetQ, ZeroForRigidRotation) {
    Rig rig({.nx = 6, .ny = 6}, 1.4, 1.0, 2.5);
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        const Real rx = rig.mesh.x[ni] - 0.5;
        const Real ry = rig.mesh.y[ni] - 0.5;
        rig.state.u[ni] = -ry; // omega x r
        rig.state.v[ni] = rx;
    }
    bh::getq(rig.ctx, rig.state);
    for (const Real q : rig.state.q) EXPECT_NEAR(q, 0.0, 1e-12);
}

TEST(GetQ, LimiterKillsUniformCompression) {
    // u = -alpha * x is smooth (uniform strain): the limiter must switch
    // the viscosity off on interior cells despite compression.
    Rig rig({.nx = 8, .ny = 8}, 1.4, 1.0, 2.5);
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        rig.state.u[ni] = -0.5 * rig.mesh.x[ni];
        rig.state.v[ni] = 0.0;
    }
    bh::getq(rig.ctx, rig.state);
    // Interior cells (all four continuations available) must see psi = 1.
    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        bool interior = true;
        for (int k = 0; k < 4; ++k)
            if (rig.mesh.neighbor(c, k) == bookleaf::no_index) interior = false;
        if (interior) {
            EXPECT_NEAR(rig.state.q[static_cast<std::size_t>(c)], 0.0, 1e-12)
                << "cell " << c;
        }
    }
}

TEST(GetQ, ActiveAcrossVelocityJump) {
    // Colliding flows: u = +0.5 left half, -0.5 right half -> strong
    // compression at the interface; q must light up there and only there.
    Rig rig({.nx = 10, .ny = 2}, 1.4, 1.0, 2.5);
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        rig.state.u[ni] = rig.mesh.x[ni] < 0.5 - 1e-12   ? 0.5
                          : rig.mesh.x[ni] > 0.5 + 1e-12 ? -0.5
                                                         : 0.0;
    }
    bh::getq(rig.ctx, rig.state);
    Real q_interface = 0.0, q_far = 0.0;
    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        // Cell centroid x:
        Real cx = 0;
        for (int k = 0; k < 4; ++k)
            cx += rig.mesh.x[static_cast<std::size_t>(rig.mesh.cn(c, k))] / 4;
        const Real q = rig.state.q[static_cast<std::size_t>(c)];
        if (std::abs(cx - 0.5) < 0.1) q_interface = std::max(q_interface, q);
        if (std::abs(cx - 0.5) > 0.3) q_far = std::max(q_far, q);
    }
    EXPECT_GT(q_interface, 0.01);
    EXPECT_NEAR(q_far, 0.0, 1e-12);
}

TEST(GetQ, ViscousForcesAreDissipative) {
    // Power of the viscous corner forces against the velocity field must
    // be non-positive (entropy condition for the artificial viscosity).
    Rig rig({.nx = 8, .ny = 8}, 1.4, 1.0, 2.5);
    bu::SplitMix64 rng(77);
    for (auto& u : rig.state.u) u = rng.uniform(-0.5, 0.5);
    for (auto& v : rig.state.v) v = rng.uniform(-0.5, 0.5);
    bh::getq(rig.ctx, rig.state);
    Real power = 0.0;
    for (Index c = 0; c < rig.mesh.n_cells(); ++c)
        for (int k = 0; k < 4; ++k) {
            const auto n = static_cast<std::size_t>(rig.mesh.cn(c, k));
            const auto ki = bh::State::cidx(c, k);
            power += rig.state.qfx[ki] * rig.state.u[n] +
                     rig.state.qfy[ki] * rig.state.v[n];
        }
    EXPECT_LE(power, 1e-12);
}

TEST(GetQ, ViscousForcesConserveMomentumPerCell) {
    Rig rig({.nx = 6, .ny = 6}, 1.4, 1.0, 2.5);
    bu::SplitMix64 rng(123);
    for (auto& u : rig.state.u) u = rng.uniform(-1.0, 1.0);
    for (auto& v : rig.state.v) v = rng.uniform(-1.0, 1.0);
    bh::getq(rig.ctx, rig.state);
    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        Real sx = 0, sy = 0;
        for (int k = 0; k < 4; ++k) {
            sx += rig.state.qfx[bh::State::cidx(c, k)];
            sy += rig.state.qfy[bh::State::cidx(c, k)];
        }
        EXPECT_NEAR(sx, 0.0, 1e-12);
        EXPECT_NEAR(sy, 0.0, 1e-12);
    }
}

// ---------------------------------------------------------------------------
// getacc: scatter equivalence (the paper's data-dependency artefact)
// ---------------------------------------------------------------------------

TEST(GetAcc, ColoredScatterMatchesSerialScatter) {
    Rig rig({.nx = 12, .ny = 9}, 1.4, 1.0, 2.5);
    bu::SplitMix64 rng(5);
    for (auto& u : rig.state.u) u = rng.uniform(-0.2, 0.2);
    for (auto& v : rig.state.v) v = rng.uniform(-0.2, 0.2);
    rig.state.u0 = rig.state.u;
    rig.state.v0 = rig.state.v;
    bh::getq(rig.ctx, rig.state);
    bh::getforce(rig.ctx, rig.state);

    // Serial scatter reference.
    rig.ctx.exec.assembly = bp::Assembly::serial_scatter;
    bh::getacc(rig.ctx, rig.state, 1e-3);
    const auto u_ref = rig.state.u;
    const auto v_ref = rig.state.v;
    const auto nm_ref = rig.state.node_mass;

    // Colored parallel scatter.
    const auto csr = cell_nodes_csr(rig.mesh);
    const auto coloring = bp::greedy_color(csr, rig.mesh.n_nodes());
    ASSERT_TRUE(bp::coloring_is_valid(coloring, csr, rig.mesh.n_nodes()));
    bp::ThreadPool pool(4);
    rig.ctx.exec.pool = &pool;
    rig.ctx.exec.grain = 1; // force real parallel scatter on a small mesh
    rig.ctx.exec.assembly = bp::Assembly::colored_scatter;
    rig.ctx.scatter_coloring = &coloring;
    rig.state.u = rig.state.u0;
    rig.state.v = rig.state.v0;
    bh::getacc(rig.ctx, rig.state, 1e-3);

    for (std::size_t i = 0; i < u_ref.size(); ++i) {
        EXPECT_NEAR(rig.state.u[i], u_ref[i], 1e-13);
        EXPECT_NEAR(rig.state.v[i], v_ref[i], 1e-13);
        EXPECT_NEAR(rig.state.node_mass[i], nm_ref[i], 1e-13);
    }
}

TEST(GetAcc, GatherMatchesSerialScatterBitwiseAcrossThreadCounts) {
    // The tentpole guarantee: the gather-based assembly reproduces the
    // serial scatter's node_mass/nfx/nfy *bitwise* on the Noh problem, at
    // 1, 2 and 8 threads — each node_corners CSR row lists corners in the
    // scatter's deposition order, so the floating-point sums are identical
    // term by term, independent of scheduling.
    auto problem = bookleaf::setup::noh(16);
    bh::State s = bh::allocate(problem.mesh);
    s.rho.assign(problem.rho.begin(), problem.rho.end());
    s.ein.assign(problem.ein.begin(), problem.ein.end());
    s.u.assign(problem.u.begin(), problem.u.end());
    s.v.assign(problem.v.begin(), problem.v.end());
    bh::initialise(problem.mesh, problem.materials, s);
    bu::Profiler prof;
    bh::Context ctx;
    ctx.mesh = &problem.mesh;
    ctx.materials = &problem.materials;
    ctx.opts = problem.hydro;
    ctx.profiler = &prof;
    s.u0 = s.u;
    s.v0 = s.v;
    bh::getq(ctx, s);
    bh::getforce(ctx, s);

    // Serial scatter reference.
    ctx.exec.assembly = bp::Assembly::serial_scatter;
    bh::getacc(ctx, s, 1e-3);
    const auto nm_ref = s.node_mass;
    const auto nfx_ref = s.nfx;
    const auto nfy_ref = s.nfy;
    const auto u_ref = s.u;

    ctx.exec.assembly = bp::Assembly::gather;
    ctx.exec.grain = 16; // many chunks even on the small mesh
    for (const int threads : {1, 2, 8}) {
        bp::ThreadPool pool(threads);
        ctx.exec.pool = &pool;
        s.u = s.u0;
        s.v = s.v0;
        bh::getacc(ctx, s, 1e-3);
        for (std::size_t i = 0; i < nm_ref.size(); ++i) {
            ASSERT_EQ(s.node_mass[i], nm_ref[i])
                << threads << " threads, node " << i;
            ASSERT_EQ(s.nfx[i], nfx_ref[i]) << threads << " threads, node " << i;
            ASSERT_EQ(s.nfy[i], nfy_ref[i]) << threads << " threads, node " << i;
            ASSERT_EQ(s.u[i], u_ref[i]) << threads << " threads, node " << i;
        }
        ctx.exec.pool = nullptr;
    }
}

TEST(GetAcc, ReflectiveWallsPinNormalVelocity) {
    Rig rig({.nx = 4, .ny = 4}, 1.4, 1.0, 2.5);
    // Non-uniform energy to generate forces everywhere.
    for (Index c = 0; c < rig.mesh.n_cells(); ++c)
        rig.state.ein[static_cast<std::size_t>(c)] = 1.0 + 0.5 * (c % 3);
    rig.reinit();
    bh::getq(rig.ctx, rig.state);
    bh::getforce(rig.ctx, rig.state);
    bh::getacc(rig.ctx, rig.state, 1e-2);
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (rig.mesh.node_bc[ni] & bm::bc::fix_u) {
            EXPECT_DOUBLE_EQ(rig.state.u[ni], 0.0);
        }
        if (rig.mesh.node_bc[ni] & bm::bc::fix_v) {
            EXPECT_DOUBLE_EQ(rig.state.v[ni], 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Conservation over full Lagrangian steps
// ---------------------------------------------------------------------------

TEST(LagStep, UniformStateIsSteady) {
    Rig rig({.nx = 6, .ny = 6}, 1.4, 1.0, 2.5);
    const auto before = bh::totals(rig.mesh, rig.state);
    for (int step = 0; step < 20; ++step) bh::lagstep(rig.ctx, rig.state, 1e-3);
    const auto after = bh::totals(rig.mesh, rig.state);
    EXPECT_NEAR(after.internal_energy, before.internal_energy, 1e-12);
    EXPECT_NEAR(after.kinetic_energy, 0.0, 1e-20);
    for (const Real u : rig.state.u) EXPECT_NEAR(u, 0.0, 1e-15);
    for (Index c = 0; c < rig.state.n_cells(); ++c)
        EXPECT_NEAR(rig.state.rho[static_cast<std::size_t>(c)], 1.0, 1e-13);
}

TEST(LagStep, TotalEnergyConservedToRoundoff) {
    // Random smooth initial state in a reflective box: total energy
    // (internal + kinetic) must be conserved to round-off by the
    // compatible discretisation, every step, for many steps.
    Rig rig({.nx = 10, .ny = 10}, 1.4, 1.0, 2.5);
    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        rig.state.ein[ci] = 2.0 + 0.8 * std::sin(0.7 * c);
        rig.state.rho[ci] = 1.0 + 0.3 * std::cos(1.3 * c);
    }
    rig.reinit();
    // Smooth velocity field respecting wall BCs.
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        const Real px = rig.mesh.x[ni], py = rig.mesh.y[ni];
        rig.state.u[ni] = 0.2 * std::sin(3.1415926535 * px);
        rig.state.v[ni] = -0.2 * std::sin(3.1415926535 * py);
    }
    bh::apply_velocity_bc(rig.mesh, rig.ctx.opts, rig.state.u, rig.state.v);

    const auto e0 = bh::totals(rig.mesh, rig.state).total_energy();
    Real dt = 1e-4;
    for (int step = 0; step < 100; ++step) {
        bh::lagstep(rig.ctx, rig.state, dt);
        const auto e = bh::totals(rig.mesh, rig.state).total_energy();
        ASSERT_NEAR(e, e0, 1e-11 * std::abs(e0)) << "step " << step;
        dt = bh::getdt(rig.ctx, rig.state, dt).dt;
    }
}

TEST(LagStep, MassExactlyConserved) {
    Rig rig({.nx = 8, .ny = 8}, 1.4, 1.0, 2.5);
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        rig.state.u[ni] = 0.1 * std::sin(2.0 * rig.mesh.x[ni]);
    }
    bh::apply_velocity_bc(rig.mesh, rig.ctx.opts, rig.state.u, rig.state.v);
    const Real m0 = bh::totals(rig.mesh, rig.state).mass;
    for (int step = 0; step < 50; ++step) bh::lagstep(rig.ctx, rig.state, 1e-4);
    // Lagrangian: cell masses constant; rho*V must track them exactly.
    EXPECT_DOUBLE_EQ(bh::totals(rig.mesh, rig.state).mass, m0);
    for (Index c = 0; c < rig.state.n_cells(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        EXPECT_NEAR(rig.state.rho[ci] * rig.state.volume[ci],
                    rig.state.cell_mass[ci], 1e-12);
    }
}

TEST(LagStep, ThreadedRunMatchesSerial) {
    auto run = [](bp::ThreadPool* pool) {
        Rig rig({.nx = 8, .ny = 6}, 1.4, 1.0, 2.5);
        if (pool) rig.ctx.exec.pool = pool;
        for (Index c = 0; c < rig.mesh.n_cells(); ++c)
            rig.state.ein[static_cast<std::size_t>(c)] = 1.0 + 0.1 * (c % 7);
        rig.reinit();
        for (int step = 0; step < 10; ++step) bh::lagstep(rig.ctx, rig.state, 2e-4);
        return rig.state.ein;
    };
    const auto serial = run(nullptr);
    bp::ThreadPool pool(4);
    const auto threaded = run(&pool);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_DOUBLE_EQ(serial[i], threaded[i]) << "cell " << i;
}

// ---------------------------------------------------------------------------
// Hourglass control
// ---------------------------------------------------------------------------

namespace {

/// Measure the total hourglass-mode energy of the velocity field.
Real hourglass_amplitude(const bm::Mesh& mesh, const bh::State& s) {
    Real sum = 0.0;
    static constexpr std::array<Real, 4> gamma = {1.0, -1.0, 1.0, -1.0};
    for (Index c = 0; c < mesh.n_cells(); ++c) {
        Real hu = 0, hv = 0;
        for (int k = 0; k < 4; ++k) {
            const auto n = static_cast<std::size_t>(mesh.cn(c, k));
            hu += gamma[static_cast<std::size_t>(k)] * s.u[n];
            hv += gamma[static_cast<std::size_t>(k)] * s.v[n];
        }
        sum += hu * hu + hv * hv;
    }
    return sum;
}

Real run_hourglass_decay(bool subzonal, Real kappa) {
    Rig rig({.nx = 8, .ny = 8}, 5.0 / 3.0, 1.0, 1.0);
    rig.ctx.opts.hourglass.subzonal_pressures = subzonal;
    rig.ctx.opts.hourglass.filter_kappa = kappa;
    // Seed a checkerboard (hourglass) velocity pattern on interior nodes.
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (rig.mesh.node_bc[ni] != bm::bc::none) continue;
        const Real px = rig.mesh.x[ni] * 8, py = rig.mesh.y[ni] * 8;
        const int par = (static_cast<int>(std::lround(px)) +
                         static_cast<int>(std::lround(py))) % 2;
        rig.state.u[ni] = par == 0 ? 0.05 : -0.05;
    }
    for (int step = 0; step < 60; ++step) bh::lagstep(rig.ctx, rig.state, 5e-4);
    return hourglass_amplitude(rig.mesh, rig.state);
}

} // namespace

TEST(Hourglass, SubzonalPressuresResistDistortion) {
    // Hourglass displacements are volume-preserving to first order, so
    // plain pressure forces cannot resist them; sub-zonal pressures see
    // the per-corner density changes and push back. Seed a node-level
    // checkerboard x-displacement (the pure hourglass pattern for every
    // cell) and compare restoring forces with/without sub-zonal pressures.
    auto assembled_force = [](bool subzonal, bh::State& out_state,
                              bm::Mesh& out_mesh) {
        Rig rig({.nx = 8, .ny = 8}, 5.0 / 3.0, 1.0, 1.0);
        rig.ctx.opts.hourglass.subzonal_pressures = subzonal;
        const Real delta = 0.01 / 8; // 1% of cell size
        for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
            const auto ni = static_cast<std::size_t>(n);
            const int i = static_cast<int>(std::lround(rig.mesh.x[ni] * 8));
            const int j = static_cast<int>(std::lround(rig.mesh.y[ni] * 8));
            const Real sign = ((i + j) % 2 == 0) ? 1.0 : -1.0;
            rig.state.x[ni] += sign * delta;
        }
        rig.state.x0 = rig.state.x;
        // Rebuild geometry at the distorted positions (dt_move = 0).
        bh::getgeom(rig.ctx, rig.state, rig.state.u, rig.state.v, 0.0);
        bh::getrho(rig.ctx, rig.state);
        bh::getpc(rig.ctx, rig.state);
        bh::getq(rig.ctx, rig.state);
        bh::getforce(rig.ctx, rig.state);
        bh::getacc(rig.ctx, rig.state, 0.0);
        out_state = rig.state;
        out_mesh = rig.mesh;
    };

    bh::State s_without, s_with;
    bm::Mesh mesh;
    assembled_force(false, s_without, mesh);
    assembled_force(true, s_with, mesh);

    Real norm_without = 0.0, norm_with = 0.0, restoring_dot = 0.0;
    for (Index n = 0; n < mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (mesh.node_bc[ni] != bm::bc::none) continue;
        norm_without += s_without.nfx[ni] * s_without.nfx[ni];
        norm_with += s_with.nfx[ni] * s_with.nfx[ni];
        // Displacement direction of this node:
        const int i = static_cast<int>(std::lround(mesh.x[ni] * 8));
        const int j = static_cast<int>(std::lround(mesh.y[ni] * 8));
        const Real sign = ((i + j) % 2 == 0) ? 1.0 : -1.0;
        restoring_dot += sign * s_with.nfx[ni];
    }
    // Sub-zonal forces are an order of magnitude stronger than the
    // second-order residual of plain pressure forces...
    EXPECT_GT(norm_with, 10.0 * norm_without);
    // ...and point against the displacement (restoring).
    EXPECT_LT(restoring_dot, 0.0);
}

TEST(Hourglass, HancockFilterSuppressesMode) {
    const Real without = run_hourglass_decay(false, 0.0);
    const Real with = run_hourglass_decay(false, 0.5);
    EXPECT_LT(with, 0.5 * without);
    // Stronger damping must monotonically reduce the residual amplitude.
    EXPECT_LT(with, run_hourglass_decay(false, 0.2));
}

// ---------------------------------------------------------------------------
// getdt
// ---------------------------------------------------------------------------

TEST(GetDt, CflScalesWithMeshSpacing) {
    Rig coarse({.nx = 10, .ny = 10}, 1.4, 1.0, 2.5);
    Rig fine({.nx = 20, .ny = 20}, 1.4, 1.0, 2.5);
    coarse.ctx.opts.dt_max = 1e9;
    fine.ctx.opts.dt_max = 1e9;
    const Real dt_coarse = bh::getdt(coarse.ctx, coarse.state, 0.0).dt;
    const Real dt_fine = bh::getdt(fine.ctx, fine.state, 0.0).dt;
    EXPECT_NEAR(dt_coarse / dt_fine, 2.0, 1e-6);
}

TEST(GetDt, ControllingCellIsTheHottest) {
    Rig rig({.nx = 5, .ny = 5}, 1.4, 1.0, 1.0);
    rig.state.ein[12] = 100.0; // much higher sound speed in cell 12
    rig.reinit();
    rig.ctx.opts.dt_max = 1e9;
    const auto r = bh::getdt(rig.ctx, rig.state, 0.0);
    EXPECT_EQ(r.cell, 12);
    EXPECT_EQ(r.reason, "CFL");
}

TEST(GetDt, GrowthCapApplies) {
    Rig rig({.nx = 4, .ny = 4}, 1.4, 1.0, 2.5);
    const auto r = bh::getdt(rig.ctx, rig.state, 1e-6);
    EXPECT_NEAR(r.dt, 1.02e-6, 1e-12);
    EXPECT_EQ(r.reason, "growth");
}

TEST(GetDt, DtMaxClamps) {
    Rig rig({.nx = 4, .ny = 4}, 1.4, 1.0, 2.5);
    rig.ctx.opts.dt_max = 1e-9;
    const auto r = bh::getdt(rig.ctx, rig.state, 0.0);
    EXPECT_DOUBLE_EQ(r.dt, 1e-9);
    EXPECT_EQ(r.reason, "maximum");
}

TEST(GetDt, ThrowsBelowDtMin) {
    Rig rig({.nx = 4, .ny = 4}, 1.4, 1.0, 2.5);
    rig.ctx.opts.dt_min = 1.0; // impossible to satisfy
    rig.ctx.opts.dt_max = 0.5;
    EXPECT_THROW(bh::getdt(rig.ctx, rig.state, 0.0), bu::Error);
}

TEST(GetDt, DivergenceLimitEngagesForFastCompression) {
    Rig rig({.nx = 4, .ny = 4}, 1.4, 1.0, 1e-6); // nearly pressureless
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        rig.state.u[ni] = -10.0 * (rig.mesh.x[ni] - 0.5); // violent collapse
        rig.state.v[ni] = -10.0 * (rig.mesh.y[ni] - 0.5);
    }
    rig.ctx.opts.dt_max = 1e9;
    const auto r = bh::getdt(rig.ctx, rig.state, 0.0);
    EXPECT_EQ(r.reason, "divergence");
    // |dV/dt|/V = 20 => dt = div_sf / 20.
    EXPECT_NEAR(r.dt, rig.ctx.opts.div_sf / 20.0, 1e-6);
}

// ---------------------------------------------------------------------------
// getgeom failure mode
// ---------------------------------------------------------------------------

TEST(GetGeom, ThrowsOnTangledMesh) {
    Rig rig({.nx = 3, .ny = 3}, 1.4, 1.0, 2.5);
    // A huge velocity on one interior node inverts its cells in one move.
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n)
        if (rig.mesh.node_bc[static_cast<std::size_t>(n)] == bm::bc::none) {
            rig.state.u0[static_cast<std::size_t>(n)] = 1e6;
            break;
        }
    EXPECT_THROW(
        bh::getgeom(rig.ctx, rig.state, rig.state.u0, rig.state.v0, 1.0),
        bu::Error);
}

// ---------------------------------------------------------------------------
// Isentropic smooth compression: the limiter keeps dissipation tiny
// ---------------------------------------------------------------------------

TEST(LagStep, SlowCompressionIsNearlyIsentropic) {
    // Slow piston-free compression seeded as uniform strain; entropy
    // function P / rho^gamma must stay constant to high accuracy because
    // the limiter disables the artificial viscosity in smooth flow.
    const Real gamma = 5.0 / 3.0;
    Rig rig({.nx = 8, .ny = 8}, gamma, 1.0, 1.0);
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        rig.state.u[ni] = -0.05 * (rig.mesh.x[ni] - 0.5);
        rig.state.v[ni] = -0.05 * (rig.mesh.y[ni] - 0.5);
    }
    // Free boundaries for this test: clear wall masks so the strain field
    // stays uniform.
    std::fill(rig.mesh.node_bc.begin(), rig.mesh.node_bc.end(), bm::bc::none);
    const Real s0 = rig.state.pre[0] /
                    std::pow(rig.state.rho[0], gamma);
    for (int step = 0; step < 200; ++step) bh::lagstep(rig.ctx, rig.state, 5e-4);
    for (Index c = 0; c < rig.state.n_cells(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const Real s = rig.state.pre[ci] / std::pow(rig.state.rho[ci], gamma);
        EXPECT_NEAR(s, s0, 0.02 * s0) << "cell " << c;
    }
    // With free boundaries the blob expands; the dynamics must have
    // actually run (density departed from its initial value)...
    EXPECT_LT(rig.state.rho[0], 0.99);
    // ...and smoothly (isentropic expansion, no viscosity triggered).
    Real max_q = 0.0;
    for (const Real q : rig.state.q) max_q = std::max(max_q, q);
    EXPECT_LT(max_q, 0.01); // ~1% of the gas pressure: negligible viscosity
}
