// Fault-tolerance tests: deterministic fault injection (FaultPlan),
// the step health guards with dt-backoff retry (ResilGuard), and the
// supervised in-flight rank-failure recovery (ResilRecovery).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "mesh/generator.hpp"
#include "setup/deck.hpp"
#include "setup/problems.hpp"
#include "typhon/fault.hpp"
#include "util/error.hpp"

namespace bc = bookleaf::core;
namespace bck = bookleaf::ckpt;
namespace bd = bookleaf::dist;
namespace be = bookleaf::eos;
namespace bm = bookleaf::mesh;
namespace bs = bookleaf::setup;
namespace bt = bookleaf::typhon;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

namespace {

struct Problem {
    bm::Mesh mesh;
    be::MaterialTable materials;
    std::vector<Real> rho, ein, u, v;
};

/// A miniature Sod-like two-state problem on a strip (same setup as the
/// dist driver tests).
Problem sod_like(Index nx, Index ny) {
    Problem p;
    bm::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 0.1,
                      .nx = nx, .ny = ny};
    spec.region_of = [](Real cx, Real) { return cx < 0.5 ? 0 : 1; };
    p.mesh = bm::generate_rect(spec);
    p.materials.materials = {be::IdealGas{1.4}, be::IdealGas{1.4}};
    p.rho.resize(static_cast<std::size_t>(p.mesh.n_cells()));
    p.ein.resize(p.rho.size());
    for (Index c = 0; c < p.mesh.n_cells(); ++c) {
        const bool left = p.mesh.cell_region[static_cast<std::size_t>(c)] == 0;
        p.rho[static_cast<std::size_t>(c)] = left ? 1.0 : 0.125;
        p.ein[static_cast<std::size_t>(c)] = left ? 2.5 : 2.0;
    }
    p.u.assign(static_cast<std::size_t>(p.mesh.n_nodes()), 0.0);
    p.v.assign(p.u.size(), 0.0);
    return p;
}

bd::Options base_opts(int n_ranks, Real t_end) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro.dt_initial = 1e-4;
    return opts;
}

bd::Result run_dist(const Problem& p, const bd::Options& opts) {
    return bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
}

} // namespace

// ---------------------------------------------------------------------------
// FaultPlan: deterministic injection at the transport layer
// ---------------------------------------------------------------------------

TEST(FaultPlan, DelaysAndSlowsDoNotChangeResultsOrTraffic) {
    // Held-back (reordered) deliveries and a slowed rank perturb timing
    // only: every byte and even the message count must be unchanged —
    // the zero-cost-when-empty / perturbation-free contract.
    const auto p = sod_like(40, 2);
    const auto clean = run_dist(p, base_opts(4, 0.02));

    for (const bool overlap : {true, false}) {
        auto opts = base_opts(4, 0.02);
        opts.overlap = overlap;
        opts.faults.delays.push_back({.rank = 1, .every = 3});
        opts.faults.slows.push_back({.rank = 2, .microseconds = 20});
        opts.faults.seed = 7;
        const auto faulty = run_dist(p, opts);
        EXPECT_TRUE(bd::bitwise_equal(clean, faulty)) << "overlap " << overlap;
        EXPECT_EQ(clean.traffic.messages, faulty.traffic.messages)
            << "overlap " << overlap;
        EXPECT_EQ(clean.traffic.reals, faulty.traffic.reals)
            << "overlap " << overlap;
    }
}

TEST(FaultPlan, KillAtStepReportsRankAndStep) {
    // Unsupervised, the failure must surface as a RankFailure naming the
    // failed rank and the step — not a masked generic abort.
    const auto p = sod_like(40, 2);
    auto opts = base_opts(4, 0.05);
    opts.faults.kills.push_back({.rank = 2, .at_step = 5});
    try {
        run_dist(p, opts);
        FAIL() << "expected typhon::RankFailure";
    } catch (const bt::RankFailure& f) {
        EXPECT_EQ(f.rank, 2);
        EXPECT_EQ(f.step, 5);
        EXPECT_NE(std::string(f.what()).find("rank 2"), std::string::npos)
            << f.what();
        EXPECT_NE(std::string(f.what()).find("step 5"), std::string::npos)
            << f.what();
    }
}

TEST(FaultPlan, KillAtMessageReportsRank) {
    const auto p = sod_like(40, 2);
    auto opts = base_opts(4, 0.05);
    opts.faults.kills.push_back({.rank = 1, .at_message = 50});
    try {
        run_dist(p, opts);
        FAIL() << "expected typhon::RankFailure";
    } catch (const bt::RankFailure& f) {
        EXPECT_EQ(f.rank, 1);
        EXPECT_NE(std::string(f.what()).find("rank 1"), std::string::npos)
            << f.what();
    }
    // RankFailure derives from util::Error, so existing catch sites hold.
    auto opts2 = base_opts(4, 0.05);
    opts2.faults.kills.push_back({.rank = 1, .at_message = 50});
    EXPECT_THROW(run_dist(p, opts2), bu::Error);
}

TEST(FaultPlan, KillIsDeterministic) {
    // The same plan fails at exactly the same point every time.
    const auto p = sod_like(32, 2);
    for (int repeat = 0; repeat < 2; ++repeat) {
        auto opts = base_opts(3, 0.05);
        opts.faults.kills.push_back({.rank = 1, .at_message = 33});
        try {
            run_dist(p, opts);
            FAIL() << "expected typhon::RankFailure";
        } catch (const bt::RankFailure& f) {
            EXPECT_EQ(f.rank, 1) << "repeat " << repeat;
        }
    }
}

// ---------------------------------------------------------------------------
// ResilGuard: step health guards + dt-backoff retry
// ---------------------------------------------------------------------------

TEST(ResilGuard, HealthyRunUnperturbedByGuardsSerial) {
    // Guards on a healthy trajectory must not change a single byte.
    bc::Hydro plain(bs::sod(32, 2));
    auto guarded_problem = bs::sod(32, 2);
    guarded_problem.hydro.guard.enabled = true;
    bc::Hydro guarded(std::move(guarded_problem));
    plain.run(0.1);
    guarded.run(0.1);
    ASSERT_EQ(plain.steps(), guarded.steps());
    EXPECT_EQ(plain.state().rho, guarded.state().rho);
    EXPECT_EQ(plain.state().ein, guarded.state().ein);
    EXPECT_EQ(plain.state().u, guarded.state().u);
    EXPECT_EQ(plain.state().x, guarded.state().x);
}

TEST(ResilGuard, HealthyRunUnperturbedByGuardsDistributed) {
    // ... and in the distributed driver the per-step point-to-point
    // message count must be unchanged too (the health vote is a
    // collective, which the traffic accounting deliberately excludes).
    const auto p = sod_like(40, 2);
    for (const bool overlap : {true, false}) {
        auto plain_opts = base_opts(4, 0.02);
        plain_opts.overlap = overlap;
        const auto plain = run_dist(p, plain_opts);
        auto guarded_opts = plain_opts;
        guarded_opts.hydro.guard.enabled = true;
        const auto guarded = run_dist(p, guarded_opts);
        EXPECT_TRUE(bd::bitwise_equal(plain, guarded)) << "overlap " << overlap;
        EXPECT_EQ(plain.traffic.messages, guarded.traffic.messages)
            << "overlap " << overlap;
        EXPECT_EQ(plain.traffic.reals, guarded.traffic.reals)
            << "overlap " << overlap;
    }
}

TEST(ResilGuard, OversizedInitialDtRecoversSerial) {
    // An absurd dt_initial tangles the mesh. Without guards that is a
    // hard error; with guards the step is rolled back and retaken with a
    // backed-off dt until healthy, the run completes, and conservation
    // holds: mass exactly (Lagrangian cell masses never change), total
    // energy to round-off accumulation (the compatible-hydro property is
    // per-step, whatever the dt sequence).
    auto reckless = bs::sod(48, 2);
    reckless.hydro.dt_initial = 0.5;
    EXPECT_THROW(
        {
            bc::Hydro h(std::move(reckless));
            h.run(0.05);
        },
        bu::Error);

    auto guarded_problem = bs::sod(48, 2);
    guarded_problem.hydro.dt_initial = 0.5;
    guarded_problem.hydro.guard.enabled = true;
    bc::Hydro guarded(std::move(guarded_problem));
    const auto summary = guarded.run(0.05);
    EXPECT_GT(summary.steps, 0);
    EXPECT_NEAR(summary.t_final, 0.05, 1e-12);

    bc::Hydro reference(bs::sod(48, 2));
    reference.run(0.05);
    const auto tg = guarded.totals();
    const auto tr = reference.totals();
    EXPECT_EQ(tg.mass, tr.mass);
    const Real eg = tg.internal_energy + tg.kinetic_energy;
    const Real er = tr.internal_energy + tr.kinetic_energy;
    EXPECT_NEAR(eg, er, 1e-9 * std::abs(er));
}

TEST(ResilGuard, RegrowCeilingSurvivesCheckpointRoundTrip) {
    // A snapshot taken right after a health retry carries the armed
    // re-growth ceiling; the restored run must continue bitwise.
    auto problem = bs::sod(48, 2);
    problem.hydro.dt_initial = 0.5;
    problem.hydro.guard.enabled = true;
    auto restored_problem = problem;

    bc::Hydro a(std::move(problem));
    a.step(); // the retried first step arms the ceiling
    const auto snap = a.snapshot();
    EXPECT_GT(snap.regrow, 0.0);
    a.run(0.05);

    bc::Hydro b(std::move(restored_problem), snap);
    b.run(0.05);
    ASSERT_EQ(a.steps(), b.steps());
    EXPECT_EQ(a.state().rho, b.state().rho);
    EXPECT_EQ(a.state().u, b.state().u);
    EXPECT_EQ(a.state().x, b.state().x);
}

TEST(ResilGuard, RetryDecisionBitwiseAgreedAcrossRanks) {
    // The oversized-dt recovery in the distributed driver: the health
    // verdict is a collective min-reduction over owned entities and the
    // backoff sequence evolves from globally-agreed values only, so every
    // rank count and both schedules land bitwise-identical fields.
    const auto p = sod_like(40, 2);
    auto ref_opts = base_opts(1, 0.01);
    ref_opts.hydro.dt_initial = 0.5;
    ref_opts.hydro.guard.enabled = true;
    const auto reference = run_dist(p, ref_opts);
    EXPECT_GT(reference.steps, 0);

    for (const int n_ranks : {2, 4}) {
        for (const bool overlap : {true, false}) {
            auto opts = ref_opts;
            opts.n_ranks = n_ranks;
            opts.overlap = overlap;
            const auto r = run_dist(p, opts);
            EXPECT_TRUE(bd::bitwise_equal(reference, r))
                << n_ranks << " ranks, overlap " << overlap;
        }
    }
}

// ---------------------------------------------------------------------------
// ResilRecovery: supervised in-flight rank-failure recovery
// ---------------------------------------------------------------------------

TEST(ResilRecovery, KillAtStepRecoversOnSurvivorsBitwise) {
    // The tentpole contract: a 4-rank run loses rank 2 mid-flight, rolls
    // back to the newest ring snapshot, resumes on 3 survivors — and the
    // gathered result is bitwise identical to the uninterrupted run,
    // under every (overlap x packing) combination.
    const auto p = sod_like(40, 2);
    const auto reference = run_dist(p, base_opts(4, 0.03));

    for (const bool overlap : {true, false}) {
        for (const auto packing :
             {bt::Packing::coalesced, bt::Packing::per_field}) {
            auto opts = base_opts(4, 0.03);
            opts.overlap = overlap;
            opts.packing = packing;
            opts.supervise.enabled = true;
            opts.supervise.snapshot_every = 5;
            opts.faults.kills.push_back({.rank = 2, .at_step = 12});
            const auto r = run_dist(p, opts);
            const std::string label =
                std::string("overlap ") + (overlap ? "on" : "off") +
                ", packing " +
                (packing == bt::Packing::coalesced ? "coalesced"
                                                   : "per_field");
            ASSERT_EQ(r.recoveries.size(), 1u) << label;
            EXPECT_EQ(r.recoveries[0].failed_rank, 2) << label;
            EXPECT_EQ(r.recoveries[0].failed_step, 12) << label;
            EXPECT_EQ(r.recoveries[0].survivors, 3) << label;
            EXPECT_EQ(r.recoveries[0].resumed_step, 10) << label;
            EXPECT_TRUE(bd::bitwise_equal(reference, r)) << label;
        }
    }
}

TEST(ResilRecovery, KillBeforeFirstSnapshotRestartsFromBeginning) {
    // Nothing in the ring yet: the recovery replays the run from the
    // initial conditions on the survivors — still bitwise.
    const auto p = sod_like(40, 2);
    const auto reference = run_dist(p, base_opts(4, 0.02));

    auto opts = base_opts(4, 0.02);
    opts.supervise.enabled = true;
    opts.supervise.snapshot_every = 50; // never reached before the kill
    opts.faults.kills.push_back({.rank = 1, .at_step = 3});
    const auto r = run_dist(p, opts);
    ASSERT_EQ(r.recoveries.size(), 1u);
    EXPECT_EQ(r.recoveries[0].resumed_step, 0);
    EXPECT_EQ(r.recoveries[0].survivors, 3);
    EXPECT_TRUE(bd::bitwise_equal(reference, r));
}

TEST(ResilRecovery, TwoFailuresRecoverTwice) {
    // Attempt 0 loses rank 2, attempt 1 loses rank 1: the run shrinks
    // 4 -> 3 -> 2 ranks and still finishes bitwise.
    const auto p = sod_like(40, 2);
    const auto reference = run_dist(p, base_opts(4, 0.03));

    auto opts = base_opts(4, 0.03);
    opts.supervise.enabled = true;
    opts.supervise.snapshot_every = 5;
    opts.faults.kills.push_back({.rank = 2, .at_step = 12, .attempt = 0});
    opts.faults.kills.push_back({.rank = 1, .at_step = 20, .attempt = 1});
    const auto r = run_dist(p, opts);
    ASSERT_EQ(r.recoveries.size(), 2u);
    EXPECT_EQ(r.recoveries[0].survivors, 3);
    EXPECT_EQ(r.recoveries[1].survivors, 2);
    EXPECT_EQ(r.profiles.size(), 2u);
    EXPECT_TRUE(bd::bitwise_equal(reference, r));
}

TEST(ResilRecovery, ExhaustedRecoveriesRethrow) {
    // max_recoveries bounds the attempts; a failure past the budget
    // surfaces as the RankFailure it is.
    const auto p = sod_like(40, 2);
    auto opts = base_opts(4, 0.03);
    opts.supervise.enabled = true;
    opts.supervise.max_recoveries = 1;
    opts.supervise.snapshot_every = 5;
    opts.faults.kills.push_back({.rank = 2, .at_step = 12, .attempt = 0});
    opts.faults.kills.push_back({.rank = 1, .at_step = 20, .attempt = 1});
    EXPECT_THROW(run_dist(p, opts), bt::RankFailure);
}

TEST(ResilRecovery, RestartedRunRollsBackToTheRestartSnapshot) {
    // A supervised restart that fails before any new ring snapshot rolls
    // back to the snapshot it restarted from, not to the beginning.
    const auto p = sod_like(40, 2);

    // Produce a mid-run snapshot via the dist checkpoint cadence.
    auto save_opts = base_opts(2, 0.03);
    save_opts.checkpoint.every_steps = 10;
    save_opts.checkpoint.prefix = "/tmp/bookleaf_resil_restart";
    save_opts.checkpoint.halt_after = true;
    const auto saver = run_dist(p, save_opts);
    ASSERT_EQ(saver.checkpoints.size(), 1u);
    const auto snap = bck::read(saver.checkpoints[0]);
    EXPECT_EQ(snap.steps, 10);

    auto restart_opts = base_opts(4, 0.03);
    const auto reference = bd::run(p.mesh, p.materials, snap, restart_opts);

    auto opts = restart_opts;
    opts.supervise.enabled = true;
    opts.supervise.snapshot_every = 0; // no ring: rollback = the snapshot
    opts.faults.kills.push_back({.rank = 3, .at_step = 14});
    const auto r = bd::run(p.mesh, p.materials, snap, opts);
    ASSERT_EQ(r.recoveries.size(), 1u);
    EXPECT_EQ(r.recoveries[0].resumed_step, 10);
    EXPECT_EQ(r.recoveries[0].survivors, 3);
    EXPECT_TRUE(bd::bitwise_equal(reference, r));
    std::remove(saver.checkpoints[0].c_str());
}

TEST(ResilRecovery, DeckConfiguresResilienceAndFaults) {
    const auto deck = bs::Deck::parse_string(R"(
[problem]
name = sod
[resilience]
guards = on
backoff = 0.25
max_retries = 5
regrow_cap = 1.1
supervise = on
max_recoveries = 3
snapshot_every = 7
ring = 4
recovery_backoff_ms = 1
[faults]
kill_rank = 2
kill_step = 12
fault_seed = 42
)");
    const auto problem = bs::make_problem(deck);
    EXPECT_TRUE(problem.hydro.guard.enabled);
    EXPECT_EQ(problem.hydro.guard.backoff, 0.25);
    EXPECT_EQ(problem.hydro.guard.max_retries, 5);
    EXPECT_EQ(problem.hydro.guard.regrow_cap, 1.1);
    EXPECT_TRUE(problem.supervision.enabled);
    EXPECT_EQ(problem.supervision.max_recoveries, 3);
    EXPECT_EQ(problem.supervision.snapshot_every, 7);
    EXPECT_EQ(problem.supervision.ring_capacity, 4);
    EXPECT_EQ(problem.supervision.backoff_ms, 1);
    ASSERT_EQ(problem.faults.kills.size(), 1u);
    EXPECT_EQ(problem.faults.kills[0].rank, 2);
    EXPECT_EQ(problem.faults.kills[0].at_step, 12);
    EXPECT_EQ(problem.faults.seed, 42u);

    // Range violations are loud deck errors.
    EXPECT_THROW(bs::make_problem(bs::Deck::parse_string(
                     "[resilience]\nbackoff = 1.5\n")),
                 bu::Error);
    EXPECT_THROW(bs::make_problem(bs::Deck::parse_string(
                     "[resilience]\nring = 0\n")),
                 bu::Error);
    EXPECT_THROW(bs::make_problem(bs::Deck::parse_string(
                     "[faults]\nkill_rank = 1\n")),
                 bu::Error);
}
