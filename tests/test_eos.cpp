// Tests for the equations of state: closed forms, thermodynamic
// consistency (c^2 vs finite-difference of P), cutoffs, region table.
#include <gtest/gtest.h>

#include <cmath>

#include "eos/eos.hpp"

namespace be = bookleaf::eos;
using bookleaf::Real;

TEST(IdealGas, PressureClosedForm) {
    const be::Material m = be::IdealGas{1.4};
    EXPECT_NEAR(be::pressure(m, 1.0, 2.5), 1.0, 1e-12);         // Sod left state
    EXPECT_NEAR(be::pressure(m, 0.125, 2.0), 0.1, 1e-12);       // Sod right state
}

TEST(IdealGas, SoundSpeedClosedForm) {
    const be::Material m = be::IdealGas{1.4};
    // c^2 = gamma P / rho = 1.4 for Sod left state.
    EXPECT_NEAR(be::sound_speed2(m, 1.0, 2.5), 1.4, 1e-12);
}

TEST(Tait, ReferenceStateGivesReferencePressure) {
    const be::Material m = be::Tait{.rho0 = 1.0, .b = 3.0, .n = 7.0, .p_ref = 0.5};
    EXPECT_NEAR(be::pressure(m, 1.0, 0.0), 0.5, 1e-12);
}

TEST(Tait, StiffensWithCompression) {
    const be::Material m = be::Tait{.rho0 = 1.0, .b = 3.0, .n = 7.0};
    const Real p1 = be::pressure(m, 1.1, 0.0);
    const Real p2 = be::pressure(m, 1.2, 0.0);
    EXPECT_GT(p1, 0.0);
    EXPECT_GT(p2 - p1, p1); // convex stiffening
}

TEST(Jwl, ReducesToOmegaTermWithZeroAB) {
    const be::Material m = be::Jwl{.rho0 = 1.6, .a = 0, .b = 0, .omega = 0.3};
    EXPECT_NEAR(be::pressure(m, 2.0, 5.0), 0.3 * 2.0 * 5.0, 1e-12);
}

TEST(Jwl, TypicalHighExplosiveState) {
    // LX-type parameter magnitudes; P must be positive and finite at the
    // reference density with modest energy.
    const be::Material m = be::Jwl{.rho0 = 1.84,
                                   .a = 854.5,
                                   .b = 20.5,
                                   .r1 = 4.6,
                                   .r2 = 1.35,
                                   .omega = 0.25};
    const Real p = be::pressure(m, 1.84, 10.0);
    EXPECT_GT(p, 0.0);
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GT(be::sound_speed2(m, 1.84, 10.0), 0.0);
}

TEST(Void, ZeroPressureFlooredSoundSpeed) {
    const be::Material m = be::Void{};
    const be::Cutoffs cut;
    EXPECT_DOUBLE_EQ(be::pressure(m, 1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(be::sound_speed2(m, 1.0, 1.0), cut.ccut);
}

TEST(Cutoffs, PressureSnapsToZeroBelowPcut) {
    const be::Material m = be::IdealGas{1.4};
    be::Cutoffs cut;
    cut.pcut = 1e-3;
    EXPECT_DOUBLE_EQ(be::pressure(m, 1.0, 1e-4, cut), 0.0);
    EXPECT_GT(be::pressure(m, 1.0, 1.0, cut), 0.0);
}

TEST(Cutoffs, SoundSpeedFloorApplies) {
    const be::Material m = be::IdealGas{1.4};
    be::Cutoffs cut;
    cut.ccut = 0.123;
    EXPECT_DOUBLE_EQ(be::sound_speed2(m, 1.0, 0.0, cut), 0.123);
}

/// Thermodynamic consistency sweep: for each EoS, the analytic c^2 must
/// match (dP/drho)|_e + (P/rho^2)(dP/de)|_rho by finite differences.
class SoundSpeedConsistency
    : public ::testing::TestWithParam<std::tuple<be::Material, Real, Real>> {};

TEST_P(SoundSpeedConsistency, MatchesFiniteDifference) {
    const auto& [mat, rho, ein] = GetParam();
    be::Cutoffs cut;
    cut.pcut = 0.0; // snap would corrupt derivatives
    cut.ccut = 0.0;
    const Real h_rho = 1e-6 * rho;
    const Real h_e = std::max(1e-6 * std::abs(ein), 1e-9);
    const Real dpdrho = (be::pressure(mat, rho + h_rho, ein, cut) -
                         be::pressure(mat, rho - h_rho, ein, cut)) /
                        (2 * h_rho);
    const Real dpde = (be::pressure(mat, rho, ein + h_e, cut) -
                       be::pressure(mat, rho, ein - h_e, cut)) /
                      (2 * h_e);
    const Real p = be::pressure(mat, rho, ein, cut);
    const Real c2_fd = dpdrho + p / (rho * rho) * dpde;
    const Real c2 = be::sound_speed2(mat, rho, ein, cut);
    EXPECT_NEAR(c2, c2_fd, 1e-4 * std::max(std::abs(c2_fd), Real(1.0)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SoundSpeedConsistency,
    ::testing::Values(
        std::make_tuple(be::Material{be::IdealGas{1.4}}, 1.0, 2.5),
        std::make_tuple(be::Material{be::IdealGas{5.0 / 3.0}}, 16.0, 0.5),
        std::make_tuple(be::Material{be::Tait{.rho0 = 1.0, .b = 3.0, .n = 7.0}},
                        1.05, 0.0),
        std::make_tuple(be::Material{be::Tait{.rho0 = 2.0, .b = 10.0, .n = 5.0}},
                        2.2, 0.0),
        std::make_tuple(be::Material{be::Jwl{.rho0 = 1.84,
                                             .a = 854.5,
                                             .b = 20.5,
                                             .r1 = 4.6,
                                             .r2 = 1.35,
                                             .omega = 0.25}},
                        1.84, 10.0),
        std::make_tuple(be::Material{be::Jwl{.rho0 = 1.6,
                                             .a = 600.0,
                                             .b = 13.0,
                                             .r1 = 4.5,
                                             .r2 = 1.5,
                                             .omega = 0.3}},
                        1.2, 7.0)));

TEST(MaterialTable, RoutesByRegion) {
    be::MaterialTable table;
    table.materials = {be::IdealGas{1.4}, be::IdealGas{5.0 / 3.0}, be::Void{}};
    EXPECT_NEAR(table.pressure(0, 1.0, 2.5), 1.0, 1e-12);
    EXPECT_NEAR(table.pressure(1, 1.0, 2.5), (5.0 / 3.0 - 1.0) * 2.5, 1e-12);
    EXPECT_DOUBLE_EQ(table.pressure(2, 1.0, 2.5), 0.0);
}
