// Unit tests for the util substrate: CSR, CLI, RNG, profiler, timer, error.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/cli.hpp"
#include "util/csr.hpp"
#include "util/error.hpp"
#include "util/profiler.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

TEST(Csr, FromPairsGroupsByRow) {
    const std::vector<std::pair<Index, Index>> pairs = {
        {2, 10}, {0, 5}, {2, 11}, {1, 7}, {0, 6}};
    const auto csr = bu::Csr::from_pairs(3, pairs);
    ASSERT_EQ(csr.n_rows(), 3);
    EXPECT_EQ(csr.row(0).size(), 2u);
    EXPECT_EQ(csr.row(1).size(), 1u);
    EXPECT_EQ(csr.row(2).size(), 2u);
    EXPECT_EQ(csr.row(1)[0], 7);
    const std::set<Index> row0(csr.row(0).begin(), csr.row(0).end());
    EXPECT_EQ(row0, (std::set<Index>{5, 6}));
}

TEST(Csr, EmptyRowsAllowed) {
    const auto csr = bu::Csr::from_pairs(4, {{3, 1}});
    EXPECT_EQ(csr.row(0).size(), 0u);
    EXPECT_EQ(csr.row(1).size(), 0u);
    EXPECT_EQ(csr.row(2).size(), 0u);
    ASSERT_EQ(csr.row(3).size(), 1u);
}

TEST(Csr, EmptyCsrHasZeroRows) {
    const bu::Csr csr;
    EXPECT_EQ(csr.n_rows(), 0);
}

TEST(Cli, ParsesKeyEqualsValue) {
    const char* argv[] = {"prog", "--nx=128", "--problem=sod"};
    const bu::Cli cli(3, argv);
    EXPECT_EQ(cli.get_int("nx", 0), 128);
    EXPECT_EQ(cli.get("problem", ""), "sod");
}

TEST(Cli, ParsesKeySpaceValue) {
    const char* argv[] = {"prog", "--steps", "50", "--cfl", "0.25"};
    const bu::Cli cli(5, argv);
    EXPECT_EQ(cli.get_int("steps", 0), 50);
    EXPECT_DOUBLE_EQ(cli.get_real("cfl", 0.0), 0.25);
}

TEST(Cli, BareFlagAndPositional) {
    const char* argv[] = {"prog", "input.deck", "--verbose", "--out=x"};
    const bu::Cli cli(4, argv);
    EXPECT_TRUE(cli.has("verbose"));
    EXPECT_FALSE(cli.has("quiet"));
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "input.deck");
}

TEST(Cli, FallbacksWhenMissing) {
    const char* argv[] = {"prog"};
    const bu::Cli cli(1, argv);
    EXPECT_EQ(cli.get_int("nx", 42), 42);
    EXPECT_DOUBLE_EQ(cli.get_real("cfl", 0.5), 0.5);
    EXPECT_EQ(cli.get("problem", "noh"), "noh");
}

TEST(Random, DeterministicForSeed) {
    bu::SplitMix64 a(12345), b(12345);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, UniformInRange) {
    bu::SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        const Real x = rng.uniform(-2.0, 3.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Random, IndexBounded) {
    bu::SplitMix64 rng(99);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
    EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Profiler, AccumulatesWallAndVirtual) {
    bu::Profiler p;
    p.add_wall(bu::Kernel::getq, 1.5);
    p.add_wall(bu::Kernel::getq, 0.5);
    p.add_virtual(bu::Kernel::getq, 2.0);
    const auto s = p.stats(bu::Kernel::getq);
    EXPECT_DOUBLE_EQ(s.wall_s, 2.0);
    EXPECT_DOUBLE_EQ(s.virtual_s, 2.0);
    EXPECT_DOUBLE_EQ(s.total_s(), 4.0);
    EXPECT_EQ(s.calls, 3);
}

TEST(Profiler, OverallSumsKernels) {
    bu::Profiler p;
    p.add_wall(bu::Kernel::getq, 1.0);
    p.add_virtual(bu::Kernel::getacc, 2.0);
    EXPECT_DOUBLE_EQ(p.overall_s(), 3.0);
}

TEST(Profiler, ResetClears) {
    bu::Profiler p;
    p.add_wall(bu::Kernel::getdt, 1.0);
    p.reset();
    EXPECT_DOUBLE_EQ(p.overall_s(), 0.0);
    EXPECT_EQ(p.stats(bu::Kernel::getdt).calls, 0);
}

TEST(Profiler, ScopedTimerCharges) {
    bu::Profiler p;
    {
        const bu::ScopedTimer t(p, bu::Kernel::getforce);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(p.stats(bu::Kernel::getforce).wall_s, 0.0);
    EXPECT_EQ(p.stats(bu::Kernel::getforce).calls, 1);
}

TEST(Profiler, ThreadSafeAccumulation) {
    bu::Profiler p;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&p] {
            for (int i = 0; i < 1000; ++i) p.add_wall(bu::Kernel::getrho, 0.001);
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(p.stats(bu::Kernel::getrho).calls, 4000);
    EXPECT_NEAR(p.stats(bu::Kernel::getrho).wall_s, 4.0, 1e-9);
}

TEST(Profiler, KernelNamesMatchPaperNomenclature) {
    EXPECT_EQ(bu::kernel_name(bu::Kernel::getq), "getq");
    EXPECT_EQ(bu::kernel_name(bu::Kernel::getacc), "getacc");
    EXPECT_EQ(bu::kernel_name(bu::Kernel::getdt), "getdt");
    EXPECT_EQ(bu::kernel_name(bu::Kernel::alegetfvol), "alegetfvol");
}

TEST(Timer, ElapsedIsMonotonic) {
    bu::Timer t;
    const double a = t.elapsed();
    const double b = t.elapsed();
    EXPECT_GE(b, a);
    t.reset();
    EXPECT_LT(t.elapsed(), 1.0);
}

TEST(Error, RequireThrowsWithMessage) {
    EXPECT_NO_THROW(bu::require(true, "fine"));
    try {
        bu::require(false, "bad mesh extent");
        FAIL() << "expected throw";
    } catch (const bu::Error& e) {
        EXPECT_STREQ(e.what(), "bad mesh extent");
    }
}
