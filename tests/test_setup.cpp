// Tests for the problem factories and the input-deck parser.
#include <gtest/gtest.h>

#include <cmath>

#include "setup/deck.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"

namespace bs = bookleaf::setup;
namespace bm = bookleaf::mesh;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

TEST(Problems, SodTwoStates) {
    const auto p = bs::sod(50, 2);
    EXPECT_EQ(p.mesh.n_cells(), 100);
    EXPECT_EQ(p.mesh.n_regions(), 2);
    // Left state (rho, P) = (1, 1), right (0.125, 0.1).
    int left = 0, right = 0;
    for (Index c = 0; c < p.mesh.n_cells(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        if (p.mesh.cell_region[ci] == 0) {
            EXPECT_DOUBLE_EQ(p.rho[ci], 1.0);
            EXPECT_DOUBLE_EQ(p.ein[ci], 2.5);
            ++left;
        } else {
            EXPECT_DOUBLE_EQ(p.rho[ci], 0.125);
            EXPECT_DOUBLE_EQ(p.ein[ci], 2.0);
            ++right;
        }
    }
    EXPECT_EQ(left, right);
    EXPECT_DOUBLE_EQ(p.t_end, 0.2);
}

TEST(Problems, NohRadialInflow) {
    const auto p = bs::noh(10);
    for (Index n = 0; n < p.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        const Real r = std::hypot(p.mesh.x[ni], p.mesh.y[ni]);
        if (r < 1e-12) continue;
        const auto mask = p.mesh.node_bc[ni];
        if (mask == bm::bc::none) {
            // Interior: unit speed pointing at the origin.
            EXPECT_NEAR(std::hypot(p.u[ni], p.v[ni]), 1.0, 1e-12) << n;
            EXPECT_NEAR(p.u[ni] * p.mesh.y[ni] - p.v[ni] * p.mesh.x[ni], 0.0,
                        1e-12);
            EXPECT_LE(p.u[ni] * p.mesh.x[ni] + p.v[ni] * p.mesh.y[ni], 0.0);
        } else {
            // Boundary: wall-normal component clamped at setup so the
            // kinematic BCs hold from t = 0 (energy bookkeeping).
            if (mask & bm::bc::fix_u) {
                EXPECT_DOUBLE_EQ(p.u[ni], 0.0);
            }
            if (mask & bm::bc::fix_v) {
                EXPECT_DOUBLE_EQ(p.v[ni], 0.0);
            }
        }
    }
}

TEST(Problems, SedovEnergySpikeAtOrigin) {
    const auto p = bs::sedov(15);
    Index spike = bookleaf::no_index;
    int n_hot = 0;
    for (Index c = 0; c < p.mesh.n_cells(); ++c)
        if (p.ein[static_cast<std::size_t>(c)] > 1.0) {
            spike = c;
            ++n_hot;
        }
    ASSERT_EQ(n_hot, 1);
    // Total deposited energy = rho * V * e = 0.25.
    const Real cell_area = (1.2 / 15) * (1.2 / 15);
    EXPECT_NEAR(p.ein[static_cast<std::size_t>(spike)] * cell_area, 0.25, 1e-12);
}

TEST(Problems, SaltzmannPistonNodes) {
    const auto p = bs::saltzmann(50, 5);
    int pistons = 0;
    for (Index n = 0; n < p.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (p.mesh.node_bc[ni] & bm::bc::piston) {
            EXPECT_NEAR(p.mesh.x[ni], 0.0, 1e-12);
            EXPECT_DOUBLE_EQ(p.u[ni], 1.0);
            ++pistons;
        }
    }
    EXPECT_EQ(pistons, 6); // ny + 1 nodes on the piston wall
    EXPECT_DOUBLE_EQ(p.hydro.piston_u, 1.0);
}

TEST(Problems, SaltzmannMeshIsSkewed) {
    const auto p = bs::saltzmann(50, 5);
    // The distorted mesh must still be valid (positive volumes) — checked
    // by initialising state on it in the driver; here check skew exists.
    bool skewed = false;
    for (Index n = 0; n < p.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (p.mesh.y[ni] > 0.01 && p.mesh.y[ni] < 0.09 &&
            std::abs(std::remainder(p.mesh.x[ni], 0.02)) > 1e-6)
            skewed = true;
    }
    EXPECT_TRUE(skewed);
}

TEST(Problems, ByNameDispatchAndErrors) {
    EXPECT_EQ(bs::by_name("sod").name, "sod");
    EXPECT_EQ(bs::by_name("noh", 12).mesh.n_cells(), 144);
    EXPECT_THROW(bs::by_name("kelvin-helmholtz"), bu::Error);
}

TEST(Deck, ParsesSectionsKeysComments) {
    const auto deck = bs::Deck::parse_string(R"(
# a comment
[problem]
name = noh        ; trailing comment
resolution = 20

[Control]
T_END = 0.3
)");
    EXPECT_EQ(deck.get("problem", "name", ""), "noh");
    EXPECT_EQ(deck.get_int("problem", "resolution", 0), 20);
    // Sections and keys are case-insensitive.
    EXPECT_DOUBLE_EQ(deck.get_real("control", "t_end", 0.0), 0.3);
    EXPECT_FALSE(deck.has("control", "missing"));
    EXPECT_EQ(deck.get("nosection", "x", "dflt"), "dflt");
}

TEST(Deck, RejectsMalformedInput) {
    EXPECT_THROW(bs::Deck::parse_string("[unterminated\n"), bu::Error);
    EXPECT_THROW(bs::Deck::parse_string("keywithoutvalue\n"), bu::Error);
    EXPECT_THROW(bs::Deck::parse_string("= value\n"), bu::Error);
}

TEST(Deck, BooleansParseStrictly) {
    const auto deck = bs::Deck::parse_string("[a]\nx = yes\ny = off\nz = maybe\n");
    EXPECT_TRUE(deck.get_bool("a", "x", false));
    EXPECT_FALSE(deck.get_bool("a", "y", true));
    EXPECT_THROW((void)deck.get_bool("a", "z", true), bu::Error);
}

TEST(Deck, MakeProblemAppliesOverrides) {
    const auto deck = bs::Deck::parse_string(R"(
[problem]
name = sod
resolution = 64

[control]
t_end = 0.1
cfl_sf = 0.25

[viscosity]
cq = 1.5
cl = 0.25

[hourglass]
subzonal = off
kappa = 0.7

[ale]
mode = eulerian
)");
    const auto p = bs::make_problem(deck);
    EXPECT_EQ(p.name, "sod");
    EXPECT_EQ(p.mesh.n_cells(), 64 * 2);
    EXPECT_DOUBLE_EQ(p.t_end, 0.1);
    EXPECT_DOUBLE_EQ(p.hydro.cfl_sf, 0.25);
    EXPECT_DOUBLE_EQ(p.hydro.cq, 1.5);
    EXPECT_DOUBLE_EQ(p.hydro.cl, 0.25);
    EXPECT_FALSE(p.hydro.hourglass.subzonal_pressures);
    EXPECT_DOUBLE_EQ(p.hydro.hourglass.filter_kappa, 0.7);
    EXPECT_EQ(p.ale.mode, bookleaf::ale::Mode::eulerian);
}

TEST(Deck, MakeProblemBadAleModeThrows) {
    const auto deck = bs::Deck::parse_string("[ale]\nmode = warp\n");
    EXPECT_THROW(bs::make_problem(deck), bu::Error);
}

// ---------------------------------------------------------------------------
// Deck edge cases: comments, blank lines, unknown keys, malformed pairs
// ---------------------------------------------------------------------------

TEST(DeckEdgeCases, CommentsBlankLinesAndCrlfAreTolerated) {
    const auto deck = bs::Deck::parse_string(
        "; full-line semicolon comment\r\n"
        "   \t  \r\n"
        "\n"
        "[problem]  # trailing comment on a section header\r\n"
        "name = sod   ; inline comment after the value\n"
        "# full-line hash comment\n"
        "resolution = 40\r\n");
    EXPECT_EQ(deck.get("problem", "name", ""), "sod");
    EXPECT_EQ(deck.get_int("problem", "resolution", 0), 40);
}

TEST(DeckEdgeCases, SectionAndKeyLookupsAreCaseInsensitive) {
    const auto deck =
        bs::Deck::parse_string("[Control]\nT_End = 0.25\n");
    EXPECT_TRUE(deck.has("control", "t_end"));
    EXPECT_TRUE(deck.has("CONTROL", "T_END"));
    EXPECT_DOUBLE_EQ(deck.get_real("control", "t_end", 0.0), 0.25);
}

TEST(DeckEdgeCases, UnknownSectionsAndKeysAreIgnoredByMakeProblem) {
    // Unknown sections/keys parse fine (they are simply never queried):
    // decks stay forward compatible with newer writers.
    const auto deck = bs::Deck::parse_string(R"(
[problem]
name = sod
resolution = 8

[exotic_future_section]
knob = 17

[control]
t_end = 0.01
unheard_of_key = whatever
)");
    const auto p = bs::make_problem(deck);
    EXPECT_EQ(p.name, "sod");
    EXPECT_DOUBLE_EQ(p.t_end, 0.01);
    EXPECT_TRUE(deck.has("exotic_future_section", "knob"));
}

TEST(DeckEdgeCases, MalformedPairsThrow) {
    // Key without '='.
    EXPECT_THROW(bs::Deck::parse_string("[a]\njust_a_word\n"), bu::Error);
    // Empty key.
    EXPECT_THROW(bs::Deck::parse_string("[a]\n = 3\n"), bu::Error);
    // Unterminated section header.
    EXPECT_THROW(bs::Deck::parse_string("[a\nx = 1\n"), bu::Error);
    // Comment chopping the '=' off turns the line malformed.
    EXPECT_THROW(bs::Deck::parse_string("[a]\nx #= 1\n"), bu::Error);
}

TEST(DeckEdgeCases, EmptyValueFallsBackForTypedGetters) {
    const auto deck = bs::Deck::parse_string("[a]\nx =\n");
    EXPECT_TRUE(deck.has("a", "x"));
    EXPECT_EQ(deck.get("a", "x", "unused"), "");
    EXPECT_DOUBLE_EQ(deck.get_real("a", "x", 2.5), 2.5);
    EXPECT_EQ(deck.get_int("a", "x", 7), 7);
    EXPECT_TRUE(deck.get_bool("a", "x", true));
}

TEST(DeckEdgeCases, BadNumericValuesThrowDeckErrors) {
    const auto deck = bs::Deck::parse_string(
        "[a]\nr = fast\ni = 3.5x\nhuge = 99999999999999999999\n");
    EXPECT_THROW((void)deck.get_real("a", "r", 0.0), bu::Error);
    EXPECT_THROW((void)deck.get_int("a", "i", 0), bu::Error);
    EXPECT_THROW((void)deck.get_int("a", "huge", 0), bu::Error); // out of range
}

TEST(DeckEdgeCases, KeysBeforeAnySectionLiveInTheUnnamedSection) {
    const auto deck = bs::Deck::parse_string("stray = 1\n[a]\nx = 2\n");
    EXPECT_EQ(deck.get_int("", "stray", 0), 1);
    EXPECT_EQ(deck.get_int("a", "x", 0), 2);
}

TEST(DeckEdgeCases, LaterDuplicateKeyWins) {
    const auto deck = bs::Deck::parse_string("[a]\nx = 1\nx = 2\n");
    EXPECT_EQ(deck.get_int("a", "x", 0), 2);
}

TEST(DeckEdgeCases, HistoryPathFlowsIntoProblem) {
    const auto deck = bs::Deck::parse_string(R"(
[problem]
name = sod
resolution = 8

[io]
history = /tmp/hist.csv
)");
    const auto p = bs::make_problem(deck);
    EXPECT_EQ(p.history, "/tmp/hist.csv");
    // And absent [io] leaves it disabled.
    const auto p2 = bs::make_problem(
        bs::Deck::parse_string("[problem]\nname = sod\nresolution = 8\n"));
    EXPECT_TRUE(p2.history.empty());
}
