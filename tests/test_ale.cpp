// Tests for the ALE remap: swept-volume identities, exact conservation,
// monotonicity, smoothing behaviour, Eulerian round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "ale/remap.hpp"
#include "geom/geometry.hpp"
#include "hydro/kernels.hpp"
#include "mesh/generator.hpp"
#include "util/random.hpp"

namespace ba = bookleaf::ale;
namespace bh = bookleaf::hydro;
namespace bm = bookleaf::mesh;
namespace be = bookleaf::eos;
namespace bg = bookleaf::geom;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

namespace {

struct Rig {
    bm::Mesh mesh;
    be::MaterialTable materials;
    bh::State state;
    bu::Profiler profiler;
    bh::Context ctx;
    ba::Workspace work;

    Rig(const Rig&) = delete;
    Rig& operator=(const Rig&) = delete;

    explicit Rig(bm::RectSpec spec, Real gamma = 1.4, Real rho = 1.0,
                 Real ein = 2.5) {
        mesh = bm::generate_rect(spec);
        materials.materials = {be::IdealGas{gamma}};
        state = bh::allocate(mesh);
        std::fill(state.rho.begin(), state.rho.end(), rho);
        std::fill(state.ein.begin(), state.ein.end(), ein);
        bh::initialise(mesh, materials, state);
        ctx.mesh = &mesh;
        ctx.materials = &materials;
        ctx.profiler = &profiler;
    }

    /// Displace interior nodes by (dx, dy) (a fake Lagrangian move) and
    /// rebuild a consistent state at the new positions.
    void shift_interior(Real dx, Real dy) {
        for (Index n = 0; n < mesh.n_nodes(); ++n) {
            const auto ni = static_cast<std::size_t>(n);
            if (mesh.node_bc[ni] != bm::bc::none) continue;
            state.x[ni] += dx;
            state.y[ni] += dy;
        }
        refresh_geometry();
    }

    /// Like shift_interior but keyed on coordinates (for meshes generated
    /// without wall masks): only nodes strictly inside the unit square move.
    void shift_strict_interior(Real dx, Real dy) {
        for (Index n = 0; n < mesh.n_nodes(); ++n) {
            const auto ni = static_cast<std::size_t>(n);
            const Real px = mesh.x[ni], py = mesh.y[ni];
            if (px < 1e-9 || px > 1 - 1e-9 || py < 1e-9 || py > 1 - 1e-9)
                continue;
            state.x[ni] += dx;
            state.y[ni] += dy;
        }
        refresh_geometry();
    }

    void refresh_geometry() {
        state.x0 = state.x;
        state.y0 = state.y;
        bh::getgeom(ctx, state, state.u, state.v, 0.0);
        bh::getrho(ctx, state);
        bh::getpc(ctx, state);
    }
};

} // namespace

TEST(AleStep, LagrangeModeIsNoOp) {
    Rig rig({.nx = 4, .ny = 4});
    const auto x_before = rig.state.x;
    const auto rho_before = rig.state.rho;
    ba::Options opts; // lagrange
    ba::alestep(rig.ctx, rig.state, opts, rig.work);
    EXPECT_EQ(rig.state.x, x_before);
    EXPECT_EQ(rig.state.rho, rho_before);
}

TEST(AleGetFvol, SweptVolumesMatchVolumeChangeExactly) {
    // The defining identity: V(target) - V(old) = -sum_L fvol + sum_R fvol
    // per cell, to round-off.
    Rig rig({.nx = 5, .ny = 4});
    rig.shift_interior(0.012, -0.008);
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    ba::alegetmesh(rig.ctx, rig.state, opts, rig.work);
    ba::alegetfvol(rig.ctx, rig.state, rig.work);

    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        Real gain = 0.0;
        for (int k = 0; k < 4; ++k) {
            const Index fid = rig.mesh.face_of(c, k);
            const auto& f = rig.mesh.faces[static_cast<std::size_t>(fid)];
            const Real fv = rig.work.fvol[static_cast<std::size_t>(fid)];
            gain += (f.left == c) ? -fv : fv;
        }
        // Target volume:
        bg::QuadPts q;
        for (int k = 0; k < 4; ++k) {
            const auto n = static_cast<std::size_t>(rig.mesh.cn(c, k));
            q.x[static_cast<std::size_t>(k)] = rig.work.xt[n];
            q.y[static_cast<std::size_t>(k)] = rig.work.yt[n];
        }
        const Real v_target = bg::quad_area(q);
        EXPECT_NEAR(v_target - rig.state.volume[static_cast<std::size_t>(c)],
                    gain, 1e-14)
            << "cell " << c;
    }
}

TEST(AleGetFvol, BoundaryFacesSweepNothing) {
    Rig rig({.nx = 4, .ny = 4});
    rig.shift_interior(0.01, 0.01);
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    ba::alegetmesh(rig.ctx, rig.state, opts, rig.work);
    ba::alegetfvol(rig.ctx, rig.state, rig.work);
    for (std::size_t fi = 0; fi < rig.mesh.faces.size(); ++fi)
        if (rig.mesh.faces[fi].right == bookleaf::no_index) {
            EXPECT_NEAR(rig.work.fvol[fi], 0.0, 1e-15);
        }
}

TEST(AleStep, EulerianRemapOfUniformStateIsExact) {
    // Free-stream preservation: a gas that is *spatially* uniform on a
    // distorted mesh must remap to the regular mesh without disturbance.
    // (Note: displacing nodes of an already-initialised Lagrangian state
    // would physically compress cells — so initialise at the displaced
    // geometry instead.)
    Rig rig({.nx = 6, .ny = 6});
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (rig.mesh.node_bc[ni] != bm::bc::none) continue;
        rig.state.x[ni] += 0.01;
        rig.state.y[ni] -= 0.01;
    }
    std::fill(rig.state.rho.begin(), rig.state.rho.end(), 1.0);
    std::fill(rig.state.ein.begin(), rig.state.ein.end(), 2.5);
    bh::initialise(rig.mesh, rig.materials, rig.state);
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    ba::alestep(rig.ctx, rig.state, opts, rig.work);
    // Nodes restored exactly; uniform state untouched.
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        EXPECT_DOUBLE_EQ(rig.state.x[ni], rig.mesh.x[ni]);
        EXPECT_DOUBLE_EQ(rig.state.y[ni], rig.mesh.y[ni]);
    }
    for (Index c = 0; c < rig.state.n_cells(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        EXPECT_NEAR(rig.state.rho[ci], 1.0, 1e-12);
        EXPECT_NEAR(rig.state.ein[ci], 2.5, 1e-12);
    }
}

TEST(AleStep, ConservesMassEnergyMomentumExactly) {
    // Momentum conservation needs no wall masks (the BC re-application
    // would zero wall-normal components); generate the mesh without them
    // and move only strictly-interior nodes.
    Rig rig({.nx = 8, .ny = 8, .reflective_walls = false}, 1.4, 1.0, 2.0);
    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        rig.state.rho[ci] = 1.0 + 0.5 * std::sin(0.9 * c);
        rig.state.ein[ci] = 2.0 + 0.7 * std::cos(1.7 * c);
    }
    bh::initialise(rig.mesh, rig.materials, rig.state);
    bu::SplitMix64 rng(3);
    for (auto& u : rig.state.u) u = rng.uniform(-0.3, 0.3);
    for (auto& v : rig.state.v) v = rng.uniform(-0.3, 0.3);
    rig.shift_strict_interior(0.008, 0.006);

    const auto before = bh::totals(rig.mesh, rig.state);
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    ba::alestep(rig.ctx, rig.state, opts, rig.work);
    const auto after = bh::totals(rig.mesh, rig.state);

    EXPECT_NEAR(after.mass, before.mass, 1e-13 * before.mass);
    EXPECT_NEAR(after.internal_energy, before.internal_energy,
                1e-12 * std::abs(before.internal_energy));
    EXPECT_NEAR(after.momentum_x, before.momentum_x, 1e-12);
    EXPECT_NEAR(after.momentum_y, before.momentum_y, 1e-12);
    // Upwind momentum remap dissipates kinetic energy.
    EXPECT_LE(after.kinetic_energy, before.kinetic_energy + 1e-12);
}

TEST(AleStep, CornerMassesStayConsistentWithCellMass) {
    Rig rig({.nx = 6, .ny = 5});
    for (Index c = 0; c < rig.mesh.n_cells(); ++c)
        rig.state.rho[static_cast<std::size_t>(c)] = 1.0 + 0.1 * (c % 4);
    bh::initialise(rig.mesh, rig.materials, rig.state);
    rig.shift_interior(0.01, 0.0);
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    ba::alestep(rig.ctx, rig.state, opts, rig.work);
    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        Real sum = 0.0;
        for (int k = 0; k < 4; ++k) sum += rig.state.cnmass[bh::State::cidx(c, k)];
        EXPECT_NEAR(sum, rig.state.cell_mass[static_cast<std::size_t>(c)],
                    1e-12)
            << "cell " << c;
    }
}

TEST(AleStep, RemapPreservesUniformVelocityExactly) {
    Rig rig({.nx = 6, .ny = 6, .reflective_walls = false});
    for (Index c = 0; c < rig.mesh.n_cells(); ++c)
        rig.state.rho[static_cast<std::size_t>(c)] = 1.0 + 0.2 * (c % 5);
    bh::initialise(rig.mesh, rig.materials, rig.state);
    std::fill(rig.state.u.begin(), rig.state.u.end(), 0.37);
    std::fill(rig.state.v.begin(), rig.state.v.end(), -0.11);
    rig.shift_strict_interior(0.009, -0.004);
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    ba::alestep(rig.ctx, rig.state, opts, rig.work);
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        EXPECT_NEAR(rig.state.u[ni], 0.37, 1e-13);
        EXPECT_NEAR(rig.state.v[ni], -0.11, 1e-13);
    }
}

TEST(AleStep, MonotonicityNoNewDensityExtrema) {
    // A sharp density step remapped repeatedly must not overshoot.
    Rig rig({.nx = 16, .ny = 4});
    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        Real cx = 0;
        for (int k = 0; k < 4; ++k)
            cx += rig.mesh.x[static_cast<std::size_t>(rig.mesh.cn(c, k))] / 4;
        rig.state.rho[static_cast<std::size_t>(c)] = cx < 0.5 ? 4.0 : 1.0;
    }
    bh::initialise(rig.mesh, rig.materials, rig.state);
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    for (int rep = 0; rep < 5; ++rep) {
        rig.shift_interior(0.005, 0.0);
        ba::alestep(rig.ctx, rig.state, opts, rig.work);
        for (Index c = 0; c < rig.state.n_cells(); ++c) {
            const Real rho = rig.state.rho[static_cast<std::size_t>(c)];
            EXPECT_GE(rho, 1.0 - 1e-10) << "rep " << rep << " cell " << c;
            EXPECT_LE(rho, 4.0 + 1e-10) << "rep " << rep << " cell " << c;
        }
    }
}

TEST(AleGetMesh, SmoothingImprovesSaltzmannQuality) {
    bm::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 0.1, .nx = 50, .ny = 10};
    spec.map = bm::saltzmann_map;
    Rig rig(spec);
    const auto before = bg::mesh_quality(rig.mesh);

    ba::Options opts;
    opts.mode = ba::Mode::ale;
    opts.smoothing_passes = 10;
    ba::alegetmesh(rig.ctx, rig.state, opts, rig.work);

    // Build a mesh snapshot with the target coordinates and measure.
    bm::Mesh smoothed = rig.mesh;
    smoothed.x.assign(rig.work.xt.begin(), rig.work.xt.end());
    smoothed.y.assign(rig.work.yt.begin(), rig.work.yt.end());
    const auto after = bg::mesh_quality(smoothed);
    EXPECT_LT(after.max_aspect, before.max_aspect);
    EXPECT_GT(after.min_area, 0.0);

    // Boundary nodes stayed on their walls.
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (rig.mesh.node_bc[ni] & bm::bc::fix_u) {
            EXPECT_DOUBLE_EQ(rig.work.xt[ni], rig.state.x[ni]);
        }
        if (rig.mesh.node_bc[ni] & bm::bc::fix_v) {
            EXPECT_DOUBLE_EQ(rig.work.yt[ni], rig.state.y[ni]);
        }
    }
}

TEST(AleGetMesh, DisplacementClampHolds) {
    Rig rig({.nx = 10, .ny = 10});
    ba::Options opts;
    opts.mode = ba::Mode::ale;
    opts.smoothing_passes = 50; // try hard to move far
    opts.max_move_frac = 0.1;
    ba::alegetmesh(rig.ctx, rig.state, opts, rig.work);
    const Real h = 0.1; // cell size
    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        const Real d = std::hypot(rig.work.xt[ni] - rig.state.x[ni],
                                  rig.work.yt[ni] - rig.state.y[ni]);
        EXPECT_LE(d, 0.1 * h + 1e-12);
    }
}

TEST(AleStep, EulerianCycleAfterLagrangianStep) {
    // A real Lagrangian step followed by an Eulerian remap: the node
    // positions return to the generation-time mesh, conservation holds.
    Rig rig({.nx = 8, .ny = 8}, 1.4, 1.0, 2.5);
    for (Index c = 0; c < rig.mesh.n_cells(); ++c)
        rig.state.ein[static_cast<std::size_t>(c)] = 2.0 + 0.5 * ((c * 7) % 5);
    bh::initialise(rig.mesh, rig.materials, rig.state);
    const auto before = bh::totals(rig.mesh, rig.state);

    bh::lagstep(rig.ctx, rig.state, 2e-4);
    const auto mid = bh::totals(rig.mesh, rig.state);
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    ba::alestep(rig.ctx, rig.state, opts, rig.work);
    const auto after = bh::totals(rig.mesh, rig.state);

    for (Index n = 0; n < rig.mesh.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        EXPECT_NEAR(rig.state.x[ni], rig.mesh.x[ni], 1e-15);
        EXPECT_NEAR(rig.state.y[ni], rig.mesh.y[ni], 1e-15);
    }
    EXPECT_NEAR(after.mass, before.mass, 1e-12);
    EXPECT_NEAR(after.total_energy(), mid.total_energy(),
                1e-9 * std::abs(mid.total_energy()));
}

TEST(AleAdvect, ThrowsWhenBoundaryFaceSweeps) {
    // If a boundary node somehow leaves its wall, the remap must fail
    // loudly instead of indexing a nonexistent neighbour.
    Rig rig({.nx = 4, .ny = 4, .reflective_walls = false});
    for (auto& x : rig.state.x) x += 0.01; // move EVERY node, walls included
    rig.refresh_geometry();
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    EXPECT_THROW(ba::alestep(rig.ctx, rig.state, opts, rig.work), bu::Error);
}

TEST(AleAdvect, LimiterOffAllowsSharperButUnclampedProfile) {
    // Ablation sanity: with the limiter disabled the remap still conserves
    // mass exactly (fluxes are consistent), it just loses monotonicity
    // guarantees.
    Rig rig({.nx = 16, .ny = 2});
    for (Index c = 0; c < rig.mesh.n_cells(); ++c) {
        Real cx = 0;
        for (int k = 0; k < 4; ++k)
            cx += rig.mesh.x[static_cast<std::size_t>(rig.mesh.cn(c, k))] / 4;
        rig.state.rho[static_cast<std::size_t>(c)] = cx < 0.5 ? 3.0 : 1.0;
    }
    bh::initialise(rig.mesh, rig.materials, rig.state);
    const Real m0 = bh::totals(rig.mesh, rig.state).mass;
    rig.shift_interior(0.006, 0.0);
    ba::Options opts;
    opts.mode = ba::Mode::eulerian;
    opts.limit = false;
    ba::alestep(rig.ctx, rig.state, opts, rig.work);
    EXPECT_NEAR(bh::totals(rig.mesh, rig.state).mass, m0, 1e-12 * m0);
}
