// Checkpoint/restart subsystem tests: on-disk format validation, bitwise
// save/restore continuation for the serial driver (Driver.Continuation*
// family), rank-elastic distributed restarts (CkptDist), and the
// restart-aware history CSV.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "ckpt/checkpoint.hpp"
#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "setup/deck.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"

namespace bc = bookleaf::core;
namespace bck = bookleaf::ckpt;
namespace bd = bookleaf::dist;
namespace bs = bookleaf::setup;
namespace ba = bookleaf::ale;
namespace bt = bookleaf::typhon;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void spew(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Step a driver past `t_min` on natural steps only (no t_end clamp), so
/// the reached state lies ON the uninterrupted trajectory.
void step_past(bc::Hydro& h, Real t_min) {
    while (h.time() < t_min) h.step();
}

void expect_state_bitwise(const bc::Hydro& a, const bc::Hydro& b,
                          const std::string& label) {
    ASSERT_EQ(a.steps(), b.steps()) << label;
    EXPECT_EQ(a.time(), b.time()) << label;
    const auto& sa = a.state();
    const auto& sb = b.state();
    for (std::size_t c = 0; c < sa.rho.size(); ++c) {
        ASSERT_EQ(sa.rho[c], sb.rho[c]) << label << ": cell " << c;
        ASSERT_EQ(sa.ein[c], sb.ein[c]) << label << ": cell " << c;
    }
    for (std::size_t n = 0; n < sa.u.size(); ++n) {
        ASSERT_EQ(sa.u[n], sb.u[n]) << label << ": node " << n;
        ASSERT_EQ(sa.v[n], sb.v[n]) << label << ": node " << n;
        ASSERT_EQ(sa.x[n], sb.x[n]) << label << ": node " << n;
        ASSERT_EQ(sa.y[n], sb.y[n]) << label << ": node " << n;
    }
    // Conservation totals are part of the contract too.
    const auto ta = a.totals();
    const auto tb = b.totals();
    EXPECT_EQ(ta.mass, tb.mass) << label;
    EXPECT_EQ(ta.internal_energy, tb.internal_energy) << label;
    EXPECT_EQ(ta.kinetic_energy, tb.kinetic_energy) << label;
}

/// The serial save/restore continuation contract: run A uninterrupted to
/// t_end, snapshotting at the first natural step past t_save; restore B
/// from the snapshot and run it to t_end. A and B must agree bitwise.
void roundtrip_problem(bs::Problem problem, Real t_save, Real t_end,
                       const std::string& label) {
    const std::string path = "/tmp/bookleaf_ckpt_" + label + ".ckpt";
    auto restored_problem = problem; // same deck for the restore

    bc::Hydro a(std::move(problem));
    step_past(a, t_save);
    a.save(path);
    a.run(t_end);

    bc::Hydro b(std::move(restored_problem), bck::read(path));
    EXPECT_GT(b.steps(), 0) << label;
    b.run(t_end);
    expect_state_bitwise(a, b, label);
    std::remove(path.c_str());
}

} // namespace

// ---------------------------------------------------------------------------
// Format round trip and validation (util::Error on every malformation)
// ---------------------------------------------------------------------------

TEST(Ckpt, WriteReadRoundTripsEverything) {
    bc::Hydro h(bs::sod(16, 2));
    h.run(std::nullopt, 10);
    const auto snap = h.snapshot();
    const std::string path = "/tmp/bookleaf_ckpt_roundtrip.ckpt";
    bck::write(path, snap);
    const auto back = bck::read(path);

    EXPECT_EQ(back.mesh_hash, snap.mesh_hash);
    EXPECT_EQ(back.steps, snap.steps);
    EXPECT_EQ(back.t, snap.t);
    EXPECT_EQ(back.dt, snap.dt);
    EXPECT_EQ(back.x, snap.x);
    EXPECT_EQ(back.y, snap.y);
    EXPECT_EQ(back.u, snap.u);
    EXPECT_EQ(back.v, snap.v);
    EXPECT_EQ(back.node_mass, snap.node_mass);
    EXPECT_EQ(back.rho, snap.rho);
    EXPECT_EQ(back.ein, snap.ein);
    EXPECT_EQ(back.q, snap.q);
    EXPECT_EQ(back.cell_mass, snap.cell_mass);
    EXPECT_EQ(back.cnmass, snap.cnmass);
    std::remove(path.c_str());
}

TEST(Ckpt, SnapshotCarriesTheUnclampedDtGrowthReference) {
    // The PR-3 continuation fix must survive a round trip: a snapshot
    // taken right after a clamped run(t1) must carry the *unclamped*
    // controller dt, so the restored run's next step is not growth-limited
    // from the tiny clamped step.
    bc::Hydro probe(bs::sod(32, 2));
    while (probe.time() < 0.03) probe.step();
    const Real t1 = probe.time() + 1e-7;

    bc::Hydro a(bs::sod(32, 2));
    a.run(t1); // final step clamped to ~1e-7
    const auto snap = a.snapshot();
    EXPECT_GT(snap.dt, 100.0 * 1e-7); // the growth reference, not the clamp

    bc::Hydro b(bs::sod(32, 2), snap);
    const auto resumed = b.step();
    EXPECT_GT(resumed.dt, 100.0 * 1e-7);
}

TEST(Ckpt, ReadRejectsMissingAndMalformedFiles) {
    EXPECT_THROW(bck::read("/tmp/bookleaf_no_such_file.ckpt"), bu::Error);

    bc::Hydro h(bs::sod(8, 2));
    h.run(std::nullopt, 3);
    const std::string path = "/tmp/bookleaf_ckpt_corrupt.ckpt";
    bck::write(path, h.snapshot());
    const auto good = slurp(path);
    ASSERT_GT(good.size(), 64u);

    // Bad magic.
    auto bad = good;
    bad[0] = 'X';
    spew(path, bad);
    EXPECT_THROW(bck::read(path), bu::Error);

    // Unsupported format version (the u32 right after the 8-byte magic).
    bad = good;
    bad[8] = static_cast<char>(bck::format_version + 1);
    spew(path, bad);
    EXPECT_THROW(bck::read(path), bu::Error);

    // Truncations: mid-header, mid-field-header, mid-payload.
    for (const std::size_t keep :
         {std::size_t{12}, std::size_t{40}, good.size() / 2, good.size() - 3}) {
        spew(path, good.substr(0, keep));
        EXPECT_THROW(bck::read(path), bu::Error) << "kept " << keep;
    }

    // A flipped payload byte fails the per-field checksum.
    bad = good;
    bad[good.size() - 9] ^= 0x40;
    spew(path, bad);
    EXPECT_THROW(bck::read(path), bu::Error);

    // Pristine bytes still read fine (the mutations above were the cause).
    spew(path, good);
    EXPECT_NO_THROW(bck::read(path));
    std::remove(path.c_str());
}

TEST(Ckpt, WriteIsAtomicAndLeavesNoTemporary) {
    bc::Hydro h(bs::sod(8, 2));
    h.run(std::nullopt, 3);
    const std::string path = "/tmp/bookleaf_ckpt_atomic.ckpt";
    bck::write(path, h.snapshot());
    // The temporary staging file must be gone (renamed into place).
    std::ifstream tmp(path + ".tmp", std::ios::binary);
    EXPECT_FALSE(static_cast<bool>(tmp));
    EXPECT_NO_THROW(bck::read(path));
    std::remove(path.c_str());
}

TEST(Ckpt, StrayTruncatedTmpFromACrashIsHarmless) {
    // A crash mid-write leaves `<path>.tmp`, never a truncated `<path>`:
    // the real file (if any) still reads, and a later write replaces the
    // stray temporary cleanly.
    bc::Hydro h(bs::sod(8, 2));
    h.run(std::nullopt, 3);
    const std::string path = "/tmp/bookleaf_ckpt_stray.ckpt";
    bck::write(path, h.snapshot());
    const auto good = slurp(path);
    spew(path + ".tmp", good.substr(0, good.size() / 3)); // crashed write
    EXPECT_NO_THROW(bck::read(path));
    EXPECT_THROW(bck::read(path + ".tmp"), bu::Error);
    h.run(std::nullopt, 5);
    EXPECT_NO_THROW(bck::write(path, h.snapshot())); // replaces the tmp
    EXPECT_NO_THROW(bck::read(path));
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

TEST(Ckpt, TortureEveryTruncationAndHeaderBitFlipThrows) {
    // Hostile-bytes hardening: truncate the file at EVERY byte position
    // and flip every bit of the header — each mutation must be a clean
    // util::Error, never UB, a crash or an attempted huge allocation.
    bc::Hydro h(bs::sod(4, 2));
    h.run(std::nullopt, 2);
    const std::string path = "/tmp/bookleaf_ckpt_torture.ckpt";
    bck::write(path, h.snapshot());
    const auto good = slurp(path);
    ASSERT_GT(good.size(), 80u);

    for (std::size_t keep = 0; keep < good.size(); ++keep) {
        spew(path, good.substr(0, keep));
        EXPECT_THROW(bck::read(path), bu::Error) << "kept " << keep;
    }

    // Header = 72 payload bytes + the 8-byte header checksum.
    for (std::size_t byte = 0; byte < 80; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto bad = good;
            bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
            spew(path, bad);
            EXPECT_THROW(bck::read(path), bu::Error)
                << "byte " << byte << " bit " << bit;
        }
    }

    // Pristine bytes still read (the mutations were the cause).
    spew(path, good);
    EXPECT_NO_THROW(bck::read(path));
    std::remove(path.c_str());
}

TEST(Ckpt, ForgedHugeEntityCountThrowsWithoutAllocating) {
    // An attacker (or cosmic ray burst) who fixes up the header checksum
    // can present any entity count; the reader must bound allocations by
    // the actual on-disk size and throw — never OOM.
    bc::Hydro h(bs::sod(4, 2));
    h.run(std::nullopt, 2);
    const std::string path = "/tmp/bookleaf_ckpt_forged.ckpt";
    bck::write(path, h.snapshot());
    auto bytes = slurp(path);
    ASSERT_GT(bytes.size(), 80u);

    const auto forge_n_nodes = [&](std::int64_t n_nodes) {
        auto bad = bytes;
        std::memcpy(bad.data() + 56, &n_nodes, sizeof n_nodes);
        // Recompute the header checksum over the 72 preceding bytes so
        // only the count is "wrong".
        const std::uint64_t hsum = bck::checksum(bad.data(), 72);
        std::memcpy(bad.data() + 72, &hsum, sizeof hsum);
        spew(path, bad);
    };
    // Plausible-looking but enormous: caught by the exact file-size check.
    forge_n_nodes(1'000'000'000);
    EXPECT_THROW(bck::read(path), bu::Error);
    // Beyond any index range: caught by the plausibility bound.
    forge_n_nodes(std::int64_t{1} << 61);
    EXPECT_THROW(bck::read(path), bu::Error);
    // Negative: same.
    forge_n_nodes(-1);
    EXPECT_THROW(bck::read(path), bu::Error);
    std::remove(path.c_str());
}

TEST(Ckpt, RestoreRejectsDeckMismatch) {
    bc::Hydro h(bs::sod(16, 2));
    h.run(std::nullopt, 5);
    const auto snap = h.snapshot();
    // Different resolution and different problem: both are a different
    // mesh, so the global entity order would be wrong — rejected.
    EXPECT_THROW(bc::Hydro(bs::sod(20, 2), snap), bu::Error);
    EXPECT_THROW(bc::Hydro(bs::noh(16), snap), bu::Error);
    // The matching deck restores fine.
    EXPECT_NO_THROW(bc::Hydro(bs::sod(16, 2), snap));
}

TEST(Ckpt, DistRunRejectsMismatchedSnapshot) {
    bc::Hydro h(bs::sod(16, 2));
    h.run(std::nullopt, 5);
    const auto snap = h.snapshot();
    const auto wrong = bs::sod(24, 2);
    bd::Options opts;
    opts.n_ranks = 2;
    opts.t_end = 0.05;
    opts.hydro = wrong.hydro;
    EXPECT_THROW(bd::run(wrong.mesh, wrong.materials, snap, opts), bu::Error);
}

// ---------------------------------------------------------------------------
// Serial save/restore continuation (the Driver.Continuation* family)
// ---------------------------------------------------------------------------

TEST(Driver, ContinuationSaveRestoreSodBitwise) {
    roundtrip_problem(bs::sod(48, 2), 0.1, 0.2, "sod");
}

TEST(Driver, ContinuationSaveRestoreNohBitwise) {
    roundtrip_problem(bs::noh(20), 0.3, 0.6, "noh");
}

TEST(Driver, ContinuationSaveRestoreSedovBitwise) {
    roundtrip_problem(bs::sedov(16), 0.2, 0.4, "sedov");
}

TEST(Driver, ContinuationSaveRestoreEulerianSodBitwise) {
    auto p = bs::sod(32, 2);
    p.ale.mode = ba::Mode::eulerian;
    roundtrip_problem(std::move(p), 0.1, 0.2, "sod_eulerian");
}

TEST(Driver, ContinuationSaveRestoreAleNohBitwise) {
    // The remap-cadence state must survive the round trip: with
    // frequency 3, the restored run must remap on the same global steps
    // as the uninterrupted one (the step count seeds the cadence).
    auto p = bs::noh(16);
    p.ale.mode = ba::Mode::ale;
    p.ale.frequency = 3;
    roundtrip_problem(std::move(p), 0.05, 0.1, "noh_ale");
}

TEST(Driver, DeckCheckpointCadenceWritesAndRestores) {
    const std::string prefix = "/tmp/bookleaf_ckpt_cadence";
    auto p = bs::sod(24, 2);
    p.checkpoint.every_steps = 4;
    p.checkpoint.prefix = prefix;
    auto p_restore = bs::sod(24, 2); // restart deck: no cadence

    bc::Hydro a(std::move(p));
    a.run(std::nullopt, 10);
    // Due after steps 4 and 8; never after a non-multiple.
    EXPECT_NO_THROW(bck::read(prefix + "_4.ckpt"));
    std::ifstream missing(prefix + "_10.ckpt");
    EXPECT_FALSE(static_cast<bool>(missing));

    bc::Hydro b(std::move(p_restore), bck::read(prefix + "_8.ckpt"));
    EXPECT_EQ(b.steps(), 8);
    b.run(std::nullopt, 10);
    expect_state_bitwise(a, b, "every_steps cadence");
    std::remove((prefix + "_4.ckpt").c_str());
    std::remove((prefix + "_8.ckpt").c_str());
}

TEST(Driver, DeckCheckpointAtTimeFiresOnceAndHalts) {
    const std::string prefix = "/tmp/bookleaf_ckpt_attime";
    auto p = bs::sod(24, 2);
    p.checkpoint.at_time = 0.05;
    p.checkpoint.prefix = prefix;
    p.checkpoint.halt_after = true;

    bc::Hydro h(std::move(p));
    const auto summary = h.run(0.2);
    // Halted at the first natural step past at_time, well short of t_end.
    EXPECT_TRUE(h.halted());
    EXPECT_GE(h.time(), 0.05);
    EXPECT_LT(h.time(), 0.1);
    const auto path = "/tmp/bookleaf_ckpt_attime_" +
                      std::to_string(summary.steps) + ".ckpt";
    const auto snap = bck::read(path);
    EXPECT_EQ(snap.steps, summary.steps);
    EXPECT_EQ(snap.t, h.time());
    // A further run() continues (the halt is per-run()); the one-shot
    // trigger does not re-fire and re-halt.
    h.run(0.07);
    EXPECT_FALSE(h.halted());
    EXPECT_NEAR(h.time(), 0.07, 1e-12);
    std::remove(path.c_str());
}

TEST(Driver, DeckParsesCheckpointSection) {
    const auto deck = bs::Deck::parse_string("[problem]\n"
                                             "name = sod\n"
                                             "resolution = 16\n"
                                             "[checkpoint]\n"
                                             "every_steps = 7\n"
                                             "at_time = 0.125\n"
                                             "prefix = /tmp/ck\n"
                                             "restart_from = /tmp/a.ckpt\n"
                                             "halt_after = yes\n");
    const auto p = bs::make_problem(deck);
    EXPECT_EQ(p.checkpoint.every_steps, 7);
    EXPECT_EQ(p.checkpoint.at_time, 0.125);
    EXPECT_EQ(p.checkpoint.prefix, "/tmp/ck");
    EXPECT_EQ(p.checkpoint.restart_from, "/tmp/a.ckpt");
    EXPECT_TRUE(p.checkpoint.halt_after);
    EXPECT_THROW(bs::make_problem(bs::Deck::parse_string(
                     "[checkpoint]\nevery_steps = -1\n")),
                 bu::Error);
}

// ---------------------------------------------------------------------------
// Restart-aware history CSV
// ---------------------------------------------------------------------------

TEST(Driver, RestartContinuesHistoryWithoutDuplicateRows) {
    const std::string hist_a = "/tmp/bookleaf_hist_uninterrupted.csv";
    const std::string hist_b = "/tmp/bookleaf_hist_restarted.csv";
    const std::string ck = "/tmp/bookleaf_hist.ckpt";

    // Uninterrupted run with history; snapshot at a mid-run natural step.
    bck::Snapshot snap;
    {
        auto p = bs::sod(24, 2);
        p.history = hist_a;
        bc::Hydro a(std::move(p));
        step_past(a, 0.05);
        snap = a.snapshot();
        a.save(ck);
        // hist_b gets the file as it stood at the checkpoint PLUS rows a
        // crashed run would have written past it (they must be dropped).
        a.run(0.1);
    }
    {
        std::ofstream copy(hist_b, std::ios::trunc);
        copy << slurp(hist_a);
        // ... and a partial final line, as a crash mid-row-write leaves
        // (the stream buffer cut off at an arbitrary byte).
        copy << "191,0.105";
    }

    // Restore with the history pointing at the copied file: rows past the
    // checkpointed step are dropped, then appending resumes. (Scoped so
    // the CSV flushes before the files are compared.)
    {
        auto p = bs::sod(24, 2);
        p.history = hist_b;
        bc::Hydro b(std::move(p), bck::read(ck));
        b.run(0.1);
    }

    // The restarted file must be byte-identical to the uninterrupted one:
    // one header, no duplicated or missing steps, same formatting.
    EXPECT_EQ(slurp(hist_b), slurp(hist_a));

    // Handshake: a history that never reached the checkpointed step is
    // stale/mismatched and must be rejected.
    {
        std::ofstream stale(hist_b, std::ios::trunc);
        stale << "step,t,dt,mass,internal_energy,kinetic_energy\n"
              << "0,0,0,1,2,3\n";
    }
    auto p_stale = bs::sod(24, 2);
    p_stale.history = hist_b;
    EXPECT_THROW(bc::Hydro(std::move(p_stale), bck::read(ck)), bu::Error);

    std::remove(hist_a.c_str());
    std::remove(hist_b.c_str());
    std::remove(ck.c_str());
}

// ---------------------------------------------------------------------------
// Rank-elastic distributed restart (CkptDist — also run under TSan)
// ---------------------------------------------------------------------------

namespace {

struct GatheredRef {
    int steps = 0;
    std::vector<Real> rho, ein, u, v, x, y;
};

GatheredRef serial_reference(bs::Problem problem, Real t_end) {
    bc::Hydro h(std::move(problem));
    h.run(t_end);
    const auto& s = h.state();
    const auto vec = [](const auto& f) {
        return std::vector<Real>(f.begin(), f.end());
    };
    return {h.steps(), vec(s.rho), vec(s.ein), vec(s.u),
            vec(s.v),  vec(s.x),   vec(s.y)};
}

void expect_bitwise(const bd::Result& r, const GatheredRef& ref,
                    const std::string& label) {
    ASSERT_EQ(r.steps, ref.steps) << label;
    for (std::size_t c = 0; c < ref.rho.size(); ++c) {
        ASSERT_EQ(r.rho[c], ref.rho[c]) << label << ": cell " << c;
        ASSERT_EQ(r.ein[c], ref.ein[c]) << label << ": cell " << c;
    }
    for (std::size_t n = 0; n < ref.u.size(); ++n) {
        ASSERT_EQ(r.u[n], ref.u[n]) << label << ": node " << n;
        ASSERT_EQ(r.v[n], ref.v[n]) << label << ": node " << n;
        ASSERT_EQ(r.x[n], ref.x[n]) << label << ": node " << n;
        ASSERT_EQ(r.y[n], ref.y[n]) << label << ": node " << n;
    }
}

bd::Options dist_options(const bs::Problem& p, int n_ranks, Real t_end,
                         bool overlap = true,
                         bt::Packing packing = bt::Packing::coalesced) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro = p.hydro;
    opts.ale = p.ale;
    opts.overlap = overlap;
    opts.packing = packing;
    return opts;
}

/// Checkpoint a distributed run at `save_ranks` (halting there), then
/// restart at several rank counts and under every (overlap x packing)
/// combination; everything must land bitwise on the uninterrupted serial
/// run.
void rank_elastic_roundtrip(const bs::Problem& problem, Real t_save,
                            Real t_end, int save_ranks,
                            const std::string& label) {
    auto ref_problem = problem;
    const auto ref = serial_reference(std::move(ref_problem), t_end);

    auto save_opts = dist_options(problem, save_ranks, t_end);
    save_opts.checkpoint.at_time = t_save;
    save_opts.checkpoint.prefix = "/tmp/bookleaf_ckdist_" + label;
    save_opts.checkpoint.halt_after = true;
    const auto saver = bd::run(problem.mesh, problem.materials, problem.rho,
                               problem.ein, problem.u, problem.v, save_opts);
    ASSERT_EQ(saver.checkpoints.size(), 1u) << label;
    const auto snap = bck::read(saver.checkpoints.front());
    EXPECT_EQ(snap.steps, saver.steps) << label;
    EXPECT_LT(saver.steps, ref.steps) << label; // genuinely halted mid-run

    // Rank-elastic restarts: N -> 1, N -> N, N -> 2N.
    for (const int restart_ranks : {1, save_ranks, 2 * save_ranks})
        for (const bool overlap : {true, false})
            for (const auto packing :
                 {bt::Packing::coalesced, bt::Packing::per_field}) {
                const auto tag =
                    label + ": " + std::to_string(save_ranks) + " -> " +
                    std::to_string(restart_ranks) +
                    (overlap ? " overlap" : " blocking") +
                    (packing == bt::Packing::coalesced ? " coalesced"
                                                       : " per-field");
                const auto r = bd::run(
                    problem.mesh, problem.materials, snap,
                    dist_options(problem, restart_ranks, t_end, overlap,
                                 packing));
                expect_bitwise(r, ref, tag);
            }

    // The serial driver restores the distributed snapshot too.
    auto serial_problem = problem;
    bc::Hydro h(std::move(serial_problem), snap);
    h.run(t_end);
    ASSERT_EQ(h.steps(), ref.steps) << label;
    EXPECT_TRUE(std::equal(h.state().rho.begin(), h.state().rho.end(),
                           ref.rho.begin(), ref.rho.end()))
        << label;
    EXPECT_TRUE(std::equal(h.state().u.begin(), h.state().u.end(),
                           ref.u.begin(), ref.u.end()))
        << label;

    std::remove(saver.checkpoints.front().c_str());
}

} // namespace

TEST(CkptDist, EulerianSodRankElasticRestart) {
    auto problem = bs::sod(48, 4);
    problem.ale.mode = ba::Mode::eulerian;
    rank_elastic_roundtrip(problem, 0.015, 0.03, 2, "eulerian_sod");
}

TEST(CkptDist, AleNohRankElasticRestart) {
    auto problem = bs::noh(16);
    problem.ale.mode = ba::Mode::ale;
    problem.ale.frequency = 3;
    problem.ale.smoothing_passes = 2;
    rank_elastic_roundtrip(problem, 0.02, 0.04, 2, "ale_noh");
}

TEST(CkptDist, LagrangeSodRankElasticRestart) {
    const auto problem = bs::sod(40, 4);
    rank_elastic_roundtrip(problem, 0.015, 0.03, 2, "lagrange_sod");
}

TEST(CkptDist, CheckpointBytesAreRankCountInvariant) {
    // The strongest format statement: the snapshot a 2- or 4-rank run
    // gathers to its writer rank is byte-identical to the one the serial
    // driver writes at the same step — fields in ascending global order,
    // owned values bitwise-serial, same clock, same growth reference.
    auto problem = bs::sod(32, 4);
    problem.ale.mode = ba::Mode::eulerian;

    auto serial_problem = problem;
    serial_problem.checkpoint.every_steps = 25;
    serial_problem.checkpoint.prefix = "/tmp/bookleaf_ckbytes_serial";
    serial_problem.checkpoint.halt_after = true;
    bc::Hydro h(std::move(serial_problem));
    h.run(0.2);
    ASSERT_TRUE(h.halted());
    const auto serial_bytes =
        slurp("/tmp/bookleaf_ckbytes_serial_25.ckpt");
    ASSERT_FALSE(serial_bytes.empty());

    for (const int n_ranks : {2, 4}) {
        auto opts = dist_options(problem, n_ranks, 0.2);
        opts.checkpoint.every_steps = 25;
        opts.checkpoint.prefix =
            "/tmp/bookleaf_ckbytes_r" + std::to_string(n_ranks);
        opts.checkpoint.halt_after = true;
        const auto r = bd::run(problem.mesh, problem.materials, problem.rho,
                               problem.ein, problem.u, problem.v, opts);
        ASSERT_EQ(r.checkpoints.size(), 1u);
        EXPECT_EQ(slurp(r.checkpoints.front()), serial_bytes)
            << n_ranks << " ranks";
        std::remove(r.checkpoints.front().c_str());
    }
    std::remove("/tmp/bookleaf_ckbytes_serial_25.ckpt");
}
