/// Tests for the task-graph executor (par::TaskGraph) and the schedule
/// ablation contract: Schedule::taskgraph is bitwise identical to
/// Schedule::forkjoin — and to the serial run — on the serial driver and
/// the distributed driver, at every thread count, rank count and mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "par/exec.hpp"
#include "par/task_graph.hpp"
#include "par/thread_pool.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"

namespace bp = bookleaf::par;
namespace bc = bookleaf::core;
namespace bd = bookleaf::dist;
namespace bs = bookleaf::setup;
namespace ba = bookleaf::ale;
using bookleaf::Real;

// ---------------------------------------------------------------------------
// TaskGraph unit tests
// ---------------------------------------------------------------------------

TEST(TaskGraph, EmptyGraphRuns) {
    bp::TaskGraph g;
    EXPECT_TRUE(g.empty());
    g.run(bp::Exec{}); // serial
    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    g.run(ex); // threaded
}

TEST(TaskGraph, SingleTaskMatchesSerialCall) {
    int calls = 0;
    bp::TaskGraph g;
    g.add([&] { ++calls; });
    g.run(bp::Exec{});
    EXPECT_EQ(calls, 1);
}

TEST(TaskGraph, SerialReadyOrderIsLowestIdFirst) {
    // Without dependencies the serial executor must visit tasks in
    // insertion (id) order — the deterministic scheduling priority.
    std::vector<int> order;
    bp::TaskGraph g;
    for (int i = 0; i < 6; ++i) g.add([&order, i] { order.push_back(i); });
    g.run(bp::Exec{});
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(TaskGraph, DiamondRespectsDependencies) {
    //     a
    //    / \
    //   b   c
    //    \ /
    //     d
    std::mutex m;
    std::vector<char> order;
    auto record = [&](char c) {
        const std::lock_guard<std::mutex> lock(m);
        order.push_back(c);
    };
    bp::TaskGraph g;
    const auto a = g.add([&] { record('a'); });
    const auto b = g.add([&] { record('b'); });
    const auto c = g.add([&] { record('c'); });
    const auto d = g.add([&] { record('d'); });
    g.depend(b, a);
    g.depend(c, a);
    g.depend(d, b);
    g.depend(d, c);

    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    for (int rep = 0; rep < 20; ++rep) {
        order.clear();
        g.run(ex);
        ASSERT_EQ(order.size(), 4u);
        const auto pos = [&](char ch) {
            return std::find(order.begin(), order.end(), ch) - order.begin();
        };
        EXPECT_LT(pos('a'), pos('b'));
        EXPECT_LT(pos('a'), pos('c'));
        EXPECT_LT(pos('b'), pos('d'));
        EXPECT_LT(pos('c'), pos('d'));
    }
}

TEST(TaskGraph, ReRunnable) {
    std::atomic<int> calls{0};
    bp::TaskGraph g;
    const auto a = g.add([&] { calls.fetch_add(1); });
    const auto b = g.add([&] { calls.fetch_add(1); });
    g.depend(b, a);
    g.run(bp::Exec{});
    g.run(bp::Exec{});
    EXPECT_EQ(calls.load(), 4);
}

TEST(TaskGraph, CycleThrows) {
    bp::TaskGraph g;
    const auto a = g.add([] {});
    const auto b = g.add([] {});
    g.depend(a, b);
    g.depend(b, a);
    EXPECT_THROW(g.run(bp::Exec{}), bookleaf::util::Error);
}

TEST(TaskGraph, SelfDependencyThrows) {
    // Rejected eagerly at declaration (a one-node cycle).
    bp::TaskGraph g;
    const auto a = g.add([] {});
    EXPECT_THROW(g.depend(a, a), bookleaf::util::Error);
}

TEST(TaskGraph, OutOfRangeDependencyThrows) {
    bp::TaskGraph g;
    const auto a = g.add([] {});
    EXPECT_THROW(g.depend(a, a + 1), bookleaf::util::Error);
    EXPECT_THROW(g.depend(-1, a), bookleaf::util::Error);
}

TEST(TaskGraph, MainThreadTasksRunOnCallingThread) {
    // The hook the distributed driver relies on: comm endpoints are
    // per-rank threads, so exchange finishes must stay on tid 0.
    const auto caller = std::this_thread::get_id();
    std::mutex m;
    std::vector<std::thread::id> seen;
    bp::TaskGraph g;
    for (int i = 0; i < 8; ++i) {
        g.add(
            [&] {
                const std::lock_guard<std::mutex> lock(m);
                seen.push_back(std::this_thread::get_id());
            },
            /*main_thread=*/true);
        g.add([] { /* free task, any worker */ });
    }
    bp::ThreadPool pool(4);
    bp::Exec ex;
    ex.pool = &pool;
    g.run(ex);
    ASSERT_EQ(seen.size(), 8u);
    for (const auto id : seen) EXPECT_EQ(id, caller);
}

TEST(TaskGraph, TaskExceptionPropagatesAndCancels) {
    bp::TaskGraph g;
    std::atomic<int> ran{0};
    const auto a = g.add([] { throw std::runtime_error("boom"); });
    const auto b = g.add([&] { ran.fetch_add(1); });
    g.depend(b, a); // gated on the throwing task: must be cancelled
    bp::ThreadPool pool(2);
    bp::Exec ex;
    ex.pool = &pool;
    EXPECT_THROW(g.run(ex), std::runtime_error);
    EXPECT_EQ(ran.load(), 0);
}

// ---------------------------------------------------------------------------
// Schedule ablation: taskgraph == forkjoin == serial, bitwise
// ---------------------------------------------------------------------------

namespace {

struct Fields {
    int steps = 0;
    std::vector<Real> rho, ein, u, v, x, y;
};

Fields serial_fields(bc::Hydro& h, int steps) {
    Fields f;
    f.steps = steps;
    f.rho.assign(h.state().rho.begin(), h.state().rho.end());
    f.ein.assign(h.state().ein.begin(), h.state().ein.end());
    f.u.assign(h.state().u.begin(), h.state().u.end());
    f.v.assign(h.state().v.begin(), h.state().v.end());
    f.x.assign(h.state().x.begin(), h.state().x.end());
    f.y.assign(h.state().y.begin(), h.state().y.end());
    return f;
}

/// Run a deck on the serial driver under the given pool/schedule.
Fields run_core(bs::Problem problem, Real t_end, bp::ThreadPool* pool,
                bp::Schedule schedule) {
    bc::Hydro h(std::move(problem));
    bp::Exec ex;
    ex.pool = pool;
    ex.schedule = schedule;
    h.set_exec(ex);
    const auto summary = h.run(t_end);
    return serial_fields(h, summary.steps);
}

void expect_bitwise(const Fields& a, const Fields& b,
                    const std::string& label) {
    ASSERT_EQ(a.steps, b.steps) << label;
    ASSERT_EQ(a.rho.size(), b.rho.size()) << label;
    for (std::size_t c = 0; c < a.rho.size(); ++c) {
        EXPECT_EQ(a.rho[c], b.rho[c]) << label << ": cell " << c;
        EXPECT_EQ(a.ein[c], b.ein[c]) << label << ": cell " << c;
    }
    for (std::size_t n = 0; n < a.u.size(); ++n) {
        EXPECT_EQ(a.u[n], b.u[n]) << label << ": node " << n;
        EXPECT_EQ(a.v[n], b.v[n]) << label << ": node " << n;
        EXPECT_EQ(a.x[n], b.x[n]) << label << ": node " << n;
        EXPECT_EQ(a.y[n], b.y[n]) << label << ": node " << n;
    }
}

/// The three operating modes at test scale.
bs::Problem deck(ba::Mode mode) {
    if (mode == ba::Mode::lagrange) return bs::sod(48, 4);
    if (mode == ba::Mode::eulerian) {
        auto p = bs::sod(48, 4);
        p.ale.mode = ba::Mode::eulerian;
        return p;
    }
    auto p = bs::noh(12);
    p.ale.mode = ba::Mode::ale;
    p.ale.frequency = 3;
    p.ale.smoothing_passes = 2;
    return p;
}

const char* mode_name(ba::Mode mode) {
    switch (mode) {
    case ba::Mode::lagrange: return "lagrange";
    case ba::Mode::eulerian: return "eulerian";
    default: return "ale";
    }
}

} // namespace

TEST(Sched, TaskgraphBitwiseMatchesForkjoinAndSerialAllModes) {
    const Real t_end = 0.03;
    for (const auto mode :
         {ba::Mode::lagrange, ba::Mode::eulerian, ba::Mode::ale}) {
        const auto ref =
            run_core(deck(mode), t_end, nullptr, bp::Schedule::taskgraph);
        ASSERT_GT(ref.steps, 0) << mode_name(mode);
        for (const int threads : {2, 4}) {
            bp::ThreadPool pool(threads);
            for (const auto schedule :
                 {bp::Schedule::taskgraph, bp::Schedule::forkjoin}) {
                const std::string label =
                    std::string(mode_name(mode)) + " " +
                    std::to_string(threads) + " threads " +
                    (schedule == bp::Schedule::taskgraph ? "taskgraph"
                                                         : "forkjoin");
                const auto got = run_core(deck(mode), t_end, &pool, schedule);
                expect_bitwise(got, ref, label);
            }
        }
    }
}

TEST(Sched, ExplicitTaskBlockSizesStayBitwise) {
    // The block-size knob changes the graph's shape, never its result.
    const Real t_end = 0.02;
    const auto ref =
        run_core(deck(ba::Mode::eulerian), t_end, nullptr,
                 bp::Schedule::taskgraph);
    bp::ThreadPool pool(4);
    for (const bookleaf::Index block : {1, 7, 64, 100000}) {
        bc::Hydro h(deck(ba::Mode::eulerian));
        bp::Exec ex;
        ex.pool = &pool;
        ex.schedule = bp::Schedule::taskgraph;
        ex.task_block = block;
        h.set_exec(ex);
        const auto summary = h.run(t_end);
        const auto got = serial_fields(h, summary.steps);
        expect_bitwise(got, ref, "task_block=" + std::to_string(block));
    }
}

namespace {

bd::Result run_dist(const bs::Problem& p, Real t_end, int n_ranks,
                    int n_threads, bp::Schedule schedule) {
    bd::Options opts;
    opts.n_ranks = n_ranks;
    opts.t_end = t_end;
    opts.hydro = p.hydro;
    opts.ale = p.ale;
    opts.n_threads = n_threads;
    opts.schedule = schedule;
    return bd::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
}

void expect_dist_bitwise(const bd::Result& r, const Fields& ref,
                         const std::string& label) {
    ASSERT_EQ(r.steps, ref.steps) << label;
    ASSERT_EQ(r.rho.size(), ref.rho.size()) << label;
    for (std::size_t c = 0; c < ref.rho.size(); ++c) {
        EXPECT_EQ(r.rho[c], ref.rho[c]) << label << ": cell " << c;
        EXPECT_EQ(r.ein[c], ref.ein[c]) << label << ": cell " << c;
    }
    for (std::size_t n = 0; n < ref.u.size(); ++n) {
        EXPECT_EQ(r.u[n], ref.u[n]) << label << ": node " << n;
        EXPECT_EQ(r.v[n], ref.v[n]) << label << ": node " << n;
        EXPECT_EQ(r.x[n], ref.x[n]) << label << ": node " << n;
        EXPECT_EQ(r.y[n], ref.y[n]) << label << ": node " << n;
    }
}

} // namespace

TEST(Sched, DistHybridRanksTimesThreadsBitwiseOnEulerianSod) {
    // The remap-due steps drive the distributed flux graph: the
    // ghost-gradient exchange finish releases frontier face blocks while
    // interior fluxes overlap the messages. Every (ranks x threads x
    // schedule) cell must gather the serial driver's bytes.
    const Real t_end = 0.02;
    const auto problem = deck(ba::Mode::eulerian);
    const auto ref =
        run_core(deck(ba::Mode::eulerian), t_end, nullptr,
                 bp::Schedule::taskgraph);
    ASSERT_GT(ref.steps, 0);
    for (const int n_ranks : {1, 2, 4})
        for (const int n_threads : {1, 2, 4}) {
            const auto r = run_dist(problem, t_end, n_ranks, n_threads,
                                    bp::Schedule::taskgraph);
            expect_dist_bitwise(r, ref,
                                std::to_string(n_ranks) + " ranks x " +
                                    std::to_string(n_threads) +
                                    " threads taskgraph");
        }
    // Fork-join ablation at the largest hybrid configuration.
    const auto fj = run_dist(problem, t_end, 4, 4, bp::Schedule::forkjoin);
    expect_dist_bitwise(fj, ref, "4 ranks x 4 threads forkjoin");
}

TEST(Sched, DistHybridBitwiseOnAleNoh) {
    // ALE adds the smoothing-pass node halos around the same flux graph.
    const Real t_end = 0.03;
    const auto problem = deck(ba::Mode::ale);
    const auto ref = run_core(deck(ba::Mode::ale), t_end, nullptr,
                              bp::Schedule::taskgraph);
    ASSERT_GT(ref.steps, 0);
    for (const int n_ranks : {2, 4}) {
        const auto tg = run_dist(problem, t_end, n_ranks, 4,
                                 bp::Schedule::taskgraph);
        expect_dist_bitwise(tg, ref,
                            std::to_string(n_ranks) +
                                " ranks x 4 threads taskgraph");
        const auto fj = run_dist(problem, t_end, n_ranks, 4,
                                 bp::Schedule::forkjoin);
        expect_dist_bitwise(fj, ref,
                            std::to_string(n_ranks) +
                                " ranks x 4 threads forkjoin");
    }
}

TEST(Sched, DistRejectsNonPositiveThreadCount) {
    const auto problem = deck(ba::Mode::lagrange);
    bd::Options opts;
    opts.n_ranks = 1;
    opts.t_end = 0.001;
    opts.hydro = problem.hydro;
    opts.n_threads = 0;
    EXPECT_THROW(bd::run(problem.mesh, problem.materials, problem.rho,
                         problem.ein, problem.u, problem.v, opts),
                 bookleaf::util::Error);
}
