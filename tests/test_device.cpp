// Tests for the simulated accelerator: transfer costs, roofline launches,
// dope-vector overheads, occupancy derating, statistics.
#include <gtest/gtest.h>

#include "device/device.hpp"

namespace bd = bookleaf::device;

TEST(Device, TransferCostIsLatencyPlusBandwidth) {
    bd::Device dev("gpu", 1e12, 500e9, {.latency_s = 1e-5, .bandwidth_bps = 1e10});
    const double t = dev.copy_to_device(1e8); // 100 MB
    EXPECT_NEAR(t, 1e-5 + 1e8 / 1e10, 1e-12);
    EXPECT_NEAR(dev.now(), t, 1e-15);
    EXPECT_EQ(dev.bytes_moved(), std::size_t{100000000});
}

TEST(Device, LaunchRooflineComputeBound) {
    bd::Device dev("gpu", 1e12, 1e15, {}, {.launch_latency_s = 0.0});
    // 1000 flops x 1e6 elems at 1e12 flop/s = 1e-3 s; bytes negligible.
    const double t = dev.launch(1000, 8, 1e6);
    EXPECT_NEAR(t, 1e-3, 1e-9);
}

TEST(Device, LaunchRooflineBandwidthBound) {
    bd::Device dev("gpu", 1e18, 1e11, {}, {.launch_latency_s = 0.0});
    // 800 bytes x 1e6 elems at 1e11 B/s = 8e-3 s; flops negligible.
    const double t = dev.launch(10, 800, 1e6);
    EXPECT_NEAR(t, 8e-3, 1e-9);
}

TEST(Device, OccupancyFactorDeratesThroughput) {
    bd::Device dev("gpu", 1e12, 1e15, {}, {.launch_latency_s = 0.0});
    const double t1 = dev.launch(1000, 8, 1e6, 8, 1.0);
    const double t2 = dev.launch(1000, 8, 1e6, 8, 1.3);
    EXPECT_NEAR(t2 / t1, 1.3, 1e-9);
}

TEST(Device, DopeVectorsChargePerArrayPerLaunch) {
    const bd::TransferModel pcie{.latency_s = 1e-5, .bandwidth_bps = 1e10};
    bd::Device plain("gpu", 1e12, 1e15, pcie, {.launch_latency_s = 1e-6});
    bd::Device doped("gpu", 1e12, 1e15, pcie,
                     {.launch_latency_s = 1e-6, .dope_vector_bytes = 84});
    const double t_plain = plain.launch(100, 8, 1e5, /*n_arrays=*/10);
    const double t_doped = doped.launch(100, 8, 1e5, /*n_arrays=*/10);
    // Extra cost: one small synchronous transfer per array descriptor.
    EXPECT_NEAR(t_doped - t_plain, 10 * (1e-5 + 84.0 / 1e10), 1e-12);
}

TEST(Device, StatisticsAccumulateAndReset) {
    bd::Device dev("gpu", 1e12, 1e12);
    dev.copy_to_device(1000);
    dev.launch(100, 8, 1e5);
    dev.launch(100, 8, 1e5);
    EXPECT_EQ(dev.launches(), 2);
    EXPECT_GT(dev.compute_seconds(), 0.0);
    EXPECT_GT(dev.transfer_seconds(), 0.0);
    EXPECT_NEAR(dev.now(), dev.compute_seconds() + dev.transfer_seconds() +
                               dev.overhead_seconds(),
                1e-15);
    dev.reset();
    EXPECT_EQ(dev.launches(), 0);
    EXPECT_DOUBLE_EQ(dev.now(), 0.0);
}
