// Tests for per-quad geometry: areas, gradients (checked against finite
// differences), corner-volume tiling, characteristic lengths, quality.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/geometry.hpp"
#include "mesh/generator.hpp"
#include "util/random.hpp"

namespace bg = bookleaf::geom;
namespace bm = bookleaf::mesh;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

namespace {

bg::QuadPts unit_square() {
    return {.x = {0, 1, 1, 0}, .y = {0, 0, 1, 1}};
}

bg::QuadPts random_convexish_quad(bu::SplitMix64& rng) {
    // Perturbed unit square: stays simple (non-self-intersecting) for
    // perturbations < 0.3.
    bg::QuadPts q = unit_square();
    for (int k = 0; k < 4; ++k) {
        q.x[static_cast<std::size_t>(k)] += rng.uniform(-0.25, 0.25);
        q.y[static_cast<std::size_t>(k)] += rng.uniform(-0.25, 0.25);
    }
    return q;
}

} // namespace

TEST(QuadArea, UnitSquare) { EXPECT_DOUBLE_EQ(bg::quad_area(unit_square()), 1.0); }

TEST(QuadArea, OrientationSign) {
    bg::QuadPts cw = {.x = {0, 0, 1, 1}, .y = {0, 1, 1, 0}};
    EXPECT_DOUBLE_EQ(bg::quad_area(cw), -1.0);
}

TEST(QuadArea, TranslationInvariant) {
    bu::SplitMix64 rng(5);
    auto q = random_convexish_quad(rng);
    const Real a0 = bg::quad_area(q);
    for (auto& v : q.x) v += 17.5;
    for (auto& v : q.y) v -= 3.25;
    EXPECT_NEAR(bg::quad_area(q), a0, 1e-12);
}

TEST(QuadCentroid, UnitSquareCentre) {
    const auto c = bg::quad_centroid(unit_square());
    EXPECT_DOUBLE_EQ(c.x, 0.5);
    EXPECT_DOUBLE_EQ(c.y, 0.5);
}

TEST(CornerVolumes, TileTheCell) {
    bu::SplitMix64 rng(42);
    for (int rep = 0; rep < 50; ++rep) {
        const auto q = random_convexish_quad(rng);
        const auto cv = bg::corner_volumes(q);
        const Real sum = cv[0] + cv[1] + cv[2] + cv[3];
        EXPECT_NEAR(sum, bg::quad_area(q), 1e-12) << "rep " << rep;
    }
}

TEST(CornerVolumes, EqualOnSquare) {
    const auto cv = bg::corner_volumes(unit_square());
    for (const Real v : cv) EXPECT_NEAR(v, 0.25, 1e-14);
}

TEST(AreaGradients, MatchFiniteDifferences) {
    bu::SplitMix64 rng(7);
    const Real h = 1e-6;
    for (int rep = 0; rep < 20; ++rep) {
        const auto q = random_convexish_quad(rng);
        const auto g = bg::area_gradients(q);
        for (int k = 0; k < 4; ++k) {
            auto qp = q;
            qp.x[static_cast<std::size_t>(k)] += h;
            auto qm = q;
            qm.x[static_cast<std::size_t>(k)] -= h;
            const Real fd_x = (bg::quad_area(qp) - bg::quad_area(qm)) / (2 * h);
            EXPECT_NEAR(g[static_cast<std::size_t>(k)].x, fd_x, 1e-7);

            qp = q;
            qp.y[static_cast<std::size_t>(k)] += h;
            qm = q;
            qm.y[static_cast<std::size_t>(k)] -= h;
            const Real fd_y = (bg::quad_area(qp) - bg::quad_area(qm)) / (2 * h);
            EXPECT_NEAR(g[static_cast<std::size_t>(k)].y, fd_y, 1e-7);
        }
    }
}

TEST(CornerVolumeGradients, MatchFiniteDifferences) {
    bu::SplitMix64 rng(11);
    const Real h = 1e-6;
    const auto q = random_convexish_quad(rng);
    const auto g = bg::corner_volume_gradients(q);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            auto qp = q;
            qp.x[static_cast<std::size_t>(j)] += h;
            auto qm = q;
            qm.x[static_cast<std::size_t>(j)] -= h;
            const Real fd_x = (bg::corner_volumes(qp)[static_cast<std::size_t>(i)] -
                               bg::corner_volumes(qm)[static_cast<std::size_t>(i)]) /
                              (2 * h);
            EXPECT_NEAR(g[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)].x,
                        fd_x, 1e-7)
                << "i=" << i << " j=" << j;
        }
    }
}

TEST(CornerVolumeGradients, SumToAreaGradients) {
    // Because subzones tile the cell, sum_i d(Vsz_i)/dp_j == dA/dp_j — the
    // identity that keeps sub-zonal forces momentum-conserving.
    bu::SplitMix64 rng(13);
    for (int rep = 0; rep < 20; ++rep) {
        const auto q = random_convexish_quad(rng);
        const auto g = bg::corner_volume_gradients(q);
        const auto ga = bg::area_gradients(q);
        for (std::size_t j = 0; j < 4; ++j) {
            Real sx = 0, sy = 0;
            for (std::size_t i = 0; i < 4; ++i) {
                sx += g[i][j].x;
                sy += g[i][j].y;
            }
            EXPECT_NEAR(sx, ga[j].x, 1e-12);
            EXPECT_NEAR(sy, ga[j].y, 1e-12);
        }
    }
}

TEST(CharLength, SquareAndNeedle) {
    // Square of side h: diagonals h*sqrt(2), area h^2 -> L = h/sqrt(2).
    const Real L = bg::char_length(unit_square());
    EXPECT_NEAR(L, 1.0 / std::sqrt(2.0), 1e-12);
    // Needle 1 x 0.01: area 0.01, diag ~1 -> L ~ 0.01 (shrinks correctly).
    bg::QuadPts needle = {.x = {0, 1, 1, 0}, .y = {0, 0, 0.01, 0.01}};
    EXPECT_LT(bg::char_length(needle), 0.02);
}

TEST(MinEdge, UnitSquare) {
    EXPECT_DOUBLE_EQ(bg::min_edge_length(unit_square()), 1.0);
}

TEST(Quality, UniformGridIsPerfect) {
    const auto m = bm::generate_rect({.nx = 8, .ny = 8});
    const auto q = bg::mesh_quality(m);
    EXPECT_NEAR(q.min_area, 1.0 / 64.0, 1e-12);
    EXPECT_NEAR(q.max_aspect, 1.0, 1e-12);
}

TEST(Quality, SaltzmannIsSkewedButValid) {
    bm::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 0.1, .nx = 100, .ny = 10};
    spec.map = bm::saltzmann_map;
    const auto m = bm::generate_rect(spec);
    const auto q = bg::mesh_quality(m);
    EXPECT_GT(q.min_area, 0.0);     // no inverted cells
    EXPECT_GT(q.max_aspect, 1.5);   // visibly distorted
}

TEST(Gather, ReadsCellCorners) {
    const auto m = bm::generate_rect({.nx = 2, .ny = 1});
    const auto q = bg::gather(m, m.x, m.y, 1);
    EXPECT_DOUBLE_EQ(q.x[0], 0.5);
    EXPECT_DOUBLE_EQ(q.x[1], 1.0);
    EXPECT_DOUBLE_EQ(q.y[2], 1.0);
    EXPECT_NEAR(bg::quad_area(q), 0.5, 1e-14);
}
