// Full-problem integration tests: the four BookLeaf test cases validated
// against their analytic solutions, conservation through full runs,
// Eulerian-mode operation, and driver behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analytic/exact.hpp"
#include "analytic/norms.hpp"
#include "analytic/riemann.hpp"
#include "core/driver.hpp"
#include "setup/deck.hpp"
#include "setup/problems.hpp"

namespace bc = bookleaf::core;
namespace bs = bookleaf::setup;
namespace ba = bookleaf::analytic;
using bookleaf::Index;
using bookleaf::Real;

namespace {

/// Centroid of a cell at the current node positions.
std::pair<Real, Real> centroid(const bc::Hydro& h, Index c) {
    Real cx = 0, cy = 0;
    for (int k = 0; k < 4; ++k) {
        const auto n = static_cast<std::size_t>(h.mesh().cn(c, k));
        cx += h.state().x[n] / 4;
        cy += h.state().y[n] / 4;
    }
    return {cx, cy};
}

} // namespace

TEST(SodProblem, MatchesExactRiemannSolution) {
    bc::Hydro h(bs::sod(100, 2));
    const auto summary = h.run();
    EXPECT_NEAR(summary.t_final, 0.2, 1e-12);

    const ba::Riemann exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
    const auto norms = ba::cell_error_norms(
        h.mesh(), h.state().x, h.state().y, h.state().volume, h.state().rho,
        [&](Real cx, Real) { return exact.sample((cx - 0.5) / 0.2).rho; });
    std::cout << "[ sod ] L1(rho) = " << norms.l1 << " Linf = " << norms.linf
              << "\n";
    EXPECT_LT(norms.l1, 0.02);
    // The contact and shock plateaus must be present: density between the
    // two star values somewhere.
    Real rho_min = 1e9, rho_max = 0;
    for (const Real r : h.state().rho) {
        rho_min = std::min(rho_min, r);
        rho_max = std::max(rho_max, r);
    }
    EXPECT_GT(rho_max, 0.99);  // undisturbed left state retained
    EXPECT_LT(rho_min, 0.126); // undisturbed right state retained
}

TEST(SodProblem, EnergyConservedThroughFullRun) {
    bc::Hydro h(bs::sod(100, 2));
    const auto summary = h.run();
    EXPECT_NEAR(summary.final_.total_energy(), summary.initial.total_energy(),
                1e-10 * summary.initial.total_energy());
    EXPECT_NEAR(summary.final_.mass, summary.initial.mass,
                1e-12 * summary.initial.mass);
}

TEST(SodProblem, EulerianModeMatchesExactToo) {
    auto p = bs::sod(100, 2);
    p.ale.mode = bookleaf::ale::Mode::eulerian;
    bc::Hydro h(std::move(p));
    h.run();
    // Nodes remain on the generation-time mesh.
    for (Index n = 0; n < h.mesh().n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        EXPECT_NEAR(h.state().x[ni], h.mesh().x[ni], 1e-12);
    }
    const ba::Riemann exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
    const auto norms = ba::cell_error_norms(
        h.mesh(), h.state().x, h.state().y, h.state().volume, h.state().rho,
        [&](Real cx, Real) { return exact.sample((cx - 0.5) / 0.2).rho; });
    std::cout << "[ sod eulerian ] L1(rho) = " << norms.l1 << "\n";
    EXPECT_LT(norms.l1, 0.03); // remap adds diffusion, stays close
}

TEST(NohProblem, PlateauAndPreShockProfile) {
    bc::Hydro h(bs::noh(50));
    h.run();
    const Real t = 0.6;

    // Pre-shock window r in [0.30, 0.42]: rho = 1 + t/r, clear of the
    // viscosity-smeared front (which extends ~3 cells past r = 0.2) and of
    // the outer-boundary starvation (inside r < 0.4 is clean at t = 0.6).
    const auto pre = ba::cell_error_norms(
        h.mesh(), h.state().x, h.state().y, h.state().volume, h.state().rho,
        [&](Real cx, Real cy) { return ba::noh_exact(std::hypot(cx, cy), t).rho; },
        [](Real cx, Real cy) {
            const Real r = std::hypot(cx, cy);
            return r > 0.30 && r < 0.42;
        });
    std::cout << "[ noh ] pre-shock L1 = " << pre.l1 << "\n";
    EXPECT_LT(pre.l1, 0.1);

    // Post-shock plateau (avoid the wall-heated origin): mean density in
    // 0.05 < r < 0.15 should approach 16.
    Real sum = 0;
    int count = 0;
    for (Index c = 0; c < h.mesh().n_cells(); ++c) {
        const auto [cx, cy] = centroid(h, c);
        const Real r = std::hypot(cx, cy);
        if (r > 0.05 && r < 0.15) {
            sum += h.state().rho[static_cast<std::size_t>(c)];
            ++count;
        }
    }
    ASSERT_GT(count, 0);
    const Real plateau = sum / count;
    std::cout << "[ noh ] plateau mean rho = " << plateau << "\n";
    EXPECT_GT(plateau, 13.0);
    EXPECT_LT(plateau, 17.0);
}

TEST(NohProblem, ShockPositionOneThirdT) {
    bc::Hydro h(bs::noh(50));
    h.run();
    // Ring-averaged density profile; the shock is where the average drops
    // through half the plateau value (8.0). Ring averages avoid the axis
    // wall-heating noise.
    constexpr int nbins = 60;
    std::array<Real, nbins> sum{}, cnt{};
    for (Index c = 0; c < h.mesh().n_cells(); ++c) {
        const auto [cx, cy] = centroid(h, c);
        const int b = static_cast<int>(std::hypot(cx, cy) / 0.6 * nbins);
        if (b >= 0 && b < nbins) {
            sum[static_cast<std::size_t>(b)] +=
                h.state().rho[static_cast<std::size_t>(c)];
            cnt[static_cast<std::size_t>(b)] += 1;
        }
    }
    Real shock_r = 0.0;
    for (int b = 0; b < nbins; ++b)
        if (cnt[static_cast<std::size_t>(b)] > 0 &&
            sum[static_cast<std::size_t>(b)] / cnt[static_cast<std::size_t>(b)] >
                8.0)
            shock_r = (b + Real(0.5)) * Real(0.01);
    std::cout << "[ noh ] shock at r = " << shock_r << " (exact 0.2)\n";
    EXPECT_NEAR(shock_r, 0.2, 0.05);
}

TEST(NohProblem, WallHeatingArtifactIsPresent) {
    // The paper (§III-B): "Noh's problem is used to highlight the
    // wall-heating issue commonly found with artificial viscosity
    // methods." The signature is a density deficit along the reflective
    // axes relative to the ring average at the same radius.
    // The signature is at the focus: the innermost cell shows an internal
    // energy EXCESS (the spurious "heating") and a matching density
    // deficit, while the pressure stays near the exact 16/3.
    bc::Hydro h(bs::noh(50));
    h.run();
    Index innermost = 0;
    Real best_r = std::numeric_limits<Real>::max();
    for (Index c = 0; c < h.mesh().n_cells(); ++c) {
        const auto [cx, cy] = centroid(h, c);
        const Real r = std::hypot(cx, cy);
        if (r < best_r) {
            best_r = r;
            innermost = c;
        }
    }
    const Real rho0 = h.state().rho[static_cast<std::size_t>(innermost)];
    const Real ein0 = h.state().ein[static_cast<std::size_t>(innermost)];
    std::cout << "[ noh ] origin rho = " << rho0 << " (exact 16), ein = "
              << ein0 << " (exact 0.5)\n";
    EXPECT_LT(rho0, 13.0); // density deficit
    EXPECT_GT(ein0, 0.6);  // spurious heating
}

TEST(SedovProblem, ShockRadiusScalesAsSqrtT) {
    bc::Hydro h(bs::sedov(40));
    // Shock radius at two times via the peak-density ring on the x-axis.
    auto shock_radius = [&]() {
        Real best_r = 0, best_rho = 0;
        for (Index c = 0; c < h.mesh().n_cells(); ++c) {
            const auto [cx, cy] = centroid(h, c);
            if (cy > 0.05) continue; // x-axis row
            const Real rho = h.state().rho[static_cast<std::size_t>(c)];
            if (rho > best_rho) {
                best_rho = rho;
                best_r = cx;
            }
        }
        return best_r;
    };
    h.run(0.3);
    const Real r1 = shock_radius();
    h.run(0.9);
    const Real r2 = shock_radius();
    const Real exponent = ba::sedov_exponent(0.3, r1, 0.9, r2);
    std::cout << "[ sedov ] R(0.3) = " << r1 << " R(0.9) = " << r2
              << " exponent = " << exponent << " (exact 0.5)\n";
    EXPECT_NEAR(exponent, 0.5, 0.12);
    EXPECT_GT(r1, 0.1);
}

TEST(SedovProblem, BlastIsDiagonallySymmetric) {
    bc::Hydro h(bs::sedov(30));
    h.run(0.3);
    // rho(x, y) == rho(y, x) on the Cartesian mesh (cell (i,j) <-> (j,i)).
    const Index n = 30;
    for (Index j = 0; j < n; ++j)
        for (Index i = 0; i < j; ++i) {
            const Real a = h.state().rho[static_cast<std::size_t>(j * n + i)];
            const Real b = h.state().rho[static_cast<std::size_t>(i * n + j)];
            EXPECT_NEAR(a, b, 1e-9) << i << "," << j;
        }
}

TEST(SaltzmannProblem, StrongShockStateBehindPiston) {
    bc::Hydro h(bs::saltzmann(100, 10));
    h.run();
    const auto exact = ba::piston_exact(5.0 / 3.0, 1.0, 1.0);
    // At t = 0.6 the piston sits at x = 0.6, the shock at x = 0.8. The
    // shocked region (0.62 < x < 0.76, margins for smearing) must be near
    // rho = 4 with u ~ 1.
    Real sum_rho = 0;
    int count = 0;
    for (Index c = 0; c < h.mesh().n_cells(); ++c) {
        const auto [cx, cy] = centroid(h, c);
        if (cx > 0.64 && cx < 0.76) {
            sum_rho += h.state().rho[static_cast<std::size_t>(c)];
            ++count;
        }
    }
    ASSERT_GT(count, 0);
    const Real rho_mean = sum_rho / count;
    std::cout << "[ saltzmann ] shocked rho mean = " << rho_mean
              << " (exact " << exact.rho_shocked << ")\n";
    EXPECT_NEAR(rho_mean, exact.rho_shocked, 0.5);

    // Shock position: outermost x with rho > 2.
    Real shock_x = 0;
    for (Index c = 0; c < h.mesh().n_cells(); ++c) {
        const auto [cx, cy] = centroid(h, c);
        if (h.state().rho[static_cast<std::size_t>(c)] > 2.0)
            shock_x = std::max(shock_x, cx);
    }
    std::cout << "[ saltzmann ] shock at x = " << shock_x << " (exact 0.8)\n";
    EXPECT_NEAR(shock_x, 0.8, 0.05);

    // No tangling: every volume positive (the hourglass control held).
    for (const Real v : h.state().volume) EXPECT_GT(v, 0.0);
}

// ---------------------------------------------------------------------------
// Scenario-diversity smoke tests: the shipped sedov.in and saltzmann.in
// decks, end to end against the analytic module (sod/noh deck
// configurations are covered by the Eulerian/ALE driver suites).
// ---------------------------------------------------------------------------

TEST(SedovDeck, ShockRadiusFollowsSqrtTScaling) {
    // data/sedov.in verbatim (name, resolution, dt_initial); the run is
    // sampled at two early times rather than the deck's full t_end = 1 to
    // keep the suite fast — the scaling exponent is time-window agnostic.
    auto problem = bs::make_problem(
        bs::Deck::parse_file(std::string(BOOKLEAF_DATA_DIR) + "/sedov.in"));
    EXPECT_EQ(problem.name, "sedov");
    EXPECT_EQ(problem.t_end, 1.0);
    const Index n = 45; // the deck's resolution
    ASSERT_EQ(problem.mesh.n_cells(), n * n);

    bc::Hydro h(std::move(problem));
    const auto shock_radius = [&]() {
        Real best_r = 0, best_rho = 0;
        for (Index c = 0; c < h.mesh().n_cells(); ++c) {
            const auto [cx, cy] = centroid(h, c);
            if (cy > 0.05) continue; // x-axis row
            const Real rho = h.state().rho[static_cast<std::size_t>(c)];
            if (rho > best_rho) {
                best_rho = rho;
                best_r = cx;
            }
        }
        return best_r;
    };
    h.run(0.3);
    const Real r1 = shock_radius();
    h.run(0.9);
    const Real r2 = shock_radius();
    const Real exponent = ba::sedov_exponent(0.3, r1, 0.9, r2);
    std::cout << "[ sedov.in ] R(0.3) = " << r1 << " R(0.9) = " << r2
              << " exponent = " << exponent << " (exact 0.5)\n";
    EXPECT_NEAR(exponent, 0.5, 0.12);
    EXPECT_GT(r1, 0.1);
    EXPECT_GT(r2, r1);
}

TEST(SaltzmannDeck, PistonPositionAndShockTrackTheDrive) {
    // data/saltzmann.in verbatim: the skewed-mesh piston problem. The
    // piston wall moves at exactly u = 1 (apply_velocity_bc pins it), so
    // its position is t to round-off; the shock runs ahead at
    // D = (gamma + 1)/2 * vp = 4/3 with a density jump of 4.
    auto problem = bs::make_problem(bs::Deck::parse_file(
        std::string(BOOKLEAF_DATA_DIR) + "/saltzmann.in"));
    EXPECT_EQ(problem.name, "saltzmann");
    EXPECT_EQ(problem.hydro.piston_u, 1.0);

    bc::Hydro h(std::move(problem));
    const Real t = 0.3; // mid-run: shock well formed, mesh not yet taxed
    h.run(t);

    const auto exact = ba::piston_exact(5.0 / 3.0, 1.0, 1.0);
    int piston_nodes = 0;
    for (Index n = 0; n < h.mesh().n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (!(h.mesh().node_bc[ni] & bookleaf::mesh::bc::piston)) continue;
        ++piston_nodes;
        EXPECT_NEAR(h.state().x[ni], t, 1e-9) << "piston node " << n;
    }
    EXPECT_GT(piston_nodes, 0);

    // Shock position: outermost x with rho > 2 sits at D * t.
    Real shock_x = 0;
    Real sum_rho = 0;
    int shocked = 0;
    for (Index c = 0; c < h.mesh().n_cells(); ++c) {
        const auto [cx, cy] = centroid(h, c);
        if (h.state().rho[static_cast<std::size_t>(c)] > 2.0)
            shock_x = std::max(shock_x, cx);
        if (cx > t + 0.02 && cx < exact.shock_speed * t - 0.02) {
            sum_rho += h.state().rho[static_cast<std::size_t>(c)];
            ++shocked;
        }
    }
    std::cout << "[ saltzmann.in ] piston at " << t << ", shock at x = "
              << shock_x << " (exact " << exact.shock_speed * t << ")\n";
    EXPECT_NEAR(shock_x, exact.shock_speed * t, 0.05);
    ASSERT_GT(shocked, 0);
    EXPECT_NEAR(sum_rho / shocked, exact.rho_shocked, 0.5);
}

TEST(Driver, StepInfoSequence) {
    bc::Hydro h(bs::sod(32, 2));
    const auto s1 = h.step();
    EXPECT_EQ(s1.step, 1);
    EXPECT_EQ(s1.dt_reason, "initial");
    EXPECT_DOUBLE_EQ(s1.dt, h.problem().hydro.dt_initial);
    const auto s2 = h.step();
    EXPECT_EQ(s2.step, 2);
    EXPECT_NE(s2.dt_reason, "initial");
    EXPECT_GT(s2.t, s1.t);
}

TEST(Driver, MaxStepsRespected) {
    bc::Hydro h(bs::sod(32, 2));
    const auto summary = h.run(std::nullopt, 5);
    EXPECT_EQ(summary.steps, 5);
    EXPECT_LT(summary.t_final, 0.2);
}

TEST(Driver, RunStopsExactlyAtTEnd) {
    bc::Hydro h(bs::sod(32, 2));
    const auto summary = h.run(0.05);
    EXPECT_NEAR(summary.t_final, 0.05, 1e-12);
}

TEST(Driver, ContinuationRunIsNotGrowthPoisonedByTEndClamp) {
    // Regression: step_clamped used to store the t_end-clamped dt as the
    // growth reference, so run(t1) ending in a tiny clamped step left a
    // follow-on run(t2) growth-limited from that tiny dt (1.02x per step
    // from near zero). The clamp must apply to the step only.
    // A probe finds a natural (unclamped) step time, then t1 is placed
    // just past it to force an ~1e-7 final clamped step.
    bc::Hydro probe(bs::sod(32, 2));
    while (probe.time() < 0.03) probe.step();
    const Real t1 = probe.time() + 1e-7;
    const Real dt_natural = probe.step().dt; // next unclamped controller dt

    bc::Hydro cont(bs::sod(32, 2));
    cont.run(t1);
    EXPECT_NEAR(cont.time(), t1, 1e-12);
    const auto resumed = cont.step();
    // With the bug the resumed dt is <= 1.02 * 1e-7; fixed, it recovers
    // to the controller's natural value immediately.
    EXPECT_GT(resumed.dt, 100.0 * 1e-7);
    EXPECT_GT(resumed.dt, 0.5 * dt_natural);
}

TEST(Driver, ContinuationMatchesSingleRunStepForStep) {
    // When t1 lands exactly on a natural step boundary, run(t1); run(t2)
    // must reproduce a single run(t2) bit for bit: same step count, same
    // times, same fields — the intermediate stop is unobservable.
    bc::Hydro probe(bs::sod(32, 2));
    while (probe.time() < 0.02) probe.step();
    const Real t1 = probe.time();

    bc::Hydro split(bs::sod(32, 2));
    split.run(t1);
    split.run(0.05);

    bc::Hydro single(bs::sod(32, 2));
    single.run(0.05);

    ASSERT_EQ(split.steps(), single.steps());
    EXPECT_EQ(split.time(), single.time());
    const auto& a = split.state();
    const auto& b = single.state();
    for (std::size_t c = 0; c < a.rho.size(); ++c) {
        EXPECT_EQ(a.rho[c], b.rho[c]) << "cell " << c;
        EXPECT_EQ(a.ein[c], b.ein[c]) << "cell " << c;
    }
    for (std::size_t n = 0; n < a.u.size(); ++n) {
        EXPECT_EQ(a.u[n], b.u[n]) << "node " << n;
        EXPECT_EQ(a.v[n], b.v[n]) << "node " << n;
    }
}

TEST(Driver, ProfilerCoversAllLagrangianKernels) {
    bc::Hydro h(bs::sod(32, 2));
    h.run(std::nullopt, 10);
    using K = bookleaf::util::Kernel;
    for (const auto k : {K::getdt, K::getq, K::getforce, K::getacc, K::getgeom,
                         K::getrho, K::getein, K::getpc})
        EXPECT_GT(h.profiler().stats(k).calls, 0)
            << bookleaf::util::kernel_name(k);
}

TEST(Driver, ThreadedRunMatchesSerialOnFullProblem) {
    auto run_with = [](bookleaf::par::ThreadPool* pool, bool colored) {
        bc::Hydro h(bs::sod(64, 2));
        if (pool) {
            bookleaf::par::Exec ex;
            ex.pool = pool;
            h.set_exec(ex);
            if (colored) h.enable_colored_scatter();
        }
        h.run(0.05);
        return h.state().rho;
    };
    const auto serial = run_with(nullptr, false);
    bookleaf::par::ThreadPool pool(4);
    const auto hybrid = run_with(&pool, false);
    const auto colored = run_with(&pool, true);
    for (std::size_t c = 0; c < serial.size(); ++c) {
        EXPECT_DOUBLE_EQ(hybrid[c], serial[c]);
        EXPECT_NEAR(colored[c], serial[c], 1e-10);
    }
}

// ---------------------------------------------------------------------------
// Time-history CSV output ([io] history = <path>)
// ---------------------------------------------------------------------------

TEST(Driver, HistoryCsvRecordsConservedTotals) {
    const std::string path = "/tmp/bookleaf_test_history.csv";
    bc::RunSummary summary;
    {
        // Scoped so the CSV writer flushes before the file is read back.
        auto problem = bs::sod(24, 2);
        problem.history = path;
        bc::Hydro h(std::move(problem));
        summary = h.run(std::nullopt, 25);
    }

    std::ifstream in(path);
    ASSERT_TRUE(static_cast<bool>(in));
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header, "step,t,dt,mass,internal_energy,kinetic_energy");

    struct Row {
        double step, t, dt, mass, internal, kinetic;
    };
    std::vector<Row> rows;
    std::string line;
    while (std::getline(in, line)) {
        Row r{};
        ASSERT_EQ(std::sscanf(line.c_str(), "%lf,%lf,%lf,%lf,%lf,%lf", &r.step,
                              &r.t, &r.dt, &r.mass, &r.internal, &r.kinetic),
                  6)
            << line;
        rows.push_back(r);
    }
    // One baseline row (step 0) plus one row per step.
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(summary.steps) + 1);
    EXPECT_EQ(rows.front().step, 0);
    EXPECT_EQ(rows.front().t, 0.0);
    EXPECT_EQ(rows.back().step, summary.steps);
    EXPECT_NEAR(rows.back().t, summary.t_final, 1e-12);

    // Conservation along the whole history: Lagrangian mass is constant
    // and total energy drifts only at round-off.
    const double mass0 = rows.front().mass;
    const double e0 = rows.front().internal + rows.front().kinetic;
    for (const auto& r : rows) {
        EXPECT_NEAR(r.mass, mass0, 1e-10 * mass0); // CSV rounds at 12 digits
        EXPECT_NEAR(r.internal + r.kinetic, e0, 1e-9 * std::abs(e0));
        EXPECT_GE(r.t, 0.0);
    }
    // t is strictly increasing after the baseline row.
    for (std::size_t i = 2; i < rows.size(); ++i)
        EXPECT_GT(rows[i].t, rows[i - 1].t);

    std::remove(path.c_str());
}

TEST(Driver, NoHistoryFileWithoutDeckKey) {
    const std::string path = "/tmp/bookleaf_test_no_history.csv";
    std::remove(path.c_str());
    bc::Hydro h(bs::sod(16, 2));
    h.run(std::nullopt, 3);
    std::ifstream in(path);
    EXPECT_FALSE(static_cast<bool>(in));
}
