// Tests for the partitioners (RCB, multilevel) and subdomain extraction.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "mesh/generator.hpp"
#include "part/partition.hpp"
#include "part/subdomain.hpp"

namespace bm = bookleaf::mesh;
namespace bp = bookleaf::part;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

namespace {

void check_partition_is_valid(const std::vector<Index>& part, Index n_cells,
                              int n_parts) {
    ASSERT_EQ(part.size(), static_cast<std::size_t>(n_cells));
    std::vector<int> counts(static_cast<std::size_t>(n_parts), 0);
    for (const Index p : part) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, n_parts);
        counts[static_cast<std::size_t>(p)]++;
    }
    for (const int c : counts) EXPECT_GT(c, 0) << "empty part";
}

} // namespace

TEST(DualGraph, StructuredGridDegrees) {
    const auto m = bm::generate_rect({.nx = 4, .ny = 4});
    const auto g = bp::dual_graph(m);
    EXPECT_EQ(g.n_vertices(), 16);
    // Degree census: 4 corners (2), 8 edges (3), 4 interior (4).
    std::multiset<Index> degrees;
    for (Index v = 0; v < 16; ++v)
        degrees.insert(g.xadj[static_cast<std::size_t>(v) + 1] -
                       g.xadj[static_cast<std::size_t>(v)]);
    EXPECT_EQ(degrees.count(2), 4u);
    EXPECT_EQ(degrees.count(3), 8u);
    EXPECT_EQ(degrees.count(4), 4u);
}

class PartitionerProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PartitionerProperty, RcbBalancedAndComplete) {
    const auto& [nx, ny, n_parts] = GetParam();
    const auto m = bm::generate_rect(
        {.nx = static_cast<Index>(nx), .ny = static_cast<Index>(ny)});
    const auto part = bp::rcb(m, n_parts);
    check_partition_is_valid(part, m.n_cells(), n_parts);
    const auto q = bp::quality(m, part, n_parts);
    EXPECT_LE(q.imbalance, 1.34) << "RCB proportional split bound";
}

TEST_P(PartitionerProperty, MultilevelBalancedAndComplete) {
    const auto& [nx, ny, n_parts] = GetParam();
    const auto m = bm::generate_rect(
        {.nx = static_cast<Index>(nx), .ny = static_cast<Index>(ny)});
    const auto part = bp::multilevel(m, n_parts);
    check_partition_is_valid(part, m.n_cells(), n_parts);
    const auto q = bp::quality(m, part, n_parts);
    EXPECT_LE(q.imbalance, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PartitionerProperty,
                         ::testing::Values(std::make_tuple(8, 8, 2),
                                           std::make_tuple(16, 16, 4),
                                           std::make_tuple(16, 16, 7),
                                           std::make_tuple(32, 8, 8),
                                           std::make_tuple(20, 20, 3),
                                           std::make_tuple(12, 40, 6)));

TEST(Rcb, SinglePartTrivial) {
    const auto m = bm::generate_rect({.nx = 4, .ny = 4});
    const auto part = bp::rcb(m, 1);
    for (const Index p : part) EXPECT_EQ(p, 0);
}

TEST(Rcb, TwoPartsSplitLongestAxis) {
    // A 16x2 strip must split in x.
    const auto m = bm::generate_rect({.x0 = 0, .x1 = 8, .y0 = 0, .y1 = 1,
                                      .nx = 16, .ny = 2});
    const auto part = bp::rcb(m, 2);
    for (Index c = 0; c < m.n_cells(); ++c) {
        Real cx = 0;
        for (int k = 0; k < 4; ++k)
            cx += m.x[static_cast<std::size_t>(m.cn(c, k))] / 4;
        EXPECT_EQ(part[static_cast<std::size_t>(c)], cx < 4.0 ? 0 : 1);
    }
}

TEST(Rcb, EdgeCutNearOptimalOnGrid) {
    // Optimal 2-way cut of a 16x16 grid is a straight line: 16 faces.
    const auto m = bm::generate_rect({.nx = 16, .ny = 16});
    const auto q = bp::quality(m, bp::rcb(m, 2), 2);
    EXPECT_EQ(q.edge_cut, 16);
}

TEST(Multilevel, EdgeCutCompetitiveWithRcb) {
    const auto m = bm::generate_rect({.nx = 24, .ny = 24});
    const auto q_ml = bp::quality(m, bp::multilevel(m, 4), 4);
    const auto q_rcb = bp::quality(m, bp::rcb(m, 4), 4);
    // The multilevel partitioner should be within 2x of RCB's cut on a
    // uniform grid (typically it matches or beats it).
    EXPECT_LE(q_ml.edge_cut, 2 * q_rcb.edge_cut);
}

TEST(Partitioners, RejectBadInput) {
    const auto m = bm::generate_rect({.nx = 2, .ny = 2});
    EXPECT_THROW((void)bp::rcb(m, 0), bu::Error);
    EXPECT_THROW((void)bp::rcb(m, 5), bu::Error);
    EXPECT_THROW((void)bp::multilevel(m, 0), bu::Error);
}

// ---------------------------------------------------------------------------
// Subdomain extraction
// ---------------------------------------------------------------------------

TEST(Subdomain, OwnedCellsPartitionGlobalMesh) {
    const auto m = bm::generate_rect({.nx = 8, .ny = 8});
    const auto part = bp::rcb(m, 4);
    const auto subs = bp::decompose(m, part, 4);
    std::vector<int> owned_count(static_cast<std::size_t>(m.n_cells()), 0);
    for (const auto& sub : subs)
        for (Index lc = 0; lc < sub.n_owned_cells; ++lc)
            owned_count[static_cast<std::size_t>(
                sub.local_cells[static_cast<std::size_t>(lc)])]++;
    for (const int c : owned_count) EXPECT_EQ(c, 1);
}

TEST(Subdomain, LocalMeshesAreConsistent) {
    const auto m = bm::generate_rect({.nx = 10, .ny = 6});
    const auto part = bp::multilevel(m, 3);
    const auto subs = bp::decompose(m, part, 3);
    for (const auto& sub : subs) {
        EXPECT_EQ(bm::check_consistency(sub.local), "");
        EXPECT_GT(sub.n_owned_cells, 0);
        // Ghosts exist for any multi-part decomposition of a connected mesh.
        EXPECT_GT(sub.local_cells.size(),
                  static_cast<std::size_t>(sub.n_owned_cells));
    }
}

TEST(Subdomain, GhostLayerIsNodeComplete) {
    // Every node of an owned cell must have ALL its global incident cells
    // present locally (needed for exact force assembly).
    const auto m = bm::generate_rect({.nx = 9, .ny = 9});
    const auto part = bp::rcb(m, 4);
    const auto subs = bp::decompose(m, part, 4);
    for (const auto& sub : subs) {
        std::set<Index> local_cell_set(sub.local_cells.begin(),
                                       sub.local_cells.end());
        for (Index lc = 0; lc < sub.n_owned_cells; ++lc) {
            for (int k = 0; k < 4; ++k) {
                const Index ln = sub.local.cn(lc, k);
                const Index gn = sub.local_nodes[static_cast<std::size_t>(ln)];
                for (const Index gc : m.node_cells.row(gn))
                    EXPECT_TRUE(local_cell_set.count(gc))
                        << "rank " << sub.rank << " missing ghost " << gc;
            }
        }
    }
}

TEST(Subdomain, NodeOwnershipIsExclusiveAndComplete) {
    const auto m = bm::generate_rect({.nx = 8, .ny = 8});
    const auto part = bp::rcb(m, 4);
    const auto subs = bp::decompose(m, part, 4);
    std::vector<int> owners(static_cast<std::size_t>(m.n_nodes()), 0);
    for (const auto& sub : subs)
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln)
            if (sub.node_owned[ln])
                owners[static_cast<std::size_t>(sub.local_nodes[ln])]++;
    for (const int o : owners) EXPECT_EQ(o, 1);
}

TEST(Subdomain, OwnedNodeCountsSumToTheGlobalMesh) {
    // n_owned_nodes is the checkpoint gather's slice size: across ranks
    // the owned slices must tile the global node set exactly.
    const auto m = bm::generate_rect({.nx = 8, .ny = 8});
    for (const int n_parts : {1, 2, 4, 5}) {
        const auto subs = bp::decompose(m, bp::rcb(m, n_parts), n_parts);
        Index total = 0;
        for (const auto& sub : subs) {
            EXPECT_GT(sub.n_owned_nodes(), 0);
            total += sub.n_owned_nodes();
        }
        EXPECT_EQ(total, m.n_nodes()) << n_parts << " parts";
    }
}

TEST(Subdomain, SchedulesAreMutuallyConsistent) {
    // For each (sender, receiver) pair the flattened send list must map to
    // the same global entities as the receiver's recv list.
    const auto m = bm::generate_rect({.nx = 8, .ny = 8});
    const auto part = bp::rcb(m, 4);
    const auto subs = bp::decompose(m, part, 4);

    for (const auto& sub : subs) {
        for (const auto& peer : sub.cell_schedule.peers) {
            if (peer.recv_items.empty()) continue;
            // Find the matching send entry on the peer rank.
            const auto& other = subs[static_cast<std::size_t>(peer.rank)];
            const bookleaf::typhon::ExchangeSchedule::Peer* match = nullptr;
            for (const auto& p : other.cell_schedule.peers)
                if (p.rank == sub.rank && !p.send_items.empty()) match = &p;
            ASSERT_NE(match, nullptr);
            ASSERT_EQ(match->send_items.size(), peer.recv_items.size());
            for (std::size_t i = 0; i < peer.recv_items.size(); ++i) {
                const Index g_recv = sub.local_cells[static_cast<std::size_t>(
                    peer.recv_items[i])];
                const Index g_send = other.local_cells[static_cast<std::size_t>(
                    match->send_items[i])];
                EXPECT_EQ(g_recv, g_send);
            }
        }
    }
}

TEST(Subdomain, BcMasksSurviveExtraction) {
    const auto m = bm::generate_rect({.nx = 6, .ny = 6});
    const auto part = bp::rcb(m, 2);
    const auto subs = bp::decompose(m, part, 2);
    for (const auto& sub : subs)
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln)
            EXPECT_EQ(sub.local.node_bc[ln],
                      m.node_bc[static_cast<std::size_t>(sub.local_nodes[ln])]);
}

// ---------------------------------------------------------------------------
// Boundary/interior overlap sets
// ---------------------------------------------------------------------------

TEST(SubdomainOverlapSets, CellsAndNodesArePartitioned) {
    const auto m = bm::generate_rect({.nx = 12, .ny = 10});
    const auto part = bp::rcb(m, 4);
    const auto subs = bp::decompose(m, part, 4);
    for (const auto& sub : subs) {
        std::vector<int> cell_seen(sub.local_cells.size(), 0);
        for (const Index c : sub.boundary_cells)
            cell_seen[static_cast<std::size_t>(c)]++;
        for (const Index c : sub.interior_cells)
            cell_seen[static_cast<std::size_t>(c)]++;
        for (const int s : cell_seen) EXPECT_EQ(s, 1);

        std::vector<int> node_seen(sub.local_nodes.size(), 0);
        for (const Index n : sub.boundary_nodes)
            node_seen[static_cast<std::size_t>(n)]++;
        for (const Index n : sub.interior_nodes)
            node_seen[static_cast<std::size_t>(n)]++;
        for (const int s : node_seen) EXPECT_EQ(s, 1);
    }
}

TEST(SubdomainOverlapSets, InteriorCellsAreOwnedAndStencilClosed) {
    // An interior cell must be owned, and neither it nor any face
    // neighbour may touch a ghost cell — that is exactly the condition
    // under which its viscosity/force stencil reads only owned-fresh data
    // while halo messages are in flight.
    const auto m = bm::generate_rect({.nx = 11, .ny = 9});
    const auto part = bp::multilevel(m, 3);
    const auto subs = bp::decompose(m, part, 3);
    for (const auto& sub : subs) {
        const auto& lm = sub.local;
        std::vector<std::uint8_t> node_near_ghost(sub.local_nodes.size(), 0);
        for (Index c = sub.n_owned_cells;
             c < static_cast<Index>(sub.local_cells.size()); ++c)
            for (int k = 0; k < 4; ++k)
                node_near_ghost[static_cast<std::size_t>(lm.cn(c, k))] = 1;
        auto near = [&](Index c) {
            for (int k = 0; k < 4; ++k)
                if (node_near_ghost[static_cast<std::size_t>(lm.cn(c, k))])
                    return true;
            return false;
        };
        for (const Index c : sub.interior_cells) {
            EXPECT_LT(c, sub.n_owned_cells);
            EXPECT_FALSE(near(c));
            for (int k = 0; k < 4; ++k) {
                const Index nb = lm.neighbor(c, k);
                if (nb != bookleaf::no_index) EXPECT_FALSE(near(nb));
            }
        }
    }
}

TEST(SubdomainOverlapSets, CornerSendCellsAreBoundary) {
    // Every owned cell packed for a peer's ghost layer must be in the
    // boundary set: the overlapped corrector computes boundary forces
    // first and packs immediately after.
    const auto m = bm::generate_rect({.nx = 10, .ny = 10});
    const auto part = bp::rcb(m, 4);
    const auto subs = bp::decompose(m, part, 4);
    for (const auto& sub : subs) {
        std::set<Index> boundary(sub.boundary_cells.begin(),
                                 sub.boundary_cells.end());
        for (const auto& peer : sub.corner_schedule.peers)
            for (const Index item : peer.send_items) {
                const Index cell = item / 4;
                EXPECT_LT(cell, sub.n_owned_cells);
                EXPECT_TRUE(boundary.count(cell))
                    << "rank " << sub.rank << " sends non-boundary cell "
                    << cell;
            }
    }
}

TEST(SubdomainOverlapSets, InteriorNodesTouchNoGhostCell) {
    // The corner-force gather at an interior node must read no ghost
    // corner (it runs before the pre-acceleration halo completes), and
    // every node refreshed by the node halo must be classified boundary.
    const auto m = bm::generate_rect({.nx = 9, .ny = 7});
    const auto part = bp::rcb(m, 4);
    const auto subs = bp::decompose(m, part, 4);
    for (const auto& sub : subs) {
        const auto& lm = sub.local;
        std::set<Index> interior(sub.interior_nodes.begin(),
                                 sub.interior_nodes.end());
        for (const Index n : sub.interior_nodes)
            for (const Index c : lm.node_cells.row(n))
                EXPECT_LT(c, sub.n_owned_cells)
                    << "interior node " << n << " touches ghost cell " << c;
        for (const auto& peer : sub.node_schedule.peers)
            for (const Index item : peer.recv_items)
                EXPECT_FALSE(interior.count(item))
                    << "halo-refreshed node " << item << " marked interior";
    }
}

TEST(SubdomainOverlapSets, SingleRankIsAllInterior) {
    const auto m = bm::generate_rect({.nx = 6, .ny = 6});
    const auto subs = bp::decompose(
        m, std::vector<Index>(static_cast<std::size_t>(m.n_cells()), 0), 1);
    EXPECT_TRUE(subs[0].boundary_cells.empty());
    EXPECT_TRUE(subs[0].boundary_nodes.empty());
    EXPECT_EQ(subs[0].interior_cells.size(),
              static_cast<std::size_t>(m.n_cells()));
    EXPECT_EQ(subs[0].interior_nodes.size(),
              static_cast<std::size_t>(m.n_nodes()));
}
