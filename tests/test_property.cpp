// Property-style sweeps across the whole system: run invariants for every
// problem, mesh-numbering invariance of the kernels, grid convergence,
// ALE-mode operation, distributed rank sweeps, failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>

#include "analytic/norms.hpp"
#include "analytic/riemann.hpp"
#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "mesh/generator.hpp"
#include "part/partition.hpp"
#include "setup/deck.hpp"
#include "setup/problems.hpp"
#include "util/random.hpp"

namespace bc = bookleaf::core;
namespace bs = bookleaf::setup;
namespace bh = bookleaf::hydro;
namespace bm = bookleaf::mesh;
namespace ba = bookleaf::analytic;
namespace bu = bookleaf::util;
using bookleaf::Index;
using bookleaf::Real;

// ---------------------------------------------------------------------------
// Run invariants for every shipped problem (parameterized sweep).
// ---------------------------------------------------------------------------

struct ProblemCase {
    const char* name;
    int resolution;
    Real t_end;       ///< shortened for test speed
    bool conserves_energy; ///< false when a piston does work on the gas
};

class ProblemInvariants : public ::testing::TestWithParam<ProblemCase> {};

TEST_P(ProblemInvariants, StateStaysPhysicalAndConservative) {
    const auto& param = GetParam();
    auto problem = bs::by_name(param.name, param.resolution);
    problem.t_end = param.t_end;
    bc::Hydro h(std::move(problem));
    const auto summary = h.run();

    EXPECT_GT(summary.steps, 0);
    EXPECT_NEAR(summary.t_final, param.t_end, 1e-12);

    // Physicality: positive density and volume everywhere; finite state.
    for (Index c = 0; c < h.state().n_cells(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        EXPECT_GT(h.state().rho[ci], 0.0) << param.name << " cell " << c;
        EXPECT_GT(h.state().volume[ci], 0.0);
        EXPECT_TRUE(std::isfinite(h.state().ein[ci]));
        EXPECT_TRUE(std::isfinite(h.state().pre[ci]));
    }
    for (Index n = 0; n < h.state().n_nodes(); ++n) {
        EXPECT_TRUE(std::isfinite(h.state().u[static_cast<std::size_t>(n)]));
        EXPECT_TRUE(std::isfinite(h.state().v[static_cast<std::size_t>(n)]));
    }

    // Mass is always conserved (Lagrangian masses are constant).
    EXPECT_NEAR(summary.final_.mass, summary.initial.mass,
                1e-12 * summary.initial.mass);
    if (param.conserves_energy) {
        EXPECT_NEAR(summary.final_.total_energy(),
                    summary.initial.total_energy(),
                    1e-9 * std::abs(summary.initial.total_energy()));
    } else {
        // The piston does positive work on the gas.
        EXPECT_GT(summary.final_.total_energy(),
                  summary.initial.total_energy());
    }

    // Kinematic BCs held to the end.
    for (Index n = 0; n < h.mesh().n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        const auto mask = h.mesh().node_bc[ni];
        if (mask & bm::bc::piston) {
            EXPECT_DOUBLE_EQ(h.state().u[ni], h.problem().hydro.piston_u);
        } else {
            if (mask & bm::bc::fix_u) EXPECT_DOUBLE_EQ(h.state().u[ni], 0.0);
            if (mask & bm::bc::fix_v) EXPECT_DOUBLE_EQ(h.state().v[ni], 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProblems, ProblemInvariants,
    ::testing::Values(ProblemCase{"sod", 64, 0.1, true},
                      ProblemCase{"noh", 24, 0.15, true},
                      ProblemCase{"sedov", 20, 0.05, true},
                      ProblemCase{"saltzmann", 40, 0.2, false}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// Mesh-numbering invariance: the kernels must not depend on cell/node
// ordering (the mesh is genuinely unstructured).
// ---------------------------------------------------------------------------

class NumberingInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NumberingInvariance, LagrangianStepIsOrderIndependent) {
    // Build the same physical problem on the original and on a randomly
    // renumbered mesh; after N steps the states must agree cell-by-cell
    // (matched through the permutation) to round-off-accumulation level.
    bu::SplitMix64 rng(GetParam());
    auto problem = bs::sod(24, 3);

    // Renumber.
    bm::Mesh permuted = bm::permute(problem.mesh, rng);
    // Locate each permuted cell's original id via centroid matching.
    auto centroid_key = [](const bm::Mesh& m, Index c) {
        Real cx = 0, cy = 0;
        for (int k = 0; k < 4; ++k) {
            const auto n = static_cast<std::size_t>(m.cn(c, k));
            cx += m.x[n] / 4;
            cy += m.y[n] / 4;
        }
        return std::make_pair(std::lround(cx * 1e6), std::lround(cy * 1e6));
    };
    std::map<std::pair<long, long>, Index> original_by_centroid;
    for (Index c = 0; c < problem.mesh.n_cells(); ++c)
        original_by_centroid[centroid_key(problem.mesh, c)] = c;

    bs::Problem problem_perm;
    problem_perm.name = "sod-permuted";
    problem_perm.mesh = permuted;
    problem_perm.materials = problem.materials;
    problem_perm.hydro = problem.hydro;
    problem_perm.t_end = problem.t_end;
    problem_perm.rho.resize(static_cast<std::size_t>(permuted.n_cells()));
    problem_perm.ein.resize(problem_perm.rho.size());
    problem_perm.u.assign(static_cast<std::size_t>(permuted.n_nodes()), 0.0);
    problem_perm.v = problem_perm.u;
    // Regions were permuted with the mesh; rebuild the IC from them.
    for (Index c = 0; c < permuted.n_cells(); ++c) {
        const bool left = permuted.cell_region[static_cast<std::size_t>(c)] == 0;
        problem_perm.rho[static_cast<std::size_t>(c)] = left ? 1.0 : 0.125;
        problem_perm.ein[static_cast<std::size_t>(c)] = left ? 2.5 : 2.0;
    }

    bc::Hydro reference(std::move(problem));
    bc::Hydro renumbered(std::move(problem_perm));
    reference.run(0.03);
    renumbered.run(0.03);

    for (Index c = 0; c < renumbered.mesh().n_cells(); ++c) {
        const Index orig =
            original_by_centroid.at(centroid_key(renumbered.mesh(), c));
        EXPECT_NEAR(renumbered.state().rho[static_cast<std::size_t>(c)],
                    reference.state().rho[static_cast<std::size_t>(orig)],
                    1e-9)
            << "cell " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NumberingInvariance,
                         ::testing::Values(7, 21, 1234));

// ---------------------------------------------------------------------------
// Grid convergence on Sod.
// ---------------------------------------------------------------------------

TEST(Convergence, SodL1ErrorDecreasesWithResolution) {
    const ba::Riemann exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
    auto l1_at = [&](Index nx) {
        bc::Hydro h(bs::sod(nx, 2));
        h.run();
        return ba::cell_error_norms(
                   h.mesh(), h.state().x, h.state().y, h.state().volume,
                   h.state().rho,
                   [&](Real cx, Real) {
                       return exact.sample((cx - 0.5) / 0.2).rho;
                   })
            .l1;
    };
    const Real coarse = l1_at(50);
    const Real medium = l1_at(100);
    const Real fine = l1_at(200);
    EXPECT_LT(medium, coarse);
    EXPECT_LT(fine, medium);
    // At least ~first-order convergence across the two doublings.
    EXPECT_LT(fine, 0.6 * coarse);
}

// ---------------------------------------------------------------------------
// ALE mode (smoothed target) end to end.
// ---------------------------------------------------------------------------

TEST(AleMode, SmoothedRemapKeepsSaltzmannValidAndAccurate) {
    auto problem = bs::saltzmann(60, 6);
    problem.t_end = 0.35;
    problem.ale.mode = bookleaf::ale::Mode::ale;
    problem.ale.frequency = 5;
    bc::Hydro h(std::move(problem));
    const auto summary = h.run();
    EXPECT_NEAR(summary.t_final, 0.35, 1e-12);
    for (const Real v : h.state().volume) EXPECT_GT(v, 0.0);
    // Shock must still be in the right place: outermost rho > 2 near
    // x = 4/3 * t = 0.467.
    Real shock_x = 0;
    for (Index c = 0; c < h.mesh().n_cells(); ++c) {
        Real cx = 0;
        for (int k = 0; k < 4; ++k)
            cx += h.state().x[static_cast<std::size_t>(h.mesh().cn(c, k))] / 4;
        if (h.state().rho[static_cast<std::size_t>(c)] > 2.0)
            shock_x = std::max(shock_x, cx);
    }
    EXPECT_NEAR(shock_x, 4.0 / 3.0 * 0.35, 0.07);
    // Mass conserved through the remaps.
    EXPECT_NEAR(summary.final_.mass, summary.initial.mass,
                1e-10 * summary.initial.mass);
}

TEST(AleMode, PeriodicRemapFrequencyIsHonoured) {
    auto problem = bs::sod(32, 2);
    problem.ale.mode = bookleaf::ale::Mode::ale;
    problem.ale.frequency = 3;
    bc::Hydro h(std::move(problem));
    int remaps = 0;
    for (int i = 0; i < 9; ++i)
        if (h.step().remapped) ++remaps;
    EXPECT_EQ(remaps, 3);
}

// ---------------------------------------------------------------------------
// Distributed rank sweep on a second problem (Noh) with both partitioners.
// ---------------------------------------------------------------------------

TEST(DistributedSweep, NohInvariantAcrossRanksAndPartitioners) {
    const auto problem = bs::noh(20);
    bookleaf::dist::Options opts;
    opts.t_end = 0.05;
    opts.hydro = problem.hydro;

    opts.n_ranks = 1;
    const auto ref = bookleaf::dist::run(problem.mesh, problem.materials,
                                         problem.rho, problem.ein, problem.u,
                                         problem.v, opts);
    for (const int ranks : {2, 4}) {
        for (const bool multilevel : {false, true}) {
            opts.n_ranks = ranks;
            if (multilevel)
                opts.partitioner = [](const bm::Mesh& m, int n) {
                    return bookleaf::part::multilevel(m, n);
                };
            else
                opts.partitioner = nullptr;
            const auto got = bookleaf::dist::run(problem.mesh, problem.materials,
                                                 problem.rho, problem.ein,
                                                 problem.u, problem.v, opts);
            ASSERT_EQ(got.steps, ref.steps);
            Real max_err = 0;
            for (std::size_t c = 0; c < ref.rho.size(); ++c)
                max_err = std::max(max_err, std::abs(got.rho[c] - ref.rho[c]));
            EXPECT_LT(max_err, 1e-9)
                << ranks << " ranks, multilevel=" << multilevel;
        }
    }
}

// ---------------------------------------------------------------------------
// Failure injection.
// ---------------------------------------------------------------------------

TEST(FailureInjection, TimestepCollapseIsReported) {
    auto problem = bs::noh(16);
    problem.hydro.dt_min = 1.0; // impossible
    problem.hydro.dt_max = 0.5;
    bc::Hydro h(std::move(problem));
    h.step(); // first step uses dt_initial
    EXPECT_THROW(h.step(), bu::Error);
}

TEST(FailureInjection, TangledMeshAbortsTheRun) {
    // A wildly too-large fixed timestep tangles the Noh mesh; the driver
    // must fail loudly rather than continue on negative volumes.
    auto problem = bs::noh(16);
    problem.hydro.dt_initial = 0.5;   // ~1000x the stable dt
    problem.hydro.dt_max = 0.5;
    bc::Hydro h(std::move(problem));
    EXPECT_THROW(
        {
            for (int i = 0; i < 50; ++i) h.step();
        },
        bu::Error);
}

TEST(FailureInjection, MissingDeckFileThrows) {
    EXPECT_THROW(bs::Deck::parse_file("/nonexistent/deck.in"), bu::Error);
}

// ---------------------------------------------------------------------------
// Deck files shipped in data/ actually parse and build.
// ---------------------------------------------------------------------------

TEST(DataDecks, AllShippedDecksBuildProblems) {
    // Locate data/ whether the test runs from the repository root or from
    // somewhere inside the build tree.
    std::string prefix;
    for (const auto* candidate : {"data/", "../data/", "../../data/"}) {
        if (std::ifstream(std::string(candidate) + "sod.in")) {
            prefix = candidate;
            break;
        }
    }
    ASSERT_FALSE(prefix.empty()) << "data/ directory not found";
    for (const auto* deck : {"sod", "noh", "sedov", "saltzmann",
                             "sod_eulerian"}) {
        const auto path = prefix + deck + ".in";
        const auto problem = bs::make_problem(bs::Deck::parse_file(path));
        EXPECT_GT(problem.mesh.n_cells(), 0) << path;
        EXPECT_GT(problem.t_end, 0.0) << path;
    }
}
