#!/usr/bin/env python3
"""CI gate: a bookleaf.live/1 NDJSON stream must be well-formed.

    validate_live_stream.py run.ndjson [--expect-stall] [--expect-recovery]

Checks (stdlib only, one JSON object per line):
  * every line parses as a JSON object carrying "event" and "seq";
  * "seq" counts exactly 0..n-1 in file order (nothing lost, nothing
    reordered — the stream is flushed per line precisely so a killed run
    leaves a gapless prefix);
  * the first event is run_start with schema "bookleaf.live/1", and —
    for a run that ended — the last is run_end;
  * only known event kinds appear (run_start, window, imbalance, stall,
    recovery, run_end);
  * per (attempt, rank), window indices count 0,1,2,... in arrival
    order (the tag-502 channel is FIFO);
  * every imbalance event carries max_over_mean >= 1 and a slowest rank;
  * run_end's "stalls" matches the stall events counted in the file;
  * with --expect-stall / --expect-recovery, at least one such event
    must be present (the watchdog smoke asserts its detection fired).

Exit status 0 on success, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

KNOWN_EVENTS = {
    "run_start", "window", "imbalance", "stall", "recovery", "run_end",
}


def fail(msg):
    print(f"validate_live_stream: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("stream", help="NDJSON live stream to validate")
    ap.add_argument("--expect-stall", action="store_true",
                    help="require at least one stall event")
    ap.add_argument("--expect-recovery", action="store_true",
                    help="require at least one recovery event")
    args = ap.parse_args()

    events = []
    with open(args.stream, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"line {lineno}: empty line inside the stream")
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"line {lineno}: not valid JSON ({e})")
            if not isinstance(ev, dict):
                fail(f"line {lineno}: not a JSON object")
            if "event" not in ev or "seq" not in ev:
                fail(f"line {lineno}: missing 'event' or 'seq'")
            if ev["event"] not in KNOWN_EVENTS:
                fail(f"line {lineno}: unknown event '{ev['event']}'")
            if ev["seq"] != lineno - 1:
                fail(f"line {lineno}: seq {ev['seq']}, expected {lineno - 1}"
                     " (lost or reordered events)")
            events.append(ev)

    if not events:
        fail("stream is empty")
    first = events[0]
    if first["event"] != "run_start":
        fail(f"first event is '{first['event']}', expected run_start")
    if first.get("schema") != "bookleaf.live/1":
        fail(f"run_start schema is {first.get('schema')!r}, "
             "expected 'bookleaf.live/1'")
    last = events[-1]
    if last["event"] != "run_end":
        fail(f"last event is '{last['event']}', expected run_end "
             "(run did not finish?)")

    # Per-(attempt, rank) window ordinals must arrive in FIFO order.
    next_index = {}
    stalls = recoveries = 0
    for ev in events:
        kind = ev["event"]
        if kind == "window":
            rec = ev.get("record", {})
            key = (ev.get("attempt", 0), rec.get("rank"))
            want = next_index.get(key, 0)
            if rec.get("index") != want:
                fail(f"seq {ev['seq']}: rank {key[1]} window index "
                     f"{rec.get('index')}, expected {want}")
            next_index[key] = want + 1
        elif kind == "imbalance":
            if ev.get("max_over_mean", 0) < 1.0:
                fail(f"seq {ev['seq']}: imbalance max_over_mean "
                     f"{ev.get('max_over_mean')} < 1")
            if "slowest_rank" not in ev:
                fail(f"seq {ev['seq']}: imbalance missing slowest_rank")
        elif kind == "stall":
            stalls += 1
        elif kind == "recovery":
            recoveries += 1

    if last.get("stalls") != stalls:
        fail(f"run_end reports {last.get('stalls')} stalls, "
             f"stream contains {stalls}")
    if args.expect_stall and stalls == 0:
        fail("expected at least one stall event, found none")
    if args.expect_recovery and recoveries == 0:
        fail("expected at least one recovery event, found none")

    windows = sum(1 for ev in events if ev["event"] == "window")
    print(f"validate_live_stream: OK: {len(events)} events, "
          f"{windows} windows, {stalls} stalls, {recoveries} recoveries")


if __name__ == "__main__":
    main()
