#!/usr/bin/env python3
"""Compare two bookleaf.bench/1 JSON files and flag perf regressions.

    compare_bench.py old.json new.json [--max-slowdown X] [--report-only]

Walks both documents in parallel and compares every numeric leaf whose
key ends in `_s` (seconds). A leaf is a regression when
`new > old * max_slowdown` (default 1.5 — benches run on shared CI
runners, so the gate is deliberately loose). Non-timing leaves are
reported when they differ but never fail the run. A missing baseline
(the old file does not exist — a freshly added bench document) is a
notice, not an error: the run reports the new values and exits 0, so
adding a bench never breaks CI before its first baseline lands. Exit
status: 0 when clean, baseline-missing, or --report-only; 1 on
regression; 2 on usage/schema errors.
"""

import argparse
import json
import os
import sys


def walk(prefix, old, new, out):
    """Collect (path, old, new) for every leaf present in both docs."""
    if isinstance(old, dict) and isinstance(new, dict):
        for key in old:
            if key in new:
                walk(f"{prefix}.{key}" if prefix else key, old[key], new[key], out)
        return
    if isinstance(old, list) and isinstance(new, list):
        for i, (a, b) in enumerate(zip(old, new)):
            walk(f"{prefix}[{i}]", a, b, out)
        return
    out.append((prefix, old, new))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        help="fail when new > old * this (default 1.5)")
    parser.add_argument("--report-only", action="store_true",
                        help="print the comparison but always exit 0")
    args = parser.parse_args()

    if not os.path.exists(args.old):
        # A new bench document with no committed baseline yet: report the
        # fresh values, gate nothing.
        print(f"compare_bench: no baseline {args.old} — new bench document, "
              "report only")
        try:
            with open(args.new) as f:
                json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"compare_bench: {e}", file=sys.stderr)
            return 2
        return 0

    try:
        with open(args.old) as f:
            old = json.load(f)
        with open(args.new) as f:
            new = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_bench: {e}", file=sys.stderr)
        return 2

    for doc, name in ((old, args.old), (new, args.new)):
        schema = doc.get("schema") if isinstance(doc, dict) else None
        if schema != "bookleaf.bench/1":
            print(f"compare_bench: {name}: unexpected schema {schema!r}",
                  file=sys.stderr)
            return 2

    leaves = []
    walk("", old, new, leaves)

    regressions = []
    compared = 0
    for path, a, b in leaves:
        is_number = (isinstance(a, (int, float)) and not isinstance(a, bool)
                     and isinstance(b, (int, float)) and not isinstance(b, bool))
        if path.split(".")[-1].split("[")[0].endswith("_s") and is_number:
            compared += 1
            ratio = b / a if a > 0 else float("inf") if b > 0 else 1.0
            marker = ""
            if b > a * args.max_slowdown and b - a > 1e-4:
                marker = "  <-- REGRESSION"
                regressions.append(path)
            print(f"  {path}: {a:.6g} -> {b:.6g}  ({ratio:.2f}x){marker}")
        elif a != b:
            print(f"  {path}: {a!r} -> {b!r}  (not a timing, informational)")

    print(f"compared {compared} timing leaves, "
          f"{len(regressions)} regression(s) at >{args.max_slowdown:.2f}x")
    if regressions and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
