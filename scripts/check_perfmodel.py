#!/usr/bin/env python3
"""CI gate: the calibrated perfmodel must track the measured machine.

    check_perfmodel.py BENCH_fig2.json [--tolerance X] [--min-share S]

Reads a bookleaf.bench/1 document produced by `bench_fig2_kernels --json`,
which carries both sides of the calibration loop:

  * "measured_kernels": per-kernel {wall_s, calls, items} from an
    instrumented Noh run of this repository's kernels, and
  * "calibrated_model": the per-kernel seconds the perfmodel predicts
    after recalibrating itself from those same measurements
    (perfmodel::calibrate_from_document -> calibrated_work -> model_noh).

For every kernel whose measured share of total wall time is at least
--min-share (default 0.05 — tiny kernels sit on the model's bandwidth
floor and carry no signal), the predicted share must agree with the
measured share within --tolerance (default 4.0, ratio either way). The
loop is closed by construction, so a violation means the model's
structural factors no longer track the machine — exactly the drift this
gate exists to catch. Exit status: 0 clean, 1 drift, 2 usage/schema.
"""

import argparse
import json
import math
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", help="BENCH_fig2.json path")
    parser.add_argument("--tolerance", type=float, default=4.0,
                        help="max predicted/measured share ratio either way "
                             "(default 4.0)")
    parser.add_argument("--min-share", type=float, default=0.05,
                        help="ignore kernels below this measured share "
                             "(default 0.05)")
    args = parser.parse_args()

    try:
        with open(args.bench) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perfmodel: {e}", file=sys.stderr)
        return 2

    if not isinstance(doc, dict) or doc.get("schema") != "bookleaf.bench/1":
        print(f"check_perfmodel: {args.bench}: not a bookleaf.bench/1 "
              "document", file=sys.stderr)
        return 2
    measured = doc.get("measured_kernels")
    model = doc.get("calibrated_model")
    if not isinstance(measured, dict) or not isinstance(model, dict):
        print(f"check_perfmodel: {args.bench}: missing measured_kernels/"
              "calibrated_model (regenerate with bench_fig2_kernels --json)",
              file=sys.stderr)
        return 2

    kernels = [k for k in measured if isinstance(model.get(k), dict)]
    m_total = sum(measured[k]["wall_s"] for k in kernels)
    p_total = sum(model[k]["model_s"] for k in kernels)
    if m_total <= 0 or p_total <= 0:
        print("check_perfmodel: degenerate totals", file=sys.stderr)
        return 2

    drift = []
    for k in kernels:
        m_share = measured[k]["wall_s"] / m_total
        p_share = model[k]["model_s"] / p_total
        gated = m_share >= args.min_share
        ratio = p_share / m_share if m_share > 0 else math.inf
        bad = gated and not (1 / args.tolerance <= ratio <= args.tolerance)
        marker = "  <-- DRIFT" if bad else ("" if gated else "  (below floor)")
        print(f"  {k:10s} measured {m_share:6.1%}  predicted {p_share:6.1%}"
              f"  ratio {ratio:5.2f}x{marker}")
        if bad:
            drift.append(k)

    gated_n = sum(1 for k in kernels
                  if measured[k]["wall_s"] / m_total >= args.min_share)
    print(f"checked {gated_n} kernel(s) above {args.min_share:.0%} share, "
          f"{len(drift)} drifted beyond {args.tolerance:.1f}x")
    if gated_n == 0:
        print("check_perfmodel: no kernel above the share floor",
              file=sys.stderr)
        return 2
    return 1 if drift else 0


if __name__ == "__main__":
    sys.exit(main())
