/// \file bookleaf_main.cpp
/// The mini-application itself: a deck-driven driver equivalent to the
/// reference `bookleaf` binary. Reads a BookLeaf-style input deck, runs
/// Algorithm 1, prints the step banner and the final per-kernel summary.
///
///   ./bookleaf_main data/sod.in [--threads N] [--grain N] [--max_steps N]
///                   [--assembly gather|serial|colored]
///                   [--banner-every N] [--vtk out.vtk]
///                   [--restart snapshot.ckpt]
///                   [--telemetry-report run.json] [--telemetry-trace t.json]
///                   [--telemetry-summary] [--telemetry-window N]
///                   [--telemetry-live run.ndjson] [--watchdog-factor F]
///
/// Without a deck argument, runs the default Sod problem. A deck with
/// `[checkpoint] restart_from` (or the --restart flag, which overrides
/// it) restores the snapshot and continues the run bitwise.

#include <cstdio>
#include <memory>

#include "core/driver.hpp"
#include "io/vtk.hpp"
#include "setup/deck.hpp"
#include "util/cli.hpp"

using namespace bookleaf;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    try {
        setup::Problem problem =
            cli.positional().empty()
                ? setup::sod()
                : setup::make_problem(setup::Deck::parse_file(cli.positional()[0]));
        const auto restart = cli.get("restart", problem.checkpoint.restart_from);
        // CLI telemetry flags layer over the deck's `[telemetry]` section.
        if (cli.has("telemetry-report"))
            problem.telemetry.report = cli.get("telemetry-report", "");
        if (cli.has("telemetry-trace"))
            problem.telemetry.trace = cli.get("telemetry-trace", "");
        if (cli.has("telemetry-summary")) problem.telemetry.summary = true;
        // Live monitoring flags mirror the `[telemetry]` deck keys
        // window_steps / live / watchdog_factor.
        if (cli.has("telemetry-window"))
            problem.telemetry.window_steps = cli.get_int("telemetry-window", 0);
        if (cli.has("telemetry-live"))
            problem.telemetry.live = cli.get("telemetry-live", "");
        if (cli.has("watchdog-factor"))
            problem.telemetry.watchdog_factor =
                static_cast<double>(cli.get_real("watchdog-factor", 0.0));
        if (problem.telemetry.label.empty())
            problem.telemetry.label = problem.name;

        std::printf("BookLeaf-CPP: problem '%s', %d cells, %d nodes, t_end %.4g\n",
                    problem.name.c_str(), problem.mesh.n_cells(),
                    problem.mesh.n_nodes(), problem.t_end);

        std::unique_ptr<core::Hydro> hydro_ptr;
        if (restart.empty()) {
            hydro_ptr = std::make_unique<core::Hydro>(std::move(problem));
        } else {
            const auto snapshot = ckpt::read(restart);
            std::printf("restarting from %s: step %ld, t %.6e\n",
                        restart.c_str(), static_cast<long>(snapshot.steps),
                        snapshot.t);
            hydro_ptr =
                std::make_unique<core::Hydro>(std::move(problem), snapshot);
        }
        core::Hydro& hydro = *hydro_ptr;

        const int threads = cli.get_int("threads", 1);
        par::ThreadPool pool(threads);
        if (threads > 1) {
            par::Exec exec;
            exec.pool = &pool;
            exec.grain = static_cast<Index>(cli.get_int("grain", 0));
            hydro.set_exec(exec);
        }
        // Nodal-assembly strategy: default is the race-free gather; the
        // paper's §IV-B behaviours stay available for ablations.
        const auto assembly = cli.get("assembly", "gather");
        if (assembly == "serial")
            hydro.set_assembly(par::Assembly::serial_scatter);
        else if (assembly == "colored")
            hydro.set_assembly(par::Assembly::colored_scatter);
        else if (assembly != "gather")
            throw util::Error("unknown --assembly '" + assembly +
                              "' (expected gather|serial|colored)");

        const int max_steps = cli.get_int("max_steps", 1 << 30);
        const int banner_every = cli.get_int("banner-every", 100);

        const auto initial = hydro.totals();
        const Real t_end = hydro.problem().t_end;
        util::Timer timer;
        while (hydro.time() < t_end * (Real(1) - eps) &&
               hydro.steps() < max_steps && !hydro.halted()) {
            // Banner via single steps; finish with a clamped run so the
            // final time lands exactly on t_end.
            if (hydro.steps() + 1 >= max_steps ||
                hydro.time() > Real(0.98) * t_end) {
                hydro.run(t_end, max_steps);
                break;
            }
            const auto info = hydro.step();
            if (info.step % banner_every == 0 || info.step == 1)
                std::printf("  step %6d  t %.6e  dt %.6e  (%.*s%s)\n",
                            info.step, info.t, info.dt,
                            static_cast<int>(info.dt_reason.size()),
                            info.dt_reason.data(),
                            info.remapped ? ", remap" : "");
        }
        const double wall = timer.elapsed();

        const auto final_totals = hydro.totals();
        std::printf("\nfinished: %d steps to t = %.6f in %.2f s\n",
                    hydro.steps(), hydro.time(), wall);
        std::printf("conservation: mass %.3e, energy %.3e (relative drift)\n",
                    (final_totals.mass - initial.mass) /
                        std::max(initial.mass, tiny),
                    (final_totals.total_energy() - initial.total_energy()) /
                        std::max(std::abs(initial.total_energy()), tiny));

        std::printf("\nper-kernel wall time:\n");
        for (const auto k :
             {util::Kernel::getdt, util::Kernel::getq, util::Kernel::getforce,
              util::Kernel::getacc, util::Kernel::getgeom, util::Kernel::getrho,
              util::Kernel::getein, util::Kernel::getpc,
              util::Kernel::alegetmesh, util::Kernel::alegetfvol,
              util::Kernel::aleadvect, util::Kernel::aleupdate}) {
            const auto s = hydro.profiler().stats(k);
            if (s.calls == 0) continue;
            std::printf("  %-12s %9.3f s  (%ld calls)\n",
                        std::string(util::kernel_name(k)).c_str(), s.wall_s,
                        s.calls);
        }

        // Step-loop runs may end between hydro.run() calls; rewrite the
        // telemetry sinks with everything recorded so far (whole-file
        // overwrite, so the last write wins and is complete).
        hydro.write_telemetry();

        if (cli.has("vtk")) {
            const auto path = cli.get("vtk", "out.vtk");
            io::write_vtk(path, hydro.mesh(), hydro.state(), hydro.steps(),
                          hydro.time());
            std::printf("wrote %s\n", path.c_str());
        }
        return 0;
    } catch (const util::Error& e) {
        std::fprintf(stderr, "bookleaf: error: %s\n", e.what());
        return 1;
    }
}
