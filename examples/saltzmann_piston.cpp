/// \file saltzmann_piston.cpp
/// Saltzmann's piston on the classic skewed mesh (paper §III-B: "designed
/// to exacerbate hourglass modes"). Demonstrates the two hourglass
/// controls — the Hancock filter and Caramana-Shashkov sub-zonal
/// pressures — and validates against the strong-shock relations.
///
///   ./saltzmann_piston [--control subzonal|filter|none] [--t_end 0.6]
///                      [--vtk out.vtk]

#include <cmath>
#include <cstdio>

#include "analytic/exact.hpp"
#include "core/driver.hpp"
#include "geom/geometry.hpp"
#include "io/vtk.hpp"
#include "setup/problems.hpp"
#include "util/cli.hpp"

using namespace bookleaf;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const auto control = cli.get("control", "subzonal");
    const Real t_end = cli.get_real("t_end", 0.6);

    auto problem = setup::saltzmann();
    problem.t_end = t_end;
    if (control == "subzonal") {
        problem.hydro.hourglass.subzonal_pressures = true;
        problem.hydro.hourglass.filter_kappa = 0.0;
    } else if (control == "filter") {
        problem.hydro.hourglass.subzonal_pressures = false;
        problem.hydro.hourglass.filter_kappa = 0.5;
    } else if (control == "none") {
        problem.hydro.hourglass.subzonal_pressures = false;
        problem.hydro.hourglass.filter_kappa = 0.0;
    } else {
        std::fprintf(stderr, "unknown --control %s\n", control.c_str());
        return 1;
    }

    core::Hydro hydro(std::move(problem));
    std::printf("Saltzmann piston, hourglass control: %s\n", control.c_str());

    try {
        const auto summary = hydro.run();
        const auto exact = analytic::piston_exact(5.0 / 3.0, 1.0, 1.0);

        Real shock_x = 0, shocked_rho = 0;
        int n_shocked = 0;
        for (Index c = 0; c < hydro.mesh().n_cells(); ++c) {
            Real cx = 0;
            for (int k = 0; k < 4; ++k)
                cx += hydro.state()
                          .x[static_cast<std::size_t>(hydro.mesh().cn(c, k))] /
                      4;
            const Real rho = hydro.state().rho[static_cast<std::size_t>(c)];
            if (rho > 2.0) shock_x = std::max(shock_x, cx);
            if (cx > t_end + 0.04 && cx < exact.shock_speed * t_end - 0.04) {
                shocked_rho += rho;
                ++n_shocked;
            }
        }
        std::printf("  %d steps to t = %.2f\n", summary.steps, summary.t_final);
        std::printf("  shock position: %.3f (exact %.3f)\n", shock_x,
                    exact.shock_speed * t_end);
        if (n_shocked > 0)
            std::printf("  shocked density: %.3f (exact %.1f)\n",
                        shocked_rho / n_shocked, exact.rho_shocked);
        const auto quality = geom::mesh_quality(hydro.mesh());
        std::printf("  min cell volume: %.3e (tangled if <= 0)\n",
                    quality.min_area);

        if (cli.has("vtk")) {
            const auto path = cli.get("vtk", "saltzmann.vtk");
            io::write_vtk(path, hydro.mesh(), hydro.state(), hydro.steps(),
                          hydro.time());
            std::printf("  wrote %s\n", path.c_str());
        }
    } catch (const util::Error& e) {
        // Without hourglass control the skewed mesh can tangle — that is
        // the point of the test problem.
        std::printf("  run FAILED: %s\n", e.what());
        std::printf("  (hourglass control '%s' could not keep the mesh "
                    "untangled)\n",
                    control.c_str());
    }
    return 0;
}
