/// \file noh_implosion.cpp
/// The Noh implosion — the workload of the paper's single-node study
/// (Table II, Figs 1-2). Runs the real kernels with the profiler attached
/// and prints a per-kernel breakdown in the paper's format, plus the
/// physics validation (plateau density, shock position, wall heating).
///
///   ./noh_implosion [--n 50] [--t_end 0.6] [--threads N] [--vtk out.vtk]

#include <cmath>
#include <cstdio>

#include "analytic/exact.hpp"
#include "core/driver.hpp"
#include "io/vtk.hpp"
#include "setup/problems.hpp"
#include "util/cli.hpp"

using namespace bookleaf;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const auto n = static_cast<Index>(cli.get_int("n", 50));
    const Real t_end = cli.get_real("t_end", 0.6);
    const int threads = cli.get_int("threads", 1);

    auto problem = setup::noh(n);
    problem.t_end = t_end;
    core::Hydro hydro(std::move(problem));

    par::ThreadPool pool(threads);
    if (threads > 1) {
        par::Exec exec;
        exec.pool = &pool;
        hydro.set_exec(exec); // gather assembly (the default) is race-free
    }

    const auto summary = hydro.run();
    std::printf("Noh %dx%d: %d steps to t = %.3f in %.2f s (%d thread%s)\n",
                n, n, summary.steps, summary.t_final, summary.wall_seconds,
                threads, threads == 1 ? "" : "s");

    // Per-kernel breakdown, Table II style.
    std::printf("\n%-10s %10s %7s\n", "kernel", "seconds", "share");
    const double overall = hydro.profiler().overall_s();
    for (const auto k :
         {util::Kernel::getq, util::Kernel::getacc, util::Kernel::getdt,
          util::Kernel::getgeom, util::Kernel::getforce, util::Kernel::getpc,
          util::Kernel::getrho, util::Kernel::getein}) {
        const auto s = hydro.profiler().stats(k);
        std::printf("%-10s %10.3f %6.1f%%\n",
                    std::string(util::kernel_name(k)).c_str(), s.wall_s,
                    100.0 * s.wall_s / overall);
    }

    // Physics validation against the exact solution.
    Real plateau = 0;
    int n_plateau = 0;
    Real shock_r = 0;
    for (Index c = 0; c < hydro.mesh().n_cells(); ++c) {
        Real cx = 0, cy = 0;
        for (int k = 0; k < 4; ++k) {
            const auto node = static_cast<std::size_t>(hydro.mesh().cn(c, k));
            cx += hydro.state().x[node] / 4;
            cy += hydro.state().y[node] / 4;
        }
        const Real r = std::hypot(cx, cy);
        const Real rho = hydro.state().rho[static_cast<std::size_t>(c)];
        if (r > 0.05 && r < 0.15) {
            plateau += rho;
            ++n_plateau;
        }
        if (rho > 8.0) shock_r = std::max(shock_r, r);
    }
    const auto exact = analytic::noh_exact(0.1, t_end);
    std::printf("\nplateau density: %.2f (exact %.1f)\n",
                plateau / std::max(n_plateau, 1), exact.rho);
    std::printf("shock radius:    %.3f (exact %.3f)\n", shock_r, t_end / 3.0);

    if (cli.has("vtk")) {
        const auto path = cli.get("vtk", "noh.vtk");
        io::write_vtk(path, hydro.mesh(), hydro.state(), hydro.steps(),
                      hydro.time());
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
