/// \file sedov_blast.cpp
/// Sedov point blast on a Cartesian mesh (paper §III-B: "to test the
/// code's capability to model non-mesh-aligned shocks"). Tracks the shock
/// radius against the 2-D similarity law R ~ t^(1/2) and checks the
/// diagonal symmetry of the solution.
///
///   ./sedov_blast [--n 45] [--t_end 1.0] [--vtk out.vtk]

#include <cmath>
#include <cstdio>
#include <vector>

#include "analytic/exact.hpp"
#include "core/driver.hpp"
#include "io/vtk.hpp"
#include "setup/problems.hpp"
#include "util/cli.hpp"

using namespace bookleaf;

namespace {

Real shock_radius(const core::Hydro& h) {
    Real best_r = 0, best_rho = 0;
    for (Index c = 0; c < h.mesh().n_cells(); ++c) {
        Real cx = 0, cy = 0;
        for (int k = 0; k < 4; ++k) {
            const auto node = static_cast<std::size_t>(h.mesh().cn(c, k));
            cx += h.state().x[node] / 4;
            cy += h.state().y[node] / 4;
        }
        const Real rho = h.state().rho[static_cast<std::size_t>(c)];
        if (rho > best_rho) {
            best_rho = rho;
            best_r = std::hypot(cx, cy);
        }
    }
    return best_r;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const auto n = static_cast<Index>(cli.get_int("n", 45));
    const Real t_end = cli.get_real("t_end", 1.0);

    core::Hydro hydro(setup::sedov(n));

    std::printf("Sedov %dx%d blast, E = 0.25 in the origin cell\n", n, n);
    std::printf("%8s %10s %14s\n", "t", "R(shock)", "R/sqrt(t)");

    std::vector<std::pair<Real, Real>> samples;
    for (const Real t : {0.2 * t_end, 0.4 * t_end, 0.6 * t_end, 0.8 * t_end,
                         1.0 * t_end}) {
        hydro.run(t);
        const Real r = shock_radius(hydro);
        samples.emplace_back(t, r);
        std::printf("%8.3f %10.4f %14.4f\n", t, r, r / std::sqrt(t));
    }

    const Real exponent = analytic::sedov_exponent(
        samples.front().first, samples.front().second, samples.back().first,
        samples.back().second);
    std::printf("\nmeasured growth exponent: %.3f (similarity law: 0.5)\n",
                exponent);

    const auto totals = hydro.totals();
    std::printf("total energy: %.6f (deposited 0.25, conservation check)\n",
                totals.total_energy());

    if (cli.has("vtk")) {
        const auto path = cli.get("vtk", "sedov.vtk");
        io::write_vtk(path, hydro.mesh(), hydro.state(), hydro.steps(),
                      hydro.time());
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
