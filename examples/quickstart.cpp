/// \file quickstart.cpp
/// Minimal BookLeaf-CPP usage: build a problem, run it, inspect the
/// result. Runs Sod's shock tube and compares against the exact Riemann
/// solution.
///
///   ./quickstart [--nx 100] [--t_end 0.2] [--vtk out.vtk]

#include <cstdio>

#include "analytic/norms.hpp"
#include "analytic/riemann.hpp"
#include "core/driver.hpp"
#include "io/vtk.hpp"
#include "setup/problems.hpp"
#include "util/cli.hpp"

using namespace bookleaf;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const auto nx = static_cast<Index>(cli.get_int("nx", 100));
    const Real t_end = cli.get_real("t_end", 0.2);

    // 1. Build a problem (mesh + materials + initial condition + options).
    auto problem = setup::sod(nx, 2);
    problem.t_end = t_end;

    // 2. Run it.
    core::Hydro hydro(std::move(problem));
    const auto summary = hydro.run();

    // 3. Inspect the result.
    std::printf("Sod %dx2: %d steps to t = %.3f in %.2f s\n", nx,
                summary.steps, summary.t_final, summary.wall_seconds);
    std::printf("  energy drift: %.3e (relative)\n",
                (summary.final_.total_energy() - summary.initial.total_energy()) /
                    summary.initial.total_energy());

    const analytic::Riemann exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
    const auto norms = analytic::cell_error_norms(
        hydro.mesh(), hydro.state().x, hydro.state().y, hydro.state().volume,
        hydro.state().rho, [&](Real cx, Real) {
            return exact.sample((cx - Real(0.5)) / t_end).rho;
        });
    std::printf("  L1(rho) vs exact Riemann: %.4f (Linf %.4f)\n", norms.l1,
                norms.linf);

    if (cli.has("vtk")) {
        const auto path = cli.get("vtk", "sod.vtk");
        io::write_vtk(path, hydro.mesh(), hydro.state(), hydro.steps(),
                      hydro.time());
        std::printf("  wrote %s\n", path.c_str());
    }
    return 0;
}
