/// \file distributed_sod.cpp
/// Sod's shock tube through the distributed (flat-MPI analogue) driver:
/// the mesh is partitioned (RCB or the multilevel METIS-substitute),
/// each rank runs the kernel sequence with the paper's two halo
/// exchanges per step and one global dt reduction, and the gathered
/// result is compared against a serial run.
///
///   ./distributed_sod [--ranks 4] [--nx 100] [--partitioner rcb|multilevel]

#include <cmath>
#include <cstdio>

#include "dist/distributed.hpp"
#include "part/partition.hpp"
#include "setup/problems.hpp"
#include "util/cli.hpp"

using namespace bookleaf;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const int ranks = cli.get_int("ranks", 4);
    const auto nx = static_cast<Index>(cli.get_int("nx", 100));
    const auto partitioner = cli.get("partitioner", "rcb");

    const auto problem = setup::sod(nx, 4);

    dist::Options opts;
    opts.n_ranks = ranks;
    opts.t_end = 0.2;
    opts.hydro = problem.hydro;
    if (partitioner == "multilevel")
        opts.partitioner = [](const mesh::Mesh& m, int n) {
            return part::multilevel(m, n);
        };

    // Partition diagnostics.
    const auto part = opts.partitioner ? opts.partitioner(problem.mesh, ranks)
                                       : part::rcb(problem.mesh, ranks);
    const auto quality = part::quality(problem.mesh, part, ranks);
    std::printf("Sod %dx4 on %d ranks (%s): edge cut %d, imbalance %.3f\n",
                nx, ranks, partitioner.c_str(), quality.edge_cut,
                quality.imbalance);

    const auto distributed = dist::run(problem.mesh, problem.materials,
                                       problem.rho, problem.ein, problem.u,
                                       problem.v, opts);

    // Serial reference.
    dist::Options serial = opts;
    serial.n_ranks = 1;
    serial.partitioner = nullptr;
    const auto reference = dist::run(problem.mesh, problem.materials,
                                     problem.rho, problem.ein, problem.u,
                                     problem.v, serial);

    Real max_err = 0;
    for (std::size_t c = 0; c < reference.rho.size(); ++c)
        max_err = std::max(max_err, std::abs(distributed.rho[c] - reference.rho[c]));
    std::printf("steps: %d, final t: %.3f\n", distributed.steps,
                distributed.t_final);
    std::printf("max |rho_distributed - rho_serial| = %.3e\n", max_err);

    // Halo traffic per rank.
    for (int r = 0; r < ranks; ++r) {
        const auto& prof = distributed.profiles[static_cast<std::size_t>(r)];
        std::printf("rank %d: halo %.3fs over %ld exchanges, reduce %ld calls\n",
                    r,
                    prof[static_cast<std::size_t>(util::Kernel::halo)].wall_s,
                    prof[static_cast<std::size_t>(util::Kernel::halo)].calls,
                    prof[static_cast<std::size_t>(util::Kernel::reduce)].calls);
    }
    return 0;
}
