/// \file distributed_sod.cpp
/// Sod's shock tube through the distributed (flat-MPI analogue) driver:
/// the mesh is partitioned (RCB or the multilevel METIS-substitute),
/// each rank runs the kernel sequence with the paper's two halo
/// exchanges per step and one global dt reduction, and the gathered
/// result is compared against a serial run. By default the halo
/// exchanges overlap with interior kernels (nonblocking typhon); the
/// blocking schedule is kept as an ablation and the two are checked to
/// be bitwise identical.
///
///   ./distributed_sod [--ranks 4] [--nx 100] [--partitioner rcb|multilevel]
///                     [--overlap on|off] [--packing coalesced|perfield]
///                     [--threads 1] [--schedule taskgraph|forkjoin]
///                     [--mode lagrange|eulerian|ale] [--dump fields.csv]
///                     [--tol 1e-8]
///                     [--save-prefix ck --save-at 0.1 [--halt-after-save]]
///                     [--restart ck_<step>.ckpt]
///                     [--supervise [--ring-every 10]]
///                     [--kill-rank 2 --kill-step 25]
///                     [--telemetry-report run.json] [--telemetry-trace t.json]
///                     [--telemetry-summary]
///                     [--telemetry-window N] [--telemetry-live run.ndjson]
///                     [--watchdog-factor F] [--watchdog-grace-ms MS]
///                     [--watchdog-escalate]
///                     [--delay-rank R [--delay-every N]] [--slow-all-us US]
///
/// Exits nonzero if the distributed result drifts from the serial
/// reference by more than --tol, or if the other schedule (overlap vs
/// blocking) or the other halo wire format (coalesced vs per-field)
/// disagrees bitwise — which makes it a self-checking smoke test for CI.
/// With --mode eulerian the run exercises the distributed remap (the
/// sod_eulerian.in configuration) and additionally cross-checks the
/// gathered fields bitwise against a serial core::Hydro run.
///
/// Checkpoint/restart smoke: --save-at T writes a checkpoint at the first
/// natural step past T (--halt-after-save stops the run there);
/// --restart continues a saved snapshot at the requested rank count —
/// every self-check (overlap/packing ablations, serial reference) then
/// restarts from the same snapshot, so the bitwise gates also hold the
/// rank-elastic restart contract.
///
/// Fault-injection smoke: --supervise arms in-flight recovery (with
/// --ring-every N feeding the in-memory rollback ring every N steps) and
/// --kill-rank R --kill-step S scripts rank R to die when it begins step
/// S. The run rolls back to the newest ring snapshot, re-decomposes over
/// the survivors and finishes — and every bitwise gate below still holds,
/// including against the serial reference (use R >= 1 so the 1-rank
/// reference, where rank R does not exist, runs undisturbed; the ablation
/// cross-checks at the full rank count recover from the same scripted
/// kill and must agree bitwise anyway).

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "io/csv.hpp"
#include "part/partition.hpp"
#include "setup/problems.hpp"
#include "util/cli.hpp"

using namespace bookleaf;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const int ranks = cli.get_int("ranks", 4);
    const auto nx = static_cast<Index>(cli.get_int("nx", 100));
    const auto partitioner = cli.get("partitioner", "rcb");
    const auto overlap_arg = cli.get("overlap", "on");
    const auto packing_arg = cli.get("packing", "coalesced");
    const auto mode_arg = cli.get("mode", "lagrange");
    const int threads = cli.get_int("threads", 1);
    const auto schedule_arg = cli.get("schedule", "taskgraph");
    const Real tol = cli.get_real("tol", 1e-8);
    if (schedule_arg != "taskgraph" && schedule_arg != "forkjoin") {
        std::fprintf(stderr,
                     "distributed_sod: unknown --schedule '%s' (expected "
                     "taskgraph or forkjoin)\n",
                     schedule_arg.c_str());
        return 2;
    }

    auto problem = setup::sod(nx, 4);
    if (mode_arg == "eulerian") {
        problem.ale.mode = ale::Mode::eulerian;
    } else if (mode_arg == "ale") {
        problem.ale.mode = ale::Mode::ale;
        problem.ale.frequency = 3;
    } else if (mode_arg != "lagrange") {
        std::fprintf(stderr,
                     "distributed_sod: unknown --mode '%s' (expected "
                     "lagrange, eulerian or ale)\n",
                     mode_arg.c_str());
        return 2;
    }

    dist::Options opts;
    opts.n_ranks = ranks;
    opts.t_end = 0.2;
    opts.hydro = problem.hydro;
    opts.ale = problem.ale;
    opts.overlap = overlap_arg != "off";
    opts.packing = packing_arg == "perfield" ? typhon::Packing::per_field
                                             : typhon::Packing::coalesced;
    opts.n_threads = threads;
    opts.schedule = schedule_arg == "forkjoin" ? par::Schedule::forkjoin
                                               : par::Schedule::taskgraph;
    if (partitioner == "multilevel")
        opts.partitioner = [](const mesh::Mesh& m, int n) {
            return part::multilevel(m, n);
        };
    if (cli.has("save-at")) {
        opts.checkpoint.at_time = cli.get_real("save-at", 0.1);
        opts.checkpoint.prefix = cli.get("save-prefix", "bookleaf_ck");
        opts.checkpoint.halt_after = cli.has("halt-after-save");
    }
    if (cli.has("supervise")) {
        opts.supervise.enabled = true;
        opts.supervise.snapshot_every = cli.get_int("ring-every", 10);
    }
    if (cli.has("kill-rank")) {
        typhon::FaultPlan::Kill kill;
        kill.rank = cli.get_int("kill-rank", 2);
        kill.at_step = cli.get_int("kill-step", 25);
        opts.faults.kills.push_back(kill);
    }
    // Live-monitor smoke levers: --delay-rank holds a rank's messages
    // back (the silent-hang driver the watchdog must flag); --slow-all-us
    // pads every rank's sends so the run's wall time dwarfs the watchdog
    // threshold, keeping the stall detection timing-robust in CI.
    if (cli.has("delay-rank")) {
        typhon::FaultPlan::Delay delay;
        delay.rank = cli.get_int("delay-rank", ranks - 1);
        delay.every = cli.get_int("delay-every", 3);
        opts.faults.delays.push_back(delay);
    }
    if (cli.has("slow-all-us")) {
        const int us = cli.get_int("slow-all-us", 400);
        for (int r = 0; r < ranks; ++r) {
            typhon::FaultPlan::Slow slow;
            slow.rank = r;
            slow.microseconds = us;
            opts.faults.slows.push_back(slow);
        }
    }
    // Telemetry sinks apply to the main run only (the ablation
    // cross-checks below clear them — they'd overwrite the files).
    opts.telemetry.report = cli.get("telemetry-report", "");
    opts.telemetry.trace = cli.get("telemetry-trace", "");
    opts.telemetry.summary = cli.has("telemetry-summary");
    // Live monitoring (obs/live): window cadence, NDJSON stream and the
    // hang-detection watchdog — mirrors of the `[telemetry]` deck keys.
    opts.telemetry.window_steps = cli.get_int("telemetry-window", 0);
    opts.telemetry.live = cli.get("telemetry-live", "");
    opts.telemetry.watchdog_factor = cli.get_real("watchdog-factor", 0.0);
    opts.telemetry.watchdog_grace_ms = cli.get_int("watchdog-grace-ms", 250);
    opts.telemetry.watchdog_escalate = cli.has("watchdog-escalate");
    opts.telemetry.label = "sod_" + mode_arg;
    // Restart source: every run below (the main run, the ablation
    // cross-checks and the serial references) starts from this snapshot.
    ckpt::Snapshot snapshot;
    const bool restarting = cli.has("restart");
    if (restarting) {
        snapshot = ckpt::read(cli.get("restart", ""));
        std::printf("restarting from step %ld, t %.6e\n",
                    static_cast<long>(snapshot.steps), snapshot.t);
    }
    const auto run_dist = [&](const dist::Options& o) {
        return restarting
                   ? dist::run(problem.mesh, problem.materials, snapshot, o)
                   : dist::run(problem.mesh, problem.materials, problem.rho,
                               problem.ein, problem.u, problem.v, o);
    };

    // Partition diagnostics.
    const auto part = opts.partitioner ? opts.partitioner(problem.mesh, ranks)
                                       : part::rcb(problem.mesh, ranks);
    const auto quality = part::quality(problem.mesh, part, ranks);
    std::printf("Sod %dx4 (%s) on %d ranks x %d threads (%s, overlap %s, "
                "packing %s, schedule %s): edge cut %d, imbalance %.3f\n",
                nx, mode_arg.c_str(), ranks, threads, partitioner.c_str(),
                opts.overlap ? "on" : "off", packing_arg.c_str(),
                schedule_arg.c_str(), quality.edge_cut, quality.imbalance);

    const auto distributed = run_dist(opts);
    for (const auto& rec : distributed.recoveries)
        std::printf("recovered: rank %d failed at step %d, resumed from "
                    "step %ld on %d survivors (%s)\n",
                    rec.failed_rank, rec.failed_step,
                    static_cast<long>(rec.resumed_step), rec.survivors,
                    rec.error.c_str());
    for (const auto& path : distributed.checkpoints)
        std::printf("wrote checkpoint %s (t >= %.4g)\n", path.c_str(),
                    opts.checkpoint.at_time);
    if (!distributed.windows.empty()) {
        const auto& last = distributed.windows.back();
        std::printf("live: %ld windows completed, last imbalance "
                    "max/mean %.3f (slowest rank %d)\n",
                    static_cast<long>(distributed.windows.size()),
                    last.imbalance.max_over_mean,
                    last.imbalance.slowest_rank);
    }

    // Ablation cross-checks: the other schedule and the other halo wire
    // format must both agree bitwise (same ghost bytes, only the kernel
    // order / message shapes change).
    dist::Options other = opts;
    other.overlap = !opts.overlap;
    other.telemetry = {};
    const auto cross = run_dist(other);
    const bool bitwise = dist::bitwise_equal(distributed, cross);
    std::printf("overlap vs blocking: %s\n",
                bitwise ? "bitwise identical" : "MISMATCH");

    dist::Options repacked = opts;
    repacked.packing = opts.packing == typhon::Packing::coalesced
                           ? typhon::Packing::per_field
                           : typhon::Packing::coalesced;
    repacked.telemetry = {};
    const auto cross_packing = run_dist(repacked);
    const bool bitwise_packing =
        dist::bitwise_equal(distributed, cross_packing);
    std::printf("coalesced vs per-field: %s (%ld vs %ld messages)\n",
                bitwise_packing ? "bitwise identical" : "MISMATCH",
                distributed.traffic.messages,
                cross_packing.traffic.messages);

    // Hybrid runs: the other intra-rank schedule must agree bitwise too
    // (task-graph vs fork-join only reorders per-item-independent work).
    bool bitwise_schedule = true;
    if (threads > 1) {
        dist::Options resched = opts;
        resched.schedule = opts.schedule == par::Schedule::taskgraph
                               ? par::Schedule::forkjoin
                               : par::Schedule::taskgraph;
        resched.telemetry = {};
        bitwise_schedule = dist::bitwise_equal(distributed, run_dist(resched));
        std::printf("taskgraph vs forkjoin: %s\n",
                    bitwise_schedule ? "bitwise identical" : "MISMATCH");
    }

    // Serial reference (restarts restore the same snapshot at 1 rank).
    dist::Options serial = opts;
    serial.n_ranks = 1;
    serial.partitioner = nullptr;
    serial.telemetry = {};
    const auto reference = run_dist(serial);

    Real max_err = 0;
    for (std::size_t c = 0; c < reference.rho.size(); ++c)
        max_err = std::max(max_err, std::abs(distributed.rho[c] - reference.rho[c]));
    std::printf("steps: %d, final t: %.3f\n", distributed.steps,
                distributed.t_final);
    std::printf("max |rho_distributed - rho_serial| = %.3e (tol %.1e)\n",
                max_err, tol);

    // Halo traffic per rank (a recovery shrinks the rank count, so the
    // profile set, not --ranks, is the bound).
    for (std::size_t r = 0; r < distributed.profiles.size(); ++r) {
        const auto& prof = distributed.profiles[r];
        std::printf("rank %d: halo %.3fs over %ld exchanges, reduce %ld calls\n",
                    static_cast<int>(r),
                    prof[static_cast<std::size_t>(util::Kernel::halo)].wall_s,
                    prof[static_cast<std::size_t>(util::Kernel::halo)].calls,
                    prof[static_cast<std::size_t>(util::Kernel::reduce)].calls);
    }
    if (opts.telemetry.active() && !distributed.telemetry.ranks.empty())
        std::printf("imbalance max/mean = %.3f (slowest rank %d), wire %s\n",
                    distributed.telemetry.imbalance.max_over_mean,
                    distributed.telemetry.imbalance.slowest_rank,
                    !distributed.telemetry.wire.checked ? "unchecked"
                    : distributed.telemetry.wire.match  ? "ok"
                                                        : "MISMATCH");

    // Remap decks: the gathered fields must be bitwise the serial
    // core::Hydro run (the distributed-remap contract).
    bool bitwise_serial = true;
    if (problem.ale.mode != ale::Mode::lagrange) {
        auto serial_problem = setup::sod(nx, 4);
        serial_problem.ale = opts.ale;
        // Mirror the checkpoint cadence (with a distinct prefix) so a
        // --halt-after-save run halts the serial reference at the same
        // natural step — and the serial driver's snapshot of the same
        // trajectory lands on disk next to the distributed one.
        serial_problem.checkpoint = opts.checkpoint;
        serial_problem.checkpoint.prefix += "_serial";
        const auto h_ptr =
            restarting ? std::make_unique<core::Hydro>(
                             std::move(serial_problem), snapshot)
                       : std::make_unique<core::Hydro>(
                             std::move(serial_problem));
        core::Hydro& h = *h_ptr;
        h.run(opts.t_end);
        const auto eq = [](const auto& a, const auto& b) {
            return std::equal(a.begin(), a.end(), b.begin(), b.end());
        };
        bitwise_serial = h.steps() == distributed.steps &&
                         eq(h.state().rho, distributed.rho) &&
                         eq(h.state().ein, distributed.ein) &&
                         eq(h.state().u, distributed.u) &&
                         eq(h.state().v, distributed.v) &&
                         eq(h.state().x, distributed.x) &&
                         eq(h.state().y, distributed.y);
        std::printf("distributed remap vs serial core::Hydro: %s\n",
                    bitwise_serial ? "bitwise identical" : "MISMATCH");
    }

    // Gathered-field dump (global numbering): lets CI diff rank counts.
    if (cli.has("dump")) {
        const auto path = cli.get("dump", "fields.csv");
        io::CsvWriter csv(path, {"kind", "index", "value"});
        for (std::size_t c = 0; c < distributed.rho.size(); ++c)
            csv.row({0.0, static_cast<Real>(c), distributed.rho[c]});
        for (std::size_t c = 0; c < distributed.ein.size(); ++c)
            csv.row({1.0, static_cast<Real>(c), distributed.ein[c]});
        for (std::size_t n = 0; n < distributed.u.size(); ++n)
            csv.row({2.0, static_cast<Real>(n), distributed.u[n]});
        for (std::size_t n = 0; n < distributed.v.size(); ++n)
            csv.row({3.0, static_cast<Real>(n), distributed.v[n]});
        for (std::size_t n = 0; n < distributed.x.size(); ++n)
            csv.row({4.0, static_cast<Real>(n), distributed.x[n]});
        for (std::size_t n = 0; n < distributed.y.size(); ++n)
            csv.row({5.0, static_cast<Real>(n), distributed.y[n]});
        std::printf("wrote %s\n", path.c_str());
    }

    if (!bitwise) {
        std::fprintf(stderr, "FAIL: overlap and blocking schedules disagree\n");
        return 1;
    }
    if (!bitwise_packing) {
        std::fprintf(stderr,
                     "FAIL: coalesced and per-field packings disagree\n");
        return 1;
    }
    if (!bitwise_schedule) {
        std::fprintf(stderr,
                     "FAIL: taskgraph and forkjoin schedules disagree\n");
        return 1;
    }
    if (!bitwise_serial) {
        std::fprintf(stderr,
                     "FAIL: distributed remap drifts from serial driver\n");
        return 1;
    }
    if (max_err > tol) {
        std::fprintf(stderr, "FAIL: distributed-vs-serial drift %.3e > %.1e\n",
                     max_err, tol);
        return 1;
    }
    return 0;
}
