#pragma once
/// \file types.hpp
/// Fundamental scalar types and constants used across BookLeaf-CPP.

#include <cstdint>
#include <limits>

namespace bookleaf {

/// Floating-point type for all physics state. The reference BookLeaf is
/// compiled with `-sreal64` / `-r8`; we fix double precision at the type
/// level instead.
using Real = double;

/// Index type for mesh entities (nodes, cells, faces). 32-bit signed,
/// matching the reference code's `-sinteger32` builds; negative values are
/// reserved for "no entity" sentinels (e.g. boundary neighbours).
using Index = std::int32_t;

/// Sentinel for "no neighbour" / "no entity".
inline constexpr Index no_index = -1;

/// Corners per quadrilateral cell (the mesh is all-quad, per the paper).
inline constexpr int corners_per_cell = 4;

/// A tiny positive floor used to keep divisions well-defined on void
/// regions and freshly-initialised state.
inline constexpr Real tiny = 1.0e-40;

/// Machine epsilon shorthand.
inline constexpr Real eps = std::numeric_limits<Real>::epsilon();

} // namespace bookleaf
