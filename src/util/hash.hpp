#pragma once
/// \file hash.hpp
/// FNV-1a — the repo's one byte-stream hash. Used by the checkpoint
/// subsystem for the per-field payload checksums and the mesh/deck
/// identity hash; deliberately simple, endian-honest (it hashes the bytes
/// actually serialized) and dependency-free.

#include <cstddef>
#include <cstdint>

namespace bookleaf::util {

inline constexpr std::uint64_t fnv1a_offset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t fnv1a_prime = 0x100000001b3ULL;

/// Fold `bytes` bytes into a running FNV-1a state `h` (seed with
/// fnv1a_offset).
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                                         std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= fnv1a_prime;
    }
    return h;
}

/// One-shot convenience form.
[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t bytes) {
    return fnv1a(fnv1a_offset, data, bytes);
}

} // namespace bookleaf::util
