#include "util/profiler.hpp"

#include <string_view>

namespace bookleaf::util {

std::string_view kernel_name(Kernel k) {
    switch (k) {
    case Kernel::getdt: return "getdt";
    case Kernel::getq: return "getq";
    case Kernel::getforce: return "getforce";
    case Kernel::getacc: return "getacc";
    case Kernel::getgeom: return "getgeom";
    case Kernel::getrho: return "getrho";
    case Kernel::getein: return "getein";
    case Kernel::getpc: return "getpc";
    case Kernel::alegetmesh: return "alegetmesh";
    case Kernel::alegetfvol: return "alegetfvol";
    case Kernel::aleadvect: return "aleadvect";
    case Kernel::aleupdate: return "aleupdate";
    case Kernel::halo: return "halo";
    case Kernel::reduce: return "reduce";
    case Kernel::transfer: return "transfer";
    case Kernel::other: return "other";
    case Kernel::halo_pack: return "halo_pack";
    case Kernel::halo_wait: return "halo_wait";
    case Kernel::halo_unpack: return "halo_unpack";
    case Kernel::reduce_wait: return "reduce_wait";
    case Kernel::ale_gradients: return "ale_gradients";
    case Kernel::ale_fluxes: return "ale_fluxes";
    case Kernel::ale_cells: return "ale_cells";
    case Kernel::ale_dual: return "ale_dual";
    case Kernel::ale_nodes: return "ale_nodes";
    case Kernel::tasks: return "tasks";
    case Kernel::count_: break;
    }
    return "invalid";
}

std::string_view kernel_table2_label(Kernel k) {
    switch (k) {
    case Kernel::getq: return "Viscosity";
    case Kernel::getacc: return "Acceleration";
    default: return kernel_name(k);
    }
}

void Profiler::add_wall(Kernel k, double seconds) {
    const std::lock_guard lock(mutex_);
    auto& s = stats_[static_cast<std::size_t>(k)];
    s.wall_s += seconds;
    s.calls += 1;
}

void Profiler::add_virtual(Kernel k, double seconds) {
    const std::lock_guard lock(mutex_);
    auto& s = stats_[static_cast<std::size_t>(k)];
    s.virtual_s += seconds;
    s.calls += 1;
}

void Profiler::add_scope(Kernel k, std::chrono::steady_clock::time_point t0,
                         std::chrono::steady_clock::time_point t1,
                         long long items) {
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const std::lock_guard lock(mutex_);
    auto& s = stats_[static_cast<std::size_t>(k)];
    s.wall_s += seconds;
    s.calls += 1;
    s.items += items;
    if (trace_ != nullptr)
        trace_->push_back(
            {k,
             std::chrono::duration<double, std::micro>(t0 - trace_epoch_)
                 .count(),
             seconds * 1e6});
}

void Profiler::set_trace(std::vector<TraceEvent>* sink,
                         std::chrono::steady_clock::time_point epoch) {
    const std::lock_guard lock(mutex_);
    trace_ = sink;
    trace_epoch_ = epoch;
}

void Profiler::reset() {
    const std::lock_guard lock(mutex_);
    stats_.fill(KernelStats{});
}

KernelStats Profiler::stats(Kernel k) const {
    const std::lock_guard lock(mutex_);
    return stats_[static_cast<std::size_t>(k)];
}

std::array<KernelStats, kernel_count> Profiler::snapshot() const {
    const std::lock_guard lock(mutex_);
    return stats_;
}

double Profiler::overall_s() const {
    const std::lock_guard lock(mutex_);
    double sum = 0.0;
    for (std::size_t i = 0; i < kernel_count; ++i)
        if (!kernel_is_detail(static_cast<Kernel>(i)))
            sum += stats_[i].total_s();
    return sum;
}

Profiler& default_profiler() {
    static Profiler instance;
    return instance;
}

} // namespace bookleaf::util
