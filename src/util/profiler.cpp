#include "util/profiler.hpp"

#include <string_view>

namespace bookleaf::util {

std::string_view kernel_name(Kernel k) {
    switch (k) {
    case Kernel::getdt: return "getdt";
    case Kernel::getq: return "getq";
    case Kernel::getforce: return "getforce";
    case Kernel::getacc: return "getacc";
    case Kernel::getgeom: return "getgeom";
    case Kernel::getrho: return "getrho";
    case Kernel::getein: return "getein";
    case Kernel::getpc: return "getpc";
    case Kernel::alegetmesh: return "alegetmesh";
    case Kernel::alegetfvol: return "alegetfvol";
    case Kernel::aleadvect: return "aleadvect";
    case Kernel::aleupdate: return "aleupdate";
    case Kernel::halo: return "halo";
    case Kernel::reduce: return "reduce";
    case Kernel::transfer: return "transfer";
    case Kernel::other: return "other";
    case Kernel::count_: break;
    }
    return "invalid";
}

void Profiler::add_wall(Kernel k, double seconds) {
    const std::lock_guard lock(mutex_);
    auto& s = stats_[static_cast<std::size_t>(k)];
    s.wall_s += seconds;
    s.calls += 1;
}

void Profiler::add_virtual(Kernel k, double seconds) {
    const std::lock_guard lock(mutex_);
    auto& s = stats_[static_cast<std::size_t>(k)];
    s.virtual_s += seconds;
    s.calls += 1;
}

void Profiler::reset() {
    const std::lock_guard lock(mutex_);
    stats_.fill(KernelStats{});
}

KernelStats Profiler::stats(Kernel k) const {
    const std::lock_guard lock(mutex_);
    return stats_[static_cast<std::size_t>(k)];
}

std::array<KernelStats, kernel_count> Profiler::snapshot() const {
    const std::lock_guard lock(mutex_);
    return stats_;
}

double Profiler::overall_s() const {
    const std::lock_guard lock(mutex_);
    double sum = 0.0;
    for (const auto& s : stats_) sum += s.total_s();
    return sum;
}

Profiler& default_profiler() {
    static Profiler instance;
    return instance;
}

} // namespace bookleaf::util
