#pragma once
/// \file log.hpp
/// Minimal levelled logger. BookLeaf's reference implementation prints a
/// step banner per timestep; examples use info level for that.

#include <iostream>
#include <sstream>
#include <string>

namespace bookleaf::util {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel& log_threshold();

namespace detail {
void emit(LogLevel level, const std::string& msg);

template <typename... Args>
void log(LogLevel level, Args&&... args) {
    if (level < log_threshold()) return;
    std::ostringstream oss;
    (oss << ... << args);
    emit(level, oss.str());
}
} // namespace detail

template <typename... Args> void log_debug(Args&&... args) {
    detail::log(LogLevel::debug, std::forward<Args>(args)...);
}
template <typename... Args> void log_info(Args&&... args) {
    detail::log(LogLevel::info, std::forward<Args>(args)...);
}
template <typename... Args> void log_warn(Args&&... args) {
    detail::log(LogLevel::warn, std::forward<Args>(args)...);
}
template <typename... Args> void log_error(Args&&... args) {
    detail::log(LogLevel::error, std::forward<Args>(args)...);
}

} // namespace bookleaf::util
