#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace bookleaf::util {

Cli::Cli(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg.rfind("--", 0) == 0) {
            const auto body = arg.substr(2);
            const auto eq = body.find('=');
            if (eq != std::string_view::npos) {
                options_.emplace(std::string(body.substr(0, eq)),
                                 std::string(body.substr(eq + 1)));
            } else if (i + 1 < argc &&
                       std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
                options_.emplace(std::string(body), std::string(argv[i + 1]));
                ++i;
            } else {
                options_.emplace(std::string(body), "");
            }
        } else {
            positional_.emplace_back(arg);
        }
    }
}

std::optional<std::string> Cli::lookup(const std::string& key) const {
    if (const auto it = options_.find(key); it != options_.end()) return it->second;
    return std::nullopt;
}

bool Cli::has(const std::string& key) const { return options_.contains(key); }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
    return lookup(key).value_or(fallback);
}

int Cli::get_int(const std::string& key, int fallback) const {
    if (const auto v = lookup(key)) return std::atoi(v->c_str());
    return fallback;
}

double Cli::get_real(const std::string& key, double fallback) const {
    if (const auto v = lookup(key)) return std::atof(v->c_str());
    return fallback;
}

} // namespace bookleaf::util
