#pragma once
/// \file random.hpp
/// Deterministic RNG (SplitMix64) for property tests and synthetic
/// workload generation. Deliberately not std::mt19937 so the sequence is
/// bit-stable across standard libraries.

#include <cstdint>

#include "util/types.hpp"

namespace bookleaf::util {

class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next_u64() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform in [0, 1).
    Real next_real() {
        return static_cast<Real>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform in [lo, hi).
    Real uniform(Real lo, Real hi) { return lo + (hi - lo) * next_real(); }

    /// Uniform integer in [0, n).
    std::uint64_t uniform_index(std::uint64_t n) {
        return n == 0 ? 0 : next_u64() % n;
    }

private:
    std::uint64_t state_;
};

} // namespace bookleaf::util
