#pragma once
/// \file alloc.hpp
/// Default-initializing allocator: `resize` on a vector using it leaves
/// trivially-constructible elements uninitialized instead of
/// value-initializing them. That keeps freshly grown pages untouched, so
/// the *first write* decides their NUMA placement — the hook the
/// block-partitioned state arrays use for first-touch initialization
/// (each pool worker zero-fills its own static block, pulling the pages
/// onto the socket that will process that block).

#include <memory>
#include <type_traits>
#include <utility>

namespace bookleaf::util {

template <typename T, typename Base = std::allocator<T>>
class DefaultInitAllocator : public Base {
    using base_traits = std::allocator_traits<Base>;

public:
    template <typename U>
    struct rebind {
        using other =
            DefaultInitAllocator<U,
                                 typename base_traits::template rebind_alloc<U>>;
    };

    using Base::Base;

    /// Default-initialize (a no-op for trivial T) instead of
    /// value-initializing — the whole point of the allocator.
    template <typename U>
    void construct(U* ptr) noexcept(
        std::is_nothrow_default_constructible_v<U>) {
        ::new (static_cast<void*>(ptr)) U;
    }

    /// Every other construction forwards to the base allocator.
    template <typename U, typename... Args>
    void construct(U* ptr, Args&&... args) {
        base_traits::construct(static_cast<Base&>(*this), ptr,
                               std::forward<Args>(args)...);
    }

    template <typename U, typename UBase>
    [[nodiscard]] bool
    operator==(const DefaultInitAllocator<U, UBase>&) const noexcept {
        return true;
    }
};

} // namespace bookleaf::util
