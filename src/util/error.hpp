#pragma once
/// \file error.hpp
/// Error handling helpers: setup-time contract checks throw; hot-loop
/// invariants compile away in release builds.

#include <stdexcept>
#include <string>

namespace bookleaf::util {

/// Thrown when a user-facing precondition is violated (bad input deck,
/// invalid mesh request, inconsistent configuration).
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Check a setup-time precondition; throws util::Error on failure.
/// Not for use inside hot kernels (those use BL_ASSERT).
inline void require(bool cond, const std::string& msg) {
    if (!cond) throw Error(msg);
}

} // namespace bookleaf::util

/// Debug-only invariant check for hot loops. Mirrors assert() but keeps a
/// project-local spelling so it can be grepped / redefined centrally.
#ifndef NDEBUG
#include <cassert>
#define BL_ASSERT(cond) assert(cond)
#else
#define BL_ASSERT(cond) ((void)0)
#endif
