#pragma once
/// \file timer.hpp
/// Monotonic wall-clock timer.

#include <chrono>

namespace bookleaf::util {

/// Simple monotonic stopwatch. `elapsed()` returns seconds since
/// construction or the last `reset()`.
class Timer {
public:
    Timer() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    [[nodiscard]] double elapsed() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace bookleaf::util
