#pragma once
/// \file cli.hpp
/// Tiny command-line parser for examples and bench harnesses.
/// Understands `--key=value`, `--key value`, bare `--flag`, and
/// positional arguments.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace bookleaf::util {

class Cli {
public:
    Cli(int argc, const char* const* argv);

    [[nodiscard]] bool has(const std::string& key) const;
    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback) const;
    [[nodiscard]] int get_int(const std::string& key, int fallback) const;
    [[nodiscard]] double get_real(const std::string& key, double fallback) const;
    [[nodiscard]] const std::vector<std::string>& positional() const {
        return positional_;
    }

private:
    [[nodiscard]] std::optional<std::string> lookup(const std::string& key) const;

    std::unordered_map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace bookleaf::util
