#pragma once
/// \file profiler.hpp
/// Per-kernel timing registry.
///
/// The paper's Table II reports a per-kernel breakdown (viscosity,
/// acceleration, getdt, getgeom, getforce, getpc, overall). This registry
/// accumulates both *wall* seconds (measured on the host) and *virtual*
/// seconds (charged by the device / cluster simulators), so the same
/// reporting code serves real runs and modelled runs.

#include <array>
#include <cstddef>
#include <mutex>
#include <string_view>

#include "util/timer.hpp"

namespace bookleaf::util {

/// Kernel identifiers, named after the reference BookLeaf routines.
enum class Kernel : int {
    getdt = 0,
    getq,       ///< artificial viscosity ("Viscosity" column in Table II)
    getforce,
    getacc,     ///< acceleration ("Acceleration" column in Table II)
    getgeom,
    getrho,
    getein,
    getpc,
    alegetmesh,
    alegetfvol,
    aleadvect,
    aleupdate,
    halo,       ///< Typhon ghost exchanges
    reduce,     ///< global reductions (dt min-reduce)
    transfer,   ///< host<->device traffic (simulated offload builds)
    other,
    count_
};

inline constexpr std::size_t kernel_count = static_cast<std::size_t>(Kernel::count_);

/// Human-readable kernel name (matches the paper's nomenclature).
[[nodiscard]] std::string_view kernel_name(Kernel k);

/// Accumulated timings for one kernel.
struct KernelStats {
    double wall_s = 0.0;    ///< measured wall-clock seconds
    double virtual_s = 0.0; ///< simulator-charged seconds
    long calls = 0;

    /// Combined time: wall plus modelled. Real runs have virtual_s == 0,
    /// modelled runs typically have wall_s ~ 0 for the modelled parts.
    [[nodiscard]] double total_s() const { return wall_s + virtual_s; }
};

/// Thread-safe per-kernel accumulator. One instance per driver/run; a
/// process-wide default instance exists for convenience in examples.
class Profiler {
public:
    void add_wall(Kernel k, double seconds);
    void add_virtual(Kernel k, double seconds);
    void reset();

    [[nodiscard]] KernelStats stats(Kernel k) const;
    [[nodiscard]] std::array<KernelStats, kernel_count> snapshot() const;

    /// Sum of total_s over all kernels.
    [[nodiscard]] double overall_s() const;

private:
    mutable std::mutex mutex_;
    std::array<KernelStats, kernel_count> stats_{};
};

/// RAII scope that charges elapsed wall time to `kernel` on destruction.
class ScopedTimer {
public:
    ScopedTimer(Profiler& profiler, Kernel kernel)
        : profiler_(profiler), kernel_(kernel) {}
    ~ScopedTimer() { profiler_.add_wall(kernel_, timer_.elapsed()); }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Profiler& profiler_;
    Kernel kernel_;
    Timer timer_;
};

/// Process-wide default profiler (examples / quick use).
Profiler& default_profiler();

} // namespace bookleaf::util
