#pragma once
/// \file profiler.hpp
/// Per-kernel timing registry.
///
/// The paper's Table II reports a per-kernel breakdown (viscosity,
/// acceleration, getdt, getgeom, getforce, getpc, overall). This registry
/// accumulates both *wall* seconds (measured on the host) and *virtual*
/// seconds (charged by the device / cluster simulators), so the same
/// reporting code serves real runs and modelled runs.
///
/// Two kinds of slots exist. *Aggregate* slots (getdt .. other) partition
/// a run's time: overall_s() sums them. *Detail* slots (halo_pack ..
/// ale_nodes) refine an aggregate — the comm split of `halo`/`reduce` and
/// the phase split of `aleadvect` — and are charged in ADDITION to their
/// aggregate at the same scopes, so they are excluded from overall_s()
/// (counting them would double-book the refined time).
///
/// A Profiler can optionally carry a trace sink (set_trace): every
/// ScopedTimer scope then also appends a (kernel, start, duration) span,
/// timestamped against a caller-supplied epoch — the raw material of the
/// obs/ Chrome trace-event timeline. Without a sink the only extra cost
/// per scope is one null-pointer check.

#include <array>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <string_view>
#include <vector>

#include "util/timer.hpp"

namespace bookleaf::util {

/// Kernel identifiers, named after the reference BookLeaf routines.
enum class Kernel : int {
    getdt = 0,
    getq,       ///< artificial viscosity ("Viscosity" column in Table II)
    getforce,
    getacc,     ///< acceleration ("Acceleration" column in Table II)
    getgeom,
    getrho,
    getein,
    getpc,
    alegetmesh,
    alegetfvol,
    aleadvect,
    aleupdate,
    halo,       ///< Typhon ghost exchanges
    reduce,     ///< global reductions (dt min-reduce, guard votes)
    transfer,   ///< host<->device traffic (simulated offload builds)
    other,
    // --- detail slots (refinements; excluded from overall_s) -------------
    halo_pack,   ///< halo: pack owned slices + post sends/receives
    halo_wait,   ///< halo: blocked waiting for a message to arrive
    halo_unpack, ///< halo: dispatch received payloads into ghost items
    reduce_wait, ///< reduce: blocked at the rendezvous for the last rank
    ale_gradients, ///< aleadvect: centroids + limited gradients
    ale_fluxes,    ///< aleadvect: face mass/energy fluxes
    ale_cells,     ///< aleadvect: cell-mesh advection sweep
    ale_dual,      ///< aleadvect: dual-(corner-)mesh advection sweep
    ale_nodes,     ///< aleadvect: nodal momentum remap
    tasks,         ///< task-graph node spans (per-block kernel pieces)
    count_
};

inline constexpr std::size_t kernel_count = static_cast<std::size_t>(Kernel::count_);

/// Detail slots refine an aggregate slot charged over the same scopes;
/// overall_s() skips them to avoid double counting.
[[nodiscard]] constexpr bool kernel_is_detail(Kernel k) {
    return static_cast<int>(k) >= static_cast<int>(Kernel::halo_pack);
}

/// Human-readable kernel name (matches the reference routine names).
[[nodiscard]] std::string_view kernel_name(Kernel k);

/// The paper's Table II column label for a kernel: "Viscosity" for getq,
/// "Acceleration" for getacc, the routine name otherwise.
[[nodiscard]] std::string_view kernel_table2_label(Kernel k);

/// Accumulated timings for one kernel.
struct KernelStats {
    double wall_s = 0.0;    ///< measured wall-clock seconds
    double virtual_s = 0.0; ///< simulator-charged seconds
    long calls = 0;
    /// Entities swept (cells/nodes/faces), summed over calls. Charged by
    /// the kernels' own scopes from the same loop extents the CPU path
    /// runs, so wall_s/items is directly comparable to the perfmodel's
    /// per-entity roofline cost. Scopes with no natural extent (halos,
    /// reductions, snapshots) leave it 0.
    long long items = 0;

    /// Combined time: wall plus modelled. Real runs have virtual_s == 0,
    /// modelled runs typically have wall_s ~ 0 for the modelled parts.
    [[nodiscard]] double total_s() const { return wall_s + virtual_s; }
};

/// One timed scope, timestamped against the trace epoch (microseconds).
/// What the obs/ Chrome trace-event timeline is built from.
struct TraceEvent {
    Kernel kernel = Kernel::other;
    double t0_us = 0.0;  ///< scope start, microseconds since the epoch
    double dur_us = 0.0; ///< scope duration in microseconds
};

/// Thread-safe per-kernel accumulator. One instance per driver/run
/// (core::Hydro and each dist rank own theirs); the process-wide
/// default_profiler() exists only as a convenience alias for examples
/// and bare hydro::Context uses.
class Profiler {
public:
    void add_wall(Kernel k, double seconds);
    void add_virtual(Kernel k, double seconds);
    /// ScopedTimer's charge: accumulates wall time (and an optional work
    /// item count) and, when a trace sink is attached, appends the scope
    /// as a TraceEvent.
    void add_scope(Kernel k, std::chrono::steady_clock::time_point t0,
                   std::chrono::steady_clock::time_point t1,
                   long long items = 0);
    void reset();

    /// Attach (or detach, with nullptr) a trace sink: subsequent scopes
    /// append spans timestamped relative to `epoch`. The sink must
    /// outlive the attachment; appends happen under the profiler mutex.
    void set_trace(std::vector<TraceEvent>* sink,
                   std::chrono::steady_clock::time_point epoch = {});

    [[nodiscard]] KernelStats stats(Kernel k) const;
    [[nodiscard]] std::array<KernelStats, kernel_count> snapshot() const;

    /// Sum of total_s over all aggregate kernels (detail slots refine an
    /// aggregate charged over the same scopes and are skipped).
    [[nodiscard]] double overall_s() const;

private:
    mutable std::mutex mutex_;
    std::array<KernelStats, kernel_count> stats_{};
    std::vector<TraceEvent>* trace_ = nullptr;
    std::chrono::steady_clock::time_point trace_epoch_{};
};

/// RAII scope that charges elapsed wall time (and a trace span, when the
/// profiler has a sink attached) to `kernel` on destruction. The optional
/// `items` count records how many entities the scope swept (KernelStats
/// ::items) — pass the loop extent at sites where one exists.
class ScopedTimer {
public:
    ScopedTimer(Profiler& profiler, Kernel kernel, long long items = 0)
        : profiler_(profiler), kernel_(kernel), items_(items),
          start_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
        profiler_.add_scope(kernel_, start_, std::chrono::steady_clock::now(),
                            items_);
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Profiler& profiler_;
    Kernel kernel_;
    long long items_ = 0;
    std::chrono::steady_clock::time_point start_;
};

/// Process-wide default profiler — a thin convenience alias for examples
/// and hand-built hydro::Context instances. Drivers own per-run instances
/// (core::Hydro::profiler_, one per rank in dist::run), so concurrent
/// runs never share stats through this.
Profiler& default_profiler();

} // namespace bookleaf::util
