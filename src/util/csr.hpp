#pragma once
/// \file csr.hpp
/// Compressed sparse row adjacency used for mesh connectivity
/// (node -> cells), partition ghost maps, and scatter-conflict graphs.

#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace bookleaf::util {

/// Immutable CSR adjacency: `row(i)` is the list of entities adjacent to i.
struct Csr {
    std::vector<Index> offsets; ///< size = n_rows + 1
    std::vector<Index> items;   ///< size = offsets.back()

    [[nodiscard]] Index n_rows() const {
        return static_cast<Index>(offsets.empty() ? 0 : offsets.size() - 1);
    }

    [[nodiscard]] std::span<const Index> row(Index i) const {
        BL_ASSERT(i >= 0 && i < n_rows());
        return {items.data() + offsets[i],
                static_cast<std::size_t>(offsets[i + 1] - offsets[i])};
    }

    /// Build from (row, item) pairs via counting sort. Rows may be listed in
    /// any order; duplicates are preserved.
    static Csr from_pairs(Index n_rows,
                          const std::vector<std::pair<Index, Index>>& pairs) {
        Csr csr;
        csr.offsets.assign(static_cast<std::size_t>(n_rows) + 1, 0);
        for (const auto& [row, item] : pairs) {
            BL_ASSERT(row >= 0 && row < n_rows);
            (void)item;
            ++csr.offsets[static_cast<std::size_t>(row) + 1];
        }
        for (std::size_t r = 0; r < static_cast<std::size_t>(n_rows); ++r)
            csr.offsets[r + 1] += csr.offsets[r];
        csr.items.resize(static_cast<std::size_t>(csr.offsets.back()));
        std::vector<Index> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
        for (const auto& [row, item] : pairs)
            csr.items[static_cast<std::size_t>(cursor[row]++)] = item;
        return csr;
    }
};

} // namespace bookleaf::util
