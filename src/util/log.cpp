#include "util/log.hpp"

#include <mutex>

namespace bookleaf::util {

LogLevel& log_threshold() {
    static LogLevel level = LogLevel::warn;
    return level;
}

namespace detail {

void emit(LogLevel level, const std::string& msg) {
    static std::mutex mutex;
    const char* tag = "";
    switch (level) {
    case LogLevel::debug: tag = "[debug] "; break;
    case LogLevel::info: tag = "[info]  "; break;
    case LogLevel::warn: tag = "[warn]  "; break;
    case LogLevel::error: tag = "[error] "; break;
    case LogLevel::off: return;
    }
    const std::lock_guard lock(mutex);
    std::cerr << tag << msg << '\n';
}

} // namespace detail
} // namespace bookleaf::util
