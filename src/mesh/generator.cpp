#include "mesh/generator.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "util/error.hpp"

namespace bookleaf::mesh {

Mesh generate_rect(const RectSpec& spec) {
    util::require(spec.nx > 0 && spec.ny > 0, "generate_rect: nx, ny must be > 0");
    util::require(spec.x1 > spec.x0 && spec.y1 > spec.y0,
                  "generate_rect: empty extent");

    const Index nx = spec.nx;
    const Index ny = spec.ny;
    const Index nnx = nx + 1;
    const Index nny = ny + 1;

    Mesh m;
    m.x.resize(static_cast<std::size_t>(nnx) * nny);
    m.y.resize(static_cast<std::size_t>(nnx) * nny);
    m.node_bc.assign(static_cast<std::size_t>(nnx) * nny, bc::none);

    const Real dx = (spec.x1 - spec.x0) / nx;
    const Real dy = (spec.y1 - spec.y0) / ny;

    for (Index j = 0; j < nny; ++j) {
        for (Index i = 0; i < nnx; ++i) {
            const auto n = static_cast<std::size_t>(j) * nnx + i;
            Real px = spec.x0 + dx * i;
            Real py = spec.y0 + dy * j;
            if (spec.map) std::tie(px, py) = spec.map(px, py);
            m.x[n] = px;
            m.y[n] = py;
            if (spec.reflective_walls) {
                std::uint8_t mask = bc::none;
                if (i == 0 || i == nx) mask |= bc::fix_u;
                if (j == 0 || j == ny) mask |= bc::fix_v;
                m.node_bc[n] = mask;
            }
        }
    }

    m.cell_nodes.reserve(static_cast<std::size_t>(nx) * ny * corners_per_cell);
    m.cell_region.reserve(static_cast<std::size_t>(nx) * ny);
    for (Index j = 0; j < ny; ++j) {
        for (Index i = 0; i < nx; ++i) {
            const Index n0 = j * nnx + i;
            // CCW: bottom-left, bottom-right, top-right, top-left.
            m.cell_nodes.push_back(n0);
            m.cell_nodes.push_back(n0 + 1);
            m.cell_nodes.push_back(n0 + nnx + 1);
            m.cell_nodes.push_back(n0 + nnx);
            const Real cx = spec.x0 + dx * (i + Real(0.5));
            const Real cy = spec.y0 + dy * (j + Real(0.5));
            m.cell_region.push_back(spec.region_of ? spec.region_of(cx, cy) : 0);
        }
    }

    build_connectivity(m);
    return m;
}

std::pair<Real, Real> saltzmann_map(Real xi, Real eta) {
    const Real x = xi + (Real(0.1) - eta) * std::sin(std::numbers::pi_v<Real> * xi);
    return {x, eta};
}

Mesh permute(const Mesh& mesh, util::SplitMix64& rng) {
    const Index n_cells = mesh.n_cells();
    const Index n_nodes = mesh.n_nodes();

    // Fisher-Yates permutations for cells and nodes.
    std::vector<Index> cell_perm(static_cast<std::size_t>(n_cells));
    std::vector<Index> node_perm(static_cast<std::size_t>(n_nodes));
    std::iota(cell_perm.begin(), cell_perm.end(), 0);
    std::iota(node_perm.begin(), node_perm.end(), 0);
    for (Index i = n_cells - 1; i > 0; --i)
        std::swap(cell_perm[static_cast<std::size_t>(i)],
                  cell_perm[rng.uniform_index(static_cast<std::uint64_t>(i) + 1)]);
    for (Index i = n_nodes - 1; i > 0; --i)
        std::swap(node_perm[static_cast<std::size_t>(i)],
                  node_perm[rng.uniform_index(static_cast<std::uint64_t>(i) + 1)]);

    // node_perm[old] = position of old node in source ordering; we want
    // new_id[old]. Treat node_perm as new->old and invert.
    std::vector<Index> node_new_id(static_cast<std::size_t>(n_nodes));
    for (Index new_id = 0; new_id < n_nodes; ++new_id)
        node_new_id[static_cast<std::size_t>(node_perm[static_cast<std::size_t>(new_id)])] =
            new_id;

    Mesh out;
    out.x.resize(static_cast<std::size_t>(n_nodes));
    out.y.resize(static_cast<std::size_t>(n_nodes));
    out.node_bc.resize(static_cast<std::size_t>(n_nodes));
    for (Index old = 0; old < n_nodes; ++old) {
        const auto nid = static_cast<std::size_t>(node_new_id[static_cast<std::size_t>(old)]);
        out.x[nid] = mesh.x[static_cast<std::size_t>(old)];
        out.y[nid] = mesh.y[static_cast<std::size_t>(old)];
        out.node_bc[nid] = mesh.node_bc[static_cast<std::size_t>(old)];
    }

    out.cell_nodes.resize(static_cast<std::size_t>(n_cells) * corners_per_cell);
    out.cell_region.resize(static_cast<std::size_t>(n_cells));
    for (Index new_c = 0; new_c < n_cells; ++new_c) {
        const Index old_c = cell_perm[static_cast<std::size_t>(new_c)];
        for (int k = 0; k < corners_per_cell; ++k)
            out.cell_nodes[static_cast<std::size_t>(new_c) * corners_per_cell + k] =
                node_new_id[static_cast<std::size_t>(mesh.cn(old_c, k))];
        out.cell_region[static_cast<std::size_t>(new_c)] =
            mesh.cell_region[static_cast<std::size_t>(old_c)];
    }

    build_connectivity(out);
    return out;
}

} // namespace bookleaf::mesh
