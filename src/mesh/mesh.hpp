#pragma once
/// \file mesh.hpp
/// Unstructured 2-D quadrilateral mesh.
///
/// Storage is fully unstructured: cells are lists of four node indices in
/// counter-clockwise order, faces are discovered by hashing node pairs, and
/// node valence is arbitrary (node->cell adjacency is CSR). The staggered
/// discretisation places thermodynamic state on cells and kinematic state
/// on nodes (paper §III-A).

#include <cstdint>
#include <vector>

#include "util/csr.hpp"
#include "util/types.hpp"

namespace bookleaf::mesh {

/// Per-node boundary-condition bitmask.
namespace bc {
inline constexpr std::uint8_t none = 0;
inline constexpr std::uint8_t fix_u = 1; ///< reflective wall normal to x
inline constexpr std::uint8_t fix_v = 2; ///< reflective wall normal to y
inline constexpr std::uint8_t piston = 4; ///< driven node (Saltzmann)
} // namespace bc

/// A unique mesh face. Orientation: traversing a->b keeps the *left* cell
/// on the left; for boundary faces `right == no_index`.
struct Face {
    Index a = no_index;     ///< first node
    Index b = no_index;     ///< second node
    Index left = no_index;  ///< owning cell (sees a->b counter-clockwise)
    Index right = no_index; ///< neighbour cell, or no_index on the boundary
    int k_left = -1;        ///< local face index within `left` (nodes k, k+1)
    int k_right = -1;       ///< local face index within `right`
};

/// Unstructured quad mesh with derived connectivity.
struct Mesh {
    // --- primary storage -------------------------------------------------
    std::vector<Real> x, y;            ///< node coordinates
    std::vector<Index> cell_nodes;     ///< 4 * n_cells, CCW per cell
    std::vector<Index> cell_region;    ///< material region per cell
    std::vector<std::uint8_t> node_bc; ///< boundary-condition mask per node

    // --- derived connectivity (filled by build_connectivity) -------------
    std::vector<Index> cell_neigh; ///< 4 * n_cells; neighbour across local
                                   ///< face k (nodes k, k+1 mod 4)
    std::vector<Index> cell_face;  ///< 4 * n_cells; global face id of local face k
    std::vector<Face> faces;       ///< unique faces
    util::Csr node_cells;          ///< node -> incident cells
    /// Node -> incident (cell, corner) pairs, packed as the flat corner id
    /// `cell * corners_per_cell + k` (the same index that addresses the
    /// corner arrays in hydro::State). Row order is ascending flat id, i.e.
    /// ascending (cell, corner) — so a gather over a row visits corner
    /// contributions in exactly the order a cell-loop scatter would deposit
    /// them, making the gather-based nodal assembly bitwise identical to
    /// the serial scatter at any thread count.
    util::Csr node_corners;

    [[nodiscard]] Index n_nodes() const { return static_cast<Index>(x.size()); }
    [[nodiscard]] Index n_cells() const {
        return static_cast<Index>(cell_nodes.size() / corners_per_cell);
    }
    [[nodiscard]] Index n_faces() const { return static_cast<Index>(faces.size()); }

    /// Node id of local corner k (0..3) of cell c.
    [[nodiscard]] Index cn(Index c, int k) const {
        return cell_nodes[static_cast<std::size_t>(c) * corners_per_cell +
                          static_cast<std::size_t>(k)];
    }

    /// Neighbour cell across local face k of cell c (no_index on boundary).
    [[nodiscard]] Index neighbor(Index c, int k) const {
        return cell_neigh[static_cast<std::size_t>(c) * corners_per_cell +
                          static_cast<std::size_t>(k)];
    }

    /// Global face id of local face k of cell c.
    [[nodiscard]] Index face_of(Index c, int k) const {
        return cell_face[static_cast<std::size_t>(c) * corners_per_cell +
                         static_cast<std::size_t>(k)];
    }

    /// Number of distinct material regions (max region id + 1).
    [[nodiscard]] Index n_regions() const;
};

/// Populate `cell_neigh`, `faces`, and `node_cells` from the primary
/// storage. Throws util::Error if a face is shared by more than two cells
/// or a cell is degenerate.
void build_connectivity(Mesh& mesh);

/// Sanity-check invariants (consistent sizes, valid indices, reciprocal
/// neighbour links). Returns a human-readable description of the first
/// violation, or an empty string when the mesh is consistent.
[[nodiscard]] std::string check_consistency(const Mesh& mesh);

} // namespace bookleaf::mesh
