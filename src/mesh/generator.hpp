#pragma once
/// \file generator.hpp
/// Mesh generators. The generators emit *unstructured* storage (no
/// structured indexing survives), matching how the reference BookLeaf
/// builds its test meshes; `permute` can additionally scramble entity
/// order to prove kernels never rely on structured numbering.

#include <functional>

#include "mesh/mesh.hpp"
#include "util/random.hpp"

namespace bookleaf::mesh {

/// Specification for a tensor-product rectangle that is emitted as an
/// unstructured quad mesh.
struct RectSpec {
    Real x0 = 0.0, x1 = 1.0;
    Real y0 = 0.0, y1 = 1.0;
    Index nx = 10, ny = 10;

    /// Material region for a cell given its (undistorted) centroid.
    /// Defaults to region 0 everywhere.
    std::function<Index(Real, Real)> region_of;

    /// Node-coordinate mapping applied after lattice generation (mesh
    /// distortion, e.g. the Saltzmann skew). Defaults to identity.
    std::function<std::pair<Real, Real>(Real, Real)> map;

    /// If true (default), nodes on the rectangle boundary receive
    /// reflective-wall masks: fix_u on x-extremes, fix_v on y-extremes.
    bool reflective_walls = true;
};

/// Generate an unstructured quad mesh for the rectangle. Connectivity is
/// built before returning.
Mesh generate_rect(const RectSpec& spec);

/// The classic Saltzmann mesh distortion on [0,1]x[0,0.1]:
///   x(i,j) = xi + (0.1 - eta) * sin(pi * xi),  y = eta
/// which skews cell columns to exacerbate hourglass modes (paper §III-B).
std::pair<Real, Real> saltzmann_map(Real xi, Real eta);

/// Randomly permute cell and node numbering (preserving geometry and
/// region/bc data), then rebuild connectivity. Kernels must be invariant
/// to this relabelling — used by property tests.
Mesh permute(const Mesh& mesh, util::SplitMix64& rng);

} // namespace bookleaf::mesh
