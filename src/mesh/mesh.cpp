#include "mesh/mesh.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/error.hpp"

namespace bookleaf::mesh {

namespace {

/// Key for the edge hash: unordered node pair packed into 64 bits.
std::uint64_t edge_key(Index a, Index b) {
    const auto lo = static_cast<std::uint64_t>(std::min(a, b));
    const auto hi = static_cast<std::uint64_t>(std::max(a, b));
    return (hi << 32) | lo;
}

} // namespace

Index Mesh::n_regions() const {
    Index max_region = -1;
    for (const Index r : cell_region) max_region = std::max(max_region, r);
    return max_region + 1;
}

void build_connectivity(Mesh& mesh) {
    const Index n_cells = mesh.n_cells();
    const Index n_nodes = mesh.n_nodes();
    util::require(mesh.cell_nodes.size() ==
                      static_cast<std::size_t>(n_cells) * corners_per_cell,
                  "mesh: cell_nodes size is not 4*n_cells");

    mesh.cell_neigh.assign(static_cast<std::size_t>(n_cells) * corners_per_cell,
                           no_index);
    mesh.cell_face.assign(static_cast<std::size_t>(n_cells) * corners_per_cell,
                          no_index);
    mesh.faces.clear();

    // Discover faces: first sighting creates the face; second sighting
    // links the neighbour. A third sighting is a topological error.
    std::unordered_map<std::uint64_t, Index> open_faces;
    open_faces.reserve(static_cast<std::size_t>(n_cells) * 2);

    for (Index c = 0; c < n_cells; ++c) {
        for (int k = 0; k < corners_per_cell; ++k) {
            const Index a = mesh.cn(c, k);
            const Index b = mesh.cn(c, (k + 1) % corners_per_cell);
            util::require(a >= 0 && a < n_nodes && b >= 0 && b < n_nodes,
                          "mesh: cell corner index out of range");
            util::require(a != b, "mesh: degenerate cell edge");
            const auto key = edge_key(a, b);
            if (const auto it = open_faces.find(key); it == open_faces.end()) {
                Face f;
                f.a = a;
                f.b = b;
                f.left = c;
                f.k_left = k;
                const auto fid = static_cast<Index>(mesh.faces.size());
                open_faces.emplace(key, fid);
                mesh.faces.push_back(f);
                mesh.cell_face[static_cast<std::size_t>(c) * corners_per_cell + k] =
                    fid;
            } else {
                const Index fid = it->second;
                Face& f = mesh.faces[static_cast<std::size_t>(fid)];
                util::require(f.right == no_index,
                              "mesh: face shared by more than two cells");
                f.right = c;
                f.k_right = k;
                mesh.cell_face[static_cast<std::size_t>(c) * corners_per_cell + k] =
                    fid;
                mesh.cell_neigh[static_cast<std::size_t>(c) * corners_per_cell + k] =
                    f.left;
                mesh.cell_neigh[static_cast<std::size_t>(f.left) * corners_per_cell +
                                f.k_left] = c;
            }
        }
    }

    // Node -> cell and node -> (cell, corner) adjacency (arbitrary
    // valence). Pairs are emitted in ascending (cell, corner) order, which
    // from_pairs preserves within each row — the ordering contract the
    // gather-based nodal assembly relies on for bitwise determinism.
    std::vector<std::pair<Index, Index>> pairs;
    pairs.reserve(static_cast<std::size_t>(n_cells) * corners_per_cell);
    for (Index c = 0; c < n_cells; ++c)
        for (int k = 0; k < corners_per_cell; ++k)
            pairs.emplace_back(mesh.cn(c, k), c);
    mesh.node_cells = util::Csr::from_pairs(n_nodes, pairs);
    for (Index c = 0; c < n_cells; ++c)
        for (int k = 0; k < corners_per_cell; ++k)
            pairs[static_cast<std::size_t>(c) * corners_per_cell +
                  static_cast<std::size_t>(k)] = {
                mesh.cn(c, k), c * corners_per_cell + k};
    mesh.node_corners = util::Csr::from_pairs(n_nodes, pairs);

    if (mesh.cell_region.empty())
        mesh.cell_region.assign(static_cast<std::size_t>(n_cells), 0);
    if (mesh.node_bc.empty())
        mesh.node_bc.assign(static_cast<std::size_t>(n_nodes), bc::none);
}

std::string check_consistency(const Mesh& mesh) {
    const Index n_cells = mesh.n_cells();
    const Index n_nodes = mesh.n_nodes();
    if (mesh.x.size() != mesh.y.size()) return "x/y size mismatch";
    if (mesh.cell_region.size() != static_cast<std::size_t>(n_cells))
        return "cell_region size mismatch";
    if (mesh.node_bc.size() != static_cast<std::size_t>(n_nodes))
        return "node_bc size mismatch";
    if (mesh.cell_neigh.size() !=
        static_cast<std::size_t>(n_cells) * corners_per_cell)
        return "cell_neigh size mismatch (connectivity not built?)";

    for (Index c = 0; c < n_cells; ++c) {
        for (int k = 0; k < corners_per_cell; ++k) {
            const Index n = mesh.cn(c, k);
            if (n < 0 || n >= n_nodes) return "corner node out of range";
            const Index nb = mesh.neighbor(c, k);
            if (nb == no_index) continue;
            if (nb < 0 || nb >= n_cells) return "neighbour out of range";
            // Reciprocity: nb must list c as one of its neighbours.
            bool found = false;
            for (int kk = 0; kk < corners_per_cell; ++kk)
                if (mesh.neighbor(nb, kk) == c) found = true;
            if (!found) return "non-reciprocal neighbour link";
        }
    }

    // node_corners: every (cell, corner) appears exactly once, under the
    // node the corner actually references, in ascending flat-id order.
    if (mesh.node_corners.n_rows() != n_nodes)
        return "node_corners row count mismatch (connectivity not built?)";
    if (mesh.node_corners.items.size() !=
        static_cast<std::size_t>(n_cells) * corners_per_cell)
        return "node_corners item count is not 4*n_cells";
    {
        std::vector<std::uint8_t> seen(
            static_cast<std::size_t>(n_cells) * corners_per_cell, 0);
        for (Index n = 0; n < n_nodes; ++n) {
            Index prev = no_index;
            for (const Index ck : mesh.node_corners.row(n)) {
                if (ck < 0 ||
                    ck >= n_cells * static_cast<Index>(corners_per_cell))
                    return "node_corners flat id out of range";
                if (ck <= prev) return "node_corners row not strictly ascending";
                prev = ck;
                if (seen[static_cast<std::size_t>(ck)]++)
                    return "duplicate (cell, corner) in node_corners";
                if (mesh.cn(ck / corners_per_cell, ck % corners_per_cell) != n)
                    return "node_corners entry under the wrong node";
            }
        }
    }

    for (const auto& f : mesh.faces) {
        if (f.left == no_index) return "face without owner";
        if (f.a == f.b) return "degenerate face";
        if (f.right != no_index) {
            // The shared face must use the same two nodes in both cells.
            const Index la = mesh.cn(f.left, f.k_left);
            const Index lb = mesh.cn(f.left, (f.k_left + 1) % corners_per_cell);
            const Index ra = mesh.cn(f.right, f.k_right);
            const Index rb = mesh.cn(f.right, (f.k_right + 1) % corners_per_cell);
            if (!((la == rb && lb == ra) || (la == ra && lb == rb)))
                return "face node mismatch between owner and neighbour";
        }
    }
    return {};
}

} // namespace bookleaf::mesh
