#pragma once
/// \file resilience.hpp
/// Resilience policy knobs, shared by the serial and distributed drivers.
///
/// Two independent mechanisms, both off by default:
///
/// * Guard — step health guards + dt-backoff retry. After each Lagrangian
///   corrector the driver validates the produced fields (finite, positive
///   density/volume, non-negative energy); a violating step is rolled back
///   and retried with dt scaled by `backoff`, up to `max_retries` times.
///   After a retry, dt re-growth is capped at `regrow_cap` per step until
///   the usual dt_growth ladder takes over — a freshly stabilised dt must
///   not leap straight back to the value that failed. In the distributed
///   driver the accept/retry verdict is a collective min-reduction, so
///   every rank takes bitwise the same decision.
///
/// * Supervision — in-flight rank-failure recovery in dist::run. The
///   driver keeps an in-memory ring of recent snapshots (cadence
///   `snapshot_every` steps, capacity `ring_capacity`, optionally spilled
///   to the on-disk checkpoint format under `spill_prefix`); when a rank
///   dies mid-run (typhon::RankFailure) the supervisor rolls back to the
///   newest snapshot and resumes on the survivor count — rank-elastic
///   through part::decompose, so the recovered trajectory is bitwise
///   identical to an uninterrupted run. Bounded by `max_recoveries`.
///   The live-monitoring watchdog (obs/live.hpp, `[telemetry]`
///   watchdog_escalate) feeds this same loop: a rank whose window stream
///   goes silent — a hang the transport cannot see as a failure — is
///   poisoned and throws obs::StallEscalated, which typhon wraps in a
///   RankFailure like any rank error, so silent hangs recover through
///   the identical rollback/resume path.

#include <string>

namespace bookleaf::resil {

/// Step health-guard + dt-backoff retry policy (deck `[resilience]`:
/// guards / backoff / max_retries / regrow_cap).
struct Guard {
    bool enabled = false;
    /// dt multiplier per rejected attempt (in (0, 1)).
    double backoff = 0.5;
    /// Attempts per step beyond the first before giving up.
    int max_retries = 8;
    /// Per-step dt re-growth factor after a backoff (>= 1).
    double regrow_cap = 1.02;
};

/// Rank-failure supervision policy for dist::run (deck `[resilience]`:
/// supervise / max_recoveries / snapshot_every / ring / spill_prefix /
/// recovery_backoff_ms).
struct Supervision {
    bool enabled = false;
    /// Rank failures survived before the error propagates.
    int max_recoveries = 2;
    /// In-memory snapshot cadence in steps (0 = only the deck's own
    /// checkpoint cadence feeds the ring).
    int snapshot_every = 0;
    /// Newest snapshots kept in memory.
    int ring_capacity = 2;
    /// When non-empty, each ring snapshot is also written (atomically) to
    /// `<spill_prefix>_<step>.ckpt` — recovery insurance that outlives the
    /// process.
    std::string spill_prefix;
    /// Sleep between a detected failure and the restart attempt.
    int backoff_ms = 0;
};

} // namespace bookleaf::resil
