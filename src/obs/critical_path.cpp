#include "obs/critical_path.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace bookleaf::obs {

GraphAnalysis analyze_graph(const par::GraphRunRecord& run) {
    GraphAnalysis out;
    const std::size_t n = run.tasks.size();
    out.n_workers = std::max(1, run.n_workers);
    out.worker_busy_us.assign(static_cast<std::size_t>(out.n_workers), 0.0);
    if (n == 0) return out;

    double t_begin = run.tasks[0].t0_us;
    double t_end = run.tasks[0].t0_us + run.tasks[0].dur_us;
    for (const auto& task : run.tasks) {
        t_begin = std::min(t_begin, task.t0_us);
        t_end = std::max(t_end, task.t0_us + task.dur_us);
        out.busy_us += task.dur_us;
        const auto w = static_cast<std::size_t>(
            std::clamp(task.worker, 0, out.n_workers - 1));
        out.worker_busy_us[w] += task.dur_us;
    }
    out.makespan_us = t_end - t_begin;

    // Longest duration-weighted path: Kahn topological order, then
    // dist[i] = dur[i] + max over predecessors dist[p], tracking the
    // argmax predecessor so the path can be reconstructed.
    std::vector<int> indeg(n, 0);
    std::vector<std::vector<par::TaskId>> succ(n);
    for (const auto& [before, after] : run.edges) {
        util::require(before >= 0 && static_cast<std::size_t>(before) < n &&
                          after >= 0 && static_cast<std::size_t>(after) < n,
                      "critical_path: edge task id out of range");
        succ[static_cast<std::size_t>(before)].push_back(after);
        ++indeg[static_cast<std::size_t>(after)];
    }
    std::vector<double> dist(n, 0.0);
    std::vector<par::TaskId> pred(n, par::TaskId{-1});
    std::queue<par::TaskId> ready;
    for (std::size_t i = 0; i < n; ++i) {
        dist[i] = run.tasks[i].dur_us;
        if (indeg[i] == 0) ready.push(static_cast<par::TaskId>(i));
    }
    std::size_t processed = 0;
    while (!ready.empty()) {
        const par::TaskId id = ready.front();
        ready.pop();
        ++processed;
        const auto i = static_cast<std::size_t>(id);
        for (const par::TaskId s : succ[i]) {
            const auto si = static_cast<std::size_t>(s);
            const double through = dist[i] + run.tasks[si].dur_us;
            if (through > dist[si]) {
                dist[si] = through;
                pred[si] = id;
            }
            if (--indeg[si] == 0) ready.push(s);
        }
    }
    util::require(processed == n, "critical_path: cyclic graph record");

    par::TaskId tail = 0;
    for (std::size_t i = 1; i < n; ++i)
        if (dist[i] > dist[static_cast<std::size_t>(tail)])
            tail = static_cast<par::TaskId>(i);
    out.cp_us = dist[static_cast<std::size_t>(tail)];
    for (par::TaskId id = tail; id >= 0;
         id = pred[static_cast<std::size_t>(id)]) {
        out.path.push_back(id);
        const auto& task = run.tasks[static_cast<std::size_t>(id)];
        out.cp_kernel_us[static_cast<std::size_t>(task.kernel)] += task.dur_us;
    }
    std::reverse(out.path.begin(), out.path.end());

    const double capacity =
        static_cast<double>(out.n_workers) * out.makespan_us;
    out.efficiency = capacity > 0.0 ? out.busy_us / capacity : 0.0;
    return out;
}

void attribute_step(par::GraphRunLog& log, StepRecord& step,
                    RankAttribution& total, std::vector<CritSpan>* critical) {
    for (const par::GraphRunRecord& run : log.runs) {
        const GraphAnalysis a = analyze_graph(run);
        step.cp_us += a.cp_us;
        step.graph_busy_us += a.busy_us;
        step.graph_makespan_us += a.makespan_us;
        step.graph_workers = std::max(step.graph_workers, a.n_workers);

        total.graphs += 1;
        total.cp_us += a.cp_us;
        total.busy_us += a.busy_us;
        total.makespan_us += a.makespan_us;
        for (std::size_t k = 0; k < a.cp_kernel_us.size(); ++k)
            total.cp_kernel_us[k] += a.cp_kernel_us[k];
        if (total.worker_busy_us.size() < a.worker_busy_us.size())
            total.worker_busy_us.resize(a.worker_busy_us.size(), 0.0);
        for (std::size_t w = 0; w < a.worker_busy_us.size(); ++w)
            total.worker_busy_us[w] += a.worker_busy_us[w];

        if (critical != nullptr) {
            for (const par::TaskId id : a.path) {
                const auto& task = run.tasks[static_cast<std::size_t>(id)];
                critical->push_back(
                    CritSpan{task.t0_us, task.dur_us, total.graphs});
            }
        }
    }
    log.runs.clear();
}

} // namespace bookleaf::obs
