#pragma once
/// \file telemetry.hpp
/// Run-scoped telemetry: per-rank/per-step metrics, trace timelines, and
/// the JSON run report.
///
/// Both drivers (core::Hydro and dist::run) collect the same record
/// shapes: one StepRecord per completed step (wall time, dt and the
/// controller constraint that chose it, guard retries, remap flag) and
/// one RankRecord per rank (step records + the rank's per-kernel
/// Profiler breakdown + Hub per-peer send counters + optional trace
/// spans). The dist driver gathers rank records to rank 0 over the
/// in-process wire (tag 501, the same pack/gather pattern as the
/// checkpoint path) and computes the max/mean step-time imbalance — the
/// signal the ROADMAP load-balancing item needs.
///
/// Contract: telemetry is PASSIVE. Collecting it never changes the
/// trajectory (records are written after the physics of a step commits),
/// and with Options inactive the drivers skip collection entirely, so a
/// telemetry-off run is bitwise identical to one built before this layer
/// existed.
///
/// Sinks (write_outputs): a schema-versioned JSON report
/// ("bookleaf.telemetry/1"), a Chrome trace-event timeline (load in
/// chrome://tracing or https://ui.perfetto.dev; one track per rank), and
/// a human summary in the paper's Table II layout.

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/profiler.hpp"
#include "util/types.hpp"

namespace bookleaf::obs {

/// Telemetry configuration (deck `[telemetry]` section and/or CLI flags).
/// Any requested output activates collection; `enabled` forces it on even
/// with no sinks (records are then only available programmatically).
struct Options {
    bool enabled = false;
    std::string report; ///< JSON run-report path ("" = don't write)
    std::string trace;  ///< Chrome trace-event path ("" = don't write)
    bool summary = false; ///< print the Table II style summary to stdout
    std::string label;    ///< run label in the report (default: problem)
    /// Anomaly threshold: a kernel is flagged when its per-item (or
    /// per-call) cost exceeds `anomaly_factor` times the cross-rank
    /// reference, or its distance from the roofline expectation is an
    /// outlier by the same factor (see detect_anomalies).
    double anomaly_factor = 4.0;

    // --- live monitoring (obs/live.hpp) ---------------------------------
    /// Fold a WindowRecord every this many steps and (distributed) stream
    /// it to rank 0 over tag 502. 0 = live monitoring off.
    long window_steps = 0;
    /// NDJSON event-stream path ("bookleaf.live/1"; "" = don't write).
    std::string live;
    /// Arm the hang watchdog: flag a rank silent on the window stream for
    /// longer than watchdog_factor x its EWMA window time. 0 = off.
    double watchdog_factor = 0.0;
    /// Absolute grace floor added to the watchdog threshold (absorbs OS
    /// scheduling jitter on very short windows).
    int watchdog_grace_ms = 250;
    /// Escalate a detected stall into a typhon::RankFailure so the
    /// supervised recovery loop handles it like a dead rank.
    bool watchdog_escalate = false;
    /// Bound RankRecord::steps retention to this many recent records
    /// (evicted records fold into RankRecord::evicted). 0 = unbounded.
    long max_steps = 0;

    [[nodiscard]] bool active() const {
        return enabled || summary || !report.empty() || !trace.empty() ||
               live_active() || !live.empty();
    }
    /// Window folding (and the tag-502 stream) is on.
    [[nodiscard]] bool live_active() const { return window_steps > 0; }
    /// Trace spans are only recorded when somewhere to put them exists.
    [[nodiscard]] bool want_trace() const { return !trace.empty(); }
};

/// Stable codes for the dt controller's constraint names, so step records
/// survive the flat-Real telemetry gather. code 0 is "unknown".
[[nodiscard]] int dt_reason_code(std::string_view reason);
[[nodiscard]] std::string_view dt_reason_name(int code);

/// One completed step, as seen by one rank.
struct StepRecord {
    long step = 0;        ///< step index (0-based)
    double t = 0.0;       ///< time at the END of the step
    double dt = 0.0;      ///< global (post-reduce) dt taken
    double dt_local = 0.0; ///< this rank's pre-reduce candidate dt
    int dt_reason = 0;     ///< dt_reason_code of the local constraint
    double start_us = 0.0; ///< step start, microseconds since run epoch
    double wall_us = 0.0;  ///< step wall time in microseconds
    int retries = 0;       ///< health-guard dt-backoff retries this step
    bool remapped = false; ///< an ALE/Eulerian remap ran this step

    // Task-graph attribution (zero when the step ran no graphs — e.g.
    // fork-join schedule, serial width, or non-remap dist steps).
    double cp_us = 0.0;       ///< Σ critical-path length over graph runs
    double graph_busy_us = 0.0;     ///< Σ task durations over graph runs
    double graph_makespan_us = 0.0; ///< Σ graph makespans
    int graph_workers = 0;    ///< max worker count over the step's graphs
};

/// One monitoring window: `steps` consecutive StepRecords of one rank
/// folded into a fixed-size aggregate (obs/live.hpp builds and streams
/// these; the report retains them per rank, and the max_steps ring folds
/// evicted records into one as its loss-free aggregate). Small enough to
/// stream every few steps yet enough to drive a load balancer: wall
/// time, worst/mean step, blocked-on-peers share, swept throughput.
struct WindowRecord {
    int rank = 0;
    long index = 0;       ///< 0-based window ordinal within the run
    long first_step = 0;  ///< first step folded into this window
    long last_step = -1;  ///< last step folded (inclusive)
    long steps = 0;       ///< step count (== window_steps except tails)
    double t = 0.0;       ///< simulation time at the end of the window
    double wall_us = 0.0; ///< summed step wall time
    double max_step_us = 0.0;    ///< slowest single step
    double halo_wait_us = 0.0;   ///< blocked-on-halo time (profiler delta)
    double reduce_wait_us = 0.0; ///< blocked-on-reduce time
    long retries = 0;     ///< health-guard dt-backoff retries
    long remaps = 0;      ///< steps that ran an ALE/Eulerian remap
    long long items = 0;  ///< swept entities (non-detail kernels delta)

    [[nodiscard]] double mean_step_us() const {
        return steps > 0 ? wall_us / static_cast<double>(steps) : 0.0;
    }
    /// Swept entities per second of window wall time (0 when unmeasured).
    [[nodiscard]] double items_per_s() const {
        return wall_us > 0.0
                   ? static_cast<double>(items) / (wall_us * 1e-6)
                   : 0.0;
    }
};

/// Number of Reals in the flat wire encoding of one WindowRecord.
inline constexpr std::size_t window_reals = 13;

/// Fold one completed step into a window aggregate (the step-derived
/// fields only; profiler-delta fields are obs::WindowFolder's job).
void fold_step(WindowRecord& w, const StepRecord& s);

/// Flat-Real codec for the tag-502 window stream (and the window fields
/// of the tag-501 rank-record gather).
[[nodiscard]] std::vector<Real> pack_window(const WindowRecord& w);
[[nodiscard]] WindowRecord unpack_window(std::span<const Real> buf);

/// JSON object for one window (the "window" NDJSON event body and the
/// per-rank "windows" entries of the run report). Timing keys carry the
/// _us/_s suffixes the report-determinism scrubber strips.
[[nodiscard]] Json window_json(const WindowRecord& w);

/// One task on the critical path, on the rank's trace timeline. `chain`
/// groups the tasks of one graph execution so the trace writer can draw
/// flow arrows between consecutive critical tasks of the same graph.
struct CritSpan {
    double t0_us = 0.0;
    double dur_us = 0.0;
    long chain = 0;
};

/// Whole-run task-graph attribution for one rank: the accumulation of
/// obs::GraphAnalysis over every graph the rank executed.
struct RankAttribution {
    long graphs = 0;          ///< graph executions analyzed
    double cp_us = 0.0;       ///< Σ critical-path length
    double busy_us = 0.0;     ///< Σ task durations
    double makespan_us = 0.0; ///< Σ graph makespans
    /// Critical-path time per kernel label ("which kernel bounds the
    /// step" — the top entries go in the summary table).
    std::array<double, util::kernel_count> cp_kernel_us{};
    /// Per-worker busy time; idle = makespan_us - worker_busy_us[w].
    std::vector<double> worker_busy_us;

    /// busy / (workers x makespan): the fraction of available
    /// worker-seconds the graphs actually used.
    [[nodiscard]] double efficiency() const;
};

/// Messages/reals this rank sent to one peer over the whole run.
struct PeerCount {
    int peer = -1;
    long messages = 0;
    long long reals = 0;
};

/// Everything one rank recorded. In dist runs, gathered to rank 0.
struct RankRecord {
    int rank = 0;
    /// This rank's run epoch, as microseconds after rank 0's epoch.
    /// Rank threads start (and stamp their clocks) at slightly different
    /// times; rank 0 uses this offset to shift gathered timestamps onto
    /// its own timeline so trace tracks align.
    double epoch_us = 0.0;
    std::vector<StepRecord> steps;
    std::array<util::KernelStats, util::kernel_count> kernels{};
    RankAttribution attrib;
    std::vector<PeerCount> sent;
    std::vector<util::TraceEvent> trace;
    /// Critical-path task spans (host-attached like `trace`, not wired).
    std::vector<CritSpan> critical;
    /// Live-monitoring windows the rank folded ([telemetry] window_steps
    /// > 0). These AGGREGATE records already in `steps`/`evicted` — they
    /// are retained for the report, not added to the totals again.
    std::vector<WindowRecord> windows;
    /// Aggregate of StepRecords evicted by the [telemetry] max_steps
    /// ring (steps == 0 when nothing was evicted). Unlike `windows`,
    /// these records are NOT in `steps` anymore: per-rank totals count
    /// this aggregate plus the retained records.
    WindowRecord evicted;

    /// Sum of step wall times, in seconds: the retained records plus the
    /// ring-evicted aggregate (exact however long the run).
    [[nodiscard]] double step_wall_s() const;
};

/// The load-balance signal: max over ranks of total step time, divided by
/// the mean. 1.0 = perfectly balanced; the FaultPlan slow_rank test
/// drives it well above 1.
struct Imbalance {
    double max_over_mean = 1.0;
    double mean_rank_s = 0.0;
    double max_rank_s = 0.0;
    int slowest_rank = -1;
};

/// Wire-format self-check: measured Hub messages vs the count predicted
/// by the Subdomain messages_per_step/messages_per_remap metadata (plus
/// the driver's own gathers). Only `checked` when no faults, recoveries,
/// or retries perturbed the schedule; a mismatch is reported (and
/// log_warn'ed), never thrown — observability catches drift, tests fail it.
struct WireCheck {
    bool checked = false;
    long long expected = 0;
    long long measured = 0;
    bool match = false;
};

/// A supervised-run recovery, mirrored from dist::Recovery.
struct RecoveryEvent {
    int failed_rank = -1;
    long failed_step = -1;
    long resumed_step = -1;
    int survivors = 0;
};

/// The full run configuration, recorded so a report is reproducible
/// without the invoking script: which schedule ran, at what width, with
/// which blocking/comm knobs.
struct RunConfig {
    std::string schedule = "forkjoin"; ///< "forkjoin" / "taskgraph"
    long task_block = 0;  ///< resolved task-graph block size (0 = n/a)
    long grain = 0;       ///< fork-join partition grain (0 = default)
    int n_threads = 1;    ///< pool width per rank
    int n_ranks = 1;
    bool overlap = false;
    std::string packing;  ///< "" when serial
};

/// Static work descriptor for one kernel: flops/bytes per swept entity,
/// taken from the perfmodel WorkTable. Combined with the measured
/// KernelStats (wall_s, items) this yields achieved GFLOP/s and GB/s and
/// a roofline time to compare against.
struct KernelWorkInfo {
    double flops_per_item = 0.0;
    double bytes_per_item = 0.0;
};

/// The perfmodel's view of the host, attached to the report when the
/// driver has one: peak per-rank compute and bandwidth plus the static
/// per-kernel work descriptors.
struct WorkModel {
    bool present = false;
    double peak_flops = 0.0; ///< per-rank flop/s
    double peak_bw = 0.0;    ///< per-rank bytes/s
    std::array<KernelWorkInfo, util::kernel_count> kernels{};
};

/// Roofline expectation for `items` entities of kernel `k`:
/// max(flops/peak_flops, bytes/peak_bw). 0 when the model has no
/// descriptor for the kernel.
[[nodiscard]] double roofline_seconds(const WorkModel& work, util::Kernel k,
                                      long long items);

/// A kernel whose measured cost deviates from expectation by more than
/// Options::anomaly_factor. Two detectors (see detect_anomalies):
/// "cross_rank" compares a rank's per-item (or per-call) seconds against
/// the fastest rank (skipping peer-blocking scopes, whose wall time
/// measures the OTHER ranks' pace); "roofline" compares a kernel's
/// distance from its roofline time against the rank's median distance.
struct Anomaly {
    int rank = -1;
    util::Kernel kernel = util::Kernel::other;
    std::string metric;    ///< "cross_rank" / "roofline"
    double value = 0.0;     ///< the offending measurement
    double reference = 0.0; ///< what it was compared against
    double factor = 0.0;    ///< value / reference (> anomaly_factor)
};

/// The full run report (JSON schema "bookleaf.telemetry/1").
struct RunReport {
    std::string schema = "bookleaf.telemetry/1";
    std::string problem;
    std::string label;
    std::string mode;     ///< "serial" or "distributed"
    int n_ranks = 1;
    bool overlap = false;
    std::string packing;  ///< "coalesced" / "per_field" ("" when serial)
    long steps = 0;
    double t_final = 0.0;
    double wall_s = 0.0;  ///< whole-run wall time on rank 0 / the driver
    RunConfig config;
    WorkModel work;
    Imbalance imbalance;
    WireCheck wire;
    std::vector<Anomaly> anomalies;
    std::vector<RecoveryEvent> recoveries;
    std::vector<RankRecord> ranks;
};

/// Compute the max/mean step-time imbalance over gathered rank records.
[[nodiscard]] Imbalance imbalance_of(const std::vector<RankRecord>& ranks);

/// Scan the gathered rank records for kernels deviating from expectation
/// by more than `factor` (see Anomaly). Kernels below a small wall-time
/// noise floor are never flagged. Deterministic given the records.
[[nodiscard]] std::vector<Anomaly> detect_anomalies(const RunReport& report,
                                                    double factor);

/// Serialize the report (deterministic member order; see json.hpp).
[[nodiscard]] Json to_json(const RunReport& report);

/// Chrome trace-event document: one "X" (complete) event per recorded
/// scope, pid = run, tid = rank, plus thread_name metadata per rank.
[[nodiscard]] Json trace_json(const RunReport& report);

/// Human summary reproducing the paper's Table II layout (per-kernel
/// seconds and share of overall), followed by per-rank step time and the
/// imbalance line for distributed runs.
[[nodiscard]] std::string summary_table(const RunReport& report);

/// Apply the sinks requested in `opts`: write the JSON report and/or the
/// trace file, print the summary. No-op fields are skipped.
void write_outputs(const Options& opts, const RunReport& report);

/// Flat-Real codec for the tag-501 telemetry gather (steps + kernel
/// breakdown; peer counters and traces are attached host-side by rank 0).
[[nodiscard]] std::vector<Real> pack_rank(const RankRecord& rank);
[[nodiscard]] RankRecord unpack_rank(const std::vector<Real>& buf);

} // namespace bookleaf::obs
