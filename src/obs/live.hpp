#pragma once
/// \file live.hpp
/// Live run monitoring: in-run windowed telemetry, an NDJSON event
/// stream, and a hang-detection watchdog.
///
/// The PR 7 telemetry layer answers "where did the time go" only after
/// the run ends (rank records are gathered at shutdown, tag 501); a hung
/// or badly imbalanced run reports nothing at all. This layer closes that
/// gap while the run is in flight:
///
/// * every `window_steps` steps each rank folds its recent StepRecords
///   into one compact WindowRecord (WindowFolder) and streams it to
///   rank 0 over tag 502, overlapped with compute;
/// * rank 0 drains the stream opportunistically (LiveAssembler), computes
///   the per-window obs::Imbalance — the online signal the ROADMAP
///   load-balancing item needs — and surfaces it through
///   dist::Options::on_window + dist::Result::windows;
/// * every event is appended to a crash-survivable NDJSON stream
///   (LiveStream, schema "bookleaf.live/1"): run_start, window,
///   imbalance, stall, recovery, run_end — one JSON object per line,
///   flushed per line, so a killed run leaves a usable trail;
/// * a Watchdog tracks per-rank step-progress epochs and window
///   arrivals; a rank whose windows stop arriving for
///   `watchdog_factor` x the EWMA window time (plus an absolute grace
///   floor) is flagged as stalled, with a diagnostic built from the
///   transport's held/pending backlog, and can optionally be escalated
///   into a typhon::RankFailure so the supervised recovery loop handles
///   silent hangs the fault-tolerance layer cannot otherwise see.
///
/// Contract (same as the rest of obs/): monitoring OFF is zero cost
/// (drivers skip every hook), monitoring ON is bitwise passive — records
/// are folded after the physics of a step commits and the tag-502 stream
/// never carries state, so a live-on run is bitwise identical to a
/// live-off run at every (ranks x schedule x overlap x packing).

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/profiler.hpp"
#include "util/types.hpp"

namespace bookleaf::obs {

// ---------------------------------------------------------------------------
// Window folding — the unit of the live stream.
// ---------------------------------------------------------------------------
// (WindowRecord itself — and its fold_step/pack/unpack/json helpers —
// lives in telemetry.hpp next to StepRecord, because RankRecord retains
// windows too; this header owns the machinery built on top of it.)

/// Per-rank window folder: feed it every completed StepRecord; every
/// `window_steps` calls it returns the finished window (profiler deltas
/// for halo/reduce wait and swept items computed against the snapshot
/// taken at the window's start). Steps are consumed at add() time, so a
/// bounded step ring can evict records without racing the fold.
class WindowFolder {
public:
    /// `profiler` may be null (no wait/items attribution, e.g. tests).
    WindowFolder(int rank, long window_steps,
                 const util::Profiler* profiler = nullptr);

    /// Fold one completed step; returns the finished window when this
    /// step closes one.
    [[nodiscard]] std::optional<WindowRecord> add(const StepRecord& s);

    /// Windows produced so far (== every rank's tag-502 send count, since
    /// all ranks step in lockstep under the collective dt).
    [[nodiscard]] long produced() const { return produced_; }

private:
    void begin_window();

    int rank_;
    long every_;
    const util::Profiler* profiler_;
    WindowRecord cur_;
    long produced_ = 0;
    bool have_base_ = false;
    std::array<util::KernelStats, util::kernel_count> base_{};
};

// ---------------------------------------------------------------------------
// Bounded step retention (the [telemetry] max_steps ring).
// ---------------------------------------------------------------------------

/// Bounded StepRecord retention: keeps at most `max_steps` recent records
/// (0 = unbounded, the historical behavior); evicted records are folded
/// into a running WindowRecord aggregate so nothing is silently lost —
/// the report's per-rank totals (step_wall_s, retries, remaps) stay exact
/// however long the run. The evicted aggregate has no profiler deltas
/// (halo/reduce wait stay 0): those belong to the live window stream.
class StepRing {
public:
    explicit StepRing(long max_steps = 0) : capacity_(max_steps) {}

    void push(const StepRecord& s);

    [[nodiscard]] const std::deque<StepRecord>& steps() const {
        return steps_;
    }
    /// Retained records as the vector shape RankRecord::steps wants.
    [[nodiscard]] std::vector<StepRecord> take() const {
        return {steps_.begin(), steps_.end()};
    }
    /// Aggregate of every evicted record (steps == 0 when none evicted).
    [[nodiscard]] const WindowRecord& evicted() const { return evicted_; }
    /// Total records ever pushed (retained + evicted).
    [[nodiscard]] long total() const { return total_; }

private:
    long capacity_;
    long total_ = 0;
    std::deque<StepRecord> steps_;
    WindowRecord evicted_;
};

// ---------------------------------------------------------------------------
// Rank-0 assembly: per-window imbalance.
// ---------------------------------------------------------------------------

/// One completed monitoring window across all ranks: the per-rank records
/// (rank order) and the max/mean step-time imbalance over the window —
/// the online form of the end-of-run obs::Imbalance signal.
struct LiveWindow {
    long index = 0;
    std::vector<WindowRecord> ranks;
    Imbalance imbalance;
};

/// Imbalance of one window: max over ranks of window wall time divided by
/// the mean (the same statistic imbalance_of computes over whole runs).
[[nodiscard]] Imbalance window_imbalance(const std::vector<WindowRecord>& ranks);

/// Rank 0's stream assembler: feed windows as they arrive (per-rank FIFO
/// order, which the tag-502 channel guarantees); whenever every rank's
/// next window is present the completed LiveWindow pops out.
class LiveAssembler {
public:
    explicit LiveAssembler(int n_ranks)
        : per_rank_(static_cast<std::size_t>(n_ranks)) {}

    /// Returns the LiveWindows completed by this arrival (0 or more).
    [[nodiscard]] std::vector<LiveWindow> add(WindowRecord w);

    [[nodiscard]] long completed() const { return completed_; }

private:
    std::vector<std::deque<WindowRecord>> per_rank_;
    long completed_ = 0;
};

// ---------------------------------------------------------------------------
// The NDJSON event stream ("bookleaf.live/1").
// ---------------------------------------------------------------------------

/// Crash-survivable event stream: one compact JSON object per line,
/// flushed after every line, so a killed (or hung-then-killed) run leaves
/// every event up to the failure on disk — the one thing the end-of-run
/// JSON report cannot do. Events carry a monotone "seq" so a validator
/// can assert nothing was lost. Thread-safe: the rank-0 driver thread and
/// the watchdog supervisor thread both append.
///
/// Schema "bookleaf.live/1" events: run_start (carries the schema tag),
/// window, imbalance, stall, recovery, run_end.
class LiveStream {
public:
    LiveStream() = default;
    /// Opens (truncates) `path`; "" leaves the stream closed (emit is a
    /// no-op — callers need no separate gate).
    explicit LiveStream(const std::string& path);

    [[nodiscard]] bool open() const { return out_.is_open(); }

    /// Append one event: injects the monotone "seq" member, writes the
    /// compact single-line form and flushes.
    void emit(Json event);

    [[nodiscard]] long events() const;

private:
    mutable std::mutex mutex_;
    std::ofstream out_;
    long seq_ = 0;
};

// ---------------------------------------------------------------------------
// Hang detection.
// ---------------------------------------------------------------------------

/// Thrown by a rank the watchdog poisoned (escalation enabled): typhon's
/// runner wraps it — like any rank error — in a RankFailure naming the
/// rank and step, which the dist supervisor's recovery loop already
/// handles. That is the whole escalation path: a silent hang becomes an
/// ordinary recoverable rank failure.
struct StallEscalated final : util::Error {
    int rank;
    explicit StallEscalated(int rank_)
        : util::Error("watchdog: stall escalated on rank " +
                      std::to_string(rank_)),
          rank(rank_) {}
};

/// Stall detector over the window stream. Two kinds of state:
///
/// * per-rank progress epochs (`note_step`): relaxed atomics the rank
///   threads bump once per step — one store + one poison-flag load, the
///   entire per-step cost of an armed watchdog;
/// * per-rank window arrival times (`note_window*`): rank 0 stamps each
///   tag-502 arrival; an EWMA of the inter-arrival gap per rank gives the
///   expected window cadence.
///
/// `check(now_ms)` flags every rank silent for longer than
/// `factor x EWMA + grace_ms` (the grace floor absorbs OS jitter; a rank
/// with no arrivals yet borrows the mean EWMA of the ranks that have
/// some). A flagged rank is reported once until its windows resume. With
/// escalation enabled, check() also poisons the stalled rank: its next
/// note_step returns true and the rank throws StallEscalated.
///
/// The decision core is deterministic — tests drive note_window_at /
/// check with synthetic clocks; only note_window/check_now touch the real
/// steady clock. Limitation (shared with real-MPI watchdogs that lack an
/// external killer): a rank that never reaches note_step again cannot
/// throw for itself — escalation relies on the stalled rank still making
/// (slow or delayed-delivery) progress, which is exactly the delay_rank
/// fault model.
class Watchdog {
public:
    /// One detected stall.
    struct Stall {
        int rank = -1;
        long last_step = -1;    ///< last step-progress epoch seen
        long windows = 0;       ///< windows that did arrive from the rank
        double silent_ms = 0.0; ///< time since the rank's last window
        double threshold_ms = 0.0; ///< factor x EWMA + grace at detection
        bool escalated = false;
    };

    Watchdog(int n_ranks, double factor, double grace_ms, bool escalate);

    /// Rank-thread step tick. Returns true when the rank was poisoned
    /// (escalated stall) and must throw StallEscalated.
    [[nodiscard]] bool note_step(int rank, long step);

    /// Stamp a window arrival with the real clock / a synthetic time.
    void note_window(int rank);
    void note_window_at(int rank, double now_ms);

    /// Evaluate stalls at `now_ms` (ms on the same axis note_window_at
    /// used; now_ms() for the real clock). Deterministic given the
    /// arrival history. Poisons flagged ranks when escalation is on.
    [[nodiscard]] std::vector<Stall> check(double now_ms);
    [[nodiscard]] std::vector<Stall> check_now();

    void poison(int rank);
    [[nodiscard]] long last_step(int rank) const;
    /// Milliseconds since construction on the steady clock.
    [[nodiscard]] double now_ms() const;
    [[nodiscard]] bool escalate() const { return escalate_; }
    [[nodiscard]] int n_ranks() const { return n_ranks_; }

private:
    int n_ranks_;
    double factor_;
    double grace_ms_;
    bool escalate_;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<std::atomic<long>> steps_;
    std::vector<std::atomic<bool>> poisoned_;
    mutable std::mutex mutex_;
    std::vector<double> last_arrival_ms_; ///< 0 = run start
    std::vector<double> ewma_ms_;         ///< 0 = no arrivals yet
    std::vector<long> windows_;
    std::vector<bool> flagged_;
};

/// RAII supervisor: a thread that polls `dog.check_now()` every
/// `poll_ms` and hands each detected stall to `on_stall` (called on the
/// supervisor thread — sinks must be thread-safe, as LiveStream is).
/// stop() is idempotent and joined by the destructor, so scoping a
/// session inside the rank-0 lambda guarantees the callback never
/// outlives anything it captured (e.g. the Comm used for backlog
/// diagnostics), even on exception unwind.
class WatchdogSession {
public:
    WatchdogSession(Watchdog& dog, double poll_ms,
                    std::function<void(const Watchdog::Stall&)> on_stall);
    WatchdogSession(const WatchdogSession&) = delete;
    WatchdogSession& operator=(const WatchdogSession&) = delete;
    ~WatchdogSession();

    void stop();

private:
    Watchdog& dog_;
    std::function<void(const Watchdog::Stall&)> on_stall_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace bookleaf::obs
