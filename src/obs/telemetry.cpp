#include "obs/telemetry.hpp"

#include <cstdarg>
#include <cstdio>
#include <string>

#include "util/error.hpp"

namespace bookleaf::obs {

namespace {

/// Registry of dt controller constraint names. Order defines the stable
/// codes used over the telemetry gather wire; new reasons append.
constexpr std::string_view dt_reasons[] = {
    "?",         // 0: unknown / unrecorded
    "initial",   // 1: first step, no history
    "CFL",       // 2: sound-speed CFL bound (getdt)
    "divergence",// 3: compression-rate bound (getdt)
    "growth",    // 4: growth-factor clamp vs previous dt (getdt)
    "maximum",   // 5: dt_max ceiling (getdt)
    "t_end",     // 6: clamped to land exactly on t_end (driver)
    "regrow",    // 7: post-retry growth cap (driver)
    "health-retry", // 8: dt backoff after a failed health guard (driver)
};

} // namespace

int dt_reason_code(std::string_view reason) {
    for (std::size_t i = 0; i < std::size(dt_reasons); ++i)
        if (dt_reasons[i] == reason) return static_cast<int>(i);
    return 0;
}

std::string_view dt_reason_name(int code) {
    if (code < 0 || static_cast<std::size_t>(code) >= std::size(dt_reasons))
        return dt_reasons[0];
    return dt_reasons[static_cast<std::size_t>(code)];
}

double RankRecord::step_wall_s() const {
    double sum = 0.0;
    for (const auto& s : steps) sum += s.wall_us;
    return sum * 1e-6;
}

Imbalance imbalance_of(const std::vector<RankRecord>& ranks) {
    Imbalance out;
    if (ranks.empty()) return out;
    double sum = 0.0;
    for (const auto& r : ranks) {
        const double s = r.step_wall_s();
        sum += s;
        if (s > out.max_rank_s) {
            out.max_rank_s = s;
            out.slowest_rank = r.rank;
        }
    }
    out.mean_rank_s = sum / static_cast<double>(ranks.size());
    out.max_over_mean =
        out.mean_rank_s > 0.0 ? out.max_rank_s / out.mean_rank_s : 1.0;
    return out;
}

Json to_json(const RunReport& report) {
    Json root = Json::object();
    root["schema"] = Json(report.schema);
    root["problem"] = Json(report.problem);
    root["label"] = Json(report.label);
    root["mode"] = Json(report.mode);
    root["n_ranks"] = Json(report.n_ranks);
    if (report.mode == "distributed") {
        root["overlap"] = Json(report.overlap);
        root["packing"] = Json(report.packing);
    }
    root["steps"] = Json(report.steps);
    root["t_final"] = Json(report.t_final);
    root["wall_s"] = Json(report.wall_s);

    Json& imb = root["imbalance"];
    imb["max_over_mean"] = Json(report.imbalance.max_over_mean);
    imb["mean_rank_s"] = Json(report.imbalance.mean_rank_s);
    imb["max_rank_s"] = Json(report.imbalance.max_rank_s);
    imb["slowest_rank"] = Json(report.imbalance.slowest_rank);

    Json& wire = root["wire"];
    wire["checked"] = Json(report.wire.checked);
    wire["expected_messages"] = Json(report.wire.expected);
    wire["measured_messages"] = Json(report.wire.measured);
    wire["match"] = Json(report.wire.match);

    Json recoveries = Json::array();
    for (const auto& r : report.recoveries) {
        Json e = Json::object();
        e["failed_rank"] = Json(r.failed_rank);
        e["failed_step"] = Json(r.failed_step);
        e["resumed_step"] = Json(r.resumed_step);
        e["survivors"] = Json(r.survivors);
        recoveries.push_back(std::move(e));
    }
    root["recoveries"] = std::move(recoveries);

    Json ranks = Json::array();
    for (const auto& r : report.ranks) {
        Json jr = Json::object();
        jr["rank"] = Json(r.rank);
        jr["step_wall_s"] = Json(r.step_wall_s());

        Json steps = Json::array();
        for (const auto& s : r.steps) {
            Json js = Json::object();
            js["step"] = Json(s.step);
            js["t"] = Json(s.t);
            js["dt"] = Json(s.dt);
            js["dt_local"] = Json(s.dt_local);
            js["dt_reason"] = Json(std::string(dt_reason_name(s.dt_reason)));
            js["start_us"] = Json(s.start_us);
            js["wall_us"] = Json(s.wall_us);
            js["retries"] = Json(s.retries);
            js["remapped"] = Json(s.remapped);
            steps.push_back(std::move(js));
        }
        jr["steps"] = std::move(steps);

        Json kernels = Json::object();
        for (std::size_t k = 0; k < util::kernel_count; ++k) {
            const auto& ks = r.kernels[k];
            if (ks.calls == 0) continue;
            Json jk = Json::object();
            jk["wall_s"] = Json(ks.wall_s);
            jk["virtual_s"] = Json(ks.virtual_s);
            jk["calls"] = Json(ks.calls);
            kernels[util::kernel_name(static_cast<util::Kernel>(k))] =
                std::move(jk);
        }
        jr["kernels"] = std::move(kernels);

        Json sent = Json::array();
        for (const auto& p : r.sent) {
            Json jp = Json::object();
            jp["peer"] = Json(p.peer);
            jp["messages"] = Json(p.messages);
            jp["reals"] = Json(p.reals);
            sent.push_back(std::move(jp));
        }
        jr["sent"] = std::move(sent);
        ranks.push_back(std::move(jr));
    }
    root["ranks"] = std::move(ranks);
    return root;
}

Json trace_json(const RunReport& report) {
    Json events = Json::array();
    for (const auto& r : report.ranks) {
        // Name the track so chrome://tracing shows "rank N", not "tid N".
        Json meta = Json::object();
        meta["name"] = Json("thread_name");
        meta["ph"] = Json("M");
        meta["pid"] = Json(0);
        meta["tid"] = Json(r.rank);
        meta["args"]["name"] =
            Json("rank " + std::to_string(r.rank));
        events.push_back(std::move(meta));
        for (const auto& e : r.trace) {
            Json je = Json::object();
            je["name"] = Json(std::string(util::kernel_name(e.kernel)));
            je["cat"] = Json(util::kernel_is_detail(e.kernel) ? "detail"
                                                              : "kernel");
            je["ph"] = Json("X");
            je["ts"] = Json(e.t0_us);
            je["dur"] = Json(e.dur_us);
            je["pid"] = Json(0);
            je["tid"] = Json(r.rank);
            events.push_back(std::move(je));
        }
    }
    Json root = Json::object();
    root["traceEvents"] = std::move(events);
    root["displayTimeUnit"] = Json("ms");
    return root;
}

namespace {

void append_line(std::string& out, const char* fmt, ...) {
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    out += buf;
    out += '\n';
}

} // namespace

std::string summary_table(const RunReport& report) {
    // Aggregate the per-kernel breakdown over ranks.
    std::array<util::KernelStats, util::kernel_count> total{};
    for (const auto& r : report.ranks)
        for (std::size_t k = 0; k < util::kernel_count; ++k) {
            total[k].wall_s += r.kernels[k].wall_s;
            total[k].virtual_s += r.kernels[k].virtual_s;
            total[k].calls += r.kernels[k].calls;
        }
    double overall = 0.0;
    for (std::size_t k = 0; k < util::kernel_count; ++k)
        if (!util::kernel_is_detail(static_cast<util::Kernel>(k)))
            overall += total[k].total_s();

    std::string out;
    append_line(out, "telemetry: %s [%s, %d rank%s] steps=%ld t=%.6g wall=%.3fs",
                report.label.c_str(), report.mode.c_str(), report.n_ranks,
                report.n_ranks == 1 ? "" : "s", report.steps, report.t_final,
                report.wall_s);
    // The paper's Table II rows, in its order, over the aggregate slots.
    const util::Kernel table2[] = {
        util::Kernel::getq,    util::Kernel::getacc, util::Kernel::getdt,
        util::Kernel::getgeom, util::Kernel::getforce, util::Kernel::getpc,
    };
    append_line(out, "  %-14s %10.4fs %7s", "Overall", overall, "100.0%");
    for (const auto k : table2) {
        const double s = total[static_cast<std::size_t>(k)].total_s();
        append_line(out, "  %-14s %10.4fs %6.1f%%",
                    std::string(util::kernel_table2_label(k)).c_str(), s,
                    overall > 0.0 ? 100.0 * s / overall : 0.0);
    }
    if (report.mode == "distributed") {
        const auto at = [&](util::Kernel k) {
            return total[static_cast<std::size_t>(k)].total_s();
        };
        append_line(out,
                    "  halo %.4fs (pack %.4fs wait %.4fs unpack %.4fs)  "
                    "reduce %.4fs (wait %.4fs)",
                    at(util::Kernel::halo), at(util::Kernel::halo_pack),
                    at(util::Kernel::halo_wait),
                    at(util::Kernel::halo_unpack), at(util::Kernel::reduce),
                    at(util::Kernel::reduce_wait));
        append_line(out,
                    "  imbalance max/mean = %.3f (slowest rank %d, "
                    "max %.4fs, mean %.4fs)",
                    report.imbalance.max_over_mean,
                    report.imbalance.slowest_rank, report.imbalance.max_rank_s,
                    report.imbalance.mean_rank_s);
        if (report.wire.checked)
            append_line(out, "  wire: %lld messages measured, %lld expected%s",
                        report.wire.measured, report.wire.expected,
                        report.wire.match ? "" : "  ** MISMATCH **");
    }
    for (const auto& r : report.recoveries)
        append_line(out,
                    "  recovery: rank %d failed at step %ld, resumed at "
                    "step %ld with %d survivors",
                    r.failed_rank, r.failed_step, r.resumed_step, r.survivors);
    return out;
}

void write_outputs(const Options& opts, const RunReport& report) {
    if (!opts.report.empty()) write_json_file(opts.report, to_json(report));
    if (!opts.trace.empty()) write_json_file(opts.trace, trace_json(report));
    if (opts.summary) {
        const std::string table = summary_table(report);
        std::fputs(table.c_str(), stdout);
        std::fflush(stdout);
    }
}

std::vector<Real> pack_rank(const RankRecord& rank) {
    std::vector<Real> buf;
    buf.reserve(2 + rank.steps.size() * 9 + 1 + util::kernel_count * 3);
    buf.push_back(static_cast<Real>(rank.rank));
    buf.push_back(static_cast<Real>(rank.steps.size()));
    for (const auto& s : rank.steps) {
        buf.push_back(static_cast<Real>(s.step));
        buf.push_back(s.t);
        buf.push_back(s.dt);
        buf.push_back(s.dt_local);
        buf.push_back(static_cast<Real>(s.dt_reason));
        buf.push_back(s.start_us);
        buf.push_back(s.wall_us);
        buf.push_back(static_cast<Real>(s.retries));
        buf.push_back(s.remapped ? 1.0 : 0.0);
    }
    buf.push_back(static_cast<Real>(util::kernel_count));
    for (const auto& ks : rank.kernels) {
        buf.push_back(ks.wall_s);
        buf.push_back(ks.virtual_s);
        buf.push_back(static_cast<Real>(ks.calls));
    }
    return buf;
}

RankRecord unpack_rank(const std::vector<Real>& buf) {
    RankRecord out;
    std::size_t i = 0;
    const auto next = [&]() -> Real {
        util::require(i < buf.size(), "telemetry: truncated rank record");
        return buf[i++];
    };
    out.rank = static_cast<int>(next());
    const auto n_steps = static_cast<std::size_t>(next());
    out.steps.reserve(n_steps);
    for (std::size_t s = 0; s < n_steps; ++s) {
        StepRecord rec;
        rec.step = static_cast<long>(next());
        rec.t = next();
        rec.dt = next();
        rec.dt_local = next();
        rec.dt_reason = static_cast<int>(next());
        rec.start_us = next();
        rec.wall_us = next();
        rec.retries = static_cast<int>(next());
        rec.remapped = next() != 0.0;
        out.steps.push_back(rec);
    }
    const auto n_kernels = static_cast<std::size_t>(next());
    util::require(n_kernels == util::kernel_count,
                  "telemetry: kernel-count mismatch in rank record");
    for (auto& ks : out.kernels) {
        ks.wall_s = next();
        ks.virtual_s = next();
        ks.calls = static_cast<long>(next());
    }
    util::require(i == buf.size(), "telemetry: oversized rank record");
    return out;
}

} // namespace bookleaf::obs
