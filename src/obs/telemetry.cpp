#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "util/error.hpp"

namespace bookleaf::obs {

namespace {

/// Registry of dt controller constraint names. Order defines the stable
/// codes used over the telemetry gather wire; new reasons append.
constexpr std::string_view dt_reasons[] = {
    "?",         // 0: unknown / unrecorded
    "initial",   // 1: first step, no history
    "CFL",       // 2: sound-speed CFL bound (getdt)
    "divergence",// 3: compression-rate bound (getdt)
    "growth",    // 4: growth-factor clamp vs previous dt (getdt)
    "maximum",   // 5: dt_max ceiling (getdt)
    "t_end",     // 6: clamped to land exactly on t_end (driver)
    "regrow",    // 7: post-retry growth cap (driver)
    "health-retry", // 8: dt backoff after a failed health guard (driver)
};

} // namespace

int dt_reason_code(std::string_view reason) {
    for (std::size_t i = 0; i < std::size(dt_reasons); ++i)
        if (dt_reasons[i] == reason) return static_cast<int>(i);
    return 0;
}

std::string_view dt_reason_name(int code) {
    if (code < 0 || static_cast<std::size_t>(code) >= std::size(dt_reasons))
        return dt_reasons[0];
    return dt_reasons[static_cast<std::size_t>(code)];
}

double RankRecord::step_wall_s() const {
    // Retained records plus the max_steps ring's evicted aggregate: the
    // total stays exact however many records the ring dropped.
    double sum = evicted.wall_us;
    for (const auto& s : steps) sum += s.wall_us;
    return sum * 1e-6;
}

double RankAttribution::efficiency() const {
    const double capacity =
        static_cast<double>(worker_busy_us.size()) * makespan_us;
    return capacity > 0.0 ? busy_us / capacity : 0.0;
}

double roofline_seconds(const WorkModel& work, util::Kernel k,
                        long long items) {
    if (!work.present || items <= 0) return 0.0;
    const auto& w = work.kernels[static_cast<std::size_t>(k)];
    const auto n = static_cast<double>(items);
    const double t_flops =
        work.peak_flops > 0.0 ? n * w.flops_per_item / work.peak_flops : 0.0;
    const double t_bytes =
        work.peak_bw > 0.0 ? n * w.bytes_per_item / work.peak_bw : 0.0;
    return std::max(t_flops, t_bytes);
}

namespace {

/// Kernels cheaper than this are measurement noise, never anomalies.
constexpr double anomaly_floor_s = 1e-4;

/// Scopes that block on peers: their wall time measures arrival-order
/// idleness (a rank that gets there EARLY waits longer), so a cross-rank
/// comparison flags the healthy rank. The local work the exchanges do
/// (halo_pack/halo_unpack) stays eligible — a genuinely slow rank shows
/// there, and in the compute kernels.
bool sync_kernel(util::Kernel k) {
    return k == util::Kernel::halo || k == util::Kernel::halo_wait ||
           k == util::Kernel::reduce || k == util::Kernel::reduce_wait;
}

} // namespace

std::vector<Anomaly> detect_anomalies(const RunReport& report, double factor) {
    std::vector<Anomaly> out;
    if (factor <= 1.0 || report.ranks.empty()) return out;

    // Detector 1 (cross-rank): ranks sweep comparable per-entity work, so
    // a rank whose per-item seconds (per-call when no items were counted)
    // dwarf the fastest rank's is off its expected pace — the slow_rank
    // fault signature. Needs at least two ranks to have a reference.
    // Peer-blocking scopes are excluded (see sync_kernel).
    for (std::size_t k = 0; k < util::kernel_count; ++k) {
        if (sync_kernel(static_cast<util::Kernel>(k))) continue;
        double best = 0.0;
        int n_measured = 0;
        for (const auto& r : report.ranks) {
            const auto& ks = r.kernels[k];
            const double unit = ks.items > 0 ? ks.wall_s /
                                                   static_cast<double>(ks.items)
                                : ks.calls > 0
                                    ? ks.wall_s / static_cast<double>(ks.calls)
                                    : 0.0;
            if (unit <= 0.0) continue;
            ++n_measured;
            if (best == 0.0 || unit < best) best = unit;
        }
        if (n_measured < 2 || best <= 0.0) continue;
        for (const auto& r : report.ranks) {
            const auto& ks = r.kernels[k];
            if (ks.wall_s < anomaly_floor_s) continue;
            const double unit = ks.items > 0 ? ks.wall_s /
                                                   static_cast<double>(ks.items)
                                : ks.calls > 0
                                    ? ks.wall_s / static_cast<double>(ks.calls)
                                    : 0.0;
            if (unit <= factor * best) continue;
            Anomaly a;
            a.rank = r.rank;
            a.kernel = static_cast<util::Kernel>(k);
            a.metric = "cross_rank";
            a.value = unit;
            a.reference = best;
            a.factor = unit / best;
            out.push_back(std::move(a));
        }
    }

    // Detector 2 (roofline): within one rank, every modelled kernel runs
    // the same machine, so wall/roofline ratios should cluster. A kernel
    // whose ratio is `factor` above the rank's median ratio deviates from
    // the calibrated expectation in a way the others don't — this
    // self-normalizes away how optimistic the roofline itself is.
    if (report.work.present) {
        for (const auto& r : report.ranks) {
            struct Measured {
                std::size_t k;
                double ratio;
                double roofline;
            };
            std::vector<Measured> measured;
            for (std::size_t k = 0; k < util::kernel_count; ++k) {
                const auto& ks = r.kernels[k];
                if (ks.wall_s < anomaly_floor_s) continue;
                const double expect = roofline_seconds(
                    report.work, static_cast<util::Kernel>(k), ks.items);
                if (expect <= 0.0) continue;
                measured.push_back({k, ks.wall_s / expect, expect});
            }
            if (measured.size() < 3) continue;
            std::vector<double> ratios;
            ratios.reserve(measured.size());
            for (const auto& m : measured) ratios.push_back(m.ratio);
            std::nth_element(ratios.begin(),
                             ratios.begin() +
                                 static_cast<std::ptrdiff_t>(ratios.size() / 2),
                             ratios.end());
            const double median = ratios[ratios.size() / 2];
            if (median <= 0.0) continue;
            for (const auto& m : measured) {
                if (m.ratio <= factor * median) continue;
                Anomaly a;
                a.rank = r.rank;
                a.kernel = static_cast<util::Kernel>(m.k);
                a.metric = "roofline";
                a.value = m.ratio;
                a.reference = median;
                a.factor = m.ratio / median;
                out.push_back(std::move(a));
            }
        }
    }
    return out;
}

Imbalance imbalance_of(const std::vector<RankRecord>& ranks) {
    Imbalance out;
    if (ranks.empty()) return out;
    double sum = 0.0;
    for (const auto& r : ranks) {
        const double s = r.step_wall_s();
        sum += s;
        if (s > out.max_rank_s) {
            out.max_rank_s = s;
            out.slowest_rank = r.rank;
        }
    }
    out.mean_rank_s = sum / static_cast<double>(ranks.size());
    out.max_over_mean =
        out.mean_rank_s > 0.0 ? out.max_rank_s / out.mean_rank_s : 1.0;
    return out;
}

Json to_json(const RunReport& report) {
    Json root = Json::object();
    root["schema"] = Json(report.schema);
    root["problem"] = Json(report.problem);
    root["label"] = Json(report.label);
    root["mode"] = Json(report.mode);
    root["n_ranks"] = Json(report.n_ranks);
    if (report.mode == "distributed") {
        root["overlap"] = Json(report.overlap);
        root["packing"] = Json(report.packing);
    }
    root["steps"] = Json(report.steps);
    root["t_final"] = Json(report.t_final);
    root["wall_s"] = Json(report.wall_s);

    Json& cfg = root["config"];
    cfg["schedule"] = Json(report.config.schedule);
    cfg["task_block"] = Json(report.config.task_block);
    cfg["grain"] = Json(report.config.grain);
    cfg["n_threads"] = Json(report.config.n_threads);
    cfg["n_ranks"] = Json(report.config.n_ranks);
    cfg["overlap"] = Json(report.config.overlap);
    cfg["packing"] = Json(report.config.packing);

    if (report.work.present) {
        Json& work = root["work_model"];
        work["peak_gflops"] = Json(report.work.peak_flops * 1e-9);
        work["peak_gbs"] = Json(report.work.peak_bw * 1e-9);
        Json kernels = Json::object();
        for (std::size_t k = 0; k < util::kernel_count; ++k) {
            const auto& w = report.work.kernels[k];
            if (w.flops_per_item == 0.0 && w.bytes_per_item == 0.0) continue;
            Json jw = Json::object();
            jw["flops_per_item"] = Json(w.flops_per_item);
            jw["bytes_per_item"] = Json(w.bytes_per_item);
            kernels[util::kernel_name(static_cast<util::Kernel>(k))] =
                std::move(jw);
        }
        work["kernels"] = std::move(kernels);
    }

    Json& imb = root["imbalance"];
    imb["max_over_mean"] = Json(report.imbalance.max_over_mean);
    imb["mean_rank_s"] = Json(report.imbalance.mean_rank_s);
    imb["max_rank_s"] = Json(report.imbalance.max_rank_s);
    imb["slowest_rank"] = Json(report.imbalance.slowest_rank);

    Json& wire = root["wire"];
    wire["checked"] = Json(report.wire.checked);
    wire["expected_messages"] = Json(report.wire.expected);
    wire["measured_messages"] = Json(report.wire.measured);
    wire["match"] = Json(report.wire.match);

    Json anomalies = Json::array();
    for (const auto& a : report.anomalies) {
        Json ja = Json::object();
        ja["rank"] = Json(a.rank);
        ja["kernel"] = Json(std::string(util::kernel_name(a.kernel)));
        ja["metric"] = Json(a.metric);
        ja["value"] = Json(a.value);
        ja["reference"] = Json(a.reference);
        ja["factor"] = Json(a.factor);
        anomalies.push_back(std::move(ja));
    }
    root["anomalies"] = std::move(anomalies);

    Json recoveries = Json::array();
    for (const auto& r : report.recoveries) {
        Json e = Json::object();
        e["failed_rank"] = Json(r.failed_rank);
        e["failed_step"] = Json(r.failed_step);
        e["resumed_step"] = Json(r.resumed_step);
        e["survivors"] = Json(r.survivors);
        recoveries.push_back(std::move(e));
    }
    root["recoveries"] = std::move(recoveries);

    Json ranks = Json::array();
    for (const auto& r : report.ranks) {
        Json jr = Json::object();
        jr["rank"] = Json(r.rank);
        jr["epoch_offset_us"] = Json(r.epoch_us);
        jr["step_wall_s"] = Json(r.step_wall_s());

        if (r.attrib.graphs > 0) {
            Json& at = jr["attribution"];
            at["graphs"] = Json(r.attrib.graphs);
            at["cp_s"] = Json(r.attrib.cp_us * 1e-6);
            at["busy_s"] = Json(r.attrib.busy_us * 1e-6);
            at["makespan_s"] = Json(r.attrib.makespan_us * 1e-6);
            at["efficiency"] = Json(r.attrib.efficiency());
            Json ck = Json::object();
            for (std::size_t k = 0; k < util::kernel_count; ++k) {
                if (r.attrib.cp_kernel_us[k] <= 0.0) continue;
                ck[util::kernel_name(static_cast<util::Kernel>(k))] =
                    Json(r.attrib.cp_kernel_us[k] * 1e-6);
            }
            at["cp_kernels"] = std::move(ck);
            Json workers = Json::array();
            for (const double busy : r.attrib.worker_busy_us) {
                Json jw = Json::object();
                jw["busy_s"] = Json(busy * 1e-6);
                jw["idle_s"] =
                    Json(std::max(0.0, r.attrib.makespan_us - busy) * 1e-6);
                workers.push_back(std::move(jw));
            }
            at["workers"] = std::move(workers);
        }

        Json steps = Json::array();
        for (const auto& s : r.steps) {
            Json js = Json::object();
            js["step"] = Json(s.step);
            js["t"] = Json(s.t);
            js["dt"] = Json(s.dt);
            js["dt_local"] = Json(s.dt_local);
            js["dt_reason"] = Json(std::string(dt_reason_name(s.dt_reason)));
            js["start_us"] = Json(s.start_us);
            js["wall_us"] = Json(s.wall_us);
            js["retries"] = Json(s.retries);
            js["remapped"] = Json(s.remapped);
            if (s.graph_workers > 0) {
                js["cp_us"] = Json(s.cp_us);
                js["graph_busy_us"] = Json(s.graph_busy_us);
                js["graph_makespan_us"] = Json(s.graph_makespan_us);
                js["graph_workers"] = Json(s.graph_workers);
            }
            steps.push_back(std::move(js));
        }
        jr["steps"] = std::move(steps);

        if (r.evicted.steps > 0) jr["evicted"] = window_json(r.evicted);

        if (!r.windows.empty()) {
            Json windows = Json::array();
            for (const auto& w : r.windows)
                windows.push_back(window_json(w));
            jr["windows"] = std::move(windows);
        }

        Json kernels = Json::object();
        for (std::size_t k = 0; k < util::kernel_count; ++k) {
            const auto& ks = r.kernels[k];
            if (ks.calls == 0) continue;
            Json jk = Json::object();
            jk["wall_s"] = Json(ks.wall_s);
            jk["virtual_s"] = Json(ks.virtual_s);
            jk["calls"] = Json(ks.calls);
            jk["items"] = Json(static_cast<long>(ks.items));
            if (report.work.present && ks.items > 0 && ks.wall_s > 0.0) {
                const auto& w = report.work.kernels[k];
                const auto n = static_cast<double>(ks.items);
                if (w.flops_per_item > 0.0)
                    jk["gflops"] =
                        Json(n * w.flops_per_item / ks.wall_s * 1e-9);
                if (w.bytes_per_item > 0.0)
                    jk["gbs"] = Json(n * w.bytes_per_item / ks.wall_s * 1e-9);
                const double expect = roofline_seconds(
                    report.work, static_cast<util::Kernel>(k), ks.items);
                if (expect > 0.0)
                    jk["roofline_ratio"] = Json(ks.wall_s / expect);
            }
            kernels[util::kernel_name(static_cast<util::Kernel>(k))] =
                std::move(jk);
        }
        jr["kernels"] = std::move(kernels);

        Json sent = Json::array();
        for (const auto& p : r.sent) {
            Json jp = Json::object();
            jp["peer"] = Json(p.peer);
            jp["messages"] = Json(p.messages);
            jp["reals"] = Json(p.reals);
            sent.push_back(std::move(jp));
        }
        jr["sent"] = std::move(sent);
        ranks.push_back(std::move(jr));
    }
    root["ranks"] = std::move(ranks);
    return root;
}

Json trace_json(const RunReport& report) {
    Json events = Json::array();
    int flow_id = 0;
    for (const auto& r : report.ranks) {
        // Name the track so chrome://tracing shows "rank N", not "tid N".
        Json meta = Json::object();
        meta["name"] = Json("thread_name");
        meta["ph"] = Json("M");
        meta["pid"] = Json(0);
        meta["tid"] = Json(r.rank);
        meta["args"]["name"] =
            Json("rank " + std::to_string(r.rank));
        events.push_back(std::move(meta));
        for (const auto& e : r.trace) {
            Json je = Json::object();
            je["name"] = Json(std::string(util::kernel_name(e.kernel)));
            je["cat"] = Json(util::kernel_is_detail(e.kernel) ? "detail"
                                                              : "kernel");
            je["ph"] = Json("X");
            je["ts"] = Json(e.t0_us);
            je["dur"] = Json(e.dur_us);
            je["pid"] = Json(0);
            je["tid"] = Json(r.rank);
            events.push_back(std::move(je));
        }
        // Flow arrows along the critical path: an "s" -> "f" pair between
        // each consecutive pair of critical tasks of the same graph, so
        // the bounding chain is visible as arrows over the task spans.
        for (std::size_t i = 0; i + 1 < r.critical.size(); ++i) {
            const auto& a = r.critical[i];
            const auto& b = r.critical[i + 1];
            if (a.chain != b.chain) continue;
            const int id = flow_id++;
            Json js = Json::object();
            js["name"] = Json("critical");
            js["cat"] = Json("critical");
            js["ph"] = Json("s");
            js["id"] = Json(id);
            js["ts"] = Json(a.t0_us + a.dur_us);
            js["pid"] = Json(0);
            js["tid"] = Json(r.rank);
            events.push_back(std::move(js));
            Json jf = Json::object();
            jf["name"] = Json("critical");
            jf["cat"] = Json("critical");
            jf["ph"] = Json("f");
            jf["bp"] = Json("e");
            jf["id"] = Json(id);
            jf["ts"] = Json(b.t0_us);
            jf["pid"] = Json(0);
            jf["tid"] = Json(r.rank);
            events.push_back(std::move(jf));
        }
    }
    Json root = Json::object();
    root["traceEvents"] = std::move(events);
    root["displayTimeUnit"] = Json("ms");
    return root;
}

namespace {

void append_line(std::string& out, const char* fmt, ...) {
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    out += buf;
    out += '\n';
}

} // namespace

std::string summary_table(const RunReport& report) {
    // Aggregate the per-kernel breakdown over ranks.
    std::array<util::KernelStats, util::kernel_count> total{};
    for (const auto& r : report.ranks)
        for (std::size_t k = 0; k < util::kernel_count; ++k) {
            total[k].wall_s += r.kernels[k].wall_s;
            total[k].virtual_s += r.kernels[k].virtual_s;
            total[k].calls += r.kernels[k].calls;
        }
    double overall = 0.0;
    for (std::size_t k = 0; k < util::kernel_count; ++k)
        if (!util::kernel_is_detail(static_cast<util::Kernel>(k)))
            overall += total[k].total_s();

    std::string out;
    append_line(out, "telemetry: %s [%s, %d rank%s] steps=%ld t=%.6g wall=%.3fs",
                report.label.c_str(), report.mode.c_str(), report.n_ranks,
                report.n_ranks == 1 ? "" : "s", report.steps, report.t_final,
                report.wall_s);
    // The paper's Table II rows, in its order, over the aggregate slots.
    const util::Kernel table2[] = {
        util::Kernel::getq,    util::Kernel::getacc, util::Kernel::getdt,
        util::Kernel::getgeom, util::Kernel::getforce, util::Kernel::getpc,
    };
    append_line(out, "  %-14s %10.4fs %7s", "Overall", overall, "100.0%");
    for (const auto k : table2) {
        const double s = total[static_cast<std::size_t>(k)].total_s();
        append_line(out, "  %-14s %10.4fs %6.1f%%",
                    std::string(util::kernel_table2_label(k)).c_str(), s,
                    overall > 0.0 ? 100.0 * s / overall : 0.0);
    }
    // Task-graph attribution: aggregate over ranks, report the critical
    // path vs busy time, the efficiency, and the kernels that bound it.
    {
        RankAttribution agg;
        for (const auto& r : report.ranks) {
            agg.graphs += r.attrib.graphs;
            agg.cp_us += r.attrib.cp_us;
            agg.busy_us += r.attrib.busy_us;
            agg.makespan_us += r.attrib.makespan_us;
            for (std::size_t k = 0; k < util::kernel_count; ++k)
                agg.cp_kernel_us[k] += r.attrib.cp_kernel_us[k];
            if (agg.worker_busy_us.size() < r.attrib.worker_busy_us.size())
                agg.worker_busy_us.resize(r.attrib.worker_busy_us.size(), 0.0);
            for (std::size_t w = 0; w < r.attrib.worker_busy_us.size(); ++w)
                agg.worker_busy_us[w] += r.attrib.worker_busy_us[w];
        }
        if (agg.graphs > 0) {
            append_line(out,
                        "  graphs: %ld runs, critical path %.4fs of %.4fs "
                        "busy (makespan %.4fs, efficiency %.2f)",
                        agg.graphs, agg.cp_us * 1e-6, agg.busy_us * 1e-6,
                        agg.makespan_us * 1e-6, agg.efficiency());
            // Top-3 critical kernels by critical-path share.
            std::array<std::size_t, util::kernel_count> order{};
            for (std::size_t k = 0; k < util::kernel_count; ++k) order[k] = k;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return agg.cp_kernel_us[a] > agg.cp_kernel_us[b];
                      });
            std::string top;
            for (std::size_t i = 0; i < 3; ++i) {
                const std::size_t k = order[i];
                if (agg.cp_kernel_us[k] <= 0.0) break;
                char buf[96];
                std::snprintf(
                    buf, sizeof buf, "%s%s %.1f%%", top.empty() ? "" : "  ",
                    std::string(
                        util::kernel_name(static_cast<util::Kernel>(k)))
                        .c_str(),
                    agg.cp_us > 0.0 ? 100.0 * agg.cp_kernel_us[k] / agg.cp_us
                                    : 0.0);
                top += buf;
            }
            if (!top.empty())
                append_line(out, "  critical kernels: %s", top.c_str());
        }
    }
    for (const auto& a : report.anomalies)
        append_line(out,
                    "  anomaly: rank %d %s %s %.3gx reference "
                    "(%.3g vs %.3g)  ** SLOW **",
                    a.rank, std::string(util::kernel_name(a.kernel)).c_str(),
                    a.metric.c_str(), a.factor, a.value, a.reference);
    if (report.mode == "distributed") {
        const auto at = [&](util::Kernel k) {
            return total[static_cast<std::size_t>(k)].total_s();
        };
        append_line(out,
                    "  halo %.4fs (pack %.4fs wait %.4fs unpack %.4fs)  "
                    "reduce %.4fs (wait %.4fs)",
                    at(util::Kernel::halo), at(util::Kernel::halo_pack),
                    at(util::Kernel::halo_wait),
                    at(util::Kernel::halo_unpack), at(util::Kernel::reduce),
                    at(util::Kernel::reduce_wait));
        append_line(out,
                    "  imbalance max/mean = %.3f (slowest rank %d, "
                    "max %.4fs, mean %.4fs)",
                    report.imbalance.max_over_mean,
                    report.imbalance.slowest_rank, report.imbalance.max_rank_s,
                    report.imbalance.mean_rank_s);
        if (report.wire.checked)
            append_line(out, "  wire: %lld messages measured, %lld expected%s",
                        report.wire.measured, report.wire.expected,
                        report.wire.match ? "" : "  ** MISMATCH **");
    }
    for (const auto& r : report.recoveries)
        append_line(out,
                    "  recovery: rank %d failed at step %ld, resumed at "
                    "step %ld with %d survivors",
                    r.failed_rank, r.failed_step, r.resumed_step, r.survivors);
    return out;
}

void write_outputs(const Options& opts, const RunReport& report) {
    if (!opts.report.empty()) write_json_file(opts.report, to_json(report));
    if (!opts.trace.empty()) write_json_file(opts.trace, trace_json(report));
    if (opts.summary) {
        const std::string table = summary_table(report);
        std::fputs(table.c_str(), stdout);
        std::fflush(stdout);
    }
}

std::vector<Real> pack_rank(const RankRecord& rank) {
    std::vector<Real> buf;
    buf.reserve(3 + rank.steps.size() * 13 + 1 + util::kernel_count * 4 + 5 +
                util::kernel_count + rank.attrib.worker_busy_us.size());
    buf.push_back(static_cast<Real>(rank.rank));
    buf.push_back(rank.epoch_us);
    buf.push_back(static_cast<Real>(rank.steps.size()));
    for (const auto& s : rank.steps) {
        buf.push_back(static_cast<Real>(s.step));
        buf.push_back(s.t);
        buf.push_back(s.dt);
        buf.push_back(s.dt_local);
        buf.push_back(static_cast<Real>(s.dt_reason));
        buf.push_back(s.start_us);
        buf.push_back(s.wall_us);
        buf.push_back(static_cast<Real>(s.retries));
        buf.push_back(s.remapped ? 1.0 : 0.0);
        buf.push_back(s.cp_us);
        buf.push_back(s.graph_busy_us);
        buf.push_back(s.graph_makespan_us);
        buf.push_back(static_cast<Real>(s.graph_workers));
    }
    buf.push_back(static_cast<Real>(util::kernel_count));
    for (const auto& ks : rank.kernels) {
        buf.push_back(ks.wall_s);
        buf.push_back(ks.virtual_s);
        buf.push_back(static_cast<Real>(ks.calls));
        buf.push_back(static_cast<Real>(ks.items));
    }
    buf.push_back(static_cast<Real>(rank.attrib.graphs));
    buf.push_back(rank.attrib.cp_us);
    buf.push_back(rank.attrib.busy_us);
    buf.push_back(rank.attrib.makespan_us);
    for (const double v : rank.attrib.cp_kernel_us) buf.push_back(v);
    buf.push_back(static_cast<Real>(rank.attrib.worker_busy_us.size()));
    for (const double v : rank.attrib.worker_busy_us) buf.push_back(v);
    // Live-monitoring extension (appended so the codec layout stays a
    // strict prefix of the historical one): the max_steps ring's evicted
    // aggregate, then the retained windows.
    const auto append_window = [&](const WindowRecord& w) {
        const auto flat = pack_window(w);
        buf.insert(buf.end(), flat.begin(), flat.end());
    };
    append_window(rank.evicted);
    buf.push_back(static_cast<Real>(rank.windows.size()));
    for (const auto& w : rank.windows) append_window(w);
    return buf;
}

RankRecord unpack_rank(const std::vector<Real>& buf) {
    RankRecord out;
    std::size_t i = 0;
    const auto next = [&]() -> Real {
        util::require(i < buf.size(), "telemetry: truncated rank record");
        return buf[i++];
    };
    out.rank = static_cast<int>(next());
    out.epoch_us = next();
    const auto n_steps = static_cast<std::size_t>(next());
    out.steps.reserve(n_steps);
    for (std::size_t s = 0; s < n_steps; ++s) {
        StepRecord rec;
        rec.step = static_cast<long>(next());
        rec.t = next();
        rec.dt = next();
        rec.dt_local = next();
        rec.dt_reason = static_cast<int>(next());
        rec.start_us = next();
        rec.wall_us = next();
        rec.retries = static_cast<int>(next());
        rec.remapped = next() != 0.0;
        rec.cp_us = next();
        rec.graph_busy_us = next();
        rec.graph_makespan_us = next();
        rec.graph_workers = static_cast<int>(next());
        out.steps.push_back(rec);
    }
    const auto n_kernels = static_cast<std::size_t>(next());
    util::require(n_kernels == util::kernel_count,
                  "telemetry: kernel-count mismatch in rank record");
    for (auto& ks : out.kernels) {
        ks.wall_s = next();
        ks.virtual_s = next();
        ks.calls = static_cast<long>(next());
        ks.items = static_cast<long long>(next());
    }
    out.attrib.graphs = static_cast<long>(next());
    out.attrib.cp_us = next();
    out.attrib.busy_us = next();
    out.attrib.makespan_us = next();
    for (auto& v : out.attrib.cp_kernel_us) v = next();
    const auto n_workers = static_cast<std::size_t>(next());
    out.attrib.worker_busy_us.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w)
        out.attrib.worker_busy_us.push_back(next());
    const auto next_window = [&] {
        util::require(i + window_reals <= buf.size(),
                      "telemetry: truncated rank record");
        const std::span<const Real> flat(buf.data() + i, window_reals);
        i += window_reals;
        return unpack_window(flat);
    };
    out.evicted = next_window();
    const auto n_windows = static_cast<std::size_t>(next());
    out.windows.reserve(n_windows);
    for (std::size_t w = 0; w < n_windows; ++w)
        out.windows.push_back(next_window());
    util::require(i == buf.size(), "telemetry: oversized rank record");
    return out;
}

} // namespace bookleaf::obs
