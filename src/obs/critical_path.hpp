#pragma once
/// \file critical_path.hpp
/// Attribution analysis of executed task graphs (par::GraphRunLog): the
/// longest weighted path through the dependency DAG, parallel efficiency
/// (sum of task time over workers x makespan), per-worker busy/idle time,
/// and the per-kernel split of the critical path. This is the "why did
/// the step take this long" layer on top of PR 8's graph executor — the
/// per-kernel Profiler buckets say where time went; the critical path
/// says which chain of tasks bounded the step, and the efficiency/idle
/// numbers say how much of the worker-seconds the graph actually used.
///
/// GraphRunRecord is plain data, so tests hand-build chain/diamond/
/// fan-out graphs with known longest paths and check the DP directly.

#include <array>
#include <vector>

#include "obs/telemetry.hpp"
#include "par/task_graph.hpp"
#include "util/profiler.hpp"

namespace bookleaf::obs {

/// Result of analyzing one executed graph.
struct GraphAnalysis {
    double makespan_us = 0.0; ///< last task end - first task start
    double busy_us = 0.0;     ///< sum of all task durations
    double cp_us = 0.0;       ///< longest duration-weighted path
    int n_workers = 1;
    /// busy / (workers * makespan); 1.0 = every worker busy end to end.
    double efficiency = 0.0;
    /// Task ids on the critical path, in execution (topological) order.
    std::vector<par::TaskId> path;
    /// Critical-path time attributed to each kernel label.
    std::array<double, util::kernel_count> cp_kernel_us{};
    /// Per-worker busy time (idle = makespan - busy[w]).
    std::vector<double> worker_busy_us;
};

/// Longest-path DP over the record's DAG (Kahn topological order;
/// dist[i] = dur[i] + max over predecessors). Throws util::Error on a
/// cyclic record (cannot happen for records produced by TaskGraph::run,
/// which validates, but hand-built records go through the same check).
[[nodiscard]] GraphAnalysis analyze_graph(const par::GraphRunRecord& run);

/// Drain the graph runs a step produced: analyze each record, charge the
/// step's attribution fields (cp_us, graph_busy_us, graph_makespan_us,
/// graph_workers), accumulate the rank-level totals, and — when
/// `critical` is given — append the critical-path task spans (one chain
/// id per graph, for trace flow arrows). Clears `log.runs` so the next
/// step starts empty. A step that ran no graphs is a no-op.
void attribute_step(par::GraphRunLog& log, StepRecord& step,
                    RankAttribution& total,
                    std::vector<CritSpan>* critical = nullptr);

} // namespace bookleaf::obs
