#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace bookleaf::obs {

bool Json::as_bool() const {
    util::require(type_ == Type::boolean, "json: not a boolean");
    return bool_;
}

long long Json::as_int() const {
    if (type_ == Type::integer) return int_;
    util::require(type_ == Type::real && real_ == std::floor(real_),
                  "json: not an integer");
    return static_cast<long long>(real_);
}

double Json::as_real() const {
    if (type_ == Type::integer) return static_cast<double>(int_);
    util::require(type_ == Type::real, "json: not a number");
    return real_;
}

const std::string& Json::as_string() const {
    util::require(type_ == Type::string, "json: not a string");
    return string_;
}

std::size_t Json::size() const {
    if (type_ == Type::array) return array_.size();
    if (type_ == Type::object) return object_.size();
    return 0;
}

void Json::push_back(Json v) {
    if (type_ == Type::null) type_ = Type::array;
    util::require(type_ == Type::array, "json: push_back on non-array");
    array_.push_back(std::move(v));
}

Json& Json::operator[](std::string_view key) {
    if (type_ == Type::null) type_ = Type::object;
    util::require(type_ == Type::object, "json: operator[] on non-object");
    for (auto& [k, v] : object_)
        if (k == key) return v;
    object_.emplace_back(std::string(key), Json{});
    return object_.back().second;
}

const Json* Json::find(std::string_view key) const {
    if (type_ != Type::object) return nullptr;
    for (const auto& [k, v] : object_)
        if (k == key) return &v;
    return nullptr;
}

const std::vector<Json>& Json::elements() const {
    util::require(type_ == Type::array, "json: elements() on non-array");
    return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
    util::require(type_ == Type::object, "json: members() on non-object");
    return object_;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void append_real(std::string& out, double d) {
    // %.17g round-trips any finite double. Non-finite values have no JSON
    // spelling; emitting bare "nan"/"inf" would break every downstream
    // parser (including this file's own), so they serialize as a compact
    // marker object — a null value plus a "nonfinite" key naming which
    // non-finite it was. Deterministic, valid JSON, and stable under a
    // parse + re-dump cycle.
    if (!std::isfinite(d)) {
        out += "{\"value\":null,\"nonfinite\":\"";
        out += std::isnan(d) ? "nan" : (d > 0.0 ? "inf" : "-inf");
        out += "\"}";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
    // Keep reals visually distinct from integers ("1" -> "1.0") so a
    // parse() round-trip preserves the kind.
    if (out.find_first_of(".eEn", out.size() - std::strlen(buf)) ==
        std::string::npos)
        out += ".0";
}

void append_newline_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
    switch (type_) {
    case Type::null: out += "null"; break;
    case Type::boolean: out += bool_ ? "true" : "false"; break;
    case Type::integer: out += std::to_string(int_); break;
    case Type::real: append_real(out, real_); break;
    case Type::string: append_escaped(out, string_); break;
    case Type::array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0) out += indent > 0 ? "," : ",";
            append_newline_indent(out, indent, depth + 1);
            array_[i].dump_to(out, indent, depth + 1);
        }
        append_newline_indent(out, indent, depth);
        out += ']';
        break;
    }
    case Type::object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i > 0) out += ',';
            append_newline_indent(out, indent, depth + 1);
            append_escaped(out, object_[i].first);
            out += indent > 0 ? ": " : ":";
            object_[i].second.dump_to(out, indent, depth + 1);
        }
        append_newline_indent(out, indent, depth);
        out += '}';
        break;
    }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

namespace {

/// Recursive-descent parser over the input span.
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json document() {
        Json v = value();
        skip_ws();
        util::require(pos_ == text_.size(),
                      "json: trailing characters after document");
        return v;
    }

private:
    std::string_view text_;
    std::size_t pos_ = 0;

    [[noreturn]] void fail(const std::string& what) const {
        throw util::Error("json: " + what + " at offset " +
                          std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_word(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    Json value() {
        skip_ws();
        const char c = peek();
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') return Json(string());
        if (consume_word("true")) return Json(true);
        if (consume_word("false")) return Json(false);
        if (consume_word("null")) return Json{};
        if (c == '-' || (c >= '0' && c <= '9')) return number();
        fail("unexpected character");
    }

    Json object() {
        expect('{');
        Json v = Json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            v[key] = value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json array() {
        expect('[');
        Json v = Json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // The writer only emits \u00xx control codes; decode the
                // BMP subset as UTF-8 for general inputs.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    Json number() {
        const std::size_t start = pos_;
        bool is_real = false;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_real = true;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        util::require(token.size() > (token[0] == '-' ? 1U : 0U),
                      "json: bad number");
        if (!is_real) {
            errno = 0;
            char* end = nullptr;
            const long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end == token.c_str() + token.size())
                return Json(v);
        }
        char* end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) fail("bad number");
        return Json(d);
    }
};

} // namespace

Json Json::parse(std::string_view text) { return Parser(text).document(); }

void write_json_file(const std::string& path, const Json& value) {
    std::ofstream out(path);
    util::require(out.good(), "json: cannot open for writing: " + path);
    out << value.dump(2) << '\n';
    out.close();
    util::require(out.good(), "json: write failed: " + path);
}

Json read_json_file(const std::string& path) {
    std::ifstream in(path);
    util::require(in.good(), "json: cannot open: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return Json::parse(buf.str());
}

} // namespace bookleaf::obs
