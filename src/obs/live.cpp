#include "obs/live.hpp"

#include <algorithm>
#include <cstddef>

namespace bookleaf::obs {

// ---------------------------------------------------------------------------
// Window records
// ---------------------------------------------------------------------------

void fold_step(WindowRecord& w, const StepRecord& s) {
    if (w.steps == 0) w.first_step = s.step;
    w.last_step = s.step;
    ++w.steps;
    w.t = s.t;
    w.wall_us += s.wall_us;
    w.max_step_us = std::max(w.max_step_us, s.wall_us);
    w.retries += s.retries;
    if (s.remapped) ++w.remaps;
}

std::vector<Real> pack_window(const WindowRecord& w) {
    std::vector<Real> buf;
    buf.reserve(window_reals);
    buf.push_back(static_cast<Real>(w.rank));
    buf.push_back(static_cast<Real>(w.index));
    buf.push_back(static_cast<Real>(w.first_step));
    buf.push_back(static_cast<Real>(w.last_step));
    buf.push_back(static_cast<Real>(w.steps));
    buf.push_back(w.t);
    buf.push_back(w.wall_us);
    buf.push_back(w.max_step_us);
    buf.push_back(w.halo_wait_us);
    buf.push_back(w.reduce_wait_us);
    buf.push_back(static_cast<Real>(w.retries));
    buf.push_back(static_cast<Real>(w.remaps));
    buf.push_back(static_cast<Real>(w.items));
    return buf;
}

WindowRecord unpack_window(std::span<const Real> buf) {
    util::require(buf.size() == window_reals,
                  "live: malformed window record on the wire");
    WindowRecord w;
    std::size_t i = 0;
    w.rank = static_cast<int>(buf[i++]);
    w.index = static_cast<long>(buf[i++]);
    w.first_step = static_cast<long>(buf[i++]);
    w.last_step = static_cast<long>(buf[i++]);
    w.steps = static_cast<long>(buf[i++]);
    w.t = buf[i++];
    w.wall_us = buf[i++];
    w.max_step_us = buf[i++];
    w.halo_wait_us = buf[i++];
    w.reduce_wait_us = buf[i++];
    w.retries = static_cast<long>(buf[i++]);
    w.remaps = static_cast<long>(buf[i++]);
    w.items = static_cast<long long>(buf[i++]);
    return w;
}

Json window_json(const WindowRecord& w) {
    Json j = Json::object();
    j["rank"] = w.rank;
    j["index"] = static_cast<long long>(w.index);
    j["first_step"] = static_cast<long long>(w.first_step);
    j["last_step"] = static_cast<long long>(w.last_step);
    j["steps"] = static_cast<long long>(w.steps);
    j["t"] = w.t;
    j["wall_us"] = w.wall_us;
    j["max_step_us"] = w.max_step_us;
    j["mean_step_us"] = w.mean_step_us();
    j["halo_wait_us"] = w.halo_wait_us;
    j["reduce_wait_us"] = w.reduce_wait_us;
    j["retries"] = static_cast<long long>(w.retries);
    j["remaps"] = static_cast<long long>(w.remaps);
    j["items"] = static_cast<long long>(w.items);
    j["items_per_s"] = w.items_per_s();
    return j;
}

WindowFolder::WindowFolder(int rank, long window_steps,
                           const util::Profiler* profiler)
    : rank_(rank), every_(window_steps), profiler_(profiler) {
    util::require(every_ > 0, "live: window_steps must be positive");
    begin_window();
}

void WindowFolder::begin_window() {
    cur_ = WindowRecord{};
    cur_.rank = rank_;
    cur_.index = produced_;
    if (profiler_ != nullptr) {
        base_ = profiler_->snapshot();
        have_base_ = true;
    }
}

std::optional<WindowRecord> WindowFolder::add(const StepRecord& s) {
    fold_step(cur_, s);
    if (cur_.steps < every_) return std::nullopt;
    if (have_base_) {
        // The blocked-on-peers share and the swept-entity throughput come
        // from the profiler delta over the window, not per-step fields.
        const auto now = profiler_->snapshot();
        const auto delta_wall = [&](util::Kernel k) {
            const auto i = static_cast<std::size_t>(k);
            return (now[i].wall_s - base_[i].wall_s) * 1e6;
        };
        cur_.halo_wait_us = delta_wall(util::Kernel::halo_wait);
        cur_.reduce_wait_us = delta_wall(util::Kernel::reduce_wait);
        long long items = 0;
        for (std::size_t i = 0; i < util::kernel_count; ++i) {
            if (util::kernel_is_detail(static_cast<util::Kernel>(i)))
                continue; // detail slots refine aggregates already counted
            items += now[i].items - base_[i].items;
        }
        cur_.items = items;
    }
    WindowRecord done = cur_;
    ++produced_;
    begin_window();
    return done;
}

// ---------------------------------------------------------------------------
// Bounded step retention
// ---------------------------------------------------------------------------

void StepRing::push(const StepRecord& s) {
    ++total_;
    steps_.push_back(s);
    while (capacity_ > 0 &&
           steps_.size() > static_cast<std::size_t>(capacity_)) {
        fold_step(evicted_, steps_.front());
        steps_.pop_front();
    }
}

// ---------------------------------------------------------------------------
// Rank-0 assembly
// ---------------------------------------------------------------------------

Imbalance window_imbalance(const std::vector<WindowRecord>& ranks) {
    Imbalance imb;
    if (ranks.empty()) return imb;
    double sum = 0.0, max = 0.0;
    for (const auto& w : ranks) {
        const double s = w.wall_us * 1e-6;
        sum += s;
        if (imb.slowest_rank < 0 || s > max) {
            max = s;
            imb.slowest_rank = w.rank;
        }
    }
    imb.mean_rank_s = sum / static_cast<double>(ranks.size());
    imb.max_rank_s = max;
    imb.max_over_mean = imb.mean_rank_s > 0.0 ? max / imb.mean_rank_s : 1.0;
    return imb;
}

std::vector<LiveWindow> LiveAssembler::add(WindowRecord w) {
    util::require(w.rank >= 0 &&
                      static_cast<std::size_t>(w.rank) < per_rank_.size(),
                  "live: window from out-of-range rank");
    per_rank_[static_cast<std::size_t>(w.rank)].push_back(std::move(w));
    std::vector<LiveWindow> done;
    for (;;) {
        bool complete = true;
        for (const auto& q : per_rank_)
            if (q.empty()) {
                complete = false;
                break;
            }
        if (!complete) return done;
        LiveWindow lw;
        lw.index = completed_;
        lw.ranks.reserve(per_rank_.size());
        for (auto& q : per_rank_) {
            lw.ranks.push_back(std::move(q.front()));
            q.pop_front();
        }
        lw.imbalance = window_imbalance(lw.ranks);
        ++completed_;
        done.push_back(std::move(lw));
    }
}

// ---------------------------------------------------------------------------
// NDJSON stream
// ---------------------------------------------------------------------------

LiveStream::LiveStream(const std::string& path) {
    if (path.empty()) return;
    out_.open(path, std::ios::trunc);
    util::require(out_.is_open(),
                  "live: cannot open stream for writing: " + path);
}

void LiveStream::emit(Json event) {
    const std::lock_guard lock(mutex_);
    if (!out_.is_open()) return;
    event["seq"] = static_cast<long long>(seq_);
    ++seq_;
    // Compact single-line form + per-line flush: a killed run keeps every
    // event already emitted (crash survivability is the point).
    out_ << event.dump(0) << '\n';
    out_.flush();
}

long LiveStream::events() const {
    const std::lock_guard lock(mutex_);
    return seq_;
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

Watchdog::Watchdog(int n_ranks, double factor, double grace_ms, bool escalate)
    : n_ranks_(n_ranks), factor_(factor), grace_ms_(grace_ms),
      escalate_(escalate), epoch_(std::chrono::steady_clock::now()),
      steps_(static_cast<std::size_t>(n_ranks)),
      poisoned_(static_cast<std::size_t>(n_ranks)),
      last_arrival_ms_(static_cast<std::size_t>(n_ranks), 0.0),
      ewma_ms_(static_cast<std::size_t>(n_ranks), 0.0),
      windows_(static_cast<std::size_t>(n_ranks), 0),
      flagged_(static_cast<std::size_t>(n_ranks), false) {
    util::require(n_ranks > 0, "watchdog: n_ranks must be positive");
    util::require(factor > 0.0, "watchdog: factor must be positive");
    util::require(grace_ms >= 0.0, "watchdog: grace must be >= 0");
    for (auto& s : steps_) s.store(-1, std::memory_order_relaxed);
    for (auto& p : poisoned_) p.store(false, std::memory_order_relaxed);
}

bool Watchdog::note_step(int rank, long step) {
    const auto r = static_cast<std::size_t>(rank);
    steps_[r].store(step, std::memory_order_relaxed);
    return poisoned_[r].load(std::memory_order_relaxed);
}

double Watchdog::now_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void Watchdog::note_window(int rank) { note_window_at(rank, now_ms()); }

void Watchdog::note_window_at(int rank, double now_ms) {
    const std::lock_guard lock(mutex_);
    const auto r = static_cast<std::size_t>(rank);
    const double gap = now_ms - last_arrival_ms_[r];
    // EWMA of the inter-arrival gap (the first gap seeds it); last_arrival
    // starts at 0 = run start, so the first window's gap is its latency
    // from launch — a fair cadence estimate for detection purposes.
    ewma_ms_[r] = ewma_ms_[r] <= 0.0 ? gap : 0.5 * ewma_ms_[r] + 0.5 * gap;
    last_arrival_ms_[r] = now_ms;
    ++windows_[r];
    flagged_[r] = false; // arrivals resumed: the rank may be flagged again
}

std::vector<Watchdog::Stall> Watchdog::check(double now_ms) {
    const std::lock_guard lock(mutex_);
    // Fallback cadence for ranks with no arrivals yet: the mean EWMA of
    // the ranks that have one. With no arrivals anywhere there is no
    // cadence evidence at all — nothing can be flagged yet.
    double ewma_sum = 0.0;
    int ewma_n = 0;
    for (int r = 0; r < n_ranks_; ++r)
        if (ewma_ms_[static_cast<std::size_t>(r)] > 0.0) {
            ewma_sum += ewma_ms_[static_cast<std::size_t>(r)];
            ++ewma_n;
        }
    std::vector<Stall> stalls;
    if (ewma_n == 0) return stalls;
    for (int r = 0; r < n_ranks_; ++r) {
        const auto i = static_cast<std::size_t>(r);
        if (flagged_[i]) continue; // reported once until arrivals resume
        const double basis =
            ewma_ms_[i] > 0.0 ? ewma_ms_[i]
                              : ewma_sum / static_cast<double>(ewma_n);
        const double threshold = factor_ * basis + grace_ms_;
        const double silent = now_ms - last_arrival_ms_[i];
        if (silent <= threshold) continue;
        flagged_[i] = true;
        Stall s;
        s.rank = r;
        s.last_step = steps_[i].load(std::memory_order_relaxed);
        s.windows = windows_[i];
        s.silent_ms = silent;
        s.threshold_ms = threshold;
        if (escalate_) {
            poisoned_[i].store(true, std::memory_order_relaxed);
            s.escalated = true;
        }
        stalls.push_back(s);
    }
    return stalls;
}

std::vector<Watchdog::Stall> Watchdog::check_now() { return check(now_ms()); }

void Watchdog::poison(int rank) {
    poisoned_[static_cast<std::size_t>(rank)].store(
        true, std::memory_order_relaxed);
}

long Watchdog::last_step(int rank) const {
    return steps_[static_cast<std::size_t>(rank)].load(
        std::memory_order_relaxed);
}

WatchdogSession::WatchdogSession(
    Watchdog& dog, double poll_ms,
    std::function<void(const Watchdog::Stall&)> on_stall)
    : dog_(dog), on_stall_(std::move(on_stall)) {
    const auto period = std::chrono::duration<double, std::milli>(
        std::max(poll_ms, 1.0));
    thread_ = std::thread([this, period] {
        std::unique_lock lock(mutex_);
        while (!stop_) {
            cv_.wait_for(lock, period, [this] { return stop_; });
            if (stop_) return;
            lock.unlock();
            for (const auto& stall : dog_.check_now()) on_stall_(stall);
            lock.lock();
        }
    });
}

void WatchdogSession::stop() {
    {
        const std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
}

WatchdogSession::~WatchdogSession() { stop(); }

} // namespace bookleaf::obs
