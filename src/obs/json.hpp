#pragma once
/// \file json.hpp
/// Minimal ordered JSON value for the telemetry sinks.
///
/// The run report and trace files must be (a) dependency-free — the
/// container bakes no JSON library — and (b) deterministic: two identical
/// runs must serialize byte-identically so the report-determinism test can
/// diff them. Hence this tiny value type: objects keep *insertion* order
/// (a vector of pairs, not a map), integers and reals are distinct kinds
/// (steps/counts print as integers, never "3.0"), and doubles print with
/// %.17g so every value round-trips bit-exactly through parse().
///
/// The parser exists for the tests (schema round-trip) and the bench
/// comparator path; it is a straightforward recursive-descent reader and
/// accepts exactly the JSON this writer emits plus ordinary whitespace.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bookleaf::obs {

/// An ordered JSON value (null / bool / integer / real / string / array /
/// object). Copyable; object keys keep insertion order.
class Json {
public:
    enum class Type { null, boolean, integer, real, string, array, object };

    Json() = default;
    Json(bool b) : type_(Type::boolean), bool_(b) {}
    Json(int i) : type_(Type::integer), int_(i) {}
    Json(long i) : type_(Type::integer), int_(i) {}
    Json(long long i) : type_(Type::integer), int_(i) {}
    Json(double d) : type_(Type::real), real_(d) {}
    Json(const char* s) : type_(Type::string), string_(s) {}
    Json(std::string s) : type_(Type::string), string_(std::move(s)) {}

    [[nodiscard]] static Json array() {
        Json v;
        v.type_ = Type::array;
        return v;
    }
    [[nodiscard]] static Json object() {
        Json v;
        v.type_ = Type::object;
        return v;
    }

    [[nodiscard]] Type type() const { return type_; }
    [[nodiscard]] bool is_null() const { return type_ == Type::null; }
    [[nodiscard]] bool is_object() const { return type_ == Type::object; }
    [[nodiscard]] bool is_array() const { return type_ == Type::array; }
    [[nodiscard]] bool is_number() const {
        return type_ == Type::integer || type_ == Type::real;
    }
    [[nodiscard]] bool is_string() const { return type_ == Type::string; }

    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] long long as_int() const;   ///< integer (or integral real)
    [[nodiscard]] double as_real() const;     ///< any number, as double
    [[nodiscard]] const std::string& as_string() const;

    /// Array element count or object member count (0 for scalars).
    [[nodiscard]] std::size_t size() const;

    /// Array append. Requires an array (or null, which becomes one).
    void push_back(Json v);

    /// Object find-or-append by key. Requires an object (or null, which
    /// becomes one). Appended members keep insertion order.
    Json& operator[](std::string_view key);

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const Json* find(std::string_view key) const;

    [[nodiscard]] const std::vector<Json>& elements() const;
    [[nodiscard]] const std::vector<std::pair<std::string, Json>>&
    members() const;

    /// Serialize. indent > 0 pretty-prints with that many spaces per
    /// level; indent == 0 emits the compact single-line form. Output is
    /// deterministic: member order is insertion order, doubles use %.17g.
    [[nodiscard]] std::string dump(int indent = 0) const;

    /// Parse a JSON document (throws util::Error on malformed input).
    [[nodiscard]] static Json parse(std::string_view text);

private:
    Type type_ = Type::null;
    bool bool_ = false;
    long long int_ = 0;
    double real_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;

    void dump_to(std::string& out, int indent, int depth) const;
};

/// Write `value.dump(2)` plus a trailing newline to `path`; throws
/// util::Error when the file cannot be written.
void write_json_file(const std::string& path, const Json& value);

/// Read and parse a JSON file; throws util::Error on I/O or parse errors.
[[nodiscard]] Json read_json_file(const std::string& path);

} // namespace bookleaf::obs
