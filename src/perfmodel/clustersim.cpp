#include "perfmodel/clustersim.hpp"

#include <cmath>

namespace bookleaf::perfmodel {

double cache_factor(double working_set_bytes, double cache_bytes,
                    double penalty) {
    // Logistic blend centred a little above the cache size (lines and
    // prefetch keep part of the spill cheap) with a width narrow enough
    // that the transition completes within roughly one node-count
    // doubling — which is what confines the superlinear window to the
    // paper's 8->16-node interval.
    const double centre = 1.43 * cache_bytes;
    const double width = 0.4 * cache_bytes;
    const double x = (working_set_bytes - centre) / width;
    const double sigmoid = 1.0 / (1.0 + std::exp(-x));
    return 1.0 + penalty * sigmoid;
}

std::vector<ScalingPoint> strong_scaling(const CpuPlatform& platform,
                                         const WorkTable& work,
                                         const ScalingWorkload& workload,
                                         const NetworkModel& net,
                                         const std::vector<int>& nodes) {
    std::vector<ScalingPoint> out;
    out.reserve(nodes.size());

    for (const int p : nodes) {
        ScalingPoint point;
        point.nodes = p;

        const double cells_per_node = workload.n_cells / p;
        const double cells_per_core = cells_per_node / platform.cores;
        const double ws = cells_per_core * workload.bytes_per_cell_resident;
        point.cache_factor =
            cache_factor(ws, platform.cache_per_core, workload.cache_penalty);

        // Per-kernel compute (hybrid model, per the paper's §V-C choice),
        // scaled by the cache factor.
        for (const auto& [kernel, w] : work) {
            const double t = cpu_kernel_seconds(platform, w, cells_per_node,
                                                workload.steps, true) *
                             point.cache_factor;
            point.overall += t;
            if (kernel == util::Kernel::getq) point.viscosity += t;
            if (kernel == util::Kernel::getacc) point.acceleration += t;
        }

        // Communication: two halo exchanges per step over ~4 neighbours
        // (the subdomain perimeter), one log2(P) min-reduction.
        const double perimeter_cells = 4.0 * std::sqrt(cells_per_node);
        const double halo_bytes = perimeter_cells * workload.halo_bytes_per_cell;
        const double per_exchange =
            4.0 * (net.latency_s + halo_bytes / net.bandwidth_bps);
        const double reduce =
            std::ceil(std::log2(std::max(p, 2))) * net.latency_s;
        point.comm = workload.steps * (2.0 * per_exchange + reduce);

        // The viscosity and acceleration kernels are the two that carry
        // the halo exchanges (paper §IV-A): attribute one exchange each.
        point.viscosity += workload.steps * per_exchange;
        point.acceleration += workload.steps * per_exchange;
        point.overall += point.comm;

        out.push_back(point);
    }
    return out;
}

} // namespace bookleaf::perfmodel
