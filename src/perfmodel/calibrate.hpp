#pragma once
/// \file calibrate.hpp
/// Calibration of the performance model against *this repository's* real
/// kernels: run an instrumented Noh problem on the host, convert the
/// measured per-kernel wall times into per-cell effective flop counts,
/// and build a WorkTable from them. The EXPERIMENTS.md "paper vs
/// measured" comparison uses this to show how the C++ kernel balance
/// differs from the Fortran reference's.

#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "perfmodel/model.hpp"

namespace bookleaf::perfmodel {

struct Calibration {
    /// Measured seconds per cell per invocation for each modelled kernel.
    std::map<util::Kernel, double> seconds_per_cell;
    double host_rate = 3.0e9; ///< assumed effective host core flop/s
    int steps = 0;
    Index n_cells = 0;
};

/// Run a Noh problem of `resolution`^2 cells for `steps` Lagrangian steps
/// with the profiler attached and extract per-kernel per-cell costs.
[[nodiscard]] Calibration calibrate_noh(Index resolution = 60, int steps = 20);

/// Build a WorkTable whose flop counts reproduce the measured host times
/// under the model (bytes and structural fractions are inherited from the
/// reference table).
[[nodiscard]] WorkTable calibrated_work(const Calibration& calibration);

/// Calibrate from a persisted measurement document instead of a private
/// Noh run — the closed loop the CI gate uses. Accepts either:
///   * a "bookleaf.telemetry/1" run report: per-kernel wall_s and items
///     are summed over ranks (items counts swept cells, so
///     wall_s / items IS seconds-per-cell-per-invocation); or
///   * a "bookleaf.bench/1" document carrying a "measured_kernels" object
///     of {name: {wall_s, calls, items}} (bench_fig2_kernels --json).
/// Kernels absent from the document (or measured with zero items) keep no
/// entry, exactly like a calibrate_noh kernel with zero calls. Throws
/// util::Error when the document carries no per-kernel measurements.
[[nodiscard]] Calibration calibrate_from_document(const obs::Json& doc);

/// The perfmodel's export for the telemetry report: reference per-cell
/// work descriptors plus the Skylake platform's per-rank peaks scaled to
/// `n_threads` cores. The absolute scale is the model's, not the host's —
/// telemetry consumers compare kernels against each other (the
/// self-normalizing roofline anomaly detector), not against the clock.
[[nodiscard]] obs::WorkModel telemetry_work_model(int n_threads);

} // namespace bookleaf::perfmodel
