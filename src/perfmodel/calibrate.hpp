#pragma once
/// \file calibrate.hpp
/// Calibration of the performance model against *this repository's* real
/// kernels: run an instrumented Noh problem on the host, convert the
/// measured per-kernel wall times into per-cell effective flop counts,
/// and build a WorkTable from them. The EXPERIMENTS.md "paper vs
/// measured" comparison uses this to show how the C++ kernel balance
/// differs from the Fortran reference's.

#include "perfmodel/model.hpp"

namespace bookleaf::perfmodel {

struct Calibration {
    /// Measured seconds per cell per invocation for each modelled kernel.
    std::map<util::Kernel, double> seconds_per_cell;
    double host_rate = 3.0e9; ///< assumed effective host core flop/s
    int steps = 0;
    Index n_cells = 0;
};

/// Run a Noh problem of `resolution`^2 cells for `steps` Lagrangian steps
/// with the profiler attached and extract per-kernel per-cell costs.
[[nodiscard]] Calibration calibrate_noh(Index resolution = 60, int steps = 20);

/// Build a WorkTable whose flop counts reproduce the measured host times
/// under the model (bytes and structural fractions are inherited from the
/// reference table).
[[nodiscard]] WorkTable calibrated_work(const Calibration& calibration);

} // namespace bookleaf::perfmodel
