#include "perfmodel/calibrate.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/driver.hpp"
#include "setup/problems.hpp"
#include "util/error.hpp"

namespace bookleaf::perfmodel {

Calibration calibrate_noh(Index resolution, int steps) {
    core::Hydro h(setup::noh(resolution));
    h.run(std::nullopt, steps);

    Calibration cal;
    cal.steps = steps;
    cal.n_cells = h.mesh().n_cells();
    for (const auto kernel : modelled_kernels) {
        const auto stats = h.profiler().stats(kernel);
        if (stats.calls == 0) continue;
        // Wall seconds per cell per invocation.
        cal.seconds_per_cell[kernel] =
            stats.wall_s / static_cast<double>(stats.calls) / cal.n_cells;
    }
    return cal;
}

Calibration calibrate_from_document(const obs::Json& doc) {
    Calibration cal;
    // Per-kernel (wall seconds, swept cells) accumulated from whichever
    // measurement shape the document carries.
    std::map<util::Kernel, std::pair<double, double>> sums;
    const auto accumulate = [&](const obs::Json& kernels) {
        for (const auto kernel : modelled_kernels) {
            const obs::Json* jk =
                kernels.find(util::kernel_name(kernel));
            if (jk == nullptr) continue;
            const obs::Json* wall = jk->find("wall_s");
            const obs::Json* items = jk->find("items");
            if (wall == nullptr || items == nullptr) continue;
            auto& [w, n] = sums[kernel];
            w += wall->as_real();
            n += static_cast<double>(items->as_int());
        }
    };

    if (const obs::Json* ranks = doc.find("ranks"); ranks != nullptr) {
        // bookleaf.telemetry/1 run report.
        for (const auto& rank : ranks->elements())
            if (const obs::Json* kernels = rank.find("kernels"))
                accumulate(*kernels);
        if (const obs::Json* steps = doc.find("steps"))
            cal.steps = static_cast<int>(steps->as_int());
    } else if (const obs::Json* measured = doc.find("measured_kernels");
               measured != nullptr) {
        // bookleaf.bench/1 document (bench_fig2_kernels --json).
        accumulate(*measured);
        if (const obs::Json* steps = doc.find("measured_steps"))
            cal.steps = static_cast<int>(steps->as_int());
    } else {
        throw util::Error(
            "perfmodel: document carries no per-kernel measurements "
            "(expected a telemetry report with \"ranks\" or a bench "
            "document with \"measured_kernels\")");
    }

    for (const auto& [kernel, sum] : sums) {
        const auto& [wall, items] = sum;
        if (wall <= 0.0 || items <= 0.0) continue;
        // items counts cells swept summed over invocations, so this is
        // seconds per cell per invocation directly.
        cal.seconds_per_cell[kernel] = wall / items;
    }
    util::require(!cal.seconds_per_cell.empty(),
                  "perfmodel: document measured no modelled kernels");
    return cal;
}

obs::WorkModel telemetry_work_model(int n_threads) {
    const CpuPlatform p = skylake();
    const int width = std::max(1, n_threads);
    obs::WorkModel model;
    model.present = true;
    model.peak_flops = p.rate * width;
    model.peak_bw = p.bandwidth / p.cores * width;
    for (const auto& [kernel, work] : reference_work()) {
        auto& info = model.kernels[static_cast<std::size_t>(kernel)];
        info.flops_per_item = work.flops;
        info.bytes_per_item = work.bytes;
    }
    return model;
}

WorkTable calibrated_work(const Calibration& cal) {
    WorkTable table = reference_work();
    for (auto& [kernel, work] : table) {
        const auto it = cal.seconds_per_cell.find(kernel);
        if (it == cal.seconds_per_cell.end()) continue;
        // Effective flops so that one host core at cal.host_rate matches
        // the measured time.
        work.flops = it->second * cal.host_rate;
    }
    return table;
}

} // namespace bookleaf::perfmodel
