#include "perfmodel/calibrate.hpp"

#include "core/driver.hpp"
#include "setup/problems.hpp"

namespace bookleaf::perfmodel {

Calibration calibrate_noh(Index resolution, int steps) {
    core::Hydro h(setup::noh(resolution));
    h.run(std::nullopt, steps);

    Calibration cal;
    cal.steps = steps;
    cal.n_cells = h.mesh().n_cells();
    for (const auto kernel : modelled_kernels) {
        const auto stats = h.profiler().stats(kernel);
        if (stats.calls == 0) continue;
        // Wall seconds per cell per invocation.
        cal.seconds_per_cell[kernel] =
            stats.wall_s / static_cast<double>(stats.calls) / cal.n_cells;
    }
    return cal;
}

WorkTable calibrated_work(const Calibration& cal) {
    WorkTable table = reference_work();
    for (auto& [kernel, work] : table) {
        const auto it = cal.seconds_per_cell.find(kernel);
        if (it == cal.seconds_per_cell.end()) continue;
        // Effective flops so that one host core at cal.host_rate matches
        // the measured time.
        work.flops = it->second * cal.host_rate;
    }
    return table;
}

} // namespace bookleaf::perfmodel
