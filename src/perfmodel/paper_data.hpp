#pragma once
/// \file paper_data.hpp
/// The published evaluation numbers, transcribed from the paper for
/// side-by-side comparison in the bench harness and EXPERIMENTS.md.
/// Table II: per-kernel runtimes in seconds for the Noh problem on a
/// single node (percentages omitted; they follow from the values).

#include <map>

#include "perfmodel/model.hpp"

namespace bookleaf::perfmodel {

/// One Table II row as published.
struct PaperRow {
    double overall, viscosity, acceleration, getdt, getgeom, getforce, getpc;
};

/// Table II of the paper (Truby et al. 2018).
[[nodiscard]] inline const std::map<Config, PaperRow>& paper_table2() {
    static const std::map<Config, PaperRow> rows = {
        {Config::skl_mpi, {76.068, 46.365, 6.663, 8.880, 3.396, 5.364, 1.314}},
        {Config::skl_hybrid,
         {168.633, 52.913, 15.923, 53.086, 26.654, 4.925, 2.054}},
        {Config::bdw_mpi, {108.978, 70.116, 8.386, 11.936, 4.834, 7.348, 1.390}},
        {Config::bdw_hybrid,
         {180.438, 76.387, 16.142, 45.494, 20.764, 6.501, 2.108}},
        {Config::p100_omp,
         {186.506, 75.873, 26.806, 12.684, 16.784, 40.853, 3.608}},
        {Config::p100_cuda,
         {261.183, 97.445, 21.995, 40.433, 39.448, 0.536, 17.922}},
        {Config::v100_cuda,
         {191.636, 44.981, 11.442, 44.401, 14.789, 0.651, 10.051}},
    };
    return rows;
}

/// Table I of the paper: the experimental configurations.
struct PaperConfigRow {
    const char* hardware;
    const char* system;
    const char* compiler;
};
[[nodiscard]] inline const std::map<Config, PaperConfigRow>& paper_table1() {
    static const std::map<Config, PaperConfigRow> rows = {
        {Config::skl_mpi,
         {"Intel Xeon Platinum 8176 'Skylake' (2x28 cores)", "Cray XC50",
          "Cray"}},
        {Config::skl_hybrid,
         {"Intel Xeon Platinum 8176 'Skylake' (2x28 cores)", "Cray XC50",
          "Cray"}},
        {Config::bdw_mpi,
         {"Intel Xeon E5-2699 v4 'Broadwell' (2x22 cores)", "Cray XC50",
          "Cray"}},
        {Config::bdw_hybrid,
         {"Intel Xeon E5-2699 v4 'Broadwell' (2x22 cores)", "Cray XC50",
          "Cray"}},
        {Config::p100_omp,
         {"NVIDIA P100 (OpenMP offload)", "Cray XC50", "Cray"}},
        {Config::p100_cuda,
         {"NVIDIA P100 (CUDA Fortran)", "SuperMicro 2028GR-TR", "PGI"}},
        {Config::v100_cuda,
         {"NVIDIA V100 (CUDA Fortran)", "SuperMicro 2028GR-TR", "PGI"}},
    };
    return rows;
}

} // namespace bookleaf::perfmodel
