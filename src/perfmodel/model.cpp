#include "perfmodel/model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bookleaf::perfmodel {

using util::Kernel;

std::string config_name(Config c) {
    switch (c) {
    case Config::skl_mpi: return "Skylake MPI";
    case Config::skl_hybrid: return "Skylake Hybrid";
    case Config::bdw_mpi: return "Broadwell MPI";
    case Config::bdw_hybrid: return "Broadwell Hybrid";
    case Config::p100_omp: return "P100 OpenMP";
    case Config::p100_cuda: return "P100 CUDA";
    case Config::v100_cuda: return "V100 CUDA";
    case Config::count_: break;
    }
    return "invalid";
}

bool config_is_gpu(Config c) {
    return c == Config::p100_omp || c == Config::p100_cuda ||
           c == Config::v100_cuda;
}

// ---------------------------------------------------------------------------
// Work table.
//
// Anchoring arithmetic: with the nominal Table II workload (4e6 cells,
// 2000 steps) and the Skylake platform below (56 cores at an effective
// 4 GFLOP/s each), a kernel invoked twice per step with F flops/cell costs
//   t = 2 * 4e6 * 2000 * F / (56 * 4e9)  seconds.
// The flop counts below make the Skylake flat-MPI column reproduce
// Table II: getq 46.4 s (70%-class), getacc 6.6 s, getdt 8.9 s,
// getgeom 3.4 s, getforce 5.4 s, getpc 1.3 s.
//
// The hybrid artefacts: the acceleration scatter keeps ~4.5% of the kernel
// serial per rank, the getdt MINVAL/MINLOC reductions ~15% (paper §IV-B);
// getgeom is memory-bandwidth bound and NUMA-sensitive, which is what
// blows it up under one-rank-per-socket threading while the compute-bound
// viscosity barely moves (§V-B).
// ---------------------------------------------------------------------------

const WorkTable& reference_work() {
    static const WorkTable table = {
        {Kernel::getq, {.per_step = 2, .flops = 650, .bytes = 160,
                        .thread_eff = 0.88}},
        {Kernel::getforce, {.per_step = 2, .flops = 75, .bytes = 60}},
        {Kernel::getacc, {.per_step = 1, .flops = 186, .bytes = 140,
                          .hybrid_serial = 0.045}},
        {Kernel::getgeom, {.per_step = 2, .flops = 48, .bytes = 42.5,
                           .numa_sensitive = true}},
        {Kernel::getrho, {.per_step = 2, .flops = 15, .bytes = 20}},
        {Kernel::getein, {.per_step = 2, .flops = 40, .bytes = 40}},
        {Kernel::getpc, {.per_step = 2, .flops = 18, .bytes = 15}},
        {Kernel::getdt, {.per_step = 1, .flops = 248, .bytes = 60,
                         .hybrid_serial = 0.15}},
    };
    return table;
}

CpuPlatform skylake() {
    return {.name = "Intel Xeon Platinum 8176 'Skylake'",
            .cores = 56,
            .hybrid_ranks = 2,
            .rate = 4.0e9,
            .bandwidth = 220.0e9,
            .numa_penalty = 8.6,
            .cache_per_core = 1.4e6};
}

CpuPlatform broadwell() {
    return {.name = "Intel Xeon E5-2699 v4 'Broadwell'",
            .cores = 44,
            .hybrid_ranks = 2,
            .rate = 3.37e9,
            .bandwidth = 150.0e9,
            .numa_penalty = 4.6,
            .cache_per_core = 2.5e6};
}

// ---------------------------------------------------------------------------
// GPU backends. Effective rates are far below peak (these are
// latency/branch-heavy Fortran ports, §V-B); per-kernel time_eff factors
// encode the compiler code-generation differences the paper reports:
// the Cray OpenMP-offload getforce is very slow while the PGI CUDA
// getforce is essentially free, and vice versa for the time differential
// (host-side under CUDA).
// ---------------------------------------------------------------------------

GpuBackend p100_openmp() {
    GpuBackend g;
    g.name = "NVIDIA P100 (OpenMP offload, Cray)";
    g.rate = 1.37e11;
    g.bandwidth = 500.0e9;
    g.getq_occupancy = 1.0; // better register utilisation than CUDA (§V-B)
    g.host_getdt = false;   // reductions run on the device (§V-B)
    g.time_eff = {{Kernel::getacc, 2.47}, {Kernel::getgeom, 2.26},
                  {Kernel::getforce, 4.66}, {Kernel::getpc, 1.71},
                  {Kernel::getdt, 0.875},  {Kernel::getein, 1.5},
                  {Kernel::getrho, 1.5}};
    return g;
}

GpuBackend p100_cuda(bool dope_vectors) {
    GpuBackend g;
    g.name = "NVIDIA P100 (CUDA Fortran, PGI)";
    g.rate = 1.37e11;
    g.bandwidth = 500.0e9;
    g.getq_occupancy = 1.3; // register pressure lowers occupancy (§V-B)
    g.host_getdt = true;    // no reduction primitives in CUDA Fortran (§IV-D)
    g.time_eff = {{Kernel::getacc, 2.03}, {Kernel::getgeom, 7.04},
                  {Kernel::getforce, 0.06}, {Kernel::getpc, 8.5},
                  {Kernel::getein, 6.0},   {Kernel::getrho, 6.0}};
    if (dope_vectors)
        g.launch.dope_vector_bytes = 84.0; // 72-96 bytes per array (§IV-D)
    return g;
}

GpuBackend v100_cuda(bool dope_vectors) {
    GpuBackend g = p100_cuda(dope_vectors);
    g.name = "NVIDIA V100 (CUDA Fortran, PGI)";
    g.rate = 2.17 * 1.37e11;
    g.bandwidth = 900.0e9;
    return g;
}

// ---------------------------------------------------------------------------
// CPU kernel timing: roofline + hybrid artefacts.
// ---------------------------------------------------------------------------

double cpu_kernel_seconds(const CpuPlatform& p, const KernelWork& w,
                          double n_cells, double steps, bool hybrid) {
    const double invocations = w.per_step * n_cells * steps;
    const double flops = invocations * w.flops;
    const double bytes = invocations * w.bytes;

    double t_compute;
    if (!hybrid) {
        t_compute = flops / (p.rate * p.cores);
    } else {
        // Serial fraction runs once per rank; the rest across all cores,
        // derated by the threading efficiency.
        const double s = w.hybrid_serial;
        t_compute = flops *
                    (s / p.hybrid_ranks + (1.0 - s) / p.cores / w.thread_eff) /
                    p.rate;
    }

    double bw = p.bandwidth;
    if (hybrid && w.numa_sensitive) bw /= p.numa_penalty;
    const double t_bandwidth = bytes / bw;

    return std::max(t_compute, t_bandwidth);
}

// ---------------------------------------------------------------------------
// Model one Table II configuration.
// ---------------------------------------------------------------------------

namespace {

Breakdown model_cpu(const CpuPlatform& p, bool hybrid, const WorkTable& work,
                    double n_cells, double steps) {
    Breakdown b;
    for (const auto& [kernel, w] : work) {
        const double t = cpu_kernel_seconds(p, w, n_cells, steps, hybrid);
        b.seconds[kernel] = t;
        b.overall += t;
    }
    return b;
}

Breakdown model_gpu(const GpuBackend& g, const WorkTable& work, double n_cells,
                    double steps) {
    Breakdown b;
    device::Device dev(g.name, g.rate, g.bandwidth, g.pcie, g.launch);

    // One bulk host->device transfer at loop entry and the reverse at exit
    // (§IV-C: arrays move once, not per iteration). ~30 Real fields.
    const double setup = dev.copy_to_device(
        static_cast<std::size_t>(n_cells) * 30 * sizeof(Real));
    const double teardown = dev.copy_to_host(
        static_cast<std::size_t>(n_cells) * 30 * sizeof(Real));
    b.seconds[util::Kernel::transfer] = setup + teardown;

    for (const auto& [kernel, w] : work) {
        double t = 0.0;
        if (kernel == util::Kernel::getdt && g.host_getdt) {
            // CUDA Fortran: no reduction primitives -> copy the needed
            // arrays back and reduce on one host core, every step (§IV-D).
            const double per_step_transfer =
                g.pcie.latency_s + n_cells * sizeof(Real) *
                                       g.getdt_transfer_arrays /
                                       g.pcie.bandwidth_bps;
            const double per_step_host =
                n_cells * g.host_getdt_flops / g.host_rate;
            t = steps * (per_step_transfer + per_step_host);
        } else {
            const double eff = [&] {
                const auto it = g.time_eff.find(kernel);
                return it == g.time_eff.end() ? 1.0 : it->second;
            }();
            const double occupancy =
                (kernel == util::Kernel::getq) ? g.getq_occupancy : 1.0;
            // One representative launch costed by the device, charged once
            // per invocation per step (so per-launch overheads — including
            // dope vectors — scale with the step count, §IV-D).
            const double per_launch = dev.launch(w.flops * eff, w.bytes,
                                                 n_cells, /*n_arrays=*/8,
                                                 occupancy);
            t += per_launch * w.per_step * steps;
            if (kernel == util::Kernel::getdt && !g.host_getdt) {
                // Device-side reduction result comes back as one scalar.
                t += steps * g.pcie.latency_s;
            }
        }
        b.seconds[kernel] = t;
        b.overall += t;
    }
    b.overall += b.seconds[util::Kernel::transfer];
    return b;
}

} // namespace

Breakdown model_noh(Config config, const WorkTable& work, double n_cells,
                    double steps) {
    switch (config) {
    case Config::skl_mpi: return model_cpu(skylake(), false, work, n_cells, steps);
    case Config::skl_hybrid:
        return model_cpu(skylake(), true, work, n_cells, steps);
    case Config::bdw_mpi:
        return model_cpu(broadwell(), false, work, n_cells, steps);
    case Config::bdw_hybrid:
        return model_cpu(broadwell(), true, work, n_cells, steps);
    case Config::p100_omp:
        return model_gpu(p100_openmp(), work, n_cells, steps);
    case Config::p100_cuda:
        return model_gpu(p100_cuda(), work, n_cells, steps);
    case Config::v100_cuda:
        return model_gpu(v100_cuda(), work, n_cells, steps);
    case Config::count_: break;
    }
    throw util::Error("model_noh: invalid config");
}

} // namespace bookleaf::perfmodel
