#pragma once
/// \file model.hpp
/// Performance model for the paper's evaluation (§V).
///
/// The authors' testbed (Cray XC50 Broadwell/Skylake nodes, P100/V100
/// GPUs, Cray/PGI Fortran compilers) is unavailable, so the evaluation is
/// reproduced through an explicit model whose *mechanisms* mirror the
/// paper's explanations:
///   * CPU kernels: roofline (compute vs memory-bandwidth bound) over
///     per-kernel work descriptors;
///   * hybrid MPI+OpenMP: the acceleration kernel's scatter and the
///     getdt MINVAL/MINLOC reductions keep a serial fraction per rank
///     (§IV-B), and NUMA-sensitive bandwidth-bound kernels see a reduced
///     effective bandwidth — which is why the hybrid model loses overall
///     while its (compute-bound) viscosity stays within a few percent;
///   * GPU backends run through device::Device (launch overheads, PCIe,
///     dope vectors, register-pressure occupancy), with the CUDA
///     time-differential kernel computed on the host behind per-step
///     device->host transfers (§IV-D) and the OpenMP-offload reductions
///     staying on the device;
///   * per-kernel efficiency factors encode compiler code-generation
///     quality where the paper reports behaviour without a mechanism
///     (e.g. the OpenMP-offload getforce).
///
/// The absolute scale is anchored once: the Skylake flat-MPI column of
/// Table II. Everything else follows from the mechanisms.

#include <array>
#include <map>
#include <string>

#include "device/device.hpp"
#include "util/profiler.hpp"
#include "util/types.hpp"

namespace bookleaf::perfmodel {

/// The seven single-node configurations of Table II / Figs 1-2.
enum class Config {
    skl_mpi = 0,
    skl_hybrid,
    bdw_mpi,
    bdw_hybrid,
    p100_omp,
    p100_cuda,
    v100_cuda,
    count_
};
inline constexpr int config_count = static_cast<int>(Config::count_);

[[nodiscard]] std::string config_name(Config c);
[[nodiscard]] bool config_is_gpu(Config c);

/// Per-kernel work descriptor (per cell, per invocation).
struct KernelWork {
    int per_step = 0;        ///< invocations per Lagrangian step
    double flops = 0.0;      ///< per cell
    double bytes = 0.0;      ///< per cell (streamed)
    double hybrid_serial = 0.0; ///< serial fraction under the hybrid model
    double thread_eff = 1.0;    ///< hybrid threading efficiency
    bool numa_sensitive = false;///< bandwidth derated by NUMA under hybrid
};

/// The Lagrangian kernels the model covers, in Table II order first.
inline constexpr std::array<util::Kernel, 8> modelled_kernels = {
    util::Kernel::getq,  util::Kernel::getacc, util::Kernel::getdt,
    util::Kernel::getgeom, util::Kernel::getforce, util::Kernel::getpc,
    util::Kernel::getrho, util::Kernel::getein};

using WorkTable = std::map<util::Kernel, KernelWork>;

/// Reference work table: per-kernel flop/byte counts anchored to the
/// Skylake flat-MPI column of Table II (see model.cpp for the anchoring
/// arithmetic).
[[nodiscard]] const WorkTable& reference_work();

/// CPU node description (Table I rows 1-2).
struct CpuPlatform {
    std::string name;
    int cores = 0;          ///< per node
    int hybrid_ranks = 2;   ///< one rank per NUMA region
    double rate = 0.0;      ///< effective flop/s per core
    double bandwidth = 0.0; ///< node memory bandwidth, bytes/s
    double numa_penalty = 1.0;
    double cache_per_core = 0.0; ///< bytes of effective last-level cache
};
[[nodiscard]] CpuPlatform skylake();
[[nodiscard]] CpuPlatform broadwell();

/// GPU backend description (Table I rows 3-5).
struct GpuBackend {
    std::string name;
    double rate = 0.0;              ///< effective device flop/s
    double bandwidth = 0.0;         ///< device memory bytes/s
    device::TransferModel pcie;
    device::LaunchModel launch;     ///< includes dope-vector bytes if any
    double getq_occupancy = 1.0;    ///< register-pressure factor (§V-B)
    bool host_getdt = false;        ///< CUDA: time differential on host (§IV-D)
    double host_rate = 3.0e9;       ///< attached host core flop/s
    double host_getdt_flops = 7.5;  ///< effective host flops/cell for getdt
    int getdt_transfer_arrays = 4;  ///< arrays copied D2H per step for getdt
    std::map<util::Kernel, double> time_eff; ///< per-kernel slowdown factor
};
[[nodiscard]] GpuBackend p100_openmp();
[[nodiscard]] GpuBackend p100_cuda(bool dope_vectors = false);
[[nodiscard]] GpuBackend v100_cuda(bool dope_vectors = false);

/// Per-kernel seconds for one configuration.
struct Breakdown {
    std::map<util::Kernel, double> seconds;
    double overall = 0.0;

    [[nodiscard]] double at(util::Kernel k) const {
        const auto it = seconds.find(k);
        return it == seconds.end() ? 0.0 : it->second;
    }
};

/// Nominal Table II workload: the Noh problem at the model scale.
inline constexpr double table2_cells = 4.0e6;
inline constexpr double table2_steps = 2000;

/// Model one configuration of Table II.
[[nodiscard]] Breakdown model_noh(Config config, const WorkTable& work,
                                  double n_cells = table2_cells,
                                  double steps = table2_steps);

/// CPU flat / hybrid single-kernel time (exposed for ablations/tests).
[[nodiscard]] double cpu_kernel_seconds(const CpuPlatform& p,
                                        const KernelWork& w, double n_cells,
                                        double steps, bool hybrid);

} // namespace bookleaf::perfmodel
