#pragma once
/// \file clustersim.hpp
/// Discrete cluster model for the strong-scaling study (paper §V-C,
/// Figs 3-4): the Sod problem on 8-64 Cray XC50 nodes under the hybrid
/// model. Per-node compute follows the same work table as the
/// single-node model, scaled by a cache-capacity factor — the paper's
/// stated mechanism for the superlinear 8->16-node window is
/// "significantly better cache utilisation … once the problem set is
/// divided to a certain size" — plus an alpha-beta (latency-bandwidth)
/// Aries-like network for the two halo exchanges and the single dt
/// reduction per step, which the paper observes are too small to matter.

#include <vector>

#include "perfmodel/model.hpp"

namespace bookleaf::perfmodel {

struct NetworkModel {
    double latency_s = 1.5e-6;      ///< per-message (Aries-class)
    double bandwidth_bps = 10.0e9;  ///< per-link bytes/s
};

struct ScalingWorkload {
    double n_cells = 6.0e6;    ///< Sod at the model scale
    double steps = 45000;
    double bytes_per_cell_resident = 200.0; ///< working-set footprint
    double halo_bytes_per_cell = 64.0;      ///< exchanged fields per ghost cell
    /// Cache-capacity penalty: effective slowdown when the per-core
    /// working set spills the last-level cache.
    double cache_penalty = 1.0;
};

struct ScalingPoint {
    int nodes = 0;
    double overall = 0.0;
    double viscosity = 0.0;    ///< getq (Fig 4a)
    double acceleration = 0.0; ///< getacc (Fig 4b)
    double comm = 0.0;         ///< halo + reduction time
    double cache_factor = 0.0; ///< diagnostics
};

/// Smooth cache-capacity factor in [1, 1+penalty]: ~1 when the per-core
/// working set fits in cache, 1+penalty when it spills badly.
[[nodiscard]] double cache_factor(double working_set_bytes, double cache_bytes,
                                  double penalty);

/// Strong-scaling sweep of the Sod problem on `nodes` node counts.
[[nodiscard]] std::vector<ScalingPoint>
strong_scaling(const CpuPlatform& platform, const WorkTable& work,
               const ScalingWorkload& workload, const NetworkModel& net,
               const std::vector<int>& nodes);

} // namespace bookleaf::perfmodel
