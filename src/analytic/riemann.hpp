#pragma once
/// \file riemann.hpp
/// Exact Riemann solver for the 1-D Euler equations with an ideal-gas
/// EoS (Toro's iterative two-rarefaction/two-shock scheme). Used to
/// validate the Sod shock-tube runs against the true solution.

#include "util/types.hpp"

namespace bookleaf::analytic {

/// Primitive state (density, velocity, pressure).
struct PrimState {
    Real rho = 0.0;
    Real u = 0.0;
    Real p = 0.0;
};

/// Exact solution of the Riemann problem (left, right, gamma). `sample`
/// evaluates the self-similar solution at speed xi = x / t.
class Riemann {
public:
    Riemann(PrimState left, PrimState right, Real gamma);

    /// Pressure and velocity in the star region.
    [[nodiscard]] Real p_star() const { return p_star_; }
    [[nodiscard]] Real u_star() const { return u_star_; }

    /// Solution at similarity coordinate xi = x / t.
    [[nodiscard]] PrimState sample(Real xi) const;

private:
    PrimState left_, right_;
    Real gamma_;
    Real p_star_ = 0.0, u_star_ = 0.0;
};

} // namespace bookleaf::analytic
