#pragma once
/// \file exact.hpp
/// Closed-form reference solutions for the remaining BookLeaf test
/// problems: the cylindrical Noh implosion, the strong-shock piston
/// (Saltzmann), and the Sedov scaling law.

#include "util/types.hpp"

namespace bookleaf::analytic {

/// Exact cylindrical (2-D) Noh solution for gamma = 5/3, rho0 = 1,
/// inflow speed 1: shock at r = t/3; behind it rho = 16, u = 0,
/// P = 16/3; ahead rho = 1 + t/r, u = -1, P = 0.
struct NohState {
    Real rho, u_r, p;
};
[[nodiscard]] NohState noh_exact(Real r, Real t);

/// Strong-shock piston relations: piston speed vp driving into a cold
/// (P ~ 0) ideal gas of density rho0 at rest.
struct PistonSolution {
    Real shock_speed;   ///< D = (gamma + 1)/2 * vp
    Real rho_shocked;   ///< rho0 (gamma + 1)/(gamma - 1)
    Real p_shocked;     ///< rho0 D vp
};
[[nodiscard]] PistonSolution piston_exact(Real gamma, Real rho0, Real vp);

/// Sedov blast in 2-D (cylindrical): R(t) = xi0 (E t^2 / rho0)^(1/4).
/// The scaling exponent d(ln R)/d(ln t) = 1/2 is the mesh-independent
/// check; estimate it from two (t, R) samples.
[[nodiscard]] Real sedov_exponent(Real t1, Real r1, Real t2, Real r2);

/// Post-shock density for a strong shock (Sedov front): rho2/rho1
/// = (gamma + 1)/(gamma - 1).
[[nodiscard]] Real strong_shock_density_ratio(Real gamma);

} // namespace bookleaf::analytic
