#include "analytic/exact.hpp"

#include <cmath>

namespace bookleaf::analytic {

NohState noh_exact(Real r, Real t) {
    // gamma = 5/3 constants: shock speed 1/3, jump (gamma+1)/(gamma-1) = 4,
    // squared for the cylindrical geometric focusing -> 16.
    const Real r_shock = t / Real(3.0);
    if (r < r_shock) {
        // e2 = 1/2 (all inflow kinetic energy thermalised):
        // P = (gamma - 1) rho e = (2/3) * 16 * (1/2) = 16/3.
        return {Real(16.0), Real(0.0), Real(16.0) / Real(3.0)};
    }
    return {Real(1.0) + t / r, Real(-1.0), Real(0.0)};
}

PistonSolution piston_exact(Real gamma, Real rho0, Real vp) {
    PistonSolution s;
    s.shock_speed = Real(0.5) * (gamma + 1) * vp;
    s.rho_shocked = rho0 * (gamma + 1) / (gamma - 1);
    s.p_shocked = rho0 * s.shock_speed * vp;
    return s;
}

Real sedov_exponent(Real t1, Real r1, Real t2, Real r2) {
    return std::log(r2 / r1) / std::log(t2 / t1);
}

Real strong_shock_density_ratio(Real gamma) {
    return (gamma + 1) / (gamma - 1);
}

} // namespace bookleaf::analytic
