#include "analytic/norms.hpp"

#include <algorithm>
#include <cmath>

namespace bookleaf::analytic {

Norms cell_error_norms(const mesh::Mesh& mesh, std::span<const Real> x,
                       std::span<const Real> y, std::span<const Real> volume,
                       std::span<const Real> field,
                       const std::function<Real(Real, Real)>& reference,
                       const std::function<bool(Real, Real)>& mask) {
    Norms n;
    Real total_volume = 0.0;
    for (Index c = 0; c < mesh.n_cells(); ++c) {
        Real cx = 0, cy = 0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const auto node = static_cast<std::size_t>(mesh.cn(c, k));
            cx += x[node];
            cy += y[node];
        }
        cx *= Real(0.25);
        cy *= Real(0.25);
        if (mask && !mask(cx, cy)) continue;
        const auto ci = static_cast<std::size_t>(c);
        const Real err = field[ci] - reference(cx, cy);
        const Real v = volume[ci];
        n.l1 += std::abs(err) * v;
        n.l2 += err * err * v;
        n.linf = std::max(n.linf, std::abs(err));
        total_volume += v;
    }
    if (total_volume > 0.0) {
        n.l1 /= total_volume;
        n.l2 = std::sqrt(n.l2 / total_volume);
    }
    return n;
}

} // namespace bookleaf::analytic
