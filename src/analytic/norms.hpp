#pragma once
/// \file norms.hpp
/// Error norms between a cell field and a reference function evaluated at
/// cell centroids, volume-weighted (the standard convergence metric).

#include <functional>
#include <span>

#include "mesh/mesh.hpp"
#include "util/types.hpp"

namespace bookleaf::analytic {

struct Norms {
    Real l1 = 0.0;
    Real l2 = 0.0;
    Real linf = 0.0;
};

/// Volume-weighted norms of (field - reference(cx, cy)) over the cells
/// selected by `mask` (null = all cells). `x`, `y` are the *current* node
/// positions; `volume` the current cell volumes.
Norms cell_error_norms(const mesh::Mesh& mesh, std::span<const Real> x,
                       std::span<const Real> y, std::span<const Real> volume,
                       std::span<const Real> field,
                       const std::function<Real(Real, Real)>& reference,
                       const std::function<bool(Real, Real)>& mask = nullptr);

} // namespace bookleaf::analytic
