#include "analytic/riemann.hpp"

#include <cmath>

#include "util/error.hpp"

namespace bookleaf::analytic {

namespace {

/// f_K(p): velocity change across the K-wave, plus derivative (Toro §4.3).
struct WaveFn {
    Real f, df;
};

WaveFn wave(Real p, const PrimState& s, Real g) {
    const Real a = std::sqrt(g * s.p / s.rho);
    if (p > s.p) {
        // shock
        const Real ak = 2.0 / ((g + 1) * s.rho);
        const Real bk = (g - 1) / (g + 1) * s.p;
        const Real root = std::sqrt(ak / (p + bk));
        return {(p - s.p) * root,
                root * (1.0 - (p - s.p) / (2.0 * (bk + p)))};
    }
    // rarefaction
    const Real pr = p / s.p;
    return {2.0 * a / (g - 1) * (std::pow(pr, (g - 1) / (2 * g)) - 1.0),
            std::pow(pr, -(g + 1) / (2 * g)) / (s.rho * a)};
}

} // namespace

Riemann::Riemann(PrimState left, PrimState right, Real gamma)
    : left_(left), right_(right), gamma_(gamma) {
    util::require(left.rho > 0 && right.rho > 0 && left.p > 0 && right.p > 0,
                  "riemann: states must have positive density and pressure");

    // Initial guess: PVRS (primitive-variable Riemann solver), floored.
    const Real al = std::sqrt(gamma_ * left_.p / left_.rho);
    const Real ar = std::sqrt(gamma_ * right_.p / right_.rho);
    Real p = Real(0.5) * (left_.p + right_.p) -
             Real(0.125) * (right_.u - left_.u) * (left_.rho + right_.rho) *
                 (al + ar);
    p = std::max(p, Real(1e-8) * std::min(left_.p, right_.p));

    // Newton iteration on f(p) = fL + fR + du = 0.
    const Real du = right_.u - left_.u;
    for (int it = 0; it < 100; ++it) {
        const auto wl = wave(p, left_, gamma_);
        const auto wr = wave(p, right_, gamma_);
        const Real f = wl.f + wr.f + du;
        const Real df = wl.df + wr.df;
        const Real p_new = std::max(p - f / df, Real(1e-12));
        if (std::abs(p_new - p) < 1e-14 * p) {
            p = p_new;
            break;
        }
        p = p_new;
    }
    p_star_ = p;
    const auto wl = wave(p, left_, gamma_);
    const auto wr = wave(p, right_, gamma_);
    u_star_ = Real(0.5) * (left_.u + right_.u) + Real(0.5) * (wr.f - wl.f);
}

PrimState Riemann::sample(Real xi) const {
    const Real g = gamma_;
    if (xi <= u_star_) {
        // Left of the contact.
        const PrimState& s = left_;
        const Real a = std::sqrt(g * s.p / s.rho);
        if (p_star_ > s.p) {
            // Left shock.
            const Real ratio = p_star_ / s.p;
            const Real sl =
                s.u - a * std::sqrt((g + 1) / (2 * g) * ratio + (g - 1) / (2 * g));
            if (xi <= sl) return s;
            const Real rho = s.rho * (ratio + (g - 1) / (g + 1)) /
                             ((g - 1) / (g + 1) * ratio + 1.0);
            return {rho, u_star_, p_star_};
        }
        // Left rarefaction.
        const Real rho_star = s.rho * std::pow(p_star_ / s.p, 1.0 / g);
        const Real a_star = std::sqrt(g * p_star_ / rho_star);
        const Real head = s.u - a;
        const Real tail = u_star_ - a_star;
        if (xi <= head) return s;
        if (xi >= tail) return {rho_star, u_star_, p_star_};
        // Inside the fan.
        const Real u = 2.0 / (g + 1) * (a + (g - 1) / 2.0 * s.u + xi);
        const Real afan = 2.0 / (g + 1) * (a + (g - 1) / 2.0 * (s.u - xi));
        const Real rho = s.rho * std::pow(afan / a, 2.0 / (g - 1));
        const Real p = s.p * std::pow(afan / a, 2.0 * g / (g - 1));
        return {rho, u, p};
    }
    // Right of the contact (mirror).
    const PrimState& s = right_;
    const Real a = std::sqrt(g * s.p / s.rho);
    if (p_star_ > s.p) {
        const Real ratio = p_star_ / s.p;
        const Real sr =
            s.u + a * std::sqrt((g + 1) / (2 * g) * ratio + (g - 1) / (2 * g));
        if (xi >= sr) return s;
        const Real rho = s.rho * (ratio + (g - 1) / (g + 1)) /
                         ((g - 1) / (g + 1) * ratio + 1.0);
        return {rho, u_star_, p_star_};
    }
    const Real rho_star = s.rho * std::pow(p_star_ / s.p, 1.0 / g);
    const Real a_star = std::sqrt(g * p_star_ / rho_star);
    const Real head = s.u + a;
    const Real tail = u_star_ + a_star;
    if (xi >= head) return s;
    if (xi <= tail) return {rho_star, u_star_, p_star_};
    const Real u = 2.0 / (g + 1) * (-a + (g - 1) / 2.0 * s.u + xi);
    const Real afan = 2.0 / (g + 1) * (a - (g - 1) / 2.0 * (s.u - xi));
    const Real rho = s.rho * std::pow(afan / a, 2.0 / (g - 1));
    const Real p = s.p * std::pow(afan / a, 2.0 * g / (g - 1));
    return {rho, u, p};
}

} // namespace bookleaf::analytic
