#pragma once
/// \file stepgraph.hpp
/// The Lagrangian step as a task graph: every kernel of lagstep's
/// predictor/corrector sequence is split into (kernel, block) tasks over
/// contiguous cell/node blocks, with happens-before edges derived from
/// each kernel's read/write footprint against the mesh topology. Instead
/// of a full pool barrier between kernels, a node block's acceleration
/// assembly can run as soon as the corner forces of the cell blocks it
/// gathers from are ready — while other cell blocks are still in
/// getforce.
///
/// Bitwise contract: the graph changes only *when* work runs, never what
/// it computes. Every task writes slots no concurrent task touches, every
/// cross-entity reduction is a gather replaying the serial deposition
/// order (ctx.corner_gather()), and the two boundary-condition fixups run
/// as single serial tasks exactly where the fork-join sequence applies
/// them — so graph results are bitwise identical to the fork-join path at
/// any thread count and block size.
///
/// The graph is built once per (mesh, exec) configuration — the driver
/// rebuilds it when the execution policy changes — and re-run every step
/// with the step's dt.

#include <atomic>

#include "hydro/kernels.hpp"
#include "par/task_graph.hpp"

namespace bookleaf::hydro {

class StepGraph {
public:
    /// Build the step graph for `ctx`/`s`. The context is copied; its
    /// `exec` keeps the pool for scheduling, while task bodies run with a
    /// serialized copy (kernel calls inside tasks must not re-dispatch to
    /// the pool). The mesh, state and CSRs must outlive the graph.
    StepGraph(const Context& ctx, State& s);

    /// Execute one predictor-corrector Lagrangian step (bitwise identical
    /// to hydro::lagstep's fork-join sequence).
    void run(Real dt);

    [[nodiscard]] const State* state() const { return s_; }
    [[nodiscard]] std::size_t n_tasks() const { return graph_.size(); }

private:
    void build();

    par::Exec run_exec_; ///< scheduling policy (owns the pool pointer)
    Context ctx_;        ///< body context: exec serialized (pool == nullptr)
    State* s_ = nullptr;

    Real dt_ = 0.0;
    Real half_dt_ = 0.0;
    std::atomic<Index> bad_pred_{no_index}; ///< tangled cell, predictor
    std::atomic<Index> bad_corr_{no_index}; ///< tangled cell, corrector

    par::TaskGraph graph_;
};

} // namespace bookleaf::hydro
