/// \file getforce.cpp
/// Total corner forces for the compatible discretisation:
///   * pressure force: P times the gradient of cell volume w.r.t. the
///     corner position (exact shoelace gradient -> exact energy
///     conservation with the matching getein work term);
///   * sub-zonal pressure forces (Caramana & Shashkov [25]): each median
///     subzone evaluates its own density; the pressure *difference*
///     delta-P acts through the exact subzone-volume gradients, resisting
///     hourglass-pattern distortions that leave the cell volume unchanged;
///   * Hancock hourglass filter [24]: viscous damping of the (+,-,+,-)
///     corner velocity pattern;
///   * the viscous corner forces computed by getq.

#include <cmath>

#include "geom/geometry.hpp"
#include "hydro/kernels.hpp"

namespace bookleaf::hydro {

namespace {

/// The per-cell force computation. Writes only cell c's corner forces, so
/// any disjoint cover of the cell range (full sweep or the distributed
/// driver's boundary/interior split) is bitwise identical in any order.
inline void force_cell(const mesh::Mesh& mesh,
                       const eos::MaterialTable& materials, const Options& opts,
                       State& s, Index c) {
    const bool subzonal = opts.hourglass.subzonal_pressures;
    const Real kappa = opts.hourglass.filter_kappa;

    const auto ci = static_cast<std::size_t>(c);
    // Pressure force = P * dA/dx_i, both read straight from the
    // gathered-geometry cache getgeom filled (no per-cell re-gather).
    const std::size_t base = State::cidx(c, 0);
    const Real p = s.pre[ci];

    std::array<Real, 4> fx{}, fy{};
    for (std::size_t k = 0; k < 4; ++k) {
        fx[k] = p * s.cngx[base + k];
        fy[k] = p * s.cngy[base + k];
    }

    if (subzonal) {
        const auto szgrads = geom::corner_volume_gradients(s.cached_quad(c));
        const Index region = mesh.cell_region[ci];
        for (std::size_t i = 0; i < 4; ++i) {
            const auto ii = State::cidx(c, static_cast<int>(i));
            const Real vsz = std::max(s.cnvol[ii], tiny);
            const Real rho_sz = s.cnmass[ii] / vsz;
            const Real dp =
                materials.pressure(region, rho_sz, s.ein[ci]) - s.pre[ci];
            if (dp == 0.0) continue;
            for (std::size_t j = 0; j < 4; ++j) {
                fx[j] += dp * szgrads[i][j].x;
                fy[j] += dp * szgrads[i][j].y;
            }
        }
    }

    if (kappa > 0.0) {
        // Hourglass mode Gamma = (+1, -1, +1, -1).
        static constexpr std::array<Real, 4> gamma = {1.0, -1.0, 1.0, -1.0};
        Real hg_u = 0.0, hg_v = 0.0;
        for (std::size_t k = 0; k < 4; ++k) {
            const auto n =
                static_cast<std::size_t>(mesh.cn(c, static_cast<int>(k)));
            hg_u += gamma[k] * s.u[n];
            hg_v += gamma[k] * s.v[n];
        }
        hg_u *= Real(0.25);
        hg_v *= Real(0.25);
        const Real cs = std::sqrt(std::max(s.csqrd[ci], Real(0.0)));
        const Real coef =
            kappa * s.rho[ci] * cs * std::sqrt(std::abs(s.volume[ci]));
        for (std::size_t k = 0; k < 4; ++k) {
            fx[k] -= coef * gamma[k] * hg_u;
            fy[k] -= coef * gamma[k] * hg_v;
        }
    }

    for (int k = 0; k < corners_per_cell; ++k) {
        const auto ki = State::cidx(c, k);
        s.fx[ki] = fx[static_cast<std::size_t>(k)] + s.qfx[ki];
        s.fy[ki] = fy[static_cast<std::size_t>(k)] + s.qfy[ki];
    }
}

} // namespace

void getforce(const Context& ctx, State& s) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getforce,
                                  ctx.mesh->n_cells());
    const auto& mesh = *ctx.mesh;
    const auto& materials = *ctx.materials;
    par::for_each(ctx.exec, mesh.n_cells(), [&](Index c) {
        force_cell(mesh, materials, ctx.opts, s, c);
    });
}

void getforce(const Context& ctx, State& s, std::span<const Index> cells) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getforce,
                                  static_cast<long long>(cells.size()));
    const auto& mesh = *ctx.mesh;
    const auto& materials = *ctx.materials;
    par::for_each(ctx.exec, static_cast<Index>(cells.size()), [&](Index i) {
        force_cell(mesh, materials, ctx.opts, s,
                   cells[static_cast<std::size_t>(i)]);
    });
}

void getforce(const Context& ctx, State& s, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getforce,
                                  end - begin);
    const auto& mesh = *ctx.mesh;
    const auto& materials = *ctx.materials;
    for (Index c = begin; c < end; ++c)
        force_cell(mesh, materials, ctx.opts, s, c);
}

} // namespace bookleaf::hydro
