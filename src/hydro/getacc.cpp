/// \file getacc.cpp
/// Acceleration kernel. Assembles nodal masses and forces from corner
/// data, applies kinematic boundary conditions, advances velocities by dt,
/// and forms the time-centred velocities used by the corrector's geometry
/// and energy updates.
///
/// The corner->node assembly is the data dependency the paper highlights
/// (§IV-B): written as a scatter (cells deposit into shared nodes) it
/// races under threading, so the reference OpenMP port leaves the loop
/// unparallelised. The default here transposes the assembly into a gather
/// over nodes using the mesh's node->(cell, corner) CSR: each node sums
/// its incident corner contributions independently — embarrassingly
/// parallel, no colouring barriers, and bitwise identical to the serial
/// scatter at any thread count because CSR rows list corners in exactly
/// the scatter's deposition order. The gather also fuses the zeroing of
/// node_mass/nfx/nfy into the assembly loop (the scatter paths must
/// pre-zero in a separate parallel pass).
///
/// The paper-faithful behaviours remain selectable through
/// `Exec::assembly` as ablation baselines: `serial_scatter` (the reference
/// data dependency) and `colored_scatter` (greedy conflict colouring, the
/// "fix" §IV-B alludes to; requires `ctx.scatter_coloring`).

#include "hydro/kernels.hpp"
#include "util/error.hpp"

namespace bookleaf::hydro {

namespace {

/// Scatter one cell's corner masses and forces into the nodal arrays.
inline void scatter_cell(const mesh::Mesh& mesh, State& s, Index c,
                         std::span<Real> nm) {
    for (int k = 0; k < corners_per_cell; ++k) {
        const auto n = static_cast<std::size_t>(mesh.cn(c, k));
        const auto ki = State::cidx(c, k);
        nm[n] += s.cnmass[ki];
        s.nfx[n] += s.fx[ki];
        s.nfy[n] += s.fy[ki];
    }
}

/// Gather one node's corner masses and forces (fused zero+accumulate).
inline void gather_node(const util::Csr& nc, State& s, Index n) {
    Real m = 0.0, fx = 0.0, fy = 0.0;
    for (const Index ck : nc.row(n)) {
        const auto ki = static_cast<std::size_t>(ck);
        m += s.cnmass[ki];
        fx += s.fx[ki];
        fy += s.fy[ki];
    }
    const auto ni = static_cast<std::size_t>(n);
    s.node_mass[ni] = m;
    s.nfx[ni] = fx;
    s.nfy[ni] = fy;
}

/// Gather-based assembly: one pass over nodes, zero+accumulate fused.
/// Rows come from ctx.corner_gather(): the mesh CSR in serial runs, the
/// subdomain's globally-ordered permutation in distributed runs (same
/// sums, serial deposition order — bitwise identical to the serial run).
void assemble_gather(const Context& ctx, State& s, Index n_nodes) {
    const auto& nc = ctx.corner_gather();
    par::for_each(ctx.exec, n_nodes,
                  [&](Index n) { gather_node(nc, s, n); });
}

/// Legacy scatter assembly (serial or coloured), for the §IV-B ablations.
void assemble_scatter(const Context& ctx, State& s, Index n_nodes,
                      Index n_cells) {
    // Zero in parallel (the legacy paths previously paid three serial
    // std::fill passes here even with a pool present).
    par::for_each(ctx.exec, n_nodes, [&](Index n) {
        const auto ni = static_cast<std::size_t>(n);
        s.node_mass[ni] = 0.0;
        s.nfx[ni] = 0.0;
        s.nfy[ni] = 0.0;
    });

    const bool use_colors = ctx.exec.assembly == par::Assembly::colored_scatter &&
                            ctx.scatter_coloring != nullptr &&
                            ctx.exec.threaded();
    if (use_colors) {
        // Race-free parallel scatter: cells within a colour class share no
        // node, classes run back-to-back.
        for (const auto& cls : ctx.scatter_coloring->classes) {
            par::for_each(ctx.exec, static_cast<Index>(cls.size()), [&](Index i) {
                scatter_cell(*ctx.mesh, s, cls[static_cast<std::size_t>(i)],
                             s.node_mass);
            });
        }
    } else {
        // The reference behaviour: serial scatter (data dependency).
        for (Index c = 0; c < n_cells; ++c)
            scatter_cell(*ctx.mesh, s, c, s.node_mass);
    }
}

} // namespace

void getacc_assemble(const Context& ctx, State& s,
                     std::span<const Index> nodes) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getacc,
                                  static_cast<long long>(nodes.size()));
    const auto& nc = ctx.corner_gather();
    par::for_each(ctx.exec, static_cast<Index>(nodes.size()), [&](Index i) {
        gather_node(nc, s, nodes[static_cast<std::size_t>(i)]);
    });
}

void getacc_assemble(const Context& ctx, State& s, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getacc,
                                  end - begin);
    const auto& nc = ctx.corner_gather();
    for (Index n = begin; n < end; ++n) gather_node(nc, s, n);
}

void getacc_advance_velocity(const Context& ctx, State& s, Real dt,
                             Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getacc,
                                  end - begin);
    for (Index n = begin; n < end; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        const Real m = s.node_mass[ni];
        Real un, vn;
        if (m > tiny) {
            un = s.u0[ni] + dt * s.nfx[ni] / m;
            vn = s.v0[ni] + dt * s.nfy[ni] / m;
        } else {
            un = s.u0[ni];
            vn = s.v0[ni];
        }
        s.u[ni] = un;
        s.v[ni] = vn;
    }
}

void getacc_centered(const Context& ctx, State& s, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getacc,
                                  end - begin);
    for (Index n = begin; n < end; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        s.ubar[ni] = Real(0.5) * (s.u0[ni] + s.u[ni]);
        s.vbar[ni] = Real(0.5) * (s.v0[ni] + s.v[ni]);
    }
}

namespace {

/// Velocity advance + BCs + time-centred velocities (untimed core shared
/// by getacc and getacc_advance so the full kernel charges one profiler
/// call, not two).
void advance_nodes(const Context& ctx, State& s, Real dt) {
    const auto& mesh = *ctx.mesh;
    const Index n_nodes = mesh.n_nodes();

    // Advance velocities; form time-centred velocities.
    par::for_each(ctx.exec, n_nodes, [&](Index n) {
        const auto ni = static_cast<std::size_t>(n);
        const Real m = s.node_mass[ni];
        Real un, vn;
        if (m > tiny) {
            un = s.u0[ni] + dt * s.nfx[ni] / m;
            vn = s.v0[ni] + dt * s.nfy[ni] / m;
        } else {
            un = s.u0[ni];
            vn = s.v0[ni];
        }
        s.u[ni] = un;
        s.v[ni] = vn;
    });

    apply_velocity_bc(mesh, ctx.opts, s.u, s.v);

    par::for_each(ctx.exec, n_nodes, [&](Index n) {
        const auto ni = static_cast<std::size_t>(n);
        s.ubar[ni] = Real(0.5) * (s.u0[ni] + s.u[ni]);
        s.vbar[ni] = Real(0.5) * (s.v0[ni] + s.v[ni]);
    });
    apply_velocity_bc(mesh, ctx.opts, s.ubar, s.vbar);
}

} // namespace

void getacc_advance(const Context& ctx, State& s, Real dt) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getacc,
                                  ctx.mesh->n_nodes());
    advance_nodes(ctx, s, dt);
}

void getacc(const Context& ctx, State& s, Real dt) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getacc,
                                  ctx.mesh->n_nodes());
    const auto& mesh = *ctx.mesh;
    if (ctx.exec.assembly == par::Assembly::gather)
        assemble_gather(ctx, s, mesh.n_nodes());
    else
        assemble_scatter(ctx, s, mesh.n_nodes(), mesh.n_cells());
    advance_nodes(ctx, s, dt);
}

} // namespace bookleaf::hydro
