/// \file getacc.cpp
/// Acceleration kernel. Assembles nodal masses and forces from corner
/// data (a scatter: cells write to shared nodes), applies kinematic
/// boundary conditions, advances velocities by dt, and forms the
/// time-centred velocities used by the corrector's geometry and energy
/// updates.
///
/// The scatter is the data dependency the paper highlights (§IV-B): the
/// reference OpenMP port leaves this loop unparallelised. We mirror both
/// behaviours: without a colouring the scatter runs serially even when an
/// execution pool is present; with `exec.colored_scatter` and a colouring
/// in the context, colour classes run in parallel (race-free because no
/// two cells of a class share a node).

#include "hydro/kernels.hpp"
#include "util/error.hpp"

namespace bookleaf::hydro {

namespace {

/// Scatter one cell's corner masses and forces into the nodal arrays.
inline void scatter_cell(const mesh::Mesh& mesh, State& s, Index c,
                         std::vector<Real>& nm) {
    for (int k = 0; k < corners_per_cell; ++k) {
        const auto n = static_cast<std::size_t>(mesh.cn(c, k));
        const auto ki = State::cidx(c, k);
        nm[n] += s.cnmass[ki];
        s.nfx[n] += s.fx[ki];
        s.nfy[n] += s.fy[ki];
    }
}

} // namespace

void getacc(const Context& ctx, State& s, Real dt) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getacc);
    const auto& mesh = *ctx.mesh;
    const Index n_nodes = mesh.n_nodes();
    const Index n_cells = mesh.n_cells();

    std::fill(s.nfx.begin(), s.nfx.end(), 0.0);
    std::fill(s.nfy.begin(), s.nfy.end(), 0.0);
    std::fill(s.node_mass.begin(), s.node_mass.end(), 0.0);

    const bool use_colors = ctx.exec.colored_scatter &&
                            ctx.scatter_coloring != nullptr &&
                            ctx.exec.threaded();
    if (use_colors) {
        // Race-free parallel scatter: cells within a colour class share no
        // node, classes run back-to-back.
        for (const auto& cls : ctx.scatter_coloring->classes) {
            par::for_each(ctx.exec, static_cast<Index>(cls.size()), [&](Index i) {
                scatter_cell(mesh, s, cls[static_cast<std::size_t>(i)],
                             s.node_mass);
            });
        }
    } else {
        // The reference behaviour: serial scatter (data dependency).
        for (Index c = 0; c < n_cells; ++c)
            scatter_cell(mesh, s, c, s.node_mass);
    }

    // Advance velocities; form time-centred velocities.
    par::for_each(ctx.exec, n_nodes, [&](Index n) {
        const auto ni = static_cast<std::size_t>(n);
        const Real m = s.node_mass[ni];
        Real un, vn;
        if (m > tiny) {
            un = s.u0[ni] + dt * s.nfx[ni] / m;
            vn = s.v0[ni] + dt * s.nfy[ni] / m;
        } else {
            un = s.u0[ni];
            vn = s.v0[ni];
        }
        s.u[ni] = un;
        s.v[ni] = vn;
    });

    apply_velocity_bc(mesh, ctx.opts, s.u, s.v);

    par::for_each(ctx.exec, n_nodes, [&](Index n) {
        const auto ni = static_cast<std::size_t>(n);
        s.ubar[ni] = Real(0.5) * (s.u0[ni] + s.u[ni]);
        s.vbar[ni] = Real(0.5) * (s.v0[ni] + s.v[ni]);
    });
    apply_velocity_bc(mesh, ctx.opts, s.ubar, s.vbar);
}

} // namespace bookleaf::hydro
