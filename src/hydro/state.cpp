#include "hydro/state.hpp"

#include <algorithm>
#include <array>

#include "geom/geometry.hpp"
#include "util/error.hpp"

namespace bookleaf::hydro {

State allocate(const mesh::Mesh& mesh) { return allocate(mesh, par::Exec{}); }

State allocate(const mesh::Mesh& mesh, const par::Exec& exec) {
    State s;
    const auto nn = static_cast<std::size_t>(mesh.n_nodes());
    const auto nc = static_cast<std::size_t>(mesh.n_cells());
    const auto nk = nc * corners_per_cell;

    // Size every field without touching its pages (Field default-inits),
    // then zero-fill in static per-worker blocks: with a pool, the first
    // write to each page happens on the worker whose block it belongs to,
    // so the OS places it on that worker's NUMA node (first-touch). The
    // bytes are identical to a serial zero-fill.
    const std::array<Field*, 28> zeroed = {
        &s.u,     &s.v,     &s.node_mass, &s.nfx,   &s.nfy,
        &s.u0,    &s.v0,    &s.ubar,      &s.vbar,  // nodes
        &s.rho,   &s.ein,   &s.pre,       &s.csqrd, &s.q,
        &s.volume, &s.cell_mass, &s.char_len, &s.ein0, // cells
        &s.fx,    &s.fy,    &s.qfx,       &s.qfy,   &s.cnmass,
        &s.cnvol, &s.cnx,   &s.cny,       &s.cngx,  &s.cngy}; // corners
    for (std::size_t i = 0; i < zeroed.size(); ++i)
        zeroed[i]->resize(i < 9 ? nn : (i < 18 ? nc : nk));

    auto fill_block = [&](int tid, int parts) {
        for (Field* f : zeroed) {
            const auto [begin, end] =
                par::detail::block(static_cast<Index>(f->size()), parts, tid);
            std::fill(f->begin() + begin, f->begin() + end, Real(0.0));
        }
    };
    if (exec.threaded())
        exec.pool->run([&](int tid) { fill_block(tid, exec.width()); });
    else
        fill_block(0, 1);

    s.x.assign(mesh.x.begin(), mesh.x.end());
    s.y.assign(mesh.y.begin(), mesh.y.end());
    s.x0 = s.x;
    s.y0 = s.y;
    return s;
}

void initialise(const mesh::Mesh& mesh, const eos::MaterialTable& materials,
                State& s) {
    const Index n_cells = mesh.n_cells();
    util::require(s.n_cells() == n_cells, "initialise: state/mesh size mismatch");

    for (Index c = 0; c < n_cells; ++c) {
        const auto q = geom::gather(mesh, s.x, s.y, c);
        s.cache_geometry(c, q);
        const Real vol = geom::quad_area(q);
        util::require(vol > 0.0, "initialise: non-positive cell volume");
        s.volume[static_cast<std::size_t>(c)] = vol;
        s.char_len[static_cast<std::size_t>(c)] = geom::char_length(q);
        s.cell_mass[static_cast<std::size_t>(c)] =
            s.rho[static_cast<std::size_t>(c)] * vol;

        const auto cv = geom::corner_volumes(q);
        for (int k = 0; k < corners_per_cell; ++k) {
            s.cnvol[State::cidx(c, k)] = cv[static_cast<std::size_t>(k)];
            s.cnmass[State::cidx(c, k)] =
                s.rho[static_cast<std::size_t>(c)] * cv[static_cast<std::size_t>(k)];
        }

        const Index r = mesh.cell_region[static_cast<std::size_t>(c)];
        s.pre[static_cast<std::size_t>(c)] =
            materials.pressure(r, s.rho[static_cast<std::size_t>(c)],
                               s.ein[static_cast<std::size_t>(c)]);
        s.csqrd[static_cast<std::size_t>(c)] =
            materials.sound_speed2(r, s.rho[static_cast<std::size_t>(c)],
                                   s.ein[static_cast<std::size_t>(c)]);
    }

    // Nodal masses: gather the corner masses of incident cells.
    for (Index n = 0; n < mesh.n_nodes(); ++n) {
        Real m = 0.0;
        for (const Index c : mesh.node_cells.row(n))
            for (int k = 0; k < corners_per_cell; ++k)
                if (mesh.cn(c, k) == n) m += s.cnmass[State::cidx(c, k)];
        s.node_mass[static_cast<std::size_t>(n)] = m;
    }

    s.x0 = s.x;
    s.y0 = s.y;
    s.u0 = s.u;
    s.v0 = s.v;
    s.ein0 = s.ein;
}

Totals totals(const mesh::Mesh& mesh, const State& s) {
    Totals t;
    for (Index c = 0; c < s.n_cells(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        t.mass += s.cell_mass[ci];
        t.internal_energy += s.cell_mass[ci] * s.ein[ci];
    }
    for (Index n = 0; n < s.n_nodes(); ++n) {
        const auto ni = static_cast<std::size_t>(n);
        t.momentum_x += s.node_mass[ni] * s.u[ni];
        t.momentum_y += s.node_mass[ni] * s.v[ni];
        t.kinetic_energy += Real(0.5) * s.node_mass[ni] *
                            (s.u[ni] * s.u[ni] + s.v[ni] * s.v[ni]);
    }
    (void)mesh;
    return t;
}

} // namespace bookleaf::hydro
