/// \file stepgraph.cpp
/// Builds the Lagrangian-step task graph. Tasks are (kernel, block)
/// pairs; edges cover every read-after-write, write-after-read and
/// write-after-write hazard between blocks, derived from the kernels'
/// footprints:
///   * cell kernels read/write their own cells' slots; getq additionally
///     reads the velocities of face-neighbour cells' nodes (the limiter's
///     continuation stencil) — the "wide" coupling;
///   * getein / getforce / the geometry rebuild read their own cells'
///     nodes — the "own" coupling;
///   * the acceleration assembly gathers a node's incident corners via
///     ctx.corner_gather() — the "touch" coupling (and its serial
///     deposition order is what keeps the reduction bitwise).
/// Redundant edges already implied by transitivity are mostly avoided,
/// but correctness never relies on a chain longer than the comments in
/// build() argue explicitly.

#include "hydro/stepgraph.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bookleaf::hydro {

namespace {

struct BlockRange {
    Index begin = 0, end = 0;
};

std::vector<BlockRange> make_blocks(Index n, Index block_size) {
    std::vector<BlockRange> blocks;
    for (Index b = 0; b < n; b += block_size)
        blocks.push_back({b, std::min<Index>(n, b + block_size)});
    if (blocks.empty()) blocks.push_back({0, 0});
    return blocks;
}

void sort_unique(std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

} // namespace

StepGraph::StepGraph(const Context& ctx, State& s)
    : run_exec_(ctx.exec), ctx_(ctx), s_(&s) {
    // Task bodies are serial block loops: null the pool so any par::
    // entry point they reach cannot re-dispatch onto the pool the graph
    // itself is scheduled on.
    ctx_.exec.pool = nullptr;
    ctx_.stepgraph = nullptr;
    build();
}

void StepGraph::build() {
    const auto& mesh = *ctx_.mesh;
    State& s = *s_;
    const Index n_cells = mesh.n_cells();
    const Index n_nodes = mesh.n_nodes();

    const Index cell_bs = par::detail::resolve_task_block(run_exec_, n_cells);
    const Index node_bs = par::detail::resolve_task_block(run_exec_, n_nodes);
    const auto cells = make_blocks(n_cells, cell_bs);
    const auto nodes = make_blocks(n_nodes, node_bs);
    const int n_cb = static_cast<int>(cells.size());
    const int n_nb = static_cast<int>(nodes.size());
    const auto nb_of = [&](Index n) { return static_cast<int>(n / node_bs); };
    const auto cb_of = [&](Index c) { return static_cast<int>(c / cell_bs); };

    // --- couplings -------------------------------------------------------
    // own_nb[cb]:  node blocks holding any node of a cell in cb.
    // wide_nb[cb]: own_nb plus the nodes of face-neighbour cells (getq's
    //              continuation stencil reads u,v there).
    // touch_cb[nb]: cell blocks whose corners a node in nb gathers
    //              (via ctx.corner_gather(): flat corner id / 4 = cell).
    // wide_reader_cb[nb]: transpose of wide_nb — the cell blocks whose
    //              getq reads u,v of a node in nb.
    std::vector<std::vector<int>> own_nb(cells.size());
    std::vector<std::vector<int>> wide_nb(cells.size());
    std::vector<std::vector<int>> touch_cb(nodes.size());
    std::vector<std::vector<int>> wide_reader_cb(nodes.size());

    for (int cb = 0; cb < n_cb; ++cb) {
        auto& own = own_nb[static_cast<std::size_t>(cb)];
        auto& wide = wide_nb[static_cast<std::size_t>(cb)];
        for (Index c = cells[static_cast<std::size_t>(cb)].begin;
             c < cells[static_cast<std::size_t>(cb)].end; ++c) {
            for (int k = 0; k < corners_per_cell; ++k) {
                own.push_back(nb_of(mesh.cn(c, k)));
                const Index nbr = mesh.neighbor(c, k);
                if (nbr == no_index) continue;
                for (int m = 0; m < corners_per_cell; ++m)
                    wide.push_back(nb_of(mesh.cn(nbr, m)));
            }
        }
        wide.insert(wide.end(), own.begin(), own.end());
        sort_unique(own);
        sort_unique(wide);
        for (const int nb : wide)
            wide_reader_cb[static_cast<std::size_t>(nb)].push_back(cb);
    }
    const auto& gather = ctx_.corner_gather();
    for (int nb = 0; nb < n_nb; ++nb) {
        auto& touch = touch_cb[static_cast<std::size_t>(nb)];
        for (Index n = nodes[static_cast<std::size_t>(nb)].begin;
             n < nodes[static_cast<std::size_t>(nb)].end; ++n)
            for (const Index ck : gather.row(n))
                touch.push_back(cb_of(ck / corners_per_cell));
        sort_unique(touch);
    }

    // --- tasks -----------------------------------------------------------
    using par::TaskId;
    const Context& ctx = ctx_;
    auto link = [&](TaskId after, std::vector<TaskId> befores) {
        sort_unique(befores);
        for (const TaskId b : befores) graph_.depend(after, b);
    };

    // Step-start snapshot (lagstep's Kernel::other scope), per block.
    std::vector<TaskId> snapn(nodes.size()), snapc(cells.size());
    for (int nb = 0; nb < n_nb; ++nb) {
        const Index b = nodes[static_cast<std::size_t>(nb)].begin, e = nodes[static_cast<std::size_t>(nb)].end;
        snapn[static_cast<std::size_t>(nb)] = graph_.add([&ctx, &s, b, e] {
            const util::ScopedTimer t(*ctx.profiler, util::Kernel::other);
            for (Index n = b; n < e; ++n) {
                const auto ni = static_cast<std::size_t>(n);
                s.x0[ni] = s.x[ni];
                s.y0[ni] = s.y[ni];
                s.u0[ni] = s.u[ni];
                s.v0[ni] = s.v[ni];
            }
        }, false, util::Kernel::other);
    }
    for (int cb = 0; cb < n_cb; ++cb) {
        const Index b = cells[static_cast<std::size_t>(cb)].begin, e = cells[static_cast<std::size_t>(cb)].end;
        snapc[static_cast<std::size_t>(cb)] = graph_.add([&ctx, &s, b, e] {
            const util::ScopedTimer t(*ctx.profiler, util::Kernel::other);
            for (Index c = b; c < e; ++c)
                s.ein0[static_cast<std::size_t>(c)] =
                    s.ein[static_cast<std::size_t>(c)];
        }, false, util::Kernel::other);
    }

    // --- predictor -------------------------------------------------------
    std::vector<TaskId> p_q(cells.size()), p_f(cells.size()),
        p_gc(cells.size()), p_rho(cells.size()), p_ein(cells.size()),
        p_pc(cells.size());
    std::vector<TaskId> p_gm(nodes.size());

    for (int cb = 0; cb < n_cb; ++cb) {
        const auto ci = static_cast<std::size_t>(cb);
        const Index b = cells[ci].begin, e = cells[ci].end;
        // getq reads pre-step u,v/rho/csqrd/cache — no intra-step inputs.
        p_q[ci] = graph_.add([&ctx, &s, b, e] { getq(ctx, s, b, e); }, false,
                             util::Kernel::getq);
        p_f[ci] = graph_.add([&ctx, &s, b, e] { getforce(ctx, s, b, e); },
                             false, util::Kernel::getforce);
        link(p_f[ci], {p_q[ci]}); // RAW qfx/qfy
    }
    for (int nb = 0; nb < n_nb; ++nb) {
        const auto ni = static_cast<std::size_t>(nb);
        const Index b = nodes[ni].begin, e = nodes[ni].end;
        p_gm[ni] = graph_.add([this, &ctx, &s, b, e] {
            getgeom_move(ctx, s, s.u0, s.v0, half_dt_, b, e);
        }, false, util::Kernel::getgeom);
        link(p_gm[ni], {snapn[ni]}); // RAW x0/u0 (and WAR on x,y it reads)
    }
    for (int cb = 0; cb < n_cb; ++cb) {
        const auto ci = static_cast<std::size_t>(cb);
        const Index b = cells[ci].begin, e = cells[ci].end;
        p_gc[ci] = graph_.add([this, &ctx, &s, b, e] {
            getgeom_cells(ctx, s, b, e, bad_pred_);
        }, false, util::Kernel::getgeom);
        // RAW x,y from the own node blocks' moves; WAR: getq/getforce read
        // the old geometry cache / cnvol / volume this task overwrites.
        std::vector<TaskId> deps = {p_q[ci], p_f[ci]};
        for (const int nb : own_nb[ci])
            deps.push_back(p_gm[static_cast<std::size_t>(nb)]);
        link(p_gc[ci], std::move(deps));

        p_rho[ci] = graph_.add([&ctx, &s, b, e] { getrho(ctx, s, b, e); },
                               false, util::Kernel::getrho);
        link(p_rho[ci], {p_gc[ci]}); // RAW volume

        p_ein[ci] = graph_.add([this, &ctx, &s, b, e] {
            getein(ctx, s, s.u0, s.v0, half_dt_, b, e);
        }, false, util::Kernel::getein);
        // RAW fx/fy (forces), ein0 (snapshot), u0/v0 (own node snapshots);
        // the snapshot edges also cover the WAR on ein it overwrites.
        std::vector<TaskId> ein_deps = {p_f[ci], snapc[ci]};
        for (const int nb : own_nb[ci])
            ein_deps.push_back(snapn[static_cast<std::size_t>(nb)]);
        link(p_ein[ci], std::move(ein_deps));

        p_pc[ci] = graph_.add([&ctx, &s, b, e] { getpc(ctx, s, b, e); }, false,
                              util::Kernel::getpc);
        link(p_pc[ci], {p_rho[ci], p_ein[ci]}); // RAW rho, ein
    }
    if (!ctx_.opts.guard.enabled) {
        // Without health guards a tangled predictor mesh aborts the step:
        // the check task throws, cancelling the rest of the graph — the
        // graph-mode equivalent of getgeom's immediate throw.
        const TaskId chk = graph_.add([this] {
            const Index bad = bad_pred_.load();
            if (bad != no_index)
                throw util::Error(
                    "getgeom: non-positive volume in cell " +
                    std::to_string(bad) +
                    " (mesh tangled; consider enabling ALE)");
        });
        link(chk, p_gc);
    }

    // --- corrector -------------------------------------------------------
    std::vector<TaskId> c_q(cells.size()), c_f(cells.size()),
        c_gc(cells.size()), c_rho(cells.size()), c_ein(cells.size()),
        c_pc(cells.size());
    std::vector<TaskId> c_asm(nodes.size()), c_adv(nodes.size()),
        c_ubar(nodes.size()), c_gm(nodes.size());

    for (int cb = 0; cb < n_cb; ++cb) {
        const auto ci = static_cast<std::size_t>(cb);
        const Index b = cells[ci].begin, e = cells[ci].end;
        c_q[ci] = graph_.add([&ctx, &s, b, e] { getq(ctx, s, b, e); }, false,
                             util::Kernel::getq);
        // RAW csqrd/rho/cache via the predictor EoS (p_pc is downstream of
        // p_rho and p_gc for the same block, so one edge covers all
        // three); u,v are untouched since step entry.
        link(c_q[ci], {p_pc[ci]});
        c_f[ci] = graph_.add([&ctx, &s, b, e] { getforce(ctx, s, b, e); },
                             false, util::Kernel::getforce);
        // RAW qfx (c_q), and via c_q <- p_pc: pre/ein/rho/csqrd/geometry.
        // WAR fx/fy read by p_ein: p_ein -> p_pc -> c_q covers it.
        link(c_f[ci], {c_q[ci]});
    }
    for (int nb = 0; nb < n_nb; ++nb) {
        const auto ni = static_cast<std::size_t>(nb);
        const Index b = nodes[ni].begin, e = nodes[ni].end;
        c_asm[ni] =
            graph_.add([&ctx, &s, b, e] { getacc_assemble(ctx, s, b, e); },
                       false, util::Kernel::getacc);
        // RAW cnmass/fx/fy of every gathered corner's cell block.
        std::vector<TaskId> deps;
        for (const int cb : touch_cb[ni])
            deps.push_back(c_f[static_cast<std::size_t>(cb)]);
        link(c_asm[ni], std::move(deps));

        c_adv[ni] = graph_.add([this, &ctx, &s, b, e] {
            getacc_advance_velocity(ctx, s, dt_, b, e);
        }, false, util::Kernel::getacc);
        // RAW node_mass/nfx/nfy (c_asm) and u0/v0 (snapshot). WAR: this
        // writes u,v that the corrector getq of every wide-reader cell
        // block still reads (getforce's own-node reads are covered by
        // c_f -> c_asm over the touch coupling).
        std::vector<TaskId> adv_deps = {c_asm[ni], snapn[ni]};
        for (const int cb : wide_reader_cb[ni])
            adv_deps.push_back(c_q[static_cast<std::size_t>(cb)]);
        link(c_adv[ni], std::move(adv_deps));
    }
    // Boundary conditions touch arbitrary (boundary-masked) nodes: one
    // serial task each, exactly where the fork-join sequence applies them.
    // These are the only intentional graph-wide rendezvous points.
    const TaskId c_bc = graph_.add([&ctx, &s] {
        const util::ScopedTimer t(*ctx.profiler, util::Kernel::getacc);
        apply_velocity_bc(*ctx.mesh, ctx.opts, s.u, s.v);
    }, false, util::Kernel::getacc);
    link(c_bc, c_adv);
    for (int nb = 0; nb < n_nb; ++nb) {
        const auto ni = static_cast<std::size_t>(nb);
        const Index b = nodes[ni].begin, e = nodes[ni].end;
        c_ubar[ni] =
            graph_.add([&ctx, &s, b, e] { getacc_centered(ctx, s, b, e); },
                       false, util::Kernel::getacc);
        link(c_ubar[ni], {c_bc}); // RAW u,v post-BC (u0 via c_bc <- c_adv)
    }
    const TaskId c_bcu = graph_.add([&ctx, &s] {
        const util::ScopedTimer t(*ctx.profiler, util::Kernel::getacc);
        apply_velocity_bc(*ctx.mesh, ctx.opts, s.ubar, s.vbar);
    }, false, util::Kernel::getacc);
    link(c_bcu, c_ubar);

    for (int nb = 0; nb < n_nb; ++nb) {
        const auto ni = static_cast<std::size_t>(nb);
        const Index b = nodes[ni].begin, e = nodes[ni].end;
        c_gm[ni] = graph_.add([this, &ctx, &s, b, e] {
            getgeom_move(ctx, s, s.ubar, s.vbar, dt_, b, e);
        }, false, util::Kernel::getgeom);
        // RAW ubar/vbar post-BC; x0 and the WAR on x,y (read by the
        // predictor geometry of every touching cell block) are upstream of
        // c_bcu through snapn -> ... -> c_adv -> c_bc.
        link(c_gm[ni], {c_bcu});
    }
    for (int cb = 0; cb < n_cb; ++cb) {
        const auto ci = static_cast<std::size_t>(cb);
        const Index b = cells[ci].begin, e = cells[ci].end;
        c_gc[ci] = graph_.add([this, &ctx, &s, b, e] {
            getgeom_cells(ctx, s, b, e, bad_corr_);
        }, false, util::Kernel::getgeom);
        // RAW x,y; the WAR on the cache read by c_q/c_f is upstream
        // (c_q -> ... -> c_bc -> c_bcu -> c_gm).
        std::vector<TaskId> deps;
        for (const int nb : own_nb[ci])
            deps.push_back(c_gm[static_cast<std::size_t>(nb)]);
        link(c_gc[ci], std::move(deps));

        c_rho[ci] = graph_.add([&ctx, &s, b, e] { getrho(ctx, s, b, e); },
                               false, util::Kernel::getrho);
        link(c_rho[ci], {c_gc[ci]});

        c_ein[ci] = graph_.add([this, &ctx, &s, b, e] {
            getein(ctx, s, s.ubar, s.vbar, dt_, b, e);
        }, false, util::Kernel::getein);
        // RAW fx/fy (corrector forces) + ubar/vbar post-BC; ein0 is
        // upstream via snapc -> p_ein -> p_pc -> c_q -> c_f.
        link(c_ein[ci], {c_f[ci], c_bcu});

        c_pc[ci] = graph_.add([&ctx, &s, b, e] { getpc(ctx, s, b, e); }, false,
                              util::Kernel::getpc);
        link(c_pc[ci], {c_rho[ci], c_ein[ci]});
    }
    if (!ctx_.opts.guard.enabled) {
        const TaskId chk = graph_.add([this] {
            const Index bad = bad_corr_.load();
            if (bad != no_index)
                throw util::Error(
                    "getgeom: non-positive volume in cell " +
                    std::to_string(bad) +
                    " (mesh tangled; consider enabling ALE)");
        });
        link(chk, c_gc);
    }
}

void StepGraph::run(Real dt) {
    dt_ = dt;
    half_dt_ = Real(0.5) * dt;
    bad_pred_.store(no_index);
    bad_corr_.store(no_index);
    graph_.run(run_exec_, ctx_.profiler, ctx_.graph_log);
}

} // namespace bookleaf::hydro
