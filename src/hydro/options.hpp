#pragma once
/// \file options.hpp
/// Runtime options for the hydrodynamics scheme — the knobs BookLeaf's
/// input deck exposes (timestep control, artificial-viscosity
/// coefficients, hourglass control, cutoffs).

#include "eos/eos.hpp"
#include "resil/resilience.hpp"
#include "util/types.hpp"

namespace bookleaf::hydro {

/// Hourglass-control selection (paper §III-A: filter after Hancock [24]
/// or sub-zonal pressures after Caramana & Shashkov [25]).
struct HourglassControl {
    bool subzonal_pressures = true;
    Real filter_kappa = 0.0; ///< Hancock filter strength; 0 disables
};

struct Options {
    // --- timestep control -------------------------------------------------
    Real dt_initial = 1.0e-5;
    Real dt_min = 1.0e-12; ///< below this the run aborts
    Real dt_max = 1.0e-1;
    Real cfl_sf = 0.5;    ///< CFL safety factor
    Real div_sf = 0.25;   ///< volume-change (divergence) safety factor
    Real dt_growth = 1.02; ///< max growth factor per step (BookLeaf's 1.02)

    // --- artificial viscosity (Caramana-Shashkov-Whalen form) -------------
    Real cq = 0.75; ///< quadratic coefficient
    Real cl = 0.5;  ///< linear coefficient

    // --- hourglass control -------------------------------------------------
    HourglassControl hourglass;

    // --- material cutoffs --------------------------------------------------
    eos::Cutoffs cutoffs;
    Real dencut = 1.0e-6; ///< density floor used in divisions

    // --- boundary driving (Saltzmann piston) --------------------------------
    Real piston_u = 0.0;
    Real piston_v = 0.0;

    // --- step health guards (dt-backoff retry; see resil::Guard) ------------
    resil::Guard guard;
};

} // namespace bookleaf::hydro
