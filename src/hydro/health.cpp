/// \file health.cpp
/// Step health guards and the shared derived-state rebuild (resilience
/// support — see resil::Guard and the driver retry loops).

#include <cmath>
#include <string>

#include "geom/geometry.hpp"
#include "hydro/kernels.hpp"
#include "util/error.hpp"

namespace bookleaf::hydro {

void rebuild_cells(const mesh::Mesh& mesh, const eos::MaterialTable& materials,
                   State& s, Index begin, Index end, bool with_rho, bool strict,
                   const char* who) {
    for (Index c = begin; c < end; ++c) {
        const auto quad = geom::gather(mesh, s.x, s.y, c);
        s.cache_geometry(c, quad);
        const Real vol = geom::quad_area(quad);
        if (strict && !(vol > 0.0))
            throw util::Error(std::string(who) +
                              ": non-positive volume in cell " +
                              std::to_string(c));
        const auto ci = static_cast<std::size_t>(c);
        s.volume[ci] = vol;
        s.char_len[ci] = geom::char_length(quad);
        const auto cv = geom::corner_volumes(quad);
        for (int k = 0; k < corners_per_cell; ++k)
            s.cnvol[State::cidx(c, k)] = cv[static_cast<std::size_t>(k)];
        if (with_rho) s.rho[ci] = s.cell_mass[ci] / std::max(vol, tiny);
        const Index r = mesh.cell_region[ci];
        s.pre[ci] = materials.pressure(r, s.rho[ci], s.ein[ci]);
        s.csqrd[ci] = materials.sound_speed2(r, s.rho[ci], s.ein[ci]);
    }
}

void capture_step(const State& s, StepBackup& b) {
    b.x.assign(s.x.begin(), s.x.end());
    b.y.assign(s.y.begin(), s.y.end());
    b.u.assign(s.u.begin(), s.u.end());
    b.v.assign(s.v.begin(), s.v.end());
    b.rho.assign(s.rho.begin(), s.rho.end());
    b.ein.assign(s.ein.begin(), s.ein.end());
    b.q.assign(s.q.begin(), s.q.end());
}

void restore_step(const Context& ctx, State& s, const StepBackup& b) {
    s.x.assign(b.x.begin(), b.x.end());
    s.y.assign(b.y.begin(), b.y.end());
    s.u.assign(b.u.begin(), b.u.end());
    s.v.assign(b.v.begin(), b.v.end());
    s.rho.assign(b.rho.begin(), b.rho.end());
    s.ein.assign(b.ein.begin(), b.ein.end());
    s.q.assign(b.q.begin(), b.q.end());
    // Tolerant rebuild: in the distributed driver a loop-top ghost cell
    // may hold a tangled transient (its corners evolve with incomplete
    // assemblies and are refreshed by the next halo before any kernel
    // reads its geometry), and that is not an error here. The rebuilt
    // derived bytes equal the pre-step ones: same deterministic kernels,
    // same primary inputs.
    rebuild_cells(*ctx.mesh, *ctx.materials, s, 0, s.n_cells(),
                  /*with_rho=*/false, /*strict=*/false, "retry");
}

bool step_healthy(const State& s, Index n_cells,
                  std::span<const std::uint8_t> node_owned) {
    for (Index c = 0; c < n_cells; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        // A violating step typically announces itself in several fields
        // at once (a tangled cell poisons volume, then rho, then the
        // EoS); checking them all keeps the guard robust to whichever
        // surfaces first. ein >= 0 rather than > 0: the compatible energy
        // update may legitimately draw a cold cell (ein ~ 1e-9 floor)
        // toward zero in strong expansion — negative or non-finite is
        // the instability signal.
        if (!std::isfinite(s.rho[ci]) || s.rho[ci] <= 0.0) return false;
        if (!std::isfinite(s.volume[ci]) || s.volume[ci] <= 0.0) return false;
        if (!std::isfinite(s.ein[ci]) || s.ein[ci] < 0.0) return false;
        if (!std::isfinite(s.q[ci])) return false;
    }
    const Index n_nodes = s.n_nodes();
    for (Index n = 0; n < n_nodes; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (!node_owned.empty() && node_owned[ni] == 0) continue;
        if (!std::isfinite(s.x[ni]) || !std::isfinite(s.y[ni]) ||
            !std::isfinite(s.u[ni]) || !std::isfinite(s.v[ni]))
            return false;
    }
    return true;
}

} // namespace bookleaf::hydro
