#include <atomic>

#include "geom/geometry.hpp"
#include "hydro/kernels.hpp"
#include "util/error.hpp"

namespace bookleaf::hydro {

namespace {

/// Rebuild one cell's geometry (cache, volume, characteristic length,
/// corner volumes); records a non-positive volume in `bad_cell` (lowest
/// cell index wins, so the diagnostic is schedule-independent).
inline void geom_cell(const mesh::Mesh& mesh, State& s, Index c,
                      std::atomic<Index>& bad_cell) {
    const auto quad = geom::gather(mesh, s.x, s.y, c);
    s.cache_geometry(c, quad);
    const Real vol = geom::quad_area(quad);
    const auto ci = static_cast<std::size_t>(c);
    s.volume[ci] = vol;
    s.char_len[ci] = geom::char_length(quad);
    const auto cv = geom::corner_volumes(quad);
    for (int k = 0; k < corners_per_cell; ++k)
        s.cnvol[State::cidx(c, k)] = cv[static_cast<std::size_t>(k)];
    if (vol <= 0.0) {
        Index seen = bad_cell.load(std::memory_order_relaxed);
        while ((seen == no_index || c < seen) &&
               !bad_cell.compare_exchange_weak(seen, c)) {
        }
    }
}

} // namespace

void getgeom(const Context& ctx, State& s, std::span<const Real> wu,
             std::span<const Real> wv, Real dt_move) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getgeom,
                                  ctx.mesh->n_cells() + ctx.mesh->n_nodes());
    const auto& mesh = *ctx.mesh;

    // Advance node positions from the step-start snapshot.
    par::for_each(ctx.exec, mesh.n_nodes(), [&](Index n) {
        const auto ni = static_cast<std::size_t>(n);
        s.x[ni] = s.x0[ni] + wu[ni] * dt_move;
        s.y[ni] = s.y0[ni] + wv[ni] * dt_move;
    });

    // Rebuild cell geometry; collect the first tangled cell (if any).
    // This is the one place the corner coordinates are gathered per step:
    // the quad and its area gradients are written to the state's
    // gathered-geometry cache, which getforce/getq/getdt then read
    // contiguously instead of re-gathering through cell_nodes.
    std::atomic<Index> bad_cell{no_index};
    par::for_each(ctx.exec, mesh.n_cells(),
                  [&](Index c) { geom_cell(mesh, s, c, bad_cell); });

    // With health guards enabled a tangled mesh is not fatal here: the
    // bad volumes (and everything derived from them) flow deterministically
    // into the post-corrector health check, which rolls the step back and
    // retries with a smaller dt. Throwing mid-step would instead abort the
    // run — and in the distributed driver would kill one rank before the
    // collective retry vote, taking the peers down with it.
    if (bad_cell.load() != no_index && !ctx.opts.guard.enabled)
        throw util::Error("getgeom: non-positive volume in cell " +
                          std::to_string(bad_cell.load()) +
                          " (mesh tangled; consider enabling ALE)");
}

void getgeom_move(const Context& ctx, State& s, std::span<const Real> wu,
                  std::span<const Real> wv, Real dt_move, Index begin,
                  Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getgeom,
                                  end - begin);
    for (Index n = begin; n < end; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        s.x[ni] = s.x0[ni] + wu[ni] * dt_move;
        s.y[ni] = s.y0[ni] + wv[ni] * dt_move;
    }
}

void getgeom_cells(const Context& ctx, State& s, Index begin, Index end,
                   std::atomic<Index>& bad_cell) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getgeom,
                                  end - begin);
    const auto& mesh = *ctx.mesh;
    for (Index c = begin; c < end; ++c) geom_cell(mesh, s, c, bad_cell);
}

void getrho(const Context& ctx, State& s) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getrho,
                                  s.n_cells());
    par::for_each(ctx.exec, s.n_cells(), [&](Index c) {
        const auto ci = static_cast<std::size_t>(c);
        s.rho[ci] = s.cell_mass[ci] / std::max(s.volume[ci], tiny);
    });
}

void getrho(const Context& ctx, State& s, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getrho,
                                  end - begin);
    for (Index c = begin; c < end; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        s.rho[ci] = s.cell_mass[ci] / std::max(s.volume[ci], tiny);
    }
}

void getpc(const Context& ctx, State& s) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getpc,
                                  s.n_cells());
    const auto& mesh = *ctx.mesh;
    const auto& materials = *ctx.materials;
    par::for_each(ctx.exec, s.n_cells(), [&](Index c) {
        const auto ci = static_cast<std::size_t>(c);
        const Index r = mesh.cell_region[ci];
        s.pre[ci] = materials.pressure(r, s.rho[ci], s.ein[ci]);
        s.csqrd[ci] = materials.sound_speed2(r, s.rho[ci], s.ein[ci]);
    });
}

void getpc(const Context& ctx, State& s, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getpc,
                                  end - begin);
    const auto& mesh = *ctx.mesh;
    const auto& materials = *ctx.materials;
    for (Index c = begin; c < end; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const Index r = mesh.cell_region[ci];
        s.pre[ci] = materials.pressure(r, s.rho[ci], s.ein[ci]);
        s.csqrd[ci] = materials.sound_speed2(r, s.rho[ci], s.ein[ci]);
    }
}

void getein(const Context& ctx, State& s, std::span<const Real> wu,
            std::span<const Real> wv, Real dt_eff) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getein,
                                  s.n_cells());
    const auto& mesh = *ctx.mesh;
    par::for_each(ctx.exec, s.n_cells(), [&](Index c) {
        Real work = 0.0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const auto n = static_cast<std::size_t>(mesh.cn(c, k));
            const auto ki = State::cidx(c, k);
            work += s.fx[ki] * wu[n] + s.fy[ki] * wv[n];
        }
        const auto ci = static_cast<std::size_t>(c);
        s.ein[ci] = s.ein0[ci] - dt_eff * work / std::max(s.cell_mass[ci], tiny);
    });
}

void getein(const Context& ctx, State& s, std::span<const Real> wu,
            std::span<const Real> wv, Real dt_eff, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getein,
                                  end - begin);
    const auto& mesh = *ctx.mesh;
    for (Index c = begin; c < end; ++c) {
        Real work = 0.0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const auto n = static_cast<std::size_t>(mesh.cn(c, k));
            const auto ki = State::cidx(c, k);
            work += s.fx[ki] * wu[n] + s.fy[ki] * wv[n];
        }
        const auto ci = static_cast<std::size_t>(c);
        s.ein[ci] =
            s.ein0[ci] - dt_eff * work / std::max(s.cell_mass[ci], tiny);
    }
}

void apply_velocity_bc(const mesh::Mesh& mesh, const Options& opts,
                       std::span<Real> u, std::span<Real> v) {
    for (Index n = 0; n < mesh.n_nodes(); ++n) {
        const auto mask = mesh.node_bc[static_cast<std::size_t>(n)];
        if (mask == mesh::bc::none) continue;
        const auto ni = static_cast<std::size_t>(n);
        if (mask & mesh::bc::piston) {
            u[ni] = opts.piston_u;
            v[ni] = opts.piston_v;
            continue;
        }
        if (mask & mesh::bc::fix_u) u[ni] = 0.0;
        if (mask & mesh::bc::fix_v) v[ni] = 0.0;
    }
}

} // namespace bookleaf::hydro
