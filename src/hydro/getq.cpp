/// \file getq.cpp
/// Edge-centred monotonic artificial viscosity following Caramana,
/// Shashkov & Whalen [28]. For every cell edge in compression a
/// quadratic+linear viscosity is applied as an equal-and-opposite force
/// pair on the edge's nodes; a van-Leer-style limiter built from the
/// *continuation* edges (through each endpoint, into the face-neighbour
/// cells) switches the viscosity off in smooth / uniform-strain flow.
///
/// This is the kernel that needs ghost data in distributed runs (the
/// halo exchange immediately before GETQ in the paper's Algorithm 1).

#include <cmath>

#include "hydro/kernels.hpp"

namespace bookleaf::hydro {

namespace {

/// Velocity difference along the continuation of edge (through `node`)
/// inside neighbour cell `nb` (which shares face `shared_k` of cell c).
/// Returns false if the neighbour doesn't exist.
struct Continuation {
    Real du = 0.0, dv = 0.0;
    bool valid = false;
};

Continuation continuation(const mesh::Mesh& mesh, const State& s, Index cell,
                          Index nb, Index node, bool toward_node) {
    Continuation out;
    if (nb == no_index) return out;
    // Find the side of `nb` that contains `node` but is not the face
    // shared with `cell`.
    for (int m = 0; m < corners_per_cell; ++m) {
        const Index a = mesh.cn(nb, m);
        const Index b = mesh.cn(nb, (m + 1) % corners_per_cell);
        if (a != node && b != node) continue;
        if (mesh.neighbor(nb, m) == cell) continue; // the shared face
        const Index other = (a == node) ? b : a;
        const auto ni = static_cast<std::size_t>(node);
        const auto oi = static_cast<std::size_t>(other);
        if (toward_node) {
            // difference from the far node *into* `node` (upstream sense)
            out.du = s.u[ni] - s.u[oi];
            out.dv = s.v[ni] - s.v[oi];
        } else {
            // difference from `node` *out* to the far node (downstream)
            out.du = s.u[oi] - s.u[ni];
            out.dv = s.v[oi] - s.v[ni];
        }
        out.valid = true;
        return out;
    }
    return out;
}

/// The per-cell viscosity computation. Writes only cell c's corner forces
/// and q scalar, so any disjoint cover of the cell range (full sweep or
/// the distributed driver's boundary/interior split) produces bitwise
/// identical results in any order.
inline void q_cell(const mesh::Mesh& mesh, const Options& opts, State& s,
                   Index c) {
    const Real cq = opts.cq;
    const Real cl = opts.cl;
    const auto ci = static_cast<std::size_t>(c);
    for (int k = 0; k < corners_per_cell; ++k) {
        s.qfx[State::cidx(c, k)] = 0.0;
        s.qfy[State::cidx(c, k)] = 0.0;
    }
    Real q_max = 0.0;

    for (int k = 0; k < corners_per_cell; ++k) {
        const int k1 = (k + 1) % corners_per_cell;
        const Index a = mesh.cn(c, k);
        const Index b = mesh.cn(c, k1);
        const auto ai = static_cast<std::size_t>(a);
        const auto bi = static_cast<std::size_t>(b);

        const Real du = s.u[bi] - s.u[ai];
        const Real dv = s.v[bi] - s.v[ai];
        const Real du2 = du * du + dv * dv;
        if (du2 < tiny) continue;

        // Compression switch: nodes approaching along the edge. Edge
        // vectors come from the gathered-geometry cache (contiguous),
        // not from indirect node loads.
        const std::size_t base = State::cidx(c, 0);
        const auto kk = static_cast<std::size_t>(k);
        const auto kk1 = static_cast<std::size_t>(k1);
        const Real ex = s.cnx[base + kk1] - s.cnx[base + kk];
        const Real ey = s.cny[base + kk1] - s.cny[base + kk];
        if (du * ex + dv * ey >= 0.0) continue;

        // Monotonicity limiter from the continuation edges. The
        // "previous" continuation passes through node a (inside the
        // neighbour across face k-1), the "next" through node b
        // (across face k+1).
        const auto prev = continuation(
            mesh, s, c, mesh.neighbor(c, (k + 3) % corners_per_cell), a,
            /*toward_node=*/true);
        const auto next = continuation(
            mesh, s, c, mesh.neighbor(c, k1), b, /*toward_node=*/false);

        Real psi = 0.0;
        const bool any = prev.valid || next.valid;
        if (any) {
            const Real rp = prev.valid
                                ? (prev.du * du + prev.dv * dv) / du2
                                : (next.du * du + next.dv * dv) / du2;
            const Real rn = next.valid
                                ? (next.du * du + next.dv * dv) / du2
                                : rp;
            psi = std::min({Real(1.0), Real(0.5) * (rp + rn),
                            Real(2.0) * rp, Real(2.0) * rn});
            psi = std::max(psi, Real(0.0));
        }

        const Real dunorm = std::sqrt(du2);
        const Real cs = std::sqrt(std::max(s.csqrd[ci], Real(0.0)));
        const Real q_edge = (Real(1.0) - psi) * s.rho[ci] *
                            (cq * du2 + cl * cs * dunorm);

        const Real edge_len = std::hypot(ex, ey);
        const Real mu = q_edge * edge_len / std::max(dunorm, tiny);

        // Equal-and-opposite dissipative pair force along du.
        s.qfx[State::cidx(c, k)] += mu * du;
        s.qfy[State::cidx(c, k)] += mu * dv;
        s.qfx[State::cidx(c, k1)] -= mu * du;
        s.qfy[State::cidx(c, k1)] -= mu * dv;

        q_max = std::max(q_max, q_edge);
    }
    s.q[ci] = q_max;
}

} // namespace

void getq(const Context& ctx, State& s) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getq,
                                  ctx.mesh->n_cells());
    const auto& mesh = *ctx.mesh;
    par::for_each(ctx.exec, mesh.n_cells(),
                  [&](Index c) { q_cell(mesh, ctx.opts, s, c); });
}

void getq(const Context& ctx, State& s, std::span<const Index> cells) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getq,
                                  static_cast<long long>(cells.size()));
    const auto& mesh = *ctx.mesh;
    par::for_each(ctx.exec, static_cast<Index>(cells.size()), [&](Index i) {
        q_cell(mesh, ctx.opts, s, cells[static_cast<std::size_t>(i)]);
    });
}

void getq(const Context& ctx, State& s, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::getq,
                                  end - begin);
    const auto& mesh = *ctx.mesh;
    for (Index c = begin; c < end; ++c) q_cell(mesh, ctx.opts, s, c);
}

} // namespace bookleaf::hydro
