/// \file lagstep.cpp
/// One predictor-corrector Lagrangian step (the paper's Algorithm 1
/// LAGSTEP): a forward-Euler predictor to the half step time-centres the
/// thermodynamic state; the corrector then advances velocity (getacc) and
/// the full state with second-order accuracy. Total energy is conserved
/// to round-off because getacc and getein use the same corner forces and
/// the same time-centred velocities.

#include "hydro/kernels.hpp"
#include "hydro/stepgraph.hpp"

namespace bookleaf::hydro {

void lagstep(const Context& ctx, State& s, Real dt) {
    // Task-graph schedule: the same kernel sequence expressed as a
    // dependency graph over cell/node blocks (see stepgraph.hpp), bitwise
    // identical to the fork-join sequence below. The driver builds the
    // graph only when it applies (threaded pool, gather assembly,
    // Schedule::taskgraph) — a null pointer falls through to fork-join.
    if (ctx.stepgraph != nullptr &&
        ctx.exec.schedule == par::Schedule::taskgraph &&
        ctx.stepgraph->state() == &s) {
        ctx.stepgraph->run(dt);
        return;
    }

    // Snapshot the step-start state the predictor/corrector rewind to.
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::other);
        s.x0 = s.x;
        s.y0 = s.y;
        s.u0 = s.u;
        s.v0 = s.v;
        s.ein0 = s.ein;
    }

    const Real half_dt = Real(0.5) * dt;

    // --- predictor: thermodynamic state to t + dt/2 ------------------------
    getq(ctx, s);
    getforce(ctx, s);
    getgeom(ctx, s, s.u0, s.v0, half_dt);
    getrho(ctx, s);
    getein(ctx, s, s.u0, s.v0, half_dt);
    getpc(ctx, s);

    // --- corrector: full step with time-centred quantities ------------------
    getq(ctx, s);
    getforce(ctx, s);
    getacc(ctx, s, dt);
    getgeom(ctx, s, s.ubar, s.vbar, dt);
    getrho(ctx, s);
    getein(ctx, s, s.ubar, s.vbar, dt);
    getpc(ctx, s);
}

} // namespace bookleaf::hydro
