/// \file getdt.cpp
/// Timestep controller. Three candidate constraints:
///   * CFL: dt = cfl_sf * min_c ( L_c / c_eff ), c_eff^2 = c_s^2 + 2 q/rho
///     — the viscosity contribution follows the reference BookLeaf;
///   * divergence: dt = div_sf / max_c |dV/dt| / V (volume-change limit);
///   * growth: dt <= dt_growth * previous dt, and dt <= dt_max.
/// The min-reductions carry argmin (the Fortran MINVAL/MINLOC pair whose
/// `workshare` behaviour the paper discusses); under the hybrid artefact
/// (`exec.serial_reductions`) they run single-threaded.

#include <cmath>

#include "geom/geometry.hpp"
#include "hydro/kernels.hpp"
#include "util/error.hpp"

namespace bookleaf::hydro {

DtResult getdt(const Context& ctx, const State& s, Real dt_prev) {
    const util::ScopedTimer timer(
        *ctx.profiler, util::Kernel::getdt,
        ctx.dt_cells >= 0 ? ctx.dt_cells : ctx.mesh->n_cells());
    const auto& mesh = *ctx.mesh;
    const auto& opts = ctx.opts;
    const Index n_cells =
        ctx.dt_cells >= 0 ? ctx.dt_cells : mesh.n_cells();

    // --- CFL in squared space: minimise L^2 / c_eff^2 ----------------------
    const auto cfl = par::reduce_min(ctx.exec, n_cells, [&](Index c) {
        const auto ci = static_cast<std::size_t>(c);
        const Real rho = std::max(s.rho[ci], opts.dencut);
        const Real ceff2 = s.csqrd[ci] + Real(2.0) * s.q[ci] / rho;
        const Real l = s.char_len[ci];
        return l * l / std::max(ceff2, opts.cutoffs.ccut);
    });

    // --- divergence (volume-change rate) limit ------------------------------
    // dV/dt = sum_i u_i . dV/dx_i exactly for shoelace volumes; minimise
    // the negated magnitude to find the fastest-changing cell.
    const auto negdiv = par::reduce_min(ctx.exec, n_cells, [&](Index c) {
        // Area gradients from the gathered-geometry cache (getgeom keeps
        // it in sync with the current node positions).
        const std::size_t base = State::cidx(c, 0);
        Real dvdt = 0.0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const auto n = static_cast<std::size_t>(mesh.cn(c, k));
            const auto bk = base + static_cast<std::size_t>(k);
            dvdt += s.u[n] * s.cngx[bk] + s.v[n] * s.cngy[bk];
        }
        const auto ci = static_cast<std::size_t>(c);
        return -std::abs(dvdt) / std::max(s.volume[ci], tiny);
    });

    DtResult result;
    result.dt = opts.cfl_sf * std::sqrt(std::max(cfl.value, Real(0.0)));
    result.cell = cfl.index;
    result.reason = "CFL";

    const Real max_div = -negdiv.value;
    if (max_div > tiny) {
        const Real dt_div = opts.div_sf / max_div;
        if (dt_div < result.dt) {
            result.dt = dt_div;
            result.cell = negdiv.index;
            result.reason = "divergence";
        }
    }

    if (dt_prev > 0.0 && opts.dt_growth * dt_prev < result.dt) {
        result.dt = opts.dt_growth * dt_prev;
        result.cell = no_index;
        result.reason = "growth";
    }

    if (opts.dt_max < result.dt) {
        result.dt = opts.dt_max;
        result.cell = no_index;
        result.reason = "maximum";
    }

    if (result.dt < opts.dt_min)
        throw util::Error("getdt: timestep collapsed below dt_min (cell " +
                          std::to_string(result.cell) + ")");
    return result;
}

} // namespace bookleaf::hydro
