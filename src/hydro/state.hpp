#pragma once
/// \file state.hpp
/// The staggered-mesh hydrodynamic state: thermodynamic variables on
/// cells, kinematic variables on nodes, and corner (cell x 4) work arrays
/// for the compatible discretisation.

#include <vector>

#include "eos/eos.hpp"
#include "geom/geometry.hpp"
#include "hydro/options.hpp"
#include "mesh/mesh.hpp"
#include "par/exec.hpp"
#include "util/alloc.hpp"
#include "util/types.hpp"

namespace bookleaf::hydro {

/// State field storage. The default-init allocator keeps freshly
/// allocated pages untouched until `allocate`'s explicit fill, so with a
/// pool the zero-fill's static per-worker blocks perform NUMA first-touch:
/// each page lands on the socket of the worker that will process that
/// block. Converts to std::span<(const) Real> everywhere a kernel takes
/// one; element access and iteration are identical to std::vector<Real>.
using Field = std::vector<Real, util::DefaultInitAllocator<Real>>;

struct State {
    // --- node-centred (kinematic) ----------------------------------------
    Field x, y;   ///< positions (evolve; mesh keeps originals)
    Field u, v;   ///< velocity
    Field node_mass;
    Field nfx, nfy; ///< assembled nodal forces (getacc scratch)

    // --- cell-centred (thermodynamic) -------------------------------------
    Field rho, ein, pre, csqrd;
    Field q;          ///< cell viscosity scalar (for dt + diagnostics)
    Field volume;
    Field cell_mass;  ///< constant during Lagrangian motion
    Field char_len;   ///< CFL characteristic length

    // --- corner data [cell*4 + k] ------------------------------------------
    Field fx, fy;       ///< total corner forces
    Field qfx, qfy;     ///< viscous corner forces (from getq)
    Field cnmass;       ///< corner masses (sub-zonal)
    Field cnvol;        ///< corner volumes

    // --- gathered-geometry cache [cell*4 + k] --------------------------------
    // Corner coordinates and exact area gradients, written by getgeom (and
    // initialise / aleupdate) alongside the volumes it already derives
    // from the same gather. getforce, getq and getdt read these
    // contiguously instead of re-gathering node coordinates per cell per
    // invocation — the corrector hot path does no indirect coordinate
    // loads at all. Always consistent with the state's x/y: every code
    // path that moves nodes refreshes the cache before a kernel reads it.
    Field cnx, cny;     ///< corner positions (gathered)
    Field cngx, cngy;   ///< d(cell area)/d(corner position)

    // --- step scratch --------------------------------------------------------
    Field x0, y0;       ///< positions at step start
    Field u0, v0;       ///< velocities at step start
    Field ein0;         ///< energy at step start
    Field ubar, vbar;   ///< time-centred velocities (corrector)

    [[nodiscard]] Index n_nodes() const { return static_cast<Index>(x.size()); }
    [[nodiscard]] Index n_cells() const { return static_cast<Index>(rho.size()); }

    /// Corner array flat index.
    [[nodiscard]] static std::size_t cidx(Index c, int k) {
        return static_cast<std::size_t>(c) * corners_per_cell +
               static_cast<std::size_t>(k);
    }

    /// Reconstruct one cell's corner quad from the gathered-geometry
    /// cache (contiguous loads; no node indirection).
    [[nodiscard]] geom::QuadPts cached_quad(Index c) const {
        geom::QuadPts q;
        const std::size_t base = cidx(c, 0);
        for (std::size_t k = 0; k < 4; ++k) {
            q.x[k] = cnx[base + k];
            q.y[k] = cny[base + k];
        }
        return q;
    }

    /// Write one cell's gathered geometry into the cache.
    void cache_geometry(Index c, const geom::QuadPts& q) {
        const std::size_t base = cidx(c, 0);
        const auto grads = geom::area_gradients(q);
        for (std::size_t k = 0; k < 4; ++k) {
            cnx[base + k] = q.x[k];
            cny[base + k] = q.y[k];
            cngx[base + k] = grads[k].x;
            cngy[base + k] = grads[k].y;
        }
    }
};

/// Allocate every field for the mesh and zero-initialise.
State allocate(const mesh::Mesh& mesh);

/// As above, but the zero-fill runs as static per-worker blocks on the
/// pool (when `exec` is threaded): NUMA first-touch places each block's
/// pages on the socket of the worker that will process it. The resulting
/// bytes are identical to the serial overload.
State allocate(const mesh::Mesh& mesh, const par::Exec& exec);

/// Finish initialisation after the caller has filled rho, ein, u, v:
/// computes volumes, corner volumes, cell/corner/node masses, pressure and
/// sound speed, characteristic lengths. Throws on non-positive volumes.
void initialise(const mesh::Mesh& mesh, const eos::MaterialTable& materials,
                State& state);

/// Conserved totals used by the diagnostics and the conservation tests.
struct Totals {
    Real mass = 0.0;
    Real momentum_x = 0.0;
    Real momentum_y = 0.0;
    Real internal_energy = 0.0;
    Real kinetic_energy = 0.0;
    [[nodiscard]] Real total_energy() const {
        return internal_energy + kinetic_energy;
    }
};

/// Compute conserved totals. Kinetic energy uses nodal masses; internal
/// energy is mass-weighted specific internal energy.
[[nodiscard]] Totals totals(const mesh::Mesh& mesh, const State& state);

} // namespace bookleaf::hydro
