#pragma once
/// \file kernels.hpp
/// The hydrodynamics kernels, named after the reference BookLeaf routines
/// (Algorithm 1 in the paper). Each kernel charges its wall time to the
/// profiler under the matching Kernel id, which is what the Table II
/// bench aggregates.

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>

#include "eos/eos.hpp"
#include "hydro/options.hpp"
#include "hydro/state.hpp"
#include "mesh/mesh.hpp"
#include "par/coloring.hpp"
#include "par/exec.hpp"
#include "util/profiler.hpp"

namespace bookleaf::par {
struct GraphRunLog;
} // namespace bookleaf::par

namespace bookleaf::hydro {

class StepGraph;

/// Everything a kernel needs besides the state: mesh topology, materials,
/// options, execution policy, profiler, and (optionally) the scatter
/// colouring for the `Assembly::colored_scatter` ablation path of the
/// acceleration kernel.
struct Context {
    const mesh::Mesh* mesh = nullptr;
    const eos::MaterialTable* materials = nullptr;
    Options opts;
    par::Exec exec;
    /// Kernels charge this unconditionally; the default keeps bare
    /// (hand-built) contexts safe. Drivers overwrite it with their own
    /// per-run instance so concurrent runs never share stats.
    util::Profiler* profiler = &util::default_profiler();
    const par::Coloring* scatter_coloring = nullptr;
    /// Distributed runs: number of *owned* cells (owned-first ordering).
    /// getdt reduces over these only, so the post-reduction global dt is
    /// identical to a serial run; no_index means "all cells".
    Index dt_cells = no_index;
    /// Distributed runs: overrides mesh->node_corners for every
    /// corner->node gather (the acceleration assembly and the dual-mesh
    /// remap). part::decompose permutes each row to ascending *global*
    /// flat corner id, so the gathers sum a boundary node's corner
    /// contributions in exactly the serial deposition order — the bitwise
    /// dist == serial contract. nullptr (the serial driver) means
    /// mesh->node_corners, whose rows are already in global order.
    const util::Csr* assembly_corners = nullptr;
    /// Task-graph executor for the Lagrangian step, built by the owning
    /// driver when `exec.schedule == Schedule::taskgraph` applies (pool
    /// present, gather assembly). lagstep dispatches to it; nullptr (bare
    /// contexts, the fork-join ablation, the scatter ablations) runs the
    /// barrier-per-kernel sequence. Results are bitwise identical either
    /// way.
    StepGraph* stepgraph = nullptr;
    /// Attribution collector: when the owning driver runs with telemetry
    /// active it attaches a par::GraphRunLog here and every task-graph
    /// execution (step graph, ALE advection graph, distributed remap-flux
    /// graph) appends its per-task spans + edges for obs::critical_path.
    /// nullptr (the default, and all telemetry-off runs) records nothing.
    par::GraphRunLog* graph_log = nullptr;

    /// The corner gather CSR in effect (see assembly_corners).
    [[nodiscard]] const util::Csr& corner_gather() const {
        return assembly_corners != nullptr ? *assembly_corners
                                           : mesh->node_corners;
    }
};

/// Move nodes to x0 + w*dt_move and rebuild geometry (volumes, corner
/// volumes, characteristic lengths). Throws util::Error on non-positive
/// cell volume (tangled mesh).
void getgeom(const Context& ctx, State& s, std::span<const Real> wu,
             std::span<const Real> wv, Real dt_move);

/// Density from constant Lagrangian cell mass: rho = m / V.
void getrho(const Context& ctx, State& s);

/// Compatible internal-energy update:
///   ein = ein0 - dt_eff * sum_i(f_i . w_i) / cell_mass
/// using the *total* corner forces (pressure + sub-zonal + hourglass +
/// viscous), which is what makes total energy conservation exact.
void getein(const Context& ctx, State& s, std::span<const Real> wu,
            std::span<const Real> wv, Real dt_eff);

/// EoS evaluation: pressure and squared sound speed per cell.
void getpc(const Context& ctx, State& s);

/// Edge-centred monotonic artificial viscosity (Caramana-Shashkov-Whalen
/// [28]). Writes the viscous corner forces (qfx, qfy) and the cell
/// viscosity scalar q. Needs face-neighbour velocities: this is the
/// kernel preceded by a halo exchange in distributed runs.
void getq(const Context& ctx, State& s);
/// Subrange variant over an explicit cell list. Each cell writes only its
/// own corner arrays, so any disjoint cover of the cell range (e.g. the
/// distributed driver's boundary/interior split for halo overlap) is
/// bitwise identical to the full sweep regardless of execution order.
void getq(const Context& ctx, State& s, std::span<const Index> cells);

/// Total corner forces: pressure gradient + sub-zonal pressures +
/// hourglass filter + the viscous forces computed by getq.
void getforce(const Context& ctx, State& s);
/// Subrange variant over an explicit cell list (see getq).
void getforce(const Context& ctx, State& s, std::span<const Index> cells);

/// Acceleration: assemble corner masses/forces onto nodes, apply boundary
/// conditions, advance velocities by dt and form the time-centred
/// velocities (ubar, vbar). The assembly strategy follows
/// `exec.assembly`: the default gather over the node->(cell, corner) CSR
/// is race-free and bitwise thread-count independent; `serial_scatter`
/// and `colored_scatter` reproduce the paper's §IV-B behaviours (the
/// latter needs `ctx.scatter_coloring`).
void getacc(const Context& ctx, State& s, Real dt);

/// Subrange pieces of the acceleration kernel for the distributed
/// driver's halo/compute overlap. `getacc_assemble` gathers nodal mass and
/// force for an explicit node list (always the race-free gather; the
/// scatter ablations make no sense over subsets); nodes not incident to
/// any ghost cell can be assembled while ghost corner forces are still in
/// flight. `getacc_advance` performs the remaining whole-range work of
/// getacc (velocity advance, boundary conditions, time-centred
/// velocities) and must follow assembly of *all* nodes. Composing
/// assemble(interior) + assemble(boundary) + advance is bitwise identical
/// to one full getacc with gather assembly.
void getacc_assemble(const Context& ctx, State& s, std::span<const Index> nodes);
void getacc_advance(const Context& ctx, State& s, Real dt);

// ---------------------------------------------------------------------------
// Contiguous-block kernel pieces for the task-graph executor. Each runs a
// *serial* loop over entities [begin, end) — parallelism comes from running
// many blocks as graph tasks — and writes only its own block's slots, so
// any disjoint cover executed in any order is bitwise identical to the
// full fork-join kernel. Every piece charges its kernel's profiler slot
// (in graph mode concurrent block scopes sum to CPU seconds, not wall).
// ---------------------------------------------------------------------------

/// getq over cells [begin, end).
void getq(const Context& ctx, State& s, Index begin, Index end);
/// getforce over cells [begin, end).
void getforce(const Context& ctx, State& s, Index begin, Index end);
/// The node-move half of getgeom over nodes [begin, end).
void getgeom_move(const Context& ctx, State& s, std::span<const Real> wu,
                  std::span<const Real> wv, Real dt_move, Index begin,
                  Index end);
/// The cell-geometry half of getgeom over cells [begin, end). A tangled
/// cell is recorded in `bad_cell` (lowest index wins) instead of throwing;
/// the graph's check task (or the caller) owns the throw decision.
void getgeom_cells(const Context& ctx, State& s, Index begin, Index end,
                   std::atomic<Index>& bad_cell);
/// getrho over cells [begin, end).
void getrho(const Context& ctx, State& s, Index begin, Index end);
/// getein over cells [begin, end).
void getein(const Context& ctx, State& s, std::span<const Real> wu,
            std::span<const Real> wv, Real dt_eff, Index begin, Index end);
/// getpc over cells [begin, end).
void getpc(const Context& ctx, State& s, Index begin, Index end);
/// The gather assembly of getacc over nodes [begin, end).
void getacc_assemble(const Context& ctx, State& s, Index begin, Index end);
/// The velocity advance of getacc over nodes [begin, end) (no BCs — the
/// graph applies them as a serial task after all blocks).
void getacc_advance_velocity(const Context& ctx, State& s, Real dt,
                             Index begin, Index end);
/// The time-centred (ubar, vbar) formation over nodes [begin, end).
void getacc_centered(const Context& ctx, State& s, Index begin, Index end);

/// Timestep-controller result. `reason` names the active constraint and
/// `cell` the controlling cell (BookLeaf's MINLOC diagnostic).
struct DtResult {
    Real dt = 0.0;
    Index cell = no_index;
    std::string_view reason;
};

/// Timestep control: CFL on the effective sound speed (including the
/// viscosity contribution), divergence (volume-change) limit, growth cap,
/// dt_max clamp. Throws util::Error if dt falls below opts.dt_min.
DtResult getdt(const Context& ctx, const State& s, Real dt_prev);

/// The t_end clamp, applied to the dt a step advances by. `unclamped`
/// keeps the controller's value: it — never the clamped `used` — must
/// seed the next getdt's growth limit, or a follow-on run after a tiny
/// clamped final step is growth-limited from near zero. The single
/// definition shared by the serial driver and both distributed schedules
/// so the clamp semantics cannot drift between them.
struct ClampedDt {
    Real used = 0.0;
    Real unclamped = 0.0;
};
[[nodiscard]] inline ClampedDt clamp_to_t_end(Real t, Real dt, Real t_end) {
    return {t + dt > t_end ? t_end - t : dt, dt};
}

/// One full predictor-corrector Lagrangian step (Algorithm 1's LAGSTEP).
void lagstep(const Context& ctx, State& s, Real dt);

/// Apply kinematic boundary conditions in place (reflective walls zero
/// the normal component; piston nodes get the prescribed velocity).
void apply_velocity_bc(const mesh::Mesh& mesh, const Options& opts,
                       std::span<Real> u, std::span<Real> v);

// ---------------------------------------------------------------------------
// Step health guards + derived-state rebuild (resilience support).
// ---------------------------------------------------------------------------

/// Rebuild the derived per-cell state of cells [begin, end) from the
/// primaries, using exactly the per-cell sequence getgeom/getpc use:
/// geometry cache + volume + characteristic length + corner volumes from
/// x/y, then EoS (pre, csqrd) from rho/ein. With `with_rho`, density is
/// recomputed first as cell_mass / max(volume, tiny) — the ghost-refresh
/// semantics; without it the stored rho is kept (the checkpoint-restore
/// semantics, where rho is a primary). `strict` throws util::Error
/// ("<who>: non-positive volume in cell N") on a tangled cell; tolerant
/// mode lets bad values flow through (the step-retry rollback path, where
/// loop-top ghost geometry may legitimately be tangled). The single
/// definition shared by ckpt::restore, the distributed ghost refresh and
/// the step-retry rollback, so their rebuild semantics cannot drift.
void rebuild_cells(const mesh::Mesh& mesh, const eos::MaterialTable& materials,
                   State& s, Index begin, Index end, bool with_rho, bool strict,
                   const char* who);

/// Loop-top primary state of one step, captured before lagstep so a
/// rejected step can be rolled back exactly. Only the fields lagstep
/// *reads* before writing are saved (positions, velocities, rho, ein, q);
/// the masses are constant during Lagrangian motion, the derived fields
/// are rebuilt, and the scratch arrays are rewritten by the retry before
/// being read. Reused across steps — capture_step only reallocates on
/// first use.
struct StepBackup {
    std::vector<Real> x, y, u, v, rho, ein, q;
};

/// Save the loop-top primaries of `s` into `b`.
void capture_step(const State& s, StepBackup& b);

/// Roll `s` back to the captured loop-top state: restores the primaries
/// and rebuilds every derived field (tolerantly — see rebuild_cells). The
/// rebuilt bytes are identical to what the pre-step state held, because
/// the same deterministic kernels produced both from the same primaries.
void restore_step(const Context& ctx, State& s, const StepBackup& b);

/// Post-corrector health verdict over cells [0, n_cells) and the given
/// nodes: finite and positive density and volume, finite non-negative
/// internal energy, finite viscosity, finite node kinematics. The
/// distributed driver passes its owned-cell count and owned-node mask
/// (ghost entities may legitimately hold stale or tangled values at the
/// loop top); an empty mask means "all nodes". Every rank checking its
/// owned slice together covers exactly the serial check, which is what
/// makes the collective retry vote bitwise-equal to the serial decision.
[[nodiscard]] bool step_healthy(const State& s, Index n_cells,
                                std::span<const std::uint8_t> node_owned = {});

} // namespace bookleaf::hydro
