#include "setup/problems.hpp"

#include <cmath>

#include "mesh/generator.hpp"
#include "util/error.hpp"

namespace bookleaf::setup {

namespace {

/// Cold-gas internal-energy floor: exact zero makes the ideal-gas sound
/// speed zero, which is fine (ccut floors it), but a tiny positive value
/// matches the reference decks.
constexpr Real cold_ein = 1.0e-9;

void size_fields(Problem& p) {
    p.rho.assign(static_cast<std::size_t>(p.mesh.n_cells()), 0.0);
    p.ein.assign(static_cast<std::size_t>(p.mesh.n_cells()), 0.0);
    p.u.assign(static_cast<std::size_t>(p.mesh.n_nodes()), 0.0);
    p.v.assign(static_cast<std::size_t>(p.mesh.n_nodes()), 0.0);
}

Real cell_cx(const mesh::Mesh& m, Index c) {
    Real sx = 0;
    for (int k = 0; k < corners_per_cell; ++k)
        sx += m.x[static_cast<std::size_t>(m.cn(c, k))];
    return Real(0.25) * sx;
}

Real cell_cy(const mesh::Mesh& m, Index c) {
    Real sy = 0;
    for (int k = 0; k < corners_per_cell; ++k)
        sy += m.y[static_cast<std::size_t>(m.cn(c, k))];
    return Real(0.25) * sy;
}

} // namespace

Problem sod(Index nx, Index ny) {
    Problem p;
    p.name = "sod";
    mesh::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0,
                        .y1 = Real(0.1), .nx = nx, .ny = ny};
    spec.region_of = [](Real cx, Real) { return cx < Real(0.5) ? 0 : 1; };
    p.mesh = mesh::generate_rect(spec);
    p.materials.materials = {eos::IdealGas{1.4}, eos::IdealGas{1.4}};
    size_fields(p);
    for (Index c = 0; c < p.mesh.n_cells(); ++c) {
        const bool left = p.mesh.cell_region[static_cast<std::size_t>(c)] == 0;
        const auto ci = static_cast<std::size_t>(c);
        p.rho[ci] = left ? Real(1.0) : Real(0.125);
        // e = P / ((gamma - 1) rho): left P = 1 -> 2.5; right P = 0.1 -> 2.
        p.ein[ci] = left ? Real(2.5) : Real(2.0);
    }
    p.hydro.dt_initial = 1e-4;
    p.t_end = Real(0.2);
    return p;
}

Problem noh(Index n) {
    Problem p;
    p.name = "noh";
    p.mesh = mesh::generate_rect({.x0 = 0, .x1 = 1, .y0 = 0, .y1 = 1,
                                  .nx = n, .ny = n});
    p.materials.materials = {eos::IdealGas{5.0 / 3.0}};
    size_fields(p);
    std::fill(p.rho.begin(), p.rho.end(), 1.0);
    std::fill(p.ein.begin(), p.ein.end(), cold_ein);
    for (Index node = 0; node < p.mesh.n_nodes(); ++node) {
        const auto ni = static_cast<std::size_t>(node);
        const Real x = p.mesh.x[ni];
        const Real y = p.mesh.y[ni];
        const Real r = std::hypot(x, y);
        if (r > tiny) {
            p.u[ni] = -x / r;
            p.v[ni] = -y / r;
        }
        // Apply the kinematic BCs to the initial condition: the wall-normal
        // components at the boundaries must start (and stay) zero, or the
        // first acceleration step would clamp them and destroy kinetic
        // energy non-physically.
        const auto mask = p.mesh.node_bc[ni];
        if (mask & mesh::bc::fix_u) p.u[ni] = 0.0;
        if (mask & mesh::bc::fix_v) p.v[ni] = 0.0;
    }
    // The reflective axes (x = 0, y = 0) keep their wall masks; the
    // generated masks on the outer walls stay too (the standard quarter-
    // plane setup — the outer-boundary starvation region never reaches
    // the analytic comparison window for t <= 0.6).
    p.hydro.dt_initial = 1e-4;
    p.t_end = Real(0.6);
    return p;
}

Problem sedov(Index n) {
    Problem p;
    p.name = "sedov";
    p.mesh = mesh::generate_rect({.x0 = 0, .x1 = Real(1.2), .y0 = 0,
                                  .y1 = Real(1.2), .nx = n, .ny = n});
    p.materials.materials = {eos::IdealGas{1.4}};
    size_fields(p);
    std::fill(p.rho.begin(), p.rho.end(), 1.0);
    std::fill(p.ein.begin(), p.ein.end(), cold_ein);
    // Deposit E = 0.25 (per quarter plane) as specific internal energy in
    // the origin cell.
    Index origin = 0;
    Real best = std::numeric_limits<Real>::max();
    for (Index c = 0; c < p.mesh.n_cells(); ++c) {
        const Real d = std::hypot(cell_cx(p.mesh, c), cell_cy(p.mesh, c));
        if (d < best) {
            best = d;
            origin = c;
        }
    }
    const Real cell_area = (Real(1.2) / n) * (Real(1.2) / n);
    p.ein[static_cast<std::size_t>(origin)] =
        Real(0.25) / (Real(1.0) * cell_area); // E / (rho * V)
    p.hydro.dt_initial = 1e-6; // the blast needs a gentle start
    p.t_end = Real(1.0);
    return p;
}

Problem saltzmann(Index nx, Index ny) {
    Problem p;
    p.name = "saltzmann";
    mesh::RectSpec spec{.x0 = 0, .x1 = 1, .y0 = 0, .y1 = Real(0.1),
                        .nx = nx, .ny = ny};
    spec.map = mesh::saltzmann_map;
    p.mesh = mesh::generate_rect(spec);
    p.materials.materials = {eos::IdealGas{5.0 / 3.0}};
    size_fields(p);
    std::fill(p.rho.begin(), p.rho.end(), 1.0);
    std::fill(p.ein.begin(), p.ein.end(), cold_ein);

    // The piston is the x = 0 wall: those nodes are driven at u = 1.
    for (Index node = 0; node < p.mesh.n_nodes(); ++node) {
        const auto ni = static_cast<std::size_t>(node);
        if (std::abs(p.mesh.x[ni]) < 1e-12) {
            p.mesh.node_bc[ni] = mesh::bc::piston;
            p.u[ni] = 1.0; // moving from t = 0
        }
    }
    p.hydro.piston_u = 1.0;
    p.hydro.piston_v = 0.0;
    // Sub-zonal pressures are the default hourglass control; the skewed
    // mesh is exactly what they are for (paper §III-B).
    p.hydro.hourglass.subzonal_pressures = true;
    p.hydro.dt_initial = 1e-5;
    p.hydro.dt_max = 1e-3; // keep the piston resolved in time
    p.t_end = Real(0.6);
    return p;
}

Problem by_name(const std::string& name, Index resolution) {
    if (name == "sod") return resolution > 0 ? sod(resolution) : sod();
    if (name == "noh") return resolution > 0 ? noh(resolution) : noh();
    if (name == "sedov") return resolution > 0 ? sedov(resolution) : sedov();
    if (name == "saltzmann")
        return resolution > 0 ? saltzmann(resolution, std::max<Index>(resolution / 10, 2))
                              : saltzmann();
    throw util::Error("unknown problem: " + name +
                      " (expected sod|noh|sedov|saltzmann)");
}

} // namespace bookleaf::setup
