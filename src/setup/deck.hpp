#pragma once
/// \file deck.hpp
/// BookLeaf-style input decks: INI-like sections of key = value pairs.
/// A deck names a base problem and overrides run controls, mirroring how
/// the reference code drives its four shipped test inputs.
///
/// Example:
/// ```
/// [problem]
/// name = sod
/// resolution = 200
///
/// [control]
/// t_end = 0.2
/// cfl_sf = 0.5
///
/// [ale]
/// mode = eulerian
/// ```

#include <istream>
#include <map>
#include <string>

#include "setup/problems.hpp"

namespace bookleaf::setup {

class Deck {
public:
    /// Parse from a stream; throws util::Error on malformed lines.
    static Deck parse(std::istream& in);
    static Deck parse_string(const std::string& text);
    static Deck parse_file(const std::string& path);

    [[nodiscard]] bool has(const std::string& section,
                           const std::string& key) const;
    [[nodiscard]] std::string get(const std::string& section,
                                  const std::string& key,
                                  const std::string& fallback) const;
    [[nodiscard]] Real get_real(const std::string& section,
                                const std::string& key, Real fallback) const;
    [[nodiscard]] int get_int(const std::string& section, const std::string& key,
                              int fallback) const;
    [[nodiscard]] bool get_bool(const std::string& section,
                                const std::string& key, bool fallback) const;

private:
    std::map<std::string, std::map<std::string, std::string>> sections_;
};

/// Build a fully-configured Problem from a deck: base problem from
/// [problem] name/resolution, then overrides from [control], [viscosity],
/// [hourglass] and [ale].
Problem make_problem(const Deck& deck);

} // namespace bookleaf::setup
