#pragma once
/// \file problems.hpp
/// The four standard shock-hydrodynamics test problems BookLeaf ships
/// with (paper §III-B): Sod's shock tube, the Noh implosion, the Sedov
/// blast and Saltzmann's piston.

#include <string>
#include <vector>

#include "ale/remap.hpp"
#include "ckpt/checkpoint.hpp"
#include "eos/eos.hpp"
#include "hydro/options.hpp"
#include "mesh/mesh.hpp"
#include "obs/telemetry.hpp"
#include "resil/resilience.hpp"
#include "typhon/fault.hpp"

namespace bookleaf::setup {

/// A fully-specified run: mesh, materials, initial condition, options.
struct Problem {
    std::string name;
    mesh::Mesh mesh;
    eos::MaterialTable materials;
    hydro::Options hydro;
    ale::Options ale;
    std::vector<Real> rho, ein; ///< per cell
    std::vector<Real> u, v;     ///< per node
    Real t_end = 0.0;
    /// CSV time-history output path (deck key `[io] history`); empty
    /// disables. The driver appends one row per step: step, t, dt, total
    /// mass, internal energy, kinetic energy.
    std::string history;
    /// Checkpoint cadence and restart source (deck section `[checkpoint]`:
    /// every_steps / at_time / prefix / restart_from / halt_after).
    ckpt::Config checkpoint;
    /// Supervised rank-failure recovery for the distributed driver (deck
    /// `[resilience]`: supervise / max_recoveries / snapshot_every / ring /
    /// spill_prefix / recovery_backoff_ms). The health guards live in
    /// hydro.guard (`[resilience]` guards / backoff / max_retries /
    /// regrow_cap) so the serial driver sees them too.
    resil::Supervision supervision;
    /// Deterministic fault plan for the distributed driver (deck
    /// `[faults]` — CI/testing: kill_rank/kill_step/kill_message/
    /// kill_attempt, delay_rank/delay_every, slow_rank/slow_us,
    /// fault_seed). Empty = no faults.
    typhon::FaultPlan faults;
    /// Run telemetry (deck `[telemetry]`: enabled / report / trace /
    /// summary / label). Inactive by default — telemetry-off runs are
    /// bitwise identical to builds without the obs layer.
    obs::Options telemetry;
};

/// Sod's shock tube [32] on a strip: (rho, P) = (1, 1) | (0.125, 0.1),
/// gamma = 1.4, diaphragm at x = 0.5, run to t = 0.2.
Problem sod(Index nx = 100, Index ny = 2);

/// Noh's implosion [33] on the quarter-plane [0,1]^2: gamma = 5/3,
/// rho = 1, cold gas, u = -r_hat, reflective axes; the shock sits at
/// r = t/3 with a rho = 16 plateau. Run to t = 0.6.
Problem noh(Index n = 50);

/// Sedov blast [34] on [0,1.2]^2 (quarter symmetry): gamma = 1.4,
/// internal energy 0.25 deposited in the origin cell; shock radius grows
/// as t^(1/2) in 2-D. Run to t = 1.0.
Problem sedov(Index n = 45);

/// Saltzmann's piston [35]: [0,1]x[0,0.1] on the classic skewed 100x10
/// mesh, gamma = 5/3, cold gas, piston driving from x = 0 at speed 1.
/// Strong-shock limit: density jump 4, shock speed 4/3. Run to t = 0.6.
Problem saltzmann(Index nx = 100, Index ny = 10);

/// Look up by name ("sod", "noh", "sedov", "saltzmann"); throws
/// util::Error for unknown names. `resolution` scales the default mesh
/// (<= 0 keeps the default).
Problem by_name(const std::string& name, Index resolution = 0);

} // namespace bookleaf::setup
