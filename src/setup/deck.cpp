#include "setup/deck.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/error.hpp"

namespace bookleaf::setup {

namespace {

std::string trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return {};
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/// Shared numeric-value parsing: the whole string must convert, and any
/// failure (bad syntax, trailing junk, out of range) becomes a deck error
/// naming the offending section.key.
template <typename Parse>
auto parse_numeric(const std::string& v, Parse parse, const char* kind,
                   const std::string& section, const std::string& key) {
    // Only the parse-failure exceptions are rewrapped (bad syntax and
    // range from stod/stoi, trailing junk from the require); anything
    // else — e.g. bad_alloc — keeps its own diagnosis.
    const auto error = [&] {
        return util::Error(std::string("deck: bad ") + kind + " value '" + v +
                           "' for " + section + "." + key);
    };
    try {
        std::size_t pos = 0;
        const auto r = parse(v, &pos);
        util::require(pos == v.size(), "trailing characters");
        return r;
    } catch (const std::invalid_argument&) {
        throw error();
    } catch (const std::out_of_range&) {
        throw error();
    } catch (const util::Error&) {
        throw error();
    }
}

} // namespace

Deck Deck::parse(std::istream& in) {
    Deck deck;
    std::string line;
    std::string section;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments (# or ;) and whitespace.
        if (const auto hash = line.find_first_of("#;"); hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty()) continue;
        if (line.front() == '[') {
            util::require(line.back() == ']',
                          "deck: unterminated section header at line " +
                              std::to_string(line_no));
            section = lower(trim(line.substr(1, line.size() - 2)));
            deck.sections_[section];
            continue;
        }
        const auto eq = line.find('=');
        util::require(eq != std::string::npos,
                      "deck: expected key = value at line " +
                          std::to_string(line_no));
        const auto key = lower(trim(line.substr(0, eq)));
        const auto value = trim(line.substr(eq + 1));
        util::require(!key.empty(), "deck: empty key at line " +
                                        std::to_string(line_no));
        deck.sections_[section][key] = value;
    }
    return deck;
}

Deck Deck::parse_string(const std::string& text) {
    std::istringstream in(text);
    return parse(in);
}

Deck Deck::parse_file(const std::string& path) {
    std::ifstream in(path);
    util::require(static_cast<bool>(in), "deck: cannot open " + path);
    return parse(in);
}

bool Deck::has(const std::string& section, const std::string& key) const {
    const auto s = sections_.find(lower(section));
    return s != sections_.end() && s->second.contains(lower(key));
}

std::string Deck::get(const std::string& section, const std::string& key,
                      const std::string& fallback) const {
    const auto s = sections_.find(lower(section));
    if (s == sections_.end()) return fallback;
    const auto k = s->second.find(lower(key));
    return k == s->second.end() ? fallback : k->second;
}

Real Deck::get_real(const std::string& section, const std::string& key,
                    Real fallback) const {
    const auto v = get(section, key, "");
    if (v.empty()) return fallback;
    return parse_numeric(
        v, [](const std::string& s, std::size_t* pos) { return std::stod(s, pos); },
        "real", section, key);
}

int Deck::get_int(const std::string& section, const std::string& key,
                  int fallback) const {
    const auto v = get(section, key, "");
    if (v.empty()) return fallback;
    return parse_numeric(
        v, [](const std::string& s, std::size_t* pos) { return std::stoi(s, pos); },
        "integer", section, key);
}

bool Deck::get_bool(const std::string& section, const std::string& key,
                    bool fallback) const {
    const auto v = lower(get(section, key, ""));
    if (v.empty()) return fallback;
    if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
    if (v == "false" || v == "no" || v == "off" || v == "0") return false;
    throw util::Error("deck: bad boolean value '" + v + "' for " + section +
                      "." + key);
}

Problem make_problem(const Deck& deck) {
    const auto name = deck.get("problem", "name", "sod");
    const auto resolution =
        static_cast<Index>(deck.get_int("problem", "resolution", 0));
    Problem p = by_name(name, resolution);

    // [control]
    p.t_end = deck.get_real("control", "t_end", p.t_end);
    p.hydro.dt_initial = deck.get_real("control", "dt_initial", p.hydro.dt_initial);
    p.hydro.dt_min = deck.get_real("control", "dt_min", p.hydro.dt_min);
    p.hydro.dt_max = deck.get_real("control", "dt_max", p.hydro.dt_max);
    p.hydro.cfl_sf = deck.get_real("control", "cfl_sf", p.hydro.cfl_sf);
    p.hydro.div_sf = deck.get_real("control", "div_sf", p.hydro.div_sf);
    p.hydro.dt_growth = deck.get_real("control", "dt_growth", p.hydro.dt_growth);

    // [viscosity]
    p.hydro.cq = deck.get_real("viscosity", "cq", p.hydro.cq);
    p.hydro.cl = deck.get_real("viscosity", "cl", p.hydro.cl);

    // [hourglass]
    p.hydro.hourglass.subzonal_pressures = deck.get_bool(
        "hourglass", "subzonal", p.hydro.hourglass.subzonal_pressures);
    p.hydro.hourglass.filter_kappa =
        deck.get_real("hourglass", "kappa", p.hydro.hourglass.filter_kappa);

    // [ale]
    const auto mode = deck.get("ale", "mode", "lagrange");
    if (mode == "lagrange")
        p.ale.mode = ale::Mode::lagrange;
    else if (mode == "ale")
        p.ale.mode = ale::Mode::ale;
    else if (mode == "eulerian")
        p.ale.mode = ale::Mode::eulerian;
    else
        throw util::Error("deck: bad ale mode '" + mode + "'");
    p.ale.frequency = deck.get_int("ale", "frequency", p.ale.frequency);
    p.ale.smoothing_passes =
        deck.get_int("ale", "smoothing_passes", p.ale.smoothing_passes);
    p.ale.smoothing_weight =
        deck.get_real("ale", "smoothing_weight", p.ale.smoothing_weight);
    p.ale.limit = deck.get_bool("ale", "limit", p.ale.limit);

    // [io]
    p.history = deck.get("io", "history", p.history);

    // [checkpoint]
    p.checkpoint.every_steps =
        deck.get_int("checkpoint", "every_steps", p.checkpoint.every_steps);
    p.checkpoint.at_time =
        deck.get_real("checkpoint", "at_time", p.checkpoint.at_time);
    p.checkpoint.prefix = deck.get("checkpoint", "prefix", p.checkpoint.prefix);
    p.checkpoint.restart_from =
        deck.get("checkpoint", "restart_from", p.checkpoint.restart_from);
    p.checkpoint.halt_after =
        deck.get_bool("checkpoint", "halt_after", p.checkpoint.halt_after);
    util::require(p.checkpoint.every_steps >= 0,
                  "deck: checkpoint.every_steps must be >= 0");

    // [resilience] — step health guards (serial + distributed) and the
    // distributed supervisor.
    auto& guard = p.hydro.guard;
    guard.enabled = deck.get_bool("resilience", "guards", guard.enabled);
    guard.backoff = deck.get_real("resilience", "backoff", guard.backoff);
    guard.max_retries =
        deck.get_int("resilience", "max_retries", guard.max_retries);
    guard.regrow_cap =
        deck.get_real("resilience", "regrow_cap", guard.regrow_cap);
    util::require(guard.backoff > 0.0 && guard.backoff < 1.0,
                  "deck: resilience.backoff must be in (0, 1)");
    util::require(guard.max_retries >= 0,
                  "deck: resilience.max_retries must be >= 0");
    util::require(guard.regrow_cap >= 1.0,
                  "deck: resilience.regrow_cap must be >= 1");
    auto& sup = p.supervision;
    sup.enabled = deck.get_bool("resilience", "supervise", sup.enabled);
    sup.max_recoveries =
        deck.get_int("resilience", "max_recoveries", sup.max_recoveries);
    sup.snapshot_every =
        deck.get_int("resilience", "snapshot_every", sup.snapshot_every);
    sup.ring_capacity = deck.get_int("resilience", "ring", sup.ring_capacity);
    sup.spill_prefix = deck.get("resilience", "spill_prefix", sup.spill_prefix);
    sup.backoff_ms =
        deck.get_int("resilience", "recovery_backoff_ms", sup.backoff_ms);
    util::require(sup.max_recoveries >= 0,
                  "deck: resilience.max_recoveries must be >= 0");
    util::require(sup.snapshot_every >= 0,
                  "deck: resilience.snapshot_every must be >= 0");
    util::require(sup.ring_capacity >= 1,
                  "deck: resilience.ring must be >= 1");
    util::require(sup.backoff_ms >= 0,
                  "deck: resilience.recovery_backoff_ms must be >= 0");

    // [faults] — scripted transport faults (CI / testing decks).
    const int kill_rank = deck.get_int("faults", "kill_rank", -1);
    if (kill_rank >= 0) {
        typhon::FaultPlan::Kill kill;
        kill.rank = kill_rank;
        kill.at_step = deck.get_int("faults", "kill_step", -1);
        kill.at_message = deck.get_int("faults", "kill_message", -1);
        kill.attempt = deck.get_int("faults", "kill_attempt", 0);
        util::require(kill.at_step >= 0 || kill.at_message >= 1,
                      "deck: faults.kill_rank needs kill_step >= 0 or "
                      "kill_message >= 1");
        util::require(kill.attempt >= 0,
                      "deck: faults.kill_attempt must be >= 0");
        p.faults.kills.push_back(kill);
    }
    const int delay_rank = deck.get_int("faults", "delay_rank", -1);
    if (delay_rank >= 0) {
        typhon::FaultPlan::Delay delay;
        delay.rank = delay_rank;
        delay.every = deck.get_int("faults", "delay_every", 3);
        util::require(delay.every >= 1,
                      "deck: faults.delay_every must be >= 1");
        p.faults.delays.push_back(delay);
    }
    const int slow_rank = deck.get_int("faults", "slow_rank", -1);
    if (slow_rank >= 0) {
        typhon::FaultPlan::Slow slow;
        slow.rank = slow_rank;
        slow.microseconds = deck.get_int("faults", "slow_us", 50);
        util::require(slow.microseconds >= 0,
                      "deck: faults.slow_us must be >= 0");
        p.faults.slows.push_back(slow);
    }
    p.faults.seed = static_cast<std::uint64_t>(
        deck.get_int("faults", "fault_seed",
                     static_cast<int>(p.faults.seed)));

    // [telemetry] — run-scoped observability (obs/). Any sink key
    // activates collection; `enabled` alone collects without writing.
    p.telemetry.enabled = deck.get_bool("telemetry", "enabled",
                                        p.telemetry.enabled);
    p.telemetry.report = deck.get("telemetry", "report", p.telemetry.report);
    p.telemetry.trace = deck.get("telemetry", "trace", p.telemetry.trace);
    p.telemetry.summary = deck.get_bool("telemetry", "summary",
                                        p.telemetry.summary);
    p.telemetry.label = deck.get("telemetry", "label", p.name);
    // Live monitoring (obs/live): window cadence, NDJSON stream path and
    // the hang-detection watchdog. window_steps > 0 turns the live layer
    // on; the watchdog additionally needs watchdog_factor > 0.
    p.telemetry.window_steps = deck.get_int(
        "telemetry", "window_steps",
        static_cast<int>(p.telemetry.window_steps));
    util::require(p.telemetry.window_steps >= 0,
                  "deck: telemetry.window_steps must be >= 0");
    p.telemetry.live = deck.get("telemetry", "live", p.telemetry.live);
    p.telemetry.watchdog_factor =
        deck.get_real("telemetry", "watchdog_factor",
                      static_cast<Real>(p.telemetry.watchdog_factor));
    util::require(p.telemetry.watchdog_factor >= 0.0,
                  "deck: telemetry.watchdog_factor must be >= 0");
    p.telemetry.watchdog_grace_ms = deck.get_int(
        "telemetry", "watchdog_grace_ms", p.telemetry.watchdog_grace_ms);
    util::require(p.telemetry.watchdog_grace_ms >= 0,
                  "deck: telemetry.watchdog_grace_ms must be >= 0");
    p.telemetry.watchdog_escalate = deck.get_bool(
        "telemetry", "watchdog_escalate", p.telemetry.watchdog_escalate);
    p.telemetry.max_steps = deck.get_int(
        "telemetry", "max_steps", static_cast<int>(p.telemetry.max_steps));
    util::require(p.telemetry.max_steps >= 0,
                  "deck: telemetry.max_steps must be >= 0");

    return p;
}

} // namespace bookleaf::setup
