#pragma once
/// \file device.hpp
/// Simulated accelerator.
///
/// The paper evaluates BookLeaf on NVIDIA P100/V100 GPUs; none is
/// available here, so the GPU execution model is reproduced as an
/// explicit simulator with a virtual clock. Every mechanism the paper
/// discusses is a *code path*, not a constant:
///   * host/device memory spaces with PCIe-like transfer costs
///     (latency + bytes/bandwidth),
///   * per-launch overhead,
///   * optional per-launch dope-vector transfers (the CUDA Fortran
///     assumed-size-array issue of §IV-D),
///   * a register-pressure occupancy factor (§V-B: the CUDA viscosity
///     kernel is slower than the OpenMP-offload one because of register
///     usage),
///   * roofline kernel timing: max(flops / rate, bytes / bandwidth).

#include <cstddef>
#include <string>

#include "util/types.hpp"

namespace bookleaf::device {

/// PCIe-like transfer cost model.
struct TransferModel {
    double latency_s = 10e-6;       ///< per-transfer setup
    double bandwidth_bps = 12.0e9;  ///< effective host<->device bytes/s
};

/// Kernel-launch cost model.
struct LaunchModel {
    double launch_latency_s = 8e-6; ///< driver + dispatch per launch
    /// Bytes of array metadata shipped per array per launch when the
    /// Fortran runtime transfers dope vectors (0 = fixed-size arrays).
    double dope_vector_bytes = 0.0;
};

/// Simulated device with a virtual clock. All costs are charged in
/// virtual seconds; nothing sleeps.
class Device {
public:
    Device(std::string name, double flop_rate, double mem_bandwidth_bps,
           TransferModel transfer = {}, LaunchModel launch = {})
        : name_(std::move(name)), flop_rate_(flop_rate),
          mem_bandwidth_(mem_bandwidth_bps), transfer_(transfer),
          launch_(launch) {}

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] double now() const { return clock_s_; }

    /// Host -> device copy; returns the charged seconds.
    double copy_to_device(std::size_t bytes);
    /// Device -> host copy; returns the charged seconds.
    double copy_to_host(std::size_t bytes);

    /// Launch a kernel over n_elems elements with the given per-element
    /// work. `occupancy_factor` >= 1 derates throughput (register
    /// pressure); `n_arrays` counts dope vectors when enabled. Returns the
    /// charged seconds.
    double launch(double flops_per_elem, double bytes_per_elem, double n_elems,
                  int n_arrays = 8, double occupancy_factor = 1.0);

    // --- accumulated statistics -------------------------------------------
    [[nodiscard]] double transfer_seconds() const { return transfer_s_; }
    [[nodiscard]] double compute_seconds() const { return compute_s_; }
    [[nodiscard]] double overhead_seconds() const { return overhead_s_; }
    [[nodiscard]] long launches() const { return launches_; }
    [[nodiscard]] std::size_t bytes_moved() const { return bytes_moved_; }

    void reset();

private:
    std::string name_;
    double flop_rate_;
    double mem_bandwidth_;
    TransferModel transfer_;
    LaunchModel launch_;

    double clock_s_ = 0.0;
    double transfer_s_ = 0.0;
    double compute_s_ = 0.0;
    double overhead_s_ = 0.0;
    long launches_ = 0;
    std::size_t bytes_moved_ = 0;
};

} // namespace bookleaf::device
