#include "device/device.hpp"

#include <algorithm>

namespace bookleaf::device {

double Device::copy_to_device(std::size_t bytes) {
    const double t =
        transfer_.latency_s + static_cast<double>(bytes) / transfer_.bandwidth_bps;
    clock_s_ += t;
    transfer_s_ += t;
    bytes_moved_ += bytes;
    return t;
}

double Device::copy_to_host(std::size_t bytes) {
    const double t =
        transfer_.latency_s + static_cast<double>(bytes) / transfer_.bandwidth_bps;
    clock_s_ += t;
    transfer_s_ += t;
    bytes_moved_ += bytes;
    return t;
}

double Device::launch(double flops_per_elem, double bytes_per_elem,
                      double n_elems, int n_arrays, double occupancy_factor) {
    // Roofline: compute or bandwidth bound, derated by occupancy.
    const double flops = flops_per_elem * n_elems;
    const double bytes = bytes_per_elem * n_elems;
    const double t_compute =
        std::max(flops / flop_rate_, bytes / mem_bandwidth_) * occupancy_factor;

    // Fixed launch overhead plus optional dope-vector traffic (§IV-D: the
    // Fortran runtime ships one descriptor per assumed-size array per
    // launch — each descriptor is its own small synchronous transfer, so
    // the *latency* dominates, which is exactly why 72-96 bytes per array
    // "adds up to a significant time").
    double t_overhead = launch_.launch_latency_s;
    if (launch_.dope_vector_bytes > 0.0 && n_arrays > 0)
        t_overhead += n_arrays * (transfer_.latency_s +
                                  launch_.dope_vector_bytes /
                                      transfer_.bandwidth_bps);

    clock_s_ += t_compute + t_overhead;
    compute_s_ += t_compute;
    overhead_s_ += t_overhead;
    ++launches_;
    return t_compute + t_overhead;
}

void Device::reset() {
    clock_s_ = transfer_s_ = compute_s_ = overhead_s_ = 0.0;
    launches_ = 0;
    bytes_moved_ = 0;
}

} // namespace bookleaf::device
