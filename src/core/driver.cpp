#include "core/driver.hpp"

#include "util/csr.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace bookleaf::core {

Hydro::Hydro(setup::Problem problem) : problem_(std::move(problem)) {
    state_ = hydro::allocate(problem_.mesh);
    state_.rho = problem_.rho;
    state_.ein = problem_.ein;
    state_.u = problem_.u;
    state_.v = problem_.v;
    hydro::initialise(problem_.mesh, problem_.materials, state_);

    ctx_.mesh = &problem_.mesh;
    ctx_.materials = &problem_.materials;
    ctx_.opts = problem_.hydro;
    ctx_.profiler = &profiler_;
    dt_ = problem_.hydro.dt_initial;

    if (!problem_.history.empty()) {
        history_ = std::make_unique<io::CsvWriter>(
            problem_.history,
            std::vector<std::string>{"step", "t", "dt", "mass",
                                     "internal_energy", "kinetic_energy"});
        write_history_row(0.0);
    }
}

void Hydro::write_history_row(Real dt) {
    const auto tot = totals();
    history_->row({static_cast<Real>(steps_), t_, dt, tot.mass,
                   tot.internal_energy, tot.kinetic_energy});
}

void Hydro::set_assembly(par::Assembly assembly) {
    if (assembly == par::Assembly::colored_scatter &&
        ctx_.scatter_coloring == nullptr) {
        coloring_ = par::build_scatter_coloring(problem_.mesh);
        ctx_.scatter_coloring = &coloring_;
    }
    ctx_.exec.assembly = assembly;
    chosen_assembly_ = assembly;
    assembly_chosen_ = true;
}

StepInfo Hydro::step() { return step_clamped(std::nullopt); }

StepInfo Hydro::step_clamped(std::optional<Real> t_end) {
    StepInfo info;
    // Algorithm 1: the very first step uses dt_initial.
    if (steps_ > 0) {
        const auto dt_result = hydro::getdt(ctx_, state_, dt_);
        dt_ = dt_result.dt;
        info.dt_cell = dt_result.cell;
        info.dt_reason = dt_result.reason;
    } else {
        info.dt_reason = "initial";
    }
    // The t_end clamp applies to the *used* dt only. `dt_` keeps the
    // unclamped controller value as the growth reference: storing the
    // clamped value would growth-limit a follow-on run(t2) after run(t1)
    // from the arbitrarily tiny final clamped step.
    const auto clamped = t_end ? hydro::clamp_to_t_end(t_, dt_, *t_end)
                               : hydro::ClampedDt{dt_, dt_};
    const Real dt = clamped.used;
    if (dt != clamped.unclamped) info.dt_reason = "t_end";

    hydro::lagstep(ctx_, state_, dt);

    if (problem_.ale.mode != ale::Mode::lagrange) {
        const bool due = problem_.ale.mode == ale::Mode::eulerian ||
                         (steps_ + 1) % problem_.ale.frequency == 0;
        if (due) {
            ale::alestep(ctx_, state_, problem_.ale, ale_work_);
            info.remapped = true;
        }
    }

    t_ += dt;
    ++steps_;
    if (history_) write_history_row(dt);
    info.step = steps_;
    info.t = t_;
    info.dt = dt;
    util::log_debug("step ", steps_, " t=", t_, " dt=", dt, " (",
                    info.dt_reason, ")");
    return info;
}

RunSummary Hydro::run(std::optional<Real> t_end_opt, int max_steps) {
    const Real t_end = t_end_opt.value_or(problem_.t_end);
    RunSummary summary;
    summary.initial = totals();
    const util::Timer timer;
    while (t_ < t_end * (Real(1.0) - eps) && steps_ < max_steps)
        step_clamped(t_end);
    summary.steps = steps_;
    summary.t_final = t_;
    summary.wall_seconds = timer.elapsed();
    summary.final_ = totals();
    return summary;
}

} // namespace bookleaf::core
