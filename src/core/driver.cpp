#include "core/driver.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "obs/critical_path.hpp"
#include "perfmodel/calibrate.hpp"
#include "util/csr.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace bookleaf::core {

namespace {

const std::vector<std::string> history_header = {
    "step", "t", "dt", "mass", "internal_energy", "kinetic_energy"};

std::string history_header_line() {
    std::string line;
    for (const auto& col : history_header)
        line += (line.empty() ? "" : ",") + col;
    return line;
}

} // namespace

Hydro::Hydro(setup::Problem problem) : problem_(std::move(problem)) {
    state_ = hydro::allocate(problem_.mesh);
    state_.rho.assign(problem_.rho.begin(), problem_.rho.end());
    state_.ein.assign(problem_.ein.begin(), problem_.ein.end());
    state_.u.assign(problem_.u.begin(), problem_.u.end());
    state_.v.assign(problem_.v.begin(), problem_.v.end());
    hydro::initialise(problem_.mesh, problem_.materials, state_);

    init_context();
    dt_ = problem_.hydro.dt_initial;
    open_history_fresh();
}

Hydro::Hydro(setup::Problem problem, const ckpt::Snapshot& snapshot)
    : problem_(std::move(problem)) {
    state_ = hydro::allocate(problem_.mesh);
    ckpt::restore(problem_.mesh, problem_.materials, snapshot, state_);

    init_context();
    t_ = snapshot.t;
    dt_ = snapshot.dt;
    regrow_limit_ = snapshot.regrow;
    steps_ = static_cast<int>(snapshot.steps);
    // (An at_time trigger the snapshot already passed cannot re-fire:
    // Config::due needs the step to cross it, and t only grows.)
    continue_history();
}

void Hydro::init_context() {
    ctx_.mesh = &problem_.mesh;
    ctx_.materials = &problem_.materials;
    ctx_.opts = problem_.hydro;
    ctx_.profiler = &profiler_;
    telemetry_ = problem_.telemetry;
    if (telemetry_.active()) {
        telemetry_epoch_ = std::chrono::steady_clock::now();
        if (telemetry_.want_trace())
            profiler_.set_trace(&trace_, telemetry_epoch_);
        // Attach the graph-run collector so every task-graph execution
        // exports its spans for attribution. Telemetry-off runs keep the
        // null default and the executor records nothing.
        graph_log_.epoch = telemetry_epoch_;
        ctx_.graph_log = &graph_log_;
        telemetry_steps_ = obs::StepRing(telemetry_.max_steps);
        if (telemetry_.live_active())
            window_folder_.emplace(0, telemetry_.window_steps, &profiler_);
        if (!telemetry_.live.empty()) {
            live_stream_.emplace(telemetry_.live);
            obs::Json ev;
            ev["event"] = "run_start";
            ev["schema"] = "bookleaf.live/1";
            ev["label"] = telemetry_.label.empty() ? problem_.name
                                                   : telemetry_.label;
            ev["n_ranks"] = 1;
            ev["window_steps"] =
                static_cast<long long>(telemetry_.window_steps);
            ev["watchdog_factor"] = telemetry_.watchdog_factor;
            live_stream_->emit(std::move(ev));
        }
    }
}

void Hydro::open_history_fresh() {
    if (problem_.history.empty()) return;
    history_ = std::make_unique<io::CsvWriter>(problem_.history,
                                               history_header);
    write_history_row(0.0);
}

/// Restart-aware history continuation: keep the existing header and every
/// row up to (and including) the checkpointed step, drop rows the crashed
/// run wrote past it (including a crash-truncated partial final line),
/// then append — so after the restored run finishes, the file is
/// byte-identical to the uninterrupted run's history. The last kept row
/// must be the checkpointed step (the last-step handshake — guaranteed
/// reachable because maybe_checkpoint flushes the history before writing
/// the snapshot); a file that never reached it pairs with a different
/// checkpoint and is rejected. A missing/empty file starts fresh with a
/// restored-state baseline row instead.
void Hydro::continue_history() {
    if (problem_.history.empty()) return;

    std::ifstream in(problem_.history);
    std::vector<std::string> raw;
    if (in) {
        std::string line;
        while (std::getline(in, line)) raw.push_back(line);
    }
    in.close();

    std::vector<std::string> kept;
    bool dropped = false;
    if (!raw.empty()) {
        util::require(raw.front() == history_header_line(),
                      "history restart: header mismatch in " +
                          problem_.history);
        kept.push_back(raw.front());
        for (std::size_t i = 1; i < raw.size(); ++i) {
            const auto& line = raw[i];
            if (line.empty()) continue;
            std::istringstream row(line);
            Real step = -1.0;
            row >> step;
            if (!row || std::count(line.begin(), line.end(), ',') !=
                            static_cast<long>(history_header.size()) - 1) {
                // A malformed *final* line is what a crash mid-write
                // leaves; discard it. Malformed rows elsewhere mean the
                // file is not this run's history.
                util::require(i == raw.size() - 1,
                              "history restart: malformed row in " +
                                  problem_.history);
                dropped = true;
                continue;
            }
            if (step > static_cast<Real>(steps_) + Real(0.5)) {
                dropped = true; // written past the checkpoint; discard
                continue;
            }
            kept.push_back(line);
        }
    }

    if (kept.size() <= 1) {
        // No prior rows survive: start a fresh history whose baseline is
        // the restored state (there is nothing to duplicate).
        open_history_fresh();
        return;
    }
    std::istringstream last(kept.back());
    Real last_step = -1.0;
    last >> last_step;
    util::require(last_step == static_cast<Real>(steps_),
                  "history restart: " + problem_.history + " ends at step " +
                      std::to_string(static_cast<long>(last_step)) +
                      ", checkpoint is at step " + std::to_string(steps_) +
                      " (stale or mismatched history file)");
    if (dropped) {
        std::ofstream rewrite(problem_.history, std::ios::trunc);
        util::require(static_cast<bool>(rewrite),
                      "history restart: cannot rewrite " + problem_.history);
        for (const auto& line : kept) rewrite << line << '\n';
    }
    history_ = std::make_unique<io::CsvWriter>(problem_.history,
                                               history_header,
                                               io::CsvWriter::Mode::append);
}

void Hydro::write_history_row(Real dt) {
    const auto tot = totals();
    history_->row({static_cast<Real>(steps_), t_, dt, tot.mass,
                   tot.internal_energy, tot.kinetic_energy});
}

/// Write a checkpoint if the deck cadence (ckpt::Config::due — the one
/// trigger definition, shared with the distributed driver) says one is
/// due after the step that advanced t_before -> t_. Checkpoints never
/// perturb the trajectory: they are written after completed natural
/// steps only. The history CSV is flushed first so the on-disk rows are
/// durable up to the checkpointed step — what the restore handshake
/// requires of a file recovered from a crash.
void Hydro::maybe_checkpoint(Real t_before) {
    const auto& cfg = problem_.checkpoint;
    if (!cfg.enabled() || !cfg.due(steps_, t_before, t_)) return;
    if (history_) history_->flush();
    save(cfg.path_for(steps_));
    if (cfg.halt_after) halt_requested_ = true;
}

void Hydro::set_assembly(par::Assembly assembly) {
    if (assembly == par::Assembly::colored_scatter &&
        ctx_.scatter_coloring == nullptr) {
        coloring_ = par::build_scatter_coloring(problem_.mesh);
        ctx_.scatter_coloring = &coloring_;
    }
    ctx_.exec.assembly = assembly;
    chosen_assembly_ = assembly;
    assembly_chosen_ = true;
    // The step graph's acceleration tasks encode the gather assembly;
    // rebuild (or drop) the graph under the new strategy.
    stepgraph_.reset();
    ctx_.stepgraph = nullptr;
}

/// Build (or tear down) the Lagrangian-step task graph to match the
/// current execution policy. The graph applies when a pool is attached,
/// the schedule is taskgraph and the assembly is the default gather (the
/// scatter ablations deliberately keep the reference fork-join shape).
void Hydro::ensure_stepgraph() {
    const bool want = ctx_.exec.threaded() &&
                      ctx_.exec.schedule == par::Schedule::taskgraph &&
                      ctx_.exec.assembly == par::Assembly::gather;
    if (!want) {
        stepgraph_.reset();
        ctx_.stepgraph = nullptr;
        return;
    }
    if (!stepgraph_)
        stepgraph_ = std::make_unique<hydro::StepGraph>(ctx_, state_);
    ctx_.stepgraph = stepgraph_.get();
}

StepInfo Hydro::step() { return step_clamped(std::nullopt); }

StepInfo Hydro::step_clamped(std::optional<Real> t_end) {
    const bool telemetry = telemetry_.active();
    const auto step_t0 = telemetry ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
    StepInfo info;
    int retries = 0;
    const auto& guard = ctx_.opts.guard;
    // Algorithm 1: the very first step uses dt_initial.
    if (steps_ > 0) {
        const auto dt_result = hydro::getdt(ctx_, state_, dt_);
        dt_ = dt_result.dt;
        info.dt_cell = dt_result.cell;
        info.dt_reason = dt_result.reason;
        // Re-growth ceiling after a health-guard backoff: binds the
        // controller until its own value ducks back under, then clears.
        // (The distributed driver replicates this sequence exactly; the
        // cap commutes with the min-reduction because every rank holds
        // the same limit.)
        if (regrow_limit_ > 0.0) {
            if (dt_ > regrow_limit_) {
                dt_ = regrow_limit_;
                info.dt_cell = no_index;
                info.dt_reason = "regrow";
                regrow_limit_ *= guard.regrow_cap;
            } else {
                regrow_limit_ = 0.0;
            }
        }
    } else {
        info.dt_reason = "initial";
    }
    // The t_end clamp applies to the *used* dt only. `dt_` keeps the
    // unclamped controller value as the growth reference: storing the
    // clamped value would growth-limit a follow-on run(t2) after run(t1)
    // from the arbitrarily tiny final clamped step.
    const auto clamped = t_end ? hydro::clamp_to_t_end(t_, dt_, *t_end)
                               : hydro::ClampedDt{dt_, dt_};
    Real dt = clamped.used;
    if (dt != clamped.unclamped) info.dt_reason = "t_end";

    ensure_stepgraph();
    if (guard.enabled) hydro::capture_step(state_, step_backup_);
    hydro::lagstep(ctx_, state_, dt);
    if (guard.enabled) {
        // Health-guard retry: a step that produced non-finite or
        // non-physical fields is rolled back and retaken with a smaller
        // dt. The accepted dt becomes the growth reference and arms the
        // re-growth ceiling, so the controller climbs back gradually.
        while (!hydro::step_healthy(state_, state_.n_cells())) {
            util::require(retries < guard.max_retries,
                          "hydro: step " + std::to_string(steps_ + 1) +
                              " rejected by health guards after " +
                              std::to_string(retries) + " dt-backoff retries");
            ++retries;
            const Real dt_try = dt * guard.backoff;
            util::require(dt_try >= ctx_.opts.dt_min,
                          "hydro: health-guard backoff drove dt below dt_min "
                          "at step " + std::to_string(steps_ + 1));
            hydro::restore_step(ctx_, state_, step_backup_);
            dt = dt_try;
            hydro::lagstep(ctx_, state_, dt);
        }
        if (retries > 0) {
            dt_ = dt;
            regrow_limit_ = dt * guard.regrow_cap;
            info.dt_cell = no_index;
            info.dt_reason = "health-retry";
        }
    }

    if (problem_.ale.mode != ale::Mode::lagrange) {
        const bool due = problem_.ale.mode == ale::Mode::eulerian ||
                         (steps_ + 1) % problem_.ale.frequency == 0;
        if (due) {
            ale::alestep(ctx_, state_, problem_.ale, ale_work_);
            info.remapped = true;
        }
    }

    const Real t_before = t_;
    t_ += dt;
    ++steps_;
    if (history_) write_history_row(dt);
    maybe_checkpoint(t_before);
    info.step = steps_;
    info.t = t_;
    info.dt = dt;
    if (telemetry) {
        // Recorded after the step committed: telemetry reads state, never
        // feeds back into it (the passive contract).
        obs::StepRecord rec;
        rec.step = steps_ - 1;
        rec.t = t_;
        rec.dt = dt;
        rec.dt_local = dt;
        rec.dt_reason = obs::dt_reason_code(info.dt_reason);
        rec.start_us = std::chrono::duration<double, std::micro>(
                           step_t0 - telemetry_epoch_)
                           .count();
        rec.wall_us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - step_t0)
                          .count();
        rec.retries = retries;
        rec.remapped = info.remapped;
        obs::attribute_step(graph_log_, rec, attrib_,
                            telemetry_.want_trace() ? &critical_ : nullptr);
        telemetry_steps_.push(rec);
        if (window_folder_) {
            if (auto w = window_folder_->add(rec)) {
                telemetry_windows_.push_back(*w);
                if (live_stream_) {
                    obs::Json ev;
                    ev["event"] = "window";
                    ev["record"] = obs::window_json(*w);
                    live_stream_->emit(std::move(ev));
                    const auto imb = obs::window_imbalance({*w});
                    obs::Json iev;
                    iev["event"] = "imbalance";
                    iev["window"] = static_cast<long long>(w->index);
                    iev["max_over_mean"] = imb.max_over_mean;
                    iev["mean_rank_s"] = imb.mean_rank_s;
                    iev["max_rank_s"] = imb.max_rank_s;
                    iev["slowest_rank"] = imb.slowest_rank;
                    live_stream_->emit(std::move(iev));
                }
            }
        }
    }
    util::log_debug("step ", steps_, " t=", t_, " dt=", dt, " (",
                    info.dt_reason, ")");
    return info;
}

obs::RunReport Hydro::telemetry_report() const {
    obs::RunReport report;
    report.problem = problem_.name;
    report.label = telemetry_.label.empty() ? problem_.name : telemetry_.label;
    report.mode = "serial";
    report.n_ranks = 1;
    report.steps = steps_;
    report.t_final = t_;
    report.wall_s = run_wall_s_;
    report.config.schedule =
        ctx_.exec.schedule == par::Schedule::taskgraph ? "taskgraph"
                                                       : "forkjoin";
    report.config.task_block = ctx_.exec.task_block;
    report.config.grain = ctx_.exec.grain;
    report.config.n_threads = ctx_.exec.width();
    report.config.n_ranks = 1;
    report.work = perfmodel::telemetry_work_model(ctx_.exec.width());
    obs::RankRecord rank;
    rank.rank = 0;
    rank.steps = telemetry_steps_.take();
    rank.evicted = telemetry_steps_.evicted();
    rank.windows = telemetry_windows_;
    rank.kernels = profiler_.snapshot();
    rank.attrib = attrib_;
    rank.trace = trace_;
    rank.critical = critical_;
    report.ranks.push_back(std::move(rank));
    report.imbalance = obs::imbalance_of(report.ranks);
    report.anomalies = obs::detect_anomalies(report, telemetry_.anomaly_factor);
    return report;
}

void Hydro::write_telemetry() const {
    if (!telemetry_.active()) return;
    obs::write_outputs(telemetry_, telemetry_report());
}

RunSummary Hydro::run(std::optional<Real> t_end_opt, int max_steps) {
    const Real t_end = t_end_opt.value_or(problem_.t_end);
    RunSummary summary;
    summary.initial = totals();
    const util::Timer timer;
    halt_requested_ = false;
    while (t_ < t_end * (Real(1.0) - eps) && steps_ < max_steps &&
           !halt_requested_)
        step_clamped(t_end);
    summary.steps = steps_;
    summary.t_final = t_;
    summary.wall_seconds = timer.elapsed();
    summary.final_ = totals();
    if (telemetry_.active()) {
        run_wall_s_ += summary.wall_seconds;
        write_telemetry();
        if (live_stream_) {
            obs::Json ev;
            ev["event"] = "run_end";
            ev["steps"] = steps_;
            ev["t_final"] = t_;
            ev["wall_s"] = run_wall_s_;
            ev["windows"] =
                static_cast<long long>(telemetry_windows_.size());
            ev["stalls"] = 0;
            ev["recoveries"] = 0;
            live_stream_->emit(std::move(ev));
        }
    }
    return summary;
}

} // namespace bookleaf::core
