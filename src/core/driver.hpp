#pragma once
/// \file driver.hpp
/// The BookLeaf driver — Algorithm 1 of the paper:
///   loop { if after first step: dt = GETDT(dt); LAGSTEP(dt);
///          if remap due: ALESTEP; }
/// This is the single-process driver (the distributed variant lives in
/// dist/). It owns the state, the kernel context, the ALE workspace and
/// the per-run profiler.

#include <memory>
#include <optional>

#include "ale/remap.hpp"
#include "ckpt/checkpoint.hpp"
#include "hydro/kernels.hpp"
#include "hydro/stepgraph.hpp"
#include "io/csv.hpp"
#include "obs/live.hpp"
#include "obs/telemetry.hpp"
#include "par/task_graph.hpp"
#include "setup/problems.hpp"

namespace bookleaf::core {

/// Per-step record (what the reference code prints as its step banner).
struct StepInfo {
    int step = 0;
    Real t = 0.0;
    Real dt = 0.0;
    Index dt_cell = no_index;
    std::string_view dt_reason;
    bool remapped = false;
};

/// Outcome of a full run.
struct RunSummary {
    int steps = 0;
    Real t_final = 0.0;
    Real wall_seconds = 0.0;
    hydro::Totals initial, final_;
};

class Hydro {
public:
    /// Takes ownership of the problem (mesh, materials, IC, options).
    explicit Hydro(setup::Problem problem);

    /// Restore from a checkpoint: the problem supplies the mesh, materials
    /// and options (it must be the deck that produced the snapshot — the
    /// mesh hash is validated), the snapshot supplies the state and the
    /// clock. Continuation is bitwise: stepping the restored driver to
    /// t_end reproduces the uninterrupted run's fields and conservation
    /// totals bit for bit. An `[io] history` file is continued in place —
    /// rows past the checkpointed step are dropped, the header is kept,
    /// and new rows append (the file ends byte-identical to an
    /// uninterrupted run's history).
    Hydro(setup::Problem problem, const ckpt::Snapshot& snapshot);

    /// Optional execution policy (threading) — set before stepping. An
    /// assembly strategy chosen via set_assembly() survives this call
    /// (set_exec configures the pool, not the assembly ablation). Any
    /// previously built step graph is invalidated; the next step rebuilds
    /// it if the new policy wants one.
    void set_exec(par::Exec exec) {
        ctx_.exec = exec;
        if (assembly_chosen_) ctx_.exec.assembly = chosen_assembly_;
        stepgraph_.reset();
        ctx_.stepgraph = nullptr;
    }
    /// Select the acceleration nodal-assembly strategy (default: gather).
    /// `colored_scatter` builds the conflict colouring on first use.
    void set_assembly(par::Assembly assembly);
    /// Enable colour-parallel acceleration scatter (builds the colouring).
    void enable_colored_scatter() {
        set_assembly(par::Assembly::colored_scatter);
    }

    /// One step of Algorithm 1. Returns the step record.
    StepInfo step();

    /// Run until t_end (default: the problem's t_end) or max_steps — or,
    /// with `[checkpoint] halt_after`, until a checkpoint is written.
    RunSummary run(std::optional<Real> t_end = std::nullopt,
                   int max_steps = std::numeric_limits<int>::max());

    /// Capture the current state + clock as a Snapshot (including the
    /// unclamped dt growth reference and the health-guard re-growth
    /// ceiling).
    [[nodiscard]] ckpt::Snapshot snapshot() const {
        return ckpt::capture(problem_.mesh, state_, t_, dt_, steps_,
                             regrow_limit_);
    }
    /// Write a checkpoint of the current state to `path`.
    void save(const std::string& path) const { ckpt::write(path, snapshot()); }
    /// True once a `[checkpoint] halt_after` checkpoint has been written:
    /// run() stops there, and step()-driven loops should too.
    [[nodiscard]] bool halted() const { return halt_requested_; }

    /// Build the telemetry run report from everything recorded so far
    /// (mode "serial", one rank record). Valid whenever telemetry is
    /// active — run() need not have finished.
    [[nodiscard]] obs::RunReport telemetry_report() const;
    /// Apply the problem's `[telemetry]` sinks (report/trace/summary).
    /// run() calls this at the end of every run; safe to call again after
    /// further stepping (files are overwritten whole).
    void write_telemetry() const;

    [[nodiscard]] const hydro::State& state() const { return state_; }
    [[nodiscard]] hydro::State& state() { return state_; }
    [[nodiscard]] const mesh::Mesh& mesh() const { return problem_.mesh; }
    [[nodiscard]] const setup::Problem& problem() const { return problem_; }
    [[nodiscard]] const util::Profiler& profiler() const { return profiler_; }
    [[nodiscard]] util::Profiler& profiler() { return profiler_; }
    [[nodiscard]] Real time() const { return t_; }
    [[nodiscard]] int steps() const { return steps_; }
    [[nodiscard]] hydro::Totals totals() const {
        return hydro::totals(problem_.mesh, state_);
    }
    /// Monitoring windows folded so far (empty unless `[telemetry]
    /// window_steps` > 0) — the serial counterpart of the distributed
    /// driver's live window stream.
    [[nodiscard]] const std::vector<obs::WindowRecord>& windows() const {
        return telemetry_windows_;
    }

private:
    StepInfo step_clamped(std::optional<Real> t_end);
    void write_history_row(Real dt);
    void init_context();
    void ensure_stepgraph();
    void open_history_fresh();
    void continue_history();
    void maybe_checkpoint(Real t_before);

    setup::Problem problem_;
    hydro::State state_;
    hydro::Context ctx_;
    /// Lagrangian-step task graph (Schedule::taskgraph with a pool and
    /// gather assembly); built lazily on the first step after set_exec.
    std::unique_ptr<hydro::StepGraph> stepgraph_;
    ale::Workspace ale_work_;
    util::Profiler profiler_;
    /// Time-history CSV (deck `[io] history = <path>`): one row per step
    /// of t, dt, total mass, internal and kinetic energy, plus a step-0
    /// baseline row. Null when disabled.
    std::unique_ptr<io::CsvWriter> history_;
    par::Coloring coloring_;
    par::Assembly chosen_assembly_ = par::Assembly::gather;
    bool assembly_chosen_ = false;
    Real t_ = 0.0;
    /// Unclamped controller dt — the growth reference for the next
    /// getdt. The t_end clamp applies only to the dt a step advances by
    /// (step_clamped's local), never here: a follow-on run(t2) after
    /// run(t1) must not be growth-limited by the tiny final clamped step.
    Real dt_ = 0.0;
    int steps_ = 0;
    /// Health-guard re-growth ceiling on the controller dt (0 = inactive).
    /// Armed after a dt-backoff retry at `accepted dt * guard.regrow_cap`
    /// and raised by regrow_cap per step while it binds; cleared the
    /// first step the controller's own value ducks under it. Keeps a
    /// freshly stabilised dt from leaping straight back to the value
    /// that failed. Evolves from collectively-agreed quantities only, so
    /// the distributed driver replicates it bitwise on every rank.
    Real regrow_limit_ = 0.0;
    /// Loop-top state for the health-guard rollback (reused across steps).
    hydro::StepBackup step_backup_;
    /// Set when a checkpoint was written and `halt_after` asks the run
    /// loop to stop there (the step itself still completed normally).
    bool halt_requested_ = false;
    /// Telemetry (problem `[telemetry]`): per-step records + optional
    /// trace spans, all collected AFTER a step's physics commits — the
    /// passive contract. Empty/inactive by default, so telemetry-off
    /// runs take none of these branches.
    obs::Options telemetry_;
    /// Step records, bounded by `[telemetry] max_steps` (0 = keep all);
    /// evicted records fold into an exact aggregate, so the report's
    /// totals are unaffected by the cap.
    obs::StepRing telemetry_steps_;
    /// Live monitoring (`[telemetry] window_steps` > 0): the folder closes
    /// a window every window_steps committed steps; each window lands in
    /// telemetry_windows_ and — when `[telemetry] live` names a file — as
    /// a "window" (plus trivial single-rank "imbalance") event on the
    /// NDJSON stream. No watchdog in the serial driver: there is no peer
    /// to observe a hang from.
    std::optional<obs::WindowFolder> window_folder_;
    std::vector<obs::WindowRecord> telemetry_windows_;
    std::optional<obs::LiveStream> live_stream_;
    std::vector<util::TraceEvent> trace_;
    std::chrono::steady_clock::time_point telemetry_epoch_{};
    double run_wall_s_ = 0.0;
    /// Task-graph attribution (telemetry active only): ctx_.graph_log
    /// points at graph_log_, every step's graph runs are analyzed into
    /// the step record + attrib_, and — when tracing — the critical-path
    /// spans land in critical_ for the trace's flow arrows.
    par::GraphRunLog graph_log_;
    obs::RankAttribution attrib_;
    std::vector<obs::CritSpan> critical_;
};

} // namespace bookleaf::core
