#include "typhon/typhon.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>
#include <tuple>

#include "typhon/fault.hpp"
#include "util/error.hpp"
#include "util/profiler.hpp"

namespace bookleaf::typhon {

namespace detail {

void Hub::send(int src, int dst, int tag, std::vector<Real> payload) {
    // Fault hooks run outside the lock: the injector may sleep (a slowed
    // rank) or throw (a message-count kill), and the hold decision is a
    // pure function of the sender's own ordinal.
    const bool hold = fault_ != nullptr && fault_->active() &&
                      fault_->on_send(src);
    {
        const std::lock_guard lock(mutex_);
        traffic_.messages += 1;
        traffic_.reals += static_cast<long long>(payload.size());
        auto& pair = peer_tally_[{src, dst}];
        pair.messages += 1;
        pair.reals += static_cast<long long>(payload.size());
        const Channel k{src, dst, tag};
        // A held message — or any message behind one — goes to the shadow
        // queue, keeping per-channel FIFO order intact. Blocking recv
        // promotes the backlog; try_recv never sees it.
        if (hold || (!held_.empty() && [&] {
                const auto it = held_.find(k);
                return it != held_.end() && !it->second.empty();
            }())) {
            held_[k].push_back(std::move(payload));
        } else {
            queues_[k].push_back(std::move(payload));
        }
    }
    cv_.notify_all();
}

std::optional<std::vector<Real>> Hub::try_recv(int src, int dst, int tag) {
    const std::lock_guard lock(mutex_);
    const auto it = queues_.find(Channel{src, dst, tag});
    if (it == queues_.end() || it->second.empty()) return std::nullopt;
    std::vector<Real> out = std::move(it->second.front());
    it->second.pop_front();
    return out;
}

std::vector<Real> Hub::recv(int src, int dst, int tag) {
    std::unique_lock lock(mutex_);
    const Channel k{src, dst, tag};
    const auto promote_held = [&] {
        // A blocking receive ends any injected delay on its channel:
        // promote the whole held backlog (in order) so FIFO delivery is
        // exact and no message can be stranded behind a hold.
        const auto ht = held_.find(k);
        if (ht == held_.end() || ht->second.empty()) return;
        auto& q = queues_[k];
        for (auto& m : ht->second) q.push_back(std::move(m));
        ht->second.clear();
    };
    cv_.wait(lock, [&] {
        if (aborted_) return true;
        promote_held();
        const auto it = queues_.find(k);
        return it != queues_.end() && !it->second.empty();
    });
    // Prefer delivering a message that did arrive even after an abort;
    // only a wait that can never be satisfied turns into the error.
    promote_held();
    const auto it = queues_.find(k);
    if (it == queues_.end() || it->second.empty()) throw AbortError();
    std::vector<Real> out = std::move(it->second.front());
    it->second.pop_front();
    return out;
}

bool Hub::drained() {
    const std::lock_guard lock(mutex_);
    for (const auto& [channel, queue] : queues_)
        if (!queue.empty()) return false;
    // Held messages are undelivered too: a delay plan must not be able to
    // turn the stranded-message check into a false pass.
    for (const auto& [channel, queue] : held_)
        if (!queue.empty()) return false;
    return true;
}

std::vector<ChannelBacklog> Hub::backlog() {
    const std::lock_guard lock(mutex_);
    // Merge the visible and held queues per channel, then sort: a stall
    // diagnostic should print deterministically for a given Hub state.
    std::map<std::tuple<int, int, int>, ChannelBacklog> merged;
    const auto slot = [&](const Channel& c) -> ChannelBacklog& {
        auto& b = merged[{c.src, c.dst, c.tag}];
        b.src = c.src;
        b.dst = c.dst;
        b.tag = c.tag;
        return b;
    };
    for (const auto& [channel, queue] : queues_)
        if (!queue.empty())
            slot(channel).pending = static_cast<long>(queue.size());
    for (const auto& [channel, queue] : held_)
        if (!queue.empty())
            slot(channel).held = static_cast<long>(queue.size());
    std::vector<ChannelBacklog> out;
    out.reserve(merged.size());
    for (const auto& [key, b] : merged) out.push_back(b);
    return out;
}

Traffic Hub::traffic() {
    const std::lock_guard lock(mutex_);
    Traffic out = traffic_;
    out.peers.clear();
    for (const auto& [key, pair] : peer_tally_)
        out.peers.push_back({key.first, key.second, pair.messages,
                             pair.reals});
    return out;
}

void Hub::abort() {
    {
        const std::lock_guard lock(mutex_);
        aborted_ = true;
    }
    cv_.notify_all();
}

long Collective::post(int rank, Real value, Op op) {
    std::unique_lock lock(mutex_);
    values_[static_cast<std::size_t>(rank)] = value;
    const long gen = generation_;
    if (++arrived_ == n_ranks_) {
        // Last arrival reduces in rank order — deterministic result for
        // any arrival order (bitwise identity across schedules rests on
        // this).
        Real r = values_[0];
        for (int i = 1; i < n_ranks_; ++i) {
            const Real v = values_[static_cast<std::size_t>(i)];
            switch (op) {
            case Op::min: r = std::min(r, v); break;
            case Op::max: r = std::max(r, v); break;
            case Op::sum: r += v; break;
            }
        }
        result_ = r;
        arrived_ = 0;
        ++generation_;
        cv_.notify_all();
    }
    return gen;
}

bool Collective::poll(long generation) {
    const std::lock_guard lock(mutex_);
    return generation_ != generation;
}

Real Collective::finish(long generation) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return aborted_ || generation_ != generation; });
    if (generation_ == generation) throw AbortError();
    // result_ still holds this generation's value: the next generation
    // cannot complete before every rank of this one deposits again, which
    // happens only after their finish().
    return result_;
}

void Collective::abort() {
    {
        const std::lock_guard lock(mutex_);
        aborted_ = true;
    }
    cv_.notify_all();
}

Real Collective::allreduce(int rank, Real value, Op op) {
    return finish(post(rank, value, op));
}

void Collective::barrier(int rank) { (void)allreduce(rank, 0.0, Op::sum); }

std::vector<Real> Collective::allgather(int rank, Real value) {
    std::unique_lock lock(mutex_);
    values_[static_cast<std::size_t>(rank)] = value;
    const long gen = generation_;
    if (++arrived_ == n_ranks_) {
        gathered_ = values_;
        arrived_ = 0;
        ++generation_;
        cv_.notify_all();
    } else {
        cv_.wait(lock, [&] { return aborted_ || generation_ != gen; });
        if (generation_ == gen) throw AbortError();
    }
    return gathered_;
}

} // namespace detail

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

bool Request::test() {
    if (!state_ || state_->done) return true;
    if (auto msg = state_->transport->try_recv(state_->peer, state_->self,
                                              state_->tag)) {
        state_->payload = std::move(*msg);
        state_->done = true;
    }
    return state_->done;
}

void Request::wait() {
    if (!state_ || state_->done) return;
    state_->payload =
        state_->transport->recv(state_->peer, state_->self, state_->tag);
    state_->done = true;
}

const std::vector<Real>& Request::data() const {
    static const std::vector<Real> empty;
    if (!state_) return empty;
    util::require(state_->done,
                  "typhon::Request::data: operation not complete (call "
                  "test/wait first)");
    return state_->payload;
}

void wait_all(std::span<Request> requests) {
    // Requests sharing a (src, dst, tag) channel match that channel's
    // FIFO in posting (span) order, so the earliest pending request owns
    // the next message to arrive. Two rules enforce that: a request is
    // never test()ed while an earlier same-channel request is still
    // pending (the message could land between the two polls and be
    // stolen), and blocking always happens on the first pending request.
    const auto same_channel = [](const Request::State* a,
                                 const Request::State* b) {
        return a->transport == b->transport && a->peer == b->peer &&
               a->self == b->self && a->tag == b->tag;
    };
    for (;;) {
        Request* first_pending = nullptr;
        std::vector<const Request::State*> pending_channels;
        for (auto& r : requests) {
            if (r.done()) continue;
            bool held_back = false;
            for (const auto* st : pending_channels)
                if (same_channel(st, r.state_.get())) {
                    held_back = true;
                    break;
                }
            if (!held_back && r.test()) continue;
            pending_channels.push_back(r.state_.get());
            if (first_pending == nullptr) first_pending = &r;
        }
        if (first_pending == nullptr) return;
        first_pending->wait();
    }
}

void Comm::set_step(int step) {
    if (step_slot_ != nullptr)
        step_slot_->store(step, std::memory_order_relaxed);
    if (fault_ != nullptr && fault_->active()) fault_->on_step(rank_, step);
}

Request Comm::isend(int dst, int tag, std::span<const Real> data) {
    // Buffered-eager transport: the payload is copied into the transport
    // at post time, so the send request is born complete — the null
    // Request (done, empty payload) represents it exactly, without
    // allocating per-send state nothing would ever read.
    transport_->send(rank_, dst, tag, std::vector<Real>(data.begin(), data.end()));
    return Request();
}

Request Comm::irecv(int src, int tag) {
    auto state = std::make_shared<Request::State>();
    state->transport = transport_;
    state->peer = src;
    state->self = rank_;
    state->tag = tag;
    return Request(std::move(state));
}

// ---------------------------------------------------------------------------
// Nonblocking collectives
// ---------------------------------------------------------------------------

bool CollRequest::test() {
    if (done_ || coll_ == nullptr) return true;
    if (!coll_->poll(generation_)) return false;
    value_ = coll_->finish(generation_); // completed: returns immediately
    done_ = true;
    return true;
}

Real CollRequest::wait() {
    if (!done_ && coll_ != nullptr) {
        value_ = coll_->finish(generation_);
        done_ = true;
    }
    return value_;
}

Traffic run(int n_ranks, const std::function<void(Comm&)>& rank_fn,
            FaultInjector* fault) {
    util::require(n_ranks > 0, "typhon::run: n_ranks must be positive");
    detail::Hub hub(n_ranks, fault);
    detail::Collective coll(n_ranks);
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n_ranks));
    // Last step each rank reported through Comm::set_step (-1 = never):
    // failure reports name the step the dead rank was in.
    std::vector<std::atomic<int>> steps(static_cast<std::size_t>(n_ranks));
    for (auto& s : steps) s.store(-1, std::memory_order_relaxed);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n_ranks));
    for (int r = 0; r < n_ranks; ++r) {
        threads.emplace_back([&, r] {
            Comm comm(r, &hub, &coll, fault,
                      &steps[static_cast<std::size_t>(r)]);
            try {
                rank_fn(comm);
            } catch (...) {
                errors[static_cast<std::size_t>(r)] = std::current_exception();
                // Wake peers blocked on this rank's (now never-coming)
                // traffic or rendezvous arrival, so the join below cannot
                // hang; they unwind with AbortError, which is filtered
                // out in favour of this original error.
                hub.abort();
                coll.abort();
            }
        });
    }
    for (auto& t : threads) t.join();
    // Surface the original failure — wrapped in a RankFailure naming the
    // rank and step — never a secondary AbortError a peer picked up while
    // being unblocked (those only exist because some rank died first).
    const auto is_abort = [](const std::exception_ptr& e) {
        try {
            std::rethrow_exception(e);
        } catch (const detail::AbortError&) {
            return true;
        } catch (...) {
            return false;
        }
    };
    const auto fail = [&](int r, const std::exception_ptr& e) {
        const int step = steps[static_cast<std::size_t>(r)].load(
            std::memory_order_relaxed);
        try {
            std::rethrow_exception(e);
        } catch (const std::exception& ex) {
            throw RankFailure(r, step, ex.what());
        } catch (...) {
            throw RankFailure(r, step, "unknown error");
        }
    };
    for (int r = 0; r < n_ranks; ++r) {
        const auto& e = errors[static_cast<std::size_t>(r)];
        if (e && !is_abort(e)) fail(r, e);
    }
    for (int r = 0; r < n_ranks; ++r) {
        const auto& e = errors[static_cast<std::size_t>(r)];
        if (e) fail(r, e);
    }
    // Every clean run must leave the post office empty: a stranded
    // message means a posted send was never matched by a receive (an
    // asymmetric exchange schedule, a skipped irecv) — make that loud
    // rather than silently dropping ghost data. Only reached when no
    // rank threw (a failing rank's peers abort their traffic mid-flight).
    util::require(hub.drained(),
                  "typhon::run: undelivered messages left in channels "
                  "(send posted that no receive matched)");
    return hub.traffic();
}

// ---------------------------------------------------------------------------
// Ghost exchanges
// ---------------------------------------------------------------------------

namespace {

/// Loud enforcement of the documented one-entry-per-peer precondition:
/// sends and receives match per (peer, tag) channel, so a duplicate
/// entry with data on the same side would either strand a message the
/// remote's single receive never matches or make finish()'s polling
/// nondeterministically cross two payloads.
void require_unique_peer(std::vector<int>& seen_peers, int rank,
                         const char* side) {
    for (const int seen : seen_peers)
        if (seen == rank)
            throw util::Error(std::string("typhon::exchange_start: two ") +
                              side +
                              " entries for the same peer in one schedule");
    seen_peers.push_back(rank);
}

} // namespace

PendingExchange exchange_start(Comm& comm, std::span<const FieldGroup> groups,
                               int base_tag, Packing packing) {
    PendingExchange pending;
    bool any_fields = false;
    for (const auto& group : groups) any_fields |= !group.fields.empty();
    if (!any_fields) return pending;

    if (packing == Packing::coalesced) {
        // One message per peer rank appearing (with data) in any group:
        // the buffer lays the groups' slices back-to-back in group order,
        // each group's fields field-major, on base_tag. Post all sends
        // first (buffered), then the receives: deadlock-free for any
        // peering topology. Empty schedule sides post nothing at all — a
        // schedule may hold separate send-only and recv-only entries for
        // the same peer (the partitioner builds them that way), and
        // skipping the empties keeps each (peer, tag) channel down to at
        // most one in-flight message per exchange, so a pending receive
        // can never pop a message meant for another slot. Both sides
        // derive the same per-peer layout because the schedules are
        // pairwise consistent: a group has send items for a peer exactly
        // when the peer's copy has recv items for it.
        // Peer ranks with data on the given side, in first-appearance
        // order, with the one-entry-per-peer precondition enforced per
        // group (entries for the same peer across *different* groups are
        // exactly what fusing combines).
        const auto ranks_with = [&](const bool sends) {
            std::vector<int> ranks;
            for (const auto& group : groups) {
                if (group.fields.empty()) continue;
                std::vector<int> seen;
                for (const auto& peer : group.schedule->peers) {
                    const auto& items =
                        sends ? peer.send_items : peer.recv_items;
                    if (items.empty()) continue;
                    require_unique_peer(seen, peer.rank,
                                        sends ? "sending" : "receiving");
                    if (std::find(ranks.begin(), ranks.end(), peer.rank) ==
                        ranks.end())
                        ranks.push_back(peer.rank);
                }
            }
            return ranks;
        };
        const auto find_entry = [](const FieldGroup& group, const int rank,
                                   const bool sends)
            -> const ExchangeSchedule::Peer* {
            for (const auto& peer : group.schedule->peers) {
                const auto& items = sends ? peer.send_items : peer.recv_items;
                if (peer.rank == rank && !items.empty()) return &peer;
            }
            return nullptr;
        };
        for (const int rank : ranks_with(true)) {
            // Pack straight into the vector the transport will own: the
            // move overload of send avoids a second full-payload copy.
            std::vector<Real> pack;
            std::size_t total = 0;
            for (const auto& group : groups)
                if (const auto* entry =
                        group.fields.empty() ? nullptr
                                             : find_entry(group, rank, true))
                    total += group.fields.size() * entry->send_items.size();
            pack.reserve(total);
            for (const auto& group : groups) {
                if (group.fields.empty()) continue;
                const auto* entry = find_entry(group, rank, true);
                if (entry == nullptr) continue;
                for (const auto field : group.fields)
                    for (const Index i : entry->send_items)
                        pack.push_back(field[static_cast<std::size_t>(i)]);
            }
            comm.send(rank, base_tag, std::move(pack));
        }
        for (const int rank : ranks_with(false)) {
            PendingExchange::Slot slot;
            slot.request = comm.irecv(rank, base_tag);
            for (const auto& group : groups) {
                if (group.fields.empty()) continue;
                const auto* entry = find_entry(group, rank, false);
                if (entry == nullptr) continue;
                slot.sections.push_back({&entry->recv_items, group.fields});
            }
            pending.slots_.push_back(std::move(slot));
        }
        return pending;
    }

    // Packing::per_field (ablation baseline): one message per field per
    // peer on consecutive tags across the groups in order. Same posting
    // discipline as above.
    int tag = base_tag;
    for (const auto& group : groups) {
        const auto& schedule = *group.schedule;
        for (const auto field : group.fields) {
            std::vector<int> sending_peers;
            for (const auto& peer : schedule.peers) {
                if (peer.send_items.empty()) continue;
                require_unique_peer(sending_peers, peer.rank, "sending");
                std::vector<Real> pack;
                pack.reserve(peer.send_items.size());
                for (const Index i : peer.send_items)
                    pack.push_back(field[static_cast<std::size_t>(i)]);
                comm.send(peer.rank, tag, std::move(pack));
            }
            std::vector<int> receiving_peers;
            for (const auto& peer : schedule.peers) {
                if (peer.recv_items.empty()) continue;
                require_unique_peer(receiving_peers, peer.rank, "receiving");
                PendingExchange::Slot slot;
                slot.request = comm.irecv(peer.rank, tag);
                slot.sections.push_back({&peer.recv_items, {field}});
                pending.slots_.push_back(std::move(slot));
            }
            ++tag;
        }
    }
    return pending;
}

PendingExchange exchange_start(Comm& comm, const ExchangeSchedule& schedule,
                               std::initializer_list<std::span<Real>> fields,
                               int base_tag, Packing packing) {
    FieldGroup group{&schedule, {fields.begin(), fields.end()}};
    return exchange_start(comm, {&group, 1}, base_tag, packing);
}

PendingExchange::~PendingExchange() {
    // Abandonment is a caller bug — except during exception unwind, where
    // a sibling exchange's finish() legitimately threw and this one is
    // being torn down; aborting there would mask the real error.
    BL_ASSERT((slots_.empty() || std::uncaught_exceptions() > 0) &&
              "PendingExchange destroyed without finish()");
    // Pull whatever has already arrived off the channels and discard it,
    // so a later exchange on the same tags cannot unpack a stale message.
    // (Messages still in flight cannot be waited for here — the owning
    // rank may be unwinding an exception.)
    for (auto& slot : slots_) (void)slot.request.test();
}

PendingExchange& PendingExchange::operator=(PendingExchange&& other) noexcept {
    if (this != &other) {
        // Same abandonment guard as the destructor (including the unwind
        // exemption): overwriting a still-pending exchange must not
        // silently strand its messages.
        BL_ASSERT((slots_.empty() || std::uncaught_exceptions() > 0) &&
                  "PendingExchange overwritten without finish()");
        for (auto& slot : slots_) (void)slot.request.test();
        slots_ = std::move(other.slots_);
        other.slots_.clear();
    }
    return *this;
}

void PendingExchange::finish(util::Profiler* profiler) {
    std::size_t remaining = slots_.size();
    std::vector<std::uint8_t> unpacked(slots_.size(), 0);
    // Optional comm-split accounting: dispatching payloads into ghost
    // items is "unpack" time, blocking on a message that has not arrived
    // is "wait" time. The nullptr path (the default) adds nothing.
    const auto charge = [&](util::Kernel k, const auto& fn) {
        if (profiler == nullptr) {
            fn();
            return;
        }
        const util::ScopedTimer timer(*profiler, k);
        fn();
    };
    try {
        while (remaining > 0) {
            bool progressed = false;
            for (std::size_t i = 0; i < slots_.size(); ++i) {
                auto& slot = slots_[i];
                if (unpacked[i] || !slot.request.test()) continue;
                const auto& data = slot.request.data();
                std::size_t expected = 0;
                for (const auto& section : slot.sections)
                    expected += section.fields.size() * section.recv_items->size();
                util::require(
                    data.size() == expected,
                    "typhon::exchange: schedule mismatch between peers");
                // Dispatch the payload's slices back to the bound fields:
                // sections in group order, field-major within each (one
                // section of one field in per-field packing).
                charge(util::Kernel::halo_unpack, [&] {
                    std::size_t offset = 0;
                    for (const auto& section : slot.sections) {
                        const std::size_t n = section.recv_items->size();
                        for (const auto field : section.fields) {
                            for (std::size_t j = 0; j < n; ++j)
                                field[static_cast<std::size_t>(
                                    (*section.recv_items)[j])] =
                                    data[offset + j];
                            offset += n;
                        }
                    }
                });
                unpacked[i] = 1;
                --remaining;
                progressed = true;
            }
            if (!progressed && remaining > 0) {
                // No message ready: block on the first incomplete receive.
                for (std::size_t i = 0; i < slots_.size(); ++i)
                    if (!unpacked[i]) {
                        charge(util::Kernel::halo_wait,
                               [&] { slots_[i].request.wait(); });
                        break;
                    }
            }
        }
    } catch (...) {
        // The rank is failing (schedule mismatch): clear so unwinding
        // does not trip the destructor's abandonment assert and mask the
        // real error with an abort.
        slots_.clear();
        throw;
    }
    slots_.clear();
}

void exchange(Comm& comm, const ExchangeSchedule& schedule,
              std::span<Real> field, int tag) {
    auto pending = exchange_start(comm, schedule, {field}, tag);
    pending.finish();
}

void exchange_all(Comm& comm, const ExchangeSchedule& schedule,
                  std::initializer_list<std::span<Real>> fields, int base_tag,
                  Packing packing) {
    auto pending = exchange_start(comm, schedule, fields, base_tag, packing);
    pending.finish();
}

void exchange_all(Comm& comm, std::span<const FieldGroup> groups, int base_tag,
                  Packing packing) {
    auto pending = exchange_start(comm, groups, base_tag, packing);
    pending.finish();
}

} // namespace bookleaf::typhon
