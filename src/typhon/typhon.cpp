#include "typhon/typhon.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/error.hpp"

namespace bookleaf::typhon {

namespace detail {

void Hub::send(int src, int dst, int tag, std::vector<Real> payload) {
    {
        const std::lock_guard lock(mutex_);
        queues_[Channel{src, dst, tag}].push_back(std::move(payload));
    }
    cv_.notify_all();
}

std::optional<std::vector<Real>> Hub::try_recv(int src, int dst, int tag) {
    const std::lock_guard lock(mutex_);
    const auto it = queues_.find(Channel{src, dst, tag});
    if (it == queues_.end() || it->second.empty()) return std::nullopt;
    std::vector<Real> out = std::move(it->second.front());
    it->second.pop_front();
    return out;
}

std::vector<Real> Hub::recv(int src, int dst, int tag) {
    std::unique_lock lock(mutex_);
    const Channel k{src, dst, tag};
    cv_.wait(lock, [&] {
        const auto it = queues_.find(k);
        return it != queues_.end() && !it->second.empty();
    });
    auto& q = queues_[k];
    std::vector<Real> out = std::move(q.front());
    q.pop_front();
    return out;
}

bool Hub::drained() {
    const std::lock_guard lock(mutex_);
    for (const auto& [channel, queue] : queues_)
        if (!queue.empty()) return false;
    return true;
}

Real Collective::allreduce(int rank, Real value, Op op) {
    std::unique_lock lock(mutex_);
    values_[static_cast<std::size_t>(rank)] = value;
    const long gen = generation_;
    if (++arrived_ == n_ranks_) {
        Real r = values_[0];
        for (int i = 1; i < n_ranks_; ++i) {
            const Real v = values_[static_cast<std::size_t>(i)];
            switch (op) {
            case Op::min: r = std::min(r, v); break;
            case Op::max: r = std::max(r, v); break;
            case Op::sum: r += v; break;
            }
        }
        result_ = r;
        arrived_ = 0;
        ++generation_;
        cv_.notify_all();
    } else {
        cv_.wait(lock, [&] { return generation_ != gen; });
    }
    return result_;
}

void Collective::barrier(int rank) { (void)allreduce(rank, 0.0, Op::sum); }

std::vector<Real> Collective::allgather(int rank, Real value) {
    std::unique_lock lock(mutex_);
    values_[static_cast<std::size_t>(rank)] = value;
    const long gen = generation_;
    if (++arrived_ == n_ranks_) {
        gathered_ = values_;
        arrived_ = 0;
        ++generation_;
        cv_.notify_all();
    } else {
        cv_.wait(lock, [&] { return generation_ != gen; });
    }
    return gathered_;
}

} // namespace detail

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

bool Request::test() {
    if (!state_ || state_->done) return true;
    if (auto msg = state_->transport->try_recv(state_->peer, state_->self,
                                              state_->tag)) {
        state_->payload = std::move(*msg);
        state_->done = true;
    }
    return state_->done;
}

void Request::wait() {
    if (!state_ || state_->done) return;
    state_->payload =
        state_->transport->recv(state_->peer, state_->self, state_->tag);
    state_->done = true;
}

const std::vector<Real>& Request::data() const {
    static const std::vector<Real> empty;
    if (!state_) return empty;
    util::require(state_->done,
                  "typhon::Request::data: operation not complete (call "
                  "test/wait first)");
    return state_->payload;
}

void wait_all(std::span<Request> requests) {
    // Requests sharing a (src, dst, tag) channel match that channel's
    // FIFO in posting (span) order, so the earliest pending request owns
    // the next message to arrive. Two rules enforce that: a request is
    // never test()ed while an earlier same-channel request is still
    // pending (the message could land between the two polls and be
    // stolen), and blocking always happens on the first pending request.
    const auto same_channel = [](const Request::State* a,
                                 const Request::State* b) {
        return a->transport == b->transport && a->peer == b->peer &&
               a->self == b->self && a->tag == b->tag;
    };
    for (;;) {
        Request* first_pending = nullptr;
        std::vector<const Request::State*> pending_channels;
        for (auto& r : requests) {
            if (r.done()) continue;
            bool held_back = false;
            for (const auto* st : pending_channels)
                if (same_channel(st, r.state_.get())) {
                    held_back = true;
                    break;
                }
            if (!held_back && r.test()) continue;
            pending_channels.push_back(r.state_.get());
            if (first_pending == nullptr) first_pending = &r;
        }
        if (first_pending == nullptr) return;
        first_pending->wait();
    }
}

Request Comm::isend(int dst, int tag, std::span<const Real> data) {
    // Buffered-eager transport: the payload is copied into the transport
    // at post time, so the send request is born complete — the null
    // Request (done, empty payload) represents it exactly, without
    // allocating per-send state nothing would ever read.
    transport_->send(rank_, dst, tag, std::vector<Real>(data.begin(), data.end()));
    return Request();
}

Request Comm::irecv(int src, int tag) {
    auto state = std::make_shared<Request::State>();
    state->transport = transport_;
    state->peer = src;
    state->self = rank_;
    state->tag = tag;
    return Request(std::move(state));
}

void run(int n_ranks, const std::function<void(Comm&)>& rank_fn) {
    util::require(n_ranks > 0, "typhon::run: n_ranks must be positive");
    detail::Hub hub(n_ranks);
    detail::Collective coll(n_ranks);
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n_ranks));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n_ranks));
    for (int r = 0; r < n_ranks; ++r) {
        threads.emplace_back([&, r] {
            Comm comm(r, &hub, &coll);
            try {
                rank_fn(comm);
            } catch (...) {
                errors[static_cast<std::size_t>(r)] = std::current_exception();
            }
        });
    }
    for (auto& t : threads) t.join();
    for (const auto& e : errors)
        if (e) std::rethrow_exception(e);
    // Every clean run must leave the post office empty: a stranded
    // message means a posted send was never matched by a receive (an
    // asymmetric exchange schedule, a skipped irecv) — make that loud
    // rather than silently dropping ghost data. Skipped when a rank
    // threw: its peers legitimately abandon traffic mid-flight.
    util::require(hub.drained(),
                  "typhon::run: undelivered messages left in channels "
                  "(send posted that no receive matched)");
}

// ---------------------------------------------------------------------------
// Ghost exchanges
// ---------------------------------------------------------------------------

PendingExchange exchange_start(Comm& comm, const ExchangeSchedule& schedule,
                               std::initializer_list<std::span<Real>> fields,
                               int base_tag) {
    PendingExchange pending;
    pending.slots_.reserve(fields.size() * schedule.peers.size());
    std::vector<Real> pack;
    int tag = base_tag;
    for (const auto field : fields) {
        // Post all sends first (buffered), then the receives: deadlock-free
        // for any peering topology. Empty schedule sides post nothing at
        // all — a schedule may hold separate send-only and recv-only
        // entries for the same peer (the partitioner builds them that
        // way), and skipping the empties keeps each (peer, tag) channel
        // down to at most one in-flight message per exchange, so a pending
        // receive can never pop a message meant for another slot.
        std::vector<int> sending_peers;
        for (const auto& peer : schedule.peers) {
            if (peer.send_items.empty()) continue;
            // Same one-message-per-(peer, tag)-channel rule as on the
            // receive side below: a duplicate sending entry would post a
            // second message the remote's single receive never matches,
            // and the stale extra would be mis-popped by the *next*
            // exchange reusing this tag.
            for (const int seen : sending_peers)
                util::require(seen != peer.rank,
                              "typhon::exchange_start: two sending entries "
                              "for the same peer in one schedule");
            sending_peers.push_back(peer.rank);
            pack.clear();
            pack.reserve(peer.send_items.size());
            for (const Index i : peer.send_items)
                pack.push_back(field[static_cast<std::size_t>(i)]);
            comm.send(peer.rank, tag, pack);
        }
        std::vector<int> receiving_peers;
        for (const auto& peer : schedule.peers) {
            if (peer.recv_items.empty()) continue;
            // Loud enforcement of the documented precondition: receives
            // match per (peer, tag) channel, so a second receiving entry
            // for the same peer within one field would make finish()'s
            // polling nondeterministically cross the two payloads.
            for (const int seen : receiving_peers)
                util::require(seen != peer.rank,
                              "typhon::exchange_start: two receiving entries "
                              "for the same peer in one schedule");
            receiving_peers.push_back(peer.rank);
            pending.slots_.push_back(
                {comm.irecv(peer.rank, tag), &peer.recv_items, field});
        }
        ++tag;
    }
    return pending;
}

PendingExchange::~PendingExchange() {
    // Abandonment is a caller bug — except during exception unwind, where
    // a sibling exchange's finish() legitimately threw and this one is
    // being torn down; aborting there would mask the real error.
    BL_ASSERT((slots_.empty() || std::uncaught_exceptions() > 0) &&
              "PendingExchange destroyed without finish()");
    // Pull whatever has already arrived off the channels and discard it,
    // so a later exchange on the same tags cannot unpack a stale message.
    // (Messages still in flight cannot be waited for here — the owning
    // rank may be unwinding an exception.)
    for (auto& slot : slots_) (void)slot.request.test();
}

PendingExchange& PendingExchange::operator=(PendingExchange&& other) noexcept {
    if (this != &other) {
        // Same abandonment guard as the destructor (including the unwind
        // exemption): overwriting a still-pending exchange must not
        // silently strand its messages.
        BL_ASSERT((slots_.empty() || std::uncaught_exceptions() > 0) &&
                  "PendingExchange overwritten without finish()");
        for (auto& slot : slots_) (void)slot.request.test();
        slots_ = std::move(other.slots_);
        other.slots_.clear();
    }
    return *this;
}

void PendingExchange::finish() {
    std::size_t remaining = slots_.size();
    std::vector<std::uint8_t> unpacked(slots_.size(), 0);
    try {
        while (remaining > 0) {
            bool progressed = false;
            for (std::size_t i = 0; i < slots_.size(); ++i) {
                auto& slot = slots_[i];
                if (unpacked[i] || !slot.request.test()) continue;
                const auto& data = slot.request.data();
                util::require(
                    data.size() == slot.recv_items->size(),
                    "typhon::exchange: schedule mismatch between peers");
                for (std::size_t j = 0; j < data.size(); ++j)
                    slot.field[static_cast<std::size_t>((*slot.recv_items)[j])] =
                        data[j];
                unpacked[i] = 1;
                --remaining;
                progressed = true;
            }
            if (!progressed && remaining > 0) {
                // No message ready: block on the first incomplete receive.
                for (std::size_t i = 0; i < slots_.size(); ++i)
                    if (!unpacked[i]) {
                        slots_[i].request.wait();
                        break;
                    }
            }
        }
    } catch (...) {
        // The rank is failing (schedule mismatch): clear so unwinding
        // does not trip the destructor's abandonment assert and mask the
        // real error with an abort.
        slots_.clear();
        throw;
    }
    slots_.clear();
}

void exchange(Comm& comm, const ExchangeSchedule& schedule,
              std::span<Real> field, int tag) {
    auto pending = exchange_start(comm, schedule, {field}, tag);
    pending.finish();
}

void exchange_all(Comm& comm, const ExchangeSchedule& schedule,
                  std::initializer_list<std::span<Real>> fields, int base_tag) {
    auto pending = exchange_start(comm, schedule, fields, base_tag);
    pending.finish();
}

} // namespace bookleaf::typhon
