#include "typhon/typhon.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/error.hpp"

namespace bookleaf::typhon {

namespace detail {

void Hub::send(int src, int dst, int tag, std::vector<Real> payload) {
    {
        const std::lock_guard lock(mutex_);
        queues_[key(src, dst, tag)].push_back(std::move(payload));
    }
    cv_.notify_all();
}

std::vector<Real> Hub::recv(int src, int dst, int tag) {
    std::unique_lock lock(mutex_);
    const auto k = key(src, dst, tag);
    cv_.wait(lock, [&] {
        const auto it = queues_.find(k);
        return it != queues_.end() && !it->second.empty();
    });
    auto& q = queues_[k];
    std::vector<Real> out = std::move(q.front());
    q.pop_front();
    return out;
}

Real Collective::allreduce(int rank, Real value, Op op) {
    std::unique_lock lock(mutex_);
    values_[static_cast<std::size_t>(rank)] = value;
    const long gen = generation_;
    if (++arrived_ == n_ranks_) {
        Real r = values_[0];
        for (int i = 1; i < n_ranks_; ++i) {
            const Real v = values_[static_cast<std::size_t>(i)];
            switch (op) {
            case Op::min: r = std::min(r, v); break;
            case Op::max: r = std::max(r, v); break;
            case Op::sum: r += v; break;
            }
        }
        result_ = r;
        arrived_ = 0;
        ++generation_;
        cv_.notify_all();
    } else {
        cv_.wait(lock, [&] { return generation_ != gen; });
    }
    return result_;
}

void Collective::barrier(int rank) { (void)allreduce(rank, 0.0, Op::sum); }

std::vector<Real> Collective::allgather(int rank, Real value) {
    std::unique_lock lock(mutex_);
    values_[static_cast<std::size_t>(rank)] = value;
    const long gen = generation_;
    if (++arrived_ == n_ranks_) {
        gathered_ = values_;
        arrived_ = 0;
        ++generation_;
        cv_.notify_all();
    } else {
        cv_.wait(lock, [&] { return generation_ != gen; });
    }
    return gathered_;
}

} // namespace detail

void run(int n_ranks, const std::function<void(Comm&)>& rank_fn) {
    util::require(n_ranks > 0, "typhon::run: n_ranks must be positive");
    detail::Hub hub(n_ranks);
    detail::Collective coll(n_ranks);
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n_ranks));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n_ranks));
    for (int r = 0; r < n_ranks; ++r) {
        threads.emplace_back([&, r] {
            Comm comm(r, &hub, &coll);
            try {
                rank_fn(comm);
            } catch (...) {
                errors[static_cast<std::size_t>(r)] = std::current_exception();
            }
        });
    }
    for (auto& t : threads) t.join();
    for (const auto& e : errors)
        if (e) std::rethrow_exception(e);
}

void exchange(Comm& comm, const ExchangeSchedule& schedule,
              std::span<Real> field, int tag) {
    // Post all sends first (buffered), then drain receives: deadlock-free
    // for any peering topology.
    std::vector<Real> pack;
    for (const auto& peer : schedule.peers) {
        pack.clear();
        pack.reserve(peer.send_items.size());
        for (const Index i : peer.send_items)
            pack.push_back(field[static_cast<std::size_t>(i)]);
        comm.send(peer.rank, tag, pack);
    }
    for (const auto& peer : schedule.peers) {
        const auto data = comm.recv(peer.rank, tag);
        util::require(data.size() == peer.recv_items.size(),
                      "typhon::exchange: schedule mismatch between peers");
        for (std::size_t i = 0; i < data.size(); ++i)
            field[static_cast<std::size_t>(peer.recv_items[i])] = data[i];
    }
}

void exchange_all(Comm& comm, const ExchangeSchedule& schedule,
                  std::initializer_list<std::span<Real>> fields, int base_tag) {
    int tag = base_tag;
    for (const auto field : fields) exchange(comm, schedule, field, tag++);
}

} // namespace bookleaf::typhon
