#include "typhon/fault.hpp"

#include <chrono>
#include <thread>

namespace bookleaf::typhon {

namespace {

// splitmix64 finalizer: a cheap, well-mixed hash so the delay selection is
// a deterministic function of (seed, src, ordinal) with no shared RNG
// state between rank threads.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d649d9f8a5c1b3ULL;
    return x ^ (x >> 31);
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, int n_ranks, int attempt)
    : plan_(plan),
      attempt_(attempt),
      active_(!plan.empty()),
      sends_(static_cast<std::size_t>(n_ranks > 0 ? n_ranks : 1)) {
    for (auto& s : sends_) s.store(0, std::memory_order_relaxed);
}

void FaultInjector::on_step(int rank, int step) {
    if (!active_) return;
    for (const auto& k : plan_.kills) {
        if (k.rank == rank && k.attempt == attempt_ && k.at_step >= 0 &&
            k.at_step == step) {
            throw RankKilled(rank, "at step " + std::to_string(step));
        }
    }
}

bool FaultInjector::on_send(int src) {
    if (!active_) return false;
    if (src < 0 || static_cast<std::size_t>(src) >= sends_.size()) return false;
    const long ordinal =
        sends_[static_cast<std::size_t>(src)].fetch_add(
            1, std::memory_order_relaxed) +
        1;
    for (const auto& s : plan_.slows) {
        if (s.rank == src && s.microseconds > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(s.microseconds));
        }
    }
    for (const auto& k : plan_.kills) {
        if (k.rank == src && k.attempt == attempt_ && k.at_message >= 0 &&
            k.at_message == ordinal) {
            throw RankKilled(src, "at message " + std::to_string(ordinal));
        }
    }
    for (const auto& d : plan_.delays) {
        if (d.rank == src && d.every > 0) {
            const auto h = mix(plan_.seed ^
                               (static_cast<std::uint64_t>(src) << 32) ^
                               static_cast<std::uint64_t>(ordinal));
            if (h % static_cast<std::uint64_t>(d.every) == 0) return true;
        }
    }
    return false;
}

} // namespace bookleaf::typhon
