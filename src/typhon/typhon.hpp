#pragma once
/// \file typhon.hpp
/// Typhon — the distributed communication substrate.
///
/// The reference BookLeaf performs all inter-process communication through
/// AWE's Typhon library (halo exchanges and collectives over MPI). This
/// reimplementation provides the same API shape as an *in-process* rank
/// runtime: ranks are threads, point-to-point messages pass through tagged
/// mailboxes, and collectives use generation-counted rendezvous. The
/// communication *pattern* of the mini-app (two ghost exchanges per
/// Lagrangian step plus one global min-reduction for dt, paper §III-A and
/// §IV-A) is therefore exercised with real pack/send/recv/unpack data
/// movement, testable on a single machine.
///
/// The point-to-point layer is *request based*: `Comm::isend`/`irecv`
/// return `Request` handles with MPI-style `test`/`wait` semantics (plus a
/// free `wait_all`), and all traffic flows through the abstract `Transport`
/// interface. The in-process `detail::Hub` is one Transport backend; a real
/// MPI backend can slot in behind the same interface without touching any
/// caller. On top of the requests, `exchange_start`/`PendingExchange::finish`
/// split a ghost exchange into a post phase and a completion phase so the
/// distributed driver can overlap interior kernels with in-flight halos.
///
/// A multi-field exchange *coalesces* by default: one contiguous buffer per
/// peer per exchange, the fields' item slices laid out back-to-back in
/// schedule order, so the per-exchange message count is the peer count
/// rather than fields x peers (the latency-bound regime of small strong-
/// scaled subdomains). The one-message-per-field layout is retained as
/// `Packing::per_field` for ablation. Collectives gain a nonblocking form:
/// `Comm::iallreduce_min` returns a `CollRequest` that can be finished
/// later, letting the dt reduction fly concurrently with a halo exchange.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace bookleaf::util {
class Profiler; // util/profiler.hpp — per-kernel timing registry
}

namespace bookleaf::typhon {

class FaultInjector; // fault.hpp — deterministic fault injection

/// Traffic of one directed (src -> dst) peer pair: posted messages and
/// summed payload length.
struct PeerTraffic {
    int src = -1;
    int dst = -1;
    long messages = 0;
    long long reals = 0;
};

/// Aggregate point-to-point traffic moved through a transport over one
/// `typhon::run` (every posted send counts once; `reals` is the summed
/// payload length). What the message-coalescing ablation measures. The
/// per-peer breakdown (ascending (src, dst), zero pairs omitted) sums to
/// the totals — the obs/ telemetry report slices it per rank.
struct Traffic {
    long messages = 0;
    long long reals = 0;
    std::vector<PeerTraffic> peers;
};

// ---------------------------------------------------------------------------
// Transport — the pluggable point-to-point backend.
// ---------------------------------------------------------------------------

/// Undelivered traffic of one (src, dst, tag) channel: `pending` messages
/// are visible to receives, `held` ones are shadow-queued by the fault
/// injector's delay plan. The watchdog's stall diagnostic snapshots this
/// to show *which* exchanges a silent rank is sitting on.
struct ChannelBacklog {
    int src = -1;
    int dst = -1;
    int tag = 0;
    long pending = 0;
    long held = 0;
};

/// Point-to-point message transport. Semantics mirror MPI's buffered-eager
/// mode: `send` enqueues a copy and returns immediately; receives match on
/// the (src, dst, tag) channel in FIFO order. Implementations must be safe
/// for concurrent calls from all rank contexts.
class Transport {
public:
    virtual ~Transport() = default;

    [[nodiscard]] virtual int n_ranks() const = 0;

    /// Buffered send: enqueue the payload on channel (src, dst, tag) and
    /// return immediately.
    virtual void send(int src, int dst, int tag, std::vector<Real> payload) = 0;

    /// Nonblocking matched probe: pop and return the front message of the
    /// channel, or nullopt if nothing has arrived yet.
    [[nodiscard]] virtual std::optional<std::vector<Real>>
    try_recv(int src, int dst, int tag) = 0;

    /// Blocking matched receive.
    [[nodiscard]] virtual std::vector<Real> recv(int src, int dst, int tag) = 0;

    /// Snapshot of every channel with undelivered messages (ascending
    /// (src, dst, tag); empty channels omitted). Purely observational —
    /// backends without introspection report nothing.
    [[nodiscard]] virtual std::vector<ChannelBacklog> backlog() { return {}; }
};

namespace detail {

/// Shared post office: tagged per-(src, dst, tag) message queues. The
/// in-process Transport backend (ranks are threads of one process).
///
/// With a FaultInjector attached, every send first consults the injector
/// (which may kill the sender or mark the message *held*). Held messages
/// live in a shadow queue per channel: invisible to try_recv — so polling
/// paths (PendingExchange::finish, wait_all) observe delivery reordering
/// against other channels — but a *blocking* recv on the channel promotes
/// them, so liveness and per-channel FIFO order are both preserved and no
/// delay can deadlock a run.
class Hub final : public Transport {
public:
    explicit Hub(int n_ranks, FaultInjector* fault = nullptr)
        : n_ranks_(n_ranks), fault_(fault) {}

    [[nodiscard]] int n_ranks() const override { return n_ranks_; }
    void send(int src, int dst, int tag, std::vector<Real> payload) override;
    [[nodiscard]] std::optional<std::vector<Real>> try_recv(int src, int dst,
                                                            int tag) override;
    [[nodiscard]] std::vector<Real> recv(int src, int dst, int tag) override;
    [[nodiscard]] std::vector<ChannelBacklog> backlog() override;

    /// True when no channel holds an undelivered message. Checked at the
    /// end of typhon::run: a stranded message means a send was posted
    /// that no receive ever matched (e.g. an asymmetric exchange
    /// schedule) — silent data loss that should fail loudly instead.
    [[nodiscard]] bool drained();

    /// Cumulative traffic since construction (all ranks, all channels).
    [[nodiscard]] Traffic traffic();

    /// Wake every blocked recv and make it (and all future blocking
    /// recvs) throw AbortError once no message is available. Called by
    /// typhon::run when a rank dies with an exception: its peers may be
    /// blocked on traffic that will never arrive, and the join must not
    /// hang — the original rank error, not the abort, is what surfaces.
    void abort();

private:
    /// Channel identity. A struct key (not packed bits): the previous
    /// bit-packed uint64 shifted a 32-bit-cast dst into the src field for
    /// large rank ids, silently crossing messages between channels.
    struct Channel {
        int src, dst, tag;
        bool operator==(const Channel&) const = default;
    };
    struct ChannelHash {
        std::size_t operator()(const Channel& c) const {
            // Fibonacci-style mixing of the three fields.
            auto mix = [](std::uint64_t h, std::uint64_t v) {
                h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
                return h;
            };
            std::uint64_t h = 0;
            h = mix(h, static_cast<std::uint32_t>(c.src));
            h = mix(h, static_cast<std::uint32_t>(c.dst));
            h = mix(h, static_cast<std::uint32_t>(c.tag));
            return static_cast<std::size_t>(h);
        }
    };

    int n_ranks_;
    FaultInjector* fault_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::unordered_map<Channel, std::deque<std::vector<Real>>, ChannelHash>
        queues_;
    /// Messages held back by the fault injector's delay plan, per channel.
    /// Once a channel holds anything, every newer send on it queues here
    /// too (FIFO within the channel is inviolable); a blocking recv
    /// promotes the whole backlog into the visible queue.
    std::unordered_map<Channel, std::deque<std::vector<Real>>, ChannelHash>
        held_;
    Traffic traffic_;
    /// Per-(src, dst) send tally under the existing lock; an ordered map
    /// (not a flat n_ranks^2 vector — Hub accepts arbitrarily large rank
    /// ids) whose iteration order gives traffic() its ascending (src,
    /// dst) emit for free. Only pairs that actually sent have entries.
    struct PairTally {
        long messages = 0;
        long long reals = 0;
    };
    std::map<std::pair<int, int>, PairTally> peer_tally_;
    bool aborted_ = false;
};

/// Generation-counted rendezvous for collectives.
class Collective {
public:
    explicit Collective(int n_ranks)
        : n_ranks_(n_ranks), values_(static_cast<std::size_t>(n_ranks)) {}

    enum class Op { min, max, sum };

    Real allreduce(int rank, Real value, Op op);
    void barrier(int rank);
    /// Every rank receives the concatenation of all contributions in rank
    /// order (an allgather).
    std::vector<Real> allgather(int rank, Real value);

    /// Nonblocking deposit half of an allreduce: contributes `value` and
    /// returns the generation token to pass to poll/finish. Each rank may
    /// have at most one collective outstanding (posting a second one —
    /// including any blocking collective or barrier — before finishing
    /// the first would fold both deposits into one generation).
    [[nodiscard]] long post(int rank, Real value, Op op);
    /// True once the posted generation has completed (all ranks arrived).
    [[nodiscard]] bool poll(long generation);
    /// Block until the posted generation completes; returns the result.
    /// Safe to call after completion: the result slot cannot be
    /// overwritten before every rank of the generation has finished,
    /// because the next generation needs all of their deposits.
    [[nodiscard]] Real finish(long generation);

    /// Wake every rank blocked in finish() and make incomplete waits
    /// throw AbortError (see Hub::abort — a dead rank never arrives at
    /// the rendezvous, and the join must not hang on it).
    void abort();

private:
    int n_ranks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Real> values_;
    std::vector<Real> gathered_;
    Real result_ = 0.0;
    int arrived_ = 0;
    long generation_ = 0;
    bool aborted_ = false;
};

/// Thrown out of blocking waits after a peer rank died (Hub::abort /
/// Collective::abort). typhon::run recognises it so the *original* rank
/// failure is what gets rethrown, never the secondary unblocking errors.
struct AbortError final : util::Error {
    AbortError()
        : util::Error("typhon: aborted — a peer rank failed mid-run") {}
};

} // namespace detail

/// What typhon::run throws when a rank dies: the original rank error's
/// message, annotated with *which* rank failed and at what driver step (as
/// last reported through Comm::set_step; -1 when the run never ticked a
/// step). The original message is preserved verbatim as a substring, so
/// callers matching on it keep working; supervisors (dist::run) switch on
/// the type to drive recovery.
struct RankFailure final : util::Error {
    int rank;
    int step;
    RankFailure(int rank_, int step_, const std::string& original)
        : util::Error("typhon: rank " + std::to_string(rank_) + " failed" +
                      (step_ >= 0 ? " at step " + std::to_string(step_) : "") +
                      ": " + original),
          rank(rank_), step(step_) {}
};

// ---------------------------------------------------------------------------
// Requests — nonblocking point-to-point handles.
// ---------------------------------------------------------------------------

/// Handle for an in-flight nonblocking operation (MPI_Request analogue).
/// Send requests complete immediately (buffered-eager transport); receive
/// requests complete when a matching message is harvested by `test` or
/// `wait`. A default-constructed Request is the null request: already
/// complete, empty payload. Movable and copyable (copies share completion
/// state, like MPI handles before MPI_Request_free).
class Request {
public:
    Request() = default;

    /// True once the operation has completed (does not progress it).
    [[nodiscard]] bool done() const { return !state_ || state_->done; }

    /// Nonblocking progress + completion check: for a pending receive,
    /// polls the transport and harvests the message if it has arrived.
    bool test();

    /// Block until complete.
    void wait();

    /// Received payload; empty for sends and the null request. Only valid
    /// after completion (throws util::Error otherwise).
    [[nodiscard]] const std::vector<Real>& data() const;

private:
    friend class Comm;
    friend void wait_all(std::span<Request> requests);
    struct State {
        Transport* transport = nullptr;
        int peer = -1;  ///< remote rank (dst for sends, src for receives)
        int self = -1;  ///< local rank
        int tag = 0;
        bool done = false;
        std::vector<Real> payload;
    };
    explicit Request(std::shared_ptr<State> state) : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
};

/// Complete every request. Harvests completions in arrival order (the
/// requests may finish out of posting order); when it must block, it
/// blocks on the earliest incomplete request. Requests sharing a channel
/// (same peer and tag) must appear in the span in their posting order —
/// they match the channel's FIFO in that order.
void wait_all(std::span<Request> requests);

/// Handle for an in-flight nonblocking collective (MPI_Iallreduce
/// analogue). Obtained from `Comm::iallreduce_min`; `wait()` blocks until
/// every rank has contributed and returns the reduced value, `test()`
/// polls without blocking. A default-constructed CollRequest is null:
/// complete, value 0. While a CollRequest is outstanding its rank must
/// not enter any other collective (reduce/gather/barrier) — the
/// rendezvous would fold the two operations into one generation.
class CollRequest {
public:
    CollRequest() = default;

    /// Nonblocking completion check.
    [[nodiscard]] bool test();
    /// Block until all ranks arrive; returns the reduced value. Idempotent.
    Real wait();

private:
    friend class Comm;
    CollRequest(detail::Collective* coll, long generation)
        : coll_(coll), generation_(generation) {}
    detail::Collective* coll_ = nullptr;
    long generation_ = 0;
    bool done_ = false;
    Real value_ = 0.0;
};

/// Per-rank communicator handle (the Typhon context). Point-to-point
/// traffic goes through the backend-agnostic Transport; collectives use
/// the in-process rendezvous.
class Comm {
public:
    Comm(int rank, Transport* transport, detail::Collective* coll,
         FaultInjector* fault = nullptr, std::atomic<int>* step_slot = nullptr)
        : rank_(rank), transport_(transport), coll_(coll), fault_(fault),
          step_slot_(step_slot) {}

    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int size() const { return transport_->n_ranks(); }

    /// Driver step tick: records the step for failure reports (RankFailure
    /// carries it) and gives an attached fault injector its step-kill
    /// window. Cheap no-op when the run has neither.
    void set_step(int step);

    /// Non-blocking enqueue (buffered send — Typhon/MPI eager semantics).
    void send(int dst, int tag, std::span<const Real> data) {
        transport_->send(rank_, dst, tag,
                         std::vector<Real>(data.begin(), data.end()));
    }
    /// Move overload: hands an already-materialised payload straight to
    /// the transport (which takes the vector by value), skipping the span
    /// path's extra copy. The exchange hot path packs per-peer buffers
    /// and sends them through here.
    void send(int dst, int tag, std::vector<Real>&& data) {
        transport_->send(rank_, dst, tag, std::move(data));
    }
    /// Blocking matched receive.
    [[nodiscard]] std::vector<Real> recv(int src, int tag) {
        return transport_->recv(src, rank_, tag);
    }

    /// Nonblocking send: posts the (buffered) send and returns a Request
    /// that is already complete.
    Request isend(int dst, int tag, std::span<const Real> data);
    /// Move overload, as for send().
    Request isend(int dst, int tag, std::vector<Real>&& data) {
        transport_->send(rank_, dst, tag, std::move(data));
        return Request();
    }
    /// Nonblocking receive: returns a Request that completes (via test or
    /// wait) when a message arrives on (src -> this rank, tag).
    [[nodiscard]] Request irecv(int src, int tag);

    void barrier() { coll_->barrier(rank_); }
    [[nodiscard]] Real allreduce_min(Real v) {
        return coll_->allreduce(rank_, v, detail::Collective::Op::min);
    }
    /// Nonblocking min-reduction: contributes `v` immediately and returns
    /// a waitable request, so independent work (e.g. a halo exchange) can
    /// run while the other ranks arrive. At most one collective may be
    /// outstanding per rank (see CollRequest).
    [[nodiscard]] CollRequest iallreduce_min(Real v) {
        return CollRequest(coll_,
                           coll_->post(rank_, v, detail::Collective::Op::min));
    }
    [[nodiscard]] Real allreduce_max(Real v) {
        return coll_->allreduce(rank_, v, detail::Collective::Op::max);
    }
    [[nodiscard]] Real allreduce_sum(Real v) {
        return coll_->allreduce(rank_, v, detail::Collective::Op::sum);
    }
    [[nodiscard]] std::vector<Real> allgather(Real v) {
        return coll_->allgather(rank_, v);
    }

    /// Transport backlog snapshot (see Transport::backlog). Thread-safe;
    /// the watchdog supervisor thread calls it for stall diagnostics.
    [[nodiscard]] std::vector<ChannelBacklog> backlog() const {
        return transport_->backlog();
    }

private:
    int rank_;
    Transport* transport_;
    detail::Collective* coll_;
    FaultInjector* fault_ = nullptr;
    std::atomic<int>* step_slot_ = nullptr;
};

/// Launch `n_ranks` rank threads running `rank_fn(comm)`; joins all and
/// rethrows the first rank exception (after all threads finish), wrapped
/// in a RankFailure naming the failed rank and its last reported step. A
/// rank that dies with an exception aborts the Hub and the Collective, so
/// peers blocked on its traffic or at a rendezvous wake with
/// detail::AbortError instead of hanging the join — the *original* rank
/// error is what gets wrapped, never the secondary aborts. Returns the
/// aggregate point-to-point traffic of the run (what the coalescing
/// ablation counts). An optional FaultInjector scripts deterministic
/// failures into the transport (see fault.hpp); null means no fault hooks
/// are even consulted.
Traffic run(int n_ranks, const std::function<void(Comm&)>& rank_fn,
            FaultInjector* fault = nullptr);

// ---------------------------------------------------------------------------
// Ghost (halo) exchange schedules — the "quant" layer of Typhon.
// ---------------------------------------------------------------------------

/// Wire layout of a multi-field exchange.
///
/// * `coalesced` (default): one message per peer per exchange. The buffer
///   holds each field's send_items slice back-to-back in schedule order
///   (field-major), and the matching receive dispatches the slices into
///   the bound fields. Message count: peers-with-data, independent of the
///   field count. Uses only `base_tag`.
/// * `per_field`: the historical layout — one message per field per peer
///   on consecutive tags from base_tag. Kept as the coalescing ablation
///   baseline; lands bitwise-identical bytes in every field.
enum class Packing { coalesced, per_field };

/// For one peer rank: which local items to pack and send, and which local
/// (ghost) items to fill from the matching receive. Schedules on the two
/// sides of a peering must list the same items in the same order (built
/// from the global numbering by the partitioner). Empty sides are fine (a
/// schedule may keep separate send-only and recv-only entries for the
/// same peer) and post no message, but at most one entry per peer rank
/// may carry non-empty recv_items: receives match per (peer, tag)
/// channel, so a second non-empty receive from the same peer within one
/// exchange would be ambiguous (enforced by exchange_start). The two
/// sides of a peering must also agree on *whether* data flows: an entry
/// with empty send_items whose remote counterpart expects items leaves
/// the remote receive waiting forever — schedules must be built pairwise
/// consistent, as part::decompose does (the reverse asymmetry, a send
/// nothing ever receives, is caught by typhon::run's drained check).
struct ExchangeSchedule {
    struct Peer {
        int rank = -1;
        std::vector<Index> send_items;
        std::vector<Index> recv_items;
    };
    std::vector<Peer> peers;
};

/// One schedule together with the fields exchanged over its item lists —
/// the unit a *fused* exchange composes. Several groups may share one
/// wire exchange: in coalesced packing the per-peer message concatenates
/// every group's field slices (group-major, then field-major), so two
/// halos whose peer sets overlap (e.g. the pre-step node kinematics and
/// the ghost cell energy) collapse to a single message per peer instead
/// of one per schedule.
struct FieldGroup {
    const ExchangeSchedule* schedule = nullptr;
    std::vector<std::span<Real>> fields;
};

/// An in-flight ghost exchange: all sends are posted, all receives are
/// pending requests bound to the destination fields. `finish()` completes
/// the receives (in arrival order) and unpacks each into its field's
/// recv_items; it must be called exactly once, while the bound field spans
/// are still alive.
class PendingExchange {
public:
    PendingExchange() = default;
    PendingExchange(PendingExchange&&) = default;
    /// Move-assignment applies the abandonment guard (below) to the
    /// overwritten target before taking the other exchange's slots.
    PendingExchange& operator=(PendingExchange&& other) noexcept;
    /// Abandoning an exchange without finish() is a caller bug: the
    /// unmatched messages would sit in their channels and a later
    /// exchange on the same tags would unpack them as fresh data. The
    /// destructor asserts in debug builds and best-effort drains any
    /// already-arrived messages (discarding them) in release, so the
    /// failure stays loud or at least localised. (A finish() that threw
    /// — peer schedule mismatch — clears the slots first, so normal
    /// exception propagation is not turned into an abort.)
    ~PendingExchange();

    /// Wait for every pending receive and unpack. Out-of-order friendly:
    /// messages are harvested as they arrive, blocking only when none is
    /// ready. Throws util::Error on a schedule mismatch between peers.
    /// With a profiler, the completion is split between the comm detail
    /// slots: blocked waits charge Kernel::halo_wait and the payload
    /// dispatch into ghost items charges Kernel::halo_unpack (callers
    /// charge the aggregate Kernel::halo around the whole exchange).
    void finish(util::Profiler* profiler = nullptr);
    [[nodiscard]] bool finished() const { return slots_.empty(); }

private:
    friend PendingExchange exchange_start(Comm& comm,
                                          std::span<const FieldGroup> groups,
                                          int base_tag, Packing packing);
    /// One slice run of a pending message: the recv_items of one group and
    /// the fields unpacked from that group's part of the payload.
    struct Section {
        const std::vector<Index>* recv_items = nullptr;
        std::vector<std::span<Real>> fields;
    };
    /// One pending receive and the sections its payload unpacks into: a
    /// fused coalesced message carries one section per group with data for
    /// this peer (payload = sum over sections of fields.size() *
    /// recv_items->size() Reals, group-major then field-major); a
    /// per-field message carries exactly one section with one field.
    struct Slot {
        Request request;
        std::vector<Section> sections;
    };
    std::vector<Slot> slots_;
};

/// Start exchanging several fields: pack each peer's send_items (one
/// coalesced buffer per peer by default, or one message per field per
/// peer with Packing::per_field — see Packing for the wire formats), post
/// all sends and receives, and return the pending completion. Interior
/// work can run between start and finish while the messages are in
/// flight. Tag usage: coalesced consumes base_tag only; per_field
/// consumes base_tag .. base_tag + n_fields - 1.
[[nodiscard]] PendingExchange
exchange_start(Comm& comm, const ExchangeSchedule& schedule,
               std::initializer_list<std::span<Real>> fields, int base_tag,
               Packing packing = Packing::coalesced);

/// Fused form: start several (schedule, fields) groups as ONE wire
/// exchange. Coalesced packing posts a single message per peer rank that
/// appears (with data) in any group — the payload lays the groups'
/// slices back-to-back in group order, each group field-major — so halos
/// with aligned peer sets cost one message per peer total rather than
/// one per schedule. Peers present in only some groups simply omit the
/// other groups' slices (schedules are pairwise consistent, so both
/// sides agree on the layout). per_field packing degenerates to the
/// historical one-message-per-field-per-peer baseline, consuming one tag
/// per field across all groups in order (base_tag .. base_tag +
/// total_fields - 1); coalesced consumes base_tag only.
[[nodiscard]] PendingExchange exchange_start(Comm& comm,
                                             std::span<const FieldGroup> groups,
                                             int base_tag, Packing packing);

/// Exchange one field: pack send_items, post all sends, then receive and
/// unpack recv_items. (With one field the two packings are the same wire
/// format.) Tags partition the field space so multiple exchanges can run
/// back to back.
void exchange(Comm& comm, const ExchangeSchedule& schedule,
              std::span<Real> field, int tag);

/// Blocking multi-field exchange: exchange_start + finish.
void exchange_all(Comm& comm, const ExchangeSchedule& schedule,
                  std::initializer_list<std::span<Real>> fields, int base_tag,
                  Packing packing = Packing::coalesced);

/// Blocking fused multi-group exchange: exchange_start + finish.
void exchange_all(Comm& comm, std::span<const FieldGroup> groups, int base_tag,
                  Packing packing = Packing::coalesced);

} // namespace bookleaf::typhon
