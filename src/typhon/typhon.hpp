#pragma once
/// \file typhon.hpp
/// Typhon — the distributed communication substrate.
///
/// The reference BookLeaf performs all inter-process communication through
/// AWE's Typhon library (halo exchanges and collectives over MPI). This
/// reimplementation provides the same API shape as an *in-process* rank
/// runtime: ranks are threads, point-to-point messages pass through tagged
/// mailboxes, and collectives use generation-counted rendezvous. The
/// communication *pattern* of the mini-app (two ghost exchanges per
/// Lagrangian step plus one global min-reduction for dt, paper §III-A and
/// §IV-A) is therefore exercised with real pack/send/recv/unpack data
/// movement, testable on a single machine.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace bookleaf::typhon {

namespace detail {

/// Shared post office: tagged per-(src,dst,tag) message queues.
class Hub {
public:
    explicit Hub(int n_ranks) : n_ranks_(n_ranks) {}

    void send(int src, int dst, int tag, std::vector<Real> payload);
    std::vector<Real> recv(int src, int dst, int tag);

    [[nodiscard]] int n_ranks() const { return n_ranks_; }

private:
    static std::uint64_t key(int src, int dst, int tag) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 16) |
               static_cast<std::uint32_t>(tag & 0xffff);
    }

    int n_ranks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::unordered_map<std::uint64_t, std::deque<std::vector<Real>>> queues_;
};

/// Generation-counted rendezvous for collectives.
class Collective {
public:
    explicit Collective(int n_ranks)
        : n_ranks_(n_ranks), values_(static_cast<std::size_t>(n_ranks)) {}

    enum class Op { min, max, sum };

    Real allreduce(int rank, Real value, Op op);
    void barrier(int rank);
    /// Every rank receives the concatenation of all contributions in rank
    /// order (an allgather).
    std::vector<Real> allgather(int rank, Real value);

private:
    int n_ranks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Real> values_;
    std::vector<Real> gathered_;
    Real result_ = 0.0;
    int arrived_ = 0;
    long generation_ = 0;
};

} // namespace detail

/// Per-rank communicator handle (the Typhon context).
class Comm {
public:
    Comm(int rank, detail::Hub* hub, detail::Collective* coll)
        : rank_(rank), hub_(hub), coll_(coll) {}

    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int size() const { return hub_->n_ranks(); }

    /// Non-blocking enqueue (buffered send — Typhon/MPI eager semantics).
    void send(int dst, int tag, std::span<const Real> data) {
        hub_->send(rank_, dst, tag, std::vector<Real>(data.begin(), data.end()));
    }
    /// Blocking matched receive.
    [[nodiscard]] std::vector<Real> recv(int src, int tag) {
        return hub_->recv(src, rank_, tag);
    }

    void barrier() { coll_->barrier(rank_); }
    [[nodiscard]] Real allreduce_min(Real v) {
        return coll_->allreduce(rank_, v, detail::Collective::Op::min);
    }
    [[nodiscard]] Real allreduce_max(Real v) {
        return coll_->allreduce(rank_, v, detail::Collective::Op::max);
    }
    [[nodiscard]] Real allreduce_sum(Real v) {
        return coll_->allreduce(rank_, v, detail::Collective::Op::sum);
    }
    [[nodiscard]] std::vector<Real> allgather(Real v) {
        return coll_->allgather(rank_, v);
    }

private:
    int rank_;
    detail::Hub* hub_;
    detail::Collective* coll_;
};

/// Launch `n_ranks` rank threads running `rank_fn(comm)`; joins all and
/// rethrows the first rank exception (after all threads finish).
void run(int n_ranks, const std::function<void(Comm&)>& rank_fn);

// ---------------------------------------------------------------------------
// Ghost (halo) exchange schedules — the "quant" layer of Typhon.
// ---------------------------------------------------------------------------

/// For one peer rank: which local items to pack and send, and which local
/// (ghost) items to fill from the matching receive. Schedules on the two
/// sides of a peering must list the same items in the same order (built
/// from the global numbering by the partitioner).
struct ExchangeSchedule {
    struct Peer {
        int rank = -1;
        std::vector<Index> send_items;
        std::vector<Index> recv_items;
    };
    std::vector<Peer> peers;
};

/// Exchange one field: pack send_items, post all sends, then receive and
/// unpack recv_items. Tags partition the field space so multiple fields
/// can be exchanged back to back.
void exchange(Comm& comm, const ExchangeSchedule& schedule,
              std::span<Real> field, int tag);

/// Exchange several fields with consecutive tags starting at base_tag.
void exchange_all(Comm& comm, const ExchangeSchedule& schedule,
                  std::initializer_list<std::span<Real>> fields, int base_tag);

} // namespace bookleaf::typhon
