#pragma once
/// \file fault.hpp
/// Deterministic fault injection for the typhon transport.
///
/// A FaultPlan scripts failures the way a test (or a `[resilience]` deck
/// section) wants them to happen: kill a chosen rank when it begins a
/// chosen step or posts its Nth message, hold back (delay) a deterministic
/// subset of a rank's sends so deliveries reorder against other channels,
/// or slow a rank down by sleeping before each send. Every decision is a
/// pure function of the plan, the seed and the per-rank send ordinal — no
/// wall clock, no real randomness — so a faulty run is exactly
/// reproducible, and the recovery machinery built on top of it can be
/// tested bitwise.
///
/// The runtime face is FaultInjector: one per typhon::run attempt, owning
/// the per-rank send counters. The Hub transport consults it on every
/// send and Comm::set_step ticks it at each driver step. An injector built
/// from an empty plan reports inactive and the transport skips every hook
/// (zero cost for normal runs; typhon::run without an injector does not
/// even take the branch).
///
/// Kills carry an `attempt` number: a kill scripted for attempt 0 fires
/// during the first execution and stays quiet when dist::run's supervisor
/// re-runs the deck on the survivors — which is what lets a single deck
/// describe "rank 2 dies at step 12, then the run recovers".

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bookleaf::typhon {

/// Scripted transport faults (deck section `[resilience]`, or built
/// directly by tests). Empty plan == no faults.
struct FaultPlan {
    /// Kill `rank` when it begins step `at_step` (as reported through
    /// Comm::set_step) or when it posts its `at_message`-th send
    /// (1-based), whichever is scripted (>= 0). Fires only during
    /// supervisor attempt `attempt` (0 = the initial run).
    struct Kill {
        int rank = -1;
        int at_step = -1;
        long at_message = -1;
        int attempt = 0;
    };
    /// Hold back a deterministic ~1/`every` subset of `rank`'s sends:
    /// a held message stays invisible to nonblocking probes (try_recv)
    /// until a blocking receive on its channel claims it, so deliveries
    /// reorder against other channels while per-channel FIFO order and
    /// liveness are preserved.
    struct Delay {
        int rank = -1;
        int every = 0;
    };
    /// Sleep `microseconds` before each of `rank`'s sends (a slow rank —
    /// stresses the overlap schedule without changing any bytes).
    struct Slow {
        int rank = -1;
        int microseconds = 0;
    };

    std::vector<Kill> kills;
    std::vector<Delay> delays;
    std::vector<Slow> slows;
    /// Mixed into the delay-selection hash so different seeds hold
    /// different message subsets.
    std::uint64_t seed = 0;

    [[nodiscard]] bool empty() const {
        return kills.empty() && delays.empty() && slows.empty();
    }
};

/// Thrown by the injector when the plan kills the calling rank. typhon::run
/// treats it like any rank error (peers abort and unblock) and wraps it —
/// with the rank id and step — in a RankFailure.
struct RankKilled final : util::Error {
    int rank;
    RankKilled(int rank_, const std::string& where)
        : util::Error("fault: rank " + std::to_string(rank_) +
                      " killed by plan " + where),
          rank(rank_) {}
};

/// Runtime face of a FaultPlan for ONE typhon::run: per-rank send
/// ordinals plus the kill/hold/slow decisions. Safe for concurrent calls
/// from all rank threads.
class FaultInjector {
public:
    FaultInjector(const FaultPlan& plan, int n_ranks, int attempt = 0);

    /// True when the plan scripts anything at all; the transport skips
    /// every hook otherwise.
    [[nodiscard]] bool active() const { return active_; }

    /// Driver step tick (Comm::set_step): throws RankKilled when a kill
    /// matches (rank, at_step, attempt).
    void on_step(int rank, int step);

    /// Send hook, called once per posted message. Counts the send, sleeps
    /// if the plan slows this rank, throws RankKilled when a kill matches
    /// (rank, at_message, attempt). Returns true when this message should
    /// be held back (delayed) by the transport.
    [[nodiscard]] bool on_send(int src);

private:
    FaultPlan plan_;
    int attempt_;
    bool active_;
    std::vector<std::atomic<long>> sends_;
};

} // namespace bookleaf::typhon
