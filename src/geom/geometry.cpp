#include "geom/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace bookleaf::geom {

QuadPts gather(const mesh::Mesh& mesh, std::span<const Real> nx,
               std::span<const Real> ny, Index c) {
    QuadPts q;
    for (int k = 0; k < corners_per_cell; ++k) {
        const auto n = static_cast<std::size_t>(mesh.cn(c, k));
        q.x[static_cast<std::size_t>(k)] = nx[n];
        q.y[static_cast<std::size_t>(k)] = ny[n];
    }
    return q;
}

Real quad_area(const QuadPts& q) {
    Real a = 0.0;
    for (int k = 0; k < 4; ++k) {
        const int k1 = (k + 1) % 4;
        a += q.x[static_cast<std::size_t>(k)] * q.y[static_cast<std::size_t>(k1)] -
             q.x[static_cast<std::size_t>(k1)] * q.y[static_cast<std::size_t>(k)];
    }
    return Real(0.5) * a;
}

Vec2 quad_centroid(const QuadPts& q) {
    return {Real(0.25) * (q.x[0] + q.x[1] + q.x[2] + q.x[3]),
            Real(0.25) * (q.y[0] + q.y[1] + q.y[2] + q.y[3])};
}

std::array<Vec2, 4> area_gradients(const QuadPts& q) {
    std::array<Vec2, 4> g;
    for (int k = 0; k < 4; ++k) {
        const auto kp = static_cast<std::size_t>((k + 1) % 4);
        const auto km = static_cast<std::size_t>((k + 3) % 4);
        g[static_cast<std::size_t>(k)] = {Real(0.5) * (q.y[kp] - q.y[km]),
                                          Real(0.5) * (q.x[km] - q.x[kp])};
    }
    return g;
}

namespace {

/// Vertices of subzone i: p_i, mid(i,i+1), centroid, mid(i-1,i).
/// `weights[v][j]` is d(vertex v)/d(corner j) (a scalar because vertices
/// are affine combinations of corners with equal x/y weights).
struct Subzone {
    QuadPts pts;
    std::array<std::array<Real, 4>, 4> weights{};
};

Subzone subzone(const QuadPts& q, int i) {
    const auto ip = static_cast<std::size_t>((i + 1) % 4);
    const auto im = static_cast<std::size_t>((i + 3) % 4);
    const auto ii = static_cast<std::size_t>(i);
    Subzone s;
    s.pts.x = {q.x[ii], Real(0.5) * (q.x[ii] + q.x[ip]),
               Real(0.25) * (q.x[0] + q.x[1] + q.x[2] + q.x[3]),
               Real(0.5) * (q.x[im] + q.x[ii])};
    s.pts.y = {q.y[ii], Real(0.5) * (q.y[ii] + q.y[ip]),
               Real(0.25) * (q.y[0] + q.y[1] + q.y[2] + q.y[3]),
               Real(0.5) * (q.y[im] + q.y[ii])};
    // vertex 0 = p_i
    s.weights[0][ii] = 1.0;
    // vertex 1 = (p_i + p_{i+1})/2
    s.weights[1][ii] = 0.5;
    s.weights[1][ip] = 0.5;
    // vertex 2 = centroid
    for (auto& w : s.weights[2]) w = 0.25;
    // vertex 3 = (p_{i-1} + p_i)/2
    s.weights[3][im] = 0.5;
    s.weights[3][ii] = 0.5;
    return s;
}

} // namespace

std::array<Real, 4> corner_volumes(const QuadPts& q) {
    std::array<Real, 4> v;
    for (int i = 0; i < 4; ++i)
        v[static_cast<std::size_t>(i)] = quad_area(subzone(q, i).pts);
    return v;
}

std::array<std::array<Vec2, 4>, 4> corner_volume_gradients(const QuadPts& q) {
    std::array<std::array<Vec2, 4>, 4> grad{};
    for (int i = 0; i < 4; ++i) {
        const Subzone s = subzone(q, i);
        const auto vertex_grads = area_gradients(s.pts);
        for (std::size_t v = 0; v < 4; ++v)
            for (std::size_t j = 0; j < 4; ++j) {
                const Real w = s.weights[v][j];
                if (w == 0.0) continue;
                grad[static_cast<std::size_t>(i)][j].x += w * vertex_grads[v].x;
                grad[static_cast<std::size_t>(i)][j].y += w * vertex_grads[v].y;
            }
    }
    return grad;
}

Real char_length(const QuadPts& q) {
    const Real d1 = std::hypot(q.x[2] - q.x[0], q.y[2] - q.y[0]);
    const Real d2 = std::hypot(q.x[3] - q.x[1], q.y[3] - q.y[1]);
    const Real dmax = std::max(d1, d2);
    const Real area = std::abs(quad_area(q));
    return dmax > tiny ? area / dmax : Real(0.0);
}

Real min_edge_length(const QuadPts& q) {
    Real mn = std::numeric_limits<Real>::max();
    for (int k = 0; k < 4; ++k) {
        const auto k1 = static_cast<std::size_t>((k + 1) % 4);
        const auto kk = static_cast<std::size_t>(k);
        mn = std::min(mn, std::hypot(q.x[k1] - q.x[kk], q.y[k1] - q.y[kk]));
    }
    return mn;
}

Quality mesh_quality(const mesh::Mesh& mesh) {
    Quality out;
    out.min_area = std::numeric_limits<Real>::max();
    for (Index c = 0; c < mesh.n_cells(); ++c) {
        const QuadPts q = gather(mesh, mesh.x, mesh.y, c);
        const Real area = quad_area(q);
        if (area < out.min_area) {
            out.min_area = area;
            out.worst_cell = c;
        }
        Real emin = std::numeric_limits<Real>::max();
        Real emax = 0.0;
        for (int k = 0; k < 4; ++k) {
            const auto k1 = static_cast<std::size_t>((k + 1) % 4);
            const auto kk = static_cast<std::size_t>(k);
            const Real e = std::hypot(q.x[k1] - q.x[kk], q.y[k1] - q.y[kk]);
            emin = std::min(emin, e);
            emax = std::max(emax, e);
        }
        out.max_aspect = std::max(out.max_aspect, emax / std::max(emin, tiny));
    }
    return out;
}

} // namespace bookleaf::geom
