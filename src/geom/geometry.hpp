#pragma once
/// \file geometry.hpp
/// Pure per-quad geometry used by the hydro kernels: shoelace areas,
/// median-mesh corner (sub-zonal) volumes, and the exact gradients of
/// both with respect to node positions. The compatible discretisation
/// (Barlow [27]) takes corner forces as pressure times these gradients, so
/// getting them exactly right is what makes total-energy conservation
/// exact.

#include <array>
#include <span>

#include "mesh/mesh.hpp"
#include "util/types.hpp"

namespace bookleaf::geom {

struct Vec2 {
    Real x = 0.0, y = 0.0;
};

/// The four corner positions of one cell, CCW.
struct QuadPts {
    std::array<Real, 4> x{}, y{};
};

/// Gather corner positions of cell c from node coordinate arrays.
[[nodiscard]] QuadPts gather(const mesh::Mesh& mesh, std::span<const Real> nx,
                             std::span<const Real> ny, Index c);

/// Signed shoelace area (positive for CCW quads).
[[nodiscard]] Real quad_area(const QuadPts& q);

/// Arithmetic mean of the corners (the median-mesh cell centre).
[[nodiscard]] Vec2 quad_centroid(const QuadPts& q);

/// Gradient of the cell area w.r.t. each corner position:
///   dA/dx_i = (y_{i+1} - y_{i-1}) / 2,  dA/dy_i = (x_{i-1} - x_{i+1}) / 2.
[[nodiscard]] std::array<Vec2, 4> area_gradients(const QuadPts& q);

/// Median-mesh corner volumes: subzone i is the quad
/// (p_i, midpoint(i,i+1), centroid, midpoint(i-1,i)). They tile the cell:
/// sum_i corner_volume_i == quad_area exactly.
[[nodiscard]] std::array<Real, 4> corner_volumes(const QuadPts& q);

/// d(subzone_volume_i)/d(corner_j) for all i, j. Satisfies
/// sum_i grad[i][j] == area_gradients()[j] (subzones tile the cell).
[[nodiscard]] std::array<std::array<Vec2, 4>, 4>
corner_volume_gradients(const QuadPts& q);

/// Characteristic length for the CFL condition. BookLeaf-style: cell area
/// divided by the longest diagonal — reduces to ~h/sqrt(2) on squares and
/// shrinks for needle-like cells.
[[nodiscard]] Real char_length(const QuadPts& q);

/// Shortest edge length.
[[nodiscard]] Real min_edge_length(const QuadPts& q);

/// Mesh-quality metrics for diagnostics and generator tests.
struct Quality {
    Real min_area = 0.0;    ///< most negative/smallest signed cell area
    Real max_aspect = 0.0;  ///< max edge / min edge within any cell
    Index worst_cell = no_index;
};
[[nodiscard]] Quality mesh_quality(const mesh::Mesh& mesh);

} // namespace bookleaf::geom
