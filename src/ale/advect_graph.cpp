/// \file advect_graph.cpp
/// ALEADVECT as a task graph: the advection phases become (phase, block)
/// tasks over contiguous cell / face / node blocks, with happens-before
/// edges derived from each phase's read/write footprint against the mesh
/// topology. Instead of a barrier after every phase, a face block's
/// fluxes start as soon as the gradients of the cell blocks it reads are
/// ready, and a node block's momentum gather starts as soon as the dual
/// sweeps of its incident cell blocks are done.
///
/// Bitwise contract (same as hydro::StepGraph): the graph changes only
/// *when* work runs, never what it computes. Per-entity writes are
/// disjoint across concurrent tasks, every cross-entity accumulation is a
/// gather replaying the serial order (cells walk their own faces in local
/// face order, nodes walk ctx.corner_gather() rows), the floored-corner
/// count is a commutative integer sum, and the kinematic BC fixup runs as
/// one serial task exactly where the fork-join sequence applies it.
///
/// Hazards and the edges that cover them:
///   cent  -> grad   : gradients read centroids of own + face-neighbours.
///   grad  -> flux   : fluxes read gradients/rho/ein of both face cells
///                     (centroids arrive transitively via grad's deps).
///   flux  -> cells  : RAW on mflux/eflux of own faces, and WAR — cells
///                     writes ein, which the fluxes of every incident
///                     face read. Both are the same face-block set.
///   flux  -> dual   : RAW on mflux of own faces.
///   dual  -> gather : RAW on cnmass/dflux of the incident cells.
///   gather-> write  : WAR — write updates u,v, which the gathers of
///                     every node block sharing a cell with this one read
///                     as upwind velocities (a symmetric coupling that
///                     includes the block itself, covering the RAW on the
///                     workspace accumulators).
///   write -> bc     : the serial BC fixup reads/writes u,v everywhere.
/// cells tasks are terminal (nothing in the graph reads cell_mass/ein
/// after them); the graph completes only when every task has run.

#include <algorithm>
#include <atomic>
#include <vector>

#include "ale/remap.hpp"
#include "par/task_graph.hpp"
#include "util/log.hpp"

namespace bookleaf::ale {

namespace {

struct BlockRange {
    Index begin = 0, end = 0;
};

std::vector<BlockRange> make_blocks(Index n, Index block_size) {
    std::vector<BlockRange> blocks;
    for (Index b = 0; b < n; b += block_size)
        blocks.push_back({b, std::min<Index>(n, b + block_size)});
    if (blocks.empty()) blocks.push_back({0, 0});
    return blocks;
}

void sort_unique(std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

} // namespace

void aleadvect_graph(const hydro::Context& ctx, hydro::State& s,
                     const Options& opts, Workspace& w) {
    const auto& mesh = *ctx.mesh;
    const Index n_cells = mesh.n_cells();
    const Index n_nodes = mesh.n_nodes();
    const Index n_faces = mesh.n_faces();

    // Task bodies run with a serialized context: the block overloads are
    // serial loops, and nulling the pool guarantees nothing they reach can
    // re-dispatch onto the pool the graph itself is scheduled on.
    hydro::Context body = ctx;
    body.exec.pool = nullptr;

    // Size the workspace arrays the blocks write into. Every slot is
    // written by exactly one task (fluxes zero their own slots), so plain
    // resizes replace the fork-join phases' full-array assigns.
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect);
        const auto nc = static_cast<std::size_t>(n_cells);
        w.cx.resize(nc);
        w.cy.resize(nc);
        w.grad_rho_x.resize(nc);
        w.grad_rho_y.resize(nc);
        w.grad_e_x.resize(nc);
        w.grad_e_y.resize(nc);
        w.mflux.resize(static_cast<std::size_t>(n_faces));
        w.eflux.resize(static_cast<std::size_t>(n_faces));
        w.dflux.resize(nc * corners_per_cell);
        aleadvect_nodes_resize(mesh, w);
    }

    const Index cell_bs = par::detail::resolve_task_block(ctx.exec, n_cells);
    const Index node_bs = par::detail::resolve_task_block(ctx.exec, n_nodes);
    const Index face_bs = par::detail::resolve_task_block(ctx.exec, n_faces);
    const auto cells = make_blocks(n_cells, cell_bs);
    const auto nodes = make_blocks(n_nodes, node_bs);
    const auto faces = make_blocks(n_faces, face_bs);
    const int n_cb = static_cast<int>(cells.size());
    const int n_nb = static_cast<int>(nodes.size());
    const int n_fb = static_cast<int>(faces.size());
    const auto cb_of = [&](Index c) { return static_cast<int>(c / cell_bs); };
    const auto nb_of = [&](Index n) { return static_cast<int>(n / node_bs); };
    const auto fb_of = [&](Index f) { return static_cast<int>(f / face_bs); };

    // --- couplings -------------------------------------------------------
    // face_nb_cb[cb]:  cb plus the cell blocks of its face neighbours
    //                  (the gradient stencil).
    // faces_cb[cb]:    face blocks holding any face of a cell in cb.
    // cells_fb[fb]:    cell blocks holding either side of a face in fb.
    // touch_cb[nb]:    cell blocks whose corners a node in nb gathers
    //                  (ctx.corner_gather(): flat corner id / 4 = cell).
    // adj_nb[nb]:      node blocks sharing a cell with a node in nb — the
    //                  upwind-velocity stencil (symmetric, includes nb).
    std::vector<std::vector<int>> face_nb_cb(cells.size());
    std::vector<std::vector<int>> faces_cb(cells.size());
    std::vector<std::vector<int>> cells_fb(faces.size());
    std::vector<std::vector<int>> touch_cb(nodes.size());
    std::vector<std::vector<int>> adj_nb(nodes.size());

    for (int cb = 0; cb < n_cb; ++cb) {
        auto& nbs = face_nb_cb[static_cast<std::size_t>(cb)];
        auto& fbs = faces_cb[static_cast<std::size_t>(cb)];
        nbs.push_back(cb);
        for (Index c = cells[static_cast<std::size_t>(cb)].begin;
             c < cells[static_cast<std::size_t>(cb)].end; ++c) {
            for (int k = 0; k < corners_per_cell; ++k) {
                const Index nbr = mesh.neighbor(c, k);
                if (nbr != no_index) nbs.push_back(cb_of(nbr));
                fbs.push_back(fb_of(mesh.face_of(c, k)));
            }
        }
        sort_unique(nbs);
        sort_unique(fbs);
    }
    for (int fb = 0; fb < n_fb; ++fb) {
        auto& cbs = cells_fb[static_cast<std::size_t>(fb)];
        for (Index f = faces[static_cast<std::size_t>(fb)].begin;
             f < faces[static_cast<std::size_t>(fb)].end; ++f) {
            const auto& face = mesh.faces[static_cast<std::size_t>(f)];
            cbs.push_back(cb_of(face.left));
            if (face.right != no_index) cbs.push_back(cb_of(face.right));
        }
        sort_unique(cbs);
    }
    const auto& gather = ctx.corner_gather();
    for (int nb = 0; nb < n_nb; ++nb) {
        auto& touch = touch_cb[static_cast<std::size_t>(nb)];
        auto& adj = adj_nb[static_cast<std::size_t>(nb)];
        for (Index n = nodes[static_cast<std::size_t>(nb)].begin;
             n < nodes[static_cast<std::size_t>(nb)].end; ++n) {
            for (const Index ck : gather.row(n)) {
                const Index c = ck / corners_per_cell;
                touch.push_back(cb_of(c));
                for (int m = 0; m < corners_per_cell; ++m)
                    adj.push_back(nb_of(mesh.cn(c, m)));
            }
        }
        adj.push_back(nb);
        sort_unique(touch);
        sort_unique(adj);
    }

    // --- tasks -----------------------------------------------------------
    using par::TaskId;
    par::TaskGraph graph;
    std::atomic<long> floored{0};
    auto link = [&](TaskId after, const std::vector<int>& blocks,
                    const std::vector<TaskId>& ids) {
        for (const int b : blocks)
            graph.depend(after, ids[static_cast<std::size_t>(b)]);
    };

    std::vector<TaskId> cent(cells.size()), grad(cells.size());
    std::vector<TaskId> flux(faces.size());
    std::vector<TaskId> cellt(cells.size()), dual(cells.size());
    std::vector<TaskId> gat(nodes.size()), wri(nodes.size());

    for (int cb = 0; cb < n_cb; ++cb) {
        const Index b = cells[static_cast<std::size_t>(cb)].begin;
        const Index e = cells[static_cast<std::size_t>(cb)].end;
        cent[static_cast<std::size_t>(cb)] = graph.add(
            [&body, &s, &w, b, e] { aleadvect_centroids(body, s, w, b, e); },
            false, util::Kernel::ale_gradients);
    }
    for (int cb = 0; cb < n_cb; ++cb) {
        const Index b = cells[static_cast<std::size_t>(cb)].begin;
        const Index e = cells[static_cast<std::size_t>(cb)].end;
        grad[static_cast<std::size_t>(cb)] = graph.add([&body, &s, &opts, &w,
                                                        b, e] {
            aleadvect_gradients(body, s, opts, w, b, e);
        }, false, util::Kernel::ale_gradients);
        link(grad[static_cast<std::size_t>(cb)],
             face_nb_cb[static_cast<std::size_t>(cb)], cent);
    }
    for (int fb = 0; fb < n_fb; ++fb) {
        const Index b = faces[static_cast<std::size_t>(fb)].begin;
        const Index e = faces[static_cast<std::size_t>(fb)].end;
        flux[static_cast<std::size_t>(fb)] = graph.add(
            [&body, &s, &opts, &w, b, e] {
                aleadvect_fluxes(body, s, opts, w, b, e);
            }, false, util::Kernel::ale_fluxes);
        link(flux[static_cast<std::size_t>(fb)],
             cells_fb[static_cast<std::size_t>(fb)], grad);
    }
    for (int cb = 0; cb < n_cb; ++cb) {
        const Index b = cells[static_cast<std::size_t>(cb)].begin;
        const Index e = cells[static_cast<std::size_t>(cb)].end;
        cellt[static_cast<std::size_t>(cb)] = graph.add(
            [&body, &s, &w, b, e] { aleadvect_cells(body, s, w, b, e); },
            false, util::Kernel::ale_cells);
        link(cellt[static_cast<std::size_t>(cb)],
             faces_cb[static_cast<std::size_t>(cb)], flux);
        dual[static_cast<std::size_t>(cb)] = graph.add([&body, &s, &w,
                                                        &floored, b, e] {
            aleadvect_dual(body, s, w, b, e, floored);
        }, false, util::Kernel::ale_dual);
        link(dual[static_cast<std::size_t>(cb)],
             faces_cb[static_cast<std::size_t>(cb)], flux);
    }
    for (int nb = 0; nb < n_nb; ++nb) {
        const Index b = nodes[static_cast<std::size_t>(nb)].begin;
        const Index e = nodes[static_cast<std::size_t>(nb)].end;
        gat[static_cast<std::size_t>(nb)] = graph.add(
            [&body, &s, &w, b, e] {
                aleadvect_node_gather(body, s, w, b, e);
            },
            false, util::Kernel::ale_nodes);
        link(gat[static_cast<std::size_t>(nb)],
             touch_cb[static_cast<std::size_t>(nb)], dual);
    }
    for (int nb = 0; nb < n_nb; ++nb) {
        const Index b = nodes[static_cast<std::size_t>(nb)].begin;
        const Index e = nodes[static_cast<std::size_t>(nb)].end;
        wri[static_cast<std::size_t>(nb)] = graph.add(
            [&body, &s, &w, b, e] {
                aleadvect_node_write(body, s, w, b, e);
            },
            false, util::Kernel::ale_nodes);
        link(wri[static_cast<std::size_t>(nb)],
             adj_nb[static_cast<std::size_t>(nb)], gat);
    }
    const TaskId bc = graph.add([&body, &s] {
        const util::ScopedTimer timer(*body.profiler, util::Kernel::aleadvect);
        const util::ScopedTimer phase(*body.profiler, util::Kernel::ale_nodes);
        hydro::apply_velocity_bc(*body.mesh, body.opts, s.u, s.v);
    }, false, util::Kernel::ale_nodes);
    for (const TaskId id : wri) graph.depend(bc, id);

    graph.run(ctx.exec, ctx.profiler, ctx.graph_log);

    if (floored.load() > 0)
        util::log_warn("aleadvect: floored ", floored.load(),
                       " negative corner masses");
}

} // namespace bookleaf::ale
