/// \file advect.cpp
/// ALEADVECT: advection of the independent variables.
///
/// Cell quantities (mass, internal energy) use donor-cell fluxes with
/// limited linear reconstruction: least-squares gradients over face
/// neighbours, Barth-Jespersen slope limiting, and a final clamp of the
/// face value to the donor/acceptor range (monotonicity, van Leer [30]).
///
/// Corner masses follow the corner-transport picture: half of each face
/// flux is drawn from each of the face's two corners (an intra-node,
/// inter-cell transfer), and the median-dual fluxes
///   d_k = (out_{k+1} - out_{k-1}) / 4      (corner k -> corner k+1)
/// move mass between corners *within* the cell — these are the transfers
/// that change nodal masses. Nodal momentum rides the dual fluxes with
/// first-order upwind velocities, making the momentum remap exactly
/// conservative and dissipative.

#include <algorithm>
#include <cmath>

#include "ale/remap.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace bookleaf::ale {

namespace {

/// Least-squares gradient of the cell field `q` over face neighbours with
/// optional Barth-Jespersen limiting at the (old-geometry) face midpoints.
void limited_gradients(const mesh::Mesh& mesh, const hydro::State& s,
                       const Workspace& w, const std::vector<Real>& q,
                       bool limit, std::vector<Real>& gx, std::vector<Real>& gy) {
    const Index n_cells = mesh.n_cells();
    gx.assign(static_cast<std::size_t>(n_cells), 0.0);
    gy.assign(static_cast<std::size_t>(n_cells), 0.0);

    for (Index c = 0; c < n_cells; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        Real axx = 0, axy = 0, ayy = 0, bx = 0, by = 0;
        Real qmin = q[ci], qmax = q[ci];
        int n_nb = 0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const Index nb = mesh.neighbor(c, k);
            if (nb == no_index) continue;
            const auto nbi = static_cast<std::size_t>(nb);
            const Real dx = w.cx[nbi] - w.cx[ci];
            const Real dy = w.cy[nbi] - w.cy[ci];
            const Real dq = q[nbi] - q[ci];
            axx += dx * dx;
            axy += dx * dy;
            ayy += dy * dy;
            bx += dx * dq;
            by += dy * dq;
            qmin = std::min(qmin, q[nbi]);
            qmax = std::max(qmax, q[nbi]);
            ++n_nb;
        }
        if (n_nb < 2) continue;
        const Real det = axx * ayy - axy * axy;
        if (std::abs(det) < tiny) continue;
        Real gxc = (bx * ayy - by * axy) / det;
        Real gyc = (by * axx - bx * axy) / det;

        if (limit) {
            Real alpha = 1.0;
            for (int k = 0; k < corners_per_cell; ++k) {
                const auto a = static_cast<std::size_t>(mesh.cn(c, k));
                const auto b = static_cast<std::size_t>(
                    mesh.cn(c, (k + 1) % corners_per_cell));
                const Real fx = Real(0.5) * (s.x[a] + s.x[b]);
                const Real fy = Real(0.5) * (s.y[a] + s.y[b]);
                const Real proj =
                    gxc * (fx - w.cx[ci]) + gyc * (fy - w.cy[ci]);
                if (proj > tiny)
                    alpha = std::min(alpha, (qmax - q[ci]) / proj);
                else if (proj < -tiny)
                    alpha = std::min(alpha, (qmin - q[ci]) / proj);
            }
            alpha = std::clamp(alpha, Real(0.0), Real(1.0));
            gxc *= alpha;
            gyc *= alpha;
        }
        gx[ci] = gxc;
        gy[ci] = gyc;
    }
}

} // namespace

void aleadvect(const hydro::Context& ctx, hydro::State& s, const Options& opts,
               Workspace& w) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect);
    const auto& mesh = *ctx.mesh;
    const Index n_cells = mesh.n_cells();
    const Index n_nodes = mesh.n_nodes();
    const auto n_faces = mesh.faces.size();

    // --- old-geometry centroids ------------------------------------------
    w.cx.assign(static_cast<std::size_t>(n_cells), 0.0);
    w.cy.assign(static_cast<std::size_t>(n_cells), 0.0);
    for (Index c = 0; c < n_cells; ++c) {
        Real sx = 0, sy = 0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const auto n = static_cast<std::size_t>(mesh.cn(c, k));
            sx += s.x[n];
            sy += s.y[n];
        }
        w.cx[static_cast<std::size_t>(c)] = Real(0.25) * sx;
        w.cy[static_cast<std::size_t>(c)] = Real(0.25) * sy;
    }

    // --- limited gradients for rho and ein --------------------------------
    limited_gradients(mesh, s, w, s.rho, opts.limit, w.grad_rho_x, w.grad_rho_y);
    limited_gradients(mesh, s, w, s.ein, opts.limit, w.grad_e_x, w.grad_e_y);

    // --- face mass / energy fluxes -----------------------------------------
    w.mflux.assign(n_faces, 0.0);
    w.eflux.assign(n_faces, 0.0);
    for (std::size_t fi = 0; fi < n_faces; ++fi) {
        const Real fvol = w.fvol[fi];
        if (std::abs(fvol) < tiny) continue;
        const auto& f = mesh.faces[fi];
        if (f.right == no_index)
            throw util::Error(
                "aleadvect: boundary face swept volume (boundary node moved "
                "off its wall; check alegetmesh constraints)");
        const Index don = fvol > 0 ? f.left : f.right;
        const auto di = static_cast<std::size_t>(don);
        const auto li = static_cast<std::size_t>(f.left);
        const auto ri = static_cast<std::size_t>(f.right);

        const auto a = static_cast<std::size_t>(f.a);
        const auto b = static_cast<std::size_t>(f.b);
        const Real fx = Real(0.5) * (s.x[a] + s.x[b]);
        const Real fy = Real(0.5) * (s.y[a] + s.y[b]);
        const Real ddx = fx - w.cx[di];
        const Real ddy = fy - w.cy[di];

        Real rho_f = s.rho[di] + w.grad_rho_x[di] * ddx + w.grad_rho_y[di] * ddy;
        Real e_f = s.ein[di] + w.grad_e_x[di] * ddx + w.grad_e_y[di] * ddy;
        if (opts.limit) {
            rho_f = std::clamp(rho_f, std::min(s.rho[li], s.rho[ri]),
                               std::max(s.rho[li], s.rho[ri]));
            e_f = std::clamp(e_f, std::min(s.ein[li], s.ein[ri]),
                             std::max(s.ein[li], s.ein[ri]));
        }
        rho_f = std::max(rho_f, Real(0.0));

        w.mflux[fi] = fvol * rho_f;
        w.eflux[fi] = w.mflux[fi] * e_f;
    }

    // --- cell mass / internal energy update --------------------------------
    std::vector<Real> dm(static_cast<std::size_t>(n_cells), 0.0);
    std::vector<Real> de(static_cast<std::size_t>(n_cells), 0.0);
    for (std::size_t fi = 0; fi < n_faces; ++fi) {
        const Real mf = w.mflux[fi];
        const Real ef = w.eflux[fi];
        if (mf == 0.0 && ef == 0.0) continue;
        const auto& f = mesh.faces[fi];
        dm[static_cast<std::size_t>(f.left)] -= mf;
        dm[static_cast<std::size_t>(f.right)] += mf;
        de[static_cast<std::size_t>(f.left)] -= ef;
        de[static_cast<std::size_t>(f.right)] += ef;
    }
    for (Index c = 0; c < n_cells; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const Real m_old = s.cell_mass[ci];
        const Real m_new = m_old + dm[ci];
        const Real e_total = m_old * s.ein[ci] + de[ci];
        s.cell_mass[ci] = m_new;
        s.ein[ci] = e_total / std::max(m_new, tiny);
    }

    // --- corner masses and nodal momentum ----------------------------------
    w.pmx.assign(static_cast<std::size_t>(n_nodes), 0.0);
    w.pmy.assign(static_cast<std::size_t>(n_nodes), 0.0);
    for (Index n = 0; n < n_nodes; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        w.pmx[ni] = s.node_mass[ni] * s.u[ni];
        w.pmy[ni] = s.node_mass[ni] * s.v[ni];
    }

    long floored = 0;
    for (Index c = 0; c < n_cells; ++c) {
        // Signed outflow through each local face.
        std::array<Real, 4> out{};
        for (int k = 0; k < corners_per_cell; ++k) {
            const Index fid = mesh.face_of(c, k);
            const auto& f = mesh.faces[static_cast<std::size_t>(fid)];
            const Real mf = w.mflux[static_cast<std::size_t>(fid)];
            out[static_cast<std::size_t>(k)] = (f.left == c) ? mf : -mf;
        }
        // Median-dual fluxes d_k: corner k -> corner k+1.
        std::array<Real, 4> d{};
        for (int k = 0; k < corners_per_cell; ++k)
            d[static_cast<std::size_t>(k)] =
                Real(0.25) * (out[static_cast<std::size_t>((k + 1) % 4)] -
                              out[static_cast<std::size_t>((k + 3) % 4)]);

        for (int k = 0; k < corners_per_cell; ++k) {
            const auto ki = hydro::State::cidx(c, k);
            s.cnmass[ki] += -Real(0.5) * out[static_cast<std::size_t>(k)] -
                            Real(0.5) * out[static_cast<std::size_t>((k + 3) % 4)] -
                            d[static_cast<std::size_t>(k)] +
                            d[static_cast<std::size_t>((k + 3) % 4)];
            if (s.cnmass[ki] < 0.0) {
                s.cnmass[ki] = 0.0;
                ++floored;
            }
        }

        // Momentum rides the dual fluxes with upwind velocity.
        for (int k = 0; k < corners_per_cell; ++k) {
            const Real dk = d[static_cast<std::size_t>(k)];
            if (dk == 0.0) continue;
            const auto na = static_cast<std::size_t>(mesh.cn(c, k));
            const auto nb = static_cast<std::size_t>(
                mesh.cn(c, (k + 1) % corners_per_cell));
            const auto don = dk > 0 ? na : nb;
            w.pmx[na] -= dk * s.u[don];
            w.pmx[nb] += dk * s.u[don];
            w.pmy[na] -= dk * s.v[don];
            w.pmy[nb] += dk * s.v[don];
        }
    }
    if (floored > 0)
        util::log_warn("aleadvect: floored ", floored, " negative corner masses");

    // --- new nodal masses and velocities ------------------------------------
    std::fill(s.node_mass.begin(), s.node_mass.end(), 0.0);
    for (Index c = 0; c < n_cells; ++c)
        for (int k = 0; k < corners_per_cell; ++k)
            s.node_mass[static_cast<std::size_t>(mesh.cn(c, k))] +=
                s.cnmass[hydro::State::cidx(c, k)];
    for (Index n = 0; n < n_nodes; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (s.node_mass[ni] > tiny) {
            s.u[ni] = w.pmx[ni] / s.node_mass[ni];
            s.v[ni] = w.pmy[ni] / s.node_mass[ni];
        } else {
            s.u[ni] = 0.0;
            s.v[ni] = 0.0;
        }
    }
    hydro::apply_velocity_bc(mesh, ctx.opts, s.u, s.v);
}

} // namespace bookleaf::ale
