/// \file advect.cpp
/// ALEADVECT: advection of the independent variables.
///
/// Cell quantities (mass, internal energy) use donor-cell fluxes with
/// limited linear reconstruction: least-squares gradients over face
/// neighbours, Barth-Jespersen slope limiting, and a final clamp of the
/// face value to the donor/acceptor range (monotonicity, van Leer [30]).
///
/// Corner masses follow the corner-transport picture: half of each face
/// flux is drawn from each of the face's two corners (an intra-node,
/// inter-cell transfer), and the median-dual fluxes
///   d_k = (out_{k+1} - out_{k-1}) / 4      (corner k -> corner k+1)
/// move mass between corners *within* the cell — these are the transfers
/// that change nodal masses. Nodal momentum rides the dual fluxes with
/// first-order upwind velocities, making the momentum remap exactly
/// conservative and dissipative.
///
/// The sweep is decomposed into phases (gradients -> fluxes -> cells ->
/// dual -> nodes), each per-entity independent, with every cross-entity
/// accumulation written as a *gather in ascending global order*: cells
/// gather their own four faces, nodes gather their incident corners via
/// ctx.corner_gather(). The distributed remap runs the same phases over
/// subranges with ghost exchanges in between and lands bitwise-identical
/// owned results; aleadvect() below is the full-mesh composition.

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>

#include "ale/remap.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace bookleaf::ale {

namespace {

/// Cell centroids (old geometry) for cells [begin, end) — writes every
/// listed slot of w.cx/w.cy unconditionally.
void centroids_core(const mesh::Mesh& mesh, const hydro::State& s,
                    Workspace& w, Index begin, Index end) {
    for (Index c = begin; c < end; ++c) {
        Real sx = 0, sy = 0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const auto n = static_cast<std::size_t>(mesh.cn(c, k));
            sx += s.x[n];
            sy += s.y[n];
        }
        w.cx[static_cast<std::size_t>(c)] = Real(0.25) * sx;
        w.cy[static_cast<std::size_t>(c)] = Real(0.25) * sy;
    }
}

/// Least-squares gradient of the cell field `q` over face neighbours with
/// optional Barth-Jespersen limiting at the (old-geometry) face midpoints,
/// for cells [begin, end). Every listed slot of gx/gy is written (zero for
/// degenerate stencils), so callers need only size the arrays.
void gradients_core(const mesh::Mesh& mesh, const hydro::State& s,
                    const Workspace& w, std::span<const Real> q, bool limit,
                    Index begin, Index end, std::vector<Real>& gx,
                    std::vector<Real>& gy) {
    for (Index c = begin; c < end; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        gx[ci] = 0.0;
        gy[ci] = 0.0;
        Real axx = 0, axy = 0, ayy = 0, bx = 0, by = 0;
        Real qmin = q[ci], qmax = q[ci];
        int n_nb = 0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const Index nb = mesh.neighbor(c, k);
            if (nb == no_index) continue;
            const auto nbi = static_cast<std::size_t>(nb);
            const Real dx = w.cx[nbi] - w.cx[ci];
            const Real dy = w.cy[nbi] - w.cy[ci];
            const Real dq = q[nbi] - q[ci];
            axx += dx * dx;
            axy += dx * dy;
            ayy += dy * dy;
            bx += dx * dq;
            by += dy * dq;
            qmin = std::min(qmin, q[nbi]);
            qmax = std::max(qmax, q[nbi]);
            ++n_nb;
        }
        if (n_nb < 2) continue;
        const Real det = axx * ayy - axy * axy;
        if (std::abs(det) < tiny) continue;
        Real gxc = (bx * ayy - by * axy) / det;
        Real gyc = (by * axx - bx * axy) / det;

        if (limit) {
            Real alpha = 1.0;
            for (int k = 0; k < corners_per_cell; ++k) {
                const auto a = static_cast<std::size_t>(mesh.cn(c, k));
                const auto b = static_cast<std::size_t>(
                    mesh.cn(c, (k + 1) % corners_per_cell));
                const Real fx = Real(0.5) * (s.x[a] + s.x[b]);
                const Real fy = Real(0.5) * (s.y[a] + s.y[b]);
                const Real proj =
                    gxc * (fx - w.cx[ci]) + gyc * (fy - w.cy[ci]);
                if (proj > tiny)
                    alpha = std::min(alpha, (qmax - q[ci]) / proj);
                else if (proj < -tiny)
                    alpha = std::min(alpha, (qmin - q[ci]) / proj);
            }
            alpha = std::clamp(alpha, Real(0.0), Real(1.0));
            gxc *= alpha;
            gyc *= alpha;
        }
        gx[ci] = gxc;
        gy[ci] = gyc;
    }
}

/// Donor-cell flux of one face (mass + energy from the limited linear
/// reconstruction). Writes only this face's mflux/eflux.
inline void flux_face(const mesh::Mesh& mesh, const hydro::State& s,
                      const Options& opts, Workspace& w, std::size_t fi) {
    const Real fvol = w.fvol[fi];
    if (std::abs(fvol) < tiny) return;
    const auto& f = mesh.faces[fi];
    if (f.right == no_index)
        throw util::Error(
            "aleadvect: boundary face swept volume (boundary node moved "
            "off its wall; check alegetmesh constraints)");
    const Index don = fvol > 0 ? f.left : f.right;
    const auto di = static_cast<std::size_t>(don);
    const auto li = static_cast<std::size_t>(f.left);
    const auto ri = static_cast<std::size_t>(f.right);

    const auto a = static_cast<std::size_t>(f.a);
    const auto b = static_cast<std::size_t>(f.b);
    const Real fx = Real(0.5) * (s.x[a] + s.x[b]);
    const Real fy = Real(0.5) * (s.y[a] + s.y[b]);
    const Real ddx = fx - w.cx[di];
    const Real ddy = fy - w.cy[di];

    Real rho_f = s.rho[di] + w.grad_rho_x[di] * ddx + w.grad_rho_y[di] * ddy;
    Real e_f = s.ein[di] + w.grad_e_x[di] * ddx + w.grad_e_y[di] * ddy;
    if (opts.limit) {
        rho_f = std::clamp(rho_f, std::min(s.rho[li], s.rho[ri]),
                           std::max(s.rho[li], s.rho[ri]));
        e_f = std::clamp(e_f, std::min(s.ein[li], s.ein[ri]),
                         std::max(s.ein[li], s.ein[ri]));
    }
    rho_f = std::max(rho_f, Real(0.0));

    w.mflux[fi] = fvol * rho_f;
    w.eflux[fi] = w.mflux[fi] * e_f;
}

} // namespace

void aleadvect_centroids(const hydro::Context& ctx, const hydro::State& s,
                         Workspace& w) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  ctx.mesh->n_cells());
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_gradients,
                                  ctx.mesh->n_cells());
    const auto& mesh = *ctx.mesh;
    const Index n_cells = mesh.n_cells();
    w.cx.assign(static_cast<std::size_t>(n_cells), 0.0);
    w.cy.assign(static_cast<std::size_t>(n_cells), 0.0);
    centroids_core(mesh, s, w, 0, n_cells);
}

void aleadvect_centroids(const hydro::Context& ctx, const hydro::State& s,
                         Workspace& w, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  end - begin);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_gradients,
                                  end - begin);
    centroids_core(*ctx.mesh, s, w, begin, end);
}

void aleadvect_gradients(const hydro::Context& ctx, const hydro::State& s,
                         const Options& opts, Workspace& w, Index n_cells) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  n_cells);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_gradients,
                                  n_cells);
    const auto& mesh = *ctx.mesh;
    const auto nc = static_cast<std::size_t>(mesh.n_cells());
    w.grad_rho_x.assign(nc, 0.0);
    w.grad_rho_y.assign(nc, 0.0);
    w.grad_e_x.assign(nc, 0.0);
    w.grad_e_y.assign(nc, 0.0);
    gradients_core(mesh, s, w, s.rho, opts.limit, 0, n_cells, w.grad_rho_x,
                   w.grad_rho_y);
    gradients_core(mesh, s, w, s.ein, opts.limit, 0, n_cells, w.grad_e_x,
                   w.grad_e_y);
}

void aleadvect_gradients(const hydro::Context& ctx, const hydro::State& s,
                         const Options& opts, Workspace& w, Index begin,
                         Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  end - begin);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_gradients,
                                  end - begin);
    const auto& mesh = *ctx.mesh;
    gradients_core(mesh, s, w, s.rho, opts.limit, begin, end, w.grad_rho_x,
                   w.grad_rho_y);
    gradients_core(mesh, s, w, s.ein, opts.limit, begin, end, w.grad_e_x,
                   w.grad_e_y);
}

void aleadvect_fluxes(const hydro::Context& ctx, const hydro::State& s,
                      const Options& opts, Workspace& w) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  ctx.mesh->n_faces());
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_fluxes,
                                  ctx.mesh->n_faces());
    const auto& mesh = *ctx.mesh;
    w.mflux.assign(mesh.faces.size(), 0.0);
    w.eflux.assign(mesh.faces.size(), 0.0);
    for (std::size_t fi = 0; fi < mesh.faces.size(); ++fi)
        flux_face(mesh, s, opts, w, fi);
}

void aleadvect_fluxes(const hydro::Context& ctx, const hydro::State& s,
                      const Options& opts, Workspace& w,
                      std::span<const Index> faces) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  static_cast<long long>(faces.size()));
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_fluxes,
                                  static_cast<long long>(faces.size()));
    const auto& mesh = *ctx.mesh;
    w.mflux.assign(mesh.faces.size(), 0.0);
    w.eflux.assign(mesh.faces.size(), 0.0);
    for (const Index fi : faces)
        flux_face(mesh, s, opts, w, static_cast<std::size_t>(fi));
}

void aleadvect_fluxes(const hydro::Context& ctx, const hydro::State& s,
                      const Options& opts, Workspace& w, Index begin,
                      Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  end - begin);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_fluxes,
                                  end - begin);
    const auto& mesh = *ctx.mesh;
    // Own-slot zeroing replaces the full-array assign of the whole-mesh
    // overload (flux_face leaves quiescent faces untouched).
    for (Index f = begin; f < end; ++f) {
        const auto fi = static_cast<std::size_t>(f);
        w.mflux[fi] = 0.0;
        w.eflux[fi] = 0.0;
        flux_face(mesh, s, opts, w, fi);
    }
}

void aleadvect_fluxes_chunk(const hydro::Context& ctx, const hydro::State& s,
                            const Options& opts, Workspace& w,
                            std::span<const Index> faces) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  static_cast<long long>(faces.size()));
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_fluxes,
                                  static_cast<long long>(faces.size()));
    const auto& mesh = *ctx.mesh;
    for (const Index fi : faces)
        flux_face(mesh, s, opts, w, static_cast<std::size_t>(fi));
}

namespace {

/// Cell-mesh advection sweep for cells [begin, end): apply the four face
/// fluxes to this cell's mass and energy (gather in local face order).
void cells_core(const mesh::Mesh& mesh, hydro::State& s, const Workspace& w,
                Index begin, Index end) {
    for (Index c = begin; c < end; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        Real dm = 0.0, de = 0.0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const auto fi = static_cast<std::size_t>(mesh.face_of(c, k));
            const auto& f = mesh.faces[fi];
            if (f.left == c) {
                dm -= w.mflux[fi];
                de -= w.eflux[fi];
            } else {
                dm += w.mflux[fi];
                de += w.eflux[fi];
            }
        }
        const Real m_old = s.cell_mass[ci];
        const Real m_new = m_old + dm;
        const Real e_total = m_old * s.ein[ci] + de;
        s.cell_mass[ci] = m_new;
        s.ein[ci] = e_total / std::max(m_new, tiny);
    }
}

/// Dual-mesh advection sweep for cells [begin, end). Writes only this
/// range's dflux/cnmass corner slots; the floor count is a commutative
/// integer sum, so the atomic total equals the serial one at any schedule.
void dual_core(const mesh::Mesh& mesh, hydro::State& s, Workspace& w,
               Index begin, Index end, std::atomic<long>& floored) {
    for (Index c = begin; c < end; ++c) {
        // Signed outflow through each local face.
        std::array<Real, 4> out{};
        for (int k = 0; k < corners_per_cell; ++k) {
            const Index fid = mesh.face_of(c, k);
            const auto& f = mesh.faces[static_cast<std::size_t>(fid)];
            const Real mf = w.mflux[static_cast<std::size_t>(fid)];
            out[static_cast<std::size_t>(k)] = (f.left == c) ? mf : -mf;
        }
        // Median-dual fluxes d_k: corner k -> corner k+1.
        for (int k = 0; k < corners_per_cell; ++k)
            w.dflux[hydro::State::cidx(c, k)] =
                Real(0.25) * (out[static_cast<std::size_t>((k + 1) % 4)] -
                              out[static_cast<std::size_t>((k + 3) % 4)]);

        for (int k = 0; k < corners_per_cell; ++k) {
            const auto ki = hydro::State::cidx(c, k);
            s.cnmass[ki] += -Real(0.5) * out[static_cast<std::size_t>(k)] -
                            Real(0.5) * out[static_cast<std::size_t>((k + 3) % 4)] -
                            w.dflux[ki] +
                            w.dflux[hydro::State::cidx(c, (k + 3) % 4)];
            if (s.cnmass[ki] < 0.0) {
                s.cnmass[ki] = 0.0;
                floored.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
}

} // namespace

void aleadvect_cells(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                     Index n_cells) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  n_cells);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_cells,
                                  n_cells);
    cells_core(*ctx.mesh, s, w, 0, n_cells);
}

void aleadvect_cells(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                     Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  end - begin);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_cells,
                                  end - begin);
    cells_core(*ctx.mesh, s, w, begin, end);
}

void aleadvect_dual(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                    Index n_cells) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  n_cells);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_dual,
                                  n_cells);
    const auto& mesh = *ctx.mesh;
    w.dflux.assign(static_cast<std::size_t>(mesh.n_cells()) * corners_per_cell,
                   0.0);
    std::atomic<long> floored{0};
    dual_core(mesh, s, w, 0, n_cells, floored);
    if (floored.load() > 0)
        util::log_warn("aleadvect: floored ", floored.load(),
                       " negative corner masses");
}

void aleadvect_dual(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                    Index begin, Index end, std::atomic<long>& floored) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  end - begin);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_dual,
                                  end - begin);
    dual_core(*ctx.mesh, s, w, begin, end, floored);
}

namespace {

/// The per-node dual-mesh remap gather. Accumulates into the workspace
/// only (the upwind velocities must be read unmodified until every listed
/// node is done): new nodal mass from the remapped corner masses, and the
/// momentum transfers of the incident cells' dual fluxes, all in the
/// corner-gather row order (ascending global corner id).
inline void node_gather(const mesh::Mesh& mesh, const hydro::State& s,
                        const util::Csr& corners, Workspace& w, Index n) {
    const auto ni = static_cast<std::size_t>(n);
    Real px = s.node_mass[ni] * s.u[ni];
    Real py = s.node_mass[ni] * s.v[ni];
    Real nm = 0.0;
    for (const Index ck : corners.row(n)) {
        const auto ki = static_cast<std::size_t>(ck);
        nm += s.cnmass[ki];
        const Index c = ck / corners_per_cell;
        const int k = ck % corners_per_cell;
        // This node is corner k of cell c. It sits on two dual faces:
        // d_k (k -> k+1, this node donates/receives as corner k) and
        // d_{k-1} (k-1 -> k, this node is the head).
        const Real dk = w.dflux[ki];
        if (dk != 0.0) {
            const auto nb = static_cast<std::size_t>(
                mesh.cn(c, (k + 1) % corners_per_cell));
            const auto don = dk > 0 ? ni : nb;
            px -= dk * s.u[don];
            py -= dk * s.v[don];
        }
        const int km = (k + 3) % corners_per_cell;
        const Real dm = w.dflux[hydro::State::cidx(c, km)];
        if (dm != 0.0) {
            const auto na = static_cast<std::size_t>(mesh.cn(c, km));
            const auto don = dm > 0 ? na : ni;
            px += dm * s.u[don];
            py += dm * s.v[don];
        }
    }
    w.pmx[ni] = px;
    w.pmy[ni] = py;
    w.nmass[ni] = nm;
}

inline void node_write(hydro::State& s, const Workspace& w, Index n) {
    const auto ni = static_cast<std::size_t>(n);
    s.node_mass[ni] = w.nmass[ni];
    if (w.nmass[ni] > tiny) {
        s.u[ni] = w.pmx[ni] / w.nmass[ni];
        s.v[ni] = w.pmy[ni] / w.nmass[ni];
    } else {
        s.u[ni] = 0.0;
        s.v[ni] = 0.0;
    }
}

void nodes_resize(const mesh::Mesh& mesh, Workspace& w) {
    const auto nn = static_cast<std::size_t>(mesh.n_nodes());
    w.pmx.assign(nn, 0.0);
    w.pmy.assign(nn, 0.0);
    w.nmass.assign(nn, 0.0);
}

} // namespace

void aleadvect_nodes(const hydro::Context& ctx, hydro::State& s, Workspace& w) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  ctx.mesh->n_nodes());
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_nodes,
                                  ctx.mesh->n_nodes());
    const auto& mesh = *ctx.mesh;
    const auto& corners = ctx.corner_gather();
    nodes_resize(mesh, w);
    for (Index n = 0; n < mesh.n_nodes(); ++n)
        node_gather(mesh, s, corners, w, n);
    for (Index n = 0; n < mesh.n_nodes(); ++n) node_write(s, w, n);
    hydro::apply_velocity_bc(mesh, ctx.opts, s.u, s.v);
}

void aleadvect_nodes(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                     std::span<const Index> nodes) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  static_cast<long long>(nodes.size()));
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_nodes,
                                  static_cast<long long>(nodes.size()));
    const auto& mesh = *ctx.mesh;
    const auto& corners = ctx.corner_gather();
    nodes_resize(mesh, w);
    for (const Index n : nodes) node_gather(mesh, s, corners, w, n);
    for (const Index n : nodes) node_write(s, w, n);
    hydro::apply_velocity_bc(mesh, ctx.opts, s.u, s.v);
}

void aleadvect_node_gather(const hydro::Context& ctx, const hydro::State& s,
                           Workspace& w, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  end - begin);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_nodes,
                                  end - begin);
    const auto& corners = ctx.corner_gather();
    for (Index n = begin; n < end; ++n)
        node_gather(*ctx.mesh, s, corners, w, n);
}

void aleadvect_node_write(const hydro::Context& ctx, hydro::State& s,
                          Workspace& w, Index begin, Index end) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect,
                                  end - begin);
    const util::ScopedTimer phase(*ctx.profiler, util::Kernel::ale_nodes,
                                  end - begin);
    for (Index n = begin; n < end; ++n) node_write(s, w, n);
}

void aleadvect_nodes_resize(const mesh::Mesh& mesh, Workspace& w) {
    nodes_resize(mesh, w);
}

void aleadvect(const hydro::Context& ctx, hydro::State& s, const Options& opts,
               Workspace& w) {
    // Task-graph schedule: the same phases as (kernel, block) tasks with
    // footprint-derived dependencies — a cell block's fluxes start as soon
    // as the gradients they read are ready. Bitwise identical to the
    // fork-join sequence below (see advect_graph.cpp).
    if (ctx.exec.threaded() && ctx.exec.pool != nullptr &&
        ctx.exec.schedule == par::Schedule::taskgraph) {
        aleadvect_graph(ctx, s, opts, w);
        return;
    }
    aleadvect_centroids(ctx, s, w);
    aleadvect_gradients(ctx, s, opts, w, ctx.mesh->n_cells());
    aleadvect_fluxes(ctx, s, opts, w);
    aleadvect_cells(ctx, s, w, ctx.mesh->n_cells());
    aleadvect_dual(ctx, s, w, ctx.mesh->n_cells());
    aleadvect_nodes(ctx, s, w);
}

} // namespace bookleaf::ale
