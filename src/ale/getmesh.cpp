/// \file getmesh.cpp
/// ALEGETMESH: choose the target mesh for the remap. Eulerian mode
/// returns the generation-time mesh; ALE mode runs weighted Jacobi
/// smoothing toward the average of edge-connected neighbours, with
/// boundary nodes restricted to slide along their wall and every move
/// clamped to a fraction of the shortest incident edge (so the swept
/// volumes stay small and the donor-cell advection stays in its stable
/// regime).
///
/// The smoothing is a per-node *gather* over the cached node adjacency
/// (rows ascending by node id): each pass reads only the previous pass's
/// positions, so nodes are independent, and the neighbour sum order is
/// the global-id order on every rank — the property the distributed
/// remap's bitwise contract rests on. The ghost-aware overload calls the
/// TargetSync hook after each pass (and after the clamp) to overwrite
/// non-owned entries with their owners' values, since a fringe node's
/// local adjacency row is incomplete.

#include <algorithm>
#include <cmath>

#include "ale/remap.hpp"

namespace bookleaf::ale {

namespace {

/// Build (lazily) the node -> edge-neighbour adjacency, rows ascending.
const util::Csr& node_adjacency(const mesh::Mesh& mesh, Workspace& w) {
    if (w.node_adj.n_rows() != mesh.n_nodes()) {
        std::vector<std::pair<Index, Index>> pairs;
        pairs.reserve(mesh.faces.size() * 2);
        for (const auto& f : mesh.faces) {
            pairs.emplace_back(f.a, f.b);
            pairs.emplace_back(f.b, f.a);
        }
        std::sort(pairs.begin(), pairs.end());
        w.node_adj = util::Csr::from_pairs(mesh.n_nodes(), pairs);
    }
    return w.node_adj;
}

} // namespace

void alegetmesh(const hydro::Context& ctx, const hydro::State& s,
                const Options& opts, Workspace& w) {
    alegetmesh(ctx, s, opts, w, TargetSync());
}

void alegetmesh(const hydro::Context& ctx, const hydro::State& s,
                const Options& opts, Workspace& w, const TargetSync& sync) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::alegetmesh,
                                  ctx.mesh->n_nodes());
    const auto& mesh = *ctx.mesh;
    const auto nn = static_cast<std::size_t>(mesh.n_nodes());

    w.xt.assign(s.x.begin(), s.x.end());
    w.yt.assign(s.y.begin(), s.y.end());
    if (opts.mode == Mode::lagrange) return;

    if (opts.mode == Mode::eulerian) {
        // The generation-time mesh: exact on every rank without any
        // communication (subdomains carry verbatim copies of the global
        // coordinates), so the sync hook is never needed here.
        w.xt.assign(mesh.x.begin(), mesh.x.end());
        w.yt.assign(mesh.y.begin(), mesh.y.end());
        return;
    }

    // --- ALE: Jacobi smoothing toward the neighbour average -----------------
    const auto& adj = node_adjacency(mesh, w);
    for (int pass = 0; pass < opts.smoothing_passes; ++pass) {
        w.next_x.assign(w.xt.begin(), w.xt.end());
        w.next_y.assign(w.yt.begin(), w.yt.end());
        for (std::size_t n = 0; n < nn; ++n) {
            const auto row = adj.row(static_cast<Index>(n));
            if (row.empty()) continue;
            const auto mask = mesh.node_bc[n];
            if (mask & mesh::bc::piston) continue;
            const bool can_x = !(mask & mesh::bc::fix_u);
            const bool can_y = !(mask & mesh::bc::fix_v);
            Real ax = 0.0, ay = 0.0;
            for (const Index nb : row) {
                ax += w.xt[static_cast<std::size_t>(nb)];
                ay += w.yt[static_cast<std::size_t>(nb)];
            }
            const auto deg = static_cast<Real>(row.size());
            const Real mx = ax / deg;
            const Real my = ay / deg;
            if (can_x)
                w.next_x[n] = (Real(1) - opts.smoothing_weight) * w.xt[n] +
                              opts.smoothing_weight * mx;
            if (can_y)
                w.next_y[n] = (Real(1) - opts.smoothing_weight) * w.yt[n] +
                              opts.smoothing_weight * my;
        }
        w.xt.swap(w.next_x);
        w.yt.swap(w.next_y);
        if (sync) sync(w.xt, w.yt);
    }

    // --- clamp the total displacement --------------------------------------
    // Shortest incident edge per node; hypot is sign-symmetric, so the
    // per-node gather sees the same edge lengths the owning rank does.
    for (std::size_t n = 0; n < nn; ++n) {
        const auto row = adj.row(static_cast<Index>(n));
        Real min_edge = std::numeric_limits<Real>::max();
        for (const Index nb : row) {
            const auto bi = static_cast<std::size_t>(nb);
            min_edge = std::min(min_edge,
                                std::hypot(s.x[n] - s.x[bi], s.y[n] - s.y[bi]));
        }
        const Real dx = w.xt[n] - s.x[n];
        const Real dy = w.yt[n] - s.y[n];
        const Real d = std::hypot(dx, dy);
        const Real dmax = opts.max_move_frac * min_edge;
        if (d > dmax && d > tiny) {
            const Real f = dmax / d;
            w.xt[n] = s.x[n] + f * dx;
            w.yt[n] = s.y[n] + f * dy;
        }
    }
    if (sync) sync(w.xt, w.yt);
}

} // namespace bookleaf::ale
