/// \file getmesh.cpp
/// ALEGETMESH: choose the target mesh for the remap. Eulerian mode
/// returns the generation-time mesh; ALE mode runs weighted Jacobi
/// smoothing toward the average of edge-connected neighbours, with
/// boundary nodes restricted to slide along their wall and every move
/// clamped to a fraction of the shortest incident edge (so the swept
/// volumes stay small and the donor-cell advection stays in its stable
/// regime).

#include <algorithm>
#include <cmath>

#include "ale/remap.hpp"

namespace bookleaf::ale {

void alegetmesh(const hydro::Context& ctx, const hydro::State& s,
                const Options& opts, Workspace& w) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::alegetmesh);
    const auto& mesh = *ctx.mesh;
    const auto nn = static_cast<std::size_t>(mesh.n_nodes());

    w.xt.assign(s.x.begin(), s.x.end());
    w.yt.assign(s.y.begin(), s.y.end());
    if (opts.mode == Mode::lagrange) return;

    if (opts.mode == Mode::eulerian) {
        w.xt.assign(mesh.x.begin(), mesh.x.end());
        w.yt.assign(mesh.y.begin(), mesh.y.end());
        return;
    }

    // --- ALE: Jacobi smoothing toward the neighbour average -----------------
    // Node adjacency via faces.
    std::vector<Real> ax(nn), ay(nn);
    std::vector<int> deg(nn);
    std::vector<Real> next_x(w.xt), next_y(w.yt);
    for (int pass = 0; pass < opts.smoothing_passes; ++pass) {
        std::fill(ax.begin(), ax.end(), 0.0);
        std::fill(ay.begin(), ay.end(), 0.0);
        std::fill(deg.begin(), deg.end(), 0);
        for (const auto& f : mesh.faces) {
            const auto a = static_cast<std::size_t>(f.a);
            const auto b = static_cast<std::size_t>(f.b);
            ax[a] += w.xt[b];
            ay[a] += w.yt[b];
            ax[b] += w.xt[a];
            ay[b] += w.yt[a];
            ++deg[a];
            ++deg[b];
        }
        for (std::size_t n = 0; n < nn; ++n) {
            if (deg[n] == 0) continue;
            const auto mask = mesh.node_bc[n];
            if (mask & mesh::bc::piston) continue;
            const bool can_x = !(mask & mesh::bc::fix_u);
            const bool can_y = !(mask & mesh::bc::fix_v);
            const Real mx = ax[n] / deg[n];
            const Real my = ay[n] / deg[n];
            if (can_x)
                next_x[n] = (Real(1) - opts.smoothing_weight) * w.xt[n] +
                            opts.smoothing_weight * mx;
            if (can_y)
                next_y[n] = (Real(1) - opts.smoothing_weight) * w.yt[n] +
                            opts.smoothing_weight * my;
        }
        w.xt = next_x;
        w.yt = next_y;
    }

    // --- clamp the total displacement --------------------------------------
    // Shortest incident edge per node (via faces).
    std::vector<Real> min_edge(nn, std::numeric_limits<Real>::max());
    for (const auto& f : mesh.faces) {
        const auto a = static_cast<std::size_t>(f.a);
        const auto b = static_cast<std::size_t>(f.b);
        const Real len = std::hypot(s.x[a] - s.x[b], s.y[a] - s.y[b]);
        min_edge[a] = std::min(min_edge[a], len);
        min_edge[b] = std::min(min_edge[b], len);
    }
    for (std::size_t n = 0; n < nn; ++n) {
        const Real dx = w.xt[n] - s.x[n];
        const Real dy = w.yt[n] - s.y[n];
        const Real d = std::hypot(dx, dy);
        const Real dmax = opts.max_move_frac * min_edge[n];
        if (d > dmax && d > tiny) {
            const Real f = dmax / d;
            w.xt[n] = s.x[n] + f * dx;
            w.yt[n] = s.y[n] + f * dy;
        }
    }
}

} // namespace bookleaf::ale
