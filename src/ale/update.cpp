/// \file update.cpp
/// ALEUPDATE: move the state onto the target mesh and rebuild the
/// dependent variables (geometry, density, EoS).

#include "ale/remap.hpp"
#include "geom/geometry.hpp"
#include "util/error.hpp"

namespace bookleaf::ale {

void aleupdate(const hydro::Context& ctx, hydro::State& s, Workspace& w) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleupdate,
                                  ctx.mesh->n_cells());
    const auto& mesh = *ctx.mesh;
    const auto& materials = *ctx.materials;

    s.x.assign(w.xt.begin(), w.xt.end());
    s.y.assign(w.yt.begin(), w.yt.end());
    s.x0 = s.x;
    s.y0 = s.y;

    for (Index c = 0; c < mesh.n_cells(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const auto quad = geom::gather(mesh, s.x, s.y, c);
        s.cache_geometry(c, quad); // remap moved the nodes
        const Real vol = geom::quad_area(quad);
        if (vol <= 0.0)
            throw util::Error("aleupdate: non-positive volume in cell " +
                              std::to_string(c));
        s.volume[ci] = vol;
        s.char_len[ci] = geom::char_length(quad);
        const auto cv = geom::corner_volumes(quad);
        for (int k = 0; k < corners_per_cell; ++k)
            s.cnvol[hydro::State::cidx(c, k)] = cv[static_cast<std::size_t>(k)];

        s.rho[ci] = s.cell_mass[ci] / vol;
        const Index r = mesh.cell_region[ci];
        s.pre[ci] = materials.pressure(r, s.rho[ci], s.ein[ci]);
        s.csqrd[ci] = materials.sound_speed2(r, s.rho[ci], s.ein[ci]);
    }
}

void alestep(const hydro::Context& ctx, hydro::State& s, const Options& opts,
             Workspace& w) {
    if (opts.mode == Mode::lagrange) return;
    alegetmesh(ctx, s, opts, w);
    alegetfvol(ctx, s, w);
    aleadvect(ctx, s, opts, w);
    aleupdate(ctx, s, w);
}

} // namespace bookleaf::ale
