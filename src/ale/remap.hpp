#pragma once
/// \file remap.hpp
/// The ALE step (paper Algorithm 1: ALEGETMESH, ALEGETFVOL, ALEADVECT,
/// ALEUPDATE). A swept-volume flux remap (Benson [29]): second order in
/// the cell-centred quantities via limited linear reconstruction (van
/// Leer / Barth-Jespersen [30]), first-order upwind in the dual-mesh
/// momentum transport, exactly conservative in mass, internal energy and
/// momentum.

#include <vector>

#include "hydro/kernels.hpp"
#include "util/types.hpp"

namespace bookleaf::ale {

/// ALE operating mode (paper §III-A: pure Lagrange, ALE, or Eulerian as
/// the bounding cases).
enum class Mode {
    lagrange, ///< no remap
    ale,      ///< remap to a smoothed mesh every `frequency` steps
    eulerian  ///< remap back to the original mesh every step
};

struct Options {
    Mode mode = Mode::lagrange;
    int frequency = 1;          ///< remap every N Lagrangian steps (ale mode)
    int smoothing_passes = 2;   ///< Jacobi passes toward neighbour average
    Real smoothing_weight = 0.5;///< relaxation factor per pass
    Real max_move_frac = 0.25;  ///< clamp: node move <= frac * min local edge
    bool limit = true;          ///< van Leer limiting (ablation switch)
};

/// Scratch arrays reused across remaps (sized on first use).
struct Workspace {
    std::vector<Real> xt, yt;       ///< target node positions
    std::vector<Real> fvol;         ///< per-face signed swept volume (left->right)
    std::vector<Real> mflux;        ///< per-face mass flux (left->right)
    std::vector<Real> eflux;        ///< per-face internal-energy flux
    std::vector<Real> grad_rho_x, grad_rho_y;
    std::vector<Real> grad_e_x, grad_e_y;
    std::vector<Real> cx, cy;       ///< cell centroids (old geometry)
    std::vector<Real> pmx, pmy;     ///< nodal momentum accumulator
};

/// Select the target mesh (smoothed or original). Honors boundary
/// conditions: fix_u nodes slide only in y, fix_v only in x, piston and
/// corner nodes stay put.
void alegetmesh(const hydro::Context& ctx, const hydro::State& s,
                const Options& opts, Workspace& w);

/// Signed swept volume per face: positive moves volume from the face's
/// left cell to its right cell. For boundary faces the target must equal
/// the current position (boundary nodes never move) so the flux is zero.
void alegetfvol(const hydro::Context& ctx, const hydro::State& s, Workspace& w);

/// Advect independent variables: cell mass and internal energy with
/// limited linear reconstruction; corner masses via half-face and
/// median-dual transfers; nodal momentum via upwind dual fluxes.
void aleadvect(const hydro::Context& ctx, hydro::State& s, const Options& opts,
               Workspace& w);

/// Rebuild dependent variables on the target mesh: positions, geometry,
/// density, velocity from momentum, EoS.
void aleupdate(const hydro::Context& ctx, hydro::State& s, Workspace& w);

/// The full ALE step.
void alestep(const hydro::Context& ctx, hydro::State& s, const Options& opts,
             Workspace& w);

} // namespace bookleaf::ale
