#pragma once
/// \file remap.hpp
/// The ALE step (paper Algorithm 1: ALEGETMESH, ALEGETFVOL, ALEADVECT,
/// ALEUPDATE). A swept-volume flux remap (Benson [29]): second order in
/// the cell-centred quantities via limited linear reconstruction (van
/// Leer / Barth-Jespersen [30]), first-order upwind in the dual-mesh
/// momentum transport, exactly conservative in mass, internal energy and
/// momentum.
///
/// Every kernel is *per-entity independent* given its inputs — cells,
/// faces and nodes are each updated from read-only neighbour data — and
/// every cross-entity reduction (the Jacobi smoothing average, the
/// cell-flux gather, the dual-mesh corner/momentum gather) sums its
/// contributions in ascending global-id order. That structure is what
/// lets the distributed driver run the very same code over subdomain
/// subranges and land bitwise-identical results on owned entities: the
/// subrange + ghost-aware overloads below take an explicit entity set
/// (the owned prefix, the owned-incident faces, the stencil-complete
/// nodes), and dist::remap interleaves them with Typhon ghost exchanges
/// that supply exactly the foreign inputs each phase reads (target node
/// positions per smoothing pass, ghost-cell gradients before the face
/// fluxes, ghost cell/corner results after the sweeps).

#include <atomic>
#include <functional>
#include <span>
#include <vector>

#include "hydro/kernels.hpp"
#include "util/csr.hpp"
#include "util/types.hpp"

namespace bookleaf::ale {

/// ALE operating mode (paper §III-A: pure Lagrange, ALE, or Eulerian as
/// the bounding cases).
enum class Mode {
    lagrange, ///< no remap
    ale,      ///< remap to a smoothed mesh every `frequency` steps
    eulerian  ///< remap back to the original mesh every step
};

struct Options {
    Mode mode = Mode::lagrange;
    int frequency = 1;          ///< remap every N Lagrangian steps (ale mode)
    int smoothing_passes = 2;   ///< Jacobi passes toward neighbour average
    Real smoothing_weight = 0.5;///< relaxation factor per pass
    Real max_move_frac = 0.25;  ///< clamp: node move <= frac * min local edge
    bool limit = true;          ///< van Leer limiting (ablation switch)
};

/// Scratch arrays reused across remaps (sized on first use). One
/// workspace serves one mesh: the cached node adjacency is keyed only on
/// the node count.
struct Workspace {
    std::vector<Real> xt, yt;       ///< target node positions
    std::vector<Real> fvol;         ///< per-face signed swept volume (left->right)
    std::vector<Real> mflux;        ///< per-face mass flux (left->right)
    std::vector<Real> eflux;        ///< per-face internal-energy flux
    std::vector<Real> grad_rho_x, grad_rho_y;
    std::vector<Real> grad_e_x, grad_e_y;
    std::vector<Real> cx, cy;       ///< cell centroids (old geometry)
    std::vector<Real> pmx, pmy;     ///< nodal momentum accumulator
    std::vector<Real> nmass;        ///< remapped nodal masses (nodal sweep)
    /// Median-dual flux per corner [cell*4 + k]: mass moved from corner k
    /// to corner k+1 within the cell. Written by aleadvect_dual and read
    /// by the nodal momentum gather — and, in distributed runs, exchanged
    /// for ghost cells (their far faces leave the subdomain, so their
    /// dual fluxes are not locally computable).
    std::vector<Real> dflux;
    /// Node -> edge-connected neighbours, each row ascending by node id
    /// (built lazily from the mesh faces). Ascending order makes the
    /// Jacobi average sum in global-id order on every rank: subdomain
    /// node numbering is global-ascending, so local rows are the global
    /// rows restricted — same contributions, same order, bitwise-equal
    /// averages wherever the stencil is complete.
    util::Csr node_adj;
    std::vector<Real> next_x, next_y; ///< Jacobi pass scratch
};

/// Ghost-aware smoothing hook: refreshes non-owned entries of the target
/// positions from their owning ranks. Invoked after every Jacobi pass and
/// once after the displacement clamp (a fringe node's stencil is
/// incomplete locally; its owner has the full stencil and computes the
/// bitwise-serial value). Serial runs pass none.
using TargetSync = std::function<void(std::vector<Real>&, std::vector<Real>&)>;

/// Select the target mesh (smoothed or original). Honors boundary
/// conditions: fix_u nodes slide only in y, fix_v only in x, piston and
/// corner nodes stay put.
void alegetmesh(const hydro::Context& ctx, const hydro::State& s,
                const Options& opts, Workspace& w);
/// Ghost-aware overload: `sync` refreshes non-owned target positions
/// between Jacobi passes and after the clamp (ALE mode only — Eulerian
/// and Lagrange targets are exact everywhere locally, so the hook is
/// never called for them).
void alegetmesh(const hydro::Context& ctx, const hydro::State& s,
                const Options& opts, Workspace& w, const TargetSync& sync);

/// Signed swept volume per face: positive moves volume from the face's
/// left cell to its right cell. For boundary faces the target must equal
/// the current position (boundary nodes never move) so the flux is zero.
void alegetfvol(const hydro::Context& ctx, const hydro::State& s, Workspace& w);
/// Subrange overload over an explicit face list (the distributed remap
/// evaluates only faces incident to an owned cell; a ghost cell's far
/// face is locally boundary but globally interior — *phantom* — and must
/// not be checked against the boundary no-sweep contract). Unlisted
/// faces get zero swept volume.
void alegetfvol(const hydro::Context& ctx, const hydro::State& s, Workspace& w,
                std::span<const Index> faces);

// --- ALEADVECT phases -------------------------------------------------------
// The advection sweep decomposed so the distributed driver can interleave
// ghost exchanges; aleadvect() composes them over the full mesh. Cell
// phases take an owned-cell *prefix* (subdomain numbering is owned-first;
// the serial mesh is all-owned).

/// Old-geometry centroids for every cell (ghosts included — they are
/// donor candidates for owned faces).
void aleadvect_centroids(const hydro::Context& ctx, const hydro::State& s,
                         Workspace& w);
/// Block overload for the task-graph schedule: cells [begin, end) only,
/// caller sizes w.cx/w.cy.
void aleadvect_centroids(const hydro::Context& ctx, const hydro::State& s,
                         Workspace& w, Index begin, Index end);

/// Limited least-squares gradients of rho and ein for cells [0, n_cells).
/// Needs complete face-neighbour data: in distributed runs only owned
/// cells qualify, and ghost-cell gradients arrive by exchange before the
/// fluxes read them.
void aleadvect_gradients(const hydro::Context& ctx, const hydro::State& s,
                         const Options& opts, Workspace& w, Index n_cells);
/// Block overload: cells [begin, end), caller sizes the gradient arrays
/// (every listed slot is written, zero for degenerate stencils).
void aleadvect_gradients(const hydro::Context& ctx, const hydro::State& s,
                         const Options& opts, Workspace& w, Index begin,
                         Index end);

/// Donor-cell mass/energy fluxes with limited reconstruction, all faces.
void aleadvect_fluxes(const hydro::Context& ctx, const hydro::State& s,
                      const Options& opts, Workspace& w);
/// Subrange overload (see alegetfvol). Unlisted faces get zero flux.
void aleadvect_fluxes(const hydro::Context& ctx, const hydro::State& s,
                      const Options& opts, Workspace& w,
                      std::span<const Index> faces);
/// Block overload: faces [begin, end), caller sizes w.mflux/w.eflux (own
/// slots are zeroed before fluxing, so no full-array assign is needed).
void aleadvect_fluxes(const hydro::Context& ctx, const hydro::State& s,
                      const Options& opts, Workspace& w, Index begin,
                      Index end);
/// Face-list chunk for the distributed remap graph: no zero prologue —
/// the caller zero-fills w.mflux/w.eflux once and partitions the remap
/// faces across tasks, so each listed slot is written by exactly one task.
void aleadvect_fluxes_chunk(const hydro::Context& ctx, const hydro::State& s,
                            const Options& opts, Workspace& w,
                            std::span<const Index> faces);

/// Cell mass / internal-energy update for cells [0, n_cells): each cell
/// gathers the signed fluxes of its own four faces (ascending local face
/// index — identical order on every rank).
void aleadvect_cells(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                     Index n_cells);
/// Block overload: cells [begin, end).
void aleadvect_cells(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                     Index begin, Index end);

/// Corner-mass update and median-dual fluxes for cells [0, n_cells):
/// writes w.dflux and the remapped cnmass.
void aleadvect_dual(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                    Index n_cells);
/// Block overload: cells [begin, end), caller sizes w.dflux and owns the
/// shared floor counter (atomic — the count is a commutative integer sum,
/// equal to the serial total at any schedule).
void aleadvect_dual(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                    Index begin, Index end, std::atomic<long>& floored);

/// Dual-mesh nodal remap: gather the remapped corner masses and the
/// upwind dual-flux momentum transfers at each node (rows from
/// ctx.corner_gather(), i.e. ascending global corner order), then form
/// the new nodal velocities and re-apply the kinematic BCs.
void aleadvect_nodes(const hydro::Context& ctx, hydro::State& s, Workspace& w);
/// Subrange overload: only the listed nodes are remapped (the distributed
/// driver passes the stencil-complete set; fringe nodes are owned and
/// computed elsewhere, and refreshed by the next pre-step halo).
void aleadvect_nodes(const hydro::Context& ctx, hydro::State& s, Workspace& w,
                     std::span<const Index> nodes);
/// Block overloads of the nodal remap's two halves, for the task-graph
/// schedule: the gather accumulates into the workspace only (upwind
/// velocities stay clean), the write forms the new nodal state. Caller
/// sizes w.pmx/w.pmy/w.nmass (aleadvect_nodes_resize) and re-applies the
/// kinematic BCs after every write block has finished.
void aleadvect_node_gather(const hydro::Context& ctx, const hydro::State& s,
                           Workspace& w, Index begin, Index end);
void aleadvect_node_write(const hydro::Context& ctx, hydro::State& s,
                          Workspace& w, Index begin, Index end);
/// Size the nodal-remap accumulators (the serial phases do this inline).
void aleadvect_nodes_resize(const mesh::Mesh& mesh, Workspace& w);

/// Advect independent variables: the full composition of the phases above
/// over every cell, face and node. Under par::Schedule::taskgraph with a
/// pool attached this dispatches to aleadvect_graph.
void aleadvect(const hydro::Context& ctx, hydro::State& s, const Options& opts,
               Workspace& w);

/// The advection phases as a dependency graph over cell/face/node blocks,
/// scheduled on ctx.exec.pool — bitwise identical to the fork-join
/// composition at any thread count and block size (per-entity writes are
/// disjoint, cross-entity accumulations replay the serial gather order).
void aleadvect_graph(const hydro::Context& ctx, hydro::State& s,
                     const Options& opts, Workspace& w);

/// Rebuild dependent variables on the target mesh: positions, geometry,
/// density, velocity from momentum, EoS. Ghost-aware as-is: every input
/// (target positions, remapped cell masses) is exact on all local cells
/// once the distributed exchanges have run, so the full-range sweep is
/// bitwise-serial everywhere.
void aleupdate(const hydro::Context& ctx, hydro::State& s, Workspace& w);

/// The full ALE step.
void alestep(const hydro::Context& ctx, hydro::State& s, const Options& opts,
             Workspace& w);

} // namespace bookleaf::ale
