/// \file fluxvol.cpp
/// ALEGETFVOL: signed swept volume per face. For face (a, b) with left
/// cell L, the shoelace area of the quad (a_old, b_old, b_new, a_new) is
/// the volume transferred from L to its right neighbour:
///   V_L(target) - V_L(old) = sum over L's faces of (-fvol)   [exact].
/// The identity holds to round-off because both sides are shoelace sums,
/// which is what keeps the remap volume-conservative.
///
/// Faces are independent, so the subrange overload (the distributed
/// remap's owned-incident face list) is bitwise identical per face to
/// the full sweep. The boundary no-sweep check applies only to faces in
/// the evaluated set — which is the point of the subrange form: a ghost
/// cell's far face is locally boundary but globally interior (phantom),
/// and its nodes legitimately move.

#include <cmath>

#include "ale/remap.hpp"
#include "util/error.hpp"

namespace bookleaf::ale {

namespace {

inline void fvol_face(const mesh::Mesh& mesh, const hydro::State& s,
                      Workspace& w, std::size_t fi) {
    const auto& f = mesh.faces[fi];
    const auto a = static_cast<std::size_t>(f.a);
    const auto b = static_cast<std::size_t>(f.b);
    // Shoelace of (a_old, b_old, b_new, a_new).
    const Real x0 = s.x[a], y0 = s.y[a];
    const Real x1 = s.x[b], y1 = s.y[b];
    const Real x2 = w.xt[b], y2 = w.yt[b];
    const Real x3 = w.xt[a], y3 = w.yt[a];
    Real fvol = Real(0.5) * ((x0 * y1 - x1 * y0) + (x1 * y2 - x2 * y1) +
                             (x2 * y3 - x3 * y2) + (x3 * y0 - x0 * y3));
    if (f.right == no_index) {
        // Boundary nodes slide along straight walls, so the swept area
        // is zero up to round-off (products like x*y_wall cancel only
        // to machine precision for walls away from coordinate zero).
        // Snap the residue; anything larger means a node actually left
        // its wall.
        const Real len2 = (x1 - x0) * (x1 - x0) + (y1 - y0) * (y1 - y0);
        util::require(std::abs(fvol) <= Real(1e-10) * (len2 + tiny),
                      "alegetfvol: boundary face swept volume (node left "
                      "its wall)");
        fvol = 0.0;
    }
    w.fvol[fi] = fvol;
}

} // namespace

void alegetfvol(const hydro::Context& ctx, const hydro::State& s, Workspace& w) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::alegetfvol,
                                  ctx.mesh->n_faces());
    const auto& mesh = *ctx.mesh;
    w.fvol.assign(mesh.faces.size(), 0.0);
    for (std::size_t fi = 0; fi < mesh.faces.size(); ++fi)
        fvol_face(mesh, s, w, fi);
}

void alegetfvol(const hydro::Context& ctx, const hydro::State& s, Workspace& w,
                std::span<const Index> faces) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::alegetfvol,
                                  static_cast<long long>(faces.size()));
    const auto& mesh = *ctx.mesh;
    w.fvol.assign(mesh.faces.size(), 0.0);
    for (const Index fi : faces)
        fvol_face(mesh, s, w, static_cast<std::size_t>(fi));
}

} // namespace bookleaf::ale
