#include "ckpt/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "hydro/kernels.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bookleaf::ckpt {

namespace {

constexpr std::array<char, 8> magic = {'B', 'L', 'F', 'C', 'K', 'P', 'T', '\n'};
constexpr std::size_t field_name_bytes = 12;

/// The serialized fields, in file order. Kind selects the entity space the
/// count is validated against.
enum class Kind : std::uint8_t { node, cell, corner };

struct FieldRef {
    const char* name;
    Kind kind;
    std::vector<Real> Snapshot::* member;
};

constexpr std::array<FieldRef, 10> fields = {{
    {"x", Kind::node, &Snapshot::x},
    {"y", Kind::node, &Snapshot::y},
    {"u", Kind::node, &Snapshot::u},
    {"v", Kind::node, &Snapshot::v},
    {"node_mass", Kind::node, &Snapshot::node_mass},
    {"rho", Kind::cell, &Snapshot::rho},
    {"ein", Kind::cell, &Snapshot::ein},
    {"q", Kind::cell, &Snapshot::q},
    {"cell_mass", Kind::cell, &Snapshot::cell_mass},
    {"cnmass", Kind::corner, &Snapshot::cnmass},
}};

template <typename T>
void put(std::ostream& out, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in, const std::string& path, const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(T)))
        throw util::Error("ckpt: truncated checkpoint '" + path +
                          "' (while reading " + what + ")");
    return v;
}

std::size_t expected_count(Kind kind, std::int64_t n_nodes,
                           std::int64_t n_cells) {
    switch (kind) {
    case Kind::node: return static_cast<std::size_t>(n_nodes);
    case Kind::cell: return static_cast<std::size_t>(n_cells);
    case Kind::corner:
        return static_cast<std::size_t>(n_cells) * corners_per_cell;
    }
    return 0;
}

} // namespace

std::uint64_t checksum(const void* data, std::size_t bytes) {
    return util::fnv1a(data, bytes);
}

std::uint64_t mesh_hash(const mesh::Mesh& mesh) {
    std::uint64_t h = util::fnv1a_offset;
    const std::int64_t counts[2] = {mesh.n_nodes(), mesh.n_cells()};
    h = util::fnv1a(h, counts, sizeof(counts));
    const auto over = [&](const auto& vec) {
        h = util::fnv1a(h, vec.data(), vec.size() * sizeof(vec[0]));
    };
    over(mesh.x);
    over(mesh.y);
    over(mesh.cell_nodes);
    over(mesh.cell_region);
    over(mesh.node_bc);
    return h;
}

void write(const std::string& path, const Snapshot& snapshot) {
    const std::int64_t n_nodes = snapshot.n_nodes();
    const std::int64_t n_cells = snapshot.n_cells();
    for (const auto& f : fields)
        util::require((snapshot.*(f.member)).size() ==
                          expected_count(f.kind, n_nodes, n_cells),
                      std::string("ckpt: inconsistent field size for '") +
                          f.name + "' while writing " + path);

    // Atomic write: stream to <path>.tmp, rename into place only after a
    // successful flush. A crash (or injected rank kill) mid-write leaves
    // at worst a stale .tmp that snapshot discovery and restart_from
    // never match — never a truncated .ckpt.
    const std::string tmp = path + ".tmp";
    try {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        util::require(static_cast<bool>(out), "ckpt: cannot open " + tmp);

        // The header checksum folds in every byte as it is written.
        std::uint64_t hsum = util::fnv1a_offset;
        const auto put_h = [&](const auto& v) {
            hsum = util::fnv1a(hsum, &v, sizeof(v));
            put(out, v);
        };
        out.write(magic.data(), static_cast<std::streamsize>(magic.size()));
        hsum = util::fnv1a(hsum, magic.data(), magic.size());
        put_h(format_version);
        put_h(static_cast<std::uint32_t>(fields.size()));
        put_h(snapshot.mesh_hash);
        put_h(snapshot.steps);
        put_h(snapshot.t);
        put_h(snapshot.dt);
        put_h(snapshot.regrow);
        put_h(n_nodes);
        put_h(n_cells);
        put(out, hsum);

        for (const auto& f : fields) {
            const auto& data = snapshot.*(f.member);
            std::array<char, field_name_bytes> name{};
            std::strncpy(name.data(), f.name, field_name_bytes - 1);
            out.write(name.data(), static_cast<std::streamsize>(name.size()));
            put(out, static_cast<std::uint64_t>(data.size()));
            put(out, checksum(data.data(), data.size() * sizeof(Real)));
            out.write(reinterpret_cast<const char*>(data.data()),
                      static_cast<std::streamsize>(data.size() * sizeof(Real)));
        }
        out.flush();
        util::require(static_cast<bool>(out), "ckpt: write failed for " + tmp);
        out.close();
        util::require(std::rename(tmp.c_str(), path.c_str()) == 0,
                      "ckpt: cannot move " + tmp + " into place as " + path);
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }
}

Snapshot read(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    util::require(static_cast<bool>(in), "ckpt: cannot open " + path);

    std::array<char, 8> file_magic{};
    in.read(file_magic.data(), static_cast<std::streamsize>(file_magic.size()));
    if (in.gcount() != static_cast<std::streamsize>(file_magic.size()) ||
        file_magic != magic)
        throw util::Error("ckpt: '" + path + "' is not a BookLeaf checkpoint");

    // Recompute the header checksum byte-for-byte as the fields come in.
    std::uint64_t hsum = util::fnv1a(magic.data(), magic.size());
    const auto get_h = [&]<typename T>(std::in_place_type_t<T>,
                                       const char* what) {
        const T v = get<T>(in, path, what);
        hsum = util::fnv1a(hsum, &v, sizeof(v));
        return v;
    };
    const auto version =
        get_h(std::in_place_type<std::uint32_t>, "version");
    if (version != format_version)
        throw util::Error("ckpt: '" + path + "' has format version " +
                          std::to_string(version) + ", expected " +
                          std::to_string(format_version));
    const auto n_fields =
        get_h(std::in_place_type<std::uint32_t>, "field count");
    if (n_fields != fields.size())
        throw util::Error("ckpt: '" + path + "' carries " +
                          std::to_string(n_fields) + " fields, expected " +
                          std::to_string(fields.size()));

    Snapshot snapshot;
    snapshot.mesh_hash = get_h(std::in_place_type<std::uint64_t>, "mesh hash");
    snapshot.steps = get_h(std::in_place_type<std::int64_t>, "step count");
    snapshot.t = get_h(std::in_place_type<Real>, "time");
    snapshot.dt = get_h(std::in_place_type<Real>, "dt");
    snapshot.regrow = get_h(std::in_place_type<Real>, "regrow limit");
    const auto n_nodes = get_h(std::in_place_type<std::int64_t>, "node count");
    const auto n_cells = get_h(std::in_place_type<std::int64_t>, "cell count");
    if (get<std::uint64_t>(in, path, "header checksum") != hsum)
        throw util::Error("ckpt: header checksum mismatch in '" + path +
                          "' (corrupt file)");
    if (n_nodes < 0 || n_cells < 0 ||
        n_nodes > std::numeric_limits<Index>::max() ||
        n_cells > std::numeric_limits<Index>::max() / corners_per_cell)
        throw util::Error("ckpt: '" + path + "' has implausible entity counts");

    // Bound every allocation by the bytes actually on disk *before*
    // trusting any count: a forged header demanding gigabytes must throw
    // here, not inside a resize. The format has no padding, so the size
    // is exact.
    {
        const auto header_end = in.tellg();
        in.seekg(0, std::ios::end);
        const auto file_size = static_cast<std::uint64_t>(in.tellg());
        in.seekg(header_end);
        std::uint64_t expected = static_cast<std::uint64_t>(header_end);
        for (const auto& f : fields)
            expected += field_name_bytes + 2 * sizeof(std::uint64_t) +
                        static_cast<std::uint64_t>(
                            expected_count(f.kind, n_nodes, n_cells)) *
                            sizeof(Real);
        if (file_size != expected)
            throw util::Error("ckpt: '" + path +
                              "' size disagrees with its header (truncated "
                              "or corrupt file)");
    }

    for (const auto& f : fields) {
        std::array<char, field_name_bytes> name{};
        in.read(name.data(), static_cast<std::streamsize>(name.size()));
        if (in.gcount() != static_cast<std::streamsize>(name.size()))
            throw util::Error("ckpt: truncated checkpoint '" + path +
                              "' (field header)");
        if (std::strncmp(name.data(), f.name, field_name_bytes) != 0)
            throw util::Error("ckpt: '" + path + "' field '" +
                              std::string(name.data(),
                                          strnlen(name.data(),
                                                  field_name_bytes)) +
                              "' where '" + f.name + "' was expected");
        const auto count = get<std::uint64_t>(in, path, "field count");
        const auto sum = get<std::uint64_t>(in, path, "field checksum");
        if (count != expected_count(f.kind, n_nodes, n_cells))
            throw util::Error("ckpt: '" + path + "' field '" + f.name +
                              "' count disagrees with the header");
        auto& data = snapshot.*(f.member);
        data.resize(count);
        const auto bytes = static_cast<std::streamsize>(count * sizeof(Real));
        in.read(reinterpret_cast<char*>(data.data()), bytes);
        if (in.gcount() != bytes)
            throw util::Error("ckpt: truncated checkpoint '" + path +
                              "' (field '" + f.name + "')");
        if (checksum(data.data(), data.size() * sizeof(Real)) != sum)
            throw util::Error("ckpt: checksum mismatch in '" + path +
                              "' field '" + f.name + "' (corrupt file)");
    }
    return snapshot;
}

Snapshot capture(const mesh::Mesh& mesh, const hydro::State& s, Real t,
                 Real dt, std::int64_t steps, Real regrow) {
    Snapshot snap;
    snap.mesh_hash = mesh_hash(mesh);
    snap.steps = steps;
    snap.t = t;
    snap.dt = dt;
    snap.regrow = regrow;
    snap.x.assign(s.x.begin(), s.x.end());
    snap.y.assign(s.y.begin(), s.y.end());
    snap.u.assign(s.u.begin(), s.u.end());
    snap.v.assign(s.v.begin(), s.v.end());
    snap.node_mass.assign(s.node_mass.begin(), s.node_mass.end());
    snap.rho.assign(s.rho.begin(), s.rho.end());
    snap.ein.assign(s.ein.begin(), s.ein.end());
    snap.q.assign(s.q.begin(), s.q.end());
    snap.cell_mass.assign(s.cell_mass.begin(), s.cell_mass.end());
    snap.cnmass.assign(s.cnmass.begin(), s.cnmass.end());
    return snap;
}

void rebuild_derived(const mesh::Mesh& mesh,
                     const eos::MaterialTable& materials, hydro::State& s) {
    // Restored rho is a primary: strict rebuild without the density
    // recompute (hydro::rebuild_cells is the shared per-cell sequence).
    hydro::rebuild_cells(mesh, materials, s, 0, mesh.n_cells(),
                         /*with_rho=*/false, /*strict=*/true, "ckpt");
}

void restore(const mesh::Mesh& mesh, const eos::MaterialTable& materials,
             const Snapshot& snapshot, hydro::State& s) {
    if (snapshot.mesh_hash != mesh_hash(mesh))
        throw util::Error(
            "ckpt: checkpoint/deck mismatch — the snapshot was written for a "
            "different mesh (restart the deck that produced it)");
    util::require(snapshot.n_nodes() == mesh.n_nodes() &&
                      snapshot.n_cells() == mesh.n_cells(),
                  "ckpt: snapshot entity counts disagree with the mesh");
    s.x.assign(snapshot.x.begin(), snapshot.x.end());
    s.y.assign(snapshot.y.begin(), snapshot.y.end());
    s.u.assign(snapshot.u.begin(), snapshot.u.end());
    s.v.assign(snapshot.v.begin(), snapshot.v.end());
    s.node_mass.assign(snapshot.node_mass.begin(), snapshot.node_mass.end());
    s.rho.assign(snapshot.rho.begin(), snapshot.rho.end());
    s.ein.assign(snapshot.ein.begin(), snapshot.ein.end());
    s.q.assign(snapshot.q.begin(), snapshot.q.end());
    s.cell_mass.assign(snapshot.cell_mass.begin(), snapshot.cell_mass.end());
    s.cnmass.assign(snapshot.cnmass.begin(), snapshot.cnmass.end());
    rebuild_derived(mesh, materials, s);
    // Seed the step-start scratch as initialise does; every step rewrites
    // these before reading them.
    s.x0 = s.x;
    s.y0 = s.y;
    s.u0 = s.u;
    s.v0 = s.v;
    s.ein0 = s.ein;
}

} // namespace bookleaf::ckpt
