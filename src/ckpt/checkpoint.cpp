#include "ckpt/checkpoint.hpp"

#include <array>
#include <cstring>
#include <fstream>

#include "geom/geometry.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bookleaf::ckpt {

namespace {

constexpr std::array<char, 8> magic = {'B', 'L', 'F', 'C', 'K', 'P', 'T', '\n'};
constexpr std::size_t field_name_bytes = 12;

/// The serialized fields, in file order. Kind selects the entity space the
/// count is validated against.
enum class Kind : std::uint8_t { node, cell, corner };

struct FieldRef {
    const char* name;
    Kind kind;
    std::vector<Real> Snapshot::* member;
};

constexpr std::array<FieldRef, 10> fields = {{
    {"x", Kind::node, &Snapshot::x},
    {"y", Kind::node, &Snapshot::y},
    {"u", Kind::node, &Snapshot::u},
    {"v", Kind::node, &Snapshot::v},
    {"node_mass", Kind::node, &Snapshot::node_mass},
    {"rho", Kind::cell, &Snapshot::rho},
    {"ein", Kind::cell, &Snapshot::ein},
    {"q", Kind::cell, &Snapshot::q},
    {"cell_mass", Kind::cell, &Snapshot::cell_mass},
    {"cnmass", Kind::corner, &Snapshot::cnmass},
}};

template <typename T>
void put(std::ostream& out, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in, const std::string& path, const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(T)))
        throw util::Error("ckpt: truncated checkpoint '" + path +
                          "' (while reading " + what + ")");
    return v;
}

std::size_t expected_count(Kind kind, std::int64_t n_nodes,
                           std::int64_t n_cells) {
    switch (kind) {
    case Kind::node: return static_cast<std::size_t>(n_nodes);
    case Kind::cell: return static_cast<std::size_t>(n_cells);
    case Kind::corner:
        return static_cast<std::size_t>(n_cells) * corners_per_cell;
    }
    return 0;
}

} // namespace

std::uint64_t checksum(const void* data, std::size_t bytes) {
    return util::fnv1a(data, bytes);
}

std::uint64_t mesh_hash(const mesh::Mesh& mesh) {
    std::uint64_t h = util::fnv1a_offset;
    const std::int64_t counts[2] = {mesh.n_nodes(), mesh.n_cells()};
    h = util::fnv1a(h, counts, sizeof(counts));
    const auto over = [&](const auto& vec) {
        h = util::fnv1a(h, vec.data(), vec.size() * sizeof(vec[0]));
    };
    over(mesh.x);
    over(mesh.y);
    over(mesh.cell_nodes);
    over(mesh.cell_region);
    over(mesh.node_bc);
    return h;
}

void write(const std::string& path, const Snapshot& snapshot) {
    const std::int64_t n_nodes = snapshot.n_nodes();
    const std::int64_t n_cells = snapshot.n_cells();
    for (const auto& f : fields)
        util::require((snapshot.*(f.member)).size() ==
                          expected_count(f.kind, n_nodes, n_cells),
                      std::string("ckpt: inconsistent field size for '") +
                          f.name + "' while writing " + path);

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    util::require(static_cast<bool>(out), "ckpt: cannot open " + path);

    out.write(magic.data(), static_cast<std::streamsize>(magic.size()));
    put(out, format_version);
    put(out, static_cast<std::uint32_t>(fields.size()));
    put(out, snapshot.mesh_hash);
    put(out, snapshot.steps);
    put(out, snapshot.t);
    put(out, snapshot.dt);
    put(out, n_nodes);
    put(out, n_cells);

    for (const auto& f : fields) {
        const auto& data = snapshot.*(f.member);
        std::array<char, field_name_bytes> name{};
        std::strncpy(name.data(), f.name, field_name_bytes - 1);
        out.write(name.data(), static_cast<std::streamsize>(name.size()));
        put(out, static_cast<std::uint64_t>(data.size()));
        put(out, checksum(data.data(), data.size() * sizeof(Real)));
        out.write(reinterpret_cast<const char*>(data.data()),
                  static_cast<std::streamsize>(data.size() * sizeof(Real)));
    }
    out.flush();
    util::require(static_cast<bool>(out), "ckpt: write failed for " + path);
}

Snapshot read(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    util::require(static_cast<bool>(in), "ckpt: cannot open " + path);

    std::array<char, 8> file_magic{};
    in.read(file_magic.data(), static_cast<std::streamsize>(file_magic.size()));
    if (in.gcount() != static_cast<std::streamsize>(file_magic.size()) ||
        file_magic != magic)
        throw util::Error("ckpt: '" + path + "' is not a BookLeaf checkpoint");

    const auto version = get<std::uint32_t>(in, path, "version");
    if (version != format_version)
        throw util::Error("ckpt: '" + path + "' has format version " +
                          std::to_string(version) + ", expected " +
                          std::to_string(format_version));
    const auto n_fields = get<std::uint32_t>(in, path, "field count");
    if (n_fields != fields.size())
        throw util::Error("ckpt: '" + path + "' carries " +
                          std::to_string(n_fields) + " fields, expected " +
                          std::to_string(fields.size()));

    Snapshot snapshot;
    snapshot.mesh_hash = get<std::uint64_t>(in, path, "mesh hash");
    snapshot.steps = get<std::int64_t>(in, path, "step count");
    snapshot.t = get<Real>(in, path, "time");
    snapshot.dt = get<Real>(in, path, "dt");
    const auto n_nodes = get<std::int64_t>(in, path, "node count");
    const auto n_cells = get<std::int64_t>(in, path, "cell count");
    if (n_nodes < 0 || n_cells < 0 ||
        n_nodes > std::numeric_limits<Index>::max() ||
        n_cells > std::numeric_limits<Index>::max() / corners_per_cell)
        throw util::Error("ckpt: '" + path + "' has implausible entity counts");

    for (const auto& f : fields) {
        std::array<char, field_name_bytes> name{};
        in.read(name.data(), static_cast<std::streamsize>(name.size()));
        if (in.gcount() != static_cast<std::streamsize>(name.size()))
            throw util::Error("ckpt: truncated checkpoint '" + path +
                              "' (field header)");
        if (std::strncmp(name.data(), f.name, field_name_bytes) != 0)
            throw util::Error("ckpt: '" + path + "' field '" +
                              std::string(name.data(),
                                          strnlen(name.data(),
                                                  field_name_bytes)) +
                              "' where '" + f.name + "' was expected");
        const auto count = get<std::uint64_t>(in, path, "field count");
        const auto sum = get<std::uint64_t>(in, path, "field checksum");
        if (count != expected_count(f.kind, n_nodes, n_cells))
            throw util::Error("ckpt: '" + path + "' field '" + f.name +
                              "' count disagrees with the header");
        auto& data = snapshot.*(f.member);
        data.resize(count);
        const auto bytes = static_cast<std::streamsize>(count * sizeof(Real));
        in.read(reinterpret_cast<char*>(data.data()), bytes);
        if (in.gcount() != bytes)
            throw util::Error("ckpt: truncated checkpoint '" + path +
                              "' (field '" + f.name + "')");
        if (checksum(data.data(), data.size() * sizeof(Real)) != sum)
            throw util::Error("ckpt: checksum mismatch in '" + path +
                              "' field '" + f.name + "' (corrupt file)");
    }
    return snapshot;
}

Snapshot capture(const mesh::Mesh& mesh, const hydro::State& s, Real t,
                 Real dt, std::int64_t steps) {
    Snapshot snap;
    snap.mesh_hash = mesh_hash(mesh);
    snap.steps = steps;
    snap.t = t;
    snap.dt = dt;
    snap.x = s.x;
    snap.y = s.y;
    snap.u = s.u;
    snap.v = s.v;
    snap.node_mass = s.node_mass;
    snap.rho = s.rho;
    snap.ein = s.ein;
    snap.q = s.q;
    snap.cell_mass = s.cell_mass;
    snap.cnmass = s.cnmass;
    return snap;
}

void rebuild_derived(const mesh::Mesh& mesh,
                     const eos::MaterialTable& materials, hydro::State& s) {
    for (Index c = 0; c < mesh.n_cells(); ++c) {
        const auto quad = geom::gather(mesh, s.x, s.y, c);
        s.cache_geometry(c, quad);
        const Real vol = geom::quad_area(quad);
        if (vol <= 0.0)
            throw util::Error("ckpt: non-positive volume in cell " +
                              std::to_string(c) + " while restoring");
        const auto ci = static_cast<std::size_t>(c);
        s.volume[ci] = vol;
        s.char_len[ci] = geom::char_length(quad);
        const auto cv = geom::corner_volumes(quad);
        for (int k = 0; k < corners_per_cell; ++k)
            s.cnvol[hydro::State::cidx(c, k)] =
                cv[static_cast<std::size_t>(k)];
        const Index r = mesh.cell_region[ci];
        s.pre[ci] = materials.pressure(r, s.rho[ci], s.ein[ci]);
        s.csqrd[ci] = materials.sound_speed2(r, s.rho[ci], s.ein[ci]);
    }
}

void restore(const mesh::Mesh& mesh, const eos::MaterialTable& materials,
             const Snapshot& snapshot, hydro::State& s) {
    if (snapshot.mesh_hash != mesh_hash(mesh))
        throw util::Error(
            "ckpt: checkpoint/deck mismatch — the snapshot was written for a "
            "different mesh (restart the deck that produced it)");
    util::require(snapshot.n_nodes() == mesh.n_nodes() &&
                      snapshot.n_cells() == mesh.n_cells(),
                  "ckpt: snapshot entity counts disagree with the mesh");
    s.x = snapshot.x;
    s.y = snapshot.y;
    s.u = snapshot.u;
    s.v = snapshot.v;
    s.node_mass = snapshot.node_mass;
    s.rho = snapshot.rho;
    s.ein = snapshot.ein;
    s.q = snapshot.q;
    s.cell_mass = snapshot.cell_mass;
    s.cnmass = snapshot.cnmass;
    rebuild_derived(mesh, materials, s);
    // Seed the step-start scratch as initialise does; every step rewrites
    // these before reading them.
    s.x0 = s.x;
    s.y0 = s.y;
    s.u0 = s.u;
    s.v0 = s.v;
    s.ein0 = s.ein;
}

} // namespace bookleaf::ckpt
