#pragma once
/// \file checkpoint.hpp
/// Checkpoint/restart subsystem: bitwise-exact snapshots of a run with
/// rank-elastic distributed restart.
///
/// A Snapshot holds everything needed to continue a run *exactly*: the
/// simulation clock (t, step count), the unclamped dt growth reference
/// (the t_end-clamp continuation fix must survive a round trip), and the
/// primary state fields in **ascending global entity order** — node
/// kinematics and masses, cell thermodynamics (including the previous
/// step's viscosity scalar, which the next getdt reads), the Lagrangian
/// cell masses, and the sub-zonal corner masses the remap transports.
/// Everything else in hydro::State is derived deterministically from
/// these by the same kernels an uninterrupted run would use
/// (rebuild_derived), so a restored state is bit-for-bit the mid-run
/// state.
///
/// Because the distributed driver is bitwise identical to the serial
/// core::Hydro on owned entities at any rank count, a snapshot written at
/// N ranks (each rank's owned slice gathered to a writer rank in global
/// order) is byte-identical to one written serially at the same step —
/// and restarting routes the global arrays back through part::decompose,
/// so a run may checkpoint at 2 ranks and restart at 4, or back to
/// serial, and still finish bitwise identical to the uninterrupted run.
///
/// On-disk format (native endianness, version-gated):
///   header: magic "BLFCKPT\n", u32 version, u32 field count,
///           u64 mesh hash (deck/mesh identity), i64 steps, f64 t,
///           f64 dt (unclamped growth reference), f64 regrow (health-guard
///           re-growth ceiling, v2), i64 n_nodes, i64 n_cells,
///           u64 FNV-1a checksum of all preceding header bytes (v2)
///   fields: per field, a 12-byte name, u64 count, u64 FNV-1a checksum of
///           the raw bytes, then the f64 payload in ascending global
///           entity order.
/// Every structural violation (bad magic, unsupported version, truncated
/// payload, checksum or count mismatch) is a util::Error, never UB. The
/// header checksum means a bit-flipped header cannot silently alter the
/// restart clock or entity counts, and the reader bounds every allocation
/// by the *actual file size* before trusting a count — hostile bytes can
/// make it throw, never crash or OOM. Writes are atomic: the stream goes
/// to `<path>.tmp` and is renamed into place only after a successful
/// flush, so a crash mid-write can never leave a truncated file where
/// snapshot discovery or `restart_from` would pick it up.

#include <cstdint>
#include <string>
#include <vector>

#include "eos/eos.hpp"
#include "hydro/state.hpp"
#include "mesh/mesh.hpp"
#include "util/types.hpp"

namespace bookleaf::ckpt {

/// On-disk format version (bump on any layout change; readers reject
/// other versions loudly). v2 appended the header checksum.
inline constexpr std::uint32_t format_version = 2;

/// Everything needed to continue a run exactly (see file comment). All
/// arrays are global-numbering, ascending entity id; corner data is flat
/// `cell * 4 + k`.
struct Snapshot {
    std::uint64_t mesh_hash = 0; ///< identity of the generating mesh/deck
    std::int64_t steps = 0;      ///< completed steps
    Real t = 0.0;                ///< simulation time
    Real dt = 0.0;               ///< *unclamped* dt growth reference
    Real regrow = 0.0;           ///< health-guard re-growth ceiling (0 = off)
    // --- node fields -------------------------------------------------------
    std::vector<Real> x, y;      ///< positions
    std::vector<Real> u, v;      ///< velocities
    std::vector<Real> node_mass; ///< assembled nodal masses
    // --- cell fields -------------------------------------------------------
    std::vector<Real> rho, ein;  ///< density, specific internal energy
    std::vector<Real> q;         ///< viscosity scalar (next getdt reads it)
    std::vector<Real> cell_mass; ///< Lagrangian cell masses
    // --- corner fields [cell*4 + k] ----------------------------------------
    std::vector<Real> cnmass;    ///< sub-zonal corner masses (remap state)

    [[nodiscard]] Index n_nodes() const { return static_cast<Index>(x.size()); }
    [[nodiscard]] Index n_cells() const {
        return static_cast<Index>(rho.size());
    }
};

/// Checkpoint cadence and restart configuration (deck section
/// `[checkpoint]`). Checkpoints are written after a *completed natural
/// step* — they never clamp or otherwise perturb the trajectory, so a
/// checkpointing run is bitwise the run without checkpoints.
struct Config {
    int every_steps = 0;  ///< write every N steps; 0 disables
    Real at_time = 0.0;   ///< one-shot at the first step with t >= at_time
    std::string prefix = "bookleaf"; ///< output path prefix
    std::string restart_from;        ///< deck key: snapshot to restore
    bool halt_after = false; ///< stop the run right after writing one

    [[nodiscard]] bool enabled() const {
        return every_steps > 0 || at_time > 0.0;
    }
    /// Is a checkpoint due after the step that advanced t_prev -> t?
    [[nodiscard]] bool due(std::int64_t step, Real t_prev, Real t) const {
        return (every_steps > 0 && step % every_steps == 0) ||
               (at_time > 0.0 && t_prev < at_time && t >= at_time);
    }
    /// Output path for the checkpoint written after `step`.
    [[nodiscard]] std::string path_for(std::int64_t step) const {
        return prefix + "_" + std::to_string(step) + ".ckpt";
    }
};

/// Identity hash of the generating mesh (FNV-1a over counts, coordinates,
/// connectivity, regions and BC masks) — the snapshot's "deck hash". A
/// restore against a mesh with a different hash is rejected: the global
/// entity order the fields are laid out in would not match.
[[nodiscard]] std::uint64_t mesh_hash(const mesh::Mesh& mesh);

/// FNV-1a over raw bytes (the per-field checksum).
[[nodiscard]] std::uint64_t checksum(const void* data, std::size_t bytes);

/// Serialize to `path`, atomically: the bytes stream to `<path>.tmp` and
/// the file is renamed into place only after a successful flush (a failed
/// write removes the temporary). Throws util::Error on IO failure or
/// inconsistent field sizes.
void write(const std::string& path, const Snapshot& snapshot);

/// Deserialize from `path`. Throws util::Error on a missing file, bad
/// magic, unsupported version, header or per-field checksum failure,
/// count mismatch, or truncation. Allocations are bounded by the actual
/// file size before any count from the header is trusted.
[[nodiscard]] Snapshot read(const std::string& path);

/// Capture a snapshot from a (serial, global-numbering) state. `regrow`
/// is the driver's health-guard re-growth ceiling (0 when inactive) — it
/// is part of the exact continuation state.
[[nodiscard]] Snapshot capture(const mesh::Mesh& mesh, const hydro::State& s,
                               Real t, Real dt, std::int64_t steps,
                               Real regrow = 0.0);

/// Rebuild every derived field of `s` from the restored primaries, using
/// exactly the per-cell sequence getgeom/getpc (and initialise) use:
/// geometry cache + volumes + characteristic lengths from x/y, EoS from
/// rho/ein. Masses (cell_mass, cnmass, node_mass) are primaries and are
/// left untouched. Throws util::Error on a non-positive volume.
void rebuild_derived(const mesh::Mesh& mesh, const eos::MaterialTable& materials,
                     hydro::State& s);

/// Restore a full (global-numbering) state from a snapshot: validates the
/// mesh hash and entity counts, copies the primary fields, rebuilds the
/// derived state and seeds the step-start scratch copies. The state must
/// already be allocated for `mesh`.
void restore(const mesh::Mesh& mesh, const eos::MaterialTable& materials,
             const Snapshot& snapshot, hydro::State& s);

} // namespace bookleaf::ckpt
