#pragma once
/// \file thread_pool.hpp
/// Fork-join thread pool used by the hybrid (MPI+OpenMP-analogue)
/// execution model. The calling thread participates as worker 0, so a
/// pool of size N uses N-1 background threads.
///
/// Dispatch is type-erasure-free: `run(job)` passes the callable through a
/// raw (function-pointer, context) pair, so launching a parallel loop
/// performs no heap allocation — the per-loop overhead the paper's hybrid
/// model pays on every `!$OMP PARALLEL` region is reduced to one
/// notify/acknowledge round trip. The join spins briefly before sleeping
/// (workers finish micro-loops in microseconds; parking the caller on a
/// condition variable for those costs more than the loop body).

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bookleaf::par {

class ThreadPool {
public:
    /// `n_threads <= 0` selects std::thread::hardware_concurrency().
    explicit ThreadPool(int n_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total workers including the caller.
    [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

    /// Run `job(tid)` once on every worker (tid in [0, size())); blocks
    /// until all invocations complete. The caller executes tid 0. Accepts
    /// any callable; no std::function, no allocation.
    template <typename Job>
    void run(Job&& job) {
        if (workers_.empty()) {
            job(0);
            return;
        }
        using Fn = std::remove_reference_t<Job>;
        dispatch(
            [](void* ctx, int tid) { (*static_cast<Fn*>(ctx))(tid); },
            const_cast<std::remove_const_t<Fn>*>(std::addressof(job)));
    }

private:
    using Trampoline = void (*)(void*, int);

    /// Publish (fn, ctx) to the workers, run the tid-0 share inline, join.
    void dispatch(Trampoline fn, void* ctx);
    void worker_loop(int tid);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    Trampoline job_fn_ = nullptr;
    void* job_ctx_ = nullptr;
    std::atomic<long> generation_{0};
    std::atomic<int> pending_{0};
    std::atomic<bool> stop_{false};
};

} // namespace bookleaf::par
