#pragma once
/// \file thread_pool.hpp
/// Fork-join thread pool used by the hybrid (MPI+OpenMP-analogue)
/// execution model. The calling thread participates as worker 0, so a
/// pool of size N uses N-1 background threads.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bookleaf::par {

class ThreadPool {
public:
    /// `n_threads <= 0` selects std::thread::hardware_concurrency().
    explicit ThreadPool(int n_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total workers including the caller.
    [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

    /// Run `job(tid)` once on every worker (tid in [0, size())); blocks
    /// until all invocations complete. The caller executes tid 0.
    void run(const std::function<void(int)>& job);

private:
    void worker_loop(int tid);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    const std::function<void(int)>* job_ = nullptr;
    long generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;
};

} // namespace bookleaf::par
