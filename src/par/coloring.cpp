#include "par/coloring.hpp"

#include <algorithm>

#include "mesh/mesh.hpp"

namespace bookleaf::par {

Coloring build_scatter_coloring(const mesh::Mesh& mesh) {
    std::vector<std::pair<Index, Index>> pairs;
    pairs.reserve(static_cast<std::size_t>(mesh.n_cells()) * corners_per_cell);
    for (Index c = 0; c < mesh.n_cells(); ++c)
        for (int k = 0; k < corners_per_cell; ++k)
            pairs.emplace_back(c, mesh.cn(c, k));
    return greedy_color(util::Csr::from_pairs(mesh.n_cells(), pairs),
                        mesh.n_nodes());
}

Coloring greedy_color(const util::Csr& item_resources, Index n_resources) {
    const Index n_items = item_resources.n_rows();
    Coloring out;
    out.color.assign(static_cast<std::size_t>(n_items), -1);

    // Last colour-set per resource, stored as a bitmask over the first 64
    // colours (quad meshes colour with <= 8 in practice) with a slow-path
    // fallback for pathological inputs.
    std::vector<std::uint64_t> resource_mask(static_cast<std::size_t>(n_resources), 0);

    for (Index i = 0; i < n_items; ++i) {
        std::uint64_t forbidden = 0;
        for (const Index r : item_resources.row(i))
            forbidden |= resource_mask[static_cast<std::size_t>(r)];
        int c = 0;
        while (c < 64 && (forbidden >> c) & 1ULL) ++c;
        BL_ASSERT(c < 64 && "conflict degree exceeded 64 colours");
        out.color[static_cast<std::size_t>(i)] = c;
        const std::uint64_t bit = 1ULL << c;
        for (const Index r : item_resources.row(i))
            resource_mask[static_cast<std::size_t>(r)] |= bit;
        if (static_cast<int>(out.classes.size()) <= c)
            out.classes.resize(static_cast<std::size_t>(c) + 1);
        out.classes[static_cast<std::size_t>(c)].push_back(i);
    }
    return out;
}

bool coloring_is_valid(const Coloring& coloring, const util::Csr& item_resources,
                       Index n_resources) {
    // For each resource collect (item, colour) pairs; a conflict is two
    // *distinct* items with the same colour on one resource. An item may
    // legitimately list a resource more than once.
    std::vector<std::vector<std::pair<Index, int>>> seen(
        static_cast<std::size_t>(n_resources));
    const Index n_items = item_resources.n_rows();
    if (static_cast<Index>(coloring.color.size()) != n_items) return false;
    for (Index i = 0; i < n_items; ++i) {
        const int c = coloring.color[static_cast<std::size_t>(i)];
        if (c < 0) return false;
        for (const Index r : item_resources.row(i)) {
            auto& entries = seen[static_cast<std::size_t>(r)];
            const bool conflict =
                std::any_of(entries.begin(), entries.end(), [&](const auto& e) {
                    return e.second == c && e.first != i;
                });
            if (conflict) return false;
            entries.emplace_back(i, c);
        }
    }
    return true;
}

} // namespace bookleaf::par
