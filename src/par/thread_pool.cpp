#include "par/thread_pool.hpp"

namespace bookleaf::par {

namespace {
/// Bounded spin before falling back to a condition-variable sleep. Sized
/// for micro-loops: a few microseconds of polling, then park.
constexpr int spin_iterations = 4096;
} // namespace

ThreadPool::ThreadPool(int n_threads) {
    if (n_threads <= 0)
        n_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (n_threads < 1) n_threads = 1;
    workers_.reserve(static_cast<std::size_t>(n_threads - 1));
    for (int tid = 1; tid < n_threads; ++tid)
        workers_.emplace_back([this, tid] { worker_loop(tid); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stop_.store(true, std::memory_order_relaxed);
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::dispatch(Trampoline fn, void* ctx) {
    {
        const std::lock_guard lock(mutex_);
        job_fn_ = fn;
        job_ctx_ = ctx;
        pending_.store(static_cast<int>(workers_.size()),
                       std::memory_order_relaxed);
        generation_.fetch_add(1, std::memory_order_release);
    }
    start_cv_.notify_all();

    fn(ctx, 0); // the caller is worker 0

    // Join: spin first (micro-loops finish in microseconds), then sleep.
    for (int i = 0; i < spin_iterations; ++i) {
        if (pending_.load(std::memory_order_acquire) == 0) return;
    }
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock,
                  [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::worker_loop(int tid) {
    long seen = 0;
    for (;;) {
        // Spin briefly for the next generation, then park on the cv.
        bool armed = false;
        for (int i = 0; i < spin_iterations; ++i) {
            if (stop_.load(std::memory_order_relaxed)) return;
            if (generation_.load(std::memory_order_acquire) != seen) {
                armed = true;
                break;
            }
        }
        Trampoline fn;
        void* ctx;
        {
            std::unique_lock lock(mutex_);
            if (!armed)
                start_cv_.wait(lock, [&] {
                    return stop_.load(std::memory_order_relaxed) ||
                           generation_.load(std::memory_order_acquire) != seen;
                });
            if (stop_.load(std::memory_order_relaxed)) return;
            seen = generation_.load(std::memory_order_relaxed);
            fn = job_fn_;
            ctx = job_ctx_;
        }
        fn(ctx, tid);
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last worker out: wake the caller if it went to sleep.
            { const std::lock_guard lock(mutex_); }
            done_cv_.notify_one();
        }
    }
}

} // namespace bookleaf::par
