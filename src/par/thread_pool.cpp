#include "par/thread_pool.hpp"

namespace bookleaf::par {

ThreadPool::ThreadPool(int n_threads) {
    if (n_threads <= 0)
        n_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (n_threads < 1) n_threads = 1;
    workers_.reserve(static_cast<std::size_t>(n_threads - 1));
    for (int tid = 1; tid < n_threads; ++tid)
        workers_.emplace_back([this, tid] { worker_loop(tid); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(int)>& job) {
    if (workers_.empty()) {
        job(0);
        return;
    }
    {
        const std::lock_guard lock(mutex_);
        job_ = &job;
        ++generation_;
        pending_ = static_cast<int>(workers_.size());
    }
    start_cv_.notify_all();
    job(0);
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
}

void ThreadPool::worker_loop(int tid) {
    long seen = 0;
    for (;;) {
        const std::function<void(int)>* job = nullptr;
        {
            std::unique_lock lock(mutex_);
            start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
            job = job_;
        }
        (*job)(tid);
        {
            const std::lock_guard lock(mutex_);
            --pending_;
        }
        done_cv_.notify_one();
    }
}

} // namespace bookleaf::par
