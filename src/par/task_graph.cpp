#include "par/task_graph.hpp"

#include <condition_variable>
#include <mutex>
#include <queue>
#include <utility>

#include "util/error.hpp"
#include "util/profiler.hpp"

namespace bookleaf::par {

namespace {

/// Min-heap of task ids: ready tasks are always claimed lowest-id-first,
/// which makes the serial path's execution order deterministic and keeps
/// the threaded path biased toward the block order the graph was built in
/// (cache-friendly ascending subranges, no work stealing).
using ReadyQueue =
    std::priority_queue<TaskId, std::vector<TaskId>, std::greater<TaskId>>;

} // namespace

TaskId TaskGraph::add(std::function<void()> fn, bool main_thread,
                      util::Kernel kernel) {
    const TaskId id = static_cast<TaskId>(nodes_.size());
    nodes_.push_back(Node{std::move(fn), {}, 0, main_thread, kernel});
    validated_ = false;
    return id;
}

void TaskGraph::depend(TaskId after, TaskId before) {
    util::require(after >= 0 && static_cast<std::size_t>(after) < nodes_.size() &&
                      before >= 0 &&
                      static_cast<std::size_t>(before) < nodes_.size(),
                  "par::TaskGraph::depend: task id out of range");
    util::require(after != before,
                  "par::TaskGraph::depend: task cannot depend on itself");
    nodes_[static_cast<std::size_t>(before)].successors.push_back(after);
    nodes_[static_cast<std::size_t>(after)].n_deps += 1;
    validated_ = false;
}

void TaskGraph::validate() {
    std::vector<int> deps(nodes_.size());
    ReadyQueue ready;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        deps[i] = nodes_[i].n_deps;
        if (deps[i] == 0) ready.push(static_cast<TaskId>(i));
    }
    std::size_t processed = 0;
    while (!ready.empty()) {
        const TaskId id = ready.top();
        ready.pop();
        ++processed;
        for (const TaskId s : nodes_[static_cast<std::size_t>(id)].successors)
            if (--deps[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
    util::require(processed == nodes_.size(),
                  "par::TaskGraph: dependency cycle detected");
    validated_ = true;
}

void TaskGraph::run(const Exec& ex, util::Profiler* profiler,
                    GraphRunLog* log) {
    if (nodes_.empty()) return;
    if (!validated_) validate();

    std::vector<int> deps(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) deps[i] = nodes_[i].n_deps;

    // Run-log spans, indexed by TaskId. Each slot is written by exactly
    // the one worker that executes the task, so no extra lock is needed;
    // run()'s own completion synchronization publishes them.
    std::vector<TaskSpan> spans;
    if (log != nullptr) spans.resize(nodes_.size());

    auto execute = [&](TaskId id, int tid) {
        const auto& node = nodes_[static_cast<std::size_t>(id)];
        const auto t0 = log != nullptr ? std::chrono::steady_clock::now()
                                       : std::chrono::steady_clock::time_point{};
        if (node.fn) {
            if (profiler != nullptr) {
                const util::ScopedTimer t(*profiler, util::Kernel::tasks);
                node.fn();
            } else {
                node.fn();
            }
        }
        if (log != nullptr) {
            auto& span = spans[static_cast<std::size_t>(id)];
            span.t0_us =
                std::chrono::duration<double, std::micro>(t0 - log->epoch)
                    .count();
            span.dur_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            span.worker = tid;
            span.kernel = node.kernel;
        }
    };

    // Append the completed run to the log (spans + static edges). Called
    // only on a fully successful execution — a cancelled/throwing run
    // records nothing.
    auto finish_log = [&] {
        if (log == nullptr) return;
        GraphRunRecord rec;
        rec.tasks = std::move(spans);
        for (std::size_t i = 0; i < nodes_.size(); ++i)
            for (const TaskId s : nodes_[i].successors)
                rec.edges.emplace_back(static_cast<TaskId>(i), s);
        rec.n_workers = ex.threaded() ? ex.width() : 1;
        log->runs.push_back(std::move(rec));
    };

    if (!ex.threaded()) {
        // Deterministic serial order: always the lowest-id ready task.
        ReadyQueue ready;
        for (std::size_t i = 0; i < nodes_.size(); ++i)
            if (deps[i] == 0) ready.push(static_cast<TaskId>(i));
        std::size_t done = 0;
        while (!ready.empty()) {
            const TaskId id = ready.top();
            ready.pop();
            execute(id, 0);
            ++done;
            for (const TaskId s :
                 nodes_[static_cast<std::size_t>(id)].successors)
                if (--deps[static_cast<std::size_t>(s)] == 0) ready.push(s);
        }
        BL_ASSERT(done == nodes_.size());
        finish_log();
        return;
    }

    // Threaded: one mutex guards the two ready heaps (tasks pinned to the
    // calling thread go on `ready_main`, claimed only by tid 0) and the
    // completion count. Workers sleep on the condition variable when
    // nothing is ready; each completion releases successors and wakes
    // everyone. The first exception cancels the remaining tasks — running
    // ones drain, nothing new starts — and rethrows after the join.
    std::mutex mutex;
    std::condition_variable cv;
    ReadyQueue ready;
    ReadyQueue ready_main;
    std::size_t n_done = 0;
    bool cancelled = false;
    std::exception_ptr error;

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (deps[i] != 0) continue;
        auto& q = nodes_[i].main_thread ? ready_main : ready;
        q.push(static_cast<TaskId>(i));
    }

    const std::size_t n_total = nodes_.size();
    ex.pool->run([&](int tid) {
        std::unique_lock lock(mutex);
        for (;;) {
            cv.wait(lock, [&] {
                return cancelled || n_done == n_total || !ready.empty() ||
                       (tid == 0 && !ready_main.empty());
            });
            if (cancelled || n_done == n_total) return;
            TaskId id;
            if (tid == 0 && !ready_main.empty()) {
                id = ready_main.top();
                ready_main.pop();
            } else {
                id = ready.top();
                ready.pop();
            }
            lock.unlock();
            std::exception_ptr caught;
            try {
                execute(id, tid);
            } catch (...) {
                caught = std::current_exception();
            }
            lock.lock();
            if (caught != nullptr) {
                if (error == nullptr) error = caught;
                cancelled = true;
            } else {
                for (const TaskId s :
                     nodes_[static_cast<std::size_t>(id)].successors) {
                    if (--deps[static_cast<std::size_t>(s)] != 0) continue;
                    auto& q = nodes_[static_cast<std::size_t>(s)].main_thread
                                  ? ready_main
                                  : ready;
                    q.push(s);
                }
            }
            ++n_done;
            if (cancelled || n_done == n_total || !ready.empty() ||
                !ready_main.empty())
                cv.notify_all();
        }
    });

    if (error != nullptr) std::rethrow_exception(error);
    finish_log();
}

void TaskGraph::clear() {
    nodes_.clear();
    validated_ = false;
}

} // namespace bookleaf::par
