#pragma once
/// \file coloring.hpp
/// Greedy conflict colouring for scatter loops.
///
/// The acceleration kernel gathers corner forces from cells onto nodes; two
/// cells that share a node must not scatter concurrently. Colouring the
/// cells so no colour class shares a node makes each class a race-free
/// parallel loop — the "rewrite" the paper says would fix the OpenMP
/// acceleration kernel (§IV-B). The ablation bench compares both paths.

#include <vector>

#include "util/csr.hpp"
#include "util/types.hpp"

namespace bookleaf::mesh {
struct Mesh;
}

namespace bookleaf::par {

struct Coloring {
    std::vector<int> color;                 ///< colour per item
    std::vector<std::vector<Index>> classes; ///< items per colour
    [[nodiscard]] int n_colors() const { return static_cast<int>(classes.size()); }
};

/// Greedy first-fit colouring. `item_resources.row(i)` lists the shared
/// resources (e.g. node ids) item i touches; items sharing any resource
/// receive distinct colours.
Coloring greedy_color(const util::Csr& item_resources, Index n_resources);

/// True iff no two items of the same colour share a resource.
bool coloring_is_valid(const Coloring& coloring, const util::Csr& item_resources,
                       Index n_resources);

/// The acceleration-scatter colouring: cells conflict when they share a
/// node. Single construction recipe shared by the driver and the
/// benchmarks so ablations measure exactly the production colouring.
Coloring build_scatter_coloring(const mesh::Mesh& mesh);

} // namespace bookleaf::par
