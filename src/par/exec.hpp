#pragma once
/// \file exec.hpp
/// Execution policy threaded through every hydro kernel. Mirrors the
/// paper's programming-model space:
///   * serial           — pool == nullptr (one rank of the flat-MPI model)
///   * threaded         — pool != nullptr (the OpenMP-analogue)
/// plus the two structural artefacts §IV-B documents for the OpenMP port:
///   * `colored_scatter`     — if false, the acceleration kernel's
///     corner-force scatter is a data dependency and runs serially even
///     when a pool is present (the paper left the kernel unparallelised);
///     if true, a greedy conflict colouring parallelises it (the "fix").
///   * `serial_reductions`   — if true, min-reductions (the Fortran
///     MINVAL/MINLOC sites in getdt) run on one thread, mimicking the
///     `workshare` implementations that give all work to a single thread.

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"
#include "util/types.hpp"

namespace bookleaf::par {

struct Exec {
    ThreadPool* pool = nullptr;
    bool colored_scatter = false;
    bool serial_reductions = false;

    [[nodiscard]] bool threaded() const { return pool != nullptr && pool->size() > 1; }
    [[nodiscard]] int width() const { return pool ? pool->size() : 1; }
};

namespace detail {
/// Static block decomposition of [0, n) across `parts`.
inline std::pair<Index, Index> block(Index n, int parts, int which) {
    const Index base = n / parts;
    const Index rem = n % parts;
    const Index begin = static_cast<Index>(which) * base + std::min<Index>(which, rem);
    const Index len = base + (which < rem ? 1 : 0);
    return {begin, begin + len};
}
} // namespace detail

/// Parallel (or serial) loop over [0, n): body(i).
template <typename Body>
void for_each(const Exec& ex, Index n, Body&& body) {
    if (!ex.threaded() || n < 2) {
        for (Index i = 0; i < n; ++i) body(i);
        return;
    }
    const int parts = ex.pool->size();
    ex.pool->run([&](int tid) {
        const auto [begin, end] = detail::block(n, parts, tid);
        for (Index i = begin; i < end; ++i) body(i);
    });
}

/// Result of a min-reduction with location (the Fortran MINVAL+MINLOC
/// pair that getdt uses to report the controlling cell).
struct MinLoc {
    Real value = 0.0;
    Index index = no_index;
};

/// Minimum of value_of(i) over [0, n) with argmin. Honors
/// `serial_reductions` (the hybrid-model artefact).
template <typename ValueOf>
MinLoc reduce_min(const Exec& ex, Index n, ValueOf&& value_of) {
    auto serial = [&](Index begin, Index end) {
        MinLoc r{std::numeric_limits<Real>::max(), no_index};
        for (Index i = begin; i < end; ++i) {
            const Real v = value_of(i);
            if (v < r.value) {
                r.value = v;
                r.index = i;
            }
        }
        return r;
    };
    if (!ex.threaded() || ex.serial_reductions || n < 2) return serial(0, n);

    const int parts = ex.pool->size();
    std::vector<MinLoc> partial(static_cast<std::size_t>(parts),
                                MinLoc{std::numeric_limits<Real>::max(), no_index});
    ex.pool->run([&](int tid) {
        const auto [begin, end] = detail::block(n, parts, tid);
        partial[static_cast<std::size_t>(tid)] = serial(begin, end);
    });
    MinLoc best = partial[0];
    for (const auto& p : partial)
        if (p.index != no_index && (best.index == no_index || p.value < best.value))
            best = p;
    return best;
}

/// Sum of value_of(i) over [0, n). Deterministic: partial sums are always
/// combined in block order regardless of thread scheduling.
template <typename ValueOf>
Real reduce_sum(const Exec& ex, Index n, ValueOf&& value_of) {
    auto serial = [&](Index begin, Index end) {
        Real s = 0.0;
        for (Index i = begin; i < end; ++i) s += value_of(i);
        return s;
    };
    if (!ex.threaded() || ex.serial_reductions || n < 2) return serial(0, n);
    const int parts = ex.pool->size();
    std::vector<Real> partial(static_cast<std::size_t>(parts), 0.0);
    ex.pool->run([&](int tid) {
        const auto [begin, end] = detail::block(n, parts, tid);
        partial[static_cast<std::size_t>(tid)] = serial(begin, end);
    });
    Real s = 0.0;
    for (const Real p : partial) s += p;
    return s;
}

} // namespace bookleaf::par
