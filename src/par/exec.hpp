#pragma once
/// \file exec.hpp
/// Execution policy threaded through every hydro kernel. Mirrors the
/// paper's programming-model space:
///   * serial           — pool == nullptr (one rank of the flat-MPI model)
///   * threaded         — pool != nullptr (the OpenMP-analogue)
/// plus the nodal-assembly strategy for the acceleration kernel, the
/// structural artefact §IV-B documents for the OpenMP port:
///   * `Assembly::gather`  (default) — the corner-force scatter is
///     transposed into a race-free gather over nodes via the mesh's
///     node->(cell, corner) CSR: embarrassingly parallel and bitwise
///     deterministic at any thread count;
///   * `Assembly::serial_scatter` — the reference behaviour: the scatter
///     is a data dependency and runs serially even when a pool is present
///     (the paper left the kernel unparallelised);
///   * `Assembly::colored_scatter` — a greedy conflict colouring
///     parallelises the scatter class-by-class (the "fix" the paper
///     alludes to); kept as an ablation baseline.
/// `serial_reductions` mimics the `workshare` implementations that give
/// all reduction work to a single thread (the MINVAL/MINLOC sites).

#include <algorithm>
#include <atomic>
#include <limits>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"
#include "util/types.hpp"

namespace bookleaf::par {

/// Nodal-assembly strategy for the acceleration kernel (§IV-B).
enum class Assembly {
    gather,          ///< node-centred gather (default; race-free, bitwise)
    serial_scatter,  ///< paper-faithful serial corner scatter
    colored_scatter, ///< conflict-coloured parallel scatter (ablation)
};

/// Step-level scheduling strategy. `taskgraph` expresses the Lagrangian
/// step and the ALE advection phases as dependency graphs over cell/node
/// blocks so independent subranges from adjacent kernels overlap;
/// `forkjoin` is the pre-graph behaviour (a full pool barrier between
/// kernels), kept as an ablation mode. Both produce bitwise-identical
/// results: every cross-entity reduction replays the serial deposition
/// order regardless of task completion order.
enum class Schedule {
    taskgraph, ///< dependency-graph executor over entity blocks (default)
    forkjoin,  ///< barrier-per-kernel ablation baseline
};

struct Exec {
    ThreadPool* pool = nullptr;
    Assembly assembly = Assembly::gather;
    Schedule schedule = Schedule::taskgraph;
    bool serial_reductions = false;
    /// Minimum iterations handed to a worker per chunk in for_each; 0
    /// selects an automatic grain (~4 chunks per worker for dynamic load
    /// balance on irregular meshes without starving the fast threads).
    Index grain = 0;
    /// Entities per task-graph block; 0 selects an automatic size
    /// (~4 blocks per worker, floor 64) so the graph has enough slack to
    /// overlap adjacent kernels without drowning in scheduling overhead.
    Index task_block = 0;

    [[nodiscard]] bool threaded() const { return pool != nullptr && pool->size() > 1; }
    [[nodiscard]] int width() const { return pool ? pool->size() : 1; }
};

namespace detail {
/// Static block decomposition of [0, n) across `parts`.
inline std::pair<Index, Index> block(Index n, int parts, int which) {
    const Index base = n / parts;
    const Index rem = n % parts;
    const Index begin = static_cast<Index>(which) * base + std::min<Index>(which, rem);
    const Index len = base + (which < rem ? 1 : 0);
    return {begin, begin + len};
}

/// Chunk size for dynamic scheduling: aim for ~4 chunks per worker so
/// irregular per-iteration cost balances, floor at 64 iterations so chunk
/// hand-off (one atomic fetch_add) stays negligible.
inline Index auto_grain(Index n, int parts) {
    const Index target = n / (static_cast<Index>(parts) * 4);
    return std::max<Index>(Index{64}, target);
}

/// The chunk size for_each actually uses: the explicit knob when set,
/// auto_grain otherwise, clamped to [1, n] so an oversized knob on a small
/// loop degrades to one chunk instead of being silently ignored (the old
/// code compared the raw knob against n and dropped it on the serial
/// path). Callers can assert against this to know the decomposition.
inline Index resolve_grain(const Exec& ex, Index n) {
    const Index g = ex.grain > 0 ? ex.grain : auto_grain(n, ex.width());
    return std::clamp<Index>(g, Index{1}, std::max<Index>(n, Index{1}));
}

/// Entities per task-graph block: the explicit knob when set, otherwise
/// ~4 blocks per worker with a floor of 64 entities so per-task overhead
/// stays negligible. Always in [1, n] for n > 0.
inline Index resolve_task_block(const Exec& ex, Index n) {
    const Index b = ex.task_block > 0
                        ? ex.task_block
                        : std::max<Index>(Index{64},
                                          n / (static_cast<Index>(ex.width()) * 4));
    return std::clamp<Index>(b, Index{1}, std::max<Index>(n, Index{1}));
}
} // namespace detail

/// Parallel (or serial) loop over [0, n): body(i). Threaded execution uses
/// dynamic chunk scheduling: workers pull `grain`-sized chunks off a
/// shared atomic counter, so uneven iteration costs (boundary cells, mixed
/// valence) balance without a static decomposition. Results are
/// scheduling-independent because bodies write disjoint slots.
template <typename Body>
void for_each(const Exec& ex, Index n, Body&& body) {
    if (n <= 0) return;
    const Index grain = detail::resolve_grain(ex, n);
    if (!ex.threaded() || n <= grain) {
        for (Index i = 0; i < n; ++i) body(i);
        return;
    }
    const Index n_chunks = (n + grain - 1) / grain;
    std::atomic<Index> next{0};
    ex.pool->run([&](int) {
        for (;;) {
            const Index chunk = next.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= n_chunks) break;
            const Index begin = chunk * grain;
            const Index end = std::min(n, begin + grain);
            for (Index i = begin; i < end; ++i) body(i);
        }
    });
}

/// Result of a min-reduction with location (the Fortran MINVAL+MINLOC
/// pair that getdt uses to report the controlling cell).
struct MinLoc {
    Real value = 0.0;
    Index index = no_index;
};

/// Minimum of value_of(i) over [0, n) with argmin. Honors
/// `serial_reductions` (the hybrid-model artefact). Partial results use a
/// static block decomposition and combine in block order, so the result is
/// identical at any thread count.
template <typename ValueOf>
MinLoc reduce_min(const Exec& ex, Index n, ValueOf&& value_of) {
    auto serial = [&](Index begin, Index end) {
        MinLoc r{std::numeric_limits<Real>::max(), no_index};
        for (Index i = begin; i < end; ++i) {
            const Real v = value_of(i);
            if (v < r.value) {
                r.value = v;
                r.index = i;
            }
        }
        return r;
    };
    if (!ex.threaded() || ex.serial_reductions || n < 2) return serial(0, n);

    const int parts = ex.pool->size();
    std::vector<MinLoc> partial(static_cast<std::size_t>(parts),
                                MinLoc{std::numeric_limits<Real>::max(), no_index});
    ex.pool->run([&](int tid) {
        const auto [begin, end] = detail::block(n, parts, tid);
        partial[static_cast<std::size_t>(tid)] = serial(begin, end);
    });
    MinLoc best = partial[0];
    for (const auto& p : partial)
        if (p.index != no_index && (best.index == no_index || p.value < best.value))
            best = p;
    return best;
}

/// Sum of value_of(i) over [0, n). Deterministic: partial sums are always
/// combined in block order regardless of thread scheduling.
template <typename ValueOf>
Real reduce_sum(const Exec& ex, Index n, ValueOf&& value_of) {
    auto serial = [&](Index begin, Index end) {
        Real s = 0.0;
        for (Index i = begin; i < end; ++i) s += value_of(i);
        return s;
    };
    if (!ex.threaded() || ex.serial_reductions || n < 2) return serial(0, n);
    const int parts = ex.pool->size();
    std::vector<Real> partial(static_cast<std::size_t>(parts), 0.0);
    ex.pool->run([&](int tid) {
        const auto [begin, end] = detail::block(n, parts, tid);
        partial[static_cast<std::size_t>(tid)] = serial(begin, end);
    });
    Real s = 0.0;
    for (const Real p : partial) s += p;
    return s;
}

} // namespace bookleaf::par
