#pragma once
/// \file task_graph.hpp
/// Dependency-graph executor over the fork-join thread pool.
///
/// A TaskGraph holds tasks (typically one (kernel, subrange) pair per
/// cell/node block) and happens-before edges derived from the kernels'
/// read/write footprints. `run` schedules ready tasks onto the existing
/// no-allocation ThreadPool with no work stealing and a deterministic
/// ready order (lowest task id first), so independent subranges from
/// adjacent kernels overlap instead of meeting at a full-join barrier
/// between every kernel — the bulk-synchronous structure the paper's §V
/// identifies as the scaling limiter.
///
/// Correctness contract: the graph does NOT make results depend on the
/// schedule. Edges must cover every read-after-write, write-after-read,
/// and write-after-write pair between tasks; under that contract any
/// execution order the scheduler picks is bitwise identical to the serial
/// kernel sequence (tasks write disjoint slots and every cross-entity
/// reduction is a gather replaying the serial deposition order).
///
/// Tasks flagged `main_thread` only ever run on the calling thread
/// (tid 0) — the hook the distributed driver uses to finish halo
/// exchanges (comm endpoints are per-rank, not thread-safe) as a graph
/// dependency that releases ghost-touching blocks.
///
/// The graph is re-runnable: dependency counts reset on every run. A
/// cycle is diagnosed on the first run after a structural change and
/// throws util::Error. A task that throws cancels the remaining tasks
/// (running ones drain) and the first exception is rethrown from run().

#include <chrono>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "par/exec.hpp"
#include "util/profiler.hpp"
#include "util/types.hpp"

namespace bookleaf::par {

using TaskId = int;

/// One executed task's span, timestamped against the owning GraphRunLog's
/// epoch. `worker` is the pool thread (tid) that ran it; `kernel` is the
/// label the graph builder attached at add().
struct TaskSpan {
    double t0_us = 0.0;
    double dur_us = 0.0;
    int worker = 0;
    util::Kernel kernel = util::Kernel::tasks;
};

/// One complete graph execution: per-task spans (indexed by TaskId), the
/// dependency edges (before -> after), and the worker count the run had.
/// Plain data — obs::critical_path analyzes it, and tests hand-build it.
struct GraphRunRecord {
    std::vector<TaskSpan> tasks;
    std::vector<std::pair<TaskId, TaskId>> edges;
    int n_workers = 1;
};

/// Collector for TaskGraph::run: when attached, every run appends one
/// GraphRunRecord. This is the graph executor's stats export — zero-cost
/// when absent (one null check per run), so telemetry-off runs pay
/// nothing.
struct GraphRunLog {
    std::chrono::steady_clock::time_point epoch{};
    std::vector<GraphRunRecord> runs;
};

class TaskGraph {
public:
    /// Register a task; returns its id (dense, in insertion order — the
    /// deterministic scheduling priority). `main_thread` pins the task to
    /// the calling thread. `kernel` labels the task's span in GraphRunLog
    /// records (it does NOT change what the profiler charges — task
    /// bodies keep their own ScopedTimer scopes).
    TaskId add(std::function<void()> fn, bool main_thread = false,
               util::Kernel kernel = util::Kernel::tasks);

    /// Declare that `after` must not start until `before` has finished.
    void depend(TaskId after, TaskId before);

    /// Execute the graph. Serial (`!ex.threaded()`): tasks run on the
    /// caller in deterministic lowest-id-ready order. Threaded: ready
    /// tasks are claimed lowest-id-first under one mutex; workers sleep
    /// when no task is ready. When `profiler` is given every task charges
    /// a util::Kernel::tasks scope (and a TraceEvent when a trace sink is
    /// attached) so Chrome traces show per-block task timelines. When
    /// `log` is given the run appends a GraphRunRecord (per-task spans +
    /// edges) — the raw material of obs::critical_path.
    void run(const Exec& ex, util::Profiler* profiler = nullptr,
             GraphRunLog* log = nullptr);

    [[nodiscard]] std::size_t size() const { return nodes_.size(); }
    [[nodiscard]] bool empty() const { return nodes_.empty(); }
    void clear();

private:
    struct Node {
        std::function<void()> fn;
        std::vector<TaskId> successors;
        int n_deps = 0; ///< static in-degree (reset template for each run)
        bool main_thread = false;
        util::Kernel kernel = util::Kernel::tasks; ///< GraphRunLog label
    };

    /// Kahn's algorithm over the static structure; throws util::Error if
    /// some task is unreachable from the in-degree-zero frontier (cycle).
    void validate();

    std::vector<Node> nodes_;
    bool validated_ = false;
};

} // namespace bookleaf::par
