#pragma once
/// \file partition.hpp
/// Spatial decomposition of the mesh across ranks (paper §III-A: "a
/// simple RCB strategy or a hypergraph strategy via METIS"). Two
/// partitioners are provided:
///   * recursive coordinate bisection (RCB) on cell centroids;
///   * a multilevel graph partitioner (heavy-edge matching coarsening,
///     greedy seeded growth, Fiduccia-Mattheyses-style boundary
///     refinement) standing in for METIS.

#include <vector>

#include "mesh/mesh.hpp"
#include "util/types.hpp"

namespace bookleaf::part {

/// Cell-adjacency (dual) graph in CSR form with vertex and edge weights.
struct Graph {
    std::vector<Index> xadj;   ///< size n_vertices + 1
    std::vector<Index> adjncy; ///< neighbour vertex ids
    std::vector<Index> adjwgt; ///< edge weights (parallel to adjncy)
    std::vector<Index> vwgt;   ///< vertex weights

    [[nodiscard]] Index n_vertices() const {
        return static_cast<Index>(vwgt.size());
    }
    [[nodiscard]] Index total_weight() const {
        Index t = 0;
        for (const Index w : vwgt) t += w;
        return t;
    }
};

/// Face-adjacency dual graph of the mesh (unit weights).
[[nodiscard]] Graph dual_graph(const mesh::Mesh& mesh);

/// Recursive coordinate bisection: returns a part id in [0, n_parts) per
/// cell. Handles non-power-of-two part counts by proportional splits.
[[nodiscard]] std::vector<Index> rcb(const mesh::Mesh& mesh, int n_parts);

/// Multilevel graph partitioning (the METIS-substitute).
[[nodiscard]] std::vector<Index> multilevel(const mesh::Mesh& mesh, int n_parts,
                                            std::uint64_t seed = 12345);

/// Partition quality: edge cut (faces crossing parts) and imbalance
/// (max part weight / ideal weight).
struct Quality {
    Index edge_cut = 0;
    Real imbalance = 0.0;
    std::vector<Index> part_cells; ///< cells per part
};
[[nodiscard]] Quality quality(const mesh::Mesh& mesh,
                              const std::vector<Index>& part, int n_parts);

} // namespace bookleaf::part
