#pragma once
/// \file subdomain.hpp
/// Subdomain extraction: given a cell partition, build per-rank local
/// meshes (owned cells first, then a node-adjacent ghost layer) together
/// with the Typhon exchange schedules that refresh ghost data. The ghost
/// layer contains *every* cell sharing a node with an owned cell, so the
/// corner-force assembly at any node of an owned cell is complete locally
/// once ghost corner forces are exchanged (the paper's pre-acceleration
/// halo exchange).

#include <vector>

#include "mesh/mesh.hpp"
#include "typhon/typhon.hpp"
#include "util/types.hpp"

namespace bookleaf::part {

struct Subdomain {
    int rank = -1;
    mesh::Mesh local; ///< owned cells in [0, n_owned_cells), ghosts after

    std::vector<Index> local_cells; ///< local cell -> global cell
    std::vector<Index> local_nodes; ///< local node -> global node
    Index n_owned_cells = 0;
    std::vector<std::uint8_t> node_owned; ///< 1 if this rank owns the node

    typhon::ExchangeSchedule cell_schedule;   ///< ghost cell scalars
    typhon::ExchangeSchedule corner_schedule; ///< ghost corner fields (4/cell)
    typhon::ExchangeSchedule node_schedule;   ///< ghost node scalars

    // --- halo/compute overlap sets (local ids, ascending) -----------------
    // boundary_cells / interior_cells partition all local cells. A cell is
    // *boundary* when its kernel stencil (the cell itself plus its face
    // neighbours, whose nodes the viscosity limiter reads) can see data
    // refreshed by a halo exchange: ghost cells, cells sharing a node with
    // a ghost cell, and cells with such a face neighbour. Interior cells
    // read only owned-fresh data, so the overlapped schedule may run them
    // while halo messages are in flight; boundary cells run after the
    // pre-step exchange completes and (being a superset of every peer's
    // ghost layer) before the corner-force sends are packed.
    //
    // boundary_nodes / interior_nodes partition all local nodes by
    // ghost-cell incidence: the corner-force gather at an interior node
    // reads no ghost corner, so its assembly can proceed before the
    // pre-acceleration exchange completes.
    std::vector<Index> boundary_cells, interior_cells;
    std::vector<Index> boundary_nodes, interior_nodes;

    // --- schedule field-count metadata ------------------------------------
    // How many fields each of the distributed driver's per-step exchanges
    // carries — i.e. how many item slices a coalesced per-peer message
    // packs back-to-back: node halo {x, y, u, v}, cell halo {ein}, corner
    // halo {fx, fy}. The driver's exchange calls static_assert against
    // these at the field lists themselves, and the coalescing ablation
    // bench + DistPacking tests check the Hub's measured message counts
    // against messages_per_step() at runtime, so the metadata cannot
    // silently drift from the real wire format.
    static constexpr int node_exchange_fields = 4;
    static constexpr int cell_exchange_fields = 1;
    static constexpr int corner_exchange_fields = 2;

    /// Schedule entries that actually send (non-empty send_items) — the
    /// messages one coalesced exchange posts from this rank.
    [[nodiscard]] static Index n_sending_peers(
        const typhon::ExchangeSchedule& schedule);

    /// Point-to-point messages this rank posts per Lagrangian step:
    /// coalesced packing posts one message per sending peer of each of
    /// the three per-step exchanges; per-field packing multiplies each
    /// exchange by its field count.
    [[nodiscard]] Index messages_per_step(typhon::Packing packing) const;
};

/// Split the global mesh into n_parts subdomains. `part[c]` is the rank
/// owning global cell c. Node ownership: the minimum rank among the parts
/// of the node's incident cells.
[[nodiscard]] std::vector<Subdomain> decompose(const mesh::Mesh& global,
                                               const std::vector<Index>& part,
                                               int n_parts);

} // namespace bookleaf::part
