#pragma once
/// \file subdomain.hpp
/// Subdomain extraction: given a cell partition, build per-rank local
/// meshes (owned cells first, then a node-adjacent ghost layer) together
/// with the Typhon exchange schedules that refresh ghost data. The ghost
/// layer contains *every* cell sharing a node with an owned cell, so the
/// corner-force assembly at any node of an owned cell is complete locally
/// once ghost corner forces are exchanged (the paper's pre-acceleration
/// halo exchange).

#include <vector>

#include "mesh/mesh.hpp"
#include "typhon/typhon.hpp"
#include "util/types.hpp"

namespace bookleaf::part {

struct Subdomain {
    int rank = -1;
    mesh::Mesh local; ///< owned cells in [0, n_owned_cells), ghosts after

    std::vector<Index> local_cells; ///< local cell -> global cell
    std::vector<Index> local_nodes; ///< local node -> global node
    Index n_owned_cells = 0;
    std::vector<std::uint8_t> node_owned; ///< 1 if this rank owns the node

    typhon::ExchangeSchedule cell_schedule;   ///< ghost cell scalars
    typhon::ExchangeSchedule corner_schedule; ///< ghost corner fields (4/cell)
    typhon::ExchangeSchedule node_schedule;   ///< ghost node scalars
};

/// Split the global mesh into n_parts subdomains. `part[c]` is the rank
/// owning global cell c. Node ownership: the minimum rank among the parts
/// of the node's incident cells.
[[nodiscard]] std::vector<Subdomain> decompose(const mesh::Mesh& global,
                                               const std::vector<Index>& part,
                                               int n_parts);

} // namespace bookleaf::part
